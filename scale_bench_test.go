// Paper-scale benchmark: stream a Scaled() corpus through the live
// ingestion path with no batch cube ever materialized on the producer
// side, then measure what the serving tier actually pays at that scale —
// ingest throughput, heap-live bytes per staged change for the compact
// (columnar + packed-history) layout versus the legacy []Change+index
// shadow, and the retrain-to-swap latency of a forced full rebuild versus
// the incremental path after a small intra-day delta.
//
// The benchmark is env-gated because the interesting scales take minutes:
//
//	WIKISTALE_SCALE=8 go test -run '^$' -bench BenchmarkScale -benchtime 1x -timeout 90m
//
// WIKISTALE_SCALE multiplies the Default() corpus (~1.26M raw changes), so
// 8 lands past the 10M-change mark of the paper-scale corpus. The measured
// numbers are written as a BENCH_PR4.json-style envelope to
// WIKISTALE_SCALE_OUT (default BENCH_SCALE.json); scripts/scalesmoke.sh
// gates the speedup and bytes-per-change ratios on it.
package wikistale_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/timeline"
)

// heapLive forces a GC and returns the live heap-object bytes — the
// steady-state resident cost of what the process is holding, unlike
// HeapAlloc which includes garbage not yet collected.
func heapLive() uint64 {
	runtime.GC()
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(sample)
	return sample[0].Value.Uint64()
}

type scaleTiming struct {
	NsPerOp int64   `json:"ns_per_op"`
	Seconds float64 `json:"seconds"`
}

type scaleReport struct {
	Comment string `json:"comment"`
	Go      string `json:"go"`
	Date    string `json:"date"`
	Scale   int    `json:"scale"`

	Ingest struct {
		RawEvents     int     `json:"raw_events"`
		StagedChanges int     `json:"staged_changes"`
		Seconds       float64 `json:"seconds"`
		EventsPerSec  float64 `json:"events_per_sec"`
	} `json:"ingest"`

	Memory struct {
		CompactLiveBytes       uint64  `json:"compact_live_bytes"`
		CompactBytesPerChange  float64 `json:"compact_bytes_per_change"`
		LegacyShadowBytes      uint64  `json:"legacy_shadow_bytes"`
		LegacyBytesPerChange   float64 `json:"legacy_bytes_per_change"`
		LegacyOverCompactRatio float64 `json:"legacy_over_compact_ratio"`
	} `json:"memory"`

	Retrain struct {
		Full        scaleTiming `json:"full"`
		Incremental scaleTiming `json:"incremental"`
		Speedup     float64     `json:"speedup"`
	} `json:"retrain"`

	Quality struct {
		DirtyFields         int `json:"dirty_fields"`
		PagesReused         int `json:"pages_reused"`
		PagesRetrained      int `json:"pages_retrained"`
		TemplatesReused     int `json:"templates_reused"`
		TemplatesRetrained  int `json:"templates_retrained"`
		FamiliesReused      int `json:"families_reused"`
		FamiliesRetrained   int `json:"families_retrained"`
		SeasonalRecomputed  int `json:"seasonal_fields_recomputed"`
		ThresholdRecomputed int `json:"threshold_fields_recomputed"`
	} `json:"quality"`
}

// BenchmarkScale runs the full paper-scale pipeline once per -benchtime
// iteration; run it with -benchtime=1x. Skipped unless WIKISTALE_SCALE is
// set.
func BenchmarkScale(b *testing.B) {
	scaleStr := os.Getenv("WIKISTALE_SCALE")
	if scaleStr == "" {
		b.Skip("set WIKISTALE_SCALE=N (Default corpus × N) to run the scale benchmark")
	}
	scale, err := strconv.Atoi(scaleStr)
	if err != nil || scale < 1 {
		b.Fatalf("WIKISTALE_SCALE=%q: want a positive integer", scaleStr)
	}
	for i := 0; i < b.N; i++ {
		runScale(b, scale)
	}
}

func runScale(b *testing.B, scale int) {
	coreCfg := core.DefaultConfig()
	var report scaleReport
	report.Comment = "paper-scale streaming ingest, compact-cube memory accounting, and full-vs-incremental retrain latency"
	report.Go = runtime.Version()
	report.Date = time.Now().UTC().Format("2006-01-02")
	report.Scale = scale

	base := heapLive()

	// --- Ingest: stream the generator straight into staging; no batch
	// cube exists outside the consumer.
	st, err := ingest.NewStaging(coreCfg.Filter)
	if err != nil {
		b.Fatal(err)
	}
	src := ingest.NewSimSource(dataset.Default().Scaled(scale))
	ctx := context.Background()
	rawEvents := 0
	ingestStart := time.Now()
	for {
		events, srcErr := src.Next(ctx)
		if len(events) > 0 {
			if _, err := st.AppendAt(events, src.Position()); err != nil {
				b.Fatal(err)
			}
			rawEvents += len(events)
		}
		if errors.Is(srcErr, io.EOF) {
			break
		}
		if srcErr != nil {
			b.Fatal(srcErr)
		}
	}
	ingestDur := time.Since(ingestStart)

	// SnapshotDelta rather than Snapshot: this drains the dirty-field set
	// accumulated during ingest, so the post-delta retrain below sees only
	// the delta's fields as dirty — the live steady state.
	hs, stats, _, err := st.SnapshotDelta()
	if err != nil {
		b.Fatal(err)
	}
	hs = hs.Pack() // the layout a booted-from-epoch server holds
	cube := hs.Cube()
	staged := cube.NumChanges()

	report.Ingest.RawEvents = rawEvents
	report.Ingest.StagedChanges = staged
	report.Ingest.Seconds = ingestDur.Seconds()
	report.Ingest.EventsPerSec = float64(rawEvents) / ingestDur.Seconds()
	b.Logf("ingest: %d raw events -> %d staged changes in %v (%.0f events/s)",
		rawEvents, staged, ingestDur.Round(time.Millisecond), report.Ingest.EventsPerSec)

	// --- Memory: everything the compact serving state keeps live, versus
	// the delta of materializing the pre-compact layout on top of it: one
	// Change row per change with its own value string allocation, the
	// field→changes map index, and slice-backed per-field day histories —
	// exactly what the repo held per corpus before the columnar cube and
	// packed histories.
	compact := heapLive() - base
	legacyChanges := cube.Changes()
	for i := range legacyChanges {
		legacyChanges[i].Value = strings.Clone(legacyChanges[i].Value)
	}
	legacyIndex := cube.FieldChanges()
	legacyDays := make([][]timeline.Day, hs.Len())
	for i, h := range hs.Histories() {
		legacyDays[i] = append([]timeline.Day(nil), h.Days()...)
	}
	withShadow := heapLive()
	legacy := withShadow - base - compact
	runtime.KeepAlive(legacyChanges)
	runtime.KeepAlive(legacyIndex)
	runtime.KeepAlive(legacyDays)
	legacyChanges, legacyIndex, legacyDays = nil, nil, nil

	report.Memory.CompactLiveBytes = compact
	report.Memory.CompactBytesPerChange = float64(compact) / float64(staged)
	report.Memory.LegacyShadowBytes = legacy
	report.Memory.LegacyBytesPerChange = float64(legacy) / float64(staged)
	report.Memory.LegacyOverCompactRatio = float64(legacy) / float64(compact)
	b.Logf("memory: compact %.1f B/change (%d MiB total), legacy shadow %.1f B/change (%d MiB extra)",
		report.Memory.CompactBytesPerChange, compact>>20,
		report.Memory.LegacyBytesPerChange, legacy>>20)

	// --- Retrain: train once cold to get the reusable previous detector,
	// append a small intra-day delta (the common live case: many retrains
	// per data day, span unchanged), then time a forced full rebuild
	// against the incremental path over the identical snapshot.
	prev, err := core.TrainFiltered(hs, stats, coreCfg)
	if err != nil {
		b.Fatal(err)
	}

	end := hs.Span().End
	lastSecond := end.Unix() - 1 // inside the final existing day: splits stay put
	var delta []ingest.Event
	stride := cube.NumEntities() / 100 // ~100 touched entities spread over the whole range
	if stride < 1 {
		stride = 1
	}
	selected := 0
	lastEntity := changecube.EntityID(-1)
	taking := false
	for _, h := range hs.Histories() {
		if h.Field.Entity != lastEntity {
			lastEntity = h.Field.Entity
			taking = selected < 100 && int(h.Field.Entity)%stride == 0
			if taking {
				selected++
			}
		}
		if !taking {
			continue
		}
		info := cube.Entity(h.Field.Entity)
		delta = append(delta, ingest.Event{
			Time:     lastSecond,
			Page:     cube.Pages.Name(int32(info.Page)),
			Template: cube.Templates.Name(int32(info.Template)),
			Property: cube.Properties.Name(int32(h.Field.Property)),
			Value:    "scale-bench-delta",
			Kind:     changecube.Update,
		})
	}
	if _, err := st.Append(delta); err != nil {
		b.Fatal(err)
	}
	hsd, statsd, dirty, err := st.SnapshotDelta()
	if err != nil {
		b.Fatal(err)
	}
	report.Quality.DirtyFields = len(dirty)

	train := func(forceFull bool, reps int) (time.Duration, *core.Detector) {
		best := time.Duration(1<<62 - 1)
		var det *core.Detector
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			d, err := core.TrainFilteredHinted(hsd, statsd, coreCfg, core.TrainHints{
				Incremental: true,
				Prev:        prev,
				DirtyFields: dirty,
				ForceFull:   forceFull,
			})
			if err != nil {
				b.Fatal(err)
			}
			if el := time.Since(t0); el < best {
				best = el
			}
			det = d
		}
		return best, det
	}
	fullDur, _ := train(true, 2)
	incDur, incDet := train(false, 5)

	report.Retrain.Full = scaleTiming{NsPerOp: fullDur.Nanoseconds(), Seconds: fullDur.Seconds()}
	report.Retrain.Incremental = scaleTiming{NsPerOp: incDur.Nanoseconds(), Seconds: incDur.Seconds()}
	report.Retrain.Speedup = fullDur.Seconds() / incDur.Seconds()

	ci := incDet.CorrelationRetrain()
	report.Quality.PagesReused, report.Quality.PagesRetrained = ci.PagesReused, ci.PagesRetrained
	ai := incDet.AssocRetrain()
	report.Quality.TemplatesReused, report.Quality.TemplatesRetrained = ai.TemplatesReused, ai.TemplatesRetrained
	fi := incDet.FamilyRetrain()
	report.Quality.FamiliesReused, report.Quality.FamiliesRetrained = fi.FamiliesReused, fi.FamiliesRetrained
	report.Quality.SeasonalRecomputed = incDet.SeasonalRetrain().FieldsRecomputed
	report.Quality.ThresholdRecomputed = incDet.ThresholdRetrain().FieldsRecomputed

	b.Logf("retrain: full %v vs incremental %v -> %.1fx (pages %d/%d, templates %d/%d, families %d/%d reused/retrained)",
		fullDur.Round(time.Millisecond), incDur.Round(time.Millisecond), report.Retrain.Speedup,
		ci.PagesReused, ci.PagesRetrained, ai.TemplatesReused, ai.TemplatesRetrained,
		fi.FamiliesReused, fi.FamiliesRetrained)

	b.ReportMetric(report.Retrain.Speedup, "retrain-speedup-x")
	b.ReportMetric(report.Memory.CompactBytesPerChange, "compact-B/change")
	b.ReportMetric(report.Memory.LegacyBytesPerChange, "legacy-B/change")
	b.ReportMetric(report.Ingest.EventsPerSec, "ingest-events/s")

	out := os.Getenv("WIKISTALE_SCALE_OUT")
	if out == "" {
		out = "BENCH_SCALE.json"
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", out)
}
