// Quickstart: generate a small synthetic Wikipedia infobox change corpus,
// train the stale-data detector, evaluate it on the held-out test year,
// and list fields that look out of date — the complete pipeline in one
// screen of code.
package main

import (
	"fmt"
	"log"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/eval"
)

func main() {
	log.SetFlags(0)

	// 1. A corpus of infobox change histories. In production this comes
	//    from parsed Wikipedia revisions (see examples/wikitext); here we
	//    generate one with known structure.
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d changes across %d infoboxes\n", cube.NumChanges(), cube.NumEntities())

	// 2. Train the full pipeline: noise filtering, field correlations,
	//    association rules, baselines, ensembles.
	detector, err := core.Train(cube, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d field-correlation rules and %d association rules\n",
		detector.FieldCorrelations().NumRules(), detector.AssociationRules().NumRules())

	// 3. Evaluate on the test year at weekly granularity.
	report, err := detector.EvaluateTest(eval.Options{Sizes: []int{7}})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range report.Predictors {
		c := report.BySize[name][7]
		fmt.Printf("  %-20s precision %5.1f%%  recall %5.1f%%  (%d predictions)\n",
			name, 100*c.Precision(), 100*c.Recall(), c.Predictions())
	}

	// 4. The deployment operation: which fields look stale right now?
	asOf := detector.Histories().Span().End
	alerts := detector.DetectStale(asOf, 7)
	fmt.Printf("%d potentially stale fields in the last week of the data:\n", len(alerts))
	for i, a := range alerts {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(alerts)-5)
			break
		}
		page := cube.Pages.Name(int32(cube.Page(a.Field.Entity)))
		prop := cube.Properties.Name(int32(a.Field.Property))
		fmt.Printf("  %s | %s — %s\n", page, prop, a.Explanation)
	}
}
