// Settlements demonstrates the page-level field-correlation predictor on
// the example from the paper's Figure 2: in settlement infoboxes, the
// population estimate and its as-of date change together. The example
// builds change histories for a set of city pages, trains the correlation
// search, and flags a city where the population was updated but the as-of
// date was forgotten — exactly the stale-data marker of Figure 1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(7))

	cube := changecube.New()
	popEst := changecube.PropertyID(cube.Properties.Intern("population_est"))
	popAsOf := changecube.PropertyID(cube.Properties.Intern("pop_est_as_of"))
	mayor := changecube.PropertyID(cube.Properties.Intern("leader_name"))

	cities := []string{"London", "Paris", "Berlin", "Madrid", "Rome", "Vienna", "Prague", "Lisbon"}
	var histories []changecube.History
	var fields []struct{ est, asOf changecube.FieldKey }
	start := timeline.Date(2010, 1, 1)
	for _, city := range cities {
		e := cube.AddEntityNamed("infobox settlement", city)
		// A census-style update once a year: both fields change on the
		// same day. The mayor changes on unrelated election days.
		var estDays, asOfDays, mayorDays []timeline.Day
		for year := 0; year < 10; year++ {
			d := start + timeline.Day(year*365+rng.Intn(60))
			estDays = append(estDays, d)
			asOfDays = append(asOfDays, d)
			if year%4 == 1 {
				mayorDays = append(mayorDays, d+timeline.Day(100+rng.Intn(100)))
			}
		}
		est := changecube.FieldKey{Entity: e, Property: popEst}
		asOf := changecube.FieldKey{Entity: e, Property: popAsOf}
		histories = append(histories,
			changecube.NewHistory(est, estDays),
			changecube.NewHistory(asOf, asOfDays),
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: mayor}, mayorDays),
		)
		fields = append(fields, struct{ est, asOf changecube.FieldKey }{est, asOf})
	}
	hs, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		log.Fatal(err)
	}

	predictor, err := correlation.Train(hs, hs.Span(), correlation.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d field-correlation rules (θ = 0.1):\n", predictor.NumRules())
	for _, r := range predictor.Rules() {
		fmt.Printf("  %s | %s ~ %s  (distance %.3f)\n",
			cube.Pages.Name(int32(cube.Page(r.A.Entity))),
			cube.Properties.Name(int32(r.A.Property)),
			cube.Properties.Name(int32(r.B.Property)),
			r.Distance)
	}

	// London's 2020 census lands: population_est is updated, but the
	// editor forgets pop_est_as_of.
	censusDay := hs.Span().End + 30
	histories = hs.Histories()
	for i, h := range histories {
		if h.Field == fields[0].est {
			days := append(append([]timeline.Day{}, h.Days()...), censusDay)
			histories[i] = changecube.NewHistory(h.Field, days)
		}
	}
	observed, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		log.Fatal(err)
	}

	window := timeline.Window{Span: timeline.NewSpan(censusDay-3, censusDay+4)}
	ctx := predict.NewContext(observed, fields[0].asOf, window)
	if predictor.Predict(ctx) {
		fmt.Printf("\nLondon: pop_est_as_of should have changed in %v\n", window.Span)
		for _, partner := range predictor.Explain(ctx) {
			fmt.Printf("  evidence: correlated field %q changed\n",
				cube.Properties.Name(int32(partner.Property)))
		}
		fmt.Println("  -> this value might be out of date (Figure 1 marker)")
	} else {
		fmt.Println("no staleness detected (unexpected)")
	}

	// The mayor field is uncorrelated; the census must not implicate it.
	mayorCtx := predict.NewContext(observed,
		changecube.FieldKey{Entity: fields[0].est.Entity, Property: mayor}, window)
	fmt.Printf("\nmayor flagged: %v (should be false — unrelated field)\n",
		predictor.Predict(mayorCtx))
}
