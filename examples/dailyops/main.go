// Dailyops demonstrates the operational loop the paper's deployment
// requires: a durable change store on disk, a detector trained from it,
// daily batches of freshly parsed changes committed as segments and
// ingested into the running detector (predictions see them immediately),
// and the yearly retraining the paper recommends in §5.3.3.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/cubestore"
	"github.com/wikistale/wikistale/internal/dataset"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "wikistale-dailyops")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Day 0: bootstrap the store from the historical corpus.
	corpus, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		log.Fatal(err)
	}
	store, err := cubestore.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	// Copy dictionaries/entities, then bulk-append the history.
	cube := store.Cube()
	for _, name := range corpus.Properties.Names() {
		cube.Properties.Intern(name)
	}
	for e := 0; e < corpus.NumEntities(); e++ {
		info := corpus.Entity(changecube.EntityID(e))
		cube.AddEntityNamed(
			corpus.Templates.Name(int32(info.Template)),
			corpus.Pages.Name(int32(info.Page)))
	}
	store.Append(corpus.Changes()...)
	if err := store.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped store: %d changes in %d segment(s)\n",
		cube.NumChanges(), store.Segments())

	detector, err := core.Train(cube, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d correlation rules, %d association rules\n",
		detector.FieldCorrelations().NumRules(), detector.AssociationRules().NumRules())

	// Simulated daily operation: a match-day edit arrives where matches is
	// updated but total_goals is forgotten.
	matchesProp := changecube.PropertyID(cube.Properties.Intern("matches"))
	goalsProp := changecube.PropertyID(cube.Properties.Intern("total_goals"))
	season := cube.AddEntityNamed("infobox football league season", "2019-20 Handball-Bundesliga")
	today := detector.Histories().Span().End + 1
	batch := []changecube.Change{{
		Time:     today.Unix() + 40000,
		Entity:   season,
		Property: matchesProp,
		Value:    "9",
		Kind:     changecube.Update,
	}}

	// Durability first, then the in-memory model.
	store.Append(batch...)
	if err := store.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := detector.Ingest(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day %s: committed batch (now %d segments), ingested without retraining\n",
		today, store.Segments())

	// The evening stale scan: the brand-new page is already covered by the
	// template rule learned from other seasons.
	for _, alert := range detector.DetectStale(today+1, 3) {
		if alert.Field.Entity != season {
			continue
		}
		page := cube.Pages.Name(int32(cube.Page(alert.Field.Entity)))
		prop := cube.Properties.Name(int32(alert.Field.Property))
		fmt.Printf("stale: %s | %s — %s\n", page, prop, alert.Explanation)
		if alert.Field.Property != goalsProp {
			log.Fatal("unexpected property flagged")
		}
	}

	// Yearly maintenance: retrain from the accumulated data and compact
	// the day segments.
	retrained, err := detector.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrained (test split now ends %s); store compacted to %d segment(s)\n",
		retrained.Splits().Test.End, store.Segments())
}
