// Soccerseasons demonstrates the template-level association-rule predictor
// on the scenario from the paper's introduction and §5.4: for football
// league seasons, a change to matches_played should entail a change to
// goals_scored — but not the other way round. The example hand-builds the
// change histories of several league seasons, trains the rule miner, shows
// the asymmetry of the mined rules, and catches a season page where the
// editor kept updating matches but forgot the goals.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/wikistale/wikistale/internal/assocrules"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(42))

	cube := changecube.New()
	matches := changecube.PropertyID(cube.Properties.Intern("matches_played"))
	goals := changecube.PropertyID(cube.Properties.Intern("goals_scored"))

	// Twenty seasons of assorted leagues. Match rounds come every two
	// weeks; the goals tally is updated with each round and then corrected
	// twice more in the quiet days after (fans fixing the arithmetic), so
	// the relationship is asymmetric: matches ⇒ goals, but goals change in
	// plenty of weeks without a match.
	var histories []changecube.History
	start := timeline.Date(2015, 8, 1)
	for season := 0; season < 20; season++ {
		entity := cube.AddEntityNamed("infobox football league season",
			fmt.Sprintf("%d-%02d Example League", 2015+season/4, 16+season/4))
		var matchDays, goalDays []timeline.Day
		d := start + timeline.Day(season*30)
		for game := 0; game < 40; game++ {
			matchDays = append(matchDays, d)
			goalDays = append(goalDays, d, d+6, d+10) // tally corrections trail the round
			d += timeline.Day(13 + rng.Intn(3))
		}
		histories = append(histories,
			changecube.NewHistory(changecube.FieldKey{Entity: entity, Property: matches}, dedup(matchDays)),
			changecube.NewHistory(changecube.FieldKey{Entity: entity, Property: goals}, dedup(goalDays)),
		)
	}
	hs, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		log.Fatal(err)
	}

	predictor, err := assocrules.Train(hs, hs.Span(), assocrules.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d validated association rules:\n", predictor.NumRules())
	for _, r := range predictor.Rules() {
		fmt.Printf("  %s -> %s  (confidence %.2f, validation precision %.2f)\n",
			cube.Properties.Name(int32(r.Antecedent)),
			cube.Properties.Name(int32(r.Consequent)),
			r.Confidence, r.ValidationPrecision)
	}

	// A fresh season, never seen during training: the template rule still
	// applies. The editor updates matches on a new match day but forgets
	// the goals.
	fresh := cube.AddEntityNamed("infobox football league season", "2018-19 Handball-Bundesliga")
	matchDay := hs.Span().End + 10
	histories = append(hs.Histories(),
		changecube.NewHistory(changecube.FieldKey{Entity: fresh, Property: matches},
			[]timeline.Day{matchDay - 20, matchDay - 10, matchDay}),
		changecube.NewHistory(changecube.FieldKey{Entity: fresh, Property: goals},
			[]timeline.Day{matchDay - 20, matchDay - 10}), // missing the last update!
	)
	observed, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		log.Fatal(err)
	}

	window := timeline.Window{Span: timeline.NewSpan(matchDay-1, matchDay+2)}
	target := changecube.FieldKey{Entity: fresh, Property: goals}
	ctx := predict.NewContext(observed, target, window)
	if predictor.Predict(ctx) {
		fmt.Printf("\n%q: goals_scored should have changed in %v\n",
			"2018-19 Handball-Bundesliga", window.Span)
		for _, ante := range predictor.Explain(ctx) {
			fmt.Printf("  evidence: %s changed in the same window\n",
				cube.Properties.Name(int32(ante)))
		}
		fmt.Println("  -> the goals tally is likely STALE; flag it for editors")
	} else {
		fmt.Println("no staleness detected (unexpected)")
	}

	// The reverse question: matches on a day when only goals were
	// corrected. The asymmetric rule must stay silent.
	solo := timeline.Window{Span: timeline.NewSpan(matchDay+5, matchDay+8)}
	rev := predict.NewContext(observed, changecube.FieldKey{Entity: fresh, Property: matches}, solo)
	fmt.Printf("\nreverse direction fires: %v (should be false — goals do not imply matches)\n",
		predictor.Predict(rev))
}

func dedup(days []timeline.Day) []timeline.Day {
	out := days[:0]
	for i, d := range days {
		if i == 0 || d > out[len(out)-1] {
			out = append(out, d)
		}
	}
	return out
}
