// Wikitext demonstrates the ingest substrate end-to-end: raw MediaWiki
// revision markup is parsed into infoboxes, diffed across revisions into
// change-cube tuples, and pushed through the paper's noise filter — the
// same path cmd/infoboxdump takes for dump files.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/revision"
	"github.com/wikistale/wikistale/internal/timeline"
)

func main() {
	log.SetFlags(0)

	day := func(y, m, d int) int64 {
		return timeline.Date(y, time.Month(m), d).Unix()
	}

	revisions := []revision.Revision{
		{
			Time: day(2019, 3, 1),
			Text: `'''Premier League''' is the top tier of English football.
{{Infobox football league
| name = Premier League
| champions = [[Manchester City F.C.|Manchester City]]
| matches = 248
| goals = 671 <ref name="stats"/>
| season = 2018-19
}}`,
		},
		{
			// A normal match-day edit: matches and goals move together.
			Time: day(2019, 3, 9),
			Text: `'''Premier League''' is the top tier of English football.
{{Infobox football league
| name = Premier League
| champions = [[Manchester City F.C.|Manchester City]]
| matches = 258
| goals = 694 <ref name="stats"/>
| season = 2018-19
}}`,
		},
		{
			// Vandalism: the champions value is wrecked ...
			Time: day(2019, 3, 10),
			Text: `{{Infobox football league
| name = Premier League
| champions = NOBODY LOL
| matches = 258
| goals = 694
| season = 2018-19
}}`,
			Bot: false,
		},
		{
			// ... and promptly reverted by a bot.
			Time: day(2019, 3, 10) + 600,
			Text: `{{Infobox football league
| name = Premier League
| champions = [[Manchester City F.C.|Manchester City]]
| matches = 258
| goals = 694
| season = 2018-19
}}`,
			Bot: true,
		},
		{
			// The forgotten update: matches moves, goals does not.
			Time: day(2019, 3, 16),
			Text: `{{Infobox football league
| name = Premier League
| champions = [[Manchester City F.C.|Manchester City]]
| matches = 268
| goals = 694
| season = 2018-19
}}`,
		},
	}

	cube := changecube.New()
	extractor := revision.NewExtractor(cube)
	if err := extractor.AddPage("Premier League", revisions); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("extracted %d changes from %d revisions:\n", cube.NumChanges(), len(revisions))
	for _, ch := range cube.Changes() {
		prop := cube.Properties.Name(int32(ch.Property))
		fmt.Printf("  %s  %-10s %-9s %q\n",
			timeline.DayOfUnix(ch.Time), prop, ch.Kind, ch.Value)
	}

	// The filter removes the creations and the bot-reverted vandalism.
	cfg := filter.Default()
	cfg.MinChanges = 1 // the demo history is short; keep every field
	hs, stats, err := filter.Apply(cube, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfilter funnel:\n%s", stats)
	fmt.Printf("surviving change days per field:\n")
	for _, h := range hs.Histories() {
		prop := cube.Properties.Name(int32(h.Field.Property))
		fmt.Printf("  %-10s %v\n", prop, h.Days())
	}
}
