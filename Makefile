# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench check experiments figures cover clean

all: build test

# The single verification entrypoint: vet, build, and race-enabled tests.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper on the default corpus.
experiments:
	$(GO) run ./cmd/experiments -scale default

figures:
	mkdir -p out
	$(GO) run ./cmd/experiments -scale default -exp figure3 -svgdir out > out/figure3.txt
	$(GO) run ./cmd/experiments -scale default -exp figure4 -svgdir out > out/figure4.txt

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -rf out
