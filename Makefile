# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench check lint fuzz loadsmoke coldsmoke scalesmoke experiments figures cover clean

all: build test

# The single verification entrypoint: vet, build, and race-enabled tests.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Static analysis: vet always; staticcheck when installed (CI installs it).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fuzz every parser/decoder for a short burst each: the binary cube
# format, the wikitext infobox parser, the counter-anomaly detector, the
# streaming JSONL event format, and the epoch store's log and snapshot
# decoders (crash-recovery surfaces: they parse whatever a torn write
# left on disk).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/changecube
	$(GO) test -run '^$$' -fuzz '^FuzzParseInfoboxes$$' -fuzztime $(FUZZTIME) ./internal/wikitext
	$(GO) test -run '^$$' -fuzz '^FuzzDetectCounterAnomalies$$' -fuzztime $(FUZZTIME) ./internal/values
	$(GO) test -run '^$$' -fuzz '^FuzzReadJSONL$$' -fuzztime $(FUZZTIME) ./internal/ingest
	$(GO) test -run '^$$' -fuzz '^FuzzEpochLogDecode$$' -fuzztime $(FUZZTIME) ./internal/epochstore
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZTIME) ./internal/epochstore

# HTTP load smoke: boot a live staleserve on the simulated feed, drive
# it with cmd/staleload in both loop modes, assert healthy throughput,
# and leave the latency report in BENCH_HTTP.json (see scripts/loadsmoke.sh).
loadsmoke:
	sh scripts/loadsmoke.sh

# Cold-start smoke: run a live server with -store, kill it after the
# first persisted epoch, restart, and assert instant readiness from the
# store plus exact feed resume (see scripts/coldstartsmoke.sh).
coldsmoke:
	sh scripts/coldstartsmoke.sh

# Scale smoke: stream a generator-backed corpus through the live path
# and gate incremental-retrain speedup and compact-layout bytes-per-
# change (see scripts/scalesmoke.sh; SCALE=8 reproduces BENCH_SCALE.json).
scalesmoke:
	sh scripts/scalesmoke.sh

# Regenerate every table and figure of the paper on the default corpus.
experiments:
	$(GO) run ./cmd/experiments -scale default

figures:
	mkdir -p out
	$(GO) run ./cmd/experiments -scale default -exp figure3 -svgdir out > out/figure3.txt
	$(GO) run ./cmd/experiments -scale default -exp figure4 -svgdir out > out/figure4.txt

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -rf out
