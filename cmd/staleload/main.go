// Command staleload drives HTTP load at a running staleserve and reports
// serving latency. It discovers the servable keyspace from /v1/catalog,
// aims zipf-distributed traffic at it across a mixed route profile
// (/v1/field, /v1/explain, /v1/stale, plus the /debug/quality and
// /debug/epochdiff observability reports), and measures in two loop
// disciplines:
//
//   - closed: N workers issue requests back-to-back. Measures service
//     time at a fixed offered concurrency; slow responses throttle the
//     arrival rate, so the tail stays flattering under overload.
//   - open: requests arrive on a fixed schedule at -rps regardless of
//     completions, and latency is charged from the *scheduled* arrival.
//     Queue delay under overload lands in the histogram (coordinated-
//     omission corrected) — this is what users experience.
//
// A warmup phase runs first and is discarded. Results print as a table
// and, with -json, land in the BENCH_PR2.json-style envelope so the
// repo's benchmark trajectory stays uniform.
//
// Usage:
//
//	staleserve -i corpus.wcc &
//	staleload -url http://localhost:8080 -mode both -c 8 -rps 500 \
//	          -d 10s -warmup 2s -json BENCH_HTTP.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/wikistale/wikistale/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("staleload: ")
	var (
		baseURL = flag.String("url", "http://localhost:8080", "base URL of the staleserve instance")
		mode    = flag.String("mode", "both", `loop discipline: "closed", "open", or "both"`)
		conc    = flag.Int("c", 8, "worker count (offered concurrency in closed mode, pool size in open mode)")
		rps     = flag.Float64("rps", 500, "scheduled arrival rate for open mode")
		dur     = flag.Duration("d", 10*time.Second, "measured duration per mode")
		warmup  = flag.Duration("warmup", 2*time.Second, "closed-loop warmup before each measured run (discarded)")
		zipfS   = flag.Float64("zipf", 1.1, "zipf skew for page popularity (> 1; larger = more head-heavy)")
		mixStr  = flag.String("mix", "field=55,explain=20,stale=20,quality=5", "route mix as route=weight[,route=weight...]")
		limit   = flag.Int("catalog-limit", 4096, "cap on catalog fields fetched (0 = all)")
		seed    = flag.Int64("seed", 1, "base seed for the per-worker random streams")
		wait    = flag.Duration("wait", 30*time.Second, "how long to wait for the server to become ready")
		jsonOut = flag.String("json", "", "write a BENCH_HTTP-style JSON report to this file")
		comment = flag.String("comment", "", "comment recorded in the JSON report")
	)
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixStr)
	if err != nil {
		log.Fatal(err)
	}
	var modes []string
	switch *mode {
	case "both":
		modes = []string{loadgen.ModeClosed, loadgen.ModeOpen}
	case loadgen.ModeClosed, loadgen.ModeOpen:
		modes = []string{*mode}
	default:
		log.Fatalf("bad -mode %q: want closed, open, or both", *mode)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &http.Client{Timeout: 10 * time.Second}
	if err := waitReady(ctx, client, *baseURL, *wait); err != nil {
		log.Fatal(err)
	}
	fields, err := loadgen.FetchCatalog(client, *baseURL, *limit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "catalog: %d servable fields at %s\n", len(fields), *baseURL)

	w := &loadgen.Workload{BaseURL: *baseURL, Fields: fields, ZipfS: *zipfS, Mix: mix}
	rep := loadgen.NewReport(*comment, *baseURL, w)

	for _, m := range modes {
		res, err := loadgen.Run(ctx, w, loadgen.Options{
			Mode:        m,
			Concurrency: *conc,
			TargetRPS:   *rps,
			Duration:    *dur,
			Warmup:      *warmup,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		loadgen.Summarize(os.Stdout, res)
		rep.Add(res)
		if ctx.Err() != nil {
			break
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}

// waitReady polls /readyz until the server answers 200 — live-mode cold
// starts return 503 until enough history has streamed in.
func waitReady(ctx context.Context, client *http.Client, baseURL string, timeout time.Duration) error {
	u := strings.TrimRight(baseURL, "/") + "/readyz"
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(u)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not ready after %v: %v", baseURL, timeout, err)
			}
			return fmt.Errorf("server at %s not ready after %v", baseURL, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}
