// Command staledetect trains the full stale-data detection pipeline on a
// change cube and reports the fields that look out of date — the paper's
// deployment scenario (Figure 1): marking values whose expected change did
// not happen.
//
// Usage:
//
//	staledetect -i corpus.wcc [-asof 2019-09-01] [-window 7] [-stats] [-timing] [-limit 50]
//	staledetect -store /var/lib/wikistale   # load from a cubestore directory
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/cubestore"
	"github.com/wikistale/wikistale/internal/obs/olog"
	"github.com/wikistale/wikistale/internal/timeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("staledetect: ")
	var (
		in     = flag.String("i", "corpus.wcc", "input binary change cube")
		store  = flag.String("store", "", "load from a cubestore directory instead of -i")
		asOf   = flag.String("asof", "", "detection date (YYYY-MM-DD); default: end of the data")
		window = flag.Int("window", 7, "staleness window in days (1, 7, 30 or 365)")
		stats  = flag.Bool("stats", false, "print filter-funnel and rule statistics")
		timing = flag.Bool("timing", false, "print the training stage-timing report")
		limit  = flag.Int("limit", 50, "maximum alerts to print (0 = all)")

		logLevel  = flag.String("log-level", "info", "structured-log level: debug, info, warn, or error")
		logFormat = flag.String("log-format", "text", `structured-log format: "text" or "json"`)
	)
	flag.Parse()

	if _, err := olog.Setup(os.Stderr, *logLevel, *logFormat); err != nil {
		log.Fatal(err)
	}

	var cube *changecube.Cube
	if *store != "" {
		s, err := cubestore.Open(*store)
		if err != nil {
			log.Fatalf("opening store %s: %v", *store, err)
		}
		cube = s.Cube()
	} else {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		var err2 error
		cube, err2 = changecube.ReadBinary(f)
		f.Close()
		if err2 != nil {
			log.Fatalf("reading %s: %v", *in, err2)
		}
	}

	start := time.Now()
	det, err := core.Train(cube, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained on %d changes in %v\n",
		cube.NumChanges(), time.Since(start).Round(time.Millisecond))

	if *timing {
		fmt.Fprint(os.Stderr, det.TrainReport())
	}
	if *stats {
		fmt.Print(det.FilterStats())
		fmt.Printf("field-correlation rules: %d\n", det.FieldCorrelations().NumRules())
		fmt.Printf("association rules:       %d (covering %d pages)\n",
			det.AssociationRules().NumRules(), det.AssociationRules().CoveredPages(cube))
	}

	day := det.Histories().Span().End
	if *asOf != "" {
		t, err := time.Parse("2006-01-02", *asOf)
		if err != nil {
			log.Fatalf("bad -asof date: %v", err)
		}
		day = timeline.DayOf(t)
	}

	alerts := det.DetectStale(day, *window)
	fmt.Printf("%d potentially stale fields as of %s (window %dd)\n", len(alerts), day, *window)
	for i, a := range alerts {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... and %d more\n", len(alerts)-*limit)
			break
		}
		page := cube.Pages.Name(int32(cube.Page(a.Field.Entity)))
		prop := cube.Properties.Name(int32(a.Field.Property))
		fmt.Printf("  %s | %s: %s (%v)\n", page, prop, a.Explanation, a.Sources)
	}
}
