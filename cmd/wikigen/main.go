// Command wikigen generates a synthetic Wikipedia infobox change corpus
// and writes it as a binary change cube (and optionally JSON lines).
//
// Usage:
//
//	wikigen -o corpus.wcc [-jsonl corpus.jsonl] [-scale small|default]
//	        [-seed N] [-templates N] [-entities N] [-stubs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/wikistale/wikistale/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wikigen: ")
	var (
		out       = flag.String("o", "corpus.wcc", "output path for the binary change cube")
		jsonl     = flag.String("jsonl", "", "optional output path for a JSON-lines dump")
		scale     = flag.String("scale", "default", "base configuration: small or default")
		seed      = flag.Int64("seed", 1, "generation seed")
		templates = flag.Int("templates", 0, "override the number of templates (0 = keep scale default)")
		entities  = flag.Int("entities", 0, "override mean entities per template (0 = keep scale default)")
		stubs     = flag.Int("stubs", -1, "override stub infoboxes per entity (-1 = keep scale default)")
	)
	flag.Parse()

	var cfg dataset.Config
	switch *scale {
	case "small":
		cfg = dataset.Small()
	case "default":
		cfg = dataset.Default()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	if *templates > 0 {
		cfg.NumTemplates = *templates
	}
	if *entities > 0 {
		cfg.MeanEntitiesPerTemplate = *entities
	}
	if *stubs >= 0 {
		cfg.StubsPerEntity = *stubs
	}

	cube, truth, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := cube.WriteBinary(f); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if *jsonl != "" {
		jf, err := os.Create(*jsonl)
		if err != nil {
			log.Fatal(err)
		}
		if err := cube.WriteJSONL(jf); err != nil {
			log.Fatalf("writing %s: %v", *jsonl, err)
		}
		if err := jf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %s: %d changes, %d entities, %d templates, %d pages\n",
		*out, cube.NumChanges(), cube.NumEntities(), cube.Templates.Len(), cube.Pages.Len())
	fmt.Printf("planted structure: %d clusters, %d implications, %d forgotten updates\n",
		len(truth.Clusters), len(truth.Implications), len(truth.Forgotten))
}
