// Command staleserve trains the detector on a change cube and serves
// stale-data findings over HTTP — the backend for the paper's Figure 1
// marker and for editor dashboards.
//
// Endpoints:
//
//	GET /healthz                            liveness + field count
//	GET /readyz                             readiness (503 until a detector is installed)
//	GET /v1/stale?asof=2019-09-01&window=7  everything stale in the window
//	GET /v1/field?page=P&property=X&...     marker lookup for one field
//	GET /v1/explain?page=P&property=X&...   full evidence audit for one field
//	GET /v1/audit                           recent positive verdicts served
//	GET /v1/stats                           corpus and rule statistics
//	GET /v1/ingest/stats                    live-feed progress (live mode only)
//	GET /v1/catalog                         servable (page, property) pairs (for load harnesses)
//	GET /statusz                            human-readable status page
//	GET /metrics                            Prometheus text (?format=json for JSON)
//	GET /debug/traces                       recent request/retrain traces (?route=, ?min_ns=)
//	GET /debug/quality                      online alert-outcome scoring report (live mode)
//	GET /debug/epochdiff                    last-N epoch diffs: rule and alert-set churn per swap
//	GET /debug/slo                          SLO burn rates over rolling windows (JSON)
//	GET /debug/profiles                     pprof profiles captured by burn-rate trips
//	GET /debug/pprof/                       Go profiling endpoints
//
// Batch mode (the default) trains once on -i and serves that detector
// forever. Live mode (-live) consumes a change-event feed, retrains in
// the background, and hot-swaps the serving detector with zero downtime:
//
//	staleserve -live -source sim                 # simulated EventStreams feed
//	staleserve -live -source sim:scale=8         # ~10M-change corpus streamed straight from the generator
//	staleserve -live -source events.jsonl        # replay a JSONL dump, then keep serving
//	staleserve -live -source events.jsonl -follow # tail the file as it grows
//	staleserve -live -source feed.jsonl -i corpus.wcc  # warm start from a corpus
//	staleserve -live -source feed.jsonl -store epochs/ # persist epochs; restart boots instantly
//
// With -store DIR every trained epoch is persisted (model + training cube
// + feed checkpoint) into an epoch store; on the next start the newest
// valid epoch is served immediately — /readyz is 200 in milliseconds with
// no retraining — and the feed resumes exactly at the epoch's checkpoint.
// Corrupt or torn snapshots fall back to the previous epoch, then to a
// cold start.
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests get up to -drain to finish, then the
// process exits.
//
// Usage:
//
//	staleserve -i corpus.wcc -addr :8080 [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/epochstore"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/obs/olog"
	"github.com/wikistale/wikistale/internal/obs/quality"
	"github.com/wikistale/wikistale/internal/obs/trace"
	"github.com/wikistale/wikistale/internal/staleserve"
	"github.com/wikistale/wikistale/internal/timeline"
)

// tracedTrain trains under a root trace, so /debug/traces shows the
// startup training's filter/train stage breakdown alongside request and
// retrain traces.
func tracedTrain(cube *changecube.Cube, cfg core.Config) (*core.Detector, error) {
	ctx, span := trace.Start(context.Background(), "train")
	det, err := core.TrainCtx(ctx, cube, cfg)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return det, err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("staleserve: ")
	var (
		in      = flag.String("i", "", "input binary change cube (batch mode default: corpus.wcc; live mode: optional warm start)")
		model   = flag.String("model", "", "model file: load it when it exists, train and write it when it does not (batch mode)")
		addr    = flag.String("addr", ":8080", "listen address")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown timeout for in-flight requests")
		verbose = flag.Bool("v", false, "print the training stage-timing report")

		logLevel  = flag.String("log-level", "info", "structured-log level: debug, info, warn, or error")
		logFormat = flag.String("log-format", "text", `structured-log format: "text" or "json"`)

		live           = flag.Bool("live", false, "live mode: stream a change feed, retrain in the background, hot-swap the detector")
		source         = flag.String("source", "sim", `live feed: "sim" for a simulated EventStreams feed, "sim:scale=N" to stream an N-times-larger corpus straight from the generator, or a JSONL file path`)
		memLimit       = flag.String("memlimit", "", `soft Go memory limit (e.g. "4GiB"): wires debug.SetMemoryLimit; the limit and live-heap headroom show on /statusz`)
		follow         = flag.Bool("follow", false, "tail the JSONL source for new events instead of stopping at its end")
		retrainEvery   = flag.Duration("retrain-every", 15*time.Second, "live mode: retrain at most this often while changes are pending (0 disables)")
		retrainChanges = flag.Int("retrain-changes", 5000, "live mode: retrain after this many new changes (0 disables)")
		retrainInc     = flag.Bool("retrain-incremental", true, "live mode: reuse untouched pages' correlation rules between retrains (bit-identical, faster)")
		retrainFull    = flag.Int("retrain-full-every", 32, "live mode: force a full rebuild after this many incremental retrains (0 never)")

		storeDir    = flag.String("store", "", "live mode: epoch store directory — persist every trained epoch and boot from the newest valid one instead of retraining")
		storeRetain = flag.Int("store-retain", epochstore.DefaultRetain, "live mode: epoch snapshots kept on disk")

		qualityHorizon = flag.Int("quality-horizon", quality.DefaultHorizonDays, "live mode: event-time days an alert has to be confirmed by a change before it scores as expired (/debug/quality; 0 disables scoring)")
	)
	flag.Parse()

	// Install the trace-aware slog handler before any server or manager is
	// constructed — both capture slog.Default() at construction time.
	if _, err := olog.Setup(os.Stderr, *logLevel, *logFormat); err != nil {
		log.Fatal(err)
	}

	if *memLimit != "" {
		n, err := parseByteSize(*memLimit)
		if err != nil {
			log.Fatalf("-memlimit: %v", err)
		}
		debug.SetMemoryLimit(n)
		fmt.Fprintf(os.Stderr, "memory limit: %s\n", *memLimit)
	}

	if *live {
		runLive(*source, *in, *addr, *drain, *follow, *retrainEvery, *retrainChanges, *retrainInc, *retrainFull, *storeDir, *storeRetain, *qualityHorizon)
		return
	}
	if *storeDir != "" {
		log.Fatal("-store requires -live (batch mode persists via -model)")
	}
	if *in == "" {
		*in = "corpus.wcc"
	}
	runBatch(*in, *model, *addr, *drain, *verbose)
}

// runBatch is the original mode: train (or load) once, serve forever.
func runBatch(in, model, addr string, drain time.Duration, verbose bool) {
	cube := readCube(in)

	start := time.Now()
	det, how, err := trainOrLoad(cube, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s on %d changes in %v; %d correlation rules, %d association rules\n",
		how, cube.NumChanges(), time.Since(start).Round(time.Millisecond),
		det.FieldCorrelations().NumRules(), det.AssociationRules().NumRules())
	if verbose {
		fmt.Fprint(os.Stderr, det.TrainReport())
	}

	serve(staleserve.New(det), addr, drain, nil)
}

// runLive wires feed → staging → background retrains → epoch hot-swaps.
// With -store, the newest valid persisted epoch is loaded first: the
// server swaps it in before the listener opens (ready in milliseconds, no
// retraining), the feed resumes from the epoch's checkpoint, and every
// later retrain persists a fresh epoch through the manager's post-swap
// hook.
func runLive(source, warmCube, addr string, drain time.Duration, follow bool, retrainEvery time.Duration, retrainChanges int, retrainInc bool, retrainFull int, storeDir string, storeRetain int, qualityHorizon int) {
	cfg := core.DefaultConfig()

	var es *epochstore.Store
	var loaded *epochstore.LoadResult
	if storeDir != "" {
		var err error
		if es, err = epochstore.Open(epochstore.Options{Dir: storeDir, Retain: storeRetain}); err != nil {
			log.Fatal(err)
		}
		if loaded, err = es.LoadLatest(context.Background(), cfg); err != nil {
			log.Fatal(err)
		}
		for _, e := range loaded.Errors {
			fmt.Fprintf(os.Stderr, "live: epoch store: %s\n", e)
		}
		if loaded.Outcome == "cold" {
			loaded = nil
		}
	}

	var src ingest.Source
	switch {
	case strings.HasPrefix(source, "sim:"):
		// Scaled simulated feed: events stream straight out of the
		// generator, one entity per batch — no corpus cube is ever
		// materialized on the producer side, so a 10M+-change feed costs
		// only the staging buffer's memory.
		scale, err := parseSimScale(source)
		if err != nil {
			log.Fatal(err)
		}
		sim := ingest.NewSimSource(dataset.Default().Scaled(scale))
		if loaded != nil {
			if loaded.Checkpoint.Kind != "" && loaded.Checkpoint.Kind != "sim" {
				loaded = discardLoaded(es, fmt.Errorf("checkpoint kind %q, feed is the streamed sim generator", loaded.Checkpoint.Kind))
			} else if err := sim.Seek(loaded.Checkpoint); err != nil {
				loaded = discardLoaded(es, err)
			}
		}
		src = sim
		fmt.Fprintf(os.Stderr, "live: streaming simulated feed at scale %d (%d templates)\n",
			scale, dataset.Default().Scaled(scale).NumTemplates)
	case source == "sim":
		var cp ingest.SourcePosition
		if loaded != nil {
			if loaded.Checkpoint.Kind != "" && loaded.Checkpoint.Kind != "stream" {
				loaded = discardLoaded(es, fmt.Errorf("checkpoint kind %q, feed is the simulated stream", loaded.Checkpoint.Kind))
			} else {
				cp = loaded.Checkpoint
			}
		}
		// Corpus generation takes seconds; a store boot must open the
		// listener in milliseconds. The lazy source moves generation onto
		// the manager's consume goroutine — serving (on the loaded epoch)
		// starts immediately, the feed follows. The simulated feed is
		// deterministic, so the checkpoint's batch index identifies an
		// exact position in the regenerated replay.
		src = &lazyStream{build: func() (*ingest.Stream, error) {
			cube, _, err := dataset.Generate(dataset.Default())
			if err != nil {
				return nil, fmt.Errorf("generating simulated feed: %w", err)
			}
			stream := ingest.NewStream(cube)
			if !cp.IsZero() {
				if err := stream.Seek(cp); err != nil {
					return nil, fmt.Errorf("resuming simulated feed: %w", err)
				}
			}
			fmt.Fprintf(os.Stderr, "live: simulated feed of %d change events\n", cube.NumChanges())
			return stream, nil
		}}
	default:
		f, err := os.Open(source)
		if err != nil {
			log.Fatal(err)
		}
		var js *ingest.JSONLSource
		if loaded != nil {
			// Resume re-reads and checksums the line before the checkpoint:
			// a truncated or rewritten feed fails loudly instead of
			// double-applying or skipping events.
			if js, err = ingest.ResumeJSONL(f, loaded.Checkpoint); err != nil {
				loaded = discardLoaded(es, err)
				// A failed resume leaves the file mid-seek; rewind for the
				// cold read.
				if _, err := f.Seek(0, io.SeekStart); err != nil {
					log.Fatal(err)
				}
			}
		}
		if js == nil {
			js = ingest.NewJSONLSource(f)
		}
		if follow {
			js.Follow(0)
		}
		src = js
		fmt.Fprintf(os.Stderr, "live: reading events from %s (follow=%v)\n", source, follow)
	}

	srv := staleserve.NewLive()

	// Online alert-outcome scoring: wired before the first Swap so a store
	// boot registers its alert set against the restored state (pending
	// predictions keep their original alert days and deadlines across the
	// restart; BeginEpoch skips already-pending keys).
	var scorer *quality.Scorer
	if qualityHorizon > 0 {
		scorer = quality.New(qualityHorizon)
		if loaded != nil && len(loaded.Quality) > 0 {
			if err := scorer.Restore(loaded.Quality); err != nil {
				fmt.Fprintf(os.Stderr, "live: quality state from epoch %d unusable (%v); scoring starts fresh\n",
					loaded.Record.Seq, err)
			}
		}
		srv.SetQualityScorer(scorer)
		if es != nil {
			es.SetQualitySource(scorer.MarshalBinary)
		}
	}

	var st *ingest.Staging // nil when booting from the store (rebuilt in background)
	var err error
	switch {
	case loaded != nil:
		// Boot from the store: serve the persisted epoch immediately; the
		// feed picks up at its checkpoint, so no event is lost or applied
		// twice. A warm-start cube (-i) is ignored — the store is newer.
		srv.Swap(loaded.Detector)
		es.RecordRecovery(loaded.Outcome)
		fmt.Fprintf(os.Stderr, "live: booted epoch %d from %s in %.0f ms (%s; %d fields); feed resumes at %+v\n",
			loaded.Record.Seq, storeDir, 1000*loaded.Seconds, loaded.Outcome,
			loaded.Record.Fields, loaded.Checkpoint)
	case warmCube != "":
		cube := readCube(warmCube)
		if st, err = ingest.NewStagingFromCube(cube, cfg.Filter); err != nil {
			log.Fatal(err)
		}
		// Serve the warm-start corpus immediately; the feed refreshes it.
		det, terr := tracedTrain(cube, cfg)
		if terr != nil {
			log.Fatalf("warm-start training: %v", terr)
		}
		srv.Swap(det)
		fmt.Fprintf(os.Stderr, "live: warm start from %s (%d changes); serving while the feed streams\n",
			warmCube, cube.NumChanges())
	default:
		if st, err = ingest.NewStaging(cfg.Filter); err != nil {
			log.Fatal(err)
		}
		if es != nil {
			es.RecordRecovery("cold")
		}
		fmt.Fprintln(os.Stderr, "live: cold start; not ready until enough history has streamed in")
	}

	mcfg := ingest.Config{
		Train:            cfg,
		RetrainInterval:  retrainEvery,
		RetrainChanges:   retrainChanges,
		Incremental:      retrainInc,
		FullRebuildEvery: retrainFull,
	}
	// The manager is built on the feed goroutine: a store boot still has
	// to rebuild the staging buffer (a full filter pass, seconds on big
	// corpora), and that must not delay the listener. Handlers reach the
	// manager through the atomic pointer, which stays nil until then — so
	// every closure is wired before serve, and nothing races.
	var mgrPtr atomic.Pointer[ingest.Manager]
	srv.SetIngestStats(func() any {
		mgr := mgrPtr.Load()
		if mgr == nil {
			return ingest.Stats{} // feed still starting up
		}
		return mgr.Stats()
	})
	srv.SetLagSource(func() float64 {
		mgr := mgrPtr.Load()
		if mgr == nil {
			return 0
		}
		return mgr.FeedLag()
	})
	if es != nil {
		srv.SetStoreStats(func() any { return es.Stats() })
	}
	startFeed := func() (*ingest.Manager, error) {
		if loaded != nil {
			if st, err = loaded.Staging(); err != nil {
				return nil, fmt.Errorf("rebuilding staging from epoch %d: %w", loaded.Record.Seq, err)
			}
		}
		mgr := ingest.NewManager(src, st, srv.Swap, mcfg)
		if scorer != nil {
			// Every applied batch feeds the scorer: a change event for a
			// pending alert within its horizon confirms it; the advancing
			// event-time watermark expires the rest.
			mgr.SetEventObserver(func(events []ingest.Event) {
				for _, ev := range events {
					scorer.Observe(ev.Page, ev.Property, int32(timeline.DayOfUnix(ev.Time)))
				}
			})
		}
		if es != nil {
			// Persist every epoch the manager swaps in. Snapshot errors are
			// logged and counted by the store; serving continues regardless.
			mgr.SetPostSwap(func(ctx context.Context, det *core.Detector, cp ingest.Checkpoint) {
				_, _ = es.Snapshot(ctx, det, cp)
			})
		}
		mgrPtr.Store(mgr)
		return mgr, nil
	}

	serve(srv, addr, drain, startFeed)
}

// lazyStream builds the simulated feed on first use, on the manager's
// consume goroutine — keeping multi-second corpus generation off the
// boot path so a -store restart serves within milliseconds. Next and
// Position are only ever called from that one goroutine; the sync.Once
// guards the Position-before-Next ordering, not cross-goroutine use.
type lazyStream struct {
	once  sync.Once
	build func() (*ingest.Stream, error)
	src   *ingest.Stream
	err   error
}

func (l *lazyStream) init() { l.once.Do(func() { l.src, l.err = l.build() }) }

func (l *lazyStream) Next(ctx context.Context) ([]ingest.Event, error) {
	l.init()
	if l.err != nil {
		return nil, l.err
	}
	return l.src.Next(ctx)
}

func (l *lazyStream) Position() ingest.SourcePosition {
	l.init()
	if l.err != nil {
		return ingest.SourcePosition{}
	}
	return l.src.Position()
}

// discardLoaded handles a persisted checkpoint that no longer matches the
// feed (file truncated or rewritten, or the source kind changed): the
// loaded epoch is dropped and the process cold-starts from the feed's
// beginning rather than serve a model whose history cannot be extended
// consistently.
func discardLoaded(es *epochstore.Store, err error) *epochstore.LoadResult {
	fmt.Fprintf(os.Stderr, "live: stored checkpoint does not match the feed (%v); cold-starting\n", err)
	es.RecordRecovery("resume_mismatch")
	return nil
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains. In live
// mode startFeed builds the ingest manager on a background goroutine —
// after the listener is already up, so slow feed setup (staging rebuild,
// corpus generation) never delays readiness — and its manager is then run
// until the context ends.
func serve(s *staleserve.Server, addr string, drain time.Duration, startFeed func() (*ingest.Manager, error)) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Keep the wikistale_go_* runtime gauges fresh between scrapes.
	s.StartRuntimeSampler()
	defer s.StopRuntimeSampler()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if startFeed != nil {
		go func() {
			mgr, err := startFeed()
			if err != nil {
				// Serving continues on whatever detector is installed; only
				// the feed is lost.
				log.Printf("ingest disabled: %v", err)
				return
			}
			if err := mgr.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("ingest stopped: %v", err)
				return
			}
			stats := mgr.Stats()
			if stats.SourceDone {
				fmt.Fprintf(os.Stderr, "live: feed ended after %d events; serving the final detector\n",
					stats.Staging.Events)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "listening on %s\n", addr)

	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure here; Shutdown is what
		// produces ErrServerClosed, and that path goes through ctx.Done.
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		fmt.Fprintf(os.Stderr, "shutting down, draining for up to %v\n", drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		fmt.Fprintln(os.Stderr, "bye")
	}
}

// parseSimScale parses a "sim:scale=N" source spec.
func parseSimScale(source string) (int, error) {
	spec := strings.TrimPrefix(source, "sim:")
	val, ok := strings.CutPrefix(spec, "scale=")
	if !ok {
		return 0, fmt.Errorf(`-source %q: expected "sim:scale=N"`, source)
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-source %q: scale must be a positive integer", source)
	}
	return n, nil
}

// parseByteSize parses "512MiB"-style sizes (binary units) or plain bytes.
func parseByteSize(s string) (int64, error) {
	mult := int64(1)
	num := s
	for suffix, m := range map[string]int64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30, "TiB": 1 << 40,
	} {
		if v, ok := strings.CutSuffix(s, suffix); ok {
			num, mult = v, m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("cannot parse %q (want e.g. 4GiB, 512MiB, or bytes)", s)
	}
	return n * mult, nil
}

func readCube(path string) *changecube.Cube {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	cube, err := changecube.ReadBinary(f)
	if err != nil {
		log.Fatalf("reading %s: %v", path, err)
	}
	return cube
}

// trainOrLoad loads the model file when it exists; otherwise it trains,
// and persists the result when a path was given.
func trainOrLoad(cube *changecube.Cube, modelPath string) (*core.Detector, string, error) {
	cfg := core.DefaultConfig()
	if modelPath != "" {
		if f, err := os.Open(modelPath); err == nil {
			defer f.Close()
			hs, stats, err := filter.Apply(cube, cfg.Filter)
			if err != nil {
				return nil, "", err
			}
			det, err := core.LoadModel(hs, stats, cfg, f)
			if err != nil {
				return nil, "", fmt.Errorf("loading %s: %w", modelPath, err)
			}
			return det, "loaded model", nil
		}
	}
	det, err := tracedTrain(cube, cfg)
	if err != nil {
		return nil, "", err
	}
	if modelPath != "" {
		f, err := os.Create(modelPath)
		if err != nil {
			return nil, "", err
		}
		if err := det.SaveModel(f); err != nil {
			f.Close()
			return nil, "", err
		}
		if err := f.Close(); err != nil {
			return nil, "", err
		}
		fmt.Fprintf(os.Stderr, "wrote model to %s\n", modelPath)
	}
	return det, "trained", nil
}
