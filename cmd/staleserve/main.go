// Command staleserve trains the detector on a change cube and serves
// stale-data findings over HTTP — the backend for the paper's Figure 1
// marker and for editor dashboards.
//
// Endpoints:
//
//	GET /healthz                            liveness + field count
//	GET /readyz                             readiness (503 until a detector is installed)
//	GET /v1/stale?asof=2019-09-01&window=7  everything stale in the window
//	GET /v1/field?page=P&property=X&...     marker lookup for one field
//	GET /v1/explain?page=P&property=X&...   full evidence audit for one field
//	GET /v1/audit                           recent positive verdicts served
//	GET /v1/stats                           corpus and rule statistics
//	GET /v1/ingest/stats                    live-feed progress (live mode only)
//	GET /v1/catalog                         servable (page, property) pairs (for load harnesses)
//	GET /statusz                            human-readable status page
//	GET /metrics                            Prometheus text (?format=json for JSON)
//	GET /debug/traces                       recent request/retrain traces (?route=, ?min_ns=)
//	GET /debug/slo                          SLO burn rates over rolling windows (JSON)
//	GET /debug/profiles                     pprof profiles captured by burn-rate trips
//	GET /debug/pprof/                       Go profiling endpoints
//
// Batch mode (the default) trains once on -i and serves that detector
// forever. Live mode (-live) consumes a change-event feed, retrains in
// the background, and hot-swaps the serving detector with zero downtime:
//
//	staleserve -live -source sim                 # simulated EventStreams feed
//	staleserve -live -source events.jsonl        # replay a JSONL dump, then keep serving
//	staleserve -live -source events.jsonl -follow # tail the file as it grows
//	staleserve -live -source feed.jsonl -i corpus.wcc  # warm start from a corpus
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests get up to -drain to finish, then the
// process exits.
//
// Usage:
//
//	staleserve -i corpus.wcc -addr :8080 [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/obs/olog"
	"github.com/wikistale/wikistale/internal/obs/trace"
	"github.com/wikistale/wikistale/internal/staleserve"
)

// tracedTrain trains under a root trace, so /debug/traces shows the
// startup training's filter/train stage breakdown alongside request and
// retrain traces.
func tracedTrain(cube *changecube.Cube, cfg core.Config) (*core.Detector, error) {
	ctx, span := trace.Start(context.Background(), "train")
	det, err := core.TrainCtx(ctx, cube, cfg)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return det, err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("staleserve: ")
	var (
		in      = flag.String("i", "", "input binary change cube (batch mode default: corpus.wcc; live mode: optional warm start)")
		model   = flag.String("model", "", "model file: load it when it exists, train and write it when it does not (batch mode)")
		addr    = flag.String("addr", ":8080", "listen address")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown timeout for in-flight requests")
		verbose = flag.Bool("v", false, "print the training stage-timing report")

		logLevel  = flag.String("log-level", "info", "structured-log level: debug, info, warn, or error")
		logFormat = flag.String("log-format", "text", `structured-log format: "text" or "json"`)

		live           = flag.Bool("live", false, "live mode: stream a change feed, retrain in the background, hot-swap the detector")
		source         = flag.String("source", "sim", `live feed: "sim" for a simulated EventStreams feed, or a JSONL file path`)
		follow         = flag.Bool("follow", false, "tail the JSONL source for new events instead of stopping at its end")
		retrainEvery   = flag.Duration("retrain-every", 15*time.Second, "live mode: retrain at most this often while changes are pending (0 disables)")
		retrainChanges = flag.Int("retrain-changes", 5000, "live mode: retrain after this many new changes (0 disables)")
		retrainInc     = flag.Bool("retrain-incremental", true, "live mode: reuse untouched pages' correlation rules between retrains (bit-identical, faster)")
		retrainFull    = flag.Int("retrain-full-every", 32, "live mode: force a full rebuild after this many incremental retrains (0 never)")
	)
	flag.Parse()

	// Install the trace-aware slog handler before any server or manager is
	// constructed — both capture slog.Default() at construction time.
	if _, err := olog.Setup(os.Stderr, *logLevel, *logFormat); err != nil {
		log.Fatal(err)
	}

	if *live {
		runLive(*source, *in, *addr, *drain, *follow, *retrainEvery, *retrainChanges, *retrainInc, *retrainFull)
		return
	}
	if *in == "" {
		*in = "corpus.wcc"
	}
	runBatch(*in, *model, *addr, *drain, *verbose)
}

// runBatch is the original mode: train (or load) once, serve forever.
func runBatch(in, model, addr string, drain time.Duration, verbose bool) {
	cube := readCube(in)

	start := time.Now()
	det, how, err := trainOrLoad(cube, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s on %d changes in %v; %d correlation rules, %d association rules\n",
		how, cube.NumChanges(), time.Since(start).Round(time.Millisecond),
		det.FieldCorrelations().NumRules(), det.AssociationRules().NumRules())
	if verbose {
		fmt.Fprint(os.Stderr, det.TrainReport())
	}

	serve(staleserve.New(det), addr, drain, nil)
}

// runLive wires feed → staging → background retrains → epoch hot-swaps.
func runLive(source, warmCube, addr string, drain time.Duration, follow bool, retrainEvery time.Duration, retrainChanges int, retrainInc bool, retrainFull int) {
	cfg := core.DefaultConfig()

	var src ingest.Source
	switch {
	case source == "sim":
		cube, _, err := dataset.Generate(dataset.Default())
		if err != nil {
			log.Fatalf("generating simulated feed: %v", err)
		}
		src = ingest.NewStream(cube)
		fmt.Fprintf(os.Stderr, "live: simulated feed of %d change events\n", cube.NumChanges())
	default:
		f, err := os.Open(source)
		if err != nil {
			log.Fatal(err)
		}
		js := ingest.NewJSONLSource(f)
		if follow {
			js.Follow(0)
		}
		src = js
		fmt.Fprintf(os.Stderr, "live: reading events from %s (follow=%v)\n", source, follow)
	}

	srv := staleserve.NewLive()
	var st *ingest.Staging
	var err error
	if warmCube != "" {
		cube := readCube(warmCube)
		if st, err = ingest.NewStagingFromCube(cube, cfg.Filter); err != nil {
			log.Fatal(err)
		}
		// Serve the warm-start corpus immediately; the feed refreshes it.
		det, terr := tracedTrain(cube, cfg)
		if terr != nil {
			log.Fatalf("warm-start training: %v", terr)
		}
		srv.Swap(det)
		fmt.Fprintf(os.Stderr, "live: warm start from %s (%d changes); serving while the feed streams\n",
			warmCube, cube.NumChanges())
	} else if st, err = ingest.NewStaging(cfg.Filter); err != nil {
		log.Fatal(err)
	} else {
		fmt.Fprintln(os.Stderr, "live: cold start; not ready until enough history has streamed in")
	}

	mcfg := ingest.Config{
		Train:            cfg,
		RetrainInterval:  retrainEvery,
		RetrainChanges:   retrainChanges,
		Incremental:      retrainInc,
		FullRebuildEvery: retrainFull,
	}
	mgr := ingest.NewManager(src, st, srv.Swap, mcfg)
	srv.SetIngestStats(func() any { return mgr.Stats() })
	srv.SetLagSource(mgr.FeedLag)

	serve(srv, addr, drain, mgr)
}

// serve runs the HTTP server (and, in live mode, the ingest manager)
// until SIGINT/SIGTERM, then drains.
func serve(s *staleserve.Server, addr string, drain time.Duration, mgr *ingest.Manager) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Keep the wikistale_go_* runtime gauges fresh between scrapes.
	s.StartRuntimeSampler()
	defer s.StopRuntimeSampler()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if mgr != nil {
		go func() {
			if err := mgr.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("ingest stopped: %v", err)
				return
			}
			stats := mgr.Stats()
			if stats.SourceDone {
				fmt.Fprintf(os.Stderr, "live: feed ended after %d events; serving the final detector\n",
					stats.Staging.Events)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "listening on %s\n", addr)

	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure here; Shutdown is what
		// produces ErrServerClosed, and that path goes through ctx.Done.
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		fmt.Fprintf(os.Stderr, "shutting down, draining for up to %v\n", drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		fmt.Fprintln(os.Stderr, "bye")
	}
}

func readCube(path string) *changecube.Cube {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	cube, err := changecube.ReadBinary(f)
	if err != nil {
		log.Fatalf("reading %s: %v", path, err)
	}
	return cube
}

// trainOrLoad loads the model file when it exists; otherwise it trains,
// and persists the result when a path was given.
func trainOrLoad(cube *changecube.Cube, modelPath string) (*core.Detector, string, error) {
	cfg := core.DefaultConfig()
	if modelPath != "" {
		if f, err := os.Open(modelPath); err == nil {
			defer f.Close()
			hs, stats, err := filter.Apply(cube, cfg.Filter)
			if err != nil {
				return nil, "", err
			}
			det, err := core.LoadModel(hs, stats, cfg, f)
			if err != nil {
				return nil, "", fmt.Errorf("loading %s: %w", modelPath, err)
			}
			return det, "loaded model", nil
		}
	}
	det, err := tracedTrain(cube, cfg)
	if err != nil {
		return nil, "", err
	}
	if modelPath != "" {
		f, err := os.Create(modelPath)
		if err != nil {
			return nil, "", err
		}
		if err := det.SaveModel(f); err != nil {
			f.Close()
			return nil, "", err
		}
		if err := f.Close(); err != nil {
			return nil, "", err
		}
		fmt.Fprintf(os.Stderr, "wrote model to %s\n", modelPath)
	}
	return det, "trained", nil
}
