// Command staleserve trains the detector on a change cube and serves
// stale-data findings over HTTP — the backend for the paper's Figure 1
// marker and for editor dashboards.
//
// Endpoints:
//
//	GET /healthz                            liveness + field count
//	GET /v1/stale?asof=2019-09-01&window=7  everything stale in the window
//	GET /v1/field?page=P&property=X&...     marker lookup for one field
//	GET /v1/stats                           corpus and rule statistics
//
// Usage:
//
//	staleserve -i corpus.wcc -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/staleserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("staleserve: ")
	var (
		in    = flag.String("i", "corpus.wcc", "input binary change cube")
		model = flag.String("model", "", "model file: load it when it exists, train and write it when it does not")
		addr  = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	cube, err := changecube.ReadBinary(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading %s: %v", *in, err)
	}

	start := time.Now()
	det, how, err := trainOrLoad(cube, *model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s on %d changes in %v; %d correlation rules, %d association rules\n",
		how, cube.NumChanges(), time.Since(start).Round(time.Millisecond),
		det.FieldCorrelations().NumRules(), det.AssociationRules().NumRules())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           staleserve.New(det).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}

// trainOrLoad loads the model file when it exists; otherwise it trains,
// and persists the result when a path was given.
func trainOrLoad(cube *changecube.Cube, modelPath string) (*core.Detector, string, error) {
	cfg := core.DefaultConfig()
	if modelPath != "" {
		if f, err := os.Open(modelPath); err == nil {
			defer f.Close()
			hs, stats, err := filter.Apply(cube, cfg.Filter)
			if err != nil {
				return nil, "", err
			}
			det, err := core.LoadModel(hs, stats, cfg, f)
			if err != nil {
				return nil, "", fmt.Errorf("loading %s: %w", modelPath, err)
			}
			return det, "loaded model", nil
		}
	}
	det, err := core.Train(cube, cfg)
	if err != nil {
		return nil, "", err
	}
	if modelPath != "" {
		f, err := os.Create(modelPath)
		if err != nil {
			return nil, "", err
		}
		if err := det.SaveModel(f); err != nil {
			f.Close()
			return nil, "", err
		}
		if err := f.Close(); err != nil {
			return nil, "", err
		}
		fmt.Fprintf(os.Stderr, "wrote model to %s\n", modelPath)
	}
	return det, "trained", nil
}
