// Command staleserve trains the detector on a change cube and serves
// stale-data findings over HTTP — the backend for the paper's Figure 1
// marker and for editor dashboards.
//
// Endpoints:
//
//	GET /healthz                            liveness + field count
//	GET /v1/stale?asof=2019-09-01&window=7  everything stale in the window
//	GET /v1/field?page=P&property=X&...     marker lookup for one field
//	GET /v1/stats                           corpus and rule statistics
//	GET /metrics                            Prometheus text (?format=json for JSON)
//	GET /debug/pprof/                       Go profiling endpoints
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests get up to -drain to finish, then the
// process exits.
//
// Usage:
//
//	staleserve -i corpus.wcc -addr :8080 [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/staleserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("staleserve: ")
	var (
		in      = flag.String("i", "corpus.wcc", "input binary change cube")
		model   = flag.String("model", "", "model file: load it when it exists, train and write it when it does not")
		addr    = flag.String("addr", ":8080", "listen address")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown timeout for in-flight requests")
		verbose = flag.Bool("v", false, "print the training stage-timing report")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	cube, err := changecube.ReadBinary(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading %s: %v", *in, err)
	}

	start := time.Now()
	det, how, err := trainOrLoad(cube, *model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s on %d changes in %v; %d correlation rules, %d association rules\n",
		how, cube.NumChanges(), time.Since(start).Round(time.Millisecond),
		det.FieldCorrelations().NumRules(), det.AssociationRules().NumRules())
	if *verbose {
		fmt.Fprint(os.Stderr, det.TrainReport())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           staleserve.New(det).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "listening on %s\n", *addr)

	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure here; Shutdown is what
		// produces ErrServerClosed, and that path goes through ctx.Done.
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		fmt.Fprintf(os.Stderr, "shutting down, draining for up to %v\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		fmt.Fprintln(os.Stderr, "bye")
	}
}

// trainOrLoad loads the model file when it exists; otherwise it trains,
// and persists the result when a path was given.
func trainOrLoad(cube *changecube.Cube, modelPath string) (*core.Detector, string, error) {
	cfg := core.DefaultConfig()
	if modelPath != "" {
		if f, err := os.Open(modelPath); err == nil {
			defer f.Close()
			hs, stats, err := filter.Apply(cube, cfg.Filter)
			if err != nil {
				return nil, "", err
			}
			det, err := core.LoadModel(hs, stats, cfg, f)
			if err != nil {
				return nil, "", fmt.Errorf("loading %s: %w", modelPath, err)
			}
			return det, "loaded model", nil
		}
	}
	det, err := core.Train(cube, cfg)
	if err != nil {
		return nil, "", err
	}
	if modelPath != "" {
		f, err := os.Create(modelPath)
		if err != nil {
			return nil, "", err
		}
		if err := det.SaveModel(f); err != nil {
			f.Close()
			return nil, "", err
		}
		if err := f.Close(); err != nil {
			return nil, "", err
		}
		fmt.Fprintf(os.Stderr, "wrote model to %s\n", modelPath)
	}
	return det, "trained", nil
}
