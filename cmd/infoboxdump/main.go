// Command infoboxdump parses page revision histories into a change cube:
// the ingest path from raw MediaWiki markup to the data model the detector
// trains on. Two input formats are supported:
//
//   - jsonl (default): one revision per line,
//     {"page": "London", "time": 1536000000, "text": "{{Infobox ...}}", "bot": false}
//     Revisions of the same page may appear in any order; pages may
//     interleave.
//   - xml: a MediaWiki XML export (pages-meta-history), as served by
//     dumps.wikimedia.org. Decompress before piping in.
//
// Usage:
//
//	infoboxdump -i revisions.jsonl -o corpus.wcc [-jsonl changes.jsonl]
//	infoboxdump -format xml -i dump.xml -o corpus.wcc
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/revision"
)

// inputRevision is one line of the input stream.
type inputRevision struct {
	Page string `json:"page"`
	Time int64  `json:"time"`
	Text string `json:"text"`
	Bot  bool   `json:"bot,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("infoboxdump: ")
	var (
		in     = flag.String("i", "-", "input revisions; - for stdin")
		format = flag.String("format", "jsonl", "input format: jsonl or xml (MediaWiki export)")
		out    = flag.String("o", "corpus.wcc", "output path for the binary change cube")
		jsonl  = flag.String("jsonl", "", "optional output path for a JSON-lines change dump")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	cube := changecube.New()
	extractor := revision.NewExtractor(cube)
	var nPages int
	switch *format {
	case "jsonl":
		pages, order, err := readRevisions(r)
		if err != nil {
			log.Fatal(err)
		}
		for _, page := range order {
			if err := extractor.AddPage(page, pages[page]); err != nil {
				log.Fatalf("page %q: %v", page, err)
			}
		}
		nPages = len(pages)
	case "xml":
		stats, err := revision.ParseXMLDump(r, extractor)
		if err != nil {
			log.Fatal(err)
		}
		nPages = stats.Pages
	default:
		log.Fatalf("unknown format %q (want jsonl or xml)", *format)
	}
	cube.Sort()
	if err := cube.Validate(); err != nil {
		log.Fatalf("extracted cube invalid: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := cube.WriteBinary(f); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if *jsonl != "" {
		jf, err := os.Create(*jsonl)
		if err != nil {
			log.Fatal(err)
		}
		if err := cube.WriteJSONL(jf); err != nil {
			log.Fatalf("writing %s: %v", *jsonl, err)
		}
		if err := jf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("parsed %d pages into %d changes (%d infoboxes, %d templates, %d properties)\n",
		nPages, cube.NumChanges(), cube.NumEntities(), cube.Templates.Len(), cube.Properties.Len())
}

// readRevisions groups the input stream by page, keeping first-seen page
// order for deterministic output.
func readRevisions(r io.Reader) (map[string][]revision.Revision, []string, error) {
	pages := make(map[string][]revision.Revision)
	var order []string
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<26)
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rev inputRevision
		if err := json.Unmarshal(raw, &rev); err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		if rev.Page == "" {
			return nil, nil, fmt.Errorf("line %d: missing page title", line)
		}
		if _, seen := pages[rev.Page]; !seen {
			order = append(order, rev.Page)
		}
		pages[rev.Page] = append(pages[rev.Page], revision.Revision{
			Time: rev.Time,
			Text: rev.Text,
			Bot:  rev.Bot,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, err
	}
	return pages, order, nil
}
