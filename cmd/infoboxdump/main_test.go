package main

import (
	"strings"
	"testing"
)

func TestReadRevisions(t *testing.T) {
	input := `{"page":"A","time":100,"text":"{{Infobox x|k=1}}"}
{"page":"B","time":50,"text":"{{Infobox y|k=2}}","bot":true}

{"page":"A","time":200,"text":"{{Infobox x|k=3}}"}
`
	pages, order, err := readRevisions(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("order = %v", order)
	}
	if len(pages["A"]) != 2 || len(pages["B"]) != 1 {
		t.Fatalf("pages = %v", pages)
	}
	if !pages["B"][0].Bot {
		t.Fatal("bot flag lost")
	}
	if pages["A"][1].Time != 200 {
		t.Fatalf("revision order/time wrong: %+v", pages["A"])
	}
}

func TestReadRevisionsErrors(t *testing.T) {
	if _, _, err := readRevisions(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, _, err := readRevisions(strings.NewReader(`{"time":1,"text":"x"}` + "\n")); err == nil {
		t.Fatal("missing page title accepted")
	}
}
