// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the synthetic corpus.
//
// Usage:
//
//	experiments [-exp all|table1|figure3|figure4|gridtheta|gridapriori|funnel|overlap|casestudy|stats]
//	            [-scale small|default] [-seed N] [-timing]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		exp     = flag.String("exp", "all", "experiment to run: all, table1, figure3, figure4, gridtheta, gridapriori, funnel, overlap, casestudy, extension, bytemplate, stats")
		scale   = flag.String("scale", "default", "corpus scale: small or default")
		seed    = flag.Int64("seed", 1, "corpus generation seed")
		svgDir  = flag.String("svgdir", "", "when set, also write figure3.svg and figure4.svg here")
		jsonOut = flag.String("json", "", "when set, write the machine-readable results here")
		timing  = flag.Bool("timing", false, "print the training stage-timing report")
	)
	flag.Parse()

	var cfg dataset.Config
	switch *scale {
	case "small":
		cfg = dataset.Small()
	case "default":
		cfg = dataset.Default()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	start := time.Now()
	corpus, err := experiments.Prepare(cfg, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "corpus generated and detector trained in %v (%d raw changes, %d fields)\n",
		time.Since(start).Round(time.Millisecond), corpus.Cube.NumChanges(), corpus.Filtered.Len())
	if *timing {
		fmt.Fprint(os.Stderr, corpus.Detector.TrainReport())
	}

	needReport := map[string]bool{"all": true, "table1": true, "figure4": true, "overlap": true, "stats": true}
	var report *eval.Report
	if needReport[*exp] {
		start = time.Now()
		report, err = corpus.EvaluateTest()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "test-year evaluation in %v\n", time.Since(start).Round(time.Millisecond))
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("funnel", func() error {
		fmt.Print(experiments.FunnelReport(corpus))
		return nil
	})
	if *jsonOut != "" && report != nil {
		data, err := experiments.ExportJSON(corpus, report)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	run("stats", func() error {
		fmt.Print(experiments.StatsReport(corpus, report))
		return nil
	})
	run("table1", func() error {
		fmt.Print(experiments.Table1(report))
		return nil
	})
	run("figure3", func() error {
		_, text := experiments.Figure3(corpus)
		fmt.Print(text)
		if *svgDir != "" {
			svg, err := experiments.Figure3SVG(corpus)
			if err != nil {
				return err
			}
			path := filepath.Join(*svgDir, "figure3.svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	})
	run("figure4", func() error {
		fmt.Print(experiments.Figure4(report))
		if *svgDir != "" {
			svg, err := experiments.Figure4SVG(report)
			if err != nil {
				return err
			}
			path := filepath.Join(*svgDir, "figure4.svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	})
	run("overlap", func() error {
		fmt.Print(experiments.OverlapReport(report))
		return nil
	})
	run("gridtheta", func() error {
		thetas := []float64{0.01, 0.02, 0.05, 0.075, 0.1, 0.125, 0.15}
		_, text, err := experiments.GridTheta(corpus, thetas)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	})
	run("gridapriori", func() error {
		_, text, err := experiments.GridApriori(corpus,
			[]float64{0.001, 0.0025, 0.01, 0.05},
			[]float64{0.5, 0.6, 0.75},
			[]float64{0.05, 0.1, 0.2})
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	})
	run("casestudy", func() error {
		_, text := experiments.CaseStudy(corpus)
		fmt.Print(text)
		return nil
	})
	run("bytemplate", func() error {
		_, text, err := experiments.ByTemplate(corpus)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	})
	run("extension", func() error {
		_, text, err := experiments.Extension(corpus)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	})
}
