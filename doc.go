// Package wikistale is the root of a reproduction of "Detecting Stale Data
// in Wikipedia Infoboxes" (Barth et al., EDBT 2023).
//
// The implementation lives under internal/: the change-cube data model and
// its durable store (internal/changecube, internal/cubestore), the wikitext
// and MediaWiki-dump ingest (internal/wikitext, internal/revision), the
// noise-filter pipeline (internal/filter), the field-correlation and
// association-rule change predictors (internal/correlation,
// internal/assocrules), baselines and ensembles (internal/baseline,
// internal/ensemble), the future-work extensions (internal/seasonal,
// internal/familycorr, internal/pagefamily, internal/values), the
// evaluation harness and figure rendering (internal/eval,
// internal/experiments, internal/figures), the orchestrating framework
// (internal/core), and the HTTP service (internal/staleserve).
//
// Executables are under cmd/ and runnable examples under examples/. The
// repository-level bench_test.go regenerates every table and figure of the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package wikistale
