// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §2 for the experiment index) plus ablations over the
// design decisions DESIGN.md §3 calls out. Each benchmark measures the
// compute of one experiment on the test-scale corpus; absolute quality
// numbers are attached as custom metrics where they are the experiment's
// point. Run cmd/experiments for the full formatted outputs.
package wikistale_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/wikistale/wikistale/internal/apriori"
	"github.com/wikistale/wikistale/internal/assocrules"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/cubestore"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/experiments"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/revision"
	"github.com/wikistale/wikistale/internal/timeline"
	"github.com/wikistale/wikistale/internal/wikitext"

	"github.com/wikistale/wikistale/internal/core"
)

var (
	benchOnce   sync.Once
	benchCorpus *experiments.Corpus
	benchReport *eval.Report
	benchErr    error
)

// corpus prepares the shared benchmark corpus and trained detector once.
func corpus(b *testing.B) *experiments.Corpus {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus, benchErr = experiments.Prepare(dataset.Small(), core.DefaultConfig())
		if benchErr != nil {
			return
		}
		benchReport, benchErr = benchCorpus.EvaluateTest()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCorpus
}

// BenchmarkTable1Evaluate regenerates Table 1: the full test-year
// evaluation of all six predictors at all four window sizes (E1).
func BenchmarkTable1Evaluate(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var report *eval.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = c.Detector.EvaluateTest(eval.Options{Sizes: timeline.StandardSizes})
		if err != nil {
			b.Fatal(err)
		}
	}
	or := report.BySize["OR-ensemble"][7]
	b.ReportMetric(100*or.Precision(), "OR-precision-7d-%")
	b.ReportMetric(100*or.Recall(), "OR-recall-7d-%")
}

// BenchmarkFigure3RuleMining regenerates Figure 3: association-rule mining
// and validation over the training span (E2).
func BenchmarkFigure3RuleMining(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var rules int
	for i := 0; i < b.N; i++ {
		p, err := assocrules.Train(c.Filtered, c.Detector.Splits().TrainVal, c.CoreCfg.AssocRules)
		if err != nil {
			b.Fatal(err)
		}
		rules = p.NumRules()
	}
	b.ReportMetric(float64(rules), "rules")
}

// BenchmarkFigure4OverTime regenerates Figure 4: the weekly precision and
// recall series over the 52 test weeks (E3).
func BenchmarkFigure4OverTime(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := c.Detector.EvaluateTest(eval.Options{Sizes: []int{7}, OverTimeSize: 7})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSearchTheta regenerates the §5.2 correlation-threshold
// sweep (E4).
func BenchmarkGridSearchTheta(b *testing.B) {
	c := corpus(b)
	thetas := []float64{0.01, 0.05, 0.1, 0.15}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.GridTheta(c, thetas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSearchApriori regenerates the §5.2 Apriori parameter sweep
// (E5).
func BenchmarkGridSearchApriori(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := experiments.GridApriori(c,
			[]float64{0.0025, 0.01}, []float64{0.6, 0.75}, []float64{0.1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterPipeline regenerates the §4 noise funnel (E6).
func BenchmarkFilterPipeline(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var survival float64
	for i := 0; i < b.N; i++ {
		_, stats, err := filter.Apply(c.Cube, c.CoreCfg.Filter)
		if err != nil {
			b.Fatal(err)
		}
		survival = stats.Survival()
	}
	b.ReportMetric(100*survival, "survival-%")
}

// BenchmarkOverlapAnalysis regenerates the §5.3.4 prediction-overlap
// analysis (E7).
func BenchmarkOverlapAnalysis(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var report *eval.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = c.Detector.EvaluateTest(eval.Options{
			Sizes:        []int{7},
			OverlapPairs: [][2]int{{2, 3}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	oc := report.Overlaps[eval.OverlapKey("field correlations", "association rules", 7)]
	b.ReportMetric(100*oc.FractionA(), "overlap-A-%")
	b.ReportMetric(100*oc.FractionB(), "overlap-B-%")
}

// BenchmarkCaseStudyDetection regenerates the §5.4 ground-truth case study
// (E8): detecting the planted missed updates via DetectStale.
func BenchmarkCaseStudyDetection(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var detected int
	for i := 0; i < b.N; i++ {
		detected, _ = experiments.CaseStudy(c)
	}
	b.ReportMetric(float64(detected), "detected")
}

// BenchmarkDatasetGenerate measures corpus generation (the substrate for
// every experiment, E9's dataset statistics included).
func BenchmarkDatasetGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := dataset.Generate(dataset.Small()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainCorrelation measures the page-local pairwise correlation
// search on the training span — the dominant cost of one (re)train.
func BenchmarkTrainCorrelation(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var rules int
	for i := 0; i < b.N; i++ {
		p, err := correlation.Train(c.Filtered, c.Detector.Splits().TrainVal, c.CoreCfg.Correlation)
		if err != nil {
			b.Fatal(err)
		}
		rules = p.NumRules()
	}
	b.ReportMetric(float64(rules), "rules")
}

// BenchmarkMineApriori measures the raw Apriori mining step over the
// per-template (infobox, week) transactions of the training span — the
// inner loop of assocrules.Train and of every Apriori grid point.
func BenchmarkMineApriori(b *testing.B) {
	c := corpus(b)
	cfg := c.CoreCfg.AssocRules
	txns := assocrules.BuildTransactions(c.Filtered, c.Detector.Splits().TrainVal, cfg.PeriodDays)
	mineCfg := apriori.Config{MinSupport: cfg.MinSupport, MinConfidence: cfg.MinConfidence, MaxLen: 2}
	b.ResetTimer()
	var rules int
	for i := 0; i < b.N; i++ {
		rules = 0
		for _, ts := range txns {
			mined, err := apriori.Mine(ts, mineCfg)
			if err != nil {
				b.Fatal(err)
			}
			rules += len(mined)
		}
	}
	b.ReportMetric(float64(rules), "rules")
}

// BenchmarkDetectStale measures the deployment operation: one full scan
// for stale fields over a weekly window.
func BenchmarkDetectStale(b *testing.B) {
	c := corpus(b)
	asOf := c.Filtered.Span().End
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Detector.DetectStale(asOf, 7)
	}
}

// BenchmarkPredictSingle measures a single OR-ensemble prediction — the
// per-field cost of the paper's "every field, every day" requirement.
func BenchmarkPredictSingle(b *testing.B) {
	c := corpus(b)
	h := c.Filtered.Histories()[len(c.Filtered.Histories())/2]
	w := timeline.Window{Span: timeline.NewSpan(c.Filtered.Span().End-7, c.Filtered.Span().End)}
	or := c.Detector.OrEnsemble()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := predict.NewContext(c.Filtered, h.Field, w)
		or.Predict(ctx)
	}
}

// BenchmarkWikitextParse measures infobox extraction from markup.
func BenchmarkWikitextParse(b *testing.B) {
	page := `{{Infobox settlement
| name = London
| population_total = 8,799,800 <ref name="pop">{{cite web|url=http://example.org}}</ref>
| coordinates = {{coord|51|30|N|0|7|W}}
| leader_name = [[Sadiq Khan]]
| area_km2 = 1572
}}` + strings.Repeat("\nprose ''text'' with [[links]] and {{templates|x=1}}", 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if boxes := wikitext.ParseInfoboxes(page); len(boxes) != 1 {
			b.Fatal("parse failed")
		}
	}
	b.SetBytes(int64(len(page)))
}

// BenchmarkRevisionDiff measures revision-history extraction into the
// change cube.
func BenchmarkRevisionDiff(b *testing.B) {
	revs := make([]revision.Revision, 0, 50)
	for i := 0; i < 50; i++ {
		revs = append(revs, revision.Revision{
			Time: int64(i) * 86400,
			Text: "{{Infobox club|name=FC|matches=" + strings.Repeat("1", 1+i%5) + "|goals=2}}",
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := revision.NewExtractor(changecube.New())
		if err := x.AddPage("FC", revs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCorrelationNorm compares the two distance
// normalizations of DESIGN.md §3.1: the endpoint-preserving overlap norm
// against the paper's literal length norm, at the same θ.
func BenchmarkAblationCorrelationNorm(b *testing.B) {
	c := corpus(b)
	for _, norm := range []correlation.Norm{correlation.NormOverlap, correlation.NormLength} {
		b.Run(norm.String(), func(b *testing.B) {
			cfg := c.CoreCfg.Correlation
			cfg.Norm = norm
			var counts eval.Counts
			for i := 0; i < b.N; i++ {
				p, err := correlation.Train(c.Filtered, c.Detector.Splits().TrainVal, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report, err := eval.Evaluate(c.Filtered, c.Detector.Splits().Test,
					[]predict.Predictor{p}, eval.Options{Sizes: []int{7}})
				if err != nil {
					b.Fatal(err)
				}
				counts = report.BySize[p.Name()][7]
			}
			b.ReportMetric(100*counts.Precision(), "precision-%")
			b.ReportMetric(100*counts.Recall(), "recall-%")
		})
	}
}

// BenchmarkAblationSupportScope compares per-template against global
// minimum support (DESIGN.md §3.2).
func BenchmarkAblationSupportScope(b *testing.B) {
	c := corpus(b)
	for _, scope := range []assocrules.Scope{assocrules.PerTemplate, assocrules.Global} {
		b.Run(scope.String(), func(b *testing.B) {
			cfg := c.CoreCfg.AssocRules
			cfg.SupportScope = scope
			var rules int
			for i := 0; i < b.N; i++ {
				p, err := assocrules.Train(c.Filtered, c.Detector.Splits().TrainVal, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rules = p.NumRules()
			}
			b.ReportMetric(float64(rules), "rules")
		})
	}
}

// BenchmarkAblationValidationScheme compares the transaction holdout
// against the temporal tail holdout for rule validation (DESIGN.md §3.3).
func BenchmarkAblationValidationScheme(b *testing.B) {
	c := corpus(b)
	for _, scheme := range []assocrules.ValidationScheme{assocrules.HoldoutTransactions, assocrules.HoldoutTail} {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := c.CoreCfg.AssocRules
			cfg.ValidationScheme = scheme
			var rules int
			for i := 0; i < b.N; i++ {
				p, err := assocrules.Train(c.Filtered, c.Detector.Splits().TrainVal, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rules = p.NumRules()
			}
			b.ReportMetric(float64(rules), "rules")
		})
	}
}

// BenchmarkExtensionSeasonal regenerates the §6 future-work experiment
// (E10): the OR-ensemble widened with the seasonal predictor.
func BenchmarkExtensionSeasonal(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var report *eval.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, _, err = experiments.Extension(c)
		if err != nil {
			b.Fatal(err)
		}
	}
	ext := report.BySize["extended OR-ensemble"][30]
	or := report.BySize["OR-ensemble"][30]
	b.ReportMetric(100*(ext.Recall()-or.Recall()), "recall-gain-30d-pp")
	b.ReportMetric(100*ext.Precision(), "ext-precision-30d-%")
}

// BenchmarkAblationCorrelationTolerance compares same-day co-change
// matching with delayed-update tolerances — the variant the paper reports
// trying and rejecting ("same-day worked best").
func BenchmarkAblationCorrelationTolerance(b *testing.B) {
	c := corpus(b)
	for _, tol := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("tolerance-%dd", tol), func(b *testing.B) {
			cfg := c.CoreCfg.Correlation
			cfg.ToleranceDays = tol
			var counts eval.Counts
			var rules int
			for i := 0; i < b.N; i++ {
				p, err := correlation.Train(c.Filtered, c.Detector.Splits().TrainVal, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rules = p.NumRules()
				report, err := eval.Evaluate(c.Filtered, c.Detector.Splits().Test,
					[]predict.Predictor{p}, eval.Options{Sizes: []int{7}})
				if err != nil {
					b.Fatal(err)
				}
				counts = report.BySize[p.Name()][7]
			}
			b.ReportMetric(float64(rules), "rules")
			b.ReportMetric(100*counts.Precision(), "precision-%")
			b.ReportMetric(100*counts.Recall(), "recall-%")
		})
	}
}

// BenchmarkIngestDailyBatch measures folding one day of fresh changes into
// a live detector — the paper's "update the system every day" operation.
func BenchmarkIngestDailyBatch(b *testing.B) {
	c := corpus(b)
	det, err := c.Detector.Retrain() // private detector; ingest mutates it
	if err != nil {
		b.Fatal(err)
	}
	hs := det.Histories()
	end := hs.Span().End
	// A plausible daily batch: one update for every ~50th field.
	var batch []changecube.Change
	for i, h := range hs.Histories() {
		if i%50 != 0 {
			continue
		}
		batch = append(batch, changecube.Change{
			Time:     end.Unix() + int64(i),
			Entity:   h.Field.Entity,
			Property: h.Field.Property,
			Value:    "v",
			Kind:     changecube.Update,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := det.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch)), "batch-changes")
}

// BenchmarkLiveRetrain measures the live path's retrain-to-swap latency
// after a small daily delta: the full TrainFiltered pipeline over a warm
// staging snapshot, comparing a forced full rebuild against the
// incremental path that reuses untouched pages' correlation rules. Both
// produce bit-identical detectors (see TestIncrementalRetrainEquivalence).
func BenchmarkLiveRetrain(b *testing.B) {
	c := corpus(b)
	st, err := ingest.NewStagingFromCube(c.Cube, c.CoreCfg.Filter)
	if err != nil {
		b.Fatal(err)
	}
	hs0, stats0, err := st.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	prev, err := core.TrainFiltered(hs0, stats0, c.CoreCfg)
	if err != nil {
		b.Fatal(err)
	}
	// A small delta: one fresh update on every ~100th known field, one
	// second past the corpus end.
	cube := hs0.Cube()
	end := hs0.Span().End
	var events []ingest.Event
	for i, h := range hs0.Histories() {
		if i%100 != 0 {
			continue
		}
		info := cube.Entity(h.Field.Entity)
		events = append(events, ingest.Event{
			Time:     end.Unix() + int64(i),
			Page:     cube.Pages.Name(int32(info.Page)),
			Template: cube.Templates.Name(int32(info.Template)),
			Property: cube.Properties.Name(int32(h.Field.Property)),
			Value:    "v",
			Kind:     changecube.Update,
		})
	}
	if _, err := st.Append(events); err != nil {
		b.Fatal(err)
	}
	hs, stats, dirty, err := st.SnapshotDelta()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name      string
		forceFull bool
	}{{"full", true}, {"incremental", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var reused int
			for i := 0; i < b.N; i++ {
				det, err := core.TrainFilteredHinted(hs, stats, c.CoreCfg, core.TrainHints{
					Incremental: true,
					Prev:        prev,
					DirtyFields: dirty,
					ForceFull:   mode.forceFull,
				})
				if err != nil {
					b.Fatal(err)
				}
				reused = det.CorrelationRetrain().PagesReused
			}
			b.ReportMetric(float64(reused), "pages-reused")
			b.ReportMetric(float64(len(dirty)), "dirty-fields")
		})
	}
}

// BenchmarkCubeStoreCommit measures committing a daily segment to the
// durable store.
func BenchmarkCubeStoreCommit(b *testing.B) {
	c := corpus(b)
	dir := b.TempDir()
	store, err := cubestore.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	cube := store.Cube()
	e := cube.AddEntityNamed("t", "p")
	prop := changecube.PropertyID(cube.Properties.Intern("x"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			store.Append(changecube.Change{
				Time:     int64(i*1000 + j),
				Entity:   e,
				Property: prop,
				Value:    "v",
				Kind:     changecube.Update,
			})
		}
		if err := store.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1000 * 16)
	_ = c
}

// BenchmarkCubeStoreOpen measures cold-start replay of a multi-segment
// store.
func BenchmarkCubeStoreOpen(b *testing.B) {
	dir := b.TempDir()
	store, err := cubestore.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	cube := store.Cube()
	e := cube.AddEntityNamed("t", "p")
	prop := changecube.PropertyID(cube.Properties.Intern("x"))
	for seg := 0; seg < 10; seg++ {
		for j := 0; j < 2000; j++ {
			store.Append(changecube.Change{
				Time: int64(seg*2000 + j), Entity: e, Property: prop,
				Value: "v", Kind: changecube.Update,
			})
		}
		if err := store.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cubestore.Open(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCubeBinaryRoundTrip measures the single-file serialization used
// by wikigen and staledetect.
func BenchmarkCubeBinaryRoundTrip(b *testing.B) {
	c := corpus(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := c.Cube.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := changecube.ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
