#!/usr/bin/env sh
# scalesmoke.sh — run BenchmarkScale on a streamed corpus and gate the
# two claims the scale work makes: the incremental retrain must be
# decisively faster than a forced full rebuild over the same snapshot,
# and the compact (columnar + packed-history) layout must stay well
# under the legacy row-struct layout's heap-live bytes per change.
# CI runs this at SCALE=1 (~1.2M changes, minutes not hours) and uploads
# the report; the paper-scale numbers in BENCH_SCALE.json come from a
# SCALE=8 (~10M changes) run of the same benchmark.
#
# Environment knobs:
#   SCALE        corpus multiplier over dataset.Default() (default 1)
#   OUT          report path (default bench-scale-smoke.json)
#   MIN_SPEEDUP  minimum full/incremental retrain ratio (default 5)
#   BASELINE     recorded report to gate compact bytes-per-change against
#                (default BENCH_SCALE.json; gate skipped when absent or
#                when it is the output file itself)
#   MAX_GROWTH   allowed bytes-per-change growth over baseline (default 1.25)
set -eu

SCALE=${SCALE:-1}
OUT=${OUT:-bench-scale-smoke.json}
MIN_SPEEDUP=${MIN_SPEEDUP:-5}
BASELINE=${BASELINE:-BENCH_SCALE.json}
MAX_GROWTH=${MAX_GROWTH:-1.25}

WIKISTALE_SCALE="$SCALE" WIKISTALE_SCALE_OUT="$OUT" \
  go test -run '^$' -bench '^BenchmarkScale$' -benchtime 1x -timeout 60m .

[ -f "$OUT" ] || { echo "FAIL: $OUT was not written"; exit 1; }

# Gate 1: incremental retrain speedup.
jq -e --argjson min "$MIN_SPEEDUP" '.retrain.speedup >= $min' "$OUT" > /dev/null || {
  echo "FAIL: incremental retrain speedup below ${MIN_SPEEDUP}x:"
  jq '.retrain' "$OUT"
  exit 1
}

# Gate 2: the compact layout must beat the legacy shadow by at least 2x.
jq -e '.memory.legacy_over_compact_ratio >= 2' "$OUT" > /dev/null || {
  echo "FAIL: compact layout is not >= 2x smaller than the legacy layout:"
  jq '.memory' "$OUT"
  exit 1
}

# Gate 3: bytes-per-change must not creep past the recorded baseline.
# Skipped on re-baselining runs or when no baseline is checked in.
if [ "$OUT" != "$BASELINE" ] && [ -f "$BASELINE" ]; then
  base_bpc=$(jq -r '.memory.compact_bytes_per_change // empty' "$BASELINE")
  now_bpc=$(jq -r '.memory.compact_bytes_per_change // empty' "$OUT")
  if [ -n "$base_bpc" ] && [ -n "$now_bpc" ]; then
    if awk -v now="$now_bpc" -v base="$base_bpc" -v g="$MAX_GROWTH" \
        'BEGIN { exit !(now > g * base) }'; then
      echo "FAIL: compact bytes-per-change regressed: ${now_bpc} vs baseline ${base_bpc} (> ${MAX_GROWTH}x)"
      exit 1
    fi
    echo "bytes-per-change gate OK: ${now_bpc} vs baseline ${base_bpc} (limit ${MAX_GROWTH}x)"
  else
    echo "bytes-per-change gate skipped: no entry in $BASELINE"
  fi
fi

echo "scale smoke OK:"
jq -r '"  scale \(.scale): \(.ingest.staged_changes) changes, " +
  "ingest \(.ingest.events_per_sec | floor) ev/s, " +
  "retrain \(.retrain.speedup * 10 | floor / 10)x faster incremental, " +
  "memory \(.memory.compact_bytes_per_change | floor) B/change compact vs \(.memory.legacy_bytes_per_change | floor) legacy"' "$OUT"
