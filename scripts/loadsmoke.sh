#!/usr/bin/env sh
# loadsmoke.sh — boot a live staleserve on the simulated feed, drive it
# with cmd/staleload in both loop modes, and assert the run was healthy:
# non-zero throughput, zero errors, latency quantiles present in the
# JSON report, and well-formed /debug/quality and /debug/epochdiff
# reports after the feed forced multiple swaps. CI runs this as the
# "load smoke" step and uploads the report; locally: `make loadsmoke`.
#
# Environment knobs:
#   DURATION   measured time per mode (default 5s)
#   WARMUP     discarded burn-in per mode (default 2s)
#   RPS        open-loop arrival rate (default 300)
#   CONC       worker count (default 8)
#   OUT        report path (default BENCH_HTTP.json)
#   ADDR       listen address (default :8097)
#   BASELINE   recorded report to gate the closed-loop p99 against
#              (default BENCH_HTTP.json; the gate is skipped when the
#              baseline is the output file itself or has no entry)
set -eu

DURATION=${DURATION:-5s}
WARMUP=${WARMUP:-2s}
RPS=${RPS:-300}
CONC=${CONC:-8}
OUT=${OUT:-BENCH_HTTP.json}
ADDR=${ADDR:-:8097}
BASELINE=${BASELINE:-BENCH_HTTP.json}
PORT=${ADDR##*:}

go build -o staleserve.bin ./cmd/staleserve
go build -o staleload.bin ./cmd/staleload

./staleserve.bin -live -source sim -retrain-every 2s -addr "$ADDR" -log-format json 2>server.log &
SRV=$!
trap 'kill $SRV 2>/dev/null || true; rm -f staleserve.bin staleload.bin' EXIT

# Wait for the feed to finish and the last retrain to land: while the
# simulated feed is still streaming, retrains re-filter the keyspace and
# catalog entries can vanish between epochs, turning honest lookups into
# 404s. Measuring against the settled detector keeps the error column
# meaningful.
# The [ = true ] comparison matters: jq 1.6's -e flag exits 0 on empty
# input, so a failed curl (server still booting) would end the wait early.
i=0
until [ "$(curl -sf "localhost:$PORT/v1/ingest/stats" 2>/dev/null |
           jq -r '.source_done and .pending_changes == 0' 2>/dev/null)" = true ]; do
  i=$((i + 1))
  [ "$i" -le 300 ] || { echo "FAIL: feed never settled"; exit 1; }
  sleep 1
done

./staleload.bin -url "http://localhost:$PORT" -mode both \
  -c "$CONC" -rps "$RPS" -d "$DURATION" -warmup "$WARMUP" \
  -wait 60s -json "$OUT" \
  -comment "load smoke: staleserve -live -source sim, both loop modes"

# The report must show real traffic and a clean error column for every
# recorded run, and the burn-rate plumbing must be live on /debug/slo.
jq -e '
  (.benchmarks | length) >= 2 and
  ([.benchmarks[] | select(.rps <= 0 or .errors > 0)] | length) == 0 and
  ([.benchmarks[] | select(.latency.p99_ns <= 0)] | length) == 0
' "$OUT" > /dev/null || {
  echo "FAIL: unhealthy load report in $OUT:"
  jq '.benchmarks' "$OUT"
  exit 1
}
curl -sf "localhost:$PORT/debug/slo" | jq -e '.objectives | length >= 2' > /dev/null || {
  echo "FAIL: /debug/slo missing objectives"
  exit 1
}

# Model-quality observability: with -retrain-every 2s the sim feed forces
# several epoch swaps, so the epoch-diff ring must hold at least two
# entries (boot swap + one retrain) with consistent sequence numbers, and
# the alert-outcome scorer must be live — a positive horizon, an advanced
# event-time watermark, and at least one alert registered for scoring.
curl -sf "localhost:$PORT/debug/epochdiff" | jq -e '
  .count >= 2 and (.diffs | length) == .count and
  ([.diffs[] | select(.to_seq <= .from_seq)] | length) == 0
' > /dev/null || {
  echo "FAIL: /debug/epochdiff not a well-formed multi-swap report:"
  curl -s "localhost:$PORT/debug/epochdiff" | jq . || true
  exit 1
}
curl -sf "localhost:$PORT/debug/quality" | jq -e '
  .horizon_days > 0 and .epoch >= 2 and .watermark != null and
  .tracked_total >= 1 and (.overall | has("confirmed") and has("expired"))
' > /dev/null || {
  echo "FAIL: /debug/quality not a well-formed live scoring report:"
  curl -s "localhost:$PORT/debug/quality" | jq . || true
  exit 1
}

# Latency regression gate: the closed-loop p99 of this run must stay
# within 2x of the recorded baseline. The factor is deliberately loose —
# CI runners are noisy — but a hot-path regression that doubles tail
# latency fails the build instead of silently shipping. Skipped when the
# baseline is the file just written (a re-baselining run) or carries no
# comparable entry.
if [ "$OUT" != "$BASELINE" ] && [ -f "$BASELINE" ]; then
  base_p99=$(jq -r ".benchmarks.http_closed_c${CONC}.latency.p99_ns // empty" "$BASELINE")
  now_p99=$(jq -r ".benchmarks.http_closed_c${CONC}.latency.p99_ns // empty" "$OUT")
  if [ -n "$base_p99" ] && [ -n "$now_p99" ]; then
    if awk -v now="$now_p99" -v base="$base_p99" 'BEGIN { exit !(now > 2 * base) }'; then
      echo "FAIL: closed-loop p99 regressed: ${now_p99}ns vs baseline ${base_p99}ns (> 2x)"
      exit 1
    fi
    echo "p99 gate OK: ${now_p99}ns vs baseline ${base_p99}ns (limit 2x)"
  else
    echo "p99 gate skipped: no http_closed_c${CONC} entry in $BASELINE"
  fi
fi

echo "load smoke OK:"
jq -r '.benchmarks | to_entries[] |
  "  \(.key): \(.value.rps | floor) req/s, p50 \(.value.latency.p50_ns/1000 | floor)us, p99 \(.value.latency.p99_ns/1000 | floor)us, p99.9 \(.value.latency.p999_ns/1000 | floor)us"' "$OUT"
