#!/usr/bin/env sh
# coldstartsmoke.sh — end-to-end proof of the epoch store's restart
# contract. Run 1 boots a live staleserve on the simulated feed with
# -store, waits until at least one epoch snapshot has been committed, and
# kills the process. Run 2 starts against the same store and must:
#
#   1. answer /readyz 200 within BOOT_BUDGET_MS (no retraining),
#   2. report recovery outcome "latest" with a millisecond-scale load in
#      the wikistale_epochstore_* metrics,
#   3. resume the feed from the persisted checkpoint without losing or
#      double-applying events: once its feed settles, the staged change
#      count equals an uninterrupted run's.
#
# CI runs this as the "cold-start smoke" step; locally: `make coldsmoke`.
#
# Environment knobs:
#   ADDR            listen address (default :8098)
#   BOOT_BUDGET_MS  readiness budget for the restarted process (default 2000;
#                   generous against CI scheduling noise — the load itself
#                   is tens of milliseconds and asserted separately)
set -eu

ADDR=${ADDR:-:8098}
BOOT_BUDGET_MS=${BOOT_BUDGET_MS:-2000}
PORT=${ADDR##*:}
STORE=$(mktemp -d coldsmoke.store.XXXXXX)

go build -o staleserve.bin ./cmd/staleserve

SRV=""
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
  rm -rf staleserve.bin "$STORE"
}
trap cleanup EXIT

mon() { # mon <path> — quiet curl against the server under test
  curl -sf "localhost:$PORT$1" 2>/dev/null
}

# ---- Run 1: cold start, train, snapshot at least one epoch, die. -------
./staleserve.bin -live -source sim -store "$STORE" \
  -retrain-every 1s -addr "$ADDR" -log-format json 2>server1.log &
SRV=$!

i=0
until [ "$(mon /metrics?format=json |
           jq -r '(.wikistale_epochstore_snapshots_total.series[0].value // 0) >= 1' 2>/dev/null)" = true ]; do
  i=$((i + 1))
  [ "$i" -le 300 ] || { echo "FAIL: run 1 never committed an epoch snapshot"; cat server1.log; exit 1; }
  kill -0 "$SRV" 2>/dev/null || { echo "FAIL: run 1 died early"; cat server1.log; exit 1; }
  sleep 1
done

# Let the feed settle so the uninterrupted staged-change count is the
# full corpus — the resume-equivalence reference for run 2. The raw
# staging count is used (not the detector's filtered count) because it is
# exact the moment pending hits zero, while the detector only reflects
# the final events after one more retrain swap.
i=0
until [ "$(mon /v1/ingest/stats | jq -r '.source_done and .pending_changes == 0' 2>/dev/null)" = true ]; do
  i=$((i + 1))
  [ "$i" -le 300 ] || { echo "FAIL: run 1 feed never settled"; exit 1; }
  sleep 1
done
FULL_CHANGES=$(mon /v1/ingest/stats | jq -r '.staging.changes')
[ -n "$FULL_CHANGES" ] && [ "$FULL_CHANGES" -gt 0 ] || { echo "FAIL: no staged-change count from run 1"; exit 1; }

kill "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""

# ---- Run 2: boot from the store; must be ready without retraining. -----
start_ms=$(date +%s%3N)
./staleserve.bin -live -source sim -store "$STORE" \
  -retrain-every 1s -addr "$ADDR" -log-format json 2>server2.log &
SRV=$!

# String comparison, not `jq -e`: jq 1.6's -e exits 0 on empty input,
# so a refused connection would read as "ready" (same caveat as
# loadsmoke.sh).
until [ "$(mon /readyz | jq -r '.ready' 2>/dev/null)" = true ]; do
  now_ms=$(date +%s%3N)
  [ $((now_ms - start_ms)) -le "$BOOT_BUDGET_MS" ] || {
    echo "FAIL: restart not ready within ${BOOT_BUDGET_MS}ms"; cat server2.log; exit 1; }
  kill -0 "$SRV" 2>/dev/null || { echo "FAIL: run 2 died early"; cat server2.log; exit 1; }
  sleep 0.05
done
ready_ms=$(($(date +%s%3N) - start_ms))

METRICS=$(mon /metrics?format=json)
echo "$METRICS" | jq -e '
  ([.wikistale_epochstore_recovery_total.series[]?
    | select(.labels.outcome == "latest") | .value] | add // 0) >= 1
' > /dev/null || {
  echo "FAIL: restart did not recover from the latest epoch:"
  echo "$METRICS" | jq 'with_entries(select(.key | startswith("wikistale_epochstore")))'
  exit 1
}
LOAD_S=$(echo "$METRICS" | jq -r '.wikistale_epochstore_last_load_seconds.series[0].value // 0')
awk -v s="$LOAD_S" 'BEGIN { exit !(s > 0 && s < 1) }' || {
  echo "FAIL: epoch load took ${LOAD_S}s, want sub-second"; exit 1; }

# No retraining before readiness: the detector serving right now is the
# persisted epoch (swap count is exactly the boot swap at this point or
# includes post-resume retrains later — what matters is that readiness did
# not wait on one, which the budget above already proves). Also assert the
# feed resumed mid-stream rather than replaying from zero: the resumed
# batch index is in the store's checkpoint.
mon /statusz | grep -q '"recovery_outcome": "latest"' || {
  echo "FAIL: /statusz missing the store recovery outcome"; exit 1; }

# ---- Resume equivalence: no event lost, none double-applied. ----------
i=0
until [ "$(mon /v1/ingest/stats | jq -r '.source_done and .pending_changes == 0' 2>/dev/null)" = true ]; do
  i=$((i + 1))
  [ "$i" -le 300 ] || { echo "FAIL: run 2 feed never settled"; exit 1; }
  sleep 1
done
RESUMED_CHANGES=$(mon /v1/ingest/stats | jq -r '.staging.changes')
[ "$RESUMED_CHANGES" = "$FULL_CHANGES" ] || {
  echo "FAIL: resumed run staged $RESUMED_CHANGES changes, uninterrupted run staged $FULL_CHANGES (events lost or double-applied)"
  exit 1
}

echo "cold-start smoke OK: ready in ${ready_ms}ms, epoch load ${LOAD_S}s, ${RESUMED_CHANGES} changes after resume (= full run)"
