// Package pagefamily groups the yearly incarnations of annual-event pages
// — "2018-19 Handball-Bundesliga", "2014 FIFA World Cup", "Premier League
// 2016-17 season" — under one family key, the §6 future-work idea of the
// paper: patterns learned across a family's past years transfer to the
// current year's page.
package pagefamily

import (
	"strings"
)

// Normalize returns the family key of a page title: the title with year
// tokens removed and whitespace collapsed. Titles without year tokens are
// their own family.
func Normalize(title string) string {
	fields := strings.Fields(title)
	kept := fields[:0]
	removed := false
	for _, f := range fields {
		if isYearToken(f) {
			removed = true
			continue
		}
		kept = append(kept, f)
	}
	if !removed || len(kept) == 0 {
		return strings.Join(fields, " ")
	}
	return strings.Join(kept, " ")
}

// isYearToken recognizes plain years ("2018"), year ranges with hyphen,
// en dash or slash ("2018-19", "2018–2019", "2018/19"), and parenthesized
// forms ("(2018)").
func isYearToken(tok string) bool {
	tok = strings.TrimPrefix(tok, "(")
	tok = strings.TrimSuffix(tok, ")")
	tok = strings.TrimSuffix(tok, ",")
	if tok == "" {
		return false
	}
	// Split a potential range on the first separator.
	for _, sep := range []string{"–", "—", "-", "/"} {
		if i := strings.Index(tok, sep); i > 0 {
			return isYear(tok[:i]) && isYearSuffix(tok[i+len(sep):])
		}
	}
	return isYear(tok)
}

// isYear matches a plausible 4-digit year (1000–2999).
func isYear(s string) bool {
	if len(s) != 4 {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return s[0] == '1' || s[0] == '2'
}

// isYearSuffix matches the short or long second half of a year range
// ("19" or "2019").
func isYearSuffix(s string) bool {
	if len(s) == 2 {
		for _, r := range s {
			if r < '0' || r > '9' {
				return false
			}
		}
		return true
	}
	return isYear(s)
}
