package pagefamily

import "testing"

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"2018-19 Handball-Bundesliga":     "Handball-Bundesliga",
		"2018–19 Handball-Bundesliga":     "Handball-Bundesliga", // en dash
		"2018/19 Handball-Bundesliga":     "Handball-Bundesliga",
		"2014 FIFA World Cup":             "FIFA World Cup",
		"Premier League 2016-17 season":   "Premier League season",
		"Premier League 2016-2017 season": "Premier League season",
		"UEFA Euro 2020":                  "UEFA Euro",
		"Academy Awards (2019)":           "Academy Awards",
		"London":                          "London",
		"Boeing 747":                      "Boeing 747", // not a year (3 digits)
		"Area 51":                         "Area 51",
		// Known heuristic limitation: a title year that is the subject
		// itself is still stripped.
		"1984 (novel)":           "(novel)",
		"Handball-Bundesliga":    "Handball-Bundesliga",
		"  spaced   title  ":     "spaced title",
		"3019 Kulin":             "3019 Kulin", // beyond plausible years
		"2018-19 2019-20 double": "double",
		"War of 1812":            "War of", // aggressive, acceptable for grouping
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeAllYearTokensKeepsOriginal(t *testing.T) {
	// A title that is nothing but a year must remain its own family, not
	// collapse to the empty string.
	if got := Normalize("2001"); got != "2001" {
		t.Fatalf("Normalize(2001) = %q", got)
	}
	if got := Normalize("2001 2002"); got != "2001 2002" {
		t.Fatalf("Normalize(2001 2002) = %q", got)
	}
}

func TestSameFamilyAcrossYears(t *testing.T) {
	a := Normalize("2017-18 Handball-Bundesliga")
	b := Normalize("2018-19 Handball-Bundesliga")
	c := Normalize("2018-19 Eredivisie")
	if a != b {
		t.Fatalf("consecutive seasons in different families: %q vs %q", a, b)
	}
	if a == c {
		t.Fatal("different leagues share a family")
	}
}

func TestIsYearToken(t *testing.T) {
	yes := []string{"2018", "1999", "2018-19", "2018–2019", "2018/19", "(2020)", "2020,"}
	no := []string{"abc", "747", "20188", "2018-1", "2018-199", "-2018", "18-2018", ""}
	for _, s := range yes {
		if !isYearToken(s) {
			t.Errorf("isYearToken(%q) = false", s)
		}
	}
	for _, s := range no {
		if isYearToken(s) {
			t.Errorf("isYearToken(%q) = true", s)
		}
	}
}
