package familycorr

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/timeline"
)

func lenientConfig() Config {
	return Config{
		Correlation: correlation.Config{
			Theta:         0.6,
			Norm:          correlation.NormOverlap,
			ToleranceDays: 1,
		},
		MinMembers:       2,
		MinPooledChanges: 3,
	}
}

// familyCorpus builds nFamilies annual-event families ("Cup A 2001",
// "Cup A 2002", …) of membersPer member pages each, with a handful of
// properties whose change days are random but family-correlated often
// enough for rules to appear under the lenient config.
func familyCorpus(t *testing.T, rng *rand.Rand, nFamilies, membersPer, dayRange int) *changecube.HistorySet {
	t.Helper()
	c := changecube.New()
	var histories []changecube.History
	for fam := 0; fam < nFamilies; fam++ {
		for m := 0; m < membersPer; m++ {
			e := c.AddEntityNamed("infobox event", fmt.Sprintf("Cup %c %d", 'A'+fam, 2001+m))
			// Shared event days make properties within a family co-change.
			var event []timeline.Day
			for n := 2 + rng.Intn(4); n > 0; n-- {
				event = append(event, timeline.Day(rng.Intn(dayRange)))
			}
			for p := 0; p < 3; p++ {
				prop := changecube.PropertyID(c.Properties.Intern(fmt.Sprintf("p%d", p)))
				set := map[timeline.Day]bool{}
				for _, d := range event {
					if rng.Intn(4) > 0 {
						set[d] = true
					}
				}
				for n := rng.Intn(3); n > 0; n-- {
					set[timeline.Day(rng.Intn(dayRange))] = true
				}
				if len(set) == 0 {
					continue
				}
				var days []timeline.Day
				for d := range set {
					days = append(days, d)
				}
				sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
				histories = append(histories, changecube.NewHistory(
					changecube.FieldKey{Entity: e, Property: prop}, days))
			}
		}
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

func mutateSet(t *testing.T, rng *rand.Rand, hs *changecube.HistorySet, dayRange int) (*changecube.HistorySet, map[changecube.FieldKey]bool) {
	t.Helper()
	histories := hs.Histories()
	updates := make(map[changecube.FieldKey][]timeline.Day)
	dirty := make(map[changecube.FieldKey]bool)
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		h := histories[rng.Intn(len(histories))]
		updates[h.Field] = append(updates[h.Field], timeline.Day(rng.Intn(dayRange)))
		dirty[h.Field] = true
	}
	next, err := hs.MergeDays(updates)
	if err != nil {
		t.Fatal(err)
	}
	return next, dirty
}

// addSeasonPage mutates the shared cube by adding next year's page to a
// random family and gives it one changed field — the live path where a
// family gains a member after training.
func addSeasonPage(t *testing.T, rng *rand.Rand, hs *changecube.HistorySet, year, dayRange int,
	dirty map[changecube.FieldKey]bool) *changecube.HistorySet {
	t.Helper()
	cube := hs.Cube()
	fam := rng.Intn(3)
	e := cube.AddEntityNamed("infobox event", fmt.Sprintf("Cup %c %d", 'A'+fam, year))
	prop := changecube.PropertyID(cube.Properties.Intern("p0"))
	f := changecube.FieldKey{Entity: e, Property: prop}
	next, err := hs.MergeDays(map[changecube.FieldKey][]timeline.Day{
		f: {timeline.Day(rng.Intn(dayRange))},
	})
	if err != nil {
		t.Fatal(err)
	}
	dirty[f] = true
	return next
}

// TestIncrementalMatchesColdRetrain: after every delta — including new
// member pages joining existing families — the incremental predictor must
// be DeepEqual, member index and all, to a cold Train over the same
// snapshot.
func TestIncrementalMatchesColdRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	cfg := lenientConfig()
	hs := familyCorpus(t, rng, 6, 3, 120)
	span := timeline.NewSpan(0, 120)

	prevP, stats, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full || stats.FullReason != "cold" {
		t.Fatalf("first train stats = %+v, want cold full rebuild", stats)
	}
	prev := Previous{Predictor: prevP, Span: span, Entities: hs.Cube().NumEntities()}
	reusedTotal, rulesSeen := 0, 0
	for step := 0; step < 12; step++ {
		next, dirty := mutateSet(t, rng, hs, 120)
		if step%4 == 3 {
			next = addSeasonPage(t, rng, next, 2010+step, 120, dirty)
		}
		hs = next
		inc, stats, err := TrainIncremental(hs, span, cfg, prev, dirty, false)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Train(hs, span, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, cold) {
			t.Fatalf("step %d: incremental predictor != cold predictor (stats %+v)\ninc rules:  %v\ncold rules: %v",
				step, stats, inc.Rules(), cold.Rules())
		}
		if stats.Full {
			t.Fatalf("step %d: unexpected full rebuild %+v", step, stats)
		}
		if stats.FamiliesReused+stats.FamiliesRetrained != stats.FamiliesTotal {
			t.Fatalf("family accounting off: %+v", stats)
		}
		reusedTotal += stats.FamiliesReused
		rulesSeen += inc.NumRules()
		prev = Previous{Predictor: inc, Span: span, Entities: hs.Cube().NumEntities()}
	}
	if reusedTotal == 0 {
		t.Fatal("incremental retraining never reused a family")
	}
	if rulesSeen == 0 {
		t.Fatal("corpus never produced a rule; the equivalence was vacuous")
	}
}

// TestIncrementalFullFallbacks: a moved span, a FromRules predictor (no
// member index), or the escape hatch must rebuild everything — and still
// match a cold Train.
func TestIncrementalFullFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	cfg := lenientConfig()
	hs := familyCorpus(t, rng, 5, 3, 120)
	span := timeline.NewSpan(0, 120)
	p1, _, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	next, dirty := mutateSet(t, rng, hs, 120)
	entities := hs.Cube().NumEntities()

	for _, tc := range []struct {
		name   string
		span   timeline.Span
		prev   Previous
		force  bool
		reason string
	}{
		{name: "span", span: timeline.NewSpan(0, 150),
			prev: Previous{Predictor: p1, Span: span, Entities: entities}, reason: "span"},
		{name: "forced", span: span,
			prev: Previous{Predictor: p1, Span: span, Entities: entities}, force: true, reason: "forced"},
		{name: "from_rules", span: span,
			prev: Previous{Predictor: FromRules(p1.Rules()), Span: span, Entities: entities}, reason: "cold"},
	} {
		inc, stats, err := TrainIncremental(next, tc.span, cfg, tc.prev, dirty, tc.force)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Full || stats.FullReason != tc.reason {
			t.Fatalf("%s: stats = %+v, want full rebuild with reason %q", tc.name, stats, tc.reason)
		}
		cold, err := Train(next, tc.span, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, cold) {
			t.Fatalf("%s: full-fallback predictor diverged from cold train", tc.name)
		}
	}
}
