package familycorr

// Incremental retraining: family rules are strictly family-local — a
// family's rules are a function of its own members' in-span change days
// and the config, nothing else — so a family none of whose members saw a
// new change (and which gained no member pages) reproduces its previous
// rules bit for bit. TrainIncremental extends the family index with the
// entities created since the previous training, re-pools and re-searches
// only the dirty families, and grafts the clean families' previous rules
// back in. A moved span shifts every family's pooled window at once, so
// it falls back to a full rebuild (the live span rolls at most once per
// data day; every retrain in between reuses).

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/pagefamily"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Previous carries the last successful training, the span it pooled over,
// and the entity count of the cube it trained on. Entity IDs are dense and
// append-only in the live staging lineage, so IDs at or above Entities are
// entities created since then — the only way a family gains members.
type Previous struct {
	Predictor *Predictor
	Span      timeline.Span
	Entities  int
}

// IncrementalStats reports what TrainIncremental actually did.
type IncrementalStats struct {
	// Full is true when every family was re-searched; FullReason is "cold",
	// "forced", "span", or "entities_shrunk" (the cube lost entities, which
	// the append-only ID assumption cannot survive).
	Full       bool
	FullReason string
	// FamiliesTotal counts the kept (>= MinMembers) families;
	// FamiliesReused + FamiliesRetrained == FamiliesTotal.
	FamiliesTotal     int
	FamiliesReused    int
	FamiliesRetrained int
	// NewEntities counts entities created since the previous training.
	NewEntities int
}

// TrainIncremental is Train with per-family rule reuse. dirty lists the
// fields whose change histories may differ from the previous training
// (vanished fields included — the caller must report them); prev must come
// from the same configuration. The result is bit-identical to Train over
// the same inputs.
func TrainIncremental(hs *changecube.HistorySet, span timeline.Span, cfg Config,
	prev Previous, dirty map[changecube.FieldKey]bool, forceFull bool) (*Predictor, IncrementalStats, error) {
	cube := hs.Cube()
	reason := ""
	switch {
	case forceFull:
		reason = "forced"
	case prev.Predictor == nil || prev.Predictor.allMembers == nil:
		// FromRules-built predictors carry no member index to extend.
		reason = "cold"
	case span != prev.Span:
		reason = "span"
	case cube.NumEntities() < prev.Entities:
		reason = "entities_shrunk"
	}
	if reason != "" {
		p, err := Train(hs, span, cfg)
		if err != nil {
			return nil, IncrementalStats{}, err
		}
		return p, IncrementalStats{
			Full: true, FullReason: reason,
			FamiliesTotal:     p.Families(),
			FamiliesRetrained: p.Families(),
			NewEntities:       cube.NumEntities() - prev.Entities,
		}, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, IncrementalStats{}, err
	}
	if cfg.Correlation.Theta <= 0 || cfg.Correlation.Theta > 1 {
		return nil, IncrementalStats{}, fmt.Errorf("familycorr: Theta %v out of (0,1]", cfg.Correlation.Theta)
	}

	stats := IncrementalStats{NewEntities: cube.NumEntities() - prev.Entities}

	// Extend the page→family cache with pages created since the previous
	// training. Filled entries never change (page titles are immutable in
	// the cube), so the old prefix is copied as-is.
	famOf := make([]string, cube.Pages.Len())
	copy(famOf, prev.Predictor.familyOf)

	// Extend the member index. New entities' appends clone the previous
	// slice (full-capacity slice expression) so the previous predictor —
	// still serving — is never mutated.
	allMembers := make(map[string][]changecube.EntityID, len(prev.Predictor.allMembers))
	for fam, m := range prev.Predictor.allMembers {
		allMembers[fam] = m
	}
	dirtyFams := make(map[string]bool)
	familyAt := func(e changecube.EntityID) string {
		page := cube.Page(e)
		fam := famOf[page]
		if fam == "" {
			fam = pagefamily.Normalize(cube.Pages.Name(int32(page)))
			famOf[page] = fam
		}
		return fam
	}
	for e := prev.Entities; e < cube.NumEntities(); e++ {
		id := changecube.EntityID(e)
		fam := familyAt(id)
		m := allMembers[fam]
		allMembers[fam] = append(m[:len(m):len(m)], id)
		dirtyFams[fam] = true
	}
	for f := range dirty {
		dirtyFams[familyAt(f.Entity)] = true
	}

	p := &Predictor{
		partners:   make(map[familyProperty][]changecube.PropertyID, len(prev.Predictor.partners)),
		members:    make(map[string][]changecube.EntityID, len(prev.Predictor.members)),
		allMembers: allMembers,
		familyOf:   famOf,
	}
	// Kept families: the previous keeps minus nothing (families never
	// shrink), plus dirty families that crossed MinMembers.
	for fam := range prev.Predictor.members {
		p.members[fam] = allMembers[fam]
	}
	for fam := range dirtyFams {
		if len(allMembers[fam]) >= cfg.MinMembers {
			p.members[fam] = allMembers[fam]
		}
	}

	stats.FamiliesTotal = len(p.members)

	// Re-pool and re-search the dirty kept families only. Histories are
	// sorted by (entity, property), so each member's histories form one
	// contiguous run found by binary search, and walking members in
	// ascending-ID order reproduces the full Train's pooling order.
	histories := hs.Histories()
	var retrain []string
	for fam := range dirtyFams {
		if _, ok := p.members[fam]; ok {
			retrain = append(retrain, fam)
		}
	}
	sort.Strings(retrain)
	stats.FamiliesRetrained = len(retrain)
	stats.FamiliesReused = stats.FamiliesTotal - stats.FamiliesRetrained

	retrainSet := make(map[string]bool, len(retrain))
	for _, fam := range retrain {
		retrainSet[fam] = true
	}
	var rules []Rule
	for _, r := range prev.Predictor.rules {
		if !retrainSet[r.Family] {
			rules = append(rules, r)
		}
	}
	for _, fam := range retrain {
		pooled := make(map[familyProperty][]timeline.Day)
		for _, e := range p.members[fam] {
			lo := sort.Search(len(histories), func(i int) bool { return histories[i].Field.Entity >= e })
			hi := sort.Search(len(histories), func(i int) bool { return histories[i].Field.Entity > e })
			for _, h := range histories[lo:hi] {
				key := familyProperty{family: fam, property: h.Field.Property}
				pooled[key] = append(pooled[key], h.In(span)...)
			}
		}
		keys := make([]familyProperty, 0, len(pooled))
		for key, days := range pooled {
			sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
			days = dedupDays(days)
			if len(days) < cfg.MinPooledChanges {
				delete(pooled, key)
				continue
			}
			pooled[key] = days
			keys = append(keys, key)
		}
		rules = append(rules, searchFamily(fam, keys, pooled, span, cfg)...)
	}
	sort.Slice(rules, func(i, j int) bool {
		a, b := rules[i], rules[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	p.rules = rules
	p.indexPartners()
	return p, stats, nil
}
