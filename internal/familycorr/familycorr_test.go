package familycorr

import (
	"fmt"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// seasonSeries builds a league with one page per season. Each season's
// roster and standings co-change ~6 times within its year; a noise
// property changes on unrelated days. A second, unrelated league family
// exists to ensure rules do not leak across families.
func seasonSeries(t *testing.T, years int) (*changecube.HistorySet, *changecube.Cube, []changecube.EntityID, map[string]changecube.PropertyID) {
	t.Helper()
	cube := changecube.New()
	props := map[string]changecube.PropertyID{
		"roster":    changecube.PropertyID(cube.Properties.Intern("roster")),
		"standings": changecube.PropertyID(cube.Properties.Intern("standings")),
		"noise":     changecube.PropertyID(cube.Properties.Intern("attendance")),
	}
	var histories []changecube.History
	var entities []changecube.EntityID
	addSeason := func(league string, year int) changecube.EntityID {
		page := fmt.Sprintf("%d-%02d %s", 2010+year, (10+year+1)%100, league)
		e := cube.AddEntityNamed("infobox season", page)
		entities = append(entities, e)
		base := timeline.Day(year * 365)
		var shared, noise []timeline.Day
		for g := 0; g < 6; g++ {
			shared = append(shared, base+timeline.Day(30+g*40))
			noise = append(noise, base+timeline.Day(45+g*40))
		}
		histories = append(histories,
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: props["roster"]}, shared),
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: props["standings"]}, shared),
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: props["noise"]}, noise),
		)
		return e
	}
	for year := 0; year < years; year++ {
		addSeason("Handball-Bundesliga", year)
		addSeason("Eredivisie", year)
	}
	hs, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs, cube, entities, props
}

func TestTrainFindsFamilyRules(t *testing.T) {
	hs, _, _, props := seasonSeries(t, 4)
	p, err := Train(hs, hs.Span(), Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.Families() != 2 {
		t.Fatalf("families = %d, want 2", p.Families())
	}
	// One roster~standings rule per family; noise must stay out.
	if p.NumRules() != 2 {
		t.Fatalf("rules = %+v", p.Rules())
	}
	for _, r := range p.Rules() {
		pair := map[changecube.PropertyID]bool{r.A: true, r.B: true}
		if !pair[props["roster"]] || !pair[props["standings"]] {
			t.Fatalf("unexpected rule %+v", r)
		}
		if r.Distance != 0 {
			t.Fatalf("distance = %v, want 0 (perfect co-change)", r.Distance)
		}
	}
}

func TestRuleTransfersToNewSeasonPage(t *testing.T) {
	// Train on 4 past seasons, then a 5th season page appears: the rule
	// must fire for it even though the page never existed in training —
	// the headline property of the extension.
	hs, cube, _, props := seasonSeries(t, 4)
	p, err := Train(hs, hs.Span(), Default())
	if err != nil {
		t.Fatal(err)
	}
	fresh := cube.AddEntityNamed("infobox season", "2014-15 Handball-Bundesliga")
	day := timeline.Day(4*365 + 100)
	histories := append(hs.Histories(),
		changecube.NewHistory(changecube.FieldKey{Entity: fresh, Property: props["roster"]},
			[]timeline.Day{day}),
		changecube.NewHistory(changecube.FieldKey{Entity: fresh, Property: props["standings"]},
			[]timeline.Day{day - 40}), // last updated a game ago
	)
	observed, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		t.Fatal(err)
	}
	w := timeline.Window{Span: timeline.NewSpan(day-1, day+2)}
	target := changecube.FieldKey{Entity: fresh, Property: props["standings"]}
	ctx := predict.NewContext(observed, target, w)
	if !p.Predict(ctx) {
		t.Fatal("family rule did not transfer to the new season page")
	}
	if got := p.Explain(ctx); len(got) != 1 || got[0] != props["roster"] {
		t.Fatalf("Explain = %v", got)
	}
	// An unrelated property on the fresh page stays silent.
	noiseTarget := changecube.FieldKey{Entity: fresh, Property: props["noise"]}
	if p.Predict(predict.NewContext(observed, noiseTarget, w)) {
		t.Fatal("noise property predicted")
	}
}

func TestNoCrossFamilyLeakage(t *testing.T) {
	hs, _, entities, props := seasonSeries(t, 4)
	p, err := Train(hs, hs.Span(), Default())
	if err != nil {
		t.Fatal(err)
	}
	// Eredivisie season 0 is entities[1]; its standings change on the same
	// absolute days as Handball's — but evidence must come from its own
	// family only. Quiet Eredivisie window while Handball changed:
	// impossible here since both share days, so instead check rule scoping
	// directly: the partner sets are per (family, property).
	handball := changecube.FieldKey{Entity: entities[0], Property: props["standings"]}
	w := timeline.Window{Span: timeline.NewSpan(29, 32)}
	ctx := predict.NewContext(hs, handball, w)
	if !p.Predict(ctx) {
		t.Fatal("in-family prediction missing")
	}
}

func TestSingleMemberFamiliesSkipped(t *testing.T) {
	cube := changecube.New()
	prop := changecube.PropertyID(cube.Properties.Intern("x"))
	prop2 := changecube.PropertyID(cube.Properties.Intern("y"))
	e := cube.AddEntityNamed("t", "London") // no year tokens: family of one
	days := []timeline.Day{1, 2, 3, 4, 5}
	hs, err := changecube.NewHistorySet(cube, []changecube.History{
		changecube.NewHistory(changecube.FieldKey{Entity: e, Property: prop}, days),
		changecube.NewHistory(changecube.FieldKey{Entity: e, Property: prop2}, days),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(hs, hs.Span(), Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRules() != 0 || p.Families() != 0 {
		t.Fatalf("single-member family produced rules: %+v", p.Rules())
	}
}

func TestMinPooledChanges(t *testing.T) {
	// Two seasons with only 2 shared change days each: pooled 4 < 5.
	cube := changecube.New()
	a := changecube.PropertyID(cube.Properties.Intern("a"))
	b := changecube.PropertyID(cube.Properties.Intern("b"))
	var histories []changecube.History
	for year := 0; year < 2; year++ {
		e := cube.AddEntityNamed("t", fmt.Sprintf("%d Cup", 2010+year))
		days := []timeline.Day{timeline.Day(year*365 + 10), timeline.Day(year*365 + 50)}
		histories = append(histories,
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: a}, days),
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: b}, days),
		)
	}
	hs, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(hs, hs.Span(), Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRules() != 0 {
		t.Fatalf("under-supported family rule mined: %+v", p.Rules())
	}
	// Lowering the bar admits it.
	cfg := Default()
	cfg.MinPooledChanges = 3
	p2, err := Train(hs, hs.Span(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumRules() != 1 {
		t.Fatalf("rules = %+v", p2.Rules())
	}
}

func TestConfigValidation(t *testing.T) {
	hs, _, _, _ := seasonSeries(t, 2)
	bad := []Config{
		{Correlation: Default().Correlation, MinMembers: 1, MinPooledChanges: 5},
		{Correlation: Default().Correlation, MinMembers: 2, MinPooledChanges: 0},
	}
	for i, cfg := range bad {
		if _, err := Train(hs, hs.Span(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	zeroTheta := Default()
	zeroTheta.Correlation.Theta = 0
	if _, err := Train(hs, hs.Span(), zeroTheta); err == nil {
		t.Error("zero theta accepted")
	}
}

func TestName(t *testing.T) {
	if (&Predictor{}).Name() != "family correlations" {
		t.Fatal("name wrong")
	}
}
