// Package familycorr implements the second §6 future-work extension:
// field correlations across the yearly incarnations of annual-event pages.
// "2016-17 Handball-Bundesliga", "2017-18 Handball-Bundesliga" and this
// year's season page are separate pages with separate infoboxes, so the
// paper's page-local correlation search sees each year's short history in
// isolation — and learns nothing for the page that matters most, the
// current season, which did not exist during training.
//
// Family correlations pool the change histories of a family's members per
// property, discover correlated property pairs on the pooled histories
// with the same distance measure, and apply the rules to every member —
// including members created after training, mirroring how the paper's
// template-level association rules transfer to unseen infoboxes.
package familycorr

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/pagefamily"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Config tunes training.
type Config struct {
	// Correlation supplies the distance threshold and normalization; the
	// pairwise search runs within families instead of within pages.
	Correlation correlation.Config
	// MinMembers skips families with fewer member entities — a
	// single-member family is just a page, which the paper's predictor
	// already covers.
	MinMembers int
	// MinPooledChanges requires this many pooled change days per property
	// before it participates (the counterpart of the corpus-level
	// five-change rule, applied to the pooled history).
	MinPooledChanges int
}

// Default returns the configuration used by the extension experiment.
func Default() Config {
	return Config{
		Correlation:      correlation.Default(),
		MinMembers:       2,
		MinPooledChanges: 5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MinMembers < 2 {
		return fmt.Errorf("familycorr: MinMembers %d < 2", c.MinMembers)
	}
	if c.MinPooledChanges < 1 {
		return fmt.Errorf("familycorr: MinPooledChanges %d < 1", c.MinPooledChanges)
	}
	return nil
}

// Rule is a family-level correlation: within every member page of Family,
// property A and property B change together.
type Rule struct {
	Family   string
	A, B     changecube.PropertyID
	Distance float64
}

type familyProperty struct {
	family   string
	property changecube.PropertyID
}

// Predictor holds family rules and the trained member index.
type Predictor struct {
	rules    []Rule
	partners map[familyProperty][]changecube.PropertyID
	// members indexes the kept (>= MinMembers) families' entities.
	members map[string][]changecube.EntityID
	// allMembers indexes every family, single-member ones included, and
	// familyOf caches each page's normalized family (indexed by PageID,
	// "" = page never seen on an entity). Both exist for TrainIncremental:
	// entity IDs and pages are append-only in the live staging lineage, so
	// the next training extends these instead of re-normalizing every
	// page title. FromRules leaves them nil (no member data to extend).
	allMembers map[string][]changecube.EntityID
	familyOf   []string
}

var _ predict.Predictor = (*Predictor)(nil)

// Train pools histories per (family, property) over span and discovers
// correlated property pairs within each family.
func Train(hs *changecube.HistorySet, span timeline.Span, cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Correlation.Theta <= 0 || cfg.Correlation.Theta > 1 {
		return nil, fmt.Errorf("familycorr: Theta %v out of (0,1]", cfg.Correlation.Theta)
	}
	cube := hs.Cube()

	p := &Predictor{
		partners:   make(map[familyProperty][]changecube.PropertyID),
		members:    make(map[string][]changecube.EntityID),
		allMembers: make(map[string][]changecube.EntityID),
		familyOf:   make([]string, cube.Pages.Len()),
	}

	// Group member entities per family; members keeps only the families
	// with enough pages to pool, allMembers keeps everything so a later
	// incremental training can watch families cross the threshold.
	for e := 0; e < cube.NumEntities(); e++ {
		id := changecube.EntityID(e)
		page := cube.Page(id)
		fam := p.familyOf[page]
		if fam == "" {
			fam = pagefamily.Normalize(cube.Pages.Name(int32(page)))
			p.familyOf[page] = fam
		}
		p.allMembers[fam] = append(p.allMembers[fam], id)
	}
	for fam, members := range p.allMembers {
		if len(members) >= cfg.MinMembers {
			p.members[fam] = members
		}
	}

	// Pool change days per (family, property).
	pooled := make(map[familyProperty][]timeline.Day)
	for _, h := range hs.Histories() {
		fam := p.familyOf[cube.Page(h.Field.Entity)]
		if _, ok := p.members[fam]; !ok {
			continue
		}
		key := familyProperty{family: fam, property: h.Field.Property}
		pooled[key] = append(pooled[key], h.In(span)...)
	}
	byFamily := make(map[string][]familyProperty)
	for key, days := range pooled {
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		days = dedupDays(days)
		if len(days) < cfg.MinPooledChanges {
			delete(pooled, key)
			continue
		}
		pooled[key] = days
		byFamily[key.family] = append(byFamily[key.family], key)
	}

	// Pairwise search within each family, on the pooled histories.
	var families []string
	for fam := range byFamily {
		families = append(families, fam)
	}
	sort.Strings(families)
	for _, fam := range families {
		p.rules = append(p.rules, searchFamily(fam, byFamily[fam], pooled, span, cfg)...)
	}
	p.indexPartners()
	return p, nil
}

// searchFamily runs the pairwise correlation search over one family's
// pooled per-property histories and returns its rules, ordered by (A, B).
func searchFamily(fam string, keys []familyProperty, pooled map[familyProperty][]timeline.Day,
	span timeline.Span, cfg Config) []Rule {
	sort.Slice(keys, func(i, j int) bool { return keys[i].property < keys[j].property })
	if cfg.Correlation.MaxFieldsPerPage > 0 && len(keys) > cfg.Correlation.MaxFieldsPerPage {
		return nil
	}
	var rules []Rule
	for x := 0; x < len(keys); x++ {
		for y := x + 1; y < len(keys); y++ {
			a := changecube.NewHistory(changecube.FieldKey{}, pooled[keys[x]])
			b := changecube.NewHistory(changecube.FieldKey{}, pooled[keys[y]])
			d := correlation.DistanceTolerant(a, b, span, cfg.Correlation.Norm, cfg.Correlation.ToleranceDays)
			if d < cfg.Correlation.Theta {
				rules = append(rules, Rule{
					Family:   fam,
					A:        keys[x].property,
					B:        keys[y].property,
					Distance: d,
				})
			}
		}
	}
	return rules
}

// indexPartners rebuilds the partner index from p.rules. Rules are ordered
// by (Family, A, B) — the order the family-by-family search emits them in —
// so the per-key partner lists come out identical whether built inline
// during the search or replayed from the rules afterwards.
func (p *Predictor) indexPartners() {
	for _, r := range p.rules {
		p.partners[familyProperty{family: r.Family, property: r.A}] = append(
			p.partners[familyProperty{family: r.Family, property: r.A}], r.B)
		p.partners[familyProperty{family: r.Family, property: r.B}] = append(
			p.partners[familyProperty{family: r.Family, property: r.B}], r.A)
	}
}

func dedupDays(days []timeline.Day) []timeline.Day {
	out := days[:0]
	for i, d := range days {
		if i == 0 || d != out[len(out)-1] {
			out = append(out, d)
		}
	}
	return out
}

// Name implements predict.Predictor.
func (p *Predictor) Name() string { return "family correlations" }

// Rules returns the learned family rules.
func (p *Predictor) Rules() []Rule { return p.rules }

// NumRules returns the number of family rules.
func (p *Predictor) NumRules() int { return len(p.rules) }

// Families returns the number of multi-member families indexed.
func (p *Predictor) Families() int { return len(p.members) }

// Predict implements predict.Predictor: the target property of a family
// page should have changed when a partner property changed on the same
// page within the window. The family is only the rule-learning scope —
// evidence stays page-local, exactly as template-level association rules
// learn across infoboxes but fire on same-infobox evidence. This is what
// lets the rule fire on a page created after training: the new season's
// page carries its own evidence.
func (p *Predictor) Predict(ctx predict.Context) bool {
	return len(p.explain(ctx, true)) > 0
}

// Explain returns the partner properties whose changes justify a positive
// prediction.
func (p *Predictor) Explain(ctx predict.Context) []changecube.PropertyID {
	return p.explain(ctx, false)
}

func (p *Predictor) explain(ctx predict.Context, firstOnly bool) []changecube.PropertyID {
	cube := ctx.Cube()
	target := ctx.Target()
	fam := pagefamily.Normalize(cube.Pages.Name(int32(cube.Page(target.Entity))))
	key := familyProperty{family: fam, property: target.Property}
	partnerProps := p.partners[key]
	if len(partnerProps) == 0 {
		return nil
	}
	var out []changecube.PropertyID
	for _, prop := range partnerProps {
		f := changecube.FieldKey{Entity: target.Entity, Property: prop}
		if ctx.FieldChangedIn(f, ctx.Window().Span) {
			out = append(out, prop)
			if firstOnly {
				return out
			}
		}
	}
	return out
}

// FromRules reconstructs a predictor from previously learned family rules
// — the deserialization path for model persistence. The member index is
// rebuilt lazily from the rules' families; Families reflects families with
// rules rather than all multi-member families.
func FromRules(rules []Rule) *Predictor {
	p := &Predictor{
		rules:    append([]Rule(nil), rules...),
		partners: make(map[familyProperty][]changecube.PropertyID, len(rules)),
		members:  make(map[string][]changecube.EntityID),
	}
	sort.Slice(p.rules, func(i, j int) bool {
		a, b := p.rules[i], p.rules[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	p.indexPartners()
	for _, r := range p.rules {
		p.members[r.Family] = nil
	}
	return p
}
