// Package eval implements the paper's evaluation protocol (§5.1): the
// filtered dataset is split along the time axis; predictions are made for
// every eligible field in every tumbling window of each granularity (365
// one-day, 52 seven-day, 12 thirty-day and 1 yearly window per evaluation
// year — 430 predictions per field); a prediction counts as a true
// positive when the field really changed inside the window. The harness
// also produces the per-week precision/recall series of Figure 4 and the
// prediction-overlap analysis of §5.3.4.
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Counts is a binary-classification tally.
type Counts struct {
	TP, FP, FN, TN int
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.TP += other.TP
	c.FP += other.FP
	c.FN += other.FN
	c.TN += other.TN
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when nothing changed.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Predictions returns the number of positive predictions (TP+FP), the
// absolute count the paper reports alongside precision and recall.
func (c Counts) Predictions() int { return c.TP + c.FP }

// Changed returns the number of windows containing changes (TP+FN).
func (c Counts) Changed() int { return c.TP + c.FN }

// OverlapCounts tallies how two predictors' positive predictions relate.
type OverlapCounts struct {
	Both  int // predicted by both
	OnlyA int
	OnlyB int
}

// FractionA returns the share of A's predictions that B also made.
func (o OverlapCounts) FractionA() float64 {
	if o.Both+o.OnlyA == 0 {
		return 0
	}
	return float64(o.Both) / float64(o.Both+o.OnlyA)
}

// FractionB returns the share of B's predictions that A also made.
func (o OverlapCounts) FractionB() float64 {
	if o.Both+o.OnlyB == 0 {
		return 0
	}
	return float64(o.Both) / float64(o.Both+o.OnlyB)
}

// Options tunes an evaluation run.
type Options struct {
	// Sizes are the window sizes in days (default timeline.StandardSizes).
	Sizes []int
	// OverTimeSize, when non-zero, collects per-window Counts at this
	// window size (7 for the paper's Figure 4).
	OverTimeSize int
	// OverlapPairs lists predictor index pairs whose positive predictions
	// should be cross-tabulated (§5.3.4).
	OverlapPairs [][2]int
	// ByTemplateSize, when non-zero, additionally groups counts by the
	// target field's infobox template at this window size — the
	// drill-down view for diagnosing which templates drive precision
	// loss.
	ByTemplateSize int
	// Workers bounds evaluation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Rows optionally supplies precomputed per-window change rows built by
	// predict.PrecomputeRows over the same observed set and split. Grid
	// searches share one index across grid points so the ground-truth
	// merges are not repeated per point.
	Rows *predict.RowIndex
}

// Report is the outcome of one evaluation run.
type Report struct {
	// Split is the evaluated day span.
	Split timeline.Span
	// Predictors lists the predictor names in evaluation order.
	Predictors []string
	// BySize maps predictor name -> window size -> counts.
	BySize map[string]map[int]Counts
	// OverTime maps predictor name -> counts per window index, at
	// Options.OverTimeSize (nil when not collected).
	OverTime map[string][]Counts
	// ByTemplate maps predictor name -> template id -> counts at
	// Options.ByTemplateSize (nil when not collected).
	ByTemplate map[string]map[changecube.TemplateID]Counts
	// Overlaps maps OverlapKey(nameA, nameB, size) — "nameA|nameB/size" —
	// to overlap counts, tallied separately for each evaluated window
	// size.
	Overlaps map[string]OverlapCounts
	// Fields is the number of evaluated fields (the eligibility universe).
	Fields int
}

// OverlapKey builds the Overlaps map key for a predictor pair at a size.
func OverlapKey(a, b string, size int) string {
	return fmt.Sprintf("%s|%s/%d", a, b, size)
}

// Evaluate runs every predictor over every field and window of the split.
// The observed set plays two roles, exactly as in the paper: it is the
// leakage-controlled evidence predictors may consult (enforced by
// predict.Context), and its histories are the ground truth.
func Evaluate(observed *changecube.HistorySet, split timeline.Span, predictors []predict.Predictor, opts Options) (*Report, error) {
	if len(predictors) == 0 {
		return nil, fmt.Errorf("eval: no predictors")
	}
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = timeline.StandardSizes
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("eval: invalid window size %d", s)
		}
		if split.Len() < s {
			return nil, fmt.Errorf("eval: split %v shorter than window size %d", split, s)
		}
	}
	// The per-window sections are only filled for sizes that are actually
	// evaluated; silently returning all-zero series for a size outside
	// Sizes has bitten callers, so reject the combination outright.
	if opts.OverTimeSize > 0 && !containsSize(sizes, opts.OverTimeSize) {
		return nil, fmt.Errorf("eval: OverTimeSize %d not among evaluated sizes %v", opts.OverTimeSize, sizes)
	}
	if opts.ByTemplateSize > 0 && !containsSize(sizes, opts.ByTemplateSize) {
		return nil, fmt.Errorf("eval: ByTemplateSize %d not among evaluated sizes %v", opts.ByTemplateSize, sizes)
	}
	for _, pair := range opts.OverlapPairs {
		if pair[0] < 0 || pair[0] >= len(predictors) || pair[1] < 0 || pair[1] >= len(predictors) {
			return nil, fmt.Errorf("eval: overlap pair %v out of range", pair)
		}
		if pair[0] == pair[1] {
			return nil, fmt.Errorf("eval: overlap pair %v compares a predictor with itself", pair)
		}
	}
	if opts.Rows != nil && !opts.Rows.Matches(observed, split) {
		return nil, fmt.Errorf("eval: Options.Rows was precomputed for a different observed set or split")
	}
	names := make([]string, len(predictors))
	seen := make(map[string]bool)
	for i, p := range predictors {
		names[i] = p.Name()
		if seen[names[i]] {
			return nil, fmt.Errorf("eval: duplicate predictor name %q", names[i])
		}
		seen[names[i]] = true
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	histories := observed.Histories()
	if workers > len(histories) {
		workers = len(histories)
	}
	if workers < 1 {
		workers = 1
	}

	windowsBySize := make(map[int][]timeline.Window, len(sizes))
	for _, s := range sizes {
		windowsBySize[s] = timeline.Tumbling(split, s)
	}

	span := obs.StartSpan("eval/evaluate")
	partials := make([]*Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		part := newReport(split, names, opts, windowsBySize)
		partials[w] = part
		lo := w * len(histories) / workers
		hi := (w + 1) * len(histories) / workers
		wg.Add(1)
		go func(part *Report, chunk []changecube.History) {
			defer wg.Done()
			evalChunk(part, observed, chunk, predictors, names, sizes, opts)
		}(part, histories[lo:hi])
	}
	wg.Wait()
	span.End()

	report := newReport(split, names, opts, windowsBySize)
	report.Fields = len(histories)
	for _, part := range partials {
		for name, bySize := range part.BySize {
			for size, c := range bySize {
				total := report.BySize[name][size]
				total.Add(c)
				report.BySize[name][size] = total
			}
		}
		for name, series := range part.OverTime {
			dst := report.OverTime[name]
			for i, c := range series {
				dst[i].Add(c)
			}
		}
		for name, perTemplate := range part.ByTemplate {
			dst := report.ByTemplate[name]
			for template, c := range perTemplate {
				total := dst[template]
				total.Add(c)
				dst[template] = total
			}
		}
		for key, oc := range part.Overlaps {
			total := report.Overlaps[key]
			total.Both += oc.Both
			total.OnlyA += oc.OnlyA
			total.OnlyB += oc.OnlyB
			report.Overlaps[key] = total
		}
	}
	return report, nil
}

func newReport(split timeline.Span, names []string, opts Options, windowsBySize map[int][]timeline.Window) *Report {
	r := &Report{
		Split:      split,
		Predictors: names,
		BySize:     make(map[string]map[int]Counts, len(names)),
		Overlaps:   make(map[string]OverlapCounts),
	}
	for _, n := range names {
		r.BySize[n] = make(map[int]Counts)
	}
	if opts.OverTimeSize > 0 {
		r.OverTime = make(map[string][]Counts, len(names))
		for _, n := range names {
			r.OverTime[n] = make([]Counts, len(windowsBySize[opts.OverTimeSize]))
		}
	}
	if opts.ByTemplateSize > 0 {
		r.ByTemplate = make(map[string]map[changecube.TemplateID]Counts, len(names))
		for _, n := range names {
			r.ByTemplate[n] = make(map[changecube.TemplateID]Counts)
		}
	}
	return r
}

// tallyInto classifies one (prediction, truth) decision into c.
func tallyInto(c *Counts, pred, truth bool) {
	switch {
	case pred && truth:
		c.TP++
	case pred:
		c.FP++
	case truth:
		c.FN++
	default:
		c.TN++
	}
}

func containsSize(sizes []int, s int) bool {
	for _, v := range sizes {
		if v == s {
			return true
		}
	}
	return false
}

// evalChunk scores one worker's share of the fields. For each window size
// it builds a predict.WindowSet (per-window change rows, one sorted merge
// per field) and asks every predictor for a whole row of predictions at
// once: the batch fast path when the predictor implements
// predict.BatchPredictor, the scalar Context path per window otherwise.
// Both paths answer the identical question, so reports do not depend on
// which path ran.
func evalChunk(part *Report, observed *changecube.HistorySet, chunk []changecube.History,
	predictors []predict.Predictor, names []string, sizes []int, opts Options) {

	cube := observed.Cube()
	batchers := make([]predict.BatchPredictor, len(predictors))
	for i, p := range predictors {
		if bp, ok := p.(predict.BatchPredictor); ok {
			batchers[i] = bp
		}
	}
	rows := make([][]bool, len(predictors))
	for _, size := range sizes {
		ws := predict.NewWindowSet(observed, part.Split, size, opts.Rows)
		n := len(ws.Windows())
		for i := range rows {
			if cap(rows[i]) < n {
				rows[i] = make([]bool, n)
			} else {
				rows[i] = rows[i][:n]
			}
		}
		collectOverTime := size == opts.OverTimeSize && part.OverTime != nil
		collectTemplate := size == opts.ByTemplateSize && part.ByTemplate != nil
		for _, h := range chunk {
			truth := ws.Row(h.Field)
			batch := ws.For(h.Field)
			for i, p := range predictors {
				row := rows[i]
				if batchers[i] != nil {
					batchers[i].PredictWindows(batch, row)
				} else {
					predict.ScalarPredictWindows(p, batch, row)
				}
				var c Counts
				if collectOverTime {
					series := part.OverTime[names[i]]
					for j := 0; j < n; j++ {
						tallyInto(&c, row[j], truth[j])
						tallyInto(&series[j], row[j], truth[j])
					}
				} else {
					for j := 0; j < n; j++ {
						tallyInto(&c, row[j], truth[j])
					}
				}
				total := part.BySize[names[i]][size]
				total.Add(c)
				part.BySize[names[i]][size] = total
				if collectTemplate {
					template := cube.Template(h.Field.Entity)
					tc := part.ByTemplate[names[i]][template]
					tc.Add(c)
					part.ByTemplate[names[i]][template] = tc
				}
			}
			for _, pair := range opts.OverlapPairs {
				ra, rb := rows[pair[0]], rows[pair[1]]
				var oc OverlapCounts
				for j := 0; j < n; j++ {
					switch {
					case ra[j] && rb[j]:
						oc.Both++
					case ra[j]:
						oc.OnlyA++
					case rb[j]:
						oc.OnlyB++
					}
				}
				if oc.Both+oc.OnlyA+oc.OnlyB == 0 {
					continue
				}
				key := OverlapKey(names[pair[0]], names[pair[1]], size)
				total := part.Overlaps[key]
				total.Both += oc.Both
				total.OnlyA += oc.OnlyA
				total.OnlyB += oc.OnlyB
				part.Overlaps[key] = total
			}
		}
	}
}
