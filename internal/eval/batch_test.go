package eval

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/assocrules"
	"github.com/wikistale/wikistale/internal/baseline"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/ensemble"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func TestEvaluateRejectsPerWindowSizesOutsideSizes(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	p := predict.Func{PredictorName: "p", Fn: func(predict.Context) bool { return false }}
	split := timeline.NewSpan(0, 30)
	if _, err := Evaluate(hs, split, []predict.Predictor{p},
		Options{Sizes: []int{1}, OverTimeSize: 7}); err == nil {
		t.Error("OverTimeSize outside Sizes accepted")
	}
	if _, err := Evaluate(hs, split, []predict.Predictor{p},
		Options{Sizes: []int{1}, ByTemplateSize: 7}); err == nil {
		t.Error("ByTemplateSize outside Sizes accepted")
	}
	// The sections must still work when the size is evaluated.
	report, err := Evaluate(hs, split, []predict.Predictor{p},
		Options{Sizes: []int{1, 7}, OverTimeSize: 7, ByTemplateSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.OverTime["p"]) == 0 {
		t.Error("OverTime series empty for an evaluated size")
	}
}

func TestEvaluateRejectsSelfOverlapPair(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	p := predict.Func{PredictorName: "p", Fn: func(predict.Context) bool { return false }}
	q := predict.Func{PredictorName: "q", Fn: func(predict.Context) bool { return false }}
	if _, err := Evaluate(hs, timeline.NewSpan(0, 10), []predict.Predictor{p, q},
		Options{Sizes: []int{1}, OverlapPairs: [][2]int{{1, 1}}}); err == nil {
		t.Error("self overlap pair accepted")
	}
}

func TestEvaluateRejectsMismatchedRows(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	p := predict.Func{PredictorName: "p", Fn: func(predict.Context) bool { return false }}
	split := timeline.NewSpan(0, 20)
	other := predict.PrecomputeRows(hs, timeline.NewSpan(0, 10), []int{1})
	if _, err := Evaluate(hs, split, []predict.Predictor{p},
		Options{Sizes: []int{1}, Rows: other}); err == nil {
		t.Error("Rows precomputed for a different split accepted")
	}
}

// contrary deliberately disagrees between its scalar and batch paths so a
// test can prove which one the harness ran.
type contrary struct{}

func (contrary) Name() string                 { return "contrary" }
func (contrary) Predict(predict.Context) bool { return false }
func (contrary) PredictWindows(b predict.Batch, out []bool) {
	for i := range out {
		out[i] = true
	}
}

func TestEvaluateUsesBatchPath(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	report, err := Evaluate(hs, timeline.NewSpan(0, 10), []predict.Predictor{contrary{}},
		Options{Sizes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	c := report.BySize["contrary"][1]
	// The batch path predicts every window; the scalar path would predict
	// none. 2 fields x 10 windows.
	if c.Predictions() != 20 {
		t.Fatalf("predictions = %d; batch fast path not taken", c.Predictions())
	}
}

// scalarOnly hides a predictor's PredictWindows method: the embedded
// interface only promotes Name and Predict, so the harness must fall back
// to the scalar Context path.
type scalarOnly struct{ predict.Predictor }

// richSet generates a seeded corpus large enough to train real predictors:
// pages of four fields where fields 0 and 1 co-change (the signal the
// correlation and association-rule predictors mine), field 2 follows its
// own schedule and field 3 is sparse.
func richSet(t *testing.T) *changecube.HistorySet {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	c := changecube.New()
	var histories []changecube.History
	templates := []string{"infobox person", "infobox settlement"}
	for page := 0; page < 12; page++ {
		e := c.AddEntityNamed(templates[page%len(templates)], string(rune('A'+page)))
		var co, own, sparse []timeline.Day
		for d := timeline.Day(3 + rng.Intn(4)); d < 240; d += timeline.Day(4 + rng.Intn(6)) {
			co = append(co, d)
		}
		for d := timeline.Day(1 + rng.Intn(9)); d < 240; d += timeline.Day(6 + rng.Intn(10)) {
			own = append(own, d)
		}
		for d := timeline.Day(rng.Intn(30)); d < 240; d += timeline.Day(25 + rng.Intn(40)) {
			sparse = append(sparse, d)
		}
		names := []string{"pop", "area", "leader", "motto"}
		days := [][]timeline.Day{co, co, own, sparse}
		for i, name := range names {
			f := changecube.FieldKey{Entity: e, Property: changecube.PropertyID(c.Properties.Intern(name))}
			histories = append(histories, changecube.NewHistory(f, days[i]))
		}
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

// paperPredictors trains the full predictor roster used by the paper's
// evaluation on the training part of the rich corpus.
func paperPredictors(t *testing.T, hs *changecube.HistorySet) []predict.Predictor {
	t.Helper()
	train := timeline.NewSpan(0, 120)
	val := timeline.NewSpan(60, 120)
	corrCfg := correlation.Default()
	corr, err := correlation.Train(hs, train, corrCfg)
	if err != nil {
		t.Fatal(err)
	}
	assocCfg := assocrules.Default()
	assocCfg.MinValidationFires = 1
	assocCfg.ValidationFraction = 0.25
	assoc, err := assocrules.Train(hs, train, assocCfg)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := baseline.TrainThreshold(hs, val, []int{1, 7, 30}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	and, or := ensemble.Paper(corr, assoc)
	return []predict.Predictor{
		corr, assoc, baseline.Mean{}, thr, baseline.DefaultForecast(), and, or,
	}
}

// TestEvaluateBatchScalarParity is the PR's determinism contract: the
// batch fast path, the scalar fallback, shared precomputed rows and any
// worker count must all produce the same report, bit for bit.
func TestEvaluateBatchScalarParity(t *testing.T) {
	hs := richSet(t)
	split := timeline.NewSpan(120, 240)
	predictors := paperPredictors(t, hs)
	scalars := make([]predict.Predictor, len(predictors))
	for i, p := range predictors {
		scalars[i] = scalarOnly{p}
	}
	opts := Options{
		Sizes:          []int{1, 7, 30},
		OverTimeSize:   7,
		ByTemplateSize: 7,
		OverlapPairs:   [][2]int{{0, 1}, {0, 6}},
	}
	batch1 := opts
	batch1.Workers = 1
	ref, err := Evaluate(hs, split, predictors, batch1)
	if err != nil {
		t.Fatal(err)
	}
	// Real rules must have been learned, or the parity check is vacuous.
	if c := ref.BySize[predictors[0].Name()][7]; c.Predictions() == 0 {
		t.Fatalf("correlation predictor never fired; corpus too weak: %+v", c)
	}

	batchN := opts
	batchN.Workers = 8
	scalar1 := opts
	scalar1.Workers = 1
	withRows := opts
	withRows.Workers = 4
	withRows.Rows = predict.PrecomputeRows(hs, split, opts.Sizes)
	runs := []struct {
		name       string
		predictors []predict.Predictor
		opts       Options
	}{
		{"batch workers=8", predictors, batchN},
		{"scalar workers=1", scalars, scalar1},
		{"batch shared rows workers=4", predictors, withRows},
	}
	for _, run := range runs {
		got, err := Evaluate(hs, split, run.predictors, run.opts)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("%s: report differs from batch workers=1 reference", run.name)
		}
	}
}
