package eval

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func TestCountsMetrics(t *testing.T) {
	c := Counts{TP: 8, FP: 2, FN: 24, TN: 100}
	if got := c.Precision(); got != 0.8 {
		t.Fatalf("precision = %v", got)
	}
	if got := c.Recall(); got != 0.25 {
		t.Fatalf("recall = %v", got)
	}
	if c.Predictions() != 10 || c.Changed() != 32 {
		t.Fatalf("predictions=%d changed=%d", c.Predictions(), c.Changed())
	}
	var zero Counts
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Fatal("zero counts should yield zero metrics")
	}
}

func TestOverlapFractions(t *testing.T) {
	o := OverlapCounts{Both: 40, OnlyA: 60, OnlyB: 10}
	if got := o.FractionA(); got != 0.4 {
		t.Fatalf("FractionA = %v", got)
	}
	if got := o.FractionB(); got != 0.8 {
		t.Fatalf("FractionB = %v", got)
	}
	var zero OverlapCounts
	if zero.FractionA() != 0 || zero.FractionB() != 0 {
		t.Fatal("zero overlap fractions")
	}
}

// twoFieldSet builds a set with two fields: "steady" changes on every even
// day; "quiet" changes only on day 2.
func twoFieldSet(t *testing.T) (*changecube.HistorySet, changecube.FieldKey, changecube.FieldKey) {
	t.Helper()
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	steady := changecube.FieldKey{Entity: e, Property: changecube.PropertyID(c.Properties.Intern("steady"))}
	quiet := changecube.FieldKey{Entity: e, Property: changecube.PropertyID(c.Properties.Intern("quiet"))}
	var evens []timeline.Day
	for d := timeline.Day(0); d < 100; d += 2 {
		evens = append(evens, d)
	}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(steady, evens),
		changecube.NewHistory(quiet, []timeline.Day{2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return hs, steady, quiet
}

func TestEvaluatePerfectAndNeverPredictors(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	split := timeline.NewSpan(0, 20)
	// The oracle cheats by reading the ground truth directly — it measures
	// the harness, not a real predictor.
	oracle := predict.Func{PredictorName: "oracle", Fn: func(ctx predict.Context) bool {
		h, _ := hs.Get(ctx.Target())
		return h.ChangedIn(ctx.Window().Span)
	}}
	never := predict.Func{PredictorName: "never", Fn: func(predict.Context) bool { return false }}
	always := predict.Func{PredictorName: "always", Fn: func(predict.Context) bool { return true }}

	report, err := Evaluate(hs, split, []predict.Predictor{oracle, never, always}, Options{Sizes: []int{1, 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth at size 1 over [0,20): steady changes in 10 windows,
	// quiet in 1 -> 11 changed windows of 40 total (2 fields x 20).
	oc := report.BySize["oracle"][1]
	if oc.TP != 11 || oc.FP != 0 || oc.FN != 0 || oc.TN != 29 {
		t.Fatalf("oracle 1d counts = %+v", oc)
	}
	if oc.Precision() != 1 || oc.Recall() != 1 {
		t.Fatalf("oracle metrics wrong: %+v", oc)
	}
	nc := report.BySize["never"][1]
	if nc.TP != 0 || nc.FP != 0 || nc.FN != 11 || nc.TN != 29 {
		t.Fatalf("never 1d counts = %+v", nc)
	}
	ac := report.BySize["always"][1]
	if ac.Predictions() != 40 || ac.TP != 11 || ac.FP != 29 {
		t.Fatalf("always 1d counts = %+v", ac)
	}
	// 7-day windows over [0,20): 2 complete windows x 2 fields. steady
	// changes in both; quiet changes in window 0 only.
	o7 := report.BySize["oracle"][7]
	if o7.TP != 3 || o7.TN != 1 {
		t.Fatalf("oracle 7d counts = %+v", o7)
	}
	if report.Fields != 2 {
		t.Fatalf("fields = %d", report.Fields)
	}
}

func TestEvaluateOverTime(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	split := timeline.NewSpan(0, 21)
	always := predict.Func{PredictorName: "always", Fn: func(predict.Context) bool { return true }}
	report, err := Evaluate(hs, split, []predict.Predictor{always},
		Options{Sizes: []int{7}, OverTimeSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	series := report.OverTime["always"]
	if len(series) != 3 {
		t.Fatalf("series length = %d", len(series))
	}
	// Window 0 ([0,7)): steady + quiet changed -> TP 2. Windows 1, 2: only
	// steady -> TP 1, FP 1.
	if series[0].TP != 2 || series[0].FP != 0 {
		t.Fatalf("week 0 = %+v", series[0])
	}
	if series[1].TP != 1 || series[1].FP != 1 {
		t.Fatalf("week 1 = %+v", series[1])
	}
	// Per-window counts must sum to the size totals.
	var sum Counts
	for _, c := range series {
		sum.Add(c)
	}
	if sum != report.BySize["always"][7] {
		t.Fatalf("over-time sum %+v != total %+v", sum, report.BySize["always"][7])
	}
}

func TestEvaluateOverlap(t *testing.T) {
	hs, steady, _ := twoFieldSet(t)
	split := timeline.NewSpan(0, 10)
	onlySteady := predict.Func{PredictorName: "steady-only", Fn: func(ctx predict.Context) bool {
		return ctx.Target() == steady
	}}
	always := predict.Func{PredictorName: "always", Fn: func(predict.Context) bool { return true }}
	report, err := Evaluate(hs, split, []predict.Predictor{onlySteady, always},
		Options{Sizes: []int{1}, OverlapPairs: [][2]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	oc := report.Overlaps[OverlapKey("steady-only", "always", 1)]
	// steady-only predicts 10 windows (all for steady), always predicts 20.
	if oc.Both != 10 || oc.OnlyA != 0 || oc.OnlyB != 10 {
		t.Fatalf("overlap = %+v", oc)
	}
	if oc.FractionA() != 1.0 || oc.FractionB() != 0.5 {
		t.Fatalf("fractions = %v, %v", oc.FractionA(), oc.FractionB())
	}
}

func TestEvaluateLeakageDiscipline(t *testing.T) {
	// A cheating predictor that tries to read the target's change inside
	// the window through the context must see nothing.
	hs, steady, _ := twoFieldSet(t)
	split := timeline.NewSpan(10, 20)
	cheat := predict.Func{PredictorName: "cheat", Fn: func(ctx predict.Context) bool {
		return ctx.FieldChangedIn(ctx.Target(), ctx.Window().Span)
	}}
	report, err := Evaluate(hs, split, []predict.Predictor{cheat}, Options{Sizes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	c := report.BySize["cheat"][1]
	if c.TP != 0 || c.FP != 0 {
		t.Fatalf("cheating predictor produced predictions: %+v", c)
	}
	_ = steady
}

func TestEvaluateValidation(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	p := predict.Func{PredictorName: "p", Fn: func(predict.Context) bool { return false }}
	if _, err := Evaluate(hs, timeline.NewSpan(0, 10), nil, Options{}); err == nil {
		t.Error("no predictors accepted")
	}
	if _, err := Evaluate(hs, timeline.NewSpan(0, 10), []predict.Predictor{p}, Options{Sizes: []int{0}}); err == nil {
		t.Error("zero window size accepted")
	}
	if _, err := Evaluate(hs, timeline.NewSpan(0, 3), []predict.Predictor{p}, Options{Sizes: []int{7}}); err == nil {
		t.Error("split shorter than window accepted")
	}
	if _, err := Evaluate(hs, timeline.NewSpan(0, 10), []predict.Predictor{p},
		Options{Sizes: []int{1}, OverlapPairs: [][2]int{{0, 5}}}); err == nil {
		t.Error("out-of-range overlap pair accepted")
	}
	if _, err := Evaluate(hs, timeline.NewSpan(0, 10), []predict.Predictor{p, p}, Options{Sizes: []int{1}}); err == nil {
		t.Error("duplicate predictor names accepted")
	}
}

func TestEvaluateParallelDeterministic(t *testing.T) {
	hs, _, _ := twoFieldSet(t)
	split := timeline.NewSpan(0, 50)
	always := predict.Func{PredictorName: "always", Fn: func(predict.Context) bool { return true }}
	seq, err := Evaluate(hs, split, []predict.Predictor{always}, Options{Sizes: []int{1, 7}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(hs, split, []predict.Predictor{always}, Options{Sizes: []int{1, 7}, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 7} {
		if seq.BySize["always"][size] != par.BySize["always"][size] {
			t.Fatalf("size %d: sequential %+v != parallel %+v",
				size, seq.BySize["always"][size], par.BySize["always"][size])
		}
	}
}

func TestPaperWindowArithmetic(t *testing.T) {
	// A 365-day split must produce 430 predictions per field across the
	// four standard sizes.
	hs, _, _ := twoFieldSet(t)
	split := timeline.NewSpan(0, 365)
	always := predict.Func{PredictorName: "always", Fn: func(predict.Context) bool { return true }}
	report, err := Evaluate(hs, split, []predict.Predictor{always}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, size := range timeline.StandardSizes {
		c := report.BySize["always"][size]
		total += c.TP + c.FP + c.FN + c.TN
	}
	if total != 430*2 {
		t.Fatalf("decisions = %d, want 860 (430 per field)", total)
	}
}

func TestEvaluateByTemplate(t *testing.T) {
	// Two templates: "active" fields change daily, "quiet" weekly.
	c := changecube.New()
	ea := c.AddEntityNamed("infobox active", "A")
	eq := c.AddEntityNamed("infobox quiet", "Q")
	prop := changecube.PropertyID(c.Properties.Intern("x"))
	var daily, weekly []timeline.Day
	for d := timeline.Day(0); d < 50; d++ {
		daily = append(daily, d)
		if d%7 == 0 {
			weekly = append(weekly, d)
		}
	}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(changecube.FieldKey{Entity: ea, Property: prop}, daily),
		changecube.NewHistory(changecube.FieldKey{Entity: eq, Property: prop}, weekly),
	})
	if err != nil {
		t.Fatal(err)
	}
	always := predict.Func{PredictorName: "always", Fn: func(predict.Context) bool { return true }}
	report, err := Evaluate(hs, timeline.NewSpan(0, 28), []predict.Predictor{always},
		Options{Sizes: []int{1}, ByTemplateSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	activeID, _ := c.Templates.Lookup("infobox active")
	quietID, _ := c.Templates.Lookup("infobox quiet")
	perTemplate := report.ByTemplate["always"]
	active := perTemplate[changecube.TemplateID(activeID)]
	quiet := perTemplate[changecube.TemplateID(quietID)]
	if active.TP != 28 || active.FP != 0 {
		t.Fatalf("active template counts = %+v", active)
	}
	if quiet.TP != 4 || quiet.FP != 24 {
		t.Fatalf("quiet template counts = %+v", quiet)
	}
	// Per-template counts must sum to the size totals.
	var sum Counts
	for _, c := range perTemplate {
		sum.Add(c)
	}
	if sum != report.BySize["always"][1] {
		t.Fatalf("per-template sum %+v != total %+v", sum, report.BySize["always"][1])
	}
}
