package assocrules

import (
	"testing"

	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func TestPredictWindowsMatchesScalar(t *testing.T) {
	hs, span, _ := leagueCorpus(t, 10)
	p, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRules() == 0 {
		t.Fatal("no rules trained; equivalence check would be vacuous")
	}
	split := timeline.NewSpan(560, 700)
	for _, size := range []int{1, 7} {
		ws := predict.NewWindowSet(hs, split, size, nil)
		for _, h := range hs.Histories() {
			b := ws.For(h.Field)
			batch := make([]bool, b.NumWindows())
			scalar := make([]bool, b.NumWindows())
			p.PredictWindows(b, batch)
			predict.ScalarPredictWindows(p, b, scalar)
			for i := range batch {
				if batch[i] != scalar[i] {
					t.Fatalf("size %d field %v window %d: batch %v != scalar %v",
						size, h.Field, i, batch[i], scalar[i])
				}
			}
		}
	}
}
