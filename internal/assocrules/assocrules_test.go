package assocrules

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// leagueCorpus builds the paper's running example: a "football league
// season" template where every change to matches is accompanied by a
// change to total_goals in the same week, while total_goals also changes
// on its own — an asymmetric implication that only the rule matches →
// total_goals should capture. A second noisy pair (attendance → stadium)
// co-changes during the mining slice but decouples in the validation
// slice, so rule validation must discard it.
func leagueCorpus(t *testing.T, nEntities int) (*changecube.HistorySet, timeline.Span, map[string]changecube.PropertyID) {
	t.Helper()
	c := changecube.New()
	props := map[string]changecube.PropertyID{}
	for _, name := range []string{"matches", "total_goals", "attendance", "stadium"} {
		props[name] = changecube.PropertyID(c.Properties.Intern(name))
	}
	span := timeline.NewSpan(0, 700) // 100 weeks; validation = last 70 days
	var histories []changecube.History
	for i := 0; i < nEntities; i++ {
		e := c.AddEntityNamed("infobox football league season", pageName(i))
		var matches, goals, att, stadium []timeline.Day
		for week := 0; week < 100; week++ {
			day := timeline.Day(week*7 + 1)
			switch {
			case week%4 == 0:
				// Match weeks: matches and goals change together.
				matches = append(matches, day)
				goals = append(goals, day)
			case week%2 == 1:
				// Odd weeks: goals change alone (corrections etc.), so the
				// reverse rule goals -> matches has confidence 25/75 = 1/3.
				goals = append(goals, day)
			default:
				// Weeks ≡ 2 mod 4: attendance+stadium co-change during
				// mining; in the validation slice (weeks 90+) attendance
				// changes alone.
				att = append(att, day+1)
				if week < 90 {
					stadium = append(stadium, day+1)
				}
			}
		}
		histories = append(histories,
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: props["matches"]}, matches),
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: props["total_goals"]}, goals),
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: props["attendance"]}, att),
			changecube.NewHistory(changecube.FieldKey{Entity: e, Property: props["stadium"]}, stadium),
		)
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs, span, props
}

func pageName(i int) string {
	return "Season " + string(rune('A'+i%26)) + string(rune('0'+i/26))
}

func findRule(rules []Rule, ante, cons changecube.PropertyID) (Rule, bool) {
	for _, r := range rules {
		if r.Antecedent == ante && r.Consequent == cons {
			return r, true
		}
	}
	return Rule{}, false
}

func TestTrainFindsAsymmetricRule(t *testing.T) {
	hs, span, props := leagueCorpus(t, 10)
	p, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := findRule(p.Rules(), props["matches"], props["total_goals"])
	if !ok {
		t.Fatalf("matches -> total_goals not mined; rules: %v", p.Rules())
	}
	if r.Confidence < 0.99 {
		t.Fatalf("confidence = %v, want ~1", r.Confidence)
	}
	if r.ValidationPrecision < 0.99 {
		t.Fatalf("validation precision = %v, want ~1", r.ValidationPrecision)
	}
	// The reverse direction has confidence 0.5 < 0.6 and must be absent.
	if _, ok := findRule(p.Rules(), props["total_goals"], props["matches"]); ok {
		t.Fatal("symmetric reverse rule mined despite low confidence")
	}
}

func TestValidationDiscardsDecoupledRule(t *testing.T) {
	// The corpus decouples attendance/stadium in the final 10% of the
	// span, so the temporal holdout must catch it.
	hs, span, props := leagueCorpus(t, 10)
	tailCfg := Default()
	tailCfg.ValidationScheme = HoldoutTail
	// The tail holdout is small here; without this the confidence
	// fallback would keep the decoupled rule.
	tailCfg.MinValidationFires = 1
	p, err := Train(hs, span, tailCfg)
	if err != nil {
		t.Fatal(err)
	}
	// attendance -> stadium holds on the mining slice (conf 1.0) but fails
	// on the validation slice (stadium stops changing).
	if _, ok := findRule(p.Rules(), props["attendance"], props["stadium"]); ok {
		t.Fatal("rule with zero validation precision kept")
	}
	// stadium -> attendance remains fine: whenever stadium changed,
	// attendance changed too. stadium never fires in the tail holdout, so
	// the rule is kept via the mining-confidence fallback, flagged as
	// unvalidated.
	r, ok := findRule(p.Rules(), props["stadium"], props["attendance"])
	if !ok {
		t.Fatal("confidence fallback dropped a perfect unvalidatable rule")
	}
	if r.Fires != 0 || r.ValidationPrecision != -1 {
		t.Fatalf("unvalidated rule not flagged: %+v", r)
	}
	cfg := tailCfg
	cfg.KeepUnvalidated = true
	p2, err := Train(hs, span, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := findRule(p2.Rules(), props["stadium"], props["attendance"]); !ok || r.Fires != 0 {
		t.Fatalf("KeepUnvalidated did not keep the unfired rule: %v, ok=%v", r, ok)
	}
}

func TestPredictViaRule(t *testing.T) {
	hs, span, props := leagueCorpus(t, 10)
	p, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	// Week 96 ≡ 0 mod 4: matches changed on day 96*7+1 = 673. Predicting
	// total_goals in the window [672, 679) must fire via the rule.
	target := changecube.FieldKey{Entity: 0, Property: props["total_goals"]}
	w := timeline.Window{Span: timeline.NewSpan(672, 679)}
	ctx := predict.NewContext(hs, target, w)
	if !p.Predict(ctx) {
		t.Fatal("rule did not fire on antecedent change")
	}
	if got := p.Explain(ctx); len(got) != 1 || got[0] != props["matches"] {
		t.Fatalf("Explain = %v", got)
	}
	// Week 97 is odd: goals change alone (hidden from the predictor as the
	// target) and no antecedent changed, so no prediction fires.
	wOdd := timeline.Window{Span: timeline.NewSpan(679, 686)}
	if p.Predict(predict.NewContext(hs, target, wOdd)) {
		t.Fatal("rule fired without antecedent change")
	}
	// matches itself is not a consequent of any rule: never predicted.
	tm := changecube.FieldKey{Entity: 0, Property: props["matches"]}
	if p.Predict(predict.NewContext(hs, tm, w)) {
		t.Fatal("prediction for a property with no rule")
	}
}

func TestRuleAppliesToUnseenEntityOfSameTemplate(t *testing.T) {
	hs, span, props := leagueCorpus(t, 10)
	p, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	// A brand-new entity of the same template, absent from training:
	// template-level rules still apply. Build an observation set that
	// includes it.
	cube := hs.Cube()
	fresh := cube.AddEntityNamed("infobox football league season", "Season New")
	histories := append([]changecube.History{}, hs.Histories()...)
	histories = append(histories,
		changecube.NewHistory(changecube.FieldKey{Entity: fresh, Property: props["matches"]}, []timeline.Day{700}),
		changecube.NewHistory(changecube.FieldKey{Entity: fresh, Property: props["total_goals"]}, []timeline.Day{900}),
	)
	observed, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		t.Fatal(err)
	}
	target := changecube.FieldKey{Entity: fresh, Property: props["total_goals"]}
	w := timeline.Window{Span: timeline.NewSpan(698, 705)}
	if !p.Predict(predict.NewContext(observed, target, w)) {
		t.Fatal("template rule did not transfer to unseen entity")
	}
}

func TestBuildTransactions(t *testing.T) {
	hs, _, props := leagueCorpus(t, 2)
	span := timeline.NewSpan(0, 21) // weeks 0,1,2
	txns := BuildTransactions(hs, span, 7)
	if len(txns) != 1 {
		t.Fatalf("templates = %d, want 1", len(txns))
	}
	for _, ts := range txns {
		// 2 entities x 3 weeks, every (entity, week) has changes:
		// week 0 {matches, goals}, week 1 {goals}, week 2 {att, stadium}.
		if len(ts) != 6 {
			t.Fatalf("transactions = %d, want 6", len(ts))
		}
		singles, pairs := 0, 0
		for _, txn := range ts {
			switch len(txn) {
			case 1:
				singles++
			case 2:
				pairs++
			default:
				t.Fatalf("unexpected transaction size %d: %v", len(txn), txn)
			}
		}
		if singles != 2 || pairs != 4 {
			t.Fatalf("singles = %d pairs = %d, want 2 and 4", singles, pairs)
		}
	}
	_ = props
}

func TestBuildTransactionsDropsTrailingPartialPeriod(t *testing.T) {
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	prop := changecube.PropertyID(c.Properties.Intern("x"))
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(changecube.FieldKey{Entity: e, Property: prop}, []timeline.Day{1, 8, 15}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Span of 16 days = 2 full weeks + 2 days; the change on day 15 falls
	// into the partial third period and must be dropped.
	txns := BuildTransactions(hs, timeline.NewSpan(0, 16), 7)
	total := 0
	for _, ts := range txns {
		total += len(ts)
	}
	if total != 2 {
		t.Fatalf("transactions = %d, want 2 (partial period dropped)", total)
	}
}

func TestSupportScopeGlobal(t *testing.T) {
	hs, span, props := leagueCorpus(t, 10)
	cfg := Default()
	cfg.SupportScope = Global
	p, err := Train(hs, span, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One template only: global and per-template coincide here.
	if _, ok := findRule(p.Rules(), props["matches"], props["total_goals"]); !ok {
		t.Fatal("global scope lost the rule on a single-template corpus")
	}
	for _, r := range p.Rules() {
		if r.Support <= 0 || r.Support > 1 {
			t.Fatalf("global support out of range: %v", r)
		}
	}
}

func TestRulesPerTemplateAndCoverage(t *testing.T) {
	hs, span, _ := leagueCorpus(t, 10)
	p, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	per := p.RulesPerTemplate()
	if len(per) != 1 {
		t.Fatalf("templates with rules = %d", len(per))
	}
	for _, n := range per {
		if n != p.NumRules() {
			t.Fatalf("per-template count %d != total %d", n, p.NumRules())
		}
	}
	if got := p.CoveredPages(hs.Cube()); got != 10 {
		t.Fatalf("covered pages = %d, want 10", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MinSupport: 0, MinConfidence: 0.5, ValidationFraction: 0.1, RulePrecisionCut: 0.9, PeriodDays: 7},
		{MinSupport: 0.1, MinConfidence: 1.5, ValidationFraction: 0.1, RulePrecisionCut: 0.9, PeriodDays: 7},
		{MinSupport: 0.1, MinConfidence: 0.5, ValidationFraction: 1, RulePrecisionCut: 0.9, PeriodDays: 7},
		{MinSupport: 0.1, MinConfidence: 0.5, ValidationFraction: 0.1, RulePrecisionCut: 2, PeriodDays: 7},
		{MinSupport: 0.1, MinConfidence: 0.5, ValidationFraction: 0.1, RulePrecisionCut: 0.9, PeriodDays: 0},
	}
	hs, span, _ := leagueCorpus(t, 2)
	for i, cfg := range bad {
		if _, err := Train(hs, span, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEmptyHistorySet(t *testing.T) {
	c := changecube.New()
	hs, err := changecube.NewHistorySet(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(hs, timeline.NewSpan(0, 100), Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRules() != 0 {
		t.Fatalf("rules from nothing: %v", p.Rules())
	}
}

func TestScopeString(t *testing.T) {
	if PerTemplate.String() != "per-template" || Global.String() != "global" {
		t.Fatal("scope names wrong")
	}
}

func TestName(t *testing.T) {
	if (&Predictor{}).Name() != "association rules" {
		t.Fatal("name wrong")
	}
}
