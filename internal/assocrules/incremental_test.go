package assocrules

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// lenientConfig mines permissively so random corpora actually grow rules.
func lenientConfig() Config {
	return Config{
		MinSupport:         0.05,
		MinConfidence:      0.30,
		ValidationFraction: 0.20,
		RulePrecisionCut:   0.30,
		MinValidationFires: 1,
		PeriodDays:         7,
		SupportScope:       PerTemplate,
	}
}

// randomTemplateSet builds a cube with nTemplates templates of entitiesPer
// entities each, properties shared within a template, change days drawn
// from [0, dayRange).
func randomTemplateSet(t *testing.T, rng *rand.Rand, nTemplates, entitiesPer, maxProps, dayRange int) *changecube.HistorySet {
	t.Helper()
	c := changecube.New()
	var histories []changecube.History
	for tm := 0; tm < nTemplates; tm++ {
		for e := 0; e < entitiesPer; e++ {
			ent := c.AddEntityNamed(fmt.Sprintf("infobox t%d", tm), fmt.Sprintf("T%d Page %d", tm, e))
			for f := 0; f < maxProps; f++ {
				prop := changecube.PropertyID(c.Properties.Intern(fmt.Sprintf("p%d", f)))
				set := map[timeline.Day]bool{}
				for n := rng.Intn(14); n > 0; n-- {
					set[timeline.Day(rng.Intn(dayRange))] = true
				}
				if len(set) == 0 {
					continue
				}
				var days []timeline.Day
				for d := range set {
					days = append(days, d)
				}
				sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
				histories = append(histories, changecube.NewHistory(
					changecube.FieldKey{Entity: ent, Property: prop}, days))
			}
		}
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

// mutateSet applies a random day-append delta to a few fields and returns
// the updated set plus the dirty-field map a live ingester would carry.
func mutateSet(t *testing.T, rng *rand.Rand, hs *changecube.HistorySet, dayRange int) (*changecube.HistorySet, map[changecube.FieldKey]bool) {
	t.Helper()
	histories := hs.Histories()
	updates := make(map[changecube.FieldKey][]timeline.Day)
	dirty := make(map[changecube.FieldKey]bool)
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		h := histories[rng.Intn(len(histories))]
		updates[h.Field] = append(updates[h.Field], timeline.Day(rng.Intn(dayRange)))
		dirty[h.Field] = true
	}
	next, err := hs.MergeDays(updates)
	if err != nil {
		t.Fatal(err)
	}
	return next, dirty
}

// TestIncrementalMatchesColdRetrain drives a sequence of deltas through
// TrainIncremental and asserts, at every step, bit-identical rules to a
// cold Train over the same snapshot — including steps where the span's end
// advances, which can complete a previously partial week and dirty
// templates whose fields were never touched.
func TestIncrementalMatchesColdRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cfg := lenientConfig()
	hs := randomTemplateSet(t, rng, 5, 4, 4, 90)
	span := timeline.NewSpan(0, 70)

	prevP, stats, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full || stats.FullReason != "cold" {
		t.Fatalf("first train stats = %+v, want cold full rebuild", stats)
	}
	prev := Previous{Predictor: prevP, Span: span}
	reusedTotal, rulesSeen := 0, 0
	for step := 0; step < 12; step++ {
		next, dirty := mutateSet(t, rng, hs, 100)
		hs = next
		if step%3 == 2 {
			span = timeline.NewSpan(span.Start, span.End+4) // live span advance
		}
		inc, stats, err := TrainIncremental(hs, span, cfg, prev, dirty, false)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Train(hs, span, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc.Rules(), cold.Rules()) {
			t.Fatalf("step %d: incremental %v != cold %v (stats %+v)",
				step, inc.Rules(), cold.Rules(), stats)
		}
		if stats.Full {
			t.Fatalf("step %d: unexpected full rebuild %+v", step, stats)
		}
		if stats.TemplatesReused+stats.TemplatesRetrained != stats.TemplatesTotal {
			t.Fatalf("template accounting off: %+v", stats)
		}
		reusedTotal += stats.TemplatesReused
		rulesSeen += inc.NumRules()
		prev = Previous{Predictor: inc, Span: span}
	}
	if reusedTotal == 0 {
		t.Fatal("incremental retraining never reused a template")
	}
	if rulesSeen == 0 {
		t.Fatal("corpus never produced a rule; the equivalence was vacuous")
	}
}

// TestIncrementalFullFallbacks: every coupling that breaks template
// locality must force a full rebuild — and still match a cold Train.
func TestIncrementalFullFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	cfg := lenientConfig()
	hs := randomTemplateSet(t, rng, 4, 4, 4, 90)
	span := timeline.NewSpan(7, 70)
	p1, _, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	next, dirty := mutateSet(t, rng, hs, 90)
	prev := Previous{Predictor: p1, Span: span}

	cases := []struct {
		name   string
		span   timeline.Span
		mutate func(*Config)
		force  bool
		reason string
	}{
		{name: "forced", span: span, force: true, reason: "forced"},
		{name: "span_start", span: timeline.NewSpan(0, 70), reason: "span_start"},
		{name: "global_scope", span: span, mutate: func(c *Config) { c.SupportScope = Global }, reason: "global_scope"},
		{name: "span_tail", span: timeline.NewSpan(7, 77), mutate: func(c *Config) { c.ValidationScheme = HoldoutTail }, reason: "span_tail"},
	}
	for _, tc := range cases {
		c := cfg
		if tc.mutate != nil {
			tc.mutate(&c)
		}
		inc, stats, err := TrainIncremental(next, tc.span, c, prev, dirty, tc.force)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Full || stats.FullReason != tc.reason {
			t.Fatalf("%s: stats = %+v, want full rebuild with reason %q", tc.name, stats, tc.reason)
		}
		cold, err := Train(next, tc.span, c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc.Rules(), cold.Rules()) {
			t.Fatalf("%s: full-fallback rules diverged from cold train", tc.name)
		}
	}
}
