package assocrules

// Incremental retraining for association rules, mirroring the correlation
// predictor's page-reuse scheme one level up: rules are strictly
// template-local under PerTemplate support — a template's transactions
// are built from its own entities' in-span change days and nothing else,
// the validation holdout is drawn by a span-independent hash of
// (entity, week), and the precision cut is deterministic. Templates whose
// transactions provably match the previous training therefore reproduce
// their previous rules bit for bit and are carried over; only dirty
// templates are re-grouped, re-mined, and re-validated.

import (
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Previous carries the outcome of the last successful training: the
// predictor whose per-template rules may be reused and the span it was
// trained over.
type Previous struct {
	Predictor *Predictor
	Span      timeline.Span
}

// IncrementalStats reports what TrainIncremental actually did.
type IncrementalStats struct {
	// Full is true when every template was re-mined; FullReason then says
	// why: "cold" (no previous predictor), "forced" (caller demanded it),
	// "global_scope" (global support couples templates), "span_start"
	// (the span's anchor moved, re-bucketing every week), or "span_tail"
	// (tail holdout under a moved span re-draws every holdout).
	Full       bool
	FullReason string
	// DirtyFields is the size of the caller's dirty-field set.
	DirtyFields int
	// TemplatesTotal counts distinct templates among the histories;
	// TemplatesReused + TemplatesRetrained == TemplatesTotal.
	TemplatesTotal     int
	TemplatesReused    int
	TemplatesRetrained int
}

// TrainIncremental is Train with per-template rule reuse. dirty lists the
// fields whose change histories may differ from the previous training —
// including fields that vanished, which the caller must report, since a
// missing history cannot flag itself. prev must come from the same
// configuration (reuse across configs is unsound and not detected).
// The result is bit-identical to Train over the same inputs.
//
// A template is retrained when it contains a dirty field or — if the span
// moved — any field whose effective transaction days (in-span days below
// the whole-week cutoff) differ between the two spans. Week buckets are
// anchored at span.Start, so a moved anchor re-buckets everything and
// forces a full rebuild, as do the two couplings that break template
// locality: global support scope, and the tail holdout under a moved span.
func TrainIncremental(hs *changecube.HistorySet, span timeline.Span, cfg Config,
	prev Previous, dirty map[changecube.FieldKey]bool, forceFull bool) (*Predictor, IncrementalStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, IncrementalStats{}, err
	}
	stats := IncrementalStats{DirtyFields: len(dirty)}
	reason := ""
	switch {
	case forceFull:
		reason = "forced"
	case prev.Predictor == nil:
		reason = "cold"
	case cfg.SupportScope == Global:
		reason = "global_scope"
	case span.Start != prev.Span.Start:
		reason = "span_start"
	case cfg.ValidationScheme == HoldoutTail && span != prev.Span:
		reason = "span_tail"
	}
	cube := hs.Cube()
	if reason != "" {
		p, err := Train(hs, span, cfg)
		if err != nil {
			return nil, IncrementalStats{}, err
		}
		stats.Full, stats.FullReason = true, reason
		stats.TemplatesTotal = countTemplates(hs, cube)
		stats.TemplatesRetrained = stats.TemplatesTotal
		return p, stats, nil
	}

	dirtyTemplates := make(map[changecube.TemplateID]bool)
	for f := range dirty {
		dirtyTemplates[cube.Template(f.Entity)] = true
	}
	templates := make(map[changecube.TemplateID]bool)
	if span != prev.Span {
		// Only whole weeks feed transactions; the trailing partial week is
		// dropped. A span extension can promote previously dropped days
		// into a completed week, so compare the effective day windows.
		effPrev := effectiveSpan(prev.Span, cfg.PeriodDays)
		effNow := effectiveSpan(span, cfg.PeriodDays)
		for _, h := range hs.Histories() {
			t := cube.Template(h.Field.Entity)
			templates[t] = true
			if dirtyTemplates[t] {
				continue
			}
			if !sameDayWindow(h.In(effPrev), h.In(effNow)) {
				dirtyTemplates[t] = true
			}
		}
	} else {
		for _, h := range hs.Histories() {
			templates[cube.Template(h.Field.Entity)] = true
		}
	}

	stats.TemplatesTotal = len(templates)
	for t := range dirtyTemplates {
		if templates[t] {
			stats.TemplatesRetrained++
		}
	}
	stats.TemplatesReused = stats.TemplatesTotal - stats.TemplatesRetrained

	// Re-mine the dirty templates only: group, mine, and validate over the
	// subset, then graft the clean templates' previous rules back in.
	tagged := buildTaggedFiltered(hs, span, cfg.PeriodDays, func(t changecube.TemplateID) bool {
		return dirtyTemplates[t]
	})
	fresh, err := trainTagged(tagged, span, cfg)
	if err != nil {
		return nil, IncrementalStats{}, err
	}
	var rules []Rule
	if n := len(prev.Predictor.rules) + len(fresh.rules); n > 0 {
		rules = make([]Rule, 0, n)
	}
	for _, r := range prev.Predictor.rules {
		if !dirtyTemplates[r.Template] {
			rules = append(rules, r)
		}
	}
	rules = append(rules, fresh.rules...)
	if len(rules) == 0 {
		// Full training leaves rules nil when nothing survives; match it so
		// the incremental result stays DeepEqual-identical.
		rules = nil
	}
	return buildPredictor(rules), stats, nil
}

// effectiveSpan is the whole-week prefix of span: the window whose days
// actually reach transactions under buildTagged's trailing-week drop.
func effectiveSpan(span timeline.Span, periodDays int) timeline.Span {
	nWeeks := span.Len() / periodDays
	if nWeeks == 0 {
		// Degenerate spans drop nothing (buildTagged keeps every day when
		// nWeeks is zero), so the effective window is the span itself.
		return span
	}
	return timeline.Span{Start: span.Start, End: span.Start + timeline.Day(nWeeks*periodDays)}
}

// sameDayWindow reports whether two strictly increasing day slices are
// equal. Both are contiguous windows into the same underlying history, so
// equal length plus equal first element implies equality.
func sameDayWindow(a, b []timeline.Day) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || a[0] == b[0]
}

// countTemplates counts the distinct templates among the histories.
func countTemplates(hs *changecube.HistorySet, cube *changecube.Cube) int {
	seen := make(map[changecube.TemplateID]bool)
	for _, h := range hs.Histories() {
		seen[cube.Template(h.Field.Entity)] = true
	}
	return len(seen)
}
