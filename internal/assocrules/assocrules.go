// Package assocrules implements the paper's association-rule predictor
// (§3.3). Changes are grouped into one transaction per (infobox, week);
// each change is typed by its (template, property) pair, so the mined
// unary rules X → Y hold for every infobox of a template. After mining
// with Apriori, rules are validated on a held-out slice of the training
// data and kept only when their prediction precision there reaches the
// cut-off (90 % in the paper: the 85 % target plus a 5 % buffer).
package assocrules

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/apriori"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Scope selects the denominator for minimum support.
type Scope int

const (
	// PerTemplate measures support against the template's own transaction
	// count (default; see DESIGN.md §3.2).
	PerTemplate Scope = iota
	// Global measures support against all transactions across templates —
	// the paper's literal wording, kept for the ablation study.
	Global
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case PerTemplate:
		return "per-template"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// ValidationScheme selects how the rule-validation holdout is drawn from
// the training data.
type ValidationScheme int

const (
	// HoldoutTransactions holds out a deterministic pseudo-random share of
	// (infobox, week) transactions. Every template is represented in the
	// holdout regardless of when its entities lived (default).
	HoldoutTransactions ValidationScheme = iota
	// HoldoutTail holds out the trailing share of the training span on
	// the time axis — the strictest temporal discipline, at the cost of
	// starving templates whose entities are short-lived.
	HoldoutTail
)

// String names the scheme.
func (s ValidationScheme) String() string {
	switch s {
	case HoldoutTransactions:
		return "transactions"
	case HoldoutTail:
		return "tail"
	default:
		return fmt.Sprintf("ValidationScheme(%d)", int(s))
	}
}

// Config tunes training.
type Config struct {
	// MinSupport is the Apriori minimum support; the paper's grid search
	// selects 0.25 %.
	MinSupport float64
	// MinConfidence is the Apriori minimum confidence; the paper selects
	// 60 %.
	MinConfidence float64
	// ValidationFraction is the share of the training data held out to
	// validate rule precision; the paper selects 10 %.
	ValidationFraction float64
	// ValidationScheme selects how the holdout is drawn.
	ValidationScheme ValidationScheme
	// RulePrecisionCut discards rules below this precision on the
	// validation slice; the paper uses 90 %.
	RulePrecisionCut float64
	// MinValidationFires discards rules whose antecedent fired fewer than
	// this many times on the holdout: a precision estimated from two or
	// three fires is noise, and with thousands of candidates the noise
	// survives multiple testing.
	MinValidationFires int
	// PeriodDays is the transaction period; the paper uses 7 days to match
	// the weekly editing rhythm of volunteer contributors.
	PeriodDays int
	// SupportScope selects the support denominator.
	SupportScope Scope
	// KeepUnvalidated keeps rules whose antecedent never fires on the
	// validation slice (their precision is unknowable). Default is to
	// drop them, trading recall for precision safety.
	KeepUnvalidated bool
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		MinSupport:         0.0025,
		MinConfidence:      0.60,
		ValidationFraction: 0.10,
		RulePrecisionCut:   0.90,
		MinValidationFires: 5,
		PeriodDays:         7,
		SupportScope:       PerTemplate,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MinSupport <= 0 || c.MinSupport > 1 {
		return fmt.Errorf("assocrules: MinSupport %v out of (0,1]", c.MinSupport)
	}
	if c.MinConfidence <= 0 || c.MinConfidence > 1 {
		return fmt.Errorf("assocrules: MinConfidence %v out of (0,1]", c.MinConfidence)
	}
	if c.ValidationFraction < 0 || c.ValidationFraction >= 1 {
		return fmt.Errorf("assocrules: ValidationFraction %v out of [0,1)", c.ValidationFraction)
	}
	if c.RulePrecisionCut < 0 || c.RulePrecisionCut > 1 {
		return fmt.Errorf("assocrules: RulePrecisionCut %v out of [0,1]", c.RulePrecisionCut)
	}
	if c.MinValidationFires < 0 {
		return fmt.Errorf("assocrules: MinValidationFires %d < 0", c.MinValidationFires)
	}
	if c.PeriodDays < 1 {
		return fmt.Errorf("assocrules: PeriodDays %d < 1", c.PeriodDays)
	}
	return nil
}

// Rule is a validated unary association rule: within a template, a change
// to Antecedent in a week implies a change to Consequent in the same week.
type Rule struct {
	Template   changecube.TemplateID
	Antecedent changecube.PropertyID
	Consequent changecube.PropertyID
	// Support and Confidence are the Apriori statistics on the mining
	// slice (support relative to the configured scope).
	Support    float64
	Confidence float64
	// ValidationPrecision is the rule's prediction precision on the
	// held-out slice; Fires is how often its antecedent occurred there.
	ValidationPrecision float64
	Fires               int
}

type templateProperty struct {
	template changecube.TemplateID
	property changecube.PropertyID
}

// Predictor holds the validated rules, indexed by (template, consequent).
type Predictor struct {
	rules       []Rule
	antecedents map[templateProperty][]changecube.PropertyID
	// byConsequent carries the full rules per (template, consequent) so the
	// explain path can report support/confidence evidence; parallel to
	// antecedents (same keys, same order).
	byConsequent map[templateProperty][]Rule
}

var (
	_ predict.Predictor      = (*Predictor)(nil)
	_ predict.BatchPredictor = (*Predictor)(nil)
)

// Train mines and validates association rules on the change days inside
// span.
func Train(hs *changecube.HistorySet, span timeline.Span, cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pre, err := Prepare(hs, span, cfg.PeriodDays)
	if err != nil {
		return nil, err
	}
	return trainTagged(pre.tagged, span, cfg)
}

// Prepared caches the grouped (infobox, week) transactions of one
// (corpus, span, period) combination. Grouping is the most expensive part
// of training and depends on none of the mining parameters, so a grid
// search over support/confidence/holdout shares one Prepared across all
// its points. The cached transactions are read-only after Prepare;
// concurrent TrainPrepared calls are safe.
type Prepared struct {
	span       timeline.Span
	periodDays int
	tagged     map[changecube.TemplateID][]taggedTxn
}

// Prepare groups the change days inside span into transactions once, for
// reuse by TrainPrepared under any config with the same PeriodDays.
func Prepare(hs *changecube.HistorySet, span timeline.Span, periodDays int) (*Prepared, error) {
	if periodDays < 1 {
		return nil, fmt.Errorf("assocrules: PeriodDays %d < 1", periodDays)
	}
	tspan := obs.StartSpan("train/assoc_transactions")
	defer tspan.End()
	return &Prepared{
		span:       span,
		periodDays: periodDays,
		tagged:     buildTagged(hs, span, periodDays),
	}, nil
}

// TrainPrepared is Train over a precomputed transaction grouping. The
// result is bit-identical to Train(hs, pre.span, cfg) for any cfg whose
// PeriodDays matches the one given to Prepare.
func TrainPrepared(pre *Prepared, cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PeriodDays != pre.periodDays {
		return nil, fmt.Errorf("assocrules: prepared with PeriodDays=%d, config asks for %d",
			pre.periodDays, cfg.PeriodDays)
	}
	return trainTagged(pre.tagged, pre.span, cfg)
}

// trainTagged is the shared mining+validation pipeline behind Train and
// TrainPrepared. It never mutates tagged.
func trainTagged(tagged map[changecube.TemplateID][]taggedTxn, span timeline.Span, cfg Config) (*Predictor, error) {
	tspan := obs.StartSpan("train/assoc_holdout")
	mining, validation := splitHoldout(tagged, span, cfg)
	tspan.End()

	txns := make(map[changecube.TemplateID][]apriori.Transaction, len(mining))
	total := 0
	for template, ts := range mining {
		plain := make([]apriori.Transaction, len(ts))
		for i, t := range ts {
			plain[i] = t.items
		}
		txns[template] = plain
		total += len(plain)
	}

	tspan = obs.StartSpan("train/assoc_mine")
	var candidates []Rule
	for template, ts := range txns {
		minSup := cfg.MinSupport
		if cfg.SupportScope == Global {
			if total == 0 {
				continue
			}
			// Rescale so that count-based filtering inside the template
			// matches the global denominator.
			minSup = cfg.MinSupport * float64(total) / float64(len(ts))
			if minSup > 1 {
				continue // the template cannot reach global support
			}
		}
		mined, err := apriori.Mine(ts, apriori.Config{
			MinSupport:    minSup,
			MinConfidence: cfg.MinConfidence,
			MaxLen:        2,
		})
		if err != nil {
			return nil, err
		}
		for _, r := range mined {
			if len(r.Antecedent) != 1 || len(r.Consequent) != 1 {
				continue
			}
			support := r.Support
			if cfg.SupportScope == Global {
				support = r.Support * float64(len(ts)) / float64(total)
			}
			candidates = append(candidates, Rule{
				Template:   template,
				Antecedent: changecube.PropertyID(r.Antecedent[0]),
				Consequent: changecube.PropertyID(r.Consequent[0]),
				Support:    support,
				Confidence: r.Confidence,
			})
		}
	}

	tspan.End()

	tspan = obs.StartSpan("train/assoc_validate")
	defer tspan.End()
	return buildPredictor(validateRules(candidates, validation, cfg)), nil
}

// buildPredictor sorts the rules and builds the consequent indexes — the
// shared tail of trainTagged and FromRules, so both produce identical
// predictors from identical rule sets. It takes ownership of rules.
func buildPredictor(rules []Rule) *Predictor {
	p := &Predictor{
		rules:        rules,
		antecedents:  make(map[templateProperty][]changecube.PropertyID, len(rules)),
		byConsequent: make(map[templateProperty][]Rule, len(rules)),
	}
	sort.Slice(p.rules, func(i, j int) bool { return ruleLess(p.rules[i], p.rules[j]) })
	for _, r := range p.rules {
		key := templateProperty{template: r.Template, property: r.Consequent}
		p.antecedents[key] = append(p.antecedents[key], r.Antecedent)
		p.byConsequent[key] = append(p.byConsequent[key], r)
	}
	return p
}

func ruleLess(a, b Rule) bool {
	if a.Template != b.Template {
		return a.Template < b.Template
	}
	if a.Antecedent != b.Antecedent {
		return a.Antecedent < b.Antecedent
	}
	return a.Consequent < b.Consequent
}

// taggedTxn is one (infobox, week) transaction with its identity retained,
// so the validation holdout can be drawn deterministically.
type taggedTxn struct {
	entity changecube.EntityID
	week   int
	items  apriori.Transaction
}

// buildTagged groups the change days inside span into one transaction per
// (infobox, period) combination, keyed by template. Only combinations with
// at least one change materialize; changes in the trailing partial period
// are dropped, matching the window discipline.
func buildTagged(hs *changecube.HistorySet, span timeline.Span, periodDays int) map[changecube.TemplateID][]taggedTxn {
	return buildTaggedFiltered(hs, span, periodDays, nil)
}

// buildTaggedFiltered is buildTagged restricted to the templates keep
// accepts (nil keeps all) — the incremental path's way of grouping only
// the dirty templates' transactions.
func buildTaggedFiltered(hs *changecube.HistorySet, span timeline.Span, periodDays int, keep func(changecube.TemplateID) bool) map[changecube.TemplateID][]taggedTxn {
	type entityWeek struct {
		entity changecube.EntityID
		week   int
	}
	cube := hs.Cube()
	sets := make(map[entityWeek][]apriori.Item)
	nWeeks := span.Len() / periodDays
	for _, h := range hs.Histories() {
		if keep != nil && !keep(cube.Template(h.Field.Entity)) {
			continue
		}
		for _, day := range h.In(span) {
			week := int(day-span.Start) / periodDays
			if week >= nWeeks && nWeeks > 0 {
				continue
			}
			key := entityWeek{entity: h.Field.Entity, week: week}
			sets[key] = append(sets[key], apriori.Item(h.Field.Property))
		}
	}
	out := make(map[changecube.TemplateID][]taggedTxn)
	for key, items := range sets {
		t := cube.Template(key.entity)
		out[t] = append(out[t], taggedTxn{
			entity: key.entity,
			week:   key.week,
			items:  apriori.NormalizeTransaction(items),
		})
	}
	// Deterministic order within each template.
	for _, ts := range out {
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].entity != ts[j].entity {
				return ts[i].entity < ts[j].entity
			}
			return ts[i].week < ts[j].week
		})
	}
	return out
}

// BuildTransactions is the untagged view of buildTagged, exposed for tests
// and benchmarks.
func BuildTransactions(hs *changecube.HistorySet, span timeline.Span, periodDays int) map[changecube.TemplateID][]apriori.Transaction {
	out := make(map[changecube.TemplateID][]apriori.Transaction)
	for template, ts := range buildTagged(hs, span, periodDays) {
		plain := make([]apriori.Transaction, len(ts))
		for i, t := range ts {
			plain[i] = t.items
		}
		out[template] = plain
	}
	return out
}

// splitHoldout partitions the tagged transactions into mining and
// validation sets according to the configured scheme.
func splitHoldout(tagged map[changecube.TemplateID][]taggedTxn, span timeline.Span, cfg Config) (mining, validation map[changecube.TemplateID][]taggedTxn) {
	mining = make(map[changecube.TemplateID][]taggedTxn, len(tagged))
	validation = make(map[changecube.TemplateID][]taggedTxn, len(tagged))
	nWeeks := span.Len() / cfg.PeriodDays
	cutoffWeek := nWeeks - int(float64(nWeeks)*cfg.ValidationFraction)
	for template, ts := range tagged {
		for _, t := range ts {
			hold := false
			switch cfg.ValidationScheme {
			case HoldoutTail:
				hold = t.week >= cutoffWeek
			default:
				hold = holdoutHash(t.entity, t.week) < cfg.ValidationFraction
			}
			if hold {
				validation[template] = append(validation[template], t)
			} else {
				mining[template] = append(mining[template], t)
			}
		}
	}
	return mining, validation
}

// holdoutHash maps an (entity, week) pair to a deterministic value in
// [0, 1) via a splitmix-style mix.
func holdoutHash(entity changecube.EntityID, week int) float64 {
	x := uint64(uint32(entity))<<32 | uint64(uint32(week))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func txnLess(a, b apriori.Transaction) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// validateRules measures each candidate's prediction precision on the
// validation holdout: over all (entity, week) transactions where the
// antecedent changed, the fraction where the consequent changed too.
func validateRules(candidates []Rule, validation map[changecube.TemplateID][]taggedTxn, cfg Config) []Rule {
	if len(candidates) == 0 {
		return nil
	}
	// Index candidates by (template, antecedent) for single-pass counting.
	type stats struct{ fires, hits int }
	byAnte := make(map[templateProperty][]int)
	counts := make([]stats, len(candidates))
	for i, r := range candidates {
		key := templateProperty{template: r.Template, property: r.Antecedent}
		byAnte[key] = append(byAnte[key], i)
	}
	for template, ts := range validation {
		for _, t := range ts {
			for _, item := range t.items {
				key := templateProperty{template: template, property: changecube.PropertyID(item)}
				for _, i := range byAnte[key] {
					counts[i].fires++
					if (apriori.Itemset{apriori.Item(candidates[i].Consequent)}).SubsetOf(t.items) {
						counts[i].hits++
					}
				}
			}
		}
	}
	var kept []Rule
	for i, r := range candidates {
		c := counts[i]
		r.Fires = c.fires
		if c.fires < cfg.MinValidationFires || c.fires == 0 {
			// The holdout cannot estimate this rule's precision (a rate
			// from a handful of fires is noise that survives multiple
			// testing across thousands of candidates). Fall back to the
			// mining confidence against the same cut, unless the caller
			// keeps unvalidated rules unconditionally.
			r.ValidationPrecision = -1 // unknown
			if cfg.KeepUnvalidated || r.Confidence+1e-12 >= cfg.RulePrecisionCut {
				kept = append(kept, r)
			}
			continue
		}
		r.ValidationPrecision = float64(c.hits) / float64(c.fires)
		if r.ValidationPrecision+1e-12 >= cfg.RulePrecisionCut {
			kept = append(kept, r)
		}
	}
	return kept
}

// Name implements predict.Predictor.
func (p *Predictor) Name() string { return "association rules" }

// Rules returns the validated rules in deterministic order.
func (p *Predictor) Rules() []Rule { return p.rules }

// NumRules returns the number of validated rules.
func (p *Predictor) NumRules() int { return len(p.rules) }

// RulesPerTemplate counts the validated rules per template — the
// distribution shown in the paper's Figure 3.
func (p *Predictor) RulesPerTemplate() map[changecube.TemplateID]int {
	out := make(map[changecube.TemplateID]int)
	for _, r := range p.rules {
		out[r.Template]++
	}
	return out
}

// CoveredPages counts the distinct pages carrying at least one infobox
// whose template has a rule (the paper reports 248,865 covered pages).
func (p *Predictor) CoveredPages(cube *changecube.Cube) int {
	templates := make(map[changecube.TemplateID]bool)
	for _, r := range p.rules {
		templates[r.Template] = true
	}
	pages := make(map[changecube.PageID]bool)
	for e := 0; e < cube.NumEntities(); e++ {
		info := cube.Entity(changecube.EntityID(e))
		if templates[info.Template] {
			pages[info.Page] = true
		}
	}
	return len(pages)
}

// Predict implements predict.Predictor: the target property Y of an entity
// with template T should have changed if some rule X → Y of T has its
// antecedent X changed on the same entity within the window.
func (p *Predictor) Predict(ctx predict.Context) bool {
	target := ctx.Target()
	template := ctx.Cube().Template(target.Entity)
	key := templateProperty{template: template, property: target.Property}
	for _, ante := range p.antecedents[key] {
		f := changecube.FieldKey{Entity: target.Entity, Property: ante}
		if ctx.FieldChangedIn(f, ctx.Window().Span) {
			return true
		}
	}
	return false
}

// PredictWindows implements predict.BatchPredictor: out[i] is true when
// some rule X → target of the entity's template has its antecedent X
// changed on the same entity inside window i.
func (p *Predictor) PredictWindows(b predict.Batch, out []bool) {
	for i := range out {
		out[i] = false
	}
	target := b.Target()
	template := b.Cube().Template(target.Entity)
	key := templateProperty{template: template, property: target.Property}
	for _, ante := range p.antecedents[key] {
		f := changecube.FieldKey{Entity: target.Entity, Property: ante}
		for i, changed := range b.FieldChanged(f) {
			if changed {
				out[i] = true
			}
		}
	}
}

// Explain returns the antecedent properties that changed in the window for
// a positive prediction, nil otherwise.
func (p *Predictor) Explain(ctx predict.Context) []changecube.PropertyID {
	target := ctx.Target()
	template := ctx.Cube().Template(target.Entity)
	key := templateProperty{template: template, property: target.Property}
	var out []changecube.PropertyID
	for _, ante := range p.antecedents[key] {
		f := changecube.FieldKey{Entity: target.Entity, Property: ante}
		if ctx.FieldChangedIn(f, ctx.Window().Span) {
			out = append(out, ante)
		}
	}
	return out
}

// ExplainRules is Explain with the rule evidence attached: every rule
// X → target of the entity's template whose antecedent X changed in the
// window, with its mining support/confidence and validation precision.
// Its non-emptiness is exactly Predict's verdict.
func (p *Predictor) ExplainRules(ctx predict.Context) []Rule {
	target := ctx.Target()
	template := ctx.Cube().Template(target.Entity)
	key := templateProperty{template: template, property: target.Property}
	var fired []Rule
	for _, r := range p.byConsequent[key] {
		f := changecube.FieldKey{Entity: target.Entity, Property: r.Antecedent}
		if ctx.FieldChangedIn(f, ctx.Window().Span) {
			fired = append(fired, r)
		}
	}
	return fired
}

// FromRules reconstructs a predictor from previously validated rules — the
// deserialization path for model persistence.
func FromRules(rules []Rule) *Predictor {
	return buildPredictor(append([]Rule(nil), rules...))
}
