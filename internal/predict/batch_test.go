package predict

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

func TestWindowSetRowMatchesChangedIn(t *testing.T) {
	hs, fa, fb := buildSet(t)
	split := timeline.NewSpan(3, 24)
	for _, size := range []int{1, 3, 7} {
		ws := NewWindowSet(hs, split, size, nil)
		for _, field := range []changecube.FieldKey{fa, fb} {
			h, _ := hs.Get(field)
			row := ws.Row(field)
			if len(row) != len(ws.Windows()) {
				t.Fatalf("size %d: row length %d != %d windows", size, len(row), len(ws.Windows()))
			}
			for i, w := range ws.Windows() {
				if row[i] != h.ChangedIn(w.Span) {
					t.Fatalf("size %d field %v window %d: row %v != ChangedIn %v",
						size, field, i, row[i], h.ChangedIn(w.Span))
				}
			}
		}
	}
}

func TestWindowSetRowUnknownFieldAllFalse(t *testing.T) {
	hs, fa, _ := buildSet(t)
	ws := NewWindowSet(hs, timeline.NewSpan(0, 21), 7, nil)
	ghost := changecube.FieldKey{Entity: fa.Entity, Property: 999}
	for i, v := range ws.Row(ghost) {
		if v {
			t.Fatalf("unknown field row[%d] = true", i)
		}
	}
}

func TestBatchClampsTargetRow(t *testing.T) {
	hs, fa, fb := buildSet(t)
	ws := NewWindowSet(hs, timeline.NewSpan(0, 21), 7, nil)
	b := ws.For(fa)
	// The target changes inside several windows, but its clamped row must
	// be all false — a batch predictor can never observe the change it is
	// asked to predict.
	for i, v := range b.FieldChanged(fa) {
		if v {
			t.Fatalf("target row[%d] = true; leakage", i)
		}
	}
	// A non-target field is visible through the window end, exactly as the
	// scalar Context reports it.
	for i, w := range b.Windows() {
		ctx := NewContext(hs, fa, w)
		if got, want := b.FieldChanged(fb)[i], ctx.FieldChangedIn(fb, w.Span); got != want {
			t.Fatalf("partner row[%d] = %v, Context says %v", i, got, want)
		}
	}
}

func TestBatchTargetDaysBeforeMatchesContext(t *testing.T) {
	hs, fa, _ := buildSet(t)
	split := timeline.NewSpan(3, 24)
	for _, size := range []int{1, 3, 7} {
		ws := NewWindowSet(hs, split, size, nil)
		b := ws.For(fa)
		for i, w := range b.Windows() {
			ctx := NewContext(hs, fa, w)
			got := b.TargetDaysBefore(i)
			want := ctx.TargetDays()
			if len(got) != len(want) {
				t.Fatalf("size %d window %d: TargetDaysBefore %v != TargetDays %v", size, i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("size %d window %d: TargetDaysBefore %v != TargetDays %v", size, i, got, want)
				}
			}
		}
	}
}

func TestBatchTargetDaysBeforeUnknownTarget(t *testing.T) {
	hs, fa, _ := buildSet(t)
	ws := NewWindowSet(hs, timeline.NewSpan(0, 21), 7, nil)
	ghost := changecube.FieldKey{Entity: fa.Entity, Property: 999}
	b := ws.For(ghost)
	for i := range b.Windows() {
		if days := b.TargetDaysBefore(i); days != nil {
			t.Fatalf("unknown target days = %v, want nil", days)
		}
	}
}

func TestBatchContextBridgesScalarPath(t *testing.T) {
	hs, fa, fb := buildSet(t)
	ws := NewWindowSet(hs, timeline.NewSpan(0, 21), 7, nil)
	b := ws.For(fa)
	for i, w := range b.Windows() {
		ctx := b.Context(i)
		if ctx.Target() != fa || ctx.Window() != w {
			t.Fatalf("Context(%d) target/window mismatch", i)
		}
	}
	_ = fb
}

func TestBatchAccessors(t *testing.T) {
	hs, fa, _ := buildSet(t)
	ws := NewWindowSet(hs, timeline.NewSpan(0, 21), 7, nil)
	b := ws.For(fa)
	if b.Target() != fa {
		t.Fatalf("Target = %v", b.Target())
	}
	if b.WindowSize() != 7 || ws.Size() != 7 {
		t.Fatalf("WindowSize = %d", b.WindowSize())
	}
	if b.NumWindows() != 3 || len(b.Windows()) != 3 {
		t.Fatalf("NumWindows = %d", b.NumWindows())
	}
	if b.Cube() != hs.Cube() {
		t.Fatal("Cube mismatch")
	}
}

func TestPrecomputeRowsSharedAcrossWindowSets(t *testing.T) {
	hs, fa, fb := buildSet(t)
	split := timeline.NewSpan(0, 21)
	idx := PrecomputeRows(hs, split, []int{1, 7})
	if !idx.Matches(hs, split) {
		t.Fatal("index does not match its own inputs")
	}
	if idx.Matches(hs, timeline.NewSpan(0, 20)) {
		t.Fatal("index matches a different split")
	}
	for _, size := range []int{1, 7} {
		shared := NewWindowSet(hs, split, size, idx)
		fresh := NewWindowSet(hs, split, size, nil)
		for _, field := range []changecube.FieldKey{fa, fb} {
			a, b := shared.Row(field), fresh.Row(field)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("size %d field %v window %d: shared %v != fresh %v", size, field, i, a[i], b[i])
				}
			}
		}
	}
	// A size the index does not cover falls back to local merges.
	ws := NewWindowSet(hs, split, 3, idx)
	h, _ := hs.Get(fa)
	for i, w := range ws.Windows() {
		if ws.Row(fa)[i] != h.ChangedIn(w.Span) {
			t.Fatalf("uncovered size window %d wrong", i)
		}
	}
}

func TestPrecomputeRowsSkipsInvalidSizes(t *testing.T) {
	hs, _, _ := buildSet(t)
	split := timeline.NewSpan(0, 10)
	idx := PrecomputeRows(hs, split, []int{0, -3, 365, 7, 7})
	if len(idx.bySize) != 1 {
		t.Fatalf("bySize has %d entries, want 1 (only size 7 is valid)", len(idx.bySize))
	}
}

func TestScalarPredictWindowsMatchesPredict(t *testing.T) {
	hs, fa, fb := buildSet(t)
	ws := NewWindowSet(hs, timeline.NewSpan(0, 21), 7, nil)
	b := ws.For(fa)
	p := Func{PredictorName: "partner-watch", Fn: func(ctx Context) bool {
		return ctx.FieldChangedIn(fb, ctx.Window().Span)
	}}
	out := make([]bool, b.NumWindows())
	ScalarPredictWindows(p, b, out)
	for i := range out {
		if out[i] != p.Predict(b.Context(i)) {
			t.Fatalf("window %d mismatch", i)
		}
	}
	// MemberPredictWindows takes the same fallback for a scalar-only
	// predictor.
	out2 := make([]bool, b.NumWindows())
	MemberPredictWindows(p, b, out2)
	for i := range out2 {
		if out2[i] != out[i] {
			t.Fatalf("MemberPredictWindows window %d mismatch", i)
		}
	}
}

// fixedBatch is a BatchPredictor whose batch row deliberately disagrees
// with its scalar path, so tests can detect which path ran.
type fixedBatch struct{ row bool }

func (fixedBatch) Name() string         { return "fixed" }
func (fixedBatch) Predict(Context) bool { return false }
func (f fixedBatch) PredictWindows(b Batch, out []bool) {
	for i := range out {
		out[i] = f.row
	}
}

func TestMemberPredictWindowsPrefersBatchPath(t *testing.T) {
	hs, fa, _ := buildSet(t)
	ws := NewWindowSet(hs, timeline.NewSpan(0, 21), 7, nil)
	b := ws.For(fa)
	out := make([]bool, b.NumWindows())
	MemberPredictWindows(fixedBatch{row: true}, b, out)
	for i := range out {
		if !out[i] {
			t.Fatalf("window %d took the scalar path", i)
		}
	}
}
