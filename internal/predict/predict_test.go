package predict

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

func buildSet(t *testing.T) (*changecube.HistorySet, changecube.FieldKey, changecube.FieldKey) {
	t.Helper()
	c := changecube.New()
	e := c.AddEntityNamed("infobox t", "Page")
	a := changecube.PropertyID(c.Properties.Intern("a"))
	b := changecube.PropertyID(c.Properties.Intern("b"))
	fa := changecube.FieldKey{Entity: e, Property: a}
	fb := changecube.FieldKey{Entity: e, Property: b}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(fa, []timeline.Day{5, 10, 15, 20}),
		changecube.NewHistory(fb, []timeline.Day{5, 12, 15}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return hs, fa, fb
}

func TestTargetDaysStopAtWindowStart(t *testing.T) {
	hs, fa, _ := buildSet(t)
	w := timeline.Window{Span: timeline.NewSpan(10, 17), Index: 0}
	ctx := NewContext(hs, fa, w)
	days := ctx.TargetDays()
	if len(days) != 1 || days[0] != 5 {
		t.Fatalf("TargetDays = %v, want [5] (changes at 10, 15 are hidden)", days)
	}
}

func TestFieldChangedInClampsTargetToWindowStart(t *testing.T) {
	hs, fa, _ := buildSet(t)
	w := timeline.Window{Span: timeline.NewSpan(10, 17)}
	ctx := NewContext(hs, fa, w)
	// The target's own change at day 10 and 15 must be invisible.
	if ctx.FieldChangedIn(fa, timeline.NewSpan(10, 17)) {
		t.Fatal("target change inside window leaked")
	}
	if !ctx.FieldChangedIn(fa, timeline.NewSpan(0, 17)) {
		t.Fatal("target change before window start should be visible")
	}
}

func TestFieldChangedInClampsOthersToWindowEnd(t *testing.T) {
	hs, fa, fb := buildSet(t)
	w := timeline.Window{Span: timeline.NewSpan(10, 14)}
	ctx := NewContext(hs, fa, w)
	// fb changed on day 12 (inside window): visible.
	if !ctx.FieldChangedIn(fb, w.Span) {
		t.Fatal("other field's in-window change invisible")
	}
	// fb's change on day 15 (after window end) must not be visible even if
	// the queried span extends past the window.
	if ctx.FieldChangedIn(fb, timeline.NewSpan(14, 100)) {
		t.Fatal("future change beyond window end leaked")
	}
}

func TestFieldChangedInUnknownField(t *testing.T) {
	hs, fa, _ := buildSet(t)
	ctx := NewContext(hs, fa, timeline.Window{Span: timeline.NewSpan(0, 10)})
	ghost := changecube.FieldKey{Entity: 0, Property: 99}
	if ctx.FieldChangedIn(ghost, timeline.NewSpan(0, 10)) {
		t.Fatal("unknown field reported a change")
	}
	if ctx.FieldDaysBefore(ghost, 10) != nil {
		t.Fatal("unknown field reported days")
	}
}

func TestFieldDaysBeforeClamping(t *testing.T) {
	hs, fa, fb := buildSet(t)
	w := timeline.Window{Span: timeline.NewSpan(10, 14)}
	ctx := NewContext(hs, fa, w)
	if days := ctx.FieldDaysBefore(fb, 100); len(days) != 2 || days[1] != 12 {
		t.Fatalf("other-field days clamped wrong: %v", days)
	}
	if days := ctx.FieldDaysBefore(fa, 100); len(days) != 1 || days[0] != 5 {
		t.Fatalf("target days clamped wrong: %v", days)
	}
}

func TestAccessors(t *testing.T) {
	hs, fa, _ := buildSet(t)
	w := timeline.Window{Span: timeline.NewSpan(1, 2), Index: 7}
	ctx := NewContext(hs, fa, w)
	if ctx.Target() != fa || ctx.Window() != w || ctx.Cube() != hs.Cube() {
		t.Fatal("accessors broken")
	}
}

func TestFuncAdapter(t *testing.T) {
	p := Func{PredictorName: "always", Fn: func(Context) bool { return true }}
	if p.Name() != "always" || !p.Predict(Context{}) {
		t.Fatal("Func adapter broken")
	}
}
