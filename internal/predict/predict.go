// Package predict defines the prediction protocol shared by all change
// predictors: the question asked ("should field f have changed within
// window w?") and the leakage-controlled view of the data a predictor may
// consult while answering. Following the paper's §5.1, a predictor sees the
// target field's changes only up to the window start — simulating the one
// forgotten edit — while other fields are visible through the window end,
// because related fields were updated correctly.
package predict

import (
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Context is the leakage-controlled view for a single prediction.
type Context struct {
	observed *changecube.HistorySet
	window   timeline.Window
	target   changecube.FieldKey
}

// NewContext builds a prediction context over the observed data.
func NewContext(observed *changecube.HistorySet, target changecube.FieldKey, window timeline.Window) Context {
	return Context{observed: observed, window: window, target: target}
}

// Target returns the field under prediction.
func (c Context) Target() changecube.FieldKey { return c.target }

// Window returns the prediction window.
func (c Context) Window() timeline.Window { return c.window }

// Cube returns the schema metadata (templates, pages, dictionaries).
func (c Context) Cube() *changecube.Cube { return c.observed.Cube() }

// TargetDays returns the target field's change days strictly before the
// window start — the only view of the target a predictor may use.
func (c Context) TargetDays() []timeline.Day {
	h, ok := c.observed.Get(c.target)
	if !ok {
		return nil
	}
	return h.Before(c.window.Start)
}

// FieldChangedIn reports whether field changed inside span. The span is
// clamped to end no later than the window end; for the target field itself
// it is clamped to end before the window start, so a predictor can never
// observe the very change it is asked to predict.
func (c Context) FieldChangedIn(field changecube.FieldKey, span timeline.Span) bool {
	limit := c.window.End
	if field == c.target {
		limit = c.window.Start
	}
	if span.End > limit {
		span.End = limit
	}
	if span.End <= span.Start {
		return false
	}
	h, ok := c.observed.Get(field)
	if !ok {
		return false
	}
	return h.ChangedIn(span)
}

// FieldDaysBefore returns field's change days strictly before day, with day
// clamped to the window end (window start for the target field).
func (c Context) FieldDaysBefore(field changecube.FieldKey, day timeline.Day) []timeline.Day {
	limit := c.window.End
	if field == c.target {
		limit = c.window.Start
	}
	if day > limit {
		day = limit
	}
	h, ok := c.observed.Get(field)
	if !ok {
		return nil
	}
	return h.Before(day)
}

// Predictor answers the paper's prediction question for one field and
// window. Implementations are trained ahead of time; Predict must be safe
// for concurrent use.
type Predictor interface {
	// Name identifies the predictor in reports ("field correlations",
	// "association rules", ...).
	Name() string
	// Predict reports whether the target field should have changed within
	// the window.
	Predict(ctx Context) bool
}

// Func adapts a plain function to the Predictor interface, mainly for
// tests.
type Func struct {
	PredictorName string
	Fn            func(Context) bool
}

// Name implements Predictor.
func (f Func) Name() string { return f.PredictorName }

// Predict implements Predictor.
func (f Func) Predict(ctx Context) bool { return f.Fn(ctx) }
