// Batch prediction: the evaluation protocol asks every predictor the same
// question for every tumbling window of a size — 430 windows per field per
// evaluation year. Answering each window through a scalar Context repeats
// the same map lookups and binary searches over the same histories once
// per window×partner. The batch path amortizes that cost: a WindowSet
// converts each relevant field's change days into a per-window changed row
// with one sorted merge, and predictors that implement BatchPredictor
// answer all windows of one size for one target in a single call.
//
// Leakage control is preserved exactly as in Context: a Batch clamps the
// target field at each window start — FieldChanged returns an all-false
// row for the target, and TargetDaysBefore exposes only the prefix of the
// target's history strictly before the window start — so a batch predictor
// can never observe the very change it is asked to predict.
package predict

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// BatchPredictor is the optional fast-path interface: a predictor that can
// answer all tumbling windows of one size for one target field in a single
// call. PredictWindows must fill every element of out (len(out) equals
// batch.NumWindows()); out may hold stale values from a previous call.
// Each out[i] must equal Predict(batch.Context(i)) — the evaluation
// harness chooses freely between the two paths and asserts they agree.
// Like Predict, PredictWindows must be safe for concurrent use as long as
// distinct goroutines pass distinct Batches.
type BatchPredictor interface {
	Predictor
	PredictWindows(batch Batch, out []bool)
}

// rowSet holds per-window changed rows for one window size: rows[f][i]
// reports whether field f changed inside window i, unclamped. It is the
// shared currency of ground truth and (non-target) predictor evidence.
type rowSet struct {
	windows []timeline.Window
	size    int
	start   timeline.Day
	rows    map[changecube.FieldKey][]bool
}

func newRowSet(split timeline.Span, size int) *rowSet {
	return &rowSet{
		windows: timeline.Tumbling(split, size),
		size:    size,
		start:   split.Start,
		rows:    make(map[changecube.FieldKey][]bool),
	}
}

// computeRow merges a history's change days into per-window changed flags:
// one History.In call (two binary searches) plus a linear pass, instead of
// one binary search per window.
func (rs *rowSet) computeRow(h changecube.History) []bool {
	row := make([]bool, len(rs.windows))
	end := rs.start + timeline.Day(len(rs.windows)*rs.size)
	for _, d := range h.In(timeline.Span{Start: rs.start, End: end}) {
		row[int(d-rs.start)/rs.size] = true
	}
	return row
}

// RowIndex is an immutable, concurrency-safe precomputation of the
// per-window changed rows of every field of a history set, for one split
// and a list of window sizes. Grid searches build it once and share it
// across grid points through eval.Options, so the ground-truth merge work
// is not repeated per point.
type RowIndex struct {
	observed *changecube.HistorySet
	split    timeline.Span
	bySize   map[int]*rowSet
}

// PrecomputeRows eagerly computes the window rows of every field in
// observed over the split's tumbling windows at each size. The work is
// parallelized across fields; the result is read-only and safe for
// concurrent use by any number of evaluations.
func PrecomputeRows(observed *changecube.HistorySet, split timeline.Span, sizes []int) *RowIndex {
	idx := &RowIndex{
		observed: observed,
		split:    split,
		bySize:   make(map[int]*rowSet, len(sizes)),
	}
	histories := observed.Histories()
	for _, size := range sizes {
		if size <= 0 || split.Len() < size {
			continue
		}
		if _, dup := idx.bySize[size]; dup {
			continue
		}
		rs := newRowSet(split, size)
		rows := make([][]bool, len(histories))
		workers := runtime.GOMAXPROCS(0)
		if workers > len(histories) {
			workers = len(histories)
		}
		if workers < 1 {
			workers = 1
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(histories) / workers
			hi := (w + 1) * len(histories) / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					rows[i] = rs.computeRow(histories[i])
				}
			}(lo, hi)
		}
		wg.Wait()
		for i, h := range histories {
			rs.rows[h.Field] = rows[i]
		}
		idx.bySize[size] = rs
	}
	return idx
}

// Matches reports whether the index was built over the same observed set
// and split — the precondition for reusing it in an evaluation.
func (idx *RowIndex) Matches(observed *changecube.HistorySet, split timeline.Span) bool {
	return idx != nil && idx.observed == observed && idx.split == split
}

// WindowSet answers per-window change queries for the tumbling windows of
// one size over one split. Rows are computed on first use and cached, so
// each field costs one sorted merge regardless of how many windows or
// predictors consult it. A WindowSet is confined to one goroutine; build
// one per evaluation worker (an optional shared RowIndex carries the
// reusable, read-only part).
type WindowSet struct {
	observed *changecube.HistorySet
	split    timeline.Span
	shared   *rowSet // immutable precomputed rows, may be nil
	local    *rowSet // lazily filled, single-goroutine
	falseRow []bool
	emptyKey changecube.FieldKey
}

// NewWindowSet builds the window set for one split and size. shared may be
// nil; when it covers the same observed set, split and size, its
// precomputed rows are used instead of local merges. size must be positive
// and no longer than the split.
func NewWindowSet(observed *changecube.HistorySet, split timeline.Span, size int, shared *RowIndex) *WindowSet {
	if size <= 0 || split.Len() < size {
		panic(fmt.Sprintf("predict: window size %d invalid for split %v", size, split))
	}
	ws := &WindowSet{
		observed: observed,
		split:    split,
		local:    newRowSet(split, size),
	}
	if shared.Matches(observed, split) {
		if rs, ok := shared.bySize[size]; ok {
			ws.shared = rs
		}
	}
	ws.falseRow = make([]bool, len(ws.local.windows))
	return ws
}

// Windows returns the tumbling windows, in order; windows[i].Index == i.
func (ws *WindowSet) Windows() []timeline.Window { return ws.local.windows }

// Size returns the window size in days.
func (ws *WindowSet) Size() int { return ws.local.size }

// Row returns field's unclamped per-window changed row: Row(f)[i] is true
// iff f changed inside window i. For the evaluation harness this is the
// ground truth; predictors must go through Batch.FieldChanged, which
// applies the leakage clamp. The returned slice is shared and must not be
// modified.
func (ws *WindowSet) Row(field changecube.FieldKey) []bool {
	if ws.shared != nil {
		if row, ok := ws.shared.rows[field]; ok {
			return row
		}
	}
	if row, ok := ws.local.rows[field]; ok {
		return row
	}
	h, ok := ws.observed.Get(field)
	if !ok {
		return ws.falseRow
	}
	row := ws.local.computeRow(h)
	ws.local.rows[field] = row
	return row
}

// For returns the leakage-controlled batch view for one target field.
func (ws *WindowSet) For(target changecube.FieldKey) Batch {
	return Batch{ws: ws, target: target, state: &batchState{}}
}

// batchState holds the lazily computed target-day prefixes. It sits behind
// a pointer so Batch can be passed by value.
type batchState struct {
	prefixes   []int // prefixes[i] = #target days strictly before window i's start
	targetDays []timeline.Day
	computed   bool
}

// Batch is the leakage-controlled view for all tumbling windows of one
// size over one target field — the batch counterpart of Context. It is
// confined to the goroutine owning its WindowSet.
type Batch struct {
	ws     *WindowSet
	target changecube.FieldKey
	state  *batchState
}

// Target returns the field under prediction.
func (b Batch) Target() changecube.FieldKey { return b.target }

// Windows returns the tumbling windows being predicted; windows[i].Index
// == i. The slice is shared and must not be modified.
func (b Batch) Windows() []timeline.Window { return b.ws.Windows() }

// NumWindows returns the number of windows (the required length of the out
// slice passed to PredictWindows).
func (b Batch) NumWindows() int { return len(b.ws.Windows()) }

// WindowSize returns the common size of the windows in days.
func (b Batch) WindowSize() int { return b.ws.Size() }

// Cube returns the schema metadata (templates, pages, dictionaries).
func (b Batch) Cube() *changecube.Cube { return b.ws.observed.Cube() }

// FieldChanged returns field's per-window changed row under the same clamp
// Context.FieldChangedIn applies: for any field other than the target,
// row[i] reports a change inside window i; for the target field itself the
// row is all false, because the target is only visible before each window
// start and a window never overlaps the days before its own start. The
// returned slice is shared and must not be modified.
func (b Batch) FieldChanged(field changecube.FieldKey) []bool {
	if field == b.target {
		return b.ws.falseRow
	}
	return b.ws.Row(field)
}

// TargetDaysBefore returns the target's change days strictly before window
// i's start — the batch counterpart of Context.TargetDays. The prefixes
// for all windows are computed with a single merge on first use. The
// returned slice aliases the history's storage.
func (b Batch) TargetDaysBefore(i int) []timeline.Day {
	st := b.state
	if !st.computed {
		st.computed = true
		windows := b.ws.Windows()
		st.prefixes = make([]int, len(windows))
		h, ok := b.ws.observed.Get(b.target)
		if ok {
			days := h.Days()
			st.targetDays = days
			p := sort.Search(len(days), func(k int) bool {
				return days[k] >= windows[0].Start
			})
			for j, w := range windows {
				for p < len(days) && days[p] < w.Start {
					p++
				}
				st.prefixes[j] = p
			}
		}
	}
	if st.targetDays == nil {
		return nil
	}
	return st.targetDays[:st.prefixes[i]]
}

// Context returns the scalar prediction context for window i — the bridge
// the harness and ensembles use to run non-batch predictors inside a batch
// evaluation.
func (b Batch) Context(i int) Context {
	return NewContext(b.ws.observed, b.target, b.ws.Windows()[i])
}

// ScalarPredictWindows fills out by evaluating p's scalar Predict once per
// window — the fallback for predictors without a batch implementation, and
// the reference implementation batch paths are tested against.
func ScalarPredictWindows(p Predictor, b Batch, out []bool) {
	for i := range out {
		out[i] = p.Predict(b.Context(i))
	}
}

// MemberPredictWindows fills out with p's row, taking the batch fast path
// when p implements BatchPredictor and the scalar fallback otherwise.
// Ensembles use it to combine member rows directly.
func MemberPredictWindows(p Predictor, b Batch, out []bool) {
	if bp, ok := p.(BatchPredictor); ok {
		bp.PredictWindows(b, out)
		return
	}
	ScalarPredictWindows(p, b, out)
}
