package figures

import (
	"encoding/xml"
	"strings"
	"testing"
)

// assertWellFormed parses the SVG as XML — broken nesting, unescaped
// characters and truncated tags all fail here.
func assertWellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFigure3RendersHistogram(t *testing.T) {
	svg, err := Figure3(map[int]int{1: 7, 2: 12, 3: 5, 4: 5, 150: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	for _, want := range []string{
		"Figure 3", "log scale", "templates",
		`<path `,     // rounded-top bars
		`100</text>`, // log-decade tick
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG lacks %q", want)
		}
	}
	// One bar per histogram bucket.
	if got := strings.Count(svg, "<path "); got != 5 {
		t.Errorf("bars = %d, want 5", got)
	}
	// The extreme buckets are direct-labeled: max templates (12) and the
	// 150-rule outlier (1).
	if !strings.Contains(svg, ">12</text>") {
		t.Error("max-templates label missing")
	}
}

func TestFigure3Validation(t *testing.T) {
	if _, err := Figure3(nil); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := Figure3(map[int]int{0: 3}); err == nil {
		t.Error("zero-rule bucket accepted")
	}
	if _, err := Figure3(map[int]int{2: -1}); err == nil {
		t.Error("negative template count accepted")
	}
}

func TestFigure3SingleBucket(t *testing.T) {
	svg, err := Figure3(map[int]int{1: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
}

func mkSeries(name string, weeks int, p, r float64) Figure4Series {
	s := Figure4Series{Name: name}
	for w := 0; w < weeks; w++ {
		s.Precision = append(s.Precision, p+float64(w%5))
		s.Recall = append(s.Recall, r+float64(w%3))
	}
	return s
}

func TestFigure4RendersPanels(t *testing.T) {
	series := []Figure4Series{
		mkSeries("field correlations", 52, 90, 20),
		mkSeries("association rules", 52, 92, 25),
		mkSeries("AND-ensemble", 52, 94, 8),
		mkSeries("OR-ensemble", 52, 91, 35),
	}
	svg, err := Figure4(series)
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	for _, want := range []string{
		"Figure 4", "precision [%]", "recall [%]", "85% target",
		"week of the test year",
		"field correlations", "association rules", "AND-ensemble", "OR-ensemble",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG lacks %q", want)
		}
	}
	// Two panels x four series = eight polylines.
	if got := strings.Count(svg, "<polyline"); got != 8 {
		t.Errorf("polylines = %d, want 8", got)
	}
	// Series colors are assigned in fixed palette order.
	for _, color := range seriesColors {
		if !strings.Contains(svg, color) {
			t.Errorf("palette color %s unused", color)
		}
	}
}

func TestFigure4Validation(t *testing.T) {
	if _, err := Figure4(nil); err == nil {
		t.Error("no series accepted")
	}
	short := []Figure4Series{{Name: "x", Precision: []float64{1}, Recall: []float64{1}}}
	if _, err := Figure4(short); err == nil {
		t.Error("single week accepted")
	}
	mismatch := []Figure4Series{{Name: "x", Precision: []float64{1, 2}, Recall: []float64{1}}}
	if _, err := Figure4(mismatch); err == nil {
		t.Error("length mismatch accepted")
	}
	var five []Figure4Series
	for i := 0; i < 5; i++ {
		five = append(five, mkSeries(string(rune('a'+i)), 10, 90, 10))
	}
	if _, err := Figure4(five); err == nil {
		t.Error("fifth series accepted beyond the fixed palette")
	}
}

func TestEscape(t *testing.T) {
	svg, err := Figure4([]Figure4Series{mkSeries(`a<b & "c"`, 4, 90, 10), mkSeries("d", 4, 80, 5)})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	if strings.Contains(svg, `a<b`) {
		t.Error("unescaped series name")
	}
}

func TestNiceTicks(t *testing.T) {
	cases := []struct {
		max  float64
		want float64 // last tick must cover max
	}{
		{7, 8}, {12, 12}, {99, 100}, {0.4, 0.4}, {1500, 1600},
	}
	for _, c := range cases {
		ticks := niceTicks(c.max, 4)
		if len(ticks) < 2 {
			t.Errorf("max %v: too few ticks %v", c.max, ticks)
			continue
		}
		last := ticks[len(ticks)-1]
		if last < c.max {
			t.Errorf("max %v: last tick %v does not cover it", c.max, last)
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Errorf("max %v: ticks not increasing: %v", c.max, ticks)
			}
		}
	}
	if got := niceTicks(0, 4); len(got) != 1 || got[0] != 0 {
		t.Errorf("niceTicks(0) = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{0: "0", 5: "5", 100: "100", 1500: "1,500", 2.5: "2.5", 1000000: "1,000,000"}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}
