// Package figures renders the paper's evaluation figures as standalone SVG
// files: Figure 3 (association rules per template, logarithmic x-scale)
// and Figure 4 (precision and recall over the 52 test weeks). The charts
// follow a small fixed spec — thin marks with rounded data-ends, 2 px
// lines, hairline solid gridlines, a legend plus selective direct labels
// for multi-series panels, and text set in ink rather than series colors —
// on a light print-like surface. The four-series palette was validated for
// color-vision-deficiency separation (worst adjacent ΔE 24.2).
package figures

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Style tokens (light surface).
const (
	surface      = "#fcfcfb"
	inkPrimary   = "#0b0b0b"
	inkSecondary = "#52514e"
	gridline     = "#e4e3e0"
	seqBlue      = "#2a78d6" // single-series magnitude hue
	fontFamily   = "system-ui, -apple-system, 'Segoe UI', sans-serif"
	lineWidth    = 2
	hairline     = 1
	barMaxWidth  = 24
	barCornerR   = 4
)

// seriesColors is the fixed categorical order for Figure 4's four
// predictors. Assigned by position, never cycled.
var seriesColors = []string{"#2a78d6", "#1baf7a", "#eda100", "#008300"}

type svgBuilder struct {
	strings.Builder
}

func (b *svgBuilder) open(width, height int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="%s">`,
		width, height, width, height, fontFamily)
	fmt.Fprintf(b, `<rect x="0" y="0" width="%d" height="%d" fill="%s"/>`, width, height, surface)
}

func (b *svgBuilder) close() { b.WriteString("</svg>") }

func (b *svgBuilder) text(x, y float64, size int, fill, anchor, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="%d" fill="%s" text-anchor="%s">%s</text>`,
		x, y, size, fill, anchor, escape(s))
}

func (b *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width int) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%d"/>`,
		x1, y1, x2, y2, stroke, width)
}

// topRoundedBar draws a column rising from the baseline with 4 px rounded
// top corners and a square base — the rounded data-end spec.
func (b *svgBuilder) topRoundedBar(x, yTop, w, h float64, fill string) {
	r := math.Min(barCornerR, math.Min(w/2, h))
	fmt.Fprintf(b,
		`<path d="M%.1f %.1f v%.1f a%.1f %.1f 0 0 1 %.1f -%.1f h%.1f a%.1f %.1f 0 0 1 %.1f %.1f v%.1f z" fill="%s"/>`,
		x, yTop+h, -(h - r), r, r, r, r, w-2*r, r, r, r, r, h-r, fill)
}

func (b *svgBuilder) polyline(points []point, stroke string) {
	var sb strings.Builder
	for i, p := range points {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", p.x, p.y)
	}
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%d" stroke-linejoin="round" stroke-linecap="round"/>`,
		sb.String(), stroke, lineWidth)
}

type point struct{ x, y float64 }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceTicks returns up to n rounded tick values covering [0, max].
func niceTicks(max float64, n int) []float64 {
	if max <= 0 {
		return []float64{0}
	}
	rawStep := max / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag <= 1:
		step = mag
	case rawStep/mag <= 2:
		step = 2 * mag
	case rawStep/mag <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for v := 0.0; ; v += step {
		ticks = append(ticks, v)
		if v >= max {
			break
		}
	}
	return ticks
}

func formatTick(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%s,%03d", formatTick(math.Floor(v/1000)), int(v)%1000)
	}
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%g", v)
}

// Figure3 renders the rules-per-template histogram with a logarithmic
// x-scale, as in the paper: x = number of discovered rules, y = number of
// templates with exactly that many.
func Figure3(histogram map[int]int) (string, error) {
	if len(histogram) == 0 {
		return "", fmt.Errorf("figures: empty histogram")
	}
	counts := make([]int, 0, len(histogram))
	maxTemplates := 0
	maxRules := 1
	for rules, templates := range histogram {
		if rules < 1 || templates < 0 {
			return "", fmt.Errorf("figures: invalid histogram entry %d -> %d", rules, templates)
		}
		counts = append(counts, rules)
		if templates > maxTemplates {
			maxTemplates = templates
		}
		if rules > maxRules {
			maxRules = rules
		}
	}
	sort.Ints(counts)

	const width, height = 640, 360
	const left, right, top, bottom = 64.0, 20.0, 36.0, 56.0
	plotW := width - left - right
	plotH := height - top - bottom

	logMax := math.Log10(float64(maxRules)) * 1.06
	if logMax <= 0 {
		logMax = 0.3
	}
	xPos := func(rules int) float64 {
		return left + math.Log10(float64(rules))/logMax*plotW
	}
	yTicks := niceTicks(float64(maxTemplates), 4)
	yMax := yTicks[len(yTicks)-1]
	yPos := func(v float64) float64 { return top + plotH - v/yMax*plotH }

	var b svgBuilder
	b.open(width, height)
	b.text(left, 20, 14, inkPrimary, "start", "Figure 3: association rules discovered per infobox template")

	// Gridlines + y ticks (recessive hairlines, ink-toned tick labels).
	for _, t := range yTicks {
		y := yPos(t)
		b.line(left, y, float64(width)-right, y, gridline, hairline)
		b.text(left-8, y+4, 11, inkSecondary, "end", formatTick(t))
	}
	// Log-decade x ticks.
	for decade := 1; decade <= maxRules*10; decade *= 10 {
		if decade > maxRules && decade > 1 {
			break
		}
		x := xPos(decade)
		b.line(x, top+plotH, x, top+plotH+4, inkSecondary, hairline)
		b.text(x, top+plotH+18, 11, inkSecondary, "middle", formatTick(float64(decade)))
	}
	b.text(left+plotW/2, float64(height)-12, 12, inkSecondary, "middle",
		"number of discovered association rules (log scale)")
	b.text(14, top+plotH/2, 12, inkSecondary, "middle", "templates")

	// Bars: single magnitude series in the sequential hue; the title names
	// it, so no legend box.
	barW := math.Min(barMaxWidth, plotW/float64(len(counts)+2)/1.6)
	if barW < 3 {
		barW = 3
	}
	for _, rules := range counts {
		templates := histogram[rules]
		if templates == 0 {
			continue
		}
		x := xPos(rules) - barW/2
		yTop := yPos(float64(templates))
		b.topRoundedBar(x, yTop, barW, top+plotH-yTop, seqBlue)
		// Selective direct labels: only the extremes tell the story.
		if rules == maxRules || templates == maxTemplates {
			b.text(x+barW/2, yTop-6, 11, inkPrimary, "middle", formatTick(float64(templates)))
		}
	}
	// Baseline.
	b.line(left, top+plotH, float64(width)-right, top+plotH, inkSecondary, hairline)
	b.close()
	return b.String(), nil
}

// Figure4Series is one predictor's weekly percentage series.
type Figure4Series struct {
	Name      string
	Precision []float64 // percent, one entry per week
	Recall    []float64
}

// Figure4 renders the paper's Figure 4: precision (top panel) and recall
// (bottom panel) per test week, one 2 px line per predictor, with the 85 %
// target threshold marked on the precision panel.
func Figure4(series []Figure4Series) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("figures: no series")
	}
	if len(series) > len(seriesColors) {
		return "", fmt.Errorf("figures: %d series exceeds the fixed palette of %d; facet instead",
			len(series), len(seriesColors))
	}
	weeks := len(series[0].Precision)
	if weeks < 2 {
		return "", fmt.Errorf("figures: need at least two weeks, got %d", weeks)
	}
	for _, s := range series {
		if len(s.Precision) != weeks || len(s.Recall) != weeks {
			return "", fmt.Errorf("figures: series %q length mismatch", s.Name)
		}
	}

	const width = 680
	const panelH, gap = 180.0, 34.0
	const left, right, top, bottom = 64.0, 130.0, 40.0, 46.0
	height := int(top + 2*panelH + gap + bottom)
	plotW := float64(width) - left - right

	var b svgBuilder
	b.open(width, height)
	b.text(left, 20, 14, inkPrimary, "start",
		"Figure 4: precision and recall over time (7-day windows, test set)")

	maxRecall := 0.0
	for _, s := range series {
		for _, v := range s.Recall {
			maxRecall = math.Max(maxRecall, v)
		}
	}
	panels := []struct {
		label     string
		yMin      float64
		ticks     []float64
		value     func(Figure4Series) []float64
		threshold float64
	}{
		{label: "precision [%]", yMin: 60, ticks: []float64{60, 70, 80, 90, 100},
			value: func(s Figure4Series) []float64 { return s.Precision }, threshold: 85},
		{label: "recall [%]", yMin: 0, ticks: niceTicks(maxRecall, 4),
			value: func(s Figure4Series) []float64 { return s.Recall }},
	}

	xPos := func(week int) float64 { return left + float64(week)/float64(weeks-1)*plotW }
	for pi, panel := range panels {
		py := top + float64(pi)*(panelH+gap)
		yMax := panel.ticks[len(panel.ticks)-1]
		yPos := func(v float64) float64 {
			if v < panel.yMin {
				v = panel.yMin
			}
			return py + panelH - (v-panel.yMin)/(yMax-panel.yMin)*panelH
		}
		for _, t := range panel.ticks {
			y := yPos(t)
			b.line(left, y, left+plotW, y, gridline, hairline)
			b.text(left-8, y+4, 11, inkSecondary, "end", formatTick(t))
		}
		if panel.threshold > 0 {
			y := yPos(panel.threshold)
			b.line(left, y, left+plotW, y, inkSecondary, hairline)
			b.text(left+plotW+6, y+4, 10, inkSecondary, "start", "85% target")
		}
		b.text(20, py+panelH/2, 12, inkSecondary, "middle", panel.label)
		for si, s := range series {
			values := panel.value(s)
			pts := make([]point, weeks)
			for w := 0; w < weeks; w++ {
				pts[w] = point{x: xPos(w), y: yPos(values[w])}
			}
			b.polyline(pts, seriesColors[si])
		}
		b.line(left, py+panelH, left+plotW, py+panelH, inkSecondary, hairline)
	}
	// Week axis under the lower panel.
	for w := 0; w <= weeks-1; w += 10 {
		x := xPos(w)
		y := top + 2*panelH + gap
		b.line(x, y, x, y+4, inkSecondary, hairline)
		b.text(x, y+18, 11, inkSecondary, "middle", formatTick(float64(w)))
	}
	b.text(left+plotW/2, float64(height)-10, 12, inkSecondary, "middle", "week of the test year")

	// Legend: always present for multiple series; a 2 px line key beside
	// ink-colored text.
	lx := left + plotW + 14
	for si, s := range series {
		y := top + 16 + float64(si)*20
		b.line(lx, y-4, lx+18, y-4, seriesColors[si], lineWidth)
		b.text(lx+24, y, 11, inkPrimary, "start", s.Name)
	}
	b.close()
	return b.String(), nil
}
