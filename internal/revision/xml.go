package revision

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"time"
)

// MediaWiki XML export format (https://www.mediawiki.org/xml/export-0.10):
//
//	<mediawiki>
//	  <page>
//	    <title>London</title>
//	    <ns>0</ns>
//	    <revision>
//	      <timestamp>2019-03-01T12:00:00Z</timestamp>
//	      <contributor><username>SomeBot</username></contributor>
//	      <text>...wikitext...</text>
//	    </revision>
//	    ...
//	  </page>
//	  ...
//	</mediawiki>
//
// ParseXMLDump streams such a dump — the pages-meta-history files the
// paper's corpus was extracted from — decoding one page at a time and
// feeding its revisions through the extractor. Only main-namespace pages
// (ns 0) are processed.

// xmlPage mirrors one <page> element.
type xmlPage struct {
	Title     string        `xml:"title"`
	Namespace int           `xml:"ns"`
	Revisions []xmlRevision `xml:"revision"`
}

type xmlRevision struct {
	Timestamp   string         `xml:"timestamp"`
	Text        string         `xml:"text"`
	Contributor xmlContributor `xml:"contributor"`
}

type xmlContributor struct {
	Username string `xml:"username"`
	IP       string `xml:"ip"`
}

// DumpStats summarizes one ParseXMLDump run.
type DumpStats struct {
	// Pages is the number of main-namespace pages processed.
	Pages int
	// SkippedPages counts non-article namespaces (talk, user, ...).
	SkippedPages int
	// Revisions is the number of revisions fed to the extractor.
	Revisions int
}

// ParseXMLDump reads a MediaWiki XML export and feeds every main-namespace
// page through the extractor. Bot edits are recognized by the conventional
// username suffix.
func ParseXMLDump(r io.Reader, x *Extractor) (DumpStats, error) {
	var stats DumpStats
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, fmt.Errorf("revision: XML dump: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || start.Name.Local != "page" {
			continue
		}
		var page xmlPage
		if err := dec.DecodeElement(&page, &start); err != nil {
			return stats, fmt.Errorf("revision: decoding page: %w", err)
		}
		if page.Namespace != 0 {
			stats.SkippedPages++
			continue
		}
		if page.Title == "" {
			return stats, fmt.Errorf("revision: page %d has no title", stats.Pages+stats.SkippedPages+1)
		}
		revs := make([]Revision, 0, len(page.Revisions))
		for i, xr := range page.Revisions {
			ts, err := time.Parse(time.RFC3339, xr.Timestamp)
			if err != nil {
				return stats, fmt.Errorf("revision: page %q revision %d: bad timestamp %q: %w",
					page.Title, i, xr.Timestamp, err)
			}
			revs = append(revs, Revision{
				Time: ts.Unix(),
				Text: xr.Text,
				Bot:  IsBotName(xr.Contributor.Username),
			})
		}
		if err := x.AddPage(page.Title, revs); err != nil {
			return stats, err
		}
		stats.Pages++
		stats.Revisions += len(revs)
	}
}

// IsBotName applies the Wikipedia convention: registered bot accounts end
// in "bot" (ClueBot, SmackBot, Cydebot, ...), optionally followed by a
// roman/numeric suffix ("ClueBot NG", "SineBot II").
func IsBotName(username string) bool {
	u := strings.ToLower(strings.TrimSpace(username))
	if u == "" {
		return false
	}
	// Strip a short trailing qualifier token ("ng", "ii", "2", ...).
	if i := strings.LastIndexByte(u, ' '); i > 0 && len(u)-i <= 4 {
		u = u[:i]
	}
	return strings.HasSuffix(u, "bot")
}
