package revision

import (
	"strings"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
)

const sampleDump = `<mediawiki xmlns="http://www.mediawiki.org/xml/export-0.10/">
  <siteinfo><sitename>Wikipedia</sitename></siteinfo>
  <page>
    <title>London</title>
    <ns>0</ns>
    <revision>
      <timestamp>2019-03-01T12:00:00Z</timestamp>
      <contributor><username>Alice</username></contributor>
      <text>{{Infobox settlement|population=100}}</text>
    </revision>
    <revision>
      <timestamp>2019-03-05T09:30:00Z</timestamp>
      <contributor><username>ClueBot NG</username></contributor>
      <text>{{Infobox settlement|population=101}}</text>
    </revision>
  </page>
  <page>
    <title>Talk:London</title>
    <ns>1</ns>
    <revision>
      <timestamp>2019-03-01T12:00:00Z</timestamp>
      <contributor><ip>127.0.0.1</ip></contributor>
      <text>chatter {{Infobox settlement|population=9}}</text>
    </revision>
  </page>
  <page>
    <title>Paris</title>
    <ns>0</ns>
    <revision>
      <timestamp>2018-01-01T00:00:00Z</timestamp>
      <contributor><username>Bob</username></contributor>
      <text>no infobox here</text>
    </revision>
  </page>
</mediawiki>`

func TestParseXMLDump(t *testing.T) {
	cube := changecube.New()
	x := NewExtractor(cube)
	stats, err := ParseXMLDump(strings.NewReader(sampleDump), x)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 2 || stats.SkippedPages != 1 || stats.Revisions != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	// London yields a create + an update; Paris has no infobox.
	if cube.NumChanges() != 2 {
		t.Fatalf("changes = %d", cube.NumChanges())
	}
	chs := cube.Changes()
	if chs[0].Kind != changecube.Create || chs[1].Kind != changecube.Update {
		t.Fatalf("kinds = %v, %v", chs[0].Kind, chs[1].Kind)
	}
	if chs[0].Bot || !chs[1].Bot {
		t.Fatalf("bot flags = %v, %v (ClueBot NG must count as a bot)", chs[0].Bot, chs[1].Bot)
	}
	if chs[1].Value != "101" {
		t.Fatalf("value = %q", chs[1].Value)
	}
	// Talk-namespace infobox must not leak into the cube.
	if _, ok := cube.Pages.Lookup("Talk:London"); ok {
		t.Fatal("talk page ingested")
	}
}

func TestParseXMLDumpErrors(t *testing.T) {
	cases := map[string]string{
		"bad timestamp": `<mediawiki><page><title>X</title><ns>0</ns>
			<revision><timestamp>yesterday</timestamp><text>t</text></revision></page></mediawiki>`,
		"missing title": `<mediawiki><page><ns>0</ns>
			<revision><timestamp>2019-03-01T12:00:00Z</timestamp><text>t</text></revision></page></mediawiki>`,
		"broken xml": `<mediawiki><page><title>X</title>`,
	}
	for name, dump := range cases {
		x := NewExtractor(changecube.New())
		if _, err := ParseXMLDump(strings.NewReader(dump), x); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseXMLDumpTruncatedIsError(t *testing.T) {
	// Cut the sample dump in half: the decoder must report an error, not
	// silently return partial data as success.
	x := NewExtractor(changecube.New())
	if _, err := ParseXMLDump(strings.NewReader(sampleDump[:len(sampleDump)/2]), x); err == nil {
		t.Fatal("truncated dump accepted")
	}
}

func TestIsBotName(t *testing.T) {
	yes := []string{"ClueBot", "ClueBot NG", "SmackBot", "Cydebot", "SineBot II", "lowercasebot", "AnomieBOT"}
	no := []string{"Alice", "", "Abbot Smith", "bot pioneer", "Robotics"}
	for _, u := range yes {
		if !IsBotName(u) {
			t.Errorf("IsBotName(%q) = false", u)
		}
	}
	for _, u := range no {
		if IsBotName(u) {
			t.Errorf("IsBotName(%q) = true", u)
		}
	}
}
