package revision

import (
	"fmt"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
)

func extract(t *testing.T, title string, revs []Revision) *changecube.Cube {
	t.Helper()
	cube := changecube.New()
	x := NewExtractor(cube)
	if err := x.AddPage(title, revs); err != nil {
		t.Fatalf("AddPage: %v", err)
	}
	if err := cube.Validate(); err != nil {
		t.Fatalf("cube invalid: %v", err)
	}
	return cube
}

// changesByKind tallies the cube's changes per kind.
func changesByKind(c *changecube.Cube) map[changecube.ChangeKind]int {
	out := make(map[changecube.ChangeKind]int)
	for _, ch := range c.Changes() {
		out[ch.Kind]++
	}
	return out
}

func TestCreateUpdateDeleteLifecycle(t *testing.T) {
	revs := []Revision{
		{Time: 100, Text: `{{Infobox club|name=FC|matches=0}}`},
		{Time: 200, Text: `{{Infobox club|name=FC|matches=1|goals=2}}`},
		{Time: 300, Text: `{{Infobox club|name=FC|matches=2}}`},
	}
	cube := extract(t, "FC Test", revs)
	kinds := changesByKind(cube)
	// rev1: 2 creates; rev2: 1 update (matches), 1 create (goals);
	// rev3: 1 update (matches), 1 delete (goals).
	if kinds[changecube.Create] != 3 || kinds[changecube.Update] != 2 || kinds[changecube.Delete] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	if cube.NumEntities() != 1 {
		t.Fatalf("entities = %d, want 1", cube.NumEntities())
	}
}

func TestUnchangedValueEmitsNothing(t *testing.T) {
	revs := []Revision{
		{Time: 100, Text: `{{Infobox a|x=1}}`},
		{Time: 200, Text: `{{Infobox a|x=1}} extra prose`},
	}
	cube := extract(t, "P", revs)
	if cube.NumChanges() != 1 {
		t.Fatalf("changes = %d, want only the initial create", cube.NumChanges())
	}
}

func TestValueComparisonUsesCleanValue(t *testing.T) {
	// Adding a reference without changing the visible value is not a change.
	revs := []Revision{
		{Time: 100, Text: `{{Infobox a|pop=100}}`},
		{Time: 200, Text: `{{Infobox a|pop=100<ref>src</ref>}}`},
		{Time: 300, Text: `{{Infobox a|pop=[[growth|101]]}}`},
	}
	cube := extract(t, "P", revs)
	if cube.NumChanges() != 2 {
		for _, ch := range cube.Changes() {
			t.Logf("%+v", ch)
		}
		t.Fatalf("changes = %d, want create + one real update", cube.NumChanges())
	}
	last := cube.Changes()[1]
	if last.Value != "101" || last.Kind != changecube.Update {
		t.Fatalf("last change = %+v", last)
	}
}

func TestInfoboxRemovalDeletesAllProperties(t *testing.T) {
	revs := []Revision{
		{Time: 100, Text: `{{Infobox a|x=1|y=2}}`},
		{Time: 200, Text: `plain article, infobox vandalized away`},
		{Time: 300, Text: `{{Infobox a|x=1}}`},
	}
	cube := extract(t, "P", revs)
	kinds := changesByKind(cube)
	if kinds[changecube.Delete] != 2 {
		t.Fatalf("deletes = %d, want 2", kinds[changecube.Delete])
	}
	// Re-creation after deletion starts a new entity (the old one is gone).
	if cube.NumEntities() != 2 {
		t.Fatalf("entities = %d, want 2", cube.NumEntities())
	}
}

func TestTwoInfoboxesSamePage(t *testing.T) {
	revs := []Revision{
		{Time: 100, Text: `{{Infobox person|name=A}} {{Infobox person|name=B}}`},
		{Time: 200, Text: `{{Infobox person|name=A2}} {{Infobox person|name=B}}`},
	}
	cube := extract(t, "P", revs)
	if cube.NumEntities() != 2 {
		t.Fatalf("entities = %d, want 2", cube.NumEntities())
	}
	var updates []changecube.Change
	for _, ch := range cube.Changes() {
		if ch.Kind == changecube.Update {
			updates = append(updates, ch)
		}
	}
	if len(updates) != 1 || updates[0].Value != "A2" || updates[0].Entity != 0 {
		t.Fatalf("updates = %+v", updates)
	}
}

func TestNestedInfoboxNotDoubleCounted(t *testing.T) {
	revs := []Revision{
		{Time: 100, Text: `{{Infobox officeholder|name=X|module={{Infobox boxer|wins=3}}}}`},
	}
	cube := extract(t, "P", revs)
	if cube.NumEntities() != 1 {
		t.Fatalf("entities = %d, want 1 (nested box folded into parent value)", cube.NumEntities())
	}
	if cube.Templates.Len() != 1 {
		t.Fatalf("templates = %v", cube.Templates.Names())
	}
}

func TestBotFlagPropagates(t *testing.T) {
	revs := []Revision{
		{Time: 100, Text: `{{Infobox a|x=1}}`},
		{Time: 200, Text: `{{Infobox a|x=2}}`, Bot: true},
	}
	cube := extract(t, "P", revs)
	chs := cube.Changes()
	if chs[0].Bot || !chs[1].Bot {
		t.Fatalf("bot flags = %v, %v", chs[0].Bot, chs[1].Bot)
	}
}

func TestRevisionsSortedByTime(t *testing.T) {
	// Out-of-order input must be processed chronologically.
	revs := []Revision{
		{Time: 300, Text: `{{Infobox a|x=3}}`},
		{Time: 100, Text: `{{Infobox a|x=1}}`},
		{Time: 200, Text: `{{Infobox a|x=2}}`},
	}
	cube := extract(t, "P", revs)
	chs := cube.Changes()
	if len(chs) != 3 {
		t.Fatalf("changes = %d", len(chs))
	}
	if chs[0].Value != "1" || chs[1].Value != "2" || chs[2].Value != "3" {
		t.Fatalf("values out of order: %v %v %v", chs[0].Value, chs[1].Value, chs[2].Value)
	}
}

func TestEmptyTitleRejected(t *testing.T) {
	x := NewExtractor(changecube.New())
	if err := x.AddPage("", nil); err == nil {
		t.Fatal("empty title accepted")
	}
}

func TestManyPagesAccumulate(t *testing.T) {
	cube := changecube.New()
	x := NewExtractor(cube)
	for i := 0; i < 5; i++ {
		title := fmt.Sprintf("Page %d", i)
		err := x.AddPage(title, []Revision{
			{Time: 100, Text: `{{Infobox settlement|population=1}}`},
			{Time: 200, Text: `{{Infobox settlement|population=2}}`},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if cube.NumEntities() != 5 {
		t.Fatalf("entities = %d", cube.NumEntities())
	}
	if cube.Pages.Len() != 5 || cube.Templates.Len() != 1 || cube.Properties.Len() != 1 {
		t.Fatalf("dicts: pages=%d templates=%d props=%d",
			cube.Pages.Len(), cube.Templates.Len(), cube.Properties.Len())
	}
	kinds := changesByKind(cube)
	if kinds[changecube.Update] != 5 || kinds[changecube.Create] != 5 {
		t.Fatalf("kinds = %v", kinds)
	}
}
