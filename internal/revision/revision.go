// Package revision converts sequences of Wikipedia page revisions into
// change-cube tuples: it parses the infoboxes of every revision, matches
// them across revisions, and emits Create/Update/Delete changes for each
// property. It is the ingest substrate corresponding to the structured
// object matching pipeline of Bleifuß et al. (ICDE 2021), with a simpler
// matching rule: infoboxes are identified by (template, occurrence index)
// within their page, which is stable for the overwhelming majority of
// pages (most carry a single infobox).
package revision

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/wikitext"
)

// Revision is one revision of a page's wikitext.
type Revision struct {
	// Time is the Unix timestamp of the edit.
	Time int64
	// Text is the full wikitext of the page at this revision.
	Text string
	// Bot marks edits by known bot accounts.
	Bot bool
}

// Extractor accumulates changes from page histories into a cube.
type Extractor struct {
	cube *changecube.Cube
}

// NewExtractor returns an extractor writing into cube.
func NewExtractor(cube *changecube.Cube) *Extractor {
	return &Extractor{cube: cube}
}

// Cube returns the cube being written.
func (x *Extractor) Cube() *changecube.Cube { return x.cube }

// boxKey identifies an infobox within a page across revisions.
type boxKey struct {
	template string
	index    int // occurrence index among same-template boxes on the page
}

// boxState is the last-seen parameter state of a live infobox.
type boxState struct {
	entity changecube.EntityID
	params map[string]string
}

// AddPage processes the full revision history of one page, appending the
// resulting changes to the cube. Revisions are processed in timestamp
// order. The first revision's infobox contents are emitted as Create
// changes, matching the paper's change-cube semantics (creations are later
// removed by the filter pipeline).
func (x *Extractor) AddPage(title string, revs []Revision) error {
	if title == "" {
		return fmt.Errorf("revision: empty page title")
	}
	sorted := make([]Revision, len(revs))
	copy(sorted, revs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	live := make(map[boxKey]*boxState)
	for _, rev := range sorted {
		boxes := topLevelInfoboxes(rev.Text)
		seen := make(map[boxKey]bool, len(boxes))
		counts := make(map[string]int)
		for _, box := range boxes {
			key := boxKey{template: box.Template, index: counts[box.Template]}
			counts[box.Template]++
			seen[key] = true
			state, ok := live[key]
			if !ok {
				entity := x.cube.AddEntityNamed(box.Template, title)
				state = &boxState{entity: entity, params: make(map[string]string)}
				live[key] = state
			}
			x.diffBox(state, box, rev)
		}
		// Boxes present before but absent now: delete their properties.
		for key, state := range live {
			if seen[key] {
				continue
			}
			x.deleteAll(state, rev)
			delete(live, key)
		}
	}
	return nil
}

// topLevelInfoboxes parses the revision and keeps only infoboxes that are
// not nested inside another extracted infobox, so the same data is not
// double-counted.
func topLevelInfoboxes(text string) []wikitext.Infobox {
	stripped := wikitext.StripComments(text)
	all := wikitext.ParseTemplates(stripped)
	var out []wikitext.Infobox
	var spans [][2]int
	for _, t := range all {
		if !wikitext.IsInfoboxTemplate(t.Name) {
			continue
		}
		nested := false
		for _, s := range spans {
			if t.Start >= s[0] && t.End <= s[1] {
				nested = true
				break
			}
		}
		if nested {
			continue
		}
		spans = append(spans, [2]int{t.Start, t.End})
		boxes := wikitext.ParseInfoboxes(stripped[t.Start:t.End])
		if len(boxes) > 0 {
			out = append(out, boxes[0])
		}
	}
	return out
}

// diffBox emits the changes between a box's previous and current state.
func (x *Extractor) diffBox(state *boxState, box wikitext.Infobox, rev Revision) {
	// New and updated parameters, in source order for determinism.
	for _, name := range box.Order {
		newVal := wikitext.CleanValue(box.Params[name])
		oldVal, existed := state.params[name]
		switch {
		case !existed:
			x.emit(state.entity, name, newVal, changecube.Create, rev)
			state.params[name] = newVal
		case oldVal != newVal:
			x.emit(state.entity, name, newVal, changecube.Update, rev)
			state.params[name] = newVal
		}
	}
	// Removed parameters, sorted for determinism.
	var removed []string
	for name := range state.params {
		if _, ok := box.Params[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		x.emit(state.entity, name, "", changecube.Delete, rev)
		delete(state.params, name)
	}
}

func (x *Extractor) deleteAll(state *boxState, rev Revision) {
	var names []string
	for name := range state.params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		x.emit(state.entity, name, "", changecube.Delete, rev)
	}
}

func (x *Extractor) emit(entity changecube.EntityID, prop, value string, kind changecube.ChangeKind, rev Revision) {
	x.cube.Add(changecube.Change{
		Time:     rev.Time,
		Entity:   entity,
		Property: changecube.PropertyID(x.cube.Properties.Intern(prop)),
		Value:    value,
		Kind:     kind,
		Bot:      rev.Bot,
	})
}
