package baseline

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func singleFieldSet(t *testing.T, days ...timeline.Day) (*changecube.HistorySet, changecube.FieldKey) {
	t.Helper()
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	prop := changecube.PropertyID(c.Properties.Intern("x"))
	f := changecube.FieldKey{Entity: e, Property: prop}
	hs, err := changecube.NewHistorySet(c, []changecube.History{changecube.NewHistory(f, days)})
	if err != nil {
		t.Fatal(err)
	}
	return hs, f
}

func TestMeanPredictsRegularField(t *testing.T) {
	// Changes every 10 days: 0, 10, ..., 100. Mean gap 10; last visible
	// change before window [105, 112) is 100; next expected 110 ∈ window.
	var days []timeline.Day
	for d := timeline.Day(0); d <= 100; d += 10 {
		days = append(days, d)
	}
	hs, f := singleFieldSet(t, days...)
	w := timeline.Window{Span: timeline.NewSpan(105, 112)}
	if !(Mean{}).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("mean baseline missed the periodic change")
	}
	// Window [101, 105): next expected change is 110, outside.
	w2 := timeline.Window{Span: timeline.NewSpan(101, 105)}
	if (Mean{}).Predict(predict.NewContext(hs, f, w2)) {
		t.Fatal("mean baseline fired early")
	}
}

func TestMeanCatchesUpWhenOverdue(t *testing.T) {
	// Last change at 100, mean gap 10. Window [135, 140): extrapolated
	// changes 110, 120, 130 are overdue; 140 is outside but the k-th
	// prediction catching the window is... 110,120,130 < 135; 140 >= 140:
	// no prediction. Window [125,135): 130 falls inside -> predict.
	var days []timeline.Day
	for d := timeline.Day(0); d <= 100; d += 10 {
		days = append(days, d)
	}
	hs, f := singleFieldSet(t, days...)
	if !(Mean{}).Predict(predict.NewContext(hs, f, timeline.Window{Span: timeline.NewSpan(125, 135)})) {
		t.Fatal("overdue extrapolation missed")
	}
	if (Mean{}).Predict(predict.NewContext(hs, f, timeline.Window{Span: timeline.NewSpan(135, 140)})) {
		t.Fatal("extrapolation grid misaligned")
	}
}

func TestMeanNeedsTwoChanges(t *testing.T) {
	hs, f := singleFieldSet(t, 5)
	w := timeline.Window{Span: timeline.NewSpan(6, 100)}
	if (Mean{}).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("mean baseline predicted with a single change")
	}
}

func TestMeanIgnoresHiddenWindowChanges(t *testing.T) {
	// Changes at 0,10,20 then inside the window at 25: only 0,10,20 are
	// visible; mean gap 10, next 30, window [24,28) -> no prediction.
	hs, f := singleFieldSet(t, 0, 10, 20, 25)
	w := timeline.Window{Span: timeline.NewSpan(24, 28)}
	if (Mean{}).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("hidden in-window change leaked into the mean")
	}
}

func TestMeanLargeWindowCoversNext(t *testing.T) {
	hs, f := singleFieldSet(t, 0, 100)
	// Mean gap 100, next change 200; yearly window [150, 515) contains it.
	w := timeline.Window{Span: timeline.NewSpan(150, 515)}
	if !(Mean{}).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("yearly window missed extrapolated change")
	}
}

func TestThresholdTrainsPerSize(t *testing.T) {
	// Validation year [0, 365). A field changing every day trivially
	// passes all sizes; a field changing every 10 days changes in all
	// 30-day and 365-day windows but not in 85% of 1-day windows.
	var daily, sparse []timeline.Day
	for d := timeline.Day(0); d < 365; d++ {
		daily = append(daily, d)
	}
	for d := timeline.Day(0); d < 365; d += 10 {
		sparse = append(sparse, d)
	}
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	fd := changecube.FieldKey{Entity: e, Property: changecube.PropertyID(c.Properties.Intern("daily"))}
	fs := changecube.FieldKey{Entity: e, Property: changecube.PropertyID(c.Properties.Intern("sparse"))}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(fd, daily),
		changecube.NewHistory(fs, sparse),
	})
	if err != nil {
		t.Fatal(err)
	}
	valSpan := timeline.NewSpan(0, 365)
	th, err := TrainThreshold(hs, valSpan, timeline.StandardSizes, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// Daily field: predicted at every size.
	for _, size := range timeline.StandardSizes {
		w := timeline.Window{Span: timeline.NewSpan(400, 400+timeline.Day(size))}
		got := th.Predict(predict.NewContext(hs, fd, w))
		if !got {
			t.Errorf("daily field not predicted at size %d", size)
		}
	}
	// Sparse field: not at 1-day (10% of windows) or 7-day (70%), yes at
	// 30-day (100%) and 365-day (100%).
	for size, want := range map[int]bool{1: false, 7: false, 30: true, 365: true} {
		w := timeline.Window{Span: timeline.NewSpan(400, 400+timeline.Day(size))}
		if got := th.Predict(predict.NewContext(hs, fs, w)); got != want {
			t.Errorf("sparse field at size %d = %v, want %v", size, got, want)
		}
	}
	if th.AlwaysPredicted(1) != 1 || th.AlwaysPredicted(30) != 2 {
		t.Fatalf("AlwaysPredicted: 1d=%d 30d=%d", th.AlwaysPredicted(1), th.AlwaysPredicted(30))
	}
}

func TestThresholdUnknownSizeNeverPredicts(t *testing.T) {
	hs, f := singleFieldSet(t, 1, 2, 3, 4, 5)
	th, err := TrainThreshold(hs, timeline.NewSpan(0, 10), []int{1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w := timeline.Window{Span: timeline.NewSpan(20, 27)} // size 7, untrained
	if th.Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("untrained size predicted")
	}
}

func TestThresholdRejectsBadFraction(t *testing.T) {
	hs, _ := singleFieldSet(t, 1, 2)
	for _, fr := range []float64{0, -1, 1.5} {
		if _, err := TrainThreshold(hs, timeline.NewSpan(0, 10), []int{1}, fr); err == nil {
			t.Errorf("fraction %v accepted", fr)
		}
	}
}

func TestNames(t *testing.T) {
	if (Mean{}).Name() != "mean baseline" {
		t.Fatal("mean name wrong")
	}
	th := &Threshold{}
	if th.Name() != "threshold baseline" {
		t.Fatal("threshold name wrong")
	}
}

func TestForecastPredictsFrequentField(t *testing.T) {
	// A field changing every 2 days: λ = 0.5, weekly window probability
	// 1-e^{-3.5} ≈ 0.97 > 0.5 -> predicted.
	var days []timeline.Day
	for d := timeline.Day(0); d < 100; d += 2 {
		days = append(days, d)
	}
	hs, f := singleFieldSet(t, days...)
	w := timeline.Window{Span: timeline.NewSpan(100, 107)}
	if !(DefaultForecast()).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("frequent field not predicted for a weekly window")
	}
	// Daily window: p = 1-e^{-0.5} ≈ 0.39 < 0.5 -> not predicted.
	w1 := timeline.Window{Span: timeline.NewSpan(100, 101)}
	if (DefaultForecast()).Predict(predict.NewContext(hs, f, w1)) {
		t.Fatal("frequent field predicted for a daily window")
	}
}

func TestForecastIgnoresSparseField(t *testing.T) {
	// Mean gap ~200 days: a weekly window has p ≈ 0.034.
	hs, f := singleFieldSet(t, 0, 200, 400, 600, 800)
	w := timeline.Window{Span: timeline.NewSpan(810, 817)}
	if (DefaultForecast()).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("sparse field predicted")
	}
	// But the yearly window clears the threshold: p = 1-e^{-365/200} ≈ 0.84.
	wy := timeline.Window{Span: timeline.NewSpan(810, 810+365)}
	if !(DefaultForecast()).Predict(predict.NewContext(hs, f, wy)) {
		t.Fatal("yearly window not predicted despite p > threshold")
	}
}

func TestForecastRecencyWeighting(t *testing.T) {
	// Gaps of 100 days followed by a sustained burst of 2-day gaps: the
	// smoothing must pull the estimate toward the recent regime (after ten
	// α=0.3 steps the old 100-day gap contributes 100·0.7¹⁰ ≈ 2.8 days).
	days := []timeline.Day{0, 100, 200, 300}
	for d := timeline.Day(302); d <= 320; d += 2 {
		days = append(days, d)
	}
	hs, f := singleFieldSet(t, days...)
	w := timeline.Window{Span: timeline.NewSpan(320, 327)}
	if !(DefaultForecast()).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("recent burst not reflected in the rate")
	}
}

func TestForecastNeedsHistory(t *testing.T) {
	hs, f := singleFieldSet(t, 5)
	w := timeline.Window{Span: timeline.NewSpan(6, 100)}
	if (DefaultForecast()).Predict(predict.NewContext(hs, f, w)) {
		t.Fatal("single-change field predicted")
	}
}

func TestForecastValidate(t *testing.T) {
	bad := []Forecast{
		{Alpha: 0, Threshold: 0.5},
		{Alpha: 1.5, Threshold: 0.5},
		{Alpha: 0.3, Threshold: 0},
		{Alpha: 0.3, Threshold: 1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad forecast config %d accepted", i)
		}
	}
	if err := DefaultForecast().Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultForecast().Name() != "forecast baseline" {
		t.Fatal("name wrong")
	}
}
