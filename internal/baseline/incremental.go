package baseline

// Incremental retraining for the threshold baseline: membership in each
// window size's always-predict set is strictly field-local — a function
// of the field's own change days inside the validation span — so only
// dirty fields can move in or out of a set. TrainThresholdIncremental
// copies the previous sets and re-scores the dirty fields. A moved
// validation span shifts every field's windows at once and falls back to
// a full scan.

import (
	"fmt"
	"math"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// ThresholdPrevious carries the last successful training and the
// validation span it scanned.
type ThresholdPrevious struct {
	Predictor *Threshold
	ValSpan   timeline.Span
}

// ThresholdIncrementalStats reports what TrainThresholdIncremental did.
type ThresholdIncrementalStats struct {
	// Full is true when every field was re-scanned; FullReason is "cold",
	// "forced", or "span".
	Full       bool
	FullReason string
	// FieldsRecomputed counts dirty fields re-scored on the incremental
	// path (per window size they are scored once each).
	FieldsRecomputed int
}

// TrainThresholdIncremental is TrainThreshold with per-field reuse. dirty
// lists the fields whose change histories may differ from the previous
// training (vanished fields included); prev must come from the same sizes
// and fraction. The result is bit-identical to TrainThreshold over the
// same inputs.
func TrainThresholdIncremental(hs *changecube.HistorySet, valSpan timeline.Span, sizes []int, fraction float64,
	prev ThresholdPrevious, dirty map[changecube.FieldKey]bool, forceFull bool) (*Threshold, ThresholdIncrementalStats, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, ThresholdIncrementalStats{}, fmt.Errorf("baseline: fraction %v out of (0,1]", fraction)
	}
	reason := ""
	switch {
	case forceFull:
		reason = "forced"
	case prev.Predictor == nil:
		reason = "cold"
	case valSpan != prev.ValSpan:
		reason = "span"
	}
	if reason != "" {
		t, err := TrainThreshold(hs, valSpan, sizes, fraction)
		if err != nil {
			return nil, ThresholdIncrementalStats{}, err
		}
		return t, ThresholdIncrementalStats{Full: true, FullReason: reason}, nil
	}

	t := &Threshold{
		fraction: fraction,
		always:   make(map[int]map[changecube.FieldKey]bool, len(sizes)),
	}
	stats := ThresholdIncrementalStats{}
	for _, size := range sizes {
		prevSet := prev.Predictor.always[size]
		set := make(map[changecube.FieldKey]bool, len(prevSet))
		for f := range prevSet {
			if !dirty[f] {
				set[f] = true
			}
		}
		windows := timeline.Tumbling(valSpan, size)
		need := int(math.Ceil(fraction * float64(len(windows))))
		if need < 1 {
			need = 1
		}
		if len(windows) > 0 {
			for f := range dirty {
				h, ok := hs.Get(f)
				if !ok {
					continue // vanished field: already dropped above
				}
				changed := 0
				for _, w := range windows {
					if h.ChangedIn(w.Span) {
						changed++
					}
				}
				if changed >= need {
					set[f] = true
				}
			}
		}
		t.always[size] = set
	}
	stats.FieldsRecomputed = len(dirty)
	return t, stats, nil
}
