// Package baseline implements the paper's two comparison predictors
// (§5.2): the mean baseline, a regressor that schedules the next change at
// the field's mean inter-change interval, and the threshold baseline,
// which predicts every window of a size for fields that changed in at
// least a threshold share of same-size windows during the validation year.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Mean is the mean baseline. It is stateless: the mean inter-change gap is
// recomputed from the target's visible history at prediction time, so the
// estimate always uses all changes before the window start.
type Mean struct{}

var (
	_ predict.Predictor      = Mean{}
	_ predict.BatchPredictor = Mean{}
)

// Name implements predict.Predictor.
func (Mean) Name() string { return "mean baseline" }

// meanNext extrapolates the field's next change from its changes before
// the window start: with mean gap n, the next changes are scheduled at
// last + n, last + 2n, ...; the first one at or after the window start is
// the prediction. ok is false when the history is too short or degenerate
// to extrapolate from.
func meanNext(days []timeline.Day, w timeline.Window) (next, gap float64, ok bool) {
	if len(days) < 2 {
		return 0, 0, false
	}
	last := float64(days[len(days)-1])
	n := (float64(days[len(days)-1]) - float64(days[0])) / float64(len(days)-1)
	if n <= 0 {
		return 0, 0, false
	}
	// Smallest k >= 1 with last + k*n >= w.Start.
	k := math.Ceil((float64(w.Start) - last) / n)
	if k < 1 {
		k = 1
	}
	return last + k*n, n, true
}

// meanFires is the shared prediction rule: fire when the extrapolated next
// change day falls inside the window.
func meanFires(days []timeline.Day, w timeline.Window) bool {
	next, _, ok := meanNext(days, w)
	return ok && next < float64(w.End)
}

// Predict implements predict.Predictor.
func (Mean) Predict(ctx predict.Context) bool {
	return meanFires(ctx.TargetDays(), ctx.Window())
}

// PredictWindows implements predict.BatchPredictor: the per-window target
// prefixes come from the batch's single-merge precomputation instead of
// one binary search per window.
func (Mean) PredictWindows(b predict.Batch, out []bool) {
	windows := b.Windows()
	for i := range out {
		out[i] = meanFires(b.TargetDaysBefore(i), windows[i])
	}
}

// MeanEvidence is the mean baseline's explanation: the extrapolation that
// did (or did not) land inside the window.
type MeanEvidence struct {
	// NextDay is the first extrapolated change day at or after the window
	// start; MeanGapDays the mean inter-change gap it was scheduled with.
	NextDay     float64
	MeanGapDays float64
	// Fired reports whether NextDay fell inside the window — the Predict
	// verdict.
	Fired bool
}

// Explain returns the extrapolation evidence behind Predict's verdict, and
// ok=false when the target's visible history is too short to extrapolate
// (in which case Predict is false).
func (Mean) Explain(ctx predict.Context) (MeanEvidence, bool) {
	next, gap, ok := meanNext(ctx.TargetDays(), ctx.Window())
	if !ok {
		return MeanEvidence{}, false
	}
	return MeanEvidence{
		NextDay:     next,
		MeanGapDays: gap,
		Fired:       next < float64(ctx.Window().End),
	}, true
}

// Threshold is the threshold baseline. For every window size it remembers
// the fields that changed in at least Fraction of the validation windows
// of that size and predicts a change in every test window for exactly
// those fields.
type Threshold struct {
	fraction float64
	// always[size] holds the fields predicted for every window of size.
	always map[int]map[changecube.FieldKey]bool
}

var (
	_ predict.Predictor      = (*Threshold)(nil)
	_ predict.BatchPredictor = (*Threshold)(nil)
)

// TrainThreshold scans the validation span once per window size. The paper
// uses fraction = 0.85 (the precision target) and the 365-day validation
// set; e.g. a field changing in at least 45 of the 52 seven-day validation
// windows is predicted for every 7-day test window.
func TrainThreshold(hs *changecube.HistorySet, valSpan timeline.Span, sizes []int, fraction float64) (*Threshold, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("baseline: fraction %v out of (0,1]", fraction)
	}
	t := &Threshold{
		fraction: fraction,
		always:   make(map[int]map[changecube.FieldKey]bool, len(sizes)),
	}
	for _, size := range sizes {
		windows := timeline.Tumbling(valSpan, size)
		need := int(math.Ceil(fraction * float64(len(windows))))
		if need < 1 {
			need = 1
		}
		set := make(map[changecube.FieldKey]bool)
		if len(windows) > 0 {
			for _, h := range hs.Histories() {
				changed := 0
				for _, w := range windows {
					if h.ChangedIn(w.Span) {
						changed++
					}
				}
				if changed >= need {
					set[h.Field] = true
				}
			}
		}
		t.always[size] = set
	}
	return t, nil
}

// Name implements predict.Predictor.
func (t *Threshold) Name() string { return "threshold baseline" }

// Predict implements predict.Predictor.
func (t *Threshold) Predict(ctx predict.Context) bool {
	set, ok := t.always[ctx.Window().Size()]
	if !ok {
		return false
	}
	return set[ctx.Target()]
}

// PredictWindows implements predict.BatchPredictor: one set lookup decides
// every window of the size at once.
func (t *Threshold) PredictWindows(b predict.Batch, out []bool) {
	set, ok := t.always[b.WindowSize()]
	v := ok && set[b.Target()]
	for i := range out {
		out[i] = v
	}
}

// Explain reports whether the target is in the always-predict set for the
// window's size — which is the whole of the threshold baseline's evidence —
// and whether the size was trained at all.
func (t *Threshold) Explain(ctx predict.Context) (inSet, sizeKnown bool) {
	set, ok := t.always[ctx.Window().Size()]
	if !ok {
		return false, false
	}
	return set[ctx.Target()], true
}

// AlwaysPredicted returns how many fields are unconditionally predicted at
// the given window size.
func (t *Threshold) AlwaysPredicted(size int) int { return len(t.always[size]) }

// SizeFields pairs a window size with the fields unconditionally predicted
// at that size, the serializable unit of the threshold baseline.
type SizeFields struct {
	Size   int
	Fields []changecube.FieldKey
}

// Export returns the trained always-predict sets in deterministic order.
func (t *Threshold) Export() []SizeFields {
	var out []SizeFields
	for size, set := range t.always {
		sf := SizeFields{Size: size}
		for field := range set {
			sf.Fields = append(sf.Fields, field)
		}
		sort.Slice(sf.Fields, func(i, j int) bool {
			a, b := sf.Fields[i], sf.Fields[j]
			if a.Entity != b.Entity {
				return a.Entity < b.Entity
			}
			return a.Property < b.Property
		})
		out = append(out, sf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// ThresholdFromSets reconstructs a threshold baseline from exported sets.
func ThresholdFromSets(sets []SizeFields) *Threshold {
	t := &Threshold{always: make(map[int]map[changecube.FieldKey]bool, len(sets))}
	for _, sf := range sets {
		m := make(map[changecube.FieldKey]bool, len(sf.Fields))
		for _, f := range sf.Fields {
			m[f] = true
		}
		t.always[sf.Size] = m
	}
	return t
}
