package baseline

import (
	"fmt"
	"math"

	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Forecast is the time-series forecasting baseline the paper's
// introduction argues is inapplicable ("most of the data is very sparse
// ... many of the properties that do change frequently have an irregular
// change behavior"). It models each field as a point process with an
// exponentially-weighted daily change rate λ, learned from the gaps
// between the field's past changes, and predicts a change in a window of
// w days when the implied probability 1 − e^{−λw} crosses the threshold.
//
// Its presence in the repository is evidential: on both the paper's data
// and the synthetic corpus it cannot reach the precision target, which is
// the premise of the paper's rule-based design.
type Forecast struct {
	// Alpha is the smoothing factor for the rate estimate, in (0, 1];
	// higher weights recent behavior more.
	Alpha float64
	// Threshold is the change-probability cut above which a window is
	// predicted, in (0, 1).
	Threshold float64
}

var (
	_ predict.Predictor      = Forecast{}
	_ predict.BatchPredictor = Forecast{}
)

// DefaultForecast returns a conventional smoothing configuration.
func DefaultForecast() Forecast {
	return Forecast{Alpha: 0.3, Threshold: 0.5}
}

// Validate checks the configuration.
func (f Forecast) Validate() error {
	if f.Alpha <= 0 || f.Alpha > 1 {
		return fmt.Errorf("baseline: Forecast.Alpha %v out of (0,1]", f.Alpha)
	}
	if f.Threshold <= 0 || f.Threshold >= 1 {
		return fmt.Errorf("baseline: Forecast.Threshold %v out of (0,1)", f.Threshold)
	}
	return nil
}

// Name implements predict.Predictor.
func (Forecast) Name() string { return "forecast baseline" }

// Predict implements predict.Predictor. The rate estimate uses only the
// target's changes before the window start; the elapsed quiet time since
// the last change decays nothing — a constant-rate (exponential
// inter-arrival) model, which is exactly the assumption irregular
// Wikipedia histories break.
func (f Forecast) Predict(ctx predict.Context) bool {
	return f.fires(ctx.TargetDays(), ctx.Window().Size())
}

// PredictWindows implements predict.BatchPredictor over the per-window
// target prefixes the batch precomputes with a single merge.
func (f Forecast) PredictWindows(b predict.Batch, out []bool) {
	size := b.WindowSize()
	for i := range out {
		out[i] = f.fires(b.TargetDaysBefore(i), size)
	}
}

// fires applies the rate model to the visible prefix of the target's
// history for a window of the given size.
func (f Forecast) fires(days []timeline.Day, size int) bool {
	if len(days) < 2 {
		return false
	}
	// Exponentially-smoothed mean gap, most recent gap weighted highest.
	smoothed := float64(days[1] - days[0])
	for i := 2; i < len(days); i++ {
		gap := float64(days[i] - days[i-1])
		smoothed = f.Alpha*gap + (1-f.Alpha)*smoothed
	}
	if smoothed <= 0 {
		return false
	}
	lambda := 1 / smoothed
	p := 1 - math.Exp(-lambda*float64(size))
	return p > f.Threshold
}
