package baseline

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

func randomThresholdSet(t *testing.T, rng *rand.Rand, nFields, dayRange int) *changecube.HistorySet {
	t.Helper()
	c := changecube.New()
	var histories []changecube.History
	for i := 0; i < nFields; i++ {
		e := c.AddEntityNamed("infobox test", fmt.Sprintf("Page %d", i))
		prop := changecube.PropertyID(c.Properties.Intern("prop"))
		set := map[timeline.Day]bool{}
		for n := 1 + rng.Intn(25); n > 0; n-- {
			set[timeline.Day(rng.Intn(dayRange))] = true
		}
		var days []timeline.Day
		for d := range set {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		histories = append(histories, changecube.NewHistory(
			changecube.FieldKey{Entity: e, Property: prop}, days))
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

func mutateSet(t *testing.T, rng *rand.Rand, hs *changecube.HistorySet, dayRange int) (*changecube.HistorySet, map[changecube.FieldKey]bool) {
	t.Helper()
	histories := hs.Histories()
	updates := make(map[changecube.FieldKey][]timeline.Day)
	dirty := make(map[changecube.FieldKey]bool)
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		h := histories[rng.Intn(len(histories))]
		updates[h.Field] = append(updates[h.Field], timeline.Day(rng.Intn(dayRange)))
		dirty[h.Field] = true
	}
	next, err := hs.MergeDays(updates)
	if err != nil {
		t.Fatal(err)
	}
	return next, dirty
}

// TestThresholdIncrementalMatchesColdRetrain: after every delta the
// incremental threshold baseline must be DeepEqual to a cold
// TrainThreshold over the same snapshot.
func TestThresholdIncrementalMatchesColdRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sizes := []int{7, 30, 365}
	const fraction = 0.5
	hs := randomThresholdSet(t, rng, 25, 200)
	valSpan := timeline.NewSpan(20, 180)

	prevP, stats, err := TrainThresholdIncremental(hs, valSpan, sizes, fraction, ThresholdPrevious{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full || stats.FullReason != "cold" {
		t.Fatalf("first train stats = %+v, want cold full rebuild", stats)
	}
	prev := ThresholdPrevious{Predictor: prevP, ValSpan: valSpan}
	membersSeen := 0
	for step := 0; step < 12; step++ {
		next, dirty := mutateSet(t, rng, hs, 200)
		hs = next
		inc, stats, err := TrainThresholdIncremental(hs, valSpan, sizes, fraction, prev, dirty, false)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := TrainThreshold(hs, valSpan, sizes, fraction)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, cold) {
			t.Fatalf("step %d: incremental threshold != cold threshold (stats %+v)", step, stats)
		}
		if stats.Full {
			t.Fatalf("step %d: unexpected full rebuild %+v", step, stats)
		}
		if stats.FieldsRecomputed != len(dirty) {
			t.Fatalf("step %d: recomputed %d fields, want %d", step, stats.FieldsRecomputed, len(dirty))
		}
		for _, set := range inc.always {
			membersSeen += len(set)
		}
		prev = ThresholdPrevious{Predictor: inc, ValSpan: valSpan}
	}
	if membersSeen == 0 {
		t.Fatal("threshold sets stayed empty; the equivalence was vacuous")
	}
}

// TestThresholdIncrementalSpanAndForceFallbacks: a moved validation span
// or the escape hatch rebuilds everything and still matches a cold train.
func TestThresholdIncrementalSpanAndForceFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	sizes := []int{7, 30}
	const fraction = 0.4
	hs := randomThresholdSet(t, rng, 15, 150)
	valSpan := timeline.NewSpan(0, 120)
	p1, _, err := TrainThresholdIncremental(hs, valSpan, sizes, fraction, ThresholdPrevious{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	next, dirty := mutateSet(t, rng, hs, 150)
	prev := ThresholdPrevious{Predictor: p1, ValSpan: valSpan}

	for _, tc := range []struct {
		name   string
		span   timeline.Span
		force  bool
		reason string
	}{
		{name: "span", span: timeline.NewSpan(30, 150), reason: "span"},
		{name: "forced", span: valSpan, force: true, reason: "forced"},
	} {
		inc, stats, err := TrainThresholdIncremental(next, tc.span, sizes, fraction, prev, dirty, tc.force)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Full || stats.FullReason != tc.reason {
			t.Fatalf("%s: stats = %+v, want full rebuild with reason %q", tc.name, stats, tc.reason)
		}
		cold, err := TrainThreshold(next, tc.span, sizes, fraction)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, cold) {
			t.Fatalf("%s: full-fallback threshold diverged from cold train", tc.name)
		}
	}
}
