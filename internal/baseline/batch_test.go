package baseline

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// mixedSet covers the regimes each baseline branches on: a regular field,
// an irregular one, a sparse one and a single-change one.
func mixedSet(t *testing.T) *changecube.HistorySet {
	t.Helper()
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	field := func(name string) changecube.FieldKey {
		return changecube.FieldKey{Entity: e, Property: changecube.PropertyID(c.Properties.Intern(name))}
	}
	var regular []timeline.Day
	for d := timeline.Day(0); d < 200; d += 10 {
		regular = append(regular, d)
	}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(field("regular"), regular),
		changecube.NewHistory(field("irregular"), []timeline.Day{3, 4, 40, 41, 42, 90, 180}),
		changecube.NewHistory(field("sparse"), []timeline.Day{150}),
		changecube.NewHistory(field("early"), []timeline.Day{50}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

func assertBatchMatchesScalar(t *testing.T, p predict.Predictor, hs *changecube.HistorySet, split timeline.Span, sizes []int) {
	t.Helper()
	bp, ok := p.(predict.BatchPredictor)
	if !ok {
		t.Fatalf("%s does not implement BatchPredictor", p.Name())
	}
	for _, size := range sizes {
		ws := predict.NewWindowSet(hs, split, size, nil)
		for _, h := range hs.Histories() {
			b := ws.For(h.Field)
			batch := make([]bool, b.NumWindows())
			scalar := make([]bool, b.NumWindows())
			bp.PredictWindows(b, batch)
			predict.ScalarPredictWindows(p, b, scalar)
			for i := range batch {
				if batch[i] != scalar[i] {
					t.Fatalf("%s size %d field %v window %d: batch %v != scalar %v",
						p.Name(), size, h.Field, i, batch[i], scalar[i])
				}
			}
		}
	}
}

func TestBaselinePredictWindowsMatchScalar(t *testing.T) {
	hs := mixedSet(t)
	split := timeline.NewSpan(100, 200)
	sizes := []int{1, 7, 30}
	thr, err := TrainThreshold(hs, timeline.NewSpan(0, 100), sizes, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []predict.Predictor{Mean{}, thr, DefaultForecast()} {
		assertBatchMatchesScalar(t, p, hs, split, sizes)
	}
	// A size the threshold baseline was not trained for still has to agree
	// (both paths never predict).
	assertBatchMatchesScalar(t, thr, hs, split, []int{3})
}
