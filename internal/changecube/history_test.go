package changecube

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/wikistale/wikistale/internal/timeline"
)

func mkHistory(days ...timeline.Day) History {
	return NewHistory(FieldKey{Entity: 0, Property: 0}, days)
}

func TestHistoryQueries(t *testing.T) {
	h := mkHistory(3, 7, 10, 21)
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	if got := h.CountIn(timeline.NewSpan(3, 11)); got != 3 {
		t.Fatalf("CountIn([3,11)) = %d, want 3", got)
	}
	if got := h.CountIn(timeline.NewSpan(11, 21)); got != 0 {
		t.Fatalf("CountIn([11,21)) = %d, want 0", got)
	}
	if !h.ChangedIn(timeline.NewSpan(21, 22)) {
		t.Fatal("ChangedIn missed day 21")
	}
	if h.ChangedIn(timeline.NewSpan(22, 100)) {
		t.Fatal("ChangedIn found change after last day")
	}
	if got := h.Before(10); len(got) != 2 || got[1] != 7 {
		t.Fatalf("Before(10) = %v", got)
	}
	if d, ok := h.LastBefore(10); !ok || d != 7 {
		t.Fatalf("LastBefore(10) = %v, %v", d, ok)
	}
	if _, ok := h.LastBefore(3); ok {
		t.Fatal("LastBefore(first day) should be absent")
	}
	if got := h.In(timeline.NewSpan(7, 21)); len(got) != 2 || got[0] != 7 || got[1] != 10 {
		t.Fatalf("In([7,21)) = %v", got)
	}
}

func TestHistoryValidate(t *testing.T) {
	if err := mkHistory(1, 2, 3).Validate(); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
	if err := mkHistory(1, 1).Validate(); err == nil {
		t.Fatal("duplicate day accepted")
	}
	if err := mkHistory(2, 1).Validate(); err == nil {
		t.Fatal("decreasing days accepted")
	}
}

// TestHistoryQueriesAgainstBruteForce cross-checks the binary-search
// implementations against linear scans on random histories.
func TestHistoryQueriesAgainstBruteForce(t *testing.T) {
	f := func(raw []uint8, s0, s1 uint8) bool {
		set := map[timeline.Day]bool{}
		for _, r := range raw {
			set[timeline.Day(r)] = true
		}
		days := make([]timeline.Day, 0, len(set))
		for d := range set {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		h := NewHistory(FieldKey{}, days)
		lo, hi := timeline.Day(s0), timeline.Day(s1)
		if hi < lo {
			lo, hi = hi, lo
		}
		span := timeline.NewSpan(lo, hi)
		count := 0
		for _, d := range days {
			if span.Contains(d) {
				count++
			}
		}
		if h.CountIn(span) != count || h.ChangedIn(span) != (count > 0) {
			return false
		}
		before := 0
		for _, d := range days {
			if d < lo {
				before++
			}
		}
		return len(h.Before(lo)) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func buildHistorySet(t *testing.T) *HistorySet {
	t.Helper()
	c := New()
	e1 := c.AddEntityNamed("infobox settlement", "London")
	e2 := c.AddEntityNamed("infobox settlement", "Paris")
	pop := PropertyID(c.Properties.Intern("population"))
	area := PropertyID(c.Properties.Intern("area"))
	hs, err := NewHistorySet(c, []History{
		NewHistory(FieldKey{Entity: e2, Property: pop}, []timeline.Day{5, 6, 7, 8, 9, 10}),
		NewHistory(FieldKey{Entity: e1, Property: pop}, []timeline.Day{1, 2, 3, 4, 5}),
		NewHistory(FieldKey{Entity: e1, Property: area}, []timeline.Day{1, 9}),
	})
	if err != nil {
		t.Fatalf("NewHistorySet: %v", err)
	}
	return hs
}

func TestHistorySetOrderAndLookup(t *testing.T) {
	hs := buildHistorySet(t)
	if hs.Len() != 3 {
		t.Fatalf("Len = %d", hs.Len())
	}
	// Sorted by (entity, property): e1.pop(0,0), e1.area(0,1), e2.pop(1,0).
	fields := hs.Histories()
	if fields[0].Field.Entity != 0 || fields[2].Field.Entity != 1 {
		t.Fatalf("histories not in field order: %v", fields)
	}
	h, ok := hs.Get(FieldKey{Entity: 1, Property: 0})
	if !ok || h.Len() != 6 {
		t.Fatalf("Get(e2.pop) = %v, %v", h, ok)
	}
	if _, ok := hs.Get(FieldKey{Entity: 9, Property: 0}); ok {
		t.Fatal("Get returned a missing field")
	}
	if hs.TotalChanges() != 13 {
		t.Fatalf("TotalChanges = %d, want 13", hs.TotalChanges())
	}
	span := hs.Span()
	if span.Start != 1 || span.End != 11 {
		t.Fatalf("Span = %v, want [1,11)", span)
	}
}

func TestHistorySetGroupings(t *testing.T) {
	hs := buildHistorySet(t)
	byPage := hs.ByPage()
	london, _ := hs.Cube().Pages.Lookup("London")
	if got := byPage[PageID(london)]; len(got) != 2 {
		t.Fatalf("London has %d histories, want 2", len(got))
	}
	byEntity := hs.ByEntity()
	if len(byEntity[0]) != 2 || len(byEntity[1]) != 1 {
		t.Fatalf("ByEntity = %v", byEntity)
	}
}

func TestHistorySetRejectsInvalid(t *testing.T) {
	c := New()
	e := c.AddEntityNamed("t", "p")
	prop := PropertyID(c.Properties.Intern("x"))
	if _, err := NewHistorySet(c, []History{NewHistory(FieldKey{Entity: e, Property: prop}, nil)}); err == nil {
		t.Fatal("empty history accepted")
	}
	if _, err := NewHistorySet(c, []History{
		NewHistory(FieldKey{Entity: e, Property: prop}, []timeline.Day{1}),
		NewHistory(FieldKey{Entity: e, Property: prop}, []timeline.Day{2}),
	}); err == nil {
		t.Fatal("duplicate field accepted")
	}
	if _, err := NewHistorySet(c, []History{
		NewHistory(FieldKey{Entity: 42, Property: prop}, []timeline.Day{1}),
	}); err == nil {
		t.Fatal("unknown entity accepted")
	}
}

func TestHistorySetRestrict(t *testing.T) {
	hs := buildHistorySet(t)
	// Span [5,11) keeps: e2.pop days 5..10 (6 ≥ 5 changes); e1.pop only day 5
	// (1 change, dropped); e1.area only day 9 (dropped).
	r := hs.Restrict(timeline.NewSpan(5, 11), 5)
	if r.Len() != 1 {
		t.Fatalf("Restrict kept %d fields, want 1", r.Len())
	}
	h := r.Histories()[0]
	if h.Field.Entity != 1 || h.Len() != 6 {
		t.Fatalf("kept history = %+v", h)
	}
	// minChanges=1 keeps everything with at least one change in span.
	r1 := hs.Restrict(timeline.NewSpan(5, 11), 1)
	if r1.Len() != 3 {
		t.Fatalf("Restrict(min 1) kept %d fields, want 3", r1.Len())
	}
}
