package changecube

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestCubeCloneIsDeep: mutating the clone must leave the original
// untouched, and vice versa.
func TestCubeCloneIsDeep(t *testing.T) {
	c := New()
	e := c.AddEntityNamed("tmpl", "Page A")
	p := PropertyID(c.Properties.Intern("pop"))
	c.Add(Change{Time: 100, Entity: e, Property: p, Value: "1", Kind: Update})
	c.Add(Change{Time: 200, Entity: e, Property: p, Value: "2", Kind: Update})

	clone := c.Clone()
	if clone.NumChanges() != 2 || clone.NumEntities() != 1 {
		t.Fatalf("clone shape: %d changes, %d entities", clone.NumChanges(), clone.NumEntities())
	}
	if !reflect.DeepEqual(clone.Changes(), c.Changes()) {
		t.Fatal("clone changes differ")
	}

	// Grow the clone: new entity, new name, new change.
	e2 := clone.AddEntityNamed("tmpl2", "Page B")
	p2 := PropertyID(clone.Properties.Intern("area"))
	clone.Add(Change{Time: 300, Entity: e2, Property: p2, Value: "3", Kind: Update})

	if c.NumChanges() != 2 || c.NumEntities() != 1 {
		t.Fatalf("original mutated: %d changes, %d entities", c.NumChanges(), c.NumEntities())
	}
	if _, ok := c.Properties.Lookup("area"); ok {
		t.Fatal("original dictionary grew with the clone")
	}
	if _, ok := clone.Properties.Lookup("area"); !ok {
		t.Fatal("clone dictionary lost its new name")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCloneKeepsSortedFlag: a sorted cube's clone must not re-sort.
func TestCloneKeepsSortedFlag(t *testing.T) {
	c := New()
	e := c.AddEntityNamed("t", "p")
	p := PropertyID(c.Properties.Intern("x"))
	c.Add(Change{Time: 200, Entity: e, Property: p, Kind: Update})
	c.Add(Change{Time: 100, Entity: e, Property: p, Kind: Update})
	c.Sort()
	clone := c.Clone()
	if got := clone.Changes(); got[0].Time != 100 || got[1].Time != 200 {
		t.Fatalf("clone order: %v", got)
	}
}

// TestChangeKindText: the kind round-trips through its text form, and
// invalid values are rejected in both directions.
func TestChangeKindText(t *testing.T) {
	for _, k := range []ChangeKind{Update, Create, Delete} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseChangeKind(string(b))
		if err != nil || parsed != k {
			t.Fatalf("round trip %v -> %s -> %v (%v)", k, b, parsed, err)
		}
	}
	if _, err := ParseChangeKind("rename"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ChangeKind(42).MarshalText(); err == nil {
		t.Fatal("out-of-range kind marshalled")
	}

	// JSON integration: the kind serializes as its name.
	type wrap struct {
		Kind ChangeKind `json:"kind"`
	}
	b, err := json.Marshal(wrap{Kind: Create})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"kind":"create"}` {
		t.Fatalf("json form: %s", b)
	}
	var w wrap
	if err := json.Unmarshal([]byte(`{"kind":"delete"}`), &w); err != nil || w.Kind != Delete {
		t.Fatalf("json parse: %+v, %v", w, err)
	}
	if err := json.Unmarshal([]byte(`{"kind":"bogus"}`), &w); err == nil {
		t.Fatal("bogus kind accepted from json")
	}
}

// TestDictClone: the copied dictionary is independent.
func TestDictClone(t *testing.T) {
	d := NewDict()
	d.Intern("a")
	d.Intern("b")
	clone := d.Clone()
	clone.Intern("c")
	if d.Len() != 2 || clone.Len() != 3 {
		t.Fatalf("lens: original %d, clone %d", d.Len(), clone.Len())
	}
	if id, ok := clone.Lookup("a"); !ok || d.Name(id) != "a" {
		t.Fatal("clone lost shared names")
	}
}
