package changecube

import (
	"fmt"
	"unsafe"
)

// The change log is the cube's packed column storage: changes live in
// fixed-capacity chunks of parallel arrays (struct-of-arrays) instead of a
// single []Change, and values live in shared append-only byte arenas
// instead of one heap allocation per string. Two properties follow:
//
//   - A resident change costs ~25 bytes plus its value bytes, against ~56
//     bytes (40-byte struct plus a per-value allocation) for the
//     array-of-structs layout — the difference between fitting a
//     paper-scale corpus in memory and not.
//   - Sealed chunks and arena blocks are immutable, so Clone shares them
//     and deep-copies only the open tail chunk: snapshot clones cost
//     O(chunk), not O(corpus), which is what keeps live-ingestion
//     snapshots cheap while tens of millions of changes are staged.
//
// Value strings are materialized with unsafe.String over the arena bytes.
// That is safe because arena blocks are never grown in place (a value that
// does not fit the active block opens a new one) and never mutated after
// append; the interior pointer keeps the block alive for as long as any
// returned string lives.

const (
	logChunkShift = 15
	logChunkSize  = 1 << logChunkShift // changes per chunk
	logChunkMask  = logChunkSize - 1

	arenaBlockCap = 1 << 20 // value arena block capacity (bytes)

	// vref packs a value's arena location into one word:
	// block (20 bits) | offset (20 bits) | length (24 bits).
	vrefOffBits = 20
	vrefLenBits = 24
	vrefLenMask = 1<<vrefLenBits - 1
	vrefOffMask = 1<<vrefOffBits - 1

	maxValueLen = vrefLenMask // 16 MiB, matching the io codec's cap
)

// kindBot packs a ChangeKind and the bot flag into one byte.
const kindBotFlag = 0x80

// logChunk is one fixed-capacity column block.
type logChunk struct {
	times []int64
	ents  []int32
	props []int32
	kinds []uint8  // ChangeKind | kindBotFlag
	vrefs []uint64 // packed arena reference
}

func newLogChunk() *logChunk {
	return &logChunk{
		times: make([]int64, 0, logChunkSize),
		ents:  make([]int32, 0, logChunkSize),
		props: make([]int32, 0, logChunkSize),
		kinds: make([]uint8, 0, logChunkSize),
		vrefs: make([]uint64, 0, logChunkSize),
	}
}

// clone deep-copies the chunk (used for the open tail on Clone, so the
// copy's appends never share backing arrays with the original's).
func (c *logChunk) clone() *logChunk {
	out := newLogChunk()
	out.times = append(out.times, c.times...)
	out.ents = append(out.ents, c.ents...)
	out.props = append(out.props, c.props...)
	out.kinds = append(out.kinds, c.kinds...)
	out.vrefs = append(out.vrefs, c.vrefs...)
	return out
}

// changeLog is the packed change list.
type changeLog struct {
	chunks []*logChunk
	blocks [][]byte // value arena; all blocks but the active one are sealed
	active int      // index of the block new values append to; -1 forces a fresh block
	n      int
}

func newChangeLog() changeLog {
	return changeLog{active: -1}
}

func (l *changeLog) len() int { return l.n }

// internValue copies the value bytes into the arena and returns its vref.
func (l *changeLog) internValue(v string) uint64 {
	if len(v) == 0 {
		return 0
	}
	if len(v) > maxValueLen {
		panic(fmt.Sprintf("changecube: value length %d exceeds %d", len(v), maxValueLen))
	}
	capNeeded := len(v)
	if l.active < 0 || len(l.blocks[l.active])+capNeeded > cap(l.blocks[l.active]) {
		blockCap := arenaBlockCap
		if capNeeded > blockCap {
			blockCap = capNeeded
		}
		l.blocks = append(l.blocks, make([]byte, 0, blockCap))
		l.active = len(l.blocks) - 1
	}
	block := l.active
	off := len(l.blocks[block])
	l.blocks[block] = append(l.blocks[block], v...)
	return uint64(block)<<(vrefOffBits+vrefLenBits) | uint64(off)<<vrefLenBits | uint64(len(v))
}

// value resolves a vref to its string, zero-copy.
func (l *changeLog) value(ref uint64) string {
	n := int(ref & vrefLenMask)
	if n == 0 {
		return ""
	}
	off := int(ref >> vrefLenBits & vrefOffMask)
	block := l.blocks[ref>>(vrefOffBits+vrefLenBits)]
	return unsafe.String(&block[off], n)
}

// add appends one change and returns its index.
func (l *changeLog) add(ch Change) int {
	var tail *logChunk
	if len(l.chunks) > 0 {
		tail = l.chunks[len(l.chunks)-1]
	}
	if tail == nil || len(tail.times) == logChunkSize {
		tail = newLogChunk()
		l.chunks = append(l.chunks, tail)
	}
	tail.times = append(tail.times, ch.Time)
	tail.ents = append(tail.ents, int32(ch.Entity))
	tail.props = append(tail.props, int32(ch.Property))
	kb := uint8(ch.Kind)
	if ch.Bot {
		kb |= kindBotFlag
	}
	tail.kinds = append(tail.kinds, kb)
	tail.vrefs = append(tail.vrefs, l.internValue(ch.Value))
	idx := l.n
	l.n++
	return idx
}

// at materializes the change at index i. The value string aliases the
// arena (zero-copy) and stays valid for the life of the log and beyond.
func (l *changeLog) at(i int) Change {
	c := l.chunks[i>>logChunkShift]
	j := i & logChunkMask
	kb := c.kinds[j]
	return Change{
		Time:     c.times[j],
		Entity:   EntityID(c.ents[j]),
		Property: PropertyID(c.props[j]),
		Value:    l.value(c.vrefs[j]),
		Kind:     ChangeKind(kb &^ kindBotFlag),
		Bot:      kb&kindBotFlag != 0,
	}
}

// timeAt returns the timestamp at index i without materializing the change.
func (l *changeLog) timeAt(i int) int64 {
	return l.chunks[i>>logChunkShift].times[i&logChunkMask]
}

// each visits changes [lo, hi) in index order; returning false stops.
func (l *changeLog) each(lo, hi int, fn func(int, Change) bool) {
	for i := lo; i < hi; i++ {
		if !fn(i, l.at(i)) {
			return
		}
	}
}

// clone returns a copy-on-write copy: sealed chunks and arena blocks are
// shared (they are immutable), the open tail chunk is deep-copied, and the
// copy opens a fresh arena block on its first value append so the shared
// active block is never written through two logs.
func (l *changeLog) clone() changeLog {
	out := changeLog{
		chunks: append([]*logChunk(nil), l.chunks...),
		blocks: append([][]byte(nil), l.blocks...),
		active: -1, // first append after the clone opens a fresh block
		n:      l.n,
	}
	if len(out.chunks) > 0 {
		if tail := out.chunks[len(out.chunks)-1]; len(tail.times) < logChunkSize {
			out.chunks[len(out.chunks)-1] = tail.clone()
		}
	}
	return out
}

// replace rebuilds the log from a materialized change list (used by Sort).
// The fresh log gets its own chunks and arena, so logs sharing chunks with
// this one through earlier clones are unaffected.
func (l *changeLog) replace(changes []Change) {
	fresh := newChangeLog()
	for _, ch := range changes {
		fresh.add(ch)
	}
	*l = fresh
}
