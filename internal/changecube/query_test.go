package changecube

import (
	"testing"

	"github.com/wikistale/wikistale/internal/timeline"
)

// queryCube builds a cube with two templates, three entities and changes
// across several days.
func queryCube(t *testing.T) *Cube {
	t.Helper()
	c := New()
	london := c.AddEntityNamed("infobox settlement", "London")
	paris := c.AddEntityNamed("infobox settlement", "Paris")
	boxer := c.AddEntityNamed("infobox boxer", "Ali")
	pop := PropertyID(c.Properties.Intern("population"))
	wins := PropertyID(c.Properties.Intern("wins"))
	day := func(d int) int64 { return timeline.Day(d).Unix() + 100 }
	c.Add(Change{Time: day(0), Entity: london, Property: pop, Value: "1", Kind: Create})
	c.Add(Change{Time: day(1), Entity: london, Property: pop, Value: "2", Kind: Update})
	c.Add(Change{Time: day(2), Entity: paris, Property: pop, Value: "3", Kind: Update})
	c.Add(Change{Time: day(3), Entity: boxer, Property: wins, Value: "10", Kind: Update})
	c.Add(Change{Time: day(4), Entity: boxer, Property: wins, Value: "", Kind: Delete})
	c.Add(Change{Time: day(5), Entity: london, Property: pop, Value: "4", Kind: Update})
	return c
}

func TestQueryAll(t *testing.T) {
	c := queryCube(t)
	if got := c.Query().Count(); got != 6 {
		t.Fatalf("Count() = %d, want 6", got)
	}
}

func TestQuerySpan(t *testing.T) {
	c := queryCube(t)
	q := c.Query().Span(timeline.NewSpan(1, 4))
	if got := q.Count(); got != 3 {
		t.Fatalf("span count = %d, want 3", got)
	}
	chs := q.Changes()
	if chs[0].Value != "2" || chs[2].Value != "10" {
		t.Fatalf("span changes = %+v", chs)
	}
}

func TestQueryTemplateAndKind(t *testing.T) {
	c := queryCube(t)
	if got := c.Query().Template("infobox settlement").Count(); got != 4 {
		t.Fatalf("settlement count = %d, want 4", got)
	}
	if got := c.Query().Template("infobox settlement").Kind(Update).Count(); got != 3 {
		t.Fatalf("settlement updates = %d, want 3", got)
	}
	if got := c.Query().Kind(Create, Delete).Count(); got != 2 {
		t.Fatalf("create+delete = %d, want 2", got)
	}
}

func TestQueryPageAndProperty(t *testing.T) {
	c := queryCube(t)
	if got := c.Query().Page("London").Count(); got != 3 {
		t.Fatalf("London count = %d", got)
	}
	if got := c.Query().Property("wins").Count(); got != 2 {
		t.Fatalf("wins count = %d", got)
	}
	vals := c.Query().Page("London").Property("population").Kind(Update).Values()
	if len(vals) != 2 || vals[0] != "2" || vals[1] != "4" {
		t.Fatalf("values = %v", vals)
	}
}

func TestQueryEntity(t *testing.T) {
	c := queryCube(t)
	if got := c.Query().Entity(0, 1).Count(); got != 4 {
		t.Fatalf("entity filter count = %d", got)
	}
}

func TestQueryUnknownNamesMatchNothing(t *testing.T) {
	c := queryCube(t)
	if got := c.Query().Template("infobox nonexistent").Count(); got != 0 {
		t.Fatalf("unknown template matched %d", got)
	}
	if got := c.Query().Page("Atlantis").Count(); got != 0 {
		t.Fatalf("unknown page matched %d", got)
	}
	if got := c.Query().Property("ghost").Count(); got != 0 {
		t.Fatalf("unknown property matched %d", got)
	}
	// An unknown name alongside a known one still matches the known one.
	if got := c.Query().Page("Atlantis", "London").Count(); got != 3 {
		t.Fatalf("mixed pages matched %d, want 3", got)
	}
}

func TestQueryFields(t *testing.T) {
	c := queryCube(t)
	fields := c.Query().Fields()
	if len(fields) != 3 {
		t.Fatalf("fields = %v", fields)
	}
	for i := 1; i < len(fields); i++ {
		if fields[i].Entity < fields[i-1].Entity {
			t.Fatalf("fields unsorted: %v", fields)
		}
	}
}

func TestQueryCountBy(t *testing.T) {
	c := queryCube(t)
	byKind := c.Query().CountByKind()
	if byKind[Update] != 4 || byKind[Create] != 1 || byKind[Delete] != 1 {
		t.Fatalf("byKind = %v", byKind)
	}
	byTemplate := c.Query().CountByTemplate()
	settlement, _ := c.Templates.Lookup("infobox settlement")
	if byTemplate[TemplateID(settlement)] != 4 {
		t.Fatalf("byTemplate = %v", byTemplate)
	}
}

func TestQueryEachEarlyStop(t *testing.T) {
	c := queryCube(t)
	visited := 0
	c.Query().Each(func(Change) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Fatalf("visited = %d, want early stop at 2", visited)
	}
}

func TestQueryComposition(t *testing.T) {
	c := queryCube(t)
	got := c.Query().
		Span(timeline.NewSpan(0, 10)).
		Template("infobox boxer").
		Property("wins").
		Kind(Update).
		Count()
	if got != 1 {
		t.Fatalf("composed query = %d, want 1", got)
	}
}
