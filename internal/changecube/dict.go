package changecube

import "fmt"

// Dict interns strings as dense int32 identifiers. The change cube stores
// millions of changes; interning property names, template names and page
// titles keeps Change values fixed-size and comparisons cheap.
type Dict struct {
	names []string
	index map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{index: make(map[string]int32)}
}

// Intern returns the identifier for name, assigning the next free one on
// first sight.
func (d *Dict) Intern(name string) int32 {
	if id, ok := d.index[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.index[name] = id
	return id
}

// Grow pre-sizes the dictionary for at least n interned strings, so a
// bulk load — a paper-scale corpus interns millions of page titles —
// pays one allocation instead of a doubling cascade of rehashes. A no-op
// when the dictionary already holds n strings; safe to call at any time.
func (d *Dict) Grow(n int) {
	if cap(d.names) < n {
		names := make([]string, len(d.names), n)
		copy(names, d.names)
		d.names = names
	}
	// Maps cannot reserve in place; rebuild with a capacity hint, but only
	// when the target is far enough beyond the current size that one O(len)
	// copy beats the incremental rehashes it replaces.
	if n > 2*len(d.index) {
		index := make(map[string]int32, n)
		for name, id := range d.index {
			index[name] = id
		}
		d.index = index
	}
}

// Lookup returns the identifier for name and whether it is known.
func (d *Dict) Lookup(name string) (int32, bool) {
	id, ok := d.index[name]
	return id, ok
}

// Name returns the string for id. It panics on an unknown identifier, which
// always indicates a programming error (ids only come from Intern).
func (d *Dict) Name(id int32) string {
	if id < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("changecube: unknown dictionary id %d (size %d)", id, len(d.names)))
	}
	return d.names[id]
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.names) }

// Clone returns an independent copy of the dictionary.
func (d *Dict) Clone() *Dict {
	out := &Dict{
		names: append([]string(nil), d.names...),
		index: make(map[string]int32, len(d.index)),
	}
	for name, id := range d.index {
		out.index[name] = id
	}
	return out
}

// Names returns the interned strings in id order. The returned slice is the
// dictionary's backing storage and must not be modified.
func (d *Dict) Names() []string { return d.names }
