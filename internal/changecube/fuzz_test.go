package changecube

import (
	"bytes"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the cube deserializer: it must
// reject or accept, never panic, and anything accepted must validate.
func FuzzReadBinary(f *testing.F) {
	valid, _ := buildFuzzSeed()
	f.Add(valid)
	f.Add([]byte("WCC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cube, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := cube.Validate(); err != nil {
			t.Fatalf("accepted cube fails validation: %v", err)
		}
	})
}

func buildFuzzSeed() ([]byte, error) {
	c := New()
	e := c.AddEntityNamed("infobox t", "Page")
	p := PropertyID(c.Properties.Intern("prop"))
	c.Add(Change{Time: 100, Entity: e, Property: p, Value: "v", Kind: Update})
	var buf bytes.Buffer
	err := c.WriteBinary(&buf)
	return buf.Bytes(), err
}
