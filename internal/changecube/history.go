package changecube

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/timeline"
)

// History is a field's filtered change history at day resolution: the
// strictly increasing list of days on which the field's representative
// change happened. This is the only view of the data the change predictors
// consume — the paper's predictors disregard the value dimension entirely.
type History struct {
	Field FieldKey
	Days  []timeline.Day
}

// Len returns the number of change days.
func (h History) Len() int { return len(h.Days) }

// CountIn returns the number of change days inside the half-open span.
func (h History) CountIn(span timeline.Span) int {
	lo := sort.Search(len(h.Days), func(i int) bool { return h.Days[i] >= span.Start })
	hi := sort.Search(len(h.Days), func(i int) bool { return h.Days[i] >= span.End })
	return hi - lo
}

// ChangedIn reports whether the field changed at least once inside span.
func (h History) ChangedIn(span timeline.Span) bool {
	lo := sort.Search(len(h.Days), func(i int) bool { return h.Days[i] >= span.Start })
	return lo < len(h.Days) && h.Days[lo] < span.End
}

// Before returns the prefix of change days strictly before day. The result
// aliases the history's storage.
func (h History) Before(day timeline.Day) []timeline.Day {
	hi := sort.Search(len(h.Days), func(i int) bool { return h.Days[i] >= day })
	return h.Days[:hi]
}

// In returns the change days inside the half-open span, aliasing storage.
func (h History) In(span timeline.Span) []timeline.Day {
	lo := sort.Search(len(h.Days), func(i int) bool { return h.Days[i] >= span.Start })
	hi := sort.Search(len(h.Days), func(i int) bool { return h.Days[i] >= span.End })
	return h.Days[lo:hi]
}

// LastBefore returns the most recent change day strictly before day.
func (h History) LastBefore(day timeline.Day) (timeline.Day, bool) {
	hi := sort.Search(len(h.Days), func(i int) bool { return h.Days[i] >= day })
	if hi == 0 {
		return 0, false
	}
	return h.Days[hi-1], true
}

// Validate checks that the day list is strictly increasing.
func (h History) Validate() error {
	for i := 1; i < len(h.Days); i++ {
		if h.Days[i] <= h.Days[i-1] {
			return fmt.Errorf("history %v: days not strictly increasing at %d (%v, %v)",
				h.Field, i, h.Days[i-1], h.Days[i])
		}
	}
	return nil
}

// HistorySet is the filtered dataset: one History per surviving field, plus
// the cube that supplies entity metadata (template, page). It is the input
// to training and evaluation.
type HistorySet struct {
	cube      *Cube
	histories []History
	index     map[FieldKey]int
}

// NewHistorySet builds a set over the given cube. Histories are sorted by
// field for determinism; each must be valid and non-empty, and fields must
// be unique.
func NewHistorySet(cube *Cube, histories []History) (*HistorySet, error) {
	hs := &HistorySet{
		cube:      cube,
		histories: histories,
		index:     make(map[FieldKey]int, len(histories)),
	}
	sort.Slice(hs.histories, func(i, j int) bool {
		a, b := hs.histories[i].Field, hs.histories[j].Field
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		return a.Property < b.Property
	})
	for i, h := range hs.histories {
		if len(h.Days) == 0 {
			return nil, fmt.Errorf("changecube: empty history for field %v", h.Field)
		}
		if err := h.Validate(); err != nil {
			return nil, err
		}
		if _, dup := hs.index[h.Field]; dup {
			return nil, fmt.Errorf("changecube: duplicate history for field %v", h.Field)
		}
		if int(h.Field.Entity) >= cube.NumEntities() || h.Field.Entity < 0 {
			return nil, fmt.Errorf("changecube: history references unknown entity %d", h.Field.Entity)
		}
		hs.index[h.Field] = i
	}
	return hs, nil
}

// Cube returns the underlying cube (entity metadata and dictionaries).
func (hs *HistorySet) Cube() *Cube { return hs.cube }

// Histories returns all histories in field order; the slice is backing
// storage and must not be modified.
func (hs *HistorySet) Histories() []History { return hs.histories }

// Len returns the number of fields.
func (hs *HistorySet) Len() int { return len(hs.histories) }

// Get returns the history for field and whether it exists.
func (hs *HistorySet) Get(field FieldKey) (History, bool) {
	i, ok := hs.index[field]
	if !ok {
		return History{}, false
	}
	return hs.histories[i], true
}

// TotalChanges returns the total number of day-level changes across fields.
func (hs *HistorySet) TotalChanges() int {
	n := 0
	for _, h := range hs.histories {
		n += len(h.Days)
	}
	return n
}

// Span returns the day span covering all change days.
func (hs *HistorySet) Span() timeline.Span {
	if len(hs.histories) == 0 {
		return timeline.Span{}
	}
	first := hs.histories[0].Days[0]
	last := hs.histories[0].Days[0]
	for _, h := range hs.histories {
		if h.Days[0] < first {
			first = h.Days[0]
		}
		if d := h.Days[len(h.Days)-1]; d > last {
			last = d
		}
	}
	return timeline.Span{Start: first, End: last + 1}
}

// ByPage groups history indices by the page of their entity, in field
// order within each page.
func (hs *HistorySet) ByPage() map[PageID][]int {
	out := make(map[PageID][]int)
	for i, h := range hs.histories {
		p := hs.cube.Page(h.Field.Entity)
		out[p] = append(out[p], i)
	}
	return out
}

// ByEntity groups history indices by entity.
func (hs *HistorySet) ByEntity() map[EntityID][]int {
	out := make(map[EntityID][]int)
	for i, h := range hs.histories {
		out[h.Field.Entity] = append(out[h.Field.Entity], i)
	}
	return out
}

// MergeDays returns a new set with additional change days folded in.
// Existing fields get the union of their days; unknown fields are added
// (their entities must exist in the cube). The receiver is unmodified.
func (hs *HistorySet) MergeDays(updates map[FieldKey][]timeline.Day) (*HistorySet, error) {
	histories := make([]History, 0, len(hs.histories)+len(updates))
	for _, h := range hs.histories {
		if extra, ok := updates[h.Field]; ok {
			histories = append(histories, History{
				Field: h.Field,
				Days:  mergeSortedDays(h.Days, extra),
			})
			continue
		}
		histories = append(histories, h)
	}
	for field, days := range updates {
		if _, ok := hs.index[field]; ok {
			continue
		}
		if len(days) == 0 {
			continue
		}
		histories = append(histories, History{Field: field, Days: mergeSortedDays(nil, days)})
	}
	return NewHistorySet(hs.cube, histories)
}

// mergeSortedDays unions two day lists into a fresh strictly-increasing
// slice. a must already be sorted; b is sorted defensively.
func mergeSortedDays(a, b []timeline.Day) []timeline.Day {
	bs := append([]timeline.Day(nil), b...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	out := make([]timeline.Day, 0, len(a)+len(bs))
	i, j := 0, 0
	push := func(d timeline.Day) {
		if len(out) == 0 || out[len(out)-1] != d {
			out = append(out, d)
		}
	}
	for i < len(a) && j < len(bs) {
		if a[i] <= bs[j] {
			push(a[i])
			i++
		} else {
			push(bs[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(bs); j++ {
		push(bs[j])
	}
	return out
}

// Restrict returns a new set containing, for every field, only the change
// days inside span — keeping fields with at least minChanges such days.
// This implements the paper's per-split eligibility rule ("all fields that
// have at least five changes within their timeframe").
func (hs *HistorySet) Restrict(span timeline.Span, minChanges int) *HistorySet {
	var kept []History
	for _, h := range hs.histories {
		days := h.In(span)
		if len(days) >= minChanges && len(days) > 0 {
			kept = append(kept, History{Field: h.Field, Days: days})
		}
	}
	out, err := NewHistorySet(hs.cube, kept)
	if err != nil {
		// Restricting a valid set cannot produce an invalid one.
		panic(fmt.Sprintf("changecube: Restrict produced invalid set: %v", err))
	}
	return out
}
