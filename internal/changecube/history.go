package changecube

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/timeline"
)

// History is a field's filtered change history at day resolution: the
// strictly increasing list of days on which the field's representative
// change happened. This is the only view of the data the change predictors
// consume — the paper's predictors disregard the value dimension entirely.
//
// A History holds its days in one of two representations: a plain
// []timeline.Day slice (the form incremental filtering produces), or a
// varint delta-packed byte string (first day as a signed varint, then
// strictly positive day gaps as unsigned varints — the epoch store's wire
// encoding, usable in place). The packed form costs ~1 byte per day
// instead of 4 plus a slice header per field, which is what lets a
// paper-scale corpus keep millions of field histories resident. Query
// methods are representation-transparent; Days() materializes a slice on
// demand from a packed history.
type History struct {
	Field FieldKey

	days []timeline.Day // slice form; nil when packed or empty

	packed      []byte // packed form; nil when slice form or empty
	count       int
	first, last timeline.Day // bounds of the packed form (count > 0)
}

// NewHistory wraps a strictly increasing day slice (not copied).
func NewHistory(field FieldKey, days []timeline.Day) History {
	return History{Field: field, days: days}
}

// NewHistoryPacked wraps a varint delta-packed day string of count days,
// validating it fully (strictly increasing, exactly count entries, no
// trailing bytes). The bytes are used in place, not copied.
func NewHistoryPacked(field FieldKey, packed []byte, count int) (History, error) {
	h, consumed, err := ScanPackedDays(field, packed, count)
	if err != nil {
		return History{}, err
	}
	if consumed != len(packed) {
		return History{}, fmt.Errorf("changecube: packed history %v: %d trailing bytes", field, len(packed)-consumed)
	}
	return h, nil
}

// ScanPackedDays reads exactly count packed days from the front of data,
// returning the History (referencing data in place) and the number of
// bytes consumed. Day gaps must be in [1, 1<<30] and days must not
// overflow — the same bounds the epoch store's snapshot decoder enforces,
// so corrupt on-disk payloads surface as errors, never panics.
func ScanPackedDays(field FieldKey, data []byte, count int) (History, int, error) {
	if count == 0 {
		return History{Field: field}, 0, nil
	}
	pos := 0
	var first, prev timeline.Day
	for i := 0; i < count; i++ {
		if i == 0 {
			v, n := binary.Varint(data[pos:])
			if n <= 0 {
				return History{}, 0, fmt.Errorf("changecube: packed history %v: truncated first day", field)
			}
			pos += n
			first = timeline.Day(v)
			if int64(first) != v {
				return History{}, 0, fmt.Errorf("changecube: packed history %v: first day %d out of range", field, v)
			}
			prev = first
			continue
		}
		gap, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return History{}, 0, fmt.Errorf("changecube: packed history %v: truncated day gap %d", field, i)
		}
		pos += n
		if gap == 0 || gap > 1<<30 {
			return History{}, 0, fmt.Errorf("changecube: packed history %v: day gap %d", field, gap)
		}
		day := prev + timeline.Day(gap)
		if day <= prev {
			return History{}, 0, fmt.Errorf("changecube: packed history %v: days overflow", field)
		}
		prev = day
	}
	return History{Field: field, packed: data[:pos], count: count, first: first, last: prev}, pos, nil
}

// AppendPackedDays appends the history's days in the packed wire encoding
// (first day signed varint, then unsigned varint gaps). The output is
// byte-identical whichever representation the history holds.
func (h History) AppendPackedDays(buf []byte) []byte {
	if h.packed != nil {
		return append(buf, h.packed...)
	}
	prev := timeline.Day(0)
	for i, day := range h.days {
		if i == 0 {
			buf = binary.AppendVarint(buf, int64(day))
		} else {
			buf = binary.AppendUvarint(buf, uint64(day-prev))
		}
		prev = day
	}
	return buf
}

// Packed returns the history in packed representation (a no-op when
// already packed). The day data is re-encoded into buf's free capacity;
// passing a shared buffer lets a whole HistorySet pack into one arena.
// The possibly-grown buffer is returned alongside.
func (h History) Packed(buf []byte) (History, []byte) {
	if h.packed != nil || len(h.days) == 0 {
		return h, buf
	}
	start := len(buf)
	buf = h.AppendPackedDays(buf)
	return History{
		Field:  h.Field,
		packed: buf[start:len(buf):len(buf)],
		count:  len(h.days),
		first:  h.days[0],
		last:   h.days[len(h.days)-1],
	}, buf
}

// IsPacked reports whether the history holds the packed representation.
func (h History) IsPacked() bool { return h.packed != nil }

// eachDay visits the days in increasing order; returning false stops.
func (h History) eachDay(fn func(timeline.Day) bool) {
	if h.packed == nil {
		for _, d := range h.days {
			if !fn(d) {
				return
			}
		}
		return
	}
	pos := 0
	v, n := binary.Varint(h.packed)
	pos += n
	day := timeline.Day(v)
	if !fn(day) {
		return
	}
	for i := 1; i < h.count; i++ {
		gap, n := binary.Uvarint(h.packed[pos:])
		pos += n
		day += timeline.Day(gap)
		if !fn(day) {
			return
		}
	}
}

// Days returns the change days as a slice. For a slice-form history this
// is the backing storage and must not be modified; for a packed history a
// fresh slice is decoded on every call.
func (h History) Days() []timeline.Day {
	if h.packed == nil {
		return h.days
	}
	out := make([]timeline.Day, 0, h.count)
	h.eachDay(func(d timeline.Day) bool {
		out = append(out, d)
		return true
	})
	return out
}

// Len returns the number of change days.
func (h History) Len() int {
	if h.packed == nil {
		return len(h.days)
	}
	return h.count
}

// First returns the earliest change day (ok is false for an empty history).
func (h History) First() (timeline.Day, bool) {
	if h.packed != nil {
		return h.first, true
	}
	if len(h.days) == 0 {
		return 0, false
	}
	return h.days[0], true
}

// Last returns the most recent change day (ok is false when empty).
func (h History) Last() (timeline.Day, bool) {
	if h.packed != nil {
		return h.last, true
	}
	if len(h.days) == 0 {
		return 0, false
	}
	return h.days[len(h.days)-1], true
}

// CountIn returns the number of change days inside the half-open span.
func (h History) CountIn(span timeline.Span) int {
	if h.packed == nil {
		lo := sort.Search(len(h.days), func(i int) bool { return h.days[i] >= span.Start })
		hi := sort.Search(len(h.days), func(i int) bool { return h.days[i] >= span.End })
		return hi - lo
	}
	if span.End <= h.first || span.Start > h.last {
		return 0
	}
	n := 0
	h.eachDay(func(d timeline.Day) bool {
		if d >= span.End {
			return false
		}
		if d >= span.Start {
			n++
		}
		return true
	})
	return n
}

// ChangedIn reports whether the field changed at least once inside span.
func (h History) ChangedIn(span timeline.Span) bool {
	if h.packed == nil {
		lo := sort.Search(len(h.days), func(i int) bool { return h.days[i] >= span.Start })
		return lo < len(h.days) && h.days[lo] < span.End
	}
	if span.End <= h.first || span.Start > h.last {
		return false
	}
	hit := false
	h.eachDay(func(d timeline.Day) bool {
		if d >= span.End {
			return false
		}
		if d >= span.Start {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// Before returns the change days strictly before day. For a slice-form
// history the result aliases the history's storage; for a packed one it is
// decoded fresh.
func (h History) Before(day timeline.Day) []timeline.Day {
	if h.packed == nil {
		hi := sort.Search(len(h.days), func(i int) bool { return h.days[i] >= day })
		return h.days[:hi]
	}
	var out []timeline.Day
	h.eachDay(func(d timeline.Day) bool {
		if d >= day {
			return false
		}
		out = append(out, d)
		return true
	})
	return out
}

// In returns the change days inside the half-open span. For a slice-form
// history the result aliases storage; for a packed one it is decoded fresh.
func (h History) In(span timeline.Span) []timeline.Day {
	if h.packed == nil {
		lo := sort.Search(len(h.days), func(i int) bool { return h.days[i] >= span.Start })
		hi := sort.Search(len(h.days), func(i int) bool { return h.days[i] >= span.End })
		return h.days[lo:hi]
	}
	if span.End <= h.first || span.Start > h.last {
		return nil
	}
	var out []timeline.Day
	h.eachDay(func(d timeline.Day) bool {
		if d >= span.End {
			return false
		}
		if d >= span.Start {
			out = append(out, d)
		}
		return true
	})
	return out
}

// LastBefore returns the most recent change day strictly before day.
func (h History) LastBefore(day timeline.Day) (timeline.Day, bool) {
	if h.packed == nil {
		hi := sort.Search(len(h.days), func(i int) bool { return h.days[i] >= day })
		if hi == 0 {
			return 0, false
		}
		return h.days[hi-1], true
	}
	if day <= h.first {
		return 0, false
	}
	if day > h.last {
		return h.last, true
	}
	var best timeline.Day
	h.eachDay(func(d timeline.Day) bool {
		if d >= day {
			return false
		}
		best = d
		return true
	})
	return best, true
}

// Validate checks that the day list is strictly increasing.
func (h History) Validate() error {
	prev := timeline.Day(0)
	idx := 0
	var err error
	h.eachDay(func(d timeline.Day) bool {
		if idx > 0 && d <= prev {
			err = fmt.Errorf("history %v: days not strictly increasing at %d (%v, %v)",
				h.Field, idx, prev, d)
			return false
		}
		prev = d
		idx++
		return true
	})
	return err
}

// HistorySet is the filtered dataset: one History per surviving field, plus
// the cube that supplies entity metadata (template, page). It is the input
// to training and evaluation.
type HistorySet struct {
	cube      *Cube
	histories []History
	index     map[FieldKey]int
}

// NewHistorySet builds a set over the given cube. Histories are sorted by
// field for determinism; each must be valid and non-empty, and fields must
// be unique.
func NewHistorySet(cube *Cube, histories []History) (*HistorySet, error) {
	hs := &HistorySet{
		cube:      cube,
		histories: histories,
		index:     make(map[FieldKey]int, len(histories)),
	}
	sort.Slice(hs.histories, func(i, j int) bool {
		a, b := hs.histories[i].Field, hs.histories[j].Field
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		return a.Property < b.Property
	})
	for i, h := range hs.histories {
		if h.Len() == 0 {
			return nil, fmt.Errorf("changecube: empty history for field %v", h.Field)
		}
		if err := h.Validate(); err != nil {
			return nil, err
		}
		if _, dup := hs.index[h.Field]; dup {
			return nil, fmt.Errorf("changecube: duplicate history for field %v", h.Field)
		}
		if int(h.Field.Entity) >= cube.NumEntities() || h.Field.Entity < 0 {
			return nil, fmt.Errorf("changecube: history references unknown entity %d", h.Field.Entity)
		}
		hs.index[h.Field] = i
	}
	return hs, nil
}

// Pack returns a new set holding every history in packed representation,
// with all day data re-encoded into one shared arena. The cube is shared.
func (hs *HistorySet) Pack() *HistorySet {
	out := &HistorySet{
		cube:      hs.cube,
		histories: make([]History, len(hs.histories)),
		index:     make(map[FieldKey]int, len(hs.index)),
	}
	var arena []byte
	for _, h := range hs.histories {
		arena = h.AppendPackedDays(arena)
	}
	// Encode twice: the first pass sizes the arena so the second never
	// reallocates (subslices must stay aliased into one block).
	buf := make([]byte, 0, len(arena))
	for i, h := range hs.histories {
		out.histories[i], buf = h.Packed(buf)
		out.index[h.Field] = i
	}
	return out
}

// Cube returns the underlying cube (entity metadata and dictionaries).
func (hs *HistorySet) Cube() *Cube { return hs.cube }

// Histories returns all histories in field order; the slice is backing
// storage and must not be modified.
func (hs *HistorySet) Histories() []History { return hs.histories }

// Len returns the number of fields.
func (hs *HistorySet) Len() int { return len(hs.histories) }

// Get returns the history for field and whether it exists.
func (hs *HistorySet) Get(field FieldKey) (History, bool) {
	i, ok := hs.index[field]
	if !ok {
		return History{}, false
	}
	return hs.histories[i], true
}

// TotalChanges returns the total number of day-level changes across fields.
func (hs *HistorySet) TotalChanges() int {
	n := 0
	for _, h := range hs.histories {
		n += h.Len()
	}
	return n
}

// Span returns the day span covering all change days.
func (hs *HistorySet) Span() timeline.Span {
	if len(hs.histories) == 0 {
		return timeline.Span{}
	}
	first, _ := hs.histories[0].First()
	last := first
	for _, h := range hs.histories {
		if f, ok := h.First(); ok && f < first {
			first = f
		}
		if l, ok := h.Last(); ok && l > last {
			last = l
		}
	}
	return timeline.Span{Start: first, End: last + 1}
}

// ByPage groups history indices by the page of their entity, in field
// order within each page.
func (hs *HistorySet) ByPage() map[PageID][]int {
	out := make(map[PageID][]int)
	for i, h := range hs.histories {
		p := hs.cube.Page(h.Field.Entity)
		out[p] = append(out[p], i)
	}
	return out
}

// ByEntity groups history indices by entity.
func (hs *HistorySet) ByEntity() map[EntityID][]int {
	out := make(map[EntityID][]int)
	for i, h := range hs.histories {
		out[h.Field.Entity] = append(out[h.Field.Entity], i)
	}
	return out
}

// MergeDays returns a new set with additional change days folded in.
// Existing fields get the union of their days; unknown fields are added
// (their entities must exist in the cube). The receiver is unmodified.
func (hs *HistorySet) MergeDays(updates map[FieldKey][]timeline.Day) (*HistorySet, error) {
	histories := make([]History, 0, len(hs.histories)+len(updates))
	for _, h := range hs.histories {
		if extra, ok := updates[h.Field]; ok {
			histories = append(histories, NewHistory(h.Field, mergeSortedDays(h.Days(), extra)))
			continue
		}
		histories = append(histories, h)
	}
	for field, days := range updates {
		if _, ok := hs.index[field]; ok {
			continue
		}
		if len(days) == 0 {
			continue
		}
		histories = append(histories, NewHistory(field, mergeSortedDays(nil, days)))
	}
	return NewHistorySet(hs.cube, histories)
}

// mergeSortedDays unions two day lists into a fresh strictly-increasing
// slice. a must already be sorted; b is sorted defensively.
func mergeSortedDays(a, b []timeline.Day) []timeline.Day {
	bs := append([]timeline.Day(nil), b...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	out := make([]timeline.Day, 0, len(a)+len(bs))
	i, j := 0, 0
	push := func(d timeline.Day) {
		if len(out) == 0 || out[len(out)-1] != d {
			out = append(out, d)
		}
	}
	for i < len(a) && j < len(bs) {
		if a[i] <= bs[j] {
			push(a[i])
			i++
		} else {
			push(bs[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(bs); j++ {
		push(bs[j])
	}
	return out
}

// Restrict returns a new set containing, for every field, only the change
// days inside span — keeping fields with at least minChanges such days.
// This implements the paper's per-split eligibility rule ("all fields that
// have at least five changes within their timeframe").
func (hs *HistorySet) Restrict(span timeline.Span, minChanges int) *HistorySet {
	var kept []History
	for _, h := range hs.histories {
		days := h.In(span)
		if len(days) >= minChanges && len(days) > 0 {
			kept = append(kept, NewHistory(h.Field, days))
		}
	}
	out, err := NewHistorySet(hs.cube, kept)
	if err != nil {
		// Restricting a valid set cannot produce an invalid one.
		panic(fmt.Sprintf("changecube: Restrict produced invalid set: %v", err))
	}
	return out
}
