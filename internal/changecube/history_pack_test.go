package changecube

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/timeline"
)

// randomDays draws a sorted, deduplicated day set with heavy-tailed gaps —
// the shape real change histories have.
func randomDays(rng *rand.Rand) []timeline.Day {
	n := 1 + rng.Intn(60)
	days := make([]timeline.Day, 0, n)
	d := timeline.Day(rng.Intn(1000))
	for i := 0; i < n; i++ {
		days = append(days, d)
		d += timeline.Day(1 + rng.Intn(400))
	}
	return days
}

// sameDays compares day slices by content; an empty result may be nil
// (packed form) or a zero-length alias of storage (slice form).
func sameDays(a, b []timeline.Day) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestPackedHistoryDifferential: every query on a packed history must
// answer exactly as its slice-backed twin, across random day sets and
// random query arguments. This is the contract that lets loaded epochs
// keep their histories varint-packed in RAM.
func TestPackedHistoryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var arena []byte
	for trial := 0; trial < 300; trial++ {
		days := randomDays(rng)
		field := FieldKey{Entity: EntityID(trial), Property: PropertyID(trial % 7)}
		slice := NewHistory(field, days)
		var packed History
		packed, arena = slice.Packed(arena)

		if !packed.IsPacked() || slice.IsPacked() {
			t.Fatalf("trial %d: representation flags wrong", trial)
		}
		if packed.Len() != slice.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, packed.Len(), slice.Len())
		}
		if !reflect.DeepEqual(packed.Days(), slice.Days()) {
			t.Fatalf("trial %d: Days diverge", trial)
		}
		pf, pok := packed.First()
		sf, sok := slice.First()
		if pf != sf || pok != sok {
			t.Fatalf("trial %d: First %v/%v vs %v/%v", trial, pf, pok, sf, sok)
		}
		pl, pok := packed.Last()
		sl, sok := slice.Last()
		if pl != sl || pok != sok {
			t.Fatalf("trial %d: Last %v/%v vs %v/%v", trial, pl, pok, sl, sok)
		}

		lo, hi := days[0]-40, days[len(days)-1]+40
		for q := 0; q < 40; q++ {
			start := lo + timeline.Day(rng.Intn(int(hi-lo)+1))
			end := start + timeline.Day(rng.Intn(500))
			span := timeline.Span{Start: start, End: end}
			if a, b := packed.CountIn(span), slice.CountIn(span); a != b {
				t.Fatalf("trial %d: CountIn(%v) %d vs %d", trial, span, a, b)
			}
			if a, b := packed.ChangedIn(span), slice.ChangedIn(span); a != b {
				t.Fatalf("trial %d: ChangedIn(%v) %v vs %v", trial, span, a, b)
			}
			if a, b := packed.In(span), slice.In(span); !sameDays(a, b) {
				t.Fatalf("trial %d: In(%v) %v vs %v", trial, span, a, b)
			}
			day := lo + timeline.Day(rng.Intn(int(hi-lo)+1))
			if a, b := packed.Before(day), slice.Before(day); !sameDays(a, b) {
				t.Fatalf("trial %d: Before(%v) %v vs %v", trial, day, a, b)
			}
			ad, aok := packed.LastBefore(day)
			bd, bok := slice.LastBefore(day)
			if ad != bd || aok != bok {
				t.Fatalf("trial %d: LastBefore(%v) %v/%v vs %v/%v", trial, day, ad, aok, bd, bok)
			}
		}

		// Both representations must serialize to the same wire bytes.
		fromSlice := slice.AppendPackedDays(nil)
		fromPacked := packed.AppendPackedDays(nil)
		if !bytes.Equal(fromSlice, fromPacked) {
			t.Fatalf("trial %d: AppendPackedDays diverges between representations", trial)
		}
		if err := packed.Validate(); err != nil {
			t.Fatalf("trial %d: packed history invalid: %v", trial, err)
		}
	}
}

// TestScanPackedDaysRoundTrip: scanning the bytes AppendPackedDays wrote
// reconstructs the same history and consumes exactly the written bytes.
func TestScanPackedDaysRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		days := randomDays(rng)
		field := FieldKey{Entity: 1, Property: 2}
		h := NewHistory(field, days)
		buf := h.AppendPackedDays(nil)
		// Trailing garbage must be left unconsumed, not absorbed.
		buf = append(buf, 0xFF, 0x01)
		got, consumed, err := ScanPackedDays(field, buf, len(days))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if consumed != len(buf)-2 {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, consumed, len(buf)-2)
		}
		if !reflect.DeepEqual(got.Days(), days) {
			t.Fatalf("trial %d: days differ after round trip", trial)
		}
	}
}

// TestHistorySetPackKeepsAnswers: packing a whole set preserves every
// history's content, and the packed set shares one arena.
func TestHistorySetPackKeepsAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cube := New()
	var histories []History
	for e := 0; e < 20; e++ {
		ent := cube.AddEntityNamed("t", string(rune('A'+e)))
		prop := PropertyID(cube.Properties.Intern("p"))
		histories = append(histories,
			NewHistory(FieldKey{Entity: ent, Property: prop}, randomDays(rng)))
	}
	hs, err := NewHistorySet(cube, histories)
	if err != nil {
		t.Fatal(err)
	}
	packed := hs.Pack()
	if packed.Len() != hs.Len() {
		t.Fatalf("Pack changed cardinality: %d vs %d", packed.Len(), hs.Len())
	}
	for i, h := range packed.Histories() {
		if !h.IsPacked() {
			t.Fatalf("history %d not packed", i)
		}
		if !reflect.DeepEqual(h.Days(), hs.Histories()[i].Days()) {
			t.Fatalf("history %d days differ after Pack", i)
		}
		if h.Field != hs.Histories()[i].Field {
			t.Fatalf("history %d field differs after Pack", i)
		}
	}
	if packed.Span() != hs.Span() {
		t.Fatalf("span %v vs %v", packed.Span(), hs.Span())
	}
}
