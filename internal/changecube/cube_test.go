package changecube

import (
	"testing"

	"github.com/wikistale/wikistale/internal/timeline"
)

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("population")
	b := d.Intern("area")
	a2 := d.Intern("population")
	if a != a2 {
		t.Fatalf("re-interning returned %d, want %d", a2, a)
	}
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "population" || d.Name(b) != "area" {
		t.Fatal("Name does not round-trip")
	}
	if id, ok := d.Lookup("area"); !ok || id != b {
		t.Fatal("Lookup failed for known name")
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup succeeded for unknown name")
	}
}

func TestDictNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name(99) did not panic")
		}
	}()
	NewDict().Name(99)
}

// buildTestCube returns a small cube with two pages, two templates, three
// entities and a handful of changes out of chronological order.
func buildTestCube() (*Cube, []EntityID) {
	c := New()
	e1 := c.AddEntityNamed("infobox settlement", "London")
	e2 := c.AddEntityNamed("infobox settlement", "Paris")
	e3 := c.AddEntityNamed("infobox boxer", "London") // second infobox on the London page
	pop := PropertyID(c.Properties.Intern("population"))
	wins := PropertyID(c.Properties.Intern("wins"))
	c.Add(Change{Time: 2000, Entity: e1, Property: pop, Value: "9m", Kind: Update})
	c.Add(Change{Time: 1000, Entity: e2, Property: pop, Value: "2m", Kind: Update})
	c.Add(Change{Time: 1500, Entity: e3, Property: wins, Value: "10", Kind: Update})
	c.Add(Change{Time: 1000, Entity: e1, Property: pop, Value: "8m", Kind: Create})
	return c, []EntityID{e1, e2, e3}
}

func TestCubeSortAndValidate(t *testing.T) {
	c, _ := buildTestCube()
	chs := c.Changes()
	for i := 1; i < len(chs); i++ {
		if Less(chs[i], chs[i-1]) {
			t.Fatalf("changes not in canonical order at %d", i)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCubeSortStableTieBreak(t *testing.T) {
	c, es := buildTestCube()
	chs := c.Changes()
	// Two changes share Time=1000: entity e1 (Create) and e2. Canonical
	// order puts the lower entity id first.
	if chs[0].Entity != es[0] || chs[0].Kind != Create {
		t.Fatalf("first change = %+v, want e1 create at t=1000", chs[0])
	}
	if chs[1].Entity != es[1] {
		t.Fatalf("second change entity = %d, want %d", chs[1].Entity, es[1])
	}
}

func TestCubeSpan(t *testing.T) {
	c, _ := buildTestCube()
	span := c.Span()
	if span.Start != 0 || span.End != 1 {
		t.Fatalf("span = %v, want [0,1) (all timestamps on epoch day)", span)
	}
	if (New()).Span() != (timeline.Span{}) {
		t.Fatal("empty cube span not empty")
	}
}

func TestCubeGroupings(t *testing.T) {
	c, es := buildTestCube()
	byPage := c.EntitiesByPage()
	london, _ := c.Pages.Lookup("London")
	if got := byPage[PageID(london)]; len(got) != 2 {
		t.Fatalf("London page has %d entities, want 2", len(got))
	}
	byTemplate := c.EntitiesByTemplate()
	settlement, _ := c.Templates.Lookup("infobox settlement")
	if got := byTemplate[TemplateID(settlement)]; len(got) != 2 || got[0] != es[0] || got[1] != es[1] {
		t.Fatalf("settlement template entities = %v", got)
	}
	fc := c.FieldChanges()
	pop, _ := c.Properties.Lookup("population")
	k := FieldKey{Entity: es[0], Property: PropertyID(pop)}
	if got := fc[k]; len(got) != 2 || got[0].Time != 1000 || got[1].Time != 2000 {
		t.Fatalf("field changes for e1.population = %+v", got)
	}
}

func TestCubeAddPanicsOnUnknownEntity(t *testing.T) {
	c := New()
	c.Properties.Intern("p")
	defer func() {
		if recover() == nil {
			t.Fatal("Add with unknown entity did not panic")
		}
	}()
	c.Add(Change{Entity: 5, Property: 0})
}

func TestCubeAddPanicsOnUnknownProperty(t *testing.T) {
	c := New()
	c.AddEntityNamed("t", "p")
	defer func() {
		if recover() == nil {
			t.Fatal("Add with unknown property did not panic")
		}
	}()
	c.Add(Change{Entity: 0, Property: 3})
}

func TestAddEntityPanicsOnUnknownTemplate(t *testing.T) {
	c := New()
	c.Pages.Intern("page")
	defer func() {
		if recover() == nil {
			t.Fatal("AddEntity with unknown template did not panic")
		}
	}()
	c.AddEntity(7, 0)
}

func TestChangeKindString(t *testing.T) {
	if Update.String() != "update" || Create.String() != "create" || Delete.String() != "delete" {
		t.Fatal("kind names wrong")
	}
	if ChangeKind(9).String() != "ChangeKind(9)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestChangeDay(t *testing.T) {
	ch := Change{Time: timeline.Date(2018, 9, 1).Unix() + 3600}
	if ch.Day() != timeline.Date(2018, 9, 1) {
		t.Fatalf("Day() = %v", ch.Day())
	}
}
