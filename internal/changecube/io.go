package changecube

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Binary format:
//
//	magic "WCC1"
//	3 dictionaries (properties, templates, pages), each:
//	    uvarint count, then per name: uvarint length + bytes
//	uvarint entity count, then per entity: uvarint template, uvarint page
//	uvarint change count, then per change:
//	    varint time delta (seconds, vs. previous change)
//	    uvarint entity, uvarint property, byte kind|botFlag,
//	    uvarint value length + bytes
//
// Delta-encoding the timestamps keeps sorted cubes compact.

const binaryMagic = "WCC1"

const botFlag = 0x80

// WriteBinary serializes the cube in its canonical change order.
func (c *Cube) WriteBinary(w io.Writer) error {
	c.Sort()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	for _, d := range []*Dict{c.Properties, c.Templates, c.Pages} {
		writeUvarint(bw, uint64(d.Len()))
		for _, name := range d.Names() {
			writeString(bw, name)
		}
	}
	writeUvarint(bw, uint64(len(c.entities)))
	for _, e := range c.entities {
		writeUvarint(bw, uint64(e.Template))
		writeUvarint(bw, uint64(e.Page))
	}
	writeUvarint(bw, uint64(c.NumChanges()))
	prev := int64(0)
	c.EachChange(func(_ int, ch Change) bool {
		writeVarint(bw, ch.Time-prev)
		prev = ch.Time
		writeUvarint(bw, uint64(ch.Entity))
		writeUvarint(bw, uint64(ch.Property))
		kind := byte(ch.Kind)
		if ch.Bot {
			kind |= botFlag
		}
		bw.WriteByte(kind)
		writeString(bw, ch.Value)
		return true
	})
	return bw.Flush()
}

// ReadBinary deserializes a cube written by WriteBinary.
func ReadBinary(r io.Reader) (*Cube, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("changecube: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("changecube: bad magic %q", magic)
	}
	c := New()
	for _, d := range []*Dict{c.Properties, c.Templates, c.Pages} {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("changecube: dictionary size: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			s, err := readString(br)
			if err != nil {
				return nil, fmt.Errorf("changecube: dictionary entry: %w", err)
			}
			d.Intern(s)
		}
	}
	nEnt, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("changecube: entity count: %w", err)
	}
	for i := uint64(0); i < nEnt; i++ {
		t, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if int(t) >= c.Templates.Len() || int(p) >= c.Pages.Len() {
			return nil, fmt.Errorf("changecube: entity %d references unknown template/page", i)
		}
		c.AddEntity(TemplateID(t), PageID(p))
	}
	nCh, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("changecube: change count: %w", err)
	}
	prev := int64(0)
	for i := uint64(0); i < nCh; i++ {
		dt, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("changecube: change %d time: %w", i, err)
		}
		prev += dt
		ent, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prop, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		val, err := readString(br)
		if err != nil {
			return nil, err
		}
		if int(ent) >= c.NumEntities() {
			return nil, fmt.Errorf("changecube: change %d references unknown entity %d", i, ent)
		}
		if int(prop) >= c.Properties.Len() {
			return nil, fmt.Errorf("changecube: change %d references unknown property %d", i, prop)
		}
		if kind&^botFlag > byte(Delete) {
			return nil, fmt.Errorf("changecube: change %d has invalid kind %d", i, kind&^botFlag)
		}
		c.Add(Change{
			Time:     prev,
			Entity:   EntityID(ent),
			Property: PropertyID(prop),
			Value:    val,
			Kind:     ChangeKind(kind &^ botFlag),
			Bot:      kind&botFlag != 0,
		})
	}
	return c, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("changecube: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// JSONChange is the JSON-lines interchange record for one change, with the
// string dimensions resolved.
type JSONChange struct {
	Time     int64  `json:"time"`
	Page     string `json:"page"`
	Template string `json:"template"`
	Entity   int32  `json:"entity"`
	Property string `json:"property"`
	Value    string `json:"value,omitempty"`
	Kind     string `json:"kind"`
	Bot      bool   `json:"bot,omitempty"`
}

// WriteJSONL writes the cube as one JSON object per change, resolving the
// interned dimensions to strings.
func (c *Cube) WriteJSONL(w io.Writer) error {
	c.Sort()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var encErr error
	c.EachChange(func(_ int, ch Change) bool {
		info := c.entities[ch.Entity]
		rec := JSONChange{
			Time:     ch.Time,
			Page:     c.Pages.Name(int32(info.Page)),
			Template: c.Templates.Name(int32(info.Template)),
			Entity:   int32(ch.Entity),
			Property: c.Properties.Name(int32(ch.Property)),
			Value:    ch.Value,
			Kind:     ch.Kind.String(),
			Bot:      ch.Bot,
		}
		if err := enc.Encode(rec); err != nil {
			encErr = err
			return false
		}
		return true
	})
	if encErr != nil {
		return encErr
	}
	return bw.Flush()
}
