// Package changecube implements the change-cube data model of Bleifuß et
// al. (PVLDB 2018) as used by the stale-data detection paper: every change
// to a Wikipedia infobox is a tuple of time, entity (infobox), property and
// newly assigned value. Entities carry two pieces of schema metadata — the
// infobox template they instantiate and the page they appear on — which the
// two predictors use to scope their search for related fields.
package changecube

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/timeline"
)

// EntityID identifies an infobox. Each entity belongs to exactly one
// template and one page.
type EntityID int32

// PropertyID identifies an interned property (attribute) name.
type PropertyID int32

// TemplateID identifies an interned infobox template name.
type TemplateID int32

// PageID identifies an interned page title.
type PageID int32

// ChangeKind distinguishes the three change classes of the paper's §4:
// value updates, property/infobox creations and deletions. Only updates
// survive the filter pipeline.
type ChangeKind uint8

const (
	// Update assigns a new value to an existing property.
	Update ChangeKind = iota
	// Create adds a property (or a whole infobox, one Create per property).
	Create
	// Delete removes a property (or a whole infobox).
	Delete
)

// String returns the lower-case kind name.
func (k ChangeKind) String() string {
	switch k {
	case Update:
		return "update"
	case Create:
		return "create"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("ChangeKind(%d)", uint8(k))
	}
}

// MarshalText renders the kind as its lower-case name, making ChangeKind
// usable directly in JSON event feeds (see internal/ingest).
func (k ChangeKind) MarshalText() ([]byte, error) {
	if k > Delete {
		return nil, fmt.Errorf("changecube: invalid change kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText parses a lower-case kind name.
func (k *ChangeKind) UnmarshalText(text []byte) error {
	parsed, err := ParseChangeKind(string(text))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseChangeKind maps a lower-case kind name back to its ChangeKind.
func ParseChangeKind(s string) (ChangeKind, error) {
	switch s {
	case "update":
		return Update, nil
	case "create":
		return Create, nil
	case "delete":
		return Delete, nil
	default:
		return 0, fmt.Errorf("changecube: unknown change kind %q", s)
	}
}

// Change is one tuple of the change cube.
type Change struct {
	// Time is the Unix timestamp (seconds, UTC) of the revision that
	// introduced the change.
	Time int64
	// Entity is the infobox the change belongs to.
	Entity EntityID
	// Property is the changed attribute.
	Property PropertyID
	// Value is the newly assigned value (empty for Delete).
	Value string
	// Kind classifies the change.
	Kind ChangeKind
	// Bot marks changes performed by known Wikipedia bots; the filter
	// pipeline uses it to drop bot-reverted edit pairs.
	Bot bool
}

// Day returns the calendar day of the change.
func (c Change) Day() timeline.Day { return timeline.DayOfUnix(c.Time) }

// FieldKey identifies a field: the combination of entity and property, the
// unit at which staleness predictions are made.
type FieldKey struct {
	Entity   EntityID
	Property PropertyID
}

// EntityInfo is the per-entity schema metadata of the cube.
type EntityInfo struct {
	Template TemplateID
	Page     PageID
}

// Cube is an in-memory change cube: dictionaries for the three string
// dimensions, per-entity metadata, and the change list itself. Changes are
// held in packed column storage (see log.go); Changes materializes the
// classic []Change view on demand, while ChangeAt/EachChange read the
// packed form directly.
type Cube struct {
	Properties *Dict
	Templates  *Dict
	Pages      *Dict

	entities []EntityInfo
	log      changeLog
	sorted   bool
	last     Change // newest appended change, for sortedness tracking
}

// New returns an empty cube.
func New() *Cube {
	return &Cube{
		Properties: NewDict(),
		Templates:  NewDict(),
		Pages:      NewDict(),
		log:        newChangeLog(),
		sorted:     true,
	}
}

// AddEntity registers a new infobox on the given page instantiating the
// given template and returns its id.
func (c *Cube) AddEntity(template TemplateID, page PageID) EntityID {
	if int(template) >= c.Templates.Len() || template < 0 {
		panic(fmt.Sprintf("changecube: unknown template %d", template))
	}
	if int(page) >= c.Pages.Len() || page < 0 {
		panic(fmt.Sprintf("changecube: unknown page %d", page))
	}
	id := EntityID(len(c.entities))
	c.entities = append(c.entities, EntityInfo{Template: template, Page: page})
	return id
}

// AddEntityNamed is AddEntity with string template and page names, interning
// them as needed.
func (c *Cube) AddEntityNamed(template, page string) EntityID {
	t := TemplateID(c.Templates.Intern(template))
	p := PageID(c.Pages.Intern(page))
	return c.AddEntity(t, p)
}

// NumEntities returns the number of registered infoboxes.
func (c *Cube) NumEntities() int { return len(c.entities) }

// Entity returns the metadata of entity e.
func (c *Cube) Entity(e EntityID) EntityInfo {
	return c.entities[e]
}

// Template returns the template of entity e.
func (c *Cube) Template(e EntityID) TemplateID { return c.entities[e].Template }

// Page returns the page of entity e.
func (c *Cube) Page(e EntityID) PageID { return c.entities[e].Page }

// Add appends a change. Changes may be added in any order; Sort (or any
// accessor that needs order) arranges them chronologically. The change's
// index in append order is NumChanges() before the call — stable for as
// long as the cube is not sorted, which is what the live-ingestion staging
// buffer keys its per-field indexes on.
func (c *Cube) Add(ch Change) {
	if int(ch.Entity) >= len(c.entities) || ch.Entity < 0 {
		panic(fmt.Sprintf("changecube: change references unknown entity %d", ch.Entity))
	}
	if int(ch.Property) >= c.Properties.Len() || ch.Property < 0 {
		panic(fmt.Sprintf("changecube: change references unknown property %d", ch.Property))
	}
	if c.log.len() > 0 && c.sorted {
		prev := c.last
		if ch.Time < prev.Time || (ch.Time == prev.Time && !lessAt(prev, ch) && prev != ch) {
			c.sorted = false
		}
	}
	idx := c.log.add(ch)
	// Re-read the value through the arena so the retained copy does not pin
	// the caller's (possibly much larger) backing allocation.
	c.last = c.log.at(idx)
}

// lessAt is the tie-break order for changes with equal timestamps: by
// entity, then property, so that per-field subsequences are contiguous
// within a timestamp.
func lessAt(a, b Change) bool {
	if a.Entity != b.Entity {
		return a.Entity < b.Entity
	}
	return a.Property < b.Property
}

// Less is the canonical change order: by time, then entity, then property.
func Less(a, b Change) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return lessAt(a, b)
}

// Sort arranges the changes in canonical order. It is a no-op when the cube
// is already sorted. Sorting rebuilds the packed storage, so any append-
// order indexes captured before the call are invalidated.
func (c *Cube) Sort() {
	if c.sorted {
		return
	}
	changes := c.materialize()
	sort.SliceStable(changes, func(i, j int) bool { return Less(changes[i], changes[j]) })
	c.log.replace(changes)
	c.sorted = true
	if n := c.log.len(); n > 0 {
		c.last = c.log.at(n - 1)
	}
}

// materialize copies the packed log into a fresh []Change. Value strings
// alias the arena (zero-copy).
func (c *Cube) materialize() []Change {
	out := make([]Change, c.log.len())
	for i := range out {
		out[i] = c.log.at(i)
	}
	return out
}

// Changes returns the change list in canonical order. The slice is
// materialized fresh from the packed storage on every call — prefer
// EachChange or ChangeAt on large cubes.
func (c *Cube) Changes() []Change {
	c.Sort()
	return c.materialize()
}

// ChangeAt returns the change at index i in the cube's current storage
// order (append order until Sort, canonical order after). The value string
// aliases the cube's arena.
func (c *Cube) ChangeAt(i int) Change { return c.log.at(i) }

// TimeAt returns the timestamp of the change at index i without
// materializing it.
func (c *Cube) TimeAt(i int) int64 { return c.log.timeAt(i) }

// EachChange visits every change in the cube's current storage order
// without materializing the list; returning false from fn stops the
// iteration. Call Sort first when canonical order is required.
func (c *Cube) EachChange(fn func(i int, ch Change) bool) {
	c.log.each(0, c.log.len(), fn)
}

// EachChangeIn visits changes with index in [lo, hi).
func (c *Cube) EachChangeIn(lo, hi int, fn func(i int, ch Change) bool) {
	c.log.each(lo, hi, fn)
}

// NumChanges returns the number of changes.
func (c *Cube) NumChanges() int { return c.log.len() }

// Span returns the half-open day span covering all changes. An empty cube
// yields an empty span at day 0. Span never sorts: it scans the packed
// time column, so it is safe on a live staging cube whose append-order
// indexes must stay stable.
func (c *Cube) Span() timeline.Span {
	if c.log.len() == 0 {
		return timeline.Span{}
	}
	minT, maxT := c.log.timeAt(0), c.log.timeAt(0)
	for _, chunk := range c.log.chunks {
		for _, t := range chunk.times {
			if t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
		}
	}
	return timeline.Span{Start: timeline.DayOfUnix(minT), End: timeline.DayOfUnix(maxT) + 1}
}

// FieldChanges groups the changes by field, preserving chronological order
// within each group. The per-field slices are materialized fresh (values
// alias the cube's arena).
func (c *Cube) FieldChanges() map[FieldKey][]Change {
	c.Sort()
	out := make(map[FieldKey][]Change)
	c.EachChange(func(_ int, ch Change) bool {
		k := FieldKey{Entity: ch.Entity, Property: ch.Property}
		out[k] = append(out[k], ch)
		return true
	})
	return out
}

// EntitiesByPage groups entity ids by the page they appear on.
func (c *Cube) EntitiesByPage() map[PageID][]EntityID {
	out := make(map[PageID][]EntityID)
	for i, info := range c.entities {
		out[info.Page] = append(out[info.Page], EntityID(i))
	}
	return out
}

// EntitiesByTemplate groups entity ids by their template.
func (c *Cube) EntitiesByTemplate() map[TemplateID][]EntityID {
	out := make(map[TemplateID][]EntityID)
	for i, info := range c.entities {
		out[info.Template] = append(out[info.Template], EntityID(i))
	}
	return out
}

// Clone returns a deep logical copy of the cube: dictionaries and entity
// metadata are freshly allocated, and the change log is copied
// copy-on-write — sealed storage chunks are immutable and shared, only the
// open tail is duplicated. The copy can be read (and even mutated)
// independently of the original. Live ingestion uses this to hand a frozen
// snapshot to a background retrain while appends continue on the original;
// the chunk sharing is what keeps that snapshot O(1) in corpus size.
func (c *Cube) Clone() *Cube {
	return &Cube{
		Properties: c.Properties.Clone(),
		Templates:  c.Templates.Clone(),
		Pages:      c.Pages.Clone(),
		entities:   append([]EntityInfo(nil), c.entities...),
		log:        c.log.clone(),
		sorted:     c.sorted,
		last:       c.last,
	}
}

// Validate checks internal consistency: all referenced entities and
// properties exist and, if the cube claims to be sorted, the change order is
// canonical. It returns the first violation found.
func (c *Cube) Validate() error {
	var err error
	prev := Change{}
	c.EachChange(func(i int, ch Change) bool {
		if int(ch.Entity) >= len(c.entities) || ch.Entity < 0 {
			err = fmt.Errorf("change %d: unknown entity %d", i, ch.Entity)
			return false
		}
		if int(ch.Property) >= c.Properties.Len() || ch.Property < 0 {
			err = fmt.Errorf("change %d: unknown property %d", i, ch.Property)
			return false
		}
		if ch.Kind > Delete {
			err = fmt.Errorf("change %d: invalid kind %d", i, ch.Kind)
			return false
		}
		if c.sorted && i > 0 && Less(ch, prev) {
			err = fmt.Errorf("changes %d and %d out of canonical order", i-1, i)
			return false
		}
		prev = ch
		return true
	})
	if err != nil {
		return err
	}
	for i, info := range c.entities {
		if int(info.Template) >= c.Templates.Len() || info.Template < 0 {
			return fmt.Errorf("entity %d: unknown template %d", i, info.Template)
		}
		if int(info.Page) >= c.Pages.Len() || info.Page < 0 {
			return fmt.Errorf("entity %d: unknown page %d", i, info.Page)
		}
	}
	return nil
}
