package changecube

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestBinaryRoundTripSmall(t *testing.T) {
	c, _ := buildTestCube()
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertCubesEqual(t, c, got)
}

func assertCubesEqual(t *testing.T, want, got *Cube) {
	t.Helper()
	if !reflect.DeepEqual(want.Properties.Names(), got.Properties.Names()) {
		t.Fatal("property dictionaries differ")
	}
	if !reflect.DeepEqual(want.Templates.Names(), got.Templates.Names()) {
		t.Fatal("template dictionaries differ")
	}
	if !reflect.DeepEqual(want.Pages.Names(), got.Pages.Names()) {
		t.Fatal("page dictionaries differ")
	}
	if want.NumEntities() != got.NumEntities() {
		t.Fatalf("entity counts differ: %d vs %d", want.NumEntities(), got.NumEntities())
	}
	for i := 0; i < want.NumEntities(); i++ {
		if want.Entity(EntityID(i)) != got.Entity(EntityID(i)) {
			t.Fatalf("entity %d differs", i)
		}
	}
	if !reflect.DeepEqual(want.Changes(), got.Changes()) {
		t.Fatal("change lists differ")
	}
}

func randomCube(rng *rand.Rand, nEntities, nProps, nChanges int) *Cube {
	c := New()
	for i := 0; i < nProps; i++ {
		// Suffix with the index: random words may collide, and Intern
		// deduplicates, which would leave fewer ids than requested.
		c.Properties.Intern(fmt.Sprintf("%s#%d", randWord(rng), i))
	}
	for i := 0; i < nEntities; i++ {
		c.AddEntityNamed(randWord(rng), randWord(rng))
	}
	for i := 0; i < nChanges; i++ {
		c.Add(Change{
			Time:     rng.Int63n(1 << 33),
			Entity:   EntityID(rng.Intn(nEntities)),
			Property: PropertyID(rng.Intn(nProps)),
			Value:    randWord(rng),
			Kind:     ChangeKind(rng.Intn(3)),
			Bot:      rng.Intn(10) == 0,
		})
	}
	return c
}

func randWord(rng *rand.Rand) string {
	const alphabet = "abcdefghijklmnop_0123 |é"
	n := rng.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// TestBinaryRoundTripRandom serializes and re-reads many random cubes.
func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		c := randomCube(rng, 1+rng.Intn(20), 1+rng.Intn(10), rng.Intn(400))
		var buf bytes.Buffer
		if err := c.WriteBinary(&buf); err != nil {
			t.Fatalf("iter %d: WriteBinary: %v", iter, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("iter %d: ReadBinary: %v", iter, err)
		}
		assertCubesEqual(t, c, got)
		if err := got.Validate(); err != nil {
			t.Fatalf("iter %d: deserialized cube invalid: %v", iter, err)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOPE????"),
		"truncated": []byte("WCC1\x05"),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadBinary accepted garbage", name)
		}
	}
}

func TestReadBinaryRejectsTruncatedValid(t *testing.T) {
	c, _ := buildTestCube()
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop the stream at several points; every prefix must error, not panic.
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("prefix of %d bytes accepted", cut)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	c, _ := buildTestCube()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != c.NumChanges() {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), c.NumChanges())
	}
	if !strings.Contains(lines[0], `"kind":"create"`) {
		t.Errorf("first line should be the create change: %s", lines[0])
	}
	if !strings.Contains(lines[0], `"page":"London"`) {
		t.Errorf("page name not resolved: %s", lines[0])
	}
}
