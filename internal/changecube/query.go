package changecube

import (
	"sort"

	"github.com/wikistale/wikistale/internal/timeline"
)

// Query is a fluent filter over the cube's changes — the slice/dice
// operations of the change-cube model (Bleifuß et al., PVLDB 2018): any
// combination of time span, template, page, entity, property and change
// kind. Building a query allocates only filter sets; evaluation walks the
// canonical change order once, binary-searching the time bounds.
//
// Filters of the same dimension OR together; different dimensions AND.
// Filtering by a name the cube has never seen matches nothing.
type Query struct {
	cube *Cube

	span       *timeline.Span
	entities   map[EntityID]bool
	templates  map[TemplateID]bool
	pages      map[PageID]bool
	properties map[PropertyID]bool
	kinds      map[ChangeKind]bool
	impossible bool // a name filter referenced an unknown name
}

// Query starts a new query over all changes.
func (c *Cube) Query() *Query { return &Query{cube: c} }

// Span restricts to changes whose day lies inside the half-open span.
func (q *Query) Span(s timeline.Span) *Query {
	q.span = &s
	return q
}

// Entity restricts to the given entities.
func (q *Query) Entity(ids ...EntityID) *Query {
	if q.entities == nil {
		q.entities = make(map[EntityID]bool, len(ids))
	}
	for _, id := range ids {
		q.entities[id] = true
	}
	return q
}

// Template restricts to entities of the named templates.
func (q *Query) Template(names ...string) *Query {
	if q.templates == nil {
		q.templates = make(map[TemplateID]bool, len(names))
	}
	for _, name := range names {
		id, ok := q.cube.Templates.Lookup(name)
		if !ok {
			q.impossible = true
			continue
		}
		q.templates[TemplateID(id)] = true
	}
	return q
}

// Page restricts to entities on the named pages.
func (q *Query) Page(names ...string) *Query {
	if q.pages == nil {
		q.pages = make(map[PageID]bool, len(names))
	}
	for _, name := range names {
		id, ok := q.cube.Pages.Lookup(name)
		if !ok {
			q.impossible = true
			continue
		}
		q.pages[PageID(id)] = true
	}
	return q
}

// Property restricts to the named properties.
func (q *Query) Property(names ...string) *Query {
	if q.properties == nil {
		q.properties = make(map[PropertyID]bool, len(names))
	}
	for _, name := range names {
		id, ok := q.cube.Properties.Lookup(name)
		if !ok {
			q.impossible = true
			continue
		}
		q.properties[PropertyID(id)] = true
	}
	return q
}

// Kind restricts to the given change kinds.
func (q *Query) Kind(kinds ...ChangeKind) *Query {
	if q.kinds == nil {
		q.kinds = make(map[ChangeKind]bool, len(kinds))
	}
	for _, k := range kinds {
		q.kinds[k] = true
	}
	return q
}

// matches applies every non-time filter.
func (q *Query) matches(ch Change) bool {
	if q.entities != nil && !q.entities[ch.Entity] {
		return false
	}
	info := q.cube.entities[ch.Entity]
	if q.templates != nil && !q.templates[info.Template] {
		return false
	}
	if q.pages != nil && !q.pages[info.Page] {
		return false
	}
	if q.properties != nil && !q.properties[ch.Property] {
		return false
	}
	if q.kinds != nil && !q.kinds[ch.Kind] {
		return false
	}
	return true
}

// emptyFilter reports whether a name dimension filtered everything away
// (every supplied name was unknown, leaving an empty set).
func (q *Query) emptyFilter() bool {
	empty := func(n int, set bool) bool { return set && n == 0 }
	return empty(len(q.entities), q.entities != nil) ||
		empty(len(q.templates), q.templates != nil) ||
		empty(len(q.pages), q.pages != nil) ||
		empty(len(q.properties), q.properties != nil) ||
		empty(len(q.kinds), q.kinds != nil)
}

// timeBounds returns the index range of the sorted change log covered by
// the span filter.
func (q *Query) timeBounds() (int, int) {
	n := q.cube.NumChanges()
	if q.span == nil {
		return 0, n
	}
	lo := sort.Search(n, func(i int) bool {
		return q.cube.TimeAt(i) >= q.span.Start.Unix()
	})
	hi := sort.Search(n, func(i int) bool {
		return q.cube.TimeAt(i) >= q.span.End.Unix()
	})
	return lo, hi
}

// Each visits the matching changes in canonical order; returning false
// from fn stops the iteration.
func (q *Query) Each(fn func(Change) bool) {
	if q.emptyFilter() {
		return
	}
	q.cube.Sort()
	lo, hi := q.timeBounds()
	q.cube.EachChangeIn(lo, hi, func(_ int, ch Change) bool {
		if !q.matches(ch) {
			return true
		}
		return fn(ch)
	})
}

// Count returns the number of matching changes.
func (q *Query) Count() int {
	n := 0
	q.Each(func(Change) bool { n++; return true })
	return n
}

// Changes materializes the matching changes.
func (q *Query) Changes() []Change {
	var out []Change
	q.Each(func(ch Change) bool { out = append(out, ch); return true })
	return out
}

// Values returns the matching changes' values in canonical order.
func (q *Query) Values() []string {
	var out []string
	q.Each(func(ch Change) bool { out = append(out, ch.Value); return true })
	return out
}

// Fields returns the distinct fields among the matching changes, in field
// order.
func (q *Query) Fields() []FieldKey {
	seen := make(map[FieldKey]bool)
	q.Each(func(ch Change) bool {
		seen[FieldKey{Entity: ch.Entity, Property: ch.Property}] = true
		return true
	})
	out := make([]FieldKey, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Property < out[j].Property
	})
	return out
}

// CountByKind tallies the matching changes per kind.
func (q *Query) CountByKind() map[ChangeKind]int {
	out := make(map[ChangeKind]int)
	q.Each(func(ch Change) bool { out[ch.Kind]++; return true })
	return out
}

// CountByTemplate tallies the matching changes per template.
func (q *Query) CountByTemplate() map[TemplateID]int {
	out := make(map[TemplateID]int)
	q.Each(func(ch Change) bool {
		out[q.cube.entities[ch.Entity].Template]++
		return true
	})
	return out
}
