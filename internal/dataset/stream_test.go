package dataset

import (
	"bytes"
	"errors"
	"testing"

	"github.com/wikistale/wikistale/internal/cubestore"
)

// TestStreamMatchesGenerate: the streamed corpus, fed through the same
// arrival-order sink Generate uses, must be bit-identical to the batch
// corpus — same events, same interned IDs, same encoded bytes. This is
// the contract that lets a paper-scale feed skip materializing the cube.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := Small()
	batchCube, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sink := newCubeSink()
	batches, events, maxBatch := 0, 0, 0
	err = Stream(cfg, func(evs []Event) error {
		batches++
		events += len(evs)
		if len(evs) > maxBatch {
			maxBatch = len(evs)
		}
		return sink.add(evs)
	})
	if err != nil {
		t.Fatal(err)
	}

	if events != batchCube.NumChanges() {
		t.Fatalf("streamed %d events, batch generated %d changes", events, batchCube.NumChanges())
	}
	if batches < 100 {
		t.Fatalf("only %d batches — streaming should deliver one entity at a time", batches)
	}
	if maxBatch >= events/4 {
		t.Fatalf("largest batch holds %d of %d events; batches must stay entity-sized", maxBatch, events)
	}

	want := cubestore.EncodeCubeChanges(batchCube)
	got := cubestore.EncodeCubeChanges(sink.cube)
	if !bytes.Equal(want, got) {
		t.Fatalf("streamed corpus differs from batch corpus: %d vs %d encoded bytes", len(got), len(want))
	}
	if sink.cube.NumEntities() != batchCube.NumEntities() {
		t.Fatalf("entities: %d streamed vs %d batch", sink.cube.NumEntities(), batchCube.NumEntities())
	}
}

// TestStreamFlushErrorAborts: a consumer error stops generation promptly
// and surfaces as Stream's return value.
func TestStreamFlushErrorAborts(t *testing.T) {
	sentinel := errors.New("sink full")
	calls := 0
	err := Stream(Small(), func([]Event) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	if calls != 3 {
		t.Fatalf("flush called %d times after the error, want exactly 3", calls)
	}
}

// TestStreamRejectsBadConfig mirrors Generate's validation.
func TestStreamRejectsBadConfig(t *testing.T) {
	cfg := Small()
	cfg.NumTemplates = 0
	if err := Stream(cfg, func([]Event) error { return nil }); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestScaled: the scale knob multiplies template count and nothing else.
func TestScaled(t *testing.T) {
	base := Default()
	scaled := base.Scaled(8)
	if scaled.NumTemplates != 8*base.NumTemplates {
		t.Fatalf("NumTemplates = %d, want %d", scaled.NumTemplates, 8*base.NumTemplates)
	}
	scaled.NumTemplates = base.NumTemplates
	if scaled != base {
		t.Fatal("Scaled changed more than the template count")
	}
	if got := base.Scaled(0); got != base {
		t.Fatal("Scaled(0) must be a no-op")
	}
	if got := base.Scaled(1); got != base {
		t.Fatal("Scaled(1) must be a no-op")
	}
}

// TestScaledGrowsLinearly: generation at scale k must produce roughly k
// times the changes — templates are independent, so growth is horizontal.
func TestScaledGrowsLinearly(t *testing.T) {
	count := func(cfg Config) int {
		n := 0
		if err := Stream(cfg, func(evs []Event) error { n += len(evs); return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	base := count(Small())
	scaled := count(Small().Scaled(2))
	if scaled < base+base/2 {
		t.Fatalf("scale 2 yields %d changes vs %d at scale 1 — not growing", scaled, base)
	}
}
