package dataset

import (
	"math/rand"

	"github.com/wikistale/wikistale/internal/changecube"
)

// Event is one infobox change identified by names rather than cube IDs —
// the unit the streaming generator emits. It deliberately mirrors the
// live-ingestion event shape (page + template + infobox ordinal identify
// the entity), so a streamed corpus can feed an ingest pipeline without a
// cube ever being materialized on the producer side.
type Event struct {
	Time     int64 // unix seconds
	Page     string
	Template string
	Infobox  int // ordinal of the infobox on the page, 0 for the first
	Property string
	Value    string
	Kind     changecube.ChangeKind
	Bot      bool
}

// Stream generates the corpus one entity at a time, handing each entity's
// events to flush as a batch. Nothing is retained between batches: memory
// stays bounded by the largest single entity no matter how large the
// configured corpus is, which is what makes paper-scale corpora feasible.
//
// The batch slice is reused between calls — flush must copy anything it
// keeps. A non-nil error from flush aborts generation and is returned.
//
// Every entity is generated from its own deterministically derived RNG (see
// rngAt), so the stream is bit-identical to the corpus Generate builds: the
// same events in the same order, independent of how they are consumed.
func Stream(cfg Config, flush func([]Event) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	g := &generator{cfg: cfg, schemas: buildSchemas(cfg), flush: flush}
	return g.run()
}

// emit buffers one event on the current entity's batch.
func (g *generator) emit(ev Event) {
	g.batch = append(g.batch, ev)
}

// flushBatch hands the buffered entity to the consumer. After a consumer
// error, generation short-circuits: later batches are dropped and run()
// returns the first error.
func (g *generator) flushBatch() {
	if len(g.batch) == 0 {
		return
	}
	if g.err == nil {
		if err := g.flush(g.batch); err != nil {
			g.err = err
		}
	}
	g.batch = g.batch[:0]
}

// rngAt derives the independent RNG for one generation scope — an entity
// ('E'), a stub ('S'), a per-template entity count ('N'), or the case study
// ('C') — by hashing the scope coordinates into the seed, splitmix64-style.
// Each scope's randomness is self-contained: an entity's events do not
// depend on how many draws its neighbours consumed, so entities can be
// generated in isolation, skipped past, or regenerated individually and the
// output stays bit-identical.
func (g *generator) rngAt(kind byte, t, e, s int) *rand.Rand {
	h := uint64(g.cfg.Seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [4]uint64{uint64(kind), uint64(t), uint64(e), uint64(s)} {
		h = mix64(h ^ v)
	}
	return rand.New(rand.NewSource(int64(h)))
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler with full
// avalanche, exactly what seed derivation needs.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
