// Package dataset generates synthetic Wikipedia infobox change histories
// with the statistical structure the paper's predictors key on. The real
// corpus (283 M changes over 15 years of English Wikipedia) is not
// redistributable; per DESIGN.md §4 this generator is the substitution. It
// reproduces the change archetypes the paper describes:
//
//   - per-page correlated field clusters (uniform home/away colors) that
//     co-change on the same day, with a configurable "forgotten update"
//     rate — the staleness the system is built to catch;
//   - template-level asymmetric implication pairs (matches ⇒ total_goals)
//     holding for every entity of a template;
//   - seasonal, regular-interval, sparse-irregular, daily-counter and
//     near-static properties;
//   - noise processes: intra-day edit bursts with typo values, vandalism
//     with prompt bot reverts, infobox creations and deletions, and field
//     dormancy (pages falling out of maintenance).
//
// Generation is fully deterministic for a given Config.
package dataset

import (
	"fmt"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Config controls corpus scale and behaviour rates.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Span is the corpus day span; Default uses the paper's January 4,
	// 2003 through September 2, 2019.
	Span timeline.Span

	// NumTemplates is the number of infobox templates.
	NumTemplates int
	// MeanEntitiesPerTemplate sets the geometric mean of the per-template
	// entity counts; the first template is boosted to BigTemplateEntities
	// to reproduce the skew of Figure 3.
	MeanEntitiesPerTemplate int
	// BigTemplateEntities is the entity count of the one oversized
	// template (the paper's "infobox legislative election" analogue).
	BigTemplateEntities int
	// StubsPerEntity adds this many stub infoboxes (static parameters
	// only, created and forgotten) per behaviourful entity. Stubs carry
	// the bulk of the creation/deletion volume, as on real Wikipedia
	// where creations are 50.6 % of all changes.
	StubsPerEntity int

	// ClusterMissRate is the probability that a cluster member misses a
	// co-change event — a forgotten update, the paper's staleness case.
	ClusterMissRate float64
	// ImplicationMissRate is the same for implication consequents.
	ImplicationMissRate float64
	// DelayedResponseRate is the probability that a consequent update
	// lands 1–3 days after its antecedent instead of the same day.
	DelayedResponseRate float64

	// BurstRate is the probability that an update is accompanied by
	// same-day churn (typo fixed, edit war) collapsed by day-dedup.
	BurstRate float64
	// VandalismRate is the per-update probability of a following
	// vandalism edit that a bot reverts promptly.
	VandalismRate float64
	// AnnualDeathRate is the per-year probability that an entity goes
	// dormant (its page falls out of maintenance).
	AnnualDeathRate float64
	// DeleteOnDeathRate is the probability that a dormant entity's infobox
	// is actually deleted (emitting Delete changes) rather than just
	// left stale.
	DeleteOnDeathRate float64
	// LatePropertyRate is the probability that a property is added some
	// time after its infobox is created rather than at creation.
	LatePropertyRate float64
	// PropertyChurnRate is the per-property probability of one mid-life
	// delete+recreate cycle (schema churn driving extra create/delete
	// volume).
	PropertyChurnRate float64
}

// Default returns a corpus configuration sized to run the paper's full
// experiment suite in seconds while reproducing its qualitative shape.
func Default() Config {
	return Config{
		Seed:                    1,
		Span:                    timeline.NewSpan(timeline.Date(2003, 1, 4), timeline.Date(2019, 9, 2)),
		NumTemplates:            80,
		MeanEntitiesPerTemplate: 24,
		BigTemplateEntities:     30,
		StubsPerEntity:          10,
		ClusterMissRate:         0.08,
		ImplicationMissRate:     0.035,
		DelayedResponseRate:     0.05,
		BurstRate:               0.12,
		VandalismRate:           0.0002,
		AnnualDeathRate:         0.12,
		DeleteOnDeathRate:       0.50,
		LatePropertyRate:        0.20,
		PropertyChurnRate:       0.06,
	}
}

// Scaled returns a copy of the config with the template count multiplied
// by factor — the knob for paper-scale corpora. Default() yields ~1.26M
// raw changes, so Scaled(8) lands around 10M. Growth is horizontal (more
// templates of the same behaviour distribution), so the corpus gets
// bigger without getting weirder.
func (c Config) Scaled(factor int) Config {
	if factor > 1 {
		c.NumTemplates *= factor
	}
	return c
}

// Small returns a reduced configuration for unit tests.
func Small() Config {
	cfg := Default()
	cfg.NumTemplates = 12
	cfg.MeanEntitiesPerTemplate = 8
	cfg.BigTemplateEntities = 6
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Span.Len() < 800 {
		return fmt.Errorf("dataset: span %v too short (need at least ~2 years)", c.Span)
	}
	if c.NumTemplates < 1 {
		return fmt.Errorf("dataset: NumTemplates %d < 1", c.NumTemplates)
	}
	if c.MeanEntitiesPerTemplate < 1 {
		return fmt.Errorf("dataset: MeanEntitiesPerTemplate %d < 1", c.MeanEntitiesPerTemplate)
	}
	if c.StubsPerEntity < 0 {
		return fmt.Errorf("dataset: StubsPerEntity %d < 0", c.StubsPerEntity)
	}
	for name, r := range map[string]float64{
		"ClusterMissRate":     c.ClusterMissRate,
		"ImplicationMissRate": c.ImplicationMissRate,
		"DelayedResponseRate": c.DelayedResponseRate,
		"BurstRate":           c.BurstRate,
		"VandalismRate":       c.VandalismRate,
		"AnnualDeathRate":     c.AnnualDeathRate,
		"DeleteOnDeathRate":   c.DeleteOnDeathRate,
		"LatePropertyRate":    c.LatePropertyRate,
		"PropertyChurnRate":   c.PropertyChurnRate,
	} {
		if r < 0 || r > 1 {
			return fmt.Errorf("dataset: %s %v out of [0,1]", name, r)
		}
	}
	return nil
}

// Cluster records a planted page-level correlated field group.
type Cluster struct {
	Fields []changecube.FieldKey
}

// Implication records a planted template-level rule X ⇒ Y.
type Implication struct {
	Template   changecube.TemplateID
	Antecedent changecube.PropertyID
	Consequent changecube.PropertyID
}

// Forgotten records one planted stale-data incident: Cause changed on Day
// but Field was not updated even though its pattern demanded it.
type Forgotten struct {
	Field changecube.FieldKey
	Cause changecube.FieldKey
	Day   timeline.Day
}

// CaseStudy pins the §5.4 ground-truth scenario: a league-season infobox
// whose total_goals misses three updates during the final year, and whose
// goals tally additionally suffers the paper's truncation typo (a total of
// 9,880 updated to 1,073 instead of 10,073, incremented for months, then
// corrected on the season's last day).
type CaseStudy struct {
	Entity     changecube.EntityID
	Matches    changecube.FieldKey
	TotalGoals changecube.FieldKey
	MissedDays []timeline.Day
	// TypoDay is the day the truncated goals value was written.
	TypoDay timeline.Day
	// TypoValue is the truncated value; TypoIntended is the value the
	// editor meant to write.
	TypoValue, TypoIntended int64
}

// Truth is the generator's ground-truth metadata, used by tests and the
// experiment harness to verify what the predictors recover.
type Truth struct {
	Clusters     []Cluster
	Implications []Implication
	Forgotten    []Forgotten
	CaseStudy    CaseStudy
}
