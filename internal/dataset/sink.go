package dataset

import (
	"fmt"

	"github.com/wikistale/wikistale/internal/changecube"
)

// entRef is the stream-side identity of an entity after name interning.
type entRef struct {
	page     changecube.PageID
	template changecube.TemplateID
	box      int
}

// cubeSink materializes the event stream into a cube, interning names in
// arrival order — template, then page, then property, the exact order the
// live-ingestion staging buffer uses. A corpus streamed through ingestion
// therefore assigns the same dense IDs as one built by Generate, and the
// two encode to bit-identical bytes.
type cubeSink struct {
	cube *changecube.Cube
	ents map[entRef]changecube.EntityID
}

func newCubeSink() *cubeSink {
	return &cubeSink{
		cube: changecube.New(),
		ents: make(map[entRef]changecube.EntityID),
	}
}

func (s *cubeSink) add(evs []Event) error {
	for _, ev := range evs {
		templateID := changecube.TemplateID(s.cube.Templates.Intern(ev.Template))
		pageID := changecube.PageID(s.cube.Pages.Intern(ev.Page))
		propID := changecube.PropertyID(s.cube.Properties.Intern(ev.Property))
		key := entRef{page: pageID, template: templateID, box: ev.Infobox}
		entity, ok := s.ents[key]
		if !ok {
			entity = s.cube.AddEntity(templateID, pageID)
			s.ents[key] = entity
		}
		s.cube.Add(changecube.Change{
			Time:     ev.Time,
			Entity:   entity,
			Property: propID,
			Value:    ev.Value,
			Kind:     ev.Kind,
			Bot:      ev.Bot,
		})
	}
	return nil
}

// resolveTruth rebinds the name-based truth collected during streaming to
// the IDs the sink assigned while consuming the same stream.
func resolveTruth(s *cubeSink, raw *rawTruth) (*Truth, error) {
	field := func(r fieldRef) (changecube.FieldKey, error) {
		templateID, okT := s.cube.Templates.Lookup(r.template)
		pageID, okP := s.cube.Pages.Lookup(r.page)
		propID, okR := s.cube.Properties.Lookup(r.prop)
		if !okT || !okP || !okR {
			return changecube.FieldKey{}, fmt.Errorf("dataset: truth names %+v missing from corpus", r)
		}
		entity, ok := s.ents[entRef{
			page:     changecube.PageID(pageID),
			template: changecube.TemplateID(templateID),
			box:      r.box,
		}]
		if !ok {
			return changecube.FieldKey{}, fmt.Errorf("dataset: truth entity %+v missing from corpus", r)
		}
		return changecube.FieldKey{Entity: entity, Property: changecube.PropertyID(propID)}, nil
	}

	truth := &Truth{}
	for _, refs := range raw.clusters {
		fks := make([]changecube.FieldKey, len(refs))
		for i, r := range refs {
			fk, err := field(r)
			if err != nil {
				return nil, err
			}
			fks[i] = fk
		}
		truth.Clusters = append(truth.Clusters, Cluster{Fields: fks})
	}
	for _, im := range raw.implications {
		// Interned, not looked up: every entity of the template instantiates
		// its implication pair, but an implication is planted schema-wide.
		truth.Implications = append(truth.Implications, Implication{
			Template:   changecube.TemplateID(s.cube.Templates.Intern(im[0])),
			Antecedent: changecube.PropertyID(s.cube.Properties.Intern(im[1])),
			Consequent: changecube.PropertyID(s.cube.Properties.Intern(im[2])),
		})
	}
	for _, f := range raw.forgotten {
		fk, err := field(f.field)
		if err != nil {
			return nil, err
		}
		cause, err := field(f.cause)
		if err != nil {
			return nil, err
		}
		truth.Forgotten = append(truth.Forgotten, Forgotten{Field: fk, Cause: cause, Day: f.day})
	}
	if raw.casePlanted {
		cs := raw.caseStudy
		matches, err := field(fieldRef{template: cs.template, page: cs.page, prop: "matches"})
		if err != nil {
			return nil, err
		}
		goals, err := field(fieldRef{template: cs.template, page: cs.page, prop: "total_goals"})
		if err != nil {
			return nil, err
		}
		truth.CaseStudy = CaseStudy{
			Entity:       matches.Entity,
			Matches:      matches,
			TotalGoals:   goals,
			MissedDays:   cs.missed,
			TypoDay:      cs.typoDay,
			TypoValue:    cs.typoValue,
			TypoIntended: cs.typoIntended,
		}
	}
	return truth, nil
}
