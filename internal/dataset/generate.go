package dataset

import (
	"fmt"
	"math/rand"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// archetype classifies the change behaviour of an unstructured property.
type archetype int

const (
	atStatic   archetype = iota // set at creation, at most a correction or two
	atSparse                    // rare attention episodes, years apart
	atMedium                    // irregular episodes, months apart
	atRegular                   // periodic with jitter (league fixtures)
	atSeasonal                  // once a year (kit colors, season pages)
	atDaily                     // high-frequency counter (soap-opera episodes)
)

// propSpec is one unstructured property of a template schema.
type propSpec struct {
	name string
	kind archetype
}

// schema is the generated behaviour blueprint of one template.
type schema struct {
	name         string
	loose        []propSpec
	clusters     [][]string  // member property names, co-changing per entity
	implications [][2]string // antecedent -> consequent property names
	// shortLived marks event-page templates (elections): entities live
	// weeks, not years, with their implication pairs firing densely.
	shortLived bool
	// yearlySeries marks annual-event templates: each "franchise" spawns
	// one page per year ("Premier League 2016-17 season", then 2017-18,
	// ...), the structure the family-correlation extension exploits.
	yearlySeries bool
	// indepConsequent adds independent changes to implication consequents,
	// keeping the reverse rule below the confidence cut. Event-page
	// templates omit it: there, relationships are symmetric.
	indepConsequent bool
}

// generator drives one streamed generation run. It holds no corpus state —
// events leave through flush as soon as their entity is complete, and truth
// (when requested) is recorded by name, to be resolved against whatever
// sink consumed the stream.
type generator struct {
	cfg     Config
	schemas []schema
	flush   func([]Event) error
	batch   []Event
	err     error
	truth   *rawTruth // nil when the caller wants only the event stream
}

// fieldRef names a field without cube IDs: the entity is (template, page,
// infobox ordinal), exactly the stream-side identity live ingestion uses.
type fieldRef struct {
	template string
	page     string
	box      int
	prop     string
}

// rawTruth is the name-based form of Truth collected during streaming.
type rawTruth struct {
	clusters     [][]fieldRef
	implications [][3]string // template, antecedent, consequent
	forgotten    []rawForgotten
	casePlanted  bool
	caseStudy    rawCaseStudy
}

type rawForgotten struct {
	field, cause fieldRef
	day          timeline.Day
}

type rawCaseStudy struct {
	page         string
	template     string
	missed       []timeline.Day
	typoDay      timeline.Day
	typoValue    int64
	typoIntended int64
}

// Generate builds a corpus by running the streaming generator into a cube
// sink. The returned cube is sorted and validated, and is bit-identical to
// what any other consumer of Stream would assemble from the same config.
func Generate(cfg Config) (*changecube.Cube, *Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	sink := newCubeSink()
	g := &generator{
		cfg:     cfg,
		schemas: buildSchemas(cfg),
		flush:   sink.add,
		truth:   &rawTruth{},
	}
	if err := g.run(); err != nil {
		return nil, nil, err
	}
	truth, err := resolveTruth(sink, g.truth)
	if err != nil {
		return nil, nil, err
	}
	sink.cube.Sort()
	if err := sink.cube.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dataset: generated invalid cube: %w", err)
	}
	return sink.cube, truth, nil
}

// run walks templates and entities, flushing one batch per entity (and per
// stub) so a streaming consumer sees bounded batches.
func (g *generator) run() error {
	for t, sch := range g.schemas {
		n := g.entityCount(t)
		for e := 0; e < n; e++ {
			if g.err != nil {
				return g.err
			}
			if sch.yearlySeries {
				g.series(g.rngAt('E', t, e, 0), sch, e)
			} else {
				page := fmt.Sprintf("%s page %d", sch.name[len("infobox "):], e)
				g.entity(g.rngAt('E', t, e, 0), sch, page)
			}
			g.flushBatch()
			for s := 0; s < g.cfg.StubsPerEntity; s++ {
				page := fmt.Sprintf("%s stub %d-%d", sch.name[len("infobox "):], e, s)
				g.stub(g.rngAt('S', t, e, s), sch.name, page)
				g.flushBatch()
			}
		}
		if g.truth != nil {
			for _, impl := range sch.implications {
				g.truth.implications = append(g.truth.implications,
					[3]string{sch.name, impl[0], impl[1]})
			}
		}
	}
	g.plantCaseStudy(g.rngAt('C', 0, 0, 0))
	g.flushBatch()
	return g.err
}

// entityCount draws how many entities a template hosts, from its own
// derived RNG so the count survives entities being generated out of band.
func (g *generator) entityCount(templateIndex int) int {
	if templateIndex == 0 {
		return g.cfg.BigTemplateEntities
	}
	// Uniform 1 .. 2*mean-1 has the requested mean and a broad spread.
	rng := g.rngAt('N', templateIndex, 0, 0)
	return 1 + rng.Intn(2*g.cfg.MeanEntitiesPerTemplate-1)
}

// buildSchemas draws a behaviour blueprint for every template. Template 0
// is the oversized rule-rich template of Figure 3; template 1 is the
// football-league-season template hosting the §5.4 case study. Schemas are
// drawn from a single sequential RNG: they are cheap (no events), and a
// shared stream here keeps the blueprint distribution exactly as sampled.
func buildSchemas(cfg Config) []schema {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schemas := make([]schema, 0, cfg.NumTemplates)
	for t := 0; t < cfg.NumTemplates; t++ {
		var sch schema
		next := 0 // per-template property name allocator
		prop := func() string { next++; return propertyName(next - 1) }
		switch t {
		case 0:
			// Election results: short-lived event pages where dozens of
			// result properties update together in the days after the
			// event — the template with >150 rules in Figure 3.
			sch.name = "infobox legislative election"
			sch.shortLived = true
			for i := 0; i < 80; i++ {
				sch.implications = append(sch.implications, [2]string{prop(), prop()})
			}
			sch.loose = append(sch.loose,
				propSpec{name: staticName(0), kind: atStatic},
				propSpec{name: staticName(1), kind: atStatic},
				propSpec{name: prop(), kind: atSparse},
			)
		case 2:
			// Annual-event series: one page per franchise per year, the
			// §6 future-work structure for family correlations.
			sch.name = "infobox sports season"
			sch.yearlySeries = true
			sch.clusters = append(sch.clusters, []string{"roster", "standings"})
			sch.loose = append(sch.loose,
				propSpec{name: staticName(0), kind: atStatic},
				propSpec{name: staticName(1), kind: atStatic},
				propSpec{name: "venue", kind: atStatic},
				propSpec{name: "attendance", kind: atSparse},
			)
		case 1:
			sch.name = "infobox football league season"
			sch.indepConsequent = true
			sch.implications = append(sch.implications, [2]string{"matches", "total_goals"})
			sch.clusters = append(sch.clusters, []string{"home_colors", "away_colors"})
			sch.loose = append(sch.loose,
				propSpec{name: staticName(0), kind: atStatic},
				propSpec{name: "league", kind: atStatic},
				propSpec{name: "attendance", kind: atSparse},
				propSpec{name: "top_scorer", kind: atSparse},
				propSpec{name: "promoted", kind: atSeasonal},
			)
		default:
			sch.name = templateName(t)
			sch.indepConsequent = true
			nImpl := pick(rng, []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2})
			for i := 0; i < nImpl; i++ {
				sch.implications = append(sch.implications, [2]string{prop(), prop()})
			}
			nClusters := pick(rng, []int{0, 0, 0, 0, 0, 0, 0, 1, 1, 2})
			for i := 0; i < nClusters; i++ {
				size := 2 + rng.Intn(2)
				members := make([]string, size)
				for j := range members {
					members[j] = prop()
				}
				sch.clusters = append(sch.clusters, members)
			}
			// Real infoboxes are dominated by parameters that are set once
			// and never maintained; they feed the creation/deletion and
			// <5-changes stages of the funnel.
			nStatic := 8 + rng.Intn(8)
			for i := 0; i < nStatic; i++ {
				sch.loose = append(sch.loose, propSpec{name: staticName(i), kind: atStatic})
			}
			nSparse := 3 + rng.Intn(4)
			for i := 0; i < nSparse; i++ {
				sch.loose = append(sch.loose, propSpec{name: prop(), kind: atSparse})
			}
			nMedium := 4 + rng.Intn(5)
			for i := 0; i < nMedium; i++ {
				sch.loose = append(sch.loose, propSpec{name: prop(), kind: atMedium})
			}
			if rng.Float64() < 0.2 {
				sch.loose = append(sch.loose, propSpec{name: prop(), kind: atRegular})
			}
			if rng.Float64() < 0.3 {
				sch.loose = append(sch.loose, propSpec{name: prop(), kind: atSeasonal})
			}
			if rng.Float64() < 0.03 {
				sch.loose = append(sch.loose, propSpec{name: prop(), kind: atDaily})
			}
		}
		schemas = append(schemas, sch)
	}
	return schemas
}

func pick(rng *rand.Rand, choices []int) int {
	return choices[rng.Intn(len(choices))]
}

// fieldState tracks one property's lifecycle within an entity.
type fieldState struct {
	prop    string
	box     int // infobox ordinal on the page; companions get 1, 2, ...
	addDay  timeline.Day
	counter int
}

// entity generates the full lifecycle of one infobox from its own RNG.
func (g *generator) entity(rng *rand.Rand, sch schema, page string) {
	span := g.cfg.Span
	tmpl := sch.name
	ref := func(f *fieldState) fieldRef {
		return fieldRef{template: tmpl, page: page, box: f.box, prop: f.prop}
	}

	birth := span.Start + timeline.Day(rng.Intn(span.Len()-90))
	var death timeline.Day
	if sch.shortLived {
		death = birth + timeline.Day(120+rng.Intn(120))
		if death > span.End {
			death = span.End
		}
	} else {
		death = g.sampleDeath(rng, birth)
	}

	fields := make(map[string]*fieldState)
	var fieldOrder []string // deterministic iteration; maps would vary
	nextBox := 1            // next companion-infobox ordinal on this page
	addFieldAt := func(name string, addDay timeline.Day) *fieldState {
		if f, ok := fields[name]; ok {
			return f
		}
		f := &fieldState{prop: name, addDay: addDay}
		fields[name] = f
		fieldOrder = append(fieldOrder, name)
		g.emitCreate(rng, tmpl, page, f)
		return f
	}
	addField := func(name string) *fieldState {
		addDay := birth
		if rng.Float64() < g.cfg.LatePropertyRate && death-birth > 60 {
			addDay = birth + timeline.Day(1+rng.Intn(int(death-birth)/2))
		}
		return addFieldAt(name, addDay)
	}

	// Unstructured properties; entities instantiate most, not all, of the
	// template's parameters.
	for _, spec := range sch.loose {
		if rng.Float64() < 0.15 {
			continue
		}
		f := addField(spec.name)
		for _, d := range eventDays(rng, spec.kind, f.addDay+1, death) {
			g.emitUpdate(rng, tmpl, page, f, d)
		}
		g.maybeChurn(rng, tmpl, page, f, death)
	}

	// Page-level clusters: all members change on shared event days, each
	// missing an event with ClusterMissRate (a forgotten update). Half of
	// the clusters span a second infobox on the same page (the paper's
	// series-character example: one character's daughters correlate with
	// another character's sisters) — such relationships are visible only
	// to the field-correlation predictor, because association-rule
	// transactions never cross infobox boundaries.
	for _, members := range sch.clusters {
		states := make([]*fieldState, 0, len(members))
		if len(members) >= 2 && rng.Float64() < 0.5 {
			box := nextBox
			nextBox++
			for i, name := range members {
				if i%2 == 0 {
					states = append(states, addFieldAt(name, birth))
					continue
				}
				f := &fieldState{prop: name, box: box, addDay: birth}
				g.emitCreate(rng, tmpl, page, f)
				states = append(states, f)
			}
		} else {
			for _, name := range members {
				states = append(states, addFieldAt(name, birth))
			}
		}
		events := structuredDays(rng, birth+1, death)
		if g.truth != nil {
			refs := make([]fieldRef, len(states))
			for i, f := range states {
				refs[i] = ref(f)
			}
			g.truth.clusters = append(g.truth.clusters, refs)
		}
		for _, d := range events {
			var changed, missed []*fieldState
			for _, f := range states {
				if d <= f.addDay {
					continue
				}
				if rng.Float64() < g.cfg.ClusterMissRate {
					missed = append(missed, f)
				} else {
					changed = append(changed, f)
				}
			}
			for _, f := range changed {
				g.emitUpdate(rng, tmpl, page, f, d)
			}
			if len(changed) > 0 && g.truth != nil {
				cause := ref(changed[0])
				for _, f := range missed {
					g.truth.forgotten = append(g.truth.forgotten,
						rawForgotten{field: ref(f), cause: cause, day: d})
				}
			}
		}
	}

	// Template-level implications: the antecedent drives the consequent,
	// which occasionally lags or is forgotten; the consequent also changes
	// independently, keeping the reverse rule below the confidence cut.
	for _, impl := range sch.implications {
		// The pair shares a lifecycle: matches and total_goals both exist
		// from the season's start. Decoupled creation times would push the
		// rule's true weekly precision below the validation cut.
		x := addFieldAt(impl[0], birth)
		y := addFieldAt(impl[1], birth)
		var events []timeline.Day
		if sch.shortLived {
			// Result fields update every few days while the event page is
			// hot, comfortably clearing the <5-changes filter.
			events = denseDays(rng, x.addDay+1, death, 20)
		} else {
			events = structuredDays(rng, x.addDay+1, death)
		}
		for _, d := range events {
			g.emitUpdate(rng, tmpl, page, x, d)
			if d <= y.addDay {
				continue
			}
			if rng.Float64() < g.cfg.ImplicationMissRate {
				if g.truth != nil {
					g.truth.forgotten = append(g.truth.forgotten,
						rawForgotten{field: ref(y), cause: ref(x), day: d})
				}
				continue
			}
			yd := d
			if rng.Float64() < g.cfg.DelayedResponseRate {
				yd += timeline.Day(1 + rng.Intn(3))
			}
			if yd < death {
				g.emitUpdate(rng, tmpl, page, y, yd)
			}
		}
		// Independent consequent changes at roughly the antecedent's rate
		// (corrections, unrelated edits) keep the reverse rule weak.
		if sch.indepConsequent {
			for _, d := range eventDays(rng, atSparse, y.addDay+1, death) {
				g.emitUpdate(rng, tmpl, page, y, d)
			}
		}
	}

	// Dormancy: some retired infoboxes are deleted outright.
	if death < span.End && rng.Float64() < g.cfg.DeleteOnDeathRate {
		for _, name := range fieldOrder {
			if f := fields[name]; f.addDay < death {
				g.emitDelete(rng, tmpl, page, f, death)
			}
		}
	}
}

// series generates an annual-event franchise: one page per year, each
// carrying the template's clusters for its season. The yearly pages share
// a page-family ("2016-17 Example League", "2017-18 Example League", ...),
// which is what the family-correlation extension pools.
func (g *generator) series(rng *rand.Rand, sch schema, idx int) {
	span := g.cfg.Span
	league := fmt.Sprintf("Example League %d", idx)
	maxStart := span.Len() - 3*365
	if maxStart < 1 {
		maxStart = 1
	}
	seasonStart := span.Start + timeline.Day(rng.Intn(maxStart))
	for seasonStart+200 < span.End {
		// A franchise folds with half the usual dormancy rate: annual
		// institutions are sticky.
		if rng.Float64() < g.cfg.AnnualDeathRate/2 {
			break
		}
		year := seasonStart.Time().Year()
		page := fmt.Sprintf("%d-%02d %s", year, (year+1)%100, league)
		seasonEnd := seasonStart + 340
		if seasonEnd > span.End {
			seasonEnd = span.End
		}

		// Static season parameters.
		for _, spec := range sch.loose {
			f := &fieldState{prop: spec.name, addDay: seasonStart}
			g.emitCreate(rng, sch.name, page, f)
			for _, d := range eventDays(rng, spec.kind, seasonStart+1, seasonEnd) {
				g.emitUpdate(rng, sch.name, page, f, d)
			}
		}

		// Season clusters: co-changing rounds every few weeks.
		for _, members := range sch.clusters {
			states := make([]*fieldState, len(members))
			for i, name := range members {
				states[i] = &fieldState{prop: name, addDay: seasonStart}
				g.emitCreate(rng, sch.name, page, states[i])
			}
			if g.truth != nil {
				refs := make([]fieldRef, len(states))
				for i, f := range states {
					refs[i] = fieldRef{template: sch.name, page: page, prop: f.prop}
				}
				g.truth.clusters = append(g.truth.clusters, refs)
			}
			for d := seasonStart + timeline.Day(10+rng.Intn(20)); d < seasonEnd; d += timeline.Day(25 + rng.Intn(20)) {
				var changed, missed []*fieldState
				for _, f := range states {
					if rng.Float64() < g.cfg.ClusterMissRate {
						missed = append(missed, f)
					} else {
						changed = append(changed, f)
					}
				}
				for _, f := range changed {
					g.emitUpdate(rng, sch.name, page, f, d)
				}
				if len(changed) > 0 && g.truth != nil {
					cause := fieldRef{template: sch.name, page: page, prop: changed[0].prop}
					for _, f := range missed {
						g.truth.forgotten = append(g.truth.forgotten, rawForgotten{
							field: fieldRef{template: sch.name, page: page, prop: f.prop},
							cause: cause,
							day:   d,
						})
					}
				}
			}
		}
		seasonStart += 365
	}
}

// stub generates a low-effort infobox: a burst of static parameters at
// creation, the odd correction, and — often enough — deletion. Stubs carry
// the corpus's creation/deletion volume.
func (g *generator) stub(rng *rand.Rand, tmpl, page string) {
	span := g.cfg.Span
	birth := span.Start + timeline.Day(rng.Intn(span.Len()-30))
	death := g.sampleDeath(rng, birth)
	nProps := 6 + rng.Intn(10)
	fields := make([]*fieldState, 0, nProps)
	for i := 0; i < nProps; i++ {
		f := &fieldState{prop: staticName(i), addDay: birth}
		fields = append(fields, f)
		g.emitCreate(rng, tmpl, page, f)
		// Drive-by edits: stubs accumulate a handful of corrections, always
		// below the five-change eligibility bar — the mass the paper's
		// <5-changes filter removes.
		if death > birth+2 {
			n := pick(rng, []int{0, 0, 0, 1, 1, 1, 2, 2, 3, 4})
			var days []timeline.Day
			for j := 0; j < n; j++ {
				days = append(days, birth+1+timeline.Day(rng.Intn(int(death-birth-1))))
			}
			for _, d := range dedupSorted(days) {
				g.emitUpdate(rng, tmpl, page, f, d)
			}
		}
	}
	if death < span.End && rng.Float64() < g.cfg.DeleteOnDeathRate+0.2 {
		for _, f := range fields {
			g.emitDelete(rng, tmpl, page, f, death)
		}
	}
}

// sampleDeath draws the day the entity's page falls out of maintenance.
func (g *generator) sampleDeath(rng *rand.Rand, birth timeline.Day) timeline.Day {
	d := birth
	for {
		if rng.Float64() < g.cfg.AnnualDeathRate {
			death := d + timeline.Day(rng.Intn(365))
			if death > g.cfg.Span.End {
				return g.cfg.Span.End
			}
			return death
		}
		d += 365
		if d >= g.cfg.Span.End {
			return g.cfg.Span.End
		}
	}
}

// eventDays draws the change days of one behaviour process in [start, end).
func eventDays(rng *rand.Rand, kind archetype, start, end timeline.Day) []timeline.Day {
	if end <= start {
		return nil
	}
	var days []timeline.Day
	switch kind {
	case atStatic:
		// Most static parameters are never touched again; a few receive a
		// correction or two.
		n := 0
		switch r := rng.Float64(); {
		case r < 0.70:
			n = 0
		case r < 0.92:
			n = 1
		default:
			n = 2
		}
		for i := 0; i < n; i++ {
			days = append(days, start+timeline.Day(rng.Intn(int(end-start))))
		}
		days = dedupSorted(days)
	case atSparse:
		// Attention episodes: a page gets noticed, receives a burst of
		// edits over days or weeks, then falls silent for years. This
		// heavy-tailed rhythm — a mean inter-change gap beyond a year for
		// most fields — is what defeats mean-gap extrapolation on the
		// real corpus.
		d := start + timeline.Day(1+rng.Intn(700))
		for d < end {
			n := 1 + rng.Intn(4)
			for i := 0; i < n && d < end; i++ {
				days = append(days, d)
				d += timeline.Day(1 + rng.Intn(12))
			}
			d += timeline.Day(180 + int(rng.ExpFloat64()*700))
		}
	case atMedium:
		// The same episodic rhythm at a monthly-to-quarterly cadence —
		// the bulk of the "dynamic but unsystematic" change mass whose
		// windows no rule covers, which is what keeps recall low.
		d := start + timeline.Day(1+rng.Intn(250))
		for d < end {
			n := 1 + rng.Intn(3)
			for i := 0; i < n && d < end; i++ {
				days = append(days, d)
				d += timeline.Day(1 + rng.Intn(8))
			}
			d += timeline.Day(45 + int(rng.ExpFloat64()*220))
		}
	case atRegular:
		// Periodic maintenance runs for a stretch and then stops (the
		// series ends, the maintainer moves on); an eternal metronome
		// would hand the threshold baseline precision it does not earn on
		// the real corpus.
		period := []int{7, 14, 30, 90}[rng.Intn(4)]
		stop := start + timeline.Day(400+rng.Intn(1800))
		if stop < end {
			end = stop
		}
		d := start + timeline.Day(rng.Intn(period)+1)
		for d < end {
			days = append(days, d)
			jitter := rng.Intn(5) - 2
			step := period + jitter
			if step < 1 {
				step = 1
			}
			d += timeline.Day(step)
		}
	case atSeasonal:
		dayOfYear := rng.Intn(360)
		yearStart := start - timeline.Day(int(start)%365)
		for d := yearStart + timeline.Day(dayOfYear); d < end; d += 365 {
			jd := d + timeline.Day(rng.Intn(7)-3)
			if jd >= start && jd < end {
				days = append(days, jd)
			}
		}
	case atDaily:
		// High-frequency counters run until the series ends — they do not
		// tick forever, which is what keeps the threshold baseline from
		// free precision on long windows.
		p := 0.3 + rng.Float64()*0.3
		finale := start + timeline.Day(300+rng.Intn(1700))
		if finale < end {
			end = finale
		}
		for d := start; d < end; d++ {
			if rng.Float64() < p {
				days = append(days, d)
			}
		}
	}
	return days
}

// denseDays draws frequent event days with a small mean gap — the rhythm
// of a hot event page.
func denseDays(rng *rand.Rand, start, end timeline.Day, meanGap int) []timeline.Day {
	if end <= start {
		return nil
	}
	var days []timeline.Day
	d := start + timeline.Day(1+rng.Intn(meanGap))
	for d < end {
		days = append(days, d)
		d += timeline.Day(1 + rng.Intn(2*meanGap-1))
	}
	return days
}

// structuredDays draws the event process driving a cluster or implication:
// a yearly season of near-weekly events (league fixtures), a slow regular
// cadence, or attention bursts.
func structuredDays(rng *rand.Rand, start, end timeline.Day) []timeline.Day {
	switch rng.Intn(3) {
	case 0:
		// Season: an active stretch each year with frequent events.
		seasonStart := rng.Intn(365)
		seasonLen := 150 + rng.Intn(100)
		// Cadences deliberately below one-per-week: distinct processes on
		// the same template must not co-occur weekly, or the miner would
		// learn same-week-different-day rules that are worthless at the
		// daily granularity.
		period := []int{10, 17, 24}[rng.Intn(3)]
		yearBase := start - timeline.Day(int(start)%365)
		var days []timeline.Day
		for yb := yearBase; yb < end; yb += 365 {
			d := yb + timeline.Day(seasonStart+rng.Intn(7))
			seasonEnd := d + timeline.Day(seasonLen)
			for d < seasonEnd && d < end {
				if d > start {
					days = append(days, d)
				}
				step := period + rng.Intn(5) - 2
				if step < 1 {
					step = 1
				}
				d += timeline.Day(step)
			}
		}
		return days
	case 1:
		return eventDays(rng, atRegular, start, end)
	default:
		return eventDays(rng, atSparse, start, end)
	}
}

func dedupSorted(days []timeline.Day) []timeline.Day {
	if len(days) < 2 {
		return days
	}
	for i := 1; i < len(days); i++ {
		for j := i; j > 0 && days[j] < days[j-1]; j-- {
			days[j], days[j-1] = days[j-1], days[j]
		}
	}
	out := days[:1]
	for _, d := range days[1:] {
		if d != out[len(out)-1] {
			out = append(out, d)
		}
	}
	return out
}

// emitCreate emits the property-creation change.
func (g *generator) emitCreate(rng *rand.Rand, tmpl, page string, f *fieldState) {
	g.emit(Event{
		Time:     f.addDay.Unix() + int64(rng.Intn(20000)),
		Page:     page,
		Template: tmpl,
		Infobox:  f.box,
		Property: f.prop,
		Value:    fmt.Sprintf("v%d", f.counter),
		Kind:     changecube.Create,
	})
	f.counter++
}

// emitUpdate emits one real value update plus its configured noise: an
// intra-day burst (typo fixed within the day) and, rarely, a vandalism
// edit promptly reverted by a bot.
func (g *generator) emitUpdate(rng *rand.Rand, tmpl, page string, f *fieldState, d timeline.Day) {
	ts := d.Unix() + 20000 + int64(rng.Intn(40000))
	value := fmt.Sprintf("v%d", f.counter)
	f.counter++
	ev := Event{Time: ts, Page: page, Template: tmpl, Infobox: f.box,
		Property: f.prop, Value: value, Kind: changecube.Update}
	g.emit(ev)
	if rng.Float64() < g.cfg.BurstRate {
		// Same-day churn: a typo value, then the real value restored. The
		// day-dedup mode keeps the real value.
		typo := ev
		typo.Time = ts + 60
		typo.Value = value + "typo"
		g.emit(typo)
		fixed := ev
		fixed.Time = ts + 120
		g.emit(fixed)
	}
	if rng.Float64() < g.cfg.VandalismRate {
		vandal := ev
		vandal.Time = ts + 3600
		vandal.Value = "!!vandalism!!"
		g.emit(vandal)
		revert := ev
		revert.Time = ts + 4200
		revert.Bot = true
		g.emit(revert)
	}
}

// emitDelete emits a property deletion.
func (g *generator) emitDelete(rng *rand.Rand, tmpl, page string, f *fieldState, d timeline.Day) {
	g.emit(Event{
		Time:     d.Unix() + int64(rng.Intn(20000)),
		Page:     page,
		Template: tmpl,
		Infobox:  f.box,
		Property: f.prop,
		Kind:     changecube.Delete,
	})
}

// maybeChurn occasionally deletes and recreates a property mid-life,
// contributing schema-churn create/delete volume.
func (g *generator) maybeChurn(rng *rand.Rand, tmpl, page string, f *fieldState, death timeline.Day) {
	if rng.Float64() >= g.cfg.PropertyChurnRate {
		return
	}
	life := int(death - f.addDay)
	if life < 120 {
		return
	}
	gapStart := f.addDay + timeline.Day(30+rng.Intn(life-60))
	gapEnd := gapStart + timeline.Day(7+rng.Intn(60))
	if gapEnd >= death {
		return
	}
	g.emitDelete(rng, tmpl, page, f, gapStart)
	recreated := *f
	recreated.addDay = gapEnd
	g.emitCreate(rng, tmpl, page, &recreated)
	f.counter = recreated.counter
}

// plantCaseStudy inserts the §5.4 scenario: a Handball-Bundesliga season
// page using the football-league-season template, whose total_goals field
// misses three updates during the final year while matches is maintained —
// plus the paper's truncation typo in the goals value.
func (g *generator) plantCaseStudy(rng *rand.Rand) {
	if len(g.schemas) < 2 {
		return
	}
	const tmpl = "infobox football league season"
	hosted := false
	for _, sch := range g.schemas {
		if sch.name == tmpl {
			hosted = true
			break
		}
	}
	if !hosted {
		return
	}
	span := g.cfg.Span
	page := "2018-19 Handball-Bundesliga"
	birth := span.End - 330

	// The values are realistic numeric tallies so the §5.4 value analysis
	// has something to find; the plain fieldState value scheme is bypassed.
	emit := func(prop string, day timeline.Day, value string) {
		g.emit(Event{
			Time:     day.Unix() + 30000 + int64(rng.Intn(20000)),
			Page:     page,
			Template: tmpl,
			Property: prop,
			Value:    value,
			Kind:     changecube.Update,
		})
	}
	g.emit(Event{Time: birth.Unix(), Page: page, Template: tmpl,
		Property: "matches", Value: "0", Kind: changecube.Create})
	g.emit(Event{Time: birth.Unix(), Page: page, Template: tmpl,
		Property: "total_goals", Value: "9,200", Kind: changecube.Create})

	cs := rawCaseStudy{page: page, template: tmpl}
	trueTotal := int64(9200) // mid-season carry-over, approaching 10,000
	displayed := trueTotal
	typoDone := false
	gameDay := birth + 3
	game := 0
	for gameDay < span.End-7 {
		game++
		emit("matches", gameDay, fmt.Sprintf("%d", game*9)) // 9 fixtures per round
		delta := int64(25 + rng.Intn(12))
		trueTotal += delta
		// Three specific match days lack the goals update entirely.
		if game == 6 || game == 12 || game == 20 {
			cs.missed = append(cs.missed, gameDay)
			if g.truth != nil {
				g.truth.forgotten = append(g.truth.forgotten, rawForgotten{
					field: fieldRef{template: tmpl, page: page, prop: "total_goals"},
					cause: fieldRef{template: tmpl, page: page, prop: "matches"},
					day:   gameDay,
				})
			}
			gameDay += timeline.Day(3 + rng.Intn(5))
			continue
		}
		switch {
		case !typoDone && trueTotal >= 10000:
			// The paper's truncation typo: the editor drops the second
			// digit of the new five-digit total (10,073 becomes 1,073)
			// and later editors keep incrementing the wrong value.
			wrong := fmt.Sprintf("%d", trueTotal)
			wrong = wrong[:1] + wrong[2:]
			displayed, _ = parseInt(wrong)
			typoDone = true
			cs.typoDay = gameDay
			cs.typoValue = displayed
			cs.typoIntended = trueTotal
		default:
			displayed += delta
		}
		emit("total_goals", gameDay, groupDigits(displayed))
		gameDay += timeline.Day(3 + rng.Intn(5))
	}
	// Season finale: someone recomputes the tally and fixes it.
	emit("total_goals", span.End-6, groupDigits(trueTotal))
	if g.truth != nil {
		g.truth.casePlanted = true
		g.truth.caseStudy = cs
	}
}

// parseInt is a minimal digits-only parser for the typo construction.
func parseInt(s string) (int64, bool) {
	var n int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int64(r-'0')
	}
	return n, true
}

// groupDigits formats n with comma separators, as infobox tallies are
// usually written ("10,073").
func groupDigits(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			b = append(b, ',')
		}
		b = append(b, c)
	}
	return string(b)
}
