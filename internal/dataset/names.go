package dataset

import "fmt"

// Name pools give the synthetic corpus recognizable Wikipedia flavor. The
// generator cycles through them deterministically, suffixing indexes when a
// pool is exhausted.

var templateNouns = []string{
	"settlement", "person", "boxer", "station", "album", "film",
	"football club", "company", "university", "river", "mountain",
	"aircraft", "ship", "video game", "television", "book", "road",
	"museum", "airport", "stadium", "election", "military unit",
	"language", "planet", "software", "bridge", "park", "school",
	"hospital", "radio station", "newspaper", "organization",
}

var propertyNames = []string{
	"population", "pop_as_of", "area_km2", "leader_name", "mayor",
	"num_episodes", "matches", "goals", "wins", "losses", "ko",
	"revenue", "employees", "students", "length", "elevation",
	"champion", "runner_up", "attendance", "capacity", "owner",
	"manager", "coach", "chairman", "website", "logo", "image",
	"seats", "turnout", "votes", "leader_percent", "discharge",
	"passengers", "pass_year", "pass_percent", "home_colors",
	"away_colors", "stadium_name", "current_members", "last_updated",
	"ranking", "budget", "endowment", "enrollment", "fleet_size",
	"destinations", "speed_record", "box_office", "gross", "rating",
}

var staticNames = []string{
	"birth_date", "birth_name", "birth_place", "founded", "established",
	"coordinates", "origin", "architect", "opened", "first_flight",
}

func templateName(i int) string {
	if i < len(templateNouns) {
		return "infobox " + templateNouns[i]
	}
	return fmt.Sprintf("infobox %s %d", templateNouns[i%len(templateNouns)], i/len(templateNouns))
}

func propertyName(i int) string {
	if i < len(propertyNames) {
		return propertyNames[i]
	}
	return fmt.Sprintf("%s_%d", propertyNames[i%len(propertyNames)], i/len(propertyNames))
}

func staticName(i int) string {
	if i < len(staticNames) {
		return staticNames[i]
	}
	return fmt.Sprintf("%s_%d", staticNames[i%len(staticNames)], i/len(staticNames))
}
