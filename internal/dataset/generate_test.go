package dataset

import (
	"fmt"
	"strings"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/familycorr"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/pagefamily"
	"github.com/wikistale/wikistale/internal/timeline"
)

func generate(t *testing.T, cfg Config) (*changecube.Cube, *Truth) {
	t.Helper()
	cube, truth, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return cube, truth
}

func TestGenerateProducesValidCube(t *testing.T) {
	cube, truth := generate(t, Small())
	if cube.NumChanges() == 0 || cube.NumEntities() == 0 {
		t.Fatal("empty corpus")
	}
	if err := cube.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(truth.Implications) == 0 || len(truth.Clusters) == 0 {
		t.Fatal("no structure planted")
	}
	if len(truth.Forgotten) == 0 {
		t.Fatal("no forgotten updates planted")
	}
	span := cube.Span()
	if span.Start < Small().Span.Start || span.End > Small().Span.End+1 {
		t.Fatalf("changes outside configured span: %v vs %v", span, Small().Span)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := generate(t, Small())
	b, _ := generate(t, Small())
	if a.NumChanges() != b.NumChanges() || a.NumEntities() != b.NumEntities() {
		t.Fatalf("non-deterministic: %d/%d changes, %d/%d entities",
			a.NumChanges(), b.NumChanges(), a.NumEntities(), b.NumEntities())
	}
	ac, bc := a.Changes(), b.Changes()
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("change %d differs: %+v vs %+v", i, ac[i], bc[i])
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	cfg2 := Small()
	cfg2.Seed = 99
	a, _ := generate(t, Small())
	b, _ := generate(t, cfg2)
	if a.NumChanges() == b.NumChanges() {
		// Counts could collide by chance; compare some content too.
		same := true
		ac, bc := a.Changes(), b.Changes()
		for i := 0; i < len(ac) && i < len(bc) && i < 100; i++ {
			if ac[i] != bc[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical corpora")
		}
	}
}

func TestGenerateFunnelShape(t *testing.T) {
	cube, _ := generate(t, Small())
	hs, stats, err := filter.Apply(cube, filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Len() == 0 {
		t.Fatal("no fields survive the funnel")
	}
	surv := stats.Survival()
	// The paper retains 9.2%; the corpus must land in the same regime.
	if surv < 0.02 || surv > 0.40 {
		t.Fatalf("survival = %.3f, outside the plausible funnel regime\n%s", surv, stats)
	}
	// Creates/deletes must dominate removals, day-dedup must remove a
	// noticeable share, bot reverts a tiny one.
	var byName = map[string]filter.StageStats{}
	for _, st := range stats.Stages {
		byName[st.Name] = st
	}
	if r := byName["bot reverts"].Removed(); r > 0.01 {
		t.Errorf("bot reverts removed %.4f, want tiny", r)
	}
	if r := byName["day dedup"].Removed(); r < 0.05 || r > 0.45 {
		t.Errorf("day dedup removed %.3f, want 0.05..0.45", r)
	}
	if r := byName["create/delete"].Removed(); r < 0.25 {
		t.Errorf("create/delete removed %.3f, want > 0.25", r)
	}
}

func TestCaseStudyPlanted(t *testing.T) {
	cube, truth := generate(t, Small())
	cs := truth.CaseStudy
	if len(cs.MissedDays) != 3 {
		t.Fatalf("case study missed days = %v, want 3", cs.MissedDays)
	}
	if cs.Matches.Entity != cs.Entity || cs.TotalGoals.Entity != cs.Entity {
		t.Fatal("case study fields not on the case-study entity")
	}
	name := cube.Templates.Name(int32(cube.Template(cs.Entity)))
	if name != "infobox football league season" {
		t.Fatalf("case study template = %q", name)
	}
	// matches must actually change on each missed day while total_goals
	// does not.
	fc := cube.FieldChanges()
	matchDays := map[timeline.Day]bool{}
	for _, ch := range fc[cs.Matches] {
		matchDays[ch.Day()] = true
	}
	goalDays := map[timeline.Day]bool{}
	for _, ch := range fc[cs.TotalGoals] {
		goalDays[ch.Day()] = true
	}
	for _, d := range cs.MissedDays {
		if !matchDays[d] {
			t.Errorf("matches did not change on missed day %v", d)
		}
		if goalDays[d] {
			t.Errorf("total_goals changed on supposedly missed day %v", d)
		}
	}
}

func TestForgottenConsistentWithCube(t *testing.T) {
	cube, truth := generate(t, Small())
	fc := cube.FieldChanges()
	checked := 0
	for _, f := range truth.Forgotten {
		if checked >= 200 {
			break
		}
		checked++
		// The cause field must have changed on the forgotten day.
		found := false
		for _, ch := range fc[f.Cause] {
			if ch.Day() == f.Day && ch.Kind == changecube.Update {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("forgotten update %+v: cause did not change that day", f)
		}
	}
	if checked == 0 {
		t.Fatal("nothing to check")
	}
}

func TestImplicationsExistInSchema(t *testing.T) {
	cube, truth := generate(t, Small())
	if len(truth.Implications) < 40 {
		t.Fatalf("implications = %d, want >= 40 (big template alone has 40)", len(truth.Implications))
	}
	per := map[changecube.TemplateID]int{}
	for _, im := range truth.Implications {
		per[im.Template]++
		if im.Antecedent == im.Consequent {
			t.Fatalf("self-implication %+v", im)
		}
	}
	big, ok := cube.Templates.Lookup("infobox legislative election")
	if !ok {
		t.Fatal("big template missing")
	}
	if per[changecube.TemplateID(big)] != 80 {
		t.Fatalf("big template implications = %d, want 80", per[changecube.TemplateID(big)])
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Default()
	cfg.Span = timeline.NewSpan(0, 100)
	if _, _, err := Generate(cfg); err == nil {
		t.Error("short span accepted")
	}
	cfg = Default()
	cfg.NumTemplates = 0
	if _, _, err := Generate(cfg); err == nil {
		t.Error("zero templates accepted")
	}
	cfg = Default()
	cfg.BurstRate = 1.5
	if _, _, err := Generate(cfg); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestNamePools(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		n := templateName(i)
		if seen[n] {
			t.Fatalf("duplicate template name %q at %d", n, i)
		}
		seen[n] = true
	}
	if propertyName(3) == propertyName(len(propertyNames)+3) {
		t.Fatal("property pool wraps without suffix")
	}
	if staticName(2) == staticName(len(staticNames)+2) {
		t.Fatal("static pool wraps without suffix")
	}
}

func TestCaseStudyTypoPlanted(t *testing.T) {
	cube, truth := generate(t, Small())
	cs := truth.CaseStudy
	if cs.TypoDay == 0 || cs.TypoValue <= 0 || cs.TypoIntended < 10000 {
		t.Fatalf("typo not planted: %+v", cs)
	}
	// The truncated value must literally be the intended value with its
	// second digit removed.
	intended := []byte(itoa64(cs.TypoIntended))
	wrong := append(append([]byte{}, intended[0]), intended[2:]...)
	if string(wrong) != itoa64(cs.TypoValue) {
		t.Fatalf("typo %d is not a digit-drop of %d", cs.TypoValue, cs.TypoIntended)
	}
	// The cube must contain the truncated value on the typo day.
	found := false
	for _, ch := range cube.FieldChanges()[cs.TotalGoals] {
		if ch.Day() == cs.TypoDay && ch.Kind == changecube.Update {
			found = true
		}
	}
	if !found {
		t.Fatal("typo change missing from the cube")
	}
	// The season's final value is the corrected true total (above the
	// typo's wrong track).
	chs := cube.FieldChanges()[cs.TotalGoals]
	last := chs[len(chs)-1]
	if last.Value == "" || last.Value[0] == 'v' {
		t.Fatalf("goals values not numeric: %q", last.Value)
	}
}

func itoa64(n int64) string {
	return fmt.Sprintf("%d", n)
}

func TestYearlySeriesStructure(t *testing.T) {
	cube, _ := generate(t, Small())
	seasonID, ok := cube.Templates.Lookup("infobox sports season")
	if !ok {
		t.Fatal("series template missing")
	}
	byTemplate := cube.EntitiesByTemplate()
	seasons := byTemplate[changecube.TemplateID(seasonID)]
	if len(seasons) < 4 {
		t.Fatalf("season entities = %d, want a series", len(seasons))
	}
	// Pages follow the "YYYY-YY <league>" convention and group into
	// multi-member families.
	families := map[string][]changecube.EntityID{}
	for _, e := range seasons {
		page := cube.Pages.Name(int32(cube.Page(e)))
		if strings.Contains(page, "stub") {
			continue // stubs share the template but are not season pages
		}
		fam := pagefamily.Normalize(page)
		if fam == page {
			t.Fatalf("season page %q has no year token", page)
		}
		families[fam] = append(families[fam], e)
	}
	multi := 0
	for _, members := range families {
		if len(members) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-year franchise families generated")
	}
}

func TestFamilyCorrFindsSeriesRules(t *testing.T) {
	cube, _ := generate(t, Small())
	hs, _, err := filter.Apply(cube, filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	p, err := familycorr.Train(hs, hs.Span(), familycorr.Default())
	if err != nil {
		t.Fatal(err)
	}
	roster, okR := cube.Properties.Lookup("roster")
	standings, okS := cube.Properties.Lookup("standings")
	if !okR || !okS {
		t.Fatal("series cluster properties missing")
	}
	found := false
	for _, r := range p.Rules() {
		pair := map[changecube.PropertyID]bool{r.A: true, r.B: true}
		if pair[changecube.PropertyID(roster)] && pair[changecube.PropertyID(standings)] {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("roster~standings family rule not recovered among %d rules", p.NumRules())
	}
}
