package apriori

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// vertical is the TID-bitmap layout of a transaction set (Zaki's Eclat
// family): one bitmap per frequent single item, bit t set when transaction
// t contains the item. Candidate support is then the popcount of the
// AND of the member bitmaps — O(candidates × words) with no hashing and
// no per-transaction subset enumeration. Only items that are themselves
// frequent get a bitmap: by downward closure no infrequent item can occur
// in a frequent itemset, so candidates never reference the others.
//
// Items are interned to dense IDs 0..m-1 in ascending item order, so
// lexicographic order over dense IDs equals lexicographic order over the
// original items and level sets stay sorted without re-sorting.
type vertical struct {
	items  []Item // dense ID -> original item, ascending
	counts []int  // dense ID -> L1 support
	words  int    // bitmap length in uint64 words
	bits   [][]uint64
}

// newVertical counts singles, keeps those reaching minCount, and builds
// their TID bitmaps in one pass over the transactions.
func newVertical(txns []Transaction, minCount int) *vertical {
	singles := make(map[Item]int)
	for _, t := range txns {
		for _, it := range t {
			singles[it]++
		}
	}
	v := &vertical{}
	for it, c := range singles {
		if c >= minCount {
			v.items = append(v.items, it)
		}
	}
	sort.Slice(v.items, func(i, j int) bool { return v.items[i] < v.items[j] })
	v.counts = make([]int, len(v.items))
	dense := make(map[Item]int32, len(v.items))
	for j, it := range v.items {
		v.counts[j] = singles[it]
		dense[it] = int32(j)
	}
	v.words = (len(txns) + 63) / 64
	backing := make([]uint64, len(v.items)*v.words)
	v.bits = make([][]uint64, len(v.items))
	for j := range v.bits {
		v.bits[j] = backing[j*v.words : (j+1)*v.words]
	}
	for ti, t := range txns {
		w, m := ti>>6, uint64(1)<<uint(ti&63)
		for _, it := range t {
			if j, ok := dense[it]; ok {
				v.bits[j][w] |= m
			}
		}
	}
	return v
}

// original translates a dense-ID itemset back to original items.
func (v *vertical) original(s Itemset) Itemset {
	out := make(Itemset, len(s))
	for i, d := range s {
		out[i] = v.items[d]
	}
	return out
}

// countWorkGrain is how many candidates one worker claims per round; small
// enough to balance skewed candidate sizes, large enough to amortize the
// atomic fetch.
const countWorkGrain = 128

// parallelCountThreshold is the candidates×words product below which the
// counting loop runs single-threaded; under it, goroutine startup costs
// more than the popcounts.
const parallelCountThreshold = 1 << 14

// countCandidates returns the support of every candidate, counted as the
// popcount of the AND of the member bitmaps. Counts land at their
// candidate's index, so the result is deterministic regardless of how the
// work is scheduled across workers.
func (v *vertical) countCandidates(candidates []Itemset) []int {
	counts := make([]int, len(candidates))
	workers := runtime.GOMAXPROCS(0)
	if len(candidates)*v.words < parallelCountThreshold {
		workers = 1
	}
	if max := (len(candidates) + countWorkGrain - 1) / countWorkGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		v.countRange(candidates, 0, len(candidates), counts, make([]uint64, v.words))
		return counts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]uint64, v.words)
			for {
				start := int(next.Add(countWorkGrain)) - countWorkGrain
				if start >= len(candidates) {
					return
				}
				end := start + countWorkGrain
				if end > len(candidates) {
					end = len(candidates)
				}
				v.countRange(candidates, start, end, counts, scratch)
			}
		}()
	}
	wg.Wait()
	return counts
}

// countRange counts candidates[lo:hi] into counts, using scratch (words
// long) for the k>2 AND fold.
func (v *vertical) countRange(candidates []Itemset, lo, hi int, counts []int, scratch []uint64) {
	for i := lo; i < hi; i++ {
		c := candidates[i]
		if len(c) == 2 {
			a, b := v.bits[c[0]], v.bits[c[1]]
			n := 0
			for w := range a {
				n += bits.OnesCount64(a[w] & b[w])
			}
			counts[i] = n
			continue
		}
		copy(scratch, v.bits[c[0]])
		for _, d := range c[1:] {
			bm := v.bits[d]
			for w := range scratch {
				scratch[w] &= bm[w]
			}
		}
		n := 0
		for _, w := range scratch {
			n += bits.OnesCount64(w)
		}
		counts[i] = n
	}
}
