package apriori

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func txn(items ...Item) Transaction { return NormalizeTransaction(items) }

// classicTxns is the textbook example: five transactions over items 1..5.
var classicTxns = []Transaction{
	txn(1, 3, 4),
	txn(2, 3, 5),
	txn(1, 2, 3, 5),
	txn(2, 5),
	txn(1, 3, 5),
}

func supportOf(frequent []Support, items ...Item) (int, bool) {
	want := Itemset(txn(items...))
	for _, f := range frequent {
		if reflect.DeepEqual(f.Items, want) {
			return f.Count, true
		}
	}
	return 0, false
}

func TestFrequentItemsetsClassic(t *testing.T) {
	// minSupport 0.4 => minCount 2.
	frequent := FrequentItemsets(classicTxns, 0.4, 3)
	cases := []struct {
		items []Item
		count int
	}{
		{[]Item{1}, 3}, {[]Item{2}, 3}, {[]Item{3}, 4}, {[]Item{5}, 4},
		{[]Item{1, 3}, 3}, {[]Item{2, 5}, 3}, {[]Item{3, 5}, 3},
		{[]Item{1, 5}, 2}, {[]Item{2, 3}, 2},
		{[]Item{1, 3, 5}, 2}, {[]Item{2, 3, 5}, 2},
	}
	for _, c := range cases {
		got, ok := supportOf(frequent, c.items...)
		if !ok {
			t.Errorf("itemset %v missing", c.items)
			continue
		}
		if got != c.count {
			t.Errorf("support(%v) = %d, want %d", c.items, got, c.count)
		}
	}
	// Item 4 appears once (support 0.2) and must be absent.
	if _, ok := supportOf(frequent, 4); ok {
		t.Error("infrequent item 4 reported")
	}
	if _, ok := supportOf(frequent, 1, 2); ok {
		t.Error("infrequent pair {1,2} reported")
	}
}

func TestFrequentItemsetsRespectsMaxLen(t *testing.T) {
	frequent := FrequentItemsets(classicTxns, 0.4, 1)
	for _, f := range frequent {
		if len(f.Items) > 1 {
			t.Fatalf("MaxLen 1 violated: %v", f.Items)
		}
	}
}

func TestMineRulesClassic(t *testing.T) {
	rules, err := Mine(classicTxns, Config{MinSupport: 0.4, MinConfidence: 0.7, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	// {2}->{5}: supp 3/5, conf 3/3 = 1.0 must be present and first-ranked
	// together with {5}->{2}? conf({5}->{2}) = 3/4 = 0.75.
	find := func(a, c Item) (Rule, bool) {
		for _, r := range rules {
			if len(r.Antecedent) == 1 && r.Antecedent[0] == a &&
				len(r.Consequent) == 1 && r.Consequent[0] == c {
				return r, true
			}
		}
		return Rule{}, false
	}
	r25, ok := find(2, 5)
	if !ok || r25.Confidence != 1.0 {
		t.Fatalf("rule 2->5 = %+v, ok=%v", r25, ok)
	}
	if r52, ok := find(5, 2); !ok || r52.Confidence != 0.75 {
		t.Fatalf("rule 5->2 = %+v, ok=%v", r52, ok)
	}
	if _, ok := find(3, 1); ok {
		// conf(3->1) = 3/4 = 0.75 >= 0.7, should be present actually.
		_ = ok
	}
	// Rules are sorted by descending confidence.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence+1e-12 {
			t.Fatalf("rules not sorted by confidence: %v before %v", rules[i-1], rules[i])
		}
	}
	// Asymmetry: 1->3 has conf 3/3=1, 3->1 has conf 3/4.
	r13, ok13 := find(1, 3)
	r31, ok31 := find(3, 1)
	if !ok13 || !ok31 || r13.Confidence <= r31.Confidence {
		t.Fatalf("asymmetric confidences wrong: 1->3 %+v (%v), 3->1 %+v (%v)", r13, ok13, r31, ok31)
	}
}

func TestMineValidatesConfig(t *testing.T) {
	bad := []Config{
		{MinSupport: 0, MinConfidence: 0.5, MaxLen: 2},
		{MinSupport: 1.5, MinConfidence: 0.5, MaxLen: 2},
		{MinSupport: 0.1, MinConfidence: 0, MaxLen: 2},
		{MinSupport: 0.1, MinConfidence: 0.5, MaxLen: 0},
	}
	for _, cfg := range bad {
		if _, err := Mine(classicTxns, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestEmptyTransactions(t *testing.T) {
	if got := FrequentItemsets(nil, 0.5, 2); got != nil {
		t.Fatalf("frequent itemsets of nothing: %v", got)
	}
	rules, err := Mine([]Transaction{}, Config{MinSupport: 0.5, MinConfidence: 0.5, MaxLen: 2})
	if err != nil || len(rules) != 0 {
		t.Fatalf("rules of nothing: %v, %v", rules, err)
	}
}

func TestNormalizeTransaction(t *testing.T) {
	got := NormalizeTransaction([]Item{3, 1, 3, 2, 1})
	want := Transaction{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizeTransaction = %v, want %v", got, want)
	}
	if got := NormalizeTransaction(nil); len(got) != 0 {
		t.Fatalf("nil transaction = %v", got)
	}
}

func TestSubsetOf(t *testing.T) {
	tr := txn(1, 3, 5, 7)
	cases := []struct {
		s    Itemset
		want bool
	}{
		{Itemset{}, true},
		{Itemset{1}, true},
		{Itemset{3, 7}, true},
		{Itemset{1, 3, 5, 7}, true},
		{Itemset{2}, false},
		{Itemset{1, 2}, false},
		{Itemset{7, 9}, false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(tr); got != c.want {
			t.Errorf("%v ⊆ %v = %v, want %v", c.s, tr, got, c.want)
		}
	}
}

// bruteForceFrequent enumerates all itemsets up to maxLen by exhaustive
// subset counting — the reference implementation for property tests.
func bruteForceFrequent(txns []Transaction, minSupport float64, maxLen int) map[string]int {
	minCount := int(minSupport * float64(len(txns)))
	if float64(minCount) < minSupport*float64(len(txns)) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}
	universe := map[Item]bool{}
	for _, t := range txns {
		for _, it := range t {
			universe[it] = true
		}
	}
	items := make([]Item, 0, len(universe))
	for it := range universe {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	out := map[string]int{}
	n := len(items)
	for mask := 1; mask < 1<<n; mask++ {
		var set Itemset
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, items[i])
			}
		}
		if len(set) > maxLen {
			continue
		}
		count := 0
		for _, t := range txns {
			if set.SubsetOf(t) {
				count++
			}
		}
		if count >= minCount {
			out[set.key()] = count
		}
	}
	return out
}

// TestAprioriMatchesBruteForce cross-checks against exhaustive enumeration
// on random small universes.
func TestAprioriMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		nTxns := 1 + rng.Intn(25)
		universe := 1 + rng.Intn(8)
		txns := make([]Transaction, nTxns)
		for i := range txns {
			var items []Item
			for it := 0; it < universe; it++ {
				if rng.Intn(2) == 0 {
					items = append(items, Item(it))
				}
			}
			txns[i] = NormalizeTransaction(items)
		}
		minSup := []float64{0.1, 0.3, 0.5}[rng.Intn(3)]
		maxLen := 1 + rng.Intn(4)
		got := FrequentItemsets(txns, minSup, maxLen)
		want := bruteForceFrequent(txns, minSup, maxLen)
		gotMap := map[string]int{}
		for _, f := range got {
			gotMap[f.Items.key()] = f.Count
		}
		if !reflect.DeepEqual(gotMap, want) {
			t.Fatalf("iter %d: apriori %v != brute force %v (txns=%v minSup=%v maxLen=%d)",
				iter, gotMap, want, txns, minSup, maxLen)
		}
	}
}

// TestSupportAntiMonotone: support of any frequent itemset never exceeds
// the support of its subsets.
func TestSupportAntiMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	txns := make([]Transaction, 60)
	for i := range txns {
		var items []Item
		for it := 0; it < 10; it++ {
			if rng.Intn(3) == 0 {
				items = append(items, Item(it))
			}
		}
		txns[i] = NormalizeTransaction(items)
	}
	frequent := FrequentItemsets(txns, 0.05, 4)
	counts := map[string]int{}
	for _, f := range frequent {
		counts[f.Items.key()] = f.Count
	}
	for _, f := range frequent {
		if len(f.Items) < 2 {
			continue
		}
		sub := make(Itemset, 0, len(f.Items)-1)
		for skip := range f.Items {
			sub = sub[:0]
			for i, it := range f.Items {
				if i != skip {
					sub = append(sub, it)
				}
			}
			subCount, ok := counts[sub.key()]
			if !ok {
				t.Fatalf("frequent %v has unreported subset %v", f.Items, sub)
			}
			if subCount < f.Count {
				t.Fatalf("anti-monotonicity violated: %v=%d, subset %v=%d",
					f.Items, f.Count, sub, subCount)
			}
		}
	}
}

// TestRuleMetricsConsistent: every mined rule's confidence equals
// support(A∪C)/support(A) recomputed from raw transactions.
func TestRuleMetricsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		txns := make([]Transaction, 1+rng.Intn(30))
		for i := range txns {
			var items []Item
			for it := 0; it < 6; it++ {
				if rng.Intn(2) == 0 {
					items = append(items, Item(it))
				}
			}
			txns[i] = NormalizeTransaction(items)
		}
		rules, err := Mine(txns, Config{MinSupport: 0.2, MinConfidence: 0.5, MaxLen: 3})
		if err != nil {
			return false
		}
		count := func(s Itemset) int {
			n := 0
			for _, tr := range txns {
				if s.SubsetOf(tr) {
					n++
				}
			}
			return n
		}
		for _, r := range rules {
			union := NormalizeTransaction(append(append([]Item{}, r.Antecedent...), r.Consequent...))
			wantConf := float64(count(Itemset(union))) / float64(count(r.Antecedent))
			if abs(r.Confidence-wantConf) > 1e-9 {
				return false
			}
			wantSup := float64(count(Itemset(union))) / float64(len(txns))
			if abs(r.Support-wantSup) > 1e-9 {
				return false
			}
			if r.Confidence < 0.5-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestItemsetContains(t *testing.T) {
	s := Itemset{2, 4, 6}
	for _, c := range []struct {
		it   Item
		want bool
	}{{2, true}, {4, true}, {6, true}, {1, false}, {3, false}, {7, false}} {
		if got := s.Contains(c.it); got != c.want {
			t.Errorf("Contains(%d) = %v", c.it, got)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Antecedent: Itemset{1}, Consequent: Itemset{2}, Support: 0.5, Confidence: 0.75}
	if r.String() == "" {
		t.Fatal("empty rule string")
	}
}

func TestFrequentItemsetsExactSupportBoundary(t *testing.T) {
	// 100 transactions; item 1 appears in exactly 7 of them, item 2 in all.
	// At minSupport 0.07 the float product 0.07*100 = 7.000000000000001, so
	// a naive ceiling inflates the count threshold to 8 and drops item 1
	// even though its support is exactly at the boundary.
	txns := make([]Transaction, 100)
	for i := range txns {
		if i < 7 {
			txns[i] = txn(1, 2)
		} else {
			txns[i] = txn(2)
		}
	}
	frequent := FrequentItemsets(txns, 0.07, 2)
	if got, ok := supportOf(frequent, 1); !ok || got != 7 {
		t.Fatalf("item 1 at exact boundary: count %d, present %v; want 7, true", got, ok)
	}
	if got, ok := supportOf(frequent, 1, 2); !ok || got != 7 {
		t.Fatalf("pair {1,2} at exact boundary: count %d, present %v; want 7, true", got, ok)
	}
	// Nudging the threshold just above the boundary must still exclude it.
	frequent = FrequentItemsets(txns, 0.071, 2)
	if _, ok := supportOf(frequent, 1); ok {
		t.Fatal("item 1 reported frequent above the boundary")
	}
}

func TestFrequentItemsetsBoundarySweep(t *testing.T) {
	// For every achievable support k/n the epsilon-guarded threshold must
	// behave as an exact rational comparison: minSupport = k/n keeps an item
	// appearing k times, and any larger achievable support drops it.
	const n = 96
	for k := 1; k <= n; k++ {
		txns := make([]Transaction, n)
		for i := range txns {
			if i < k {
				txns[i] = txn(1)
			} else {
				txns[i] = txn(2)
			}
		}
		sup := float64(k) / float64(n)
		if _, ok := supportOf(FrequentItemsets(txns, sup, 1), 1); !ok {
			t.Fatalf("item with support %d/%d dropped at minSupport %v", k, n, sup)
		}
		if k < n {
			above := float64(k+1) / float64(n)
			if _, ok := supportOf(FrequentItemsets(txns, above, 1), 1); ok {
				t.Fatalf("item with support %d/%d kept at minSupport %v", k, n, above)
			}
		}
	}
}
