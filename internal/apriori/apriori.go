// Package apriori implements the Apriori algorithm of Agrawal & Srikant
// (VLDB 1994): level-wise frequent-itemset mining with candidate pruning,
// followed by association-rule generation. Items are dense int32
// identifiers; transactions are sorted, duplicate-free item slices. The
// association-rule predictor uses it with itemsets of size two to obtain
// the paper's unary rules, but the miner is general.
package apriori

import (
	"fmt"
	"math"
	"sort"
)

// Item is a dense item identifier.
type Item = int32

// Transaction is a sorted, duplicate-free set of items.
type Transaction []Item

// Itemset is a sorted, duplicate-free set of items.
type Itemset []Item

// key encodes an itemset as a map key.
func (s Itemset) key() string {
	b := make([]byte, 0, len(s)*4)
	for _, it := range s {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// Contains reports whether the sorted itemset contains item.
func (s Itemset) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// SubsetOf reports whether s ⊆ t for sorted itemsets.
func (s Itemset) SubsetOf(t Transaction) bool {
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j >= len(t) || t[j] != it {
			return false
		}
		j++
	}
	return true
}

// Support pairs an itemset with its absolute transaction count.
type Support struct {
	Items Itemset
	Count int
}

// Rule is an association rule Antecedent → Consequent.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	// Support is the relative support of Antecedent ∪ Consequent.
	Support float64
	// Confidence is support(A ∪ C) / support(A).
	Confidence float64
}

// String renders the rule as "A -> C (sup, conf)".
func (r Rule) String() string {
	return fmt.Sprintf("%v -> %v (sup %.4f, conf %.2f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Config bundles the mining parameters.
type Config struct {
	// MinSupport is the minimum relative support, in (0, 1].
	MinSupport float64
	// MinConfidence is the minimum rule confidence, in (0, 1].
	MinConfidence float64
	// MaxLen caps the itemset size explored (2 yields unary rules).
	MaxLen int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MinSupport <= 0 || c.MinSupport > 1 {
		return fmt.Errorf("apriori: MinSupport %v out of (0,1]", c.MinSupport)
	}
	if c.MinConfidence <= 0 || c.MinConfidence > 1 {
		return fmt.Errorf("apriori: MinConfidence %v out of (0,1]", c.MinConfidence)
	}
	if c.MaxLen < 1 {
		return fmt.Errorf("apriori: MaxLen %d < 1", c.MaxLen)
	}
	return nil
}

// supportEpsilon absorbs the float error of minSupport*len(txns) products
// when computing the integer count threshold. It must stay well below
// 1/len(txns) for any realistic transaction count so it can never admit a
// count that is genuinely under the threshold.
const supportEpsilon = 1e-9

// FrequentItemsets mines all itemsets with relative support >= minSupport
// and size <= maxLen, level-wise with subset pruning. The result is sorted
// by size, then lexicographically.
func FrequentItemsets(txns []Transaction, minSupport float64, maxLen int) []Support {
	if len(txns) == 0 || minSupport <= 0 {
		return nil
	}
	// minCount is ceil(minSupport * len(txns)), with an epsilon guard: at
	// exact-support boundaries the product can land a hair above the true
	// integer (0.07 * 100 = 7.000000000000001), and a naive ceiling would
	// inflate the threshold by one and silently drop qualifying itemsets.
	minCount := int(math.Ceil(minSupport*float64(len(txns)) - supportEpsilon))
	if minCount < 1 {
		minCount = 1
	}

	// L1.
	singles := make(map[Item]int)
	for _, t := range txns {
		for _, it := range t {
			singles[it]++
		}
	}
	var frequent []Support
	level := make(map[string]int)
	var levelSets []Itemset
	for it, c := range singles {
		if c >= minCount {
			levelSets = append(levelSets, Itemset{it})
			level[Itemset{it}.key()] = c
		}
	}
	sortItemsets(levelSets)
	for _, s := range levelSets {
		frequent = append(frequent, Support{Items: s, Count: level[s.key()]})
	}

	prev := level
	prevSets := levelSets
	for k := 2; k <= maxLen && len(prevSets) >= 2; k++ {
		candidates := generateCandidates(prevSets, prev)
		if len(candidates) == 0 {
			break
		}
		counts := countCandidates(txns, candidates, k)
		level = make(map[string]int)
		levelSets = levelSets[:0]
		for i, c := range candidates {
			if counts[i] >= minCount {
				level[c.key()] = counts[i]
				levelSets = append(levelSets, c)
			}
		}
		sortItemsets(levelSets)
		for _, s := range levelSets {
			frequent = append(frequent, Support{Items: s, Count: level[s.key()]})
		}
		prev = level
		prevSets = append([]Itemset(nil), levelSets...)
	}
	return frequent
}

// generateCandidates joins the (k-1)-itemsets that share their first k-2
// items and prunes candidates having an infrequent (k-1)-subset.
func generateCandidates(prevSets []Itemset, prev map[string]int) []Itemset {
	var out []Itemset
	for i := 0; i < len(prevSets); i++ {
		for j := i + 1; j < len(prevSets); j++ {
			a, b := prevSets[i], prevSets[j]
			if !samePrefix(a, b) {
				// prevSets is sorted lexicographically; once prefixes
				// diverge, later j cannot match either.
				break
			}
			cand := make(Itemset, len(a)+1)
			copy(cand, a)
			last := b[len(b)-1]
			if last <= a[len(a)-1] {
				continue
			}
			cand[len(a)] = last
			if hasInfrequentSubset(cand, prev) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

func samePrefix(a, b Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasInfrequentSubset checks the Apriori pruning condition: every (k-1)-
// subset of cand must be frequent.
func hasInfrequentSubset(cand Itemset, prev map[string]int) bool {
	sub := make(Itemset, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if _, ok := prev[sub.key()]; !ok {
			return true
		}
	}
	return false
}

// countCandidates counts candidate occurrences by enumerating each
// transaction's k-subsets against a candidate hash. Infobox-week
// transactions are small, so the enumeration is cheap; k is typically 2.
func countCandidates(txns []Transaction, candidates []Itemset, k int) []int {
	index := make(map[string]int, len(candidates))
	for i, c := range candidates {
		index[c.key()] = i
	}
	counts := make([]int, len(candidates))
	if k == 2 {
		// Fast path for the common case.
		pair := make(Itemset, 2)
		for _, t := range txns {
			for i := 0; i < len(t); i++ {
				for j := i + 1; j < len(t); j++ {
					pair[0], pair[1] = t[i], t[j]
					if idx, ok := index[pair.key()]; ok {
						counts[idx]++
					}
				}
			}
		}
		return counts
	}
	comb := make(Itemset, k)
	for _, t := range txns {
		if len(t) < k {
			continue
		}
		enumerate(t, comb, 0, 0, func(s Itemset) {
			if idx, ok := index[s.key()]; ok {
				counts[idx]++
			}
		})
	}
	return counts
}

// enumerate visits all |comb|-subsets of t.
func enumerate(t Transaction, comb Itemset, start, depth int, visit func(Itemset)) {
	if depth == len(comb) {
		visit(comb)
		return
	}
	for i := start; i <= len(t)-(len(comb)-depth); i++ {
		comb[depth] = t[i]
		enumerate(t, comb, i+1, depth+1, visit)
	}
}

// Mine runs the full pipeline: frequent itemsets, then every rule A → C
// with A ∪ C frequent, A and C a non-empty disjoint partition, and
// confidence >= cfg.MinConfidence. Rules are sorted by descending
// confidence, then support, then antecedent.
func Mine(txns []Transaction, cfg Config) ([]Rule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	frequent := FrequentItemsets(txns, cfg.MinSupport, cfg.MaxLen)
	counts := make(map[string]int, len(frequent))
	for _, f := range frequent {
		counts[f.Items.key()] = f.Count
	}
	n := float64(len(txns))
	var rules []Rule
	for _, f := range frequent {
		if len(f.Items) < 2 {
			continue
		}
		partitions(f.Items, func(ante, cons Itemset) {
			anteCount, ok := counts[ante.key()]
			if !ok || anteCount == 0 {
				return
			}
			conf := float64(f.Count) / float64(anteCount)
			if conf+1e-12 < cfg.MinConfidence {
				return
			}
			rules = append(rules, Rule{
				Antecedent: append(Itemset(nil), ante...),
				Consequent: append(Itemset(nil), cons...),
				Support:    float64(f.Count) / n,
				Confidence: conf,
			})
		})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return lessItemset(rules[i].Antecedent, rules[j].Antecedent)
	})
	return rules, nil
}

// partitions visits every split of items into non-empty antecedent and
// consequent.
func partitions(items Itemset, visit func(ante, cons Itemset)) {
	n := len(items)
	var ante, cons Itemset
	for mask := 1; mask < (1<<n)-1; mask++ {
		ante, cons = ante[:0], cons[:0]
		for i, it := range items {
			if mask&(1<<i) != 0 {
				ante = append(ante, it)
			} else {
				cons = append(cons, it)
			}
		}
		visit(ante, cons)
	}
}

func sortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return lessItemset(sets[i], sets[j]) })
}

func lessItemset(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// NormalizeTransaction sorts and deduplicates items in place, returning the
// canonical transaction.
func NormalizeTransaction(items []Item) Transaction {
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	out := items[:0]
	for i, it := range items {
		if i == 0 || it != items[i-1] {
			out = append(out, it)
		}
	}
	return Transaction(out)
}
