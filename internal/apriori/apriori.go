// Package apriori implements the Apriori algorithm of Agrawal & Srikant
// (VLDB 1994): level-wise frequent-itemset mining with candidate pruning,
// followed by association-rule generation. Items are dense int32
// identifiers; transactions are sorted, duplicate-free item slices. The
// association-rule predictor uses it with itemsets of size two to obtain
// the paper's unary rules, but the miner is general.
//
// Candidate counting uses vertical TID bitmaps (see bitmap.go): items are
// interned to dense IDs, each frequent item carries a bitmap of the
// transactions containing it, and a candidate's support is the popcount
// of the AND of its members' bitmaps, counted in parallel over a bounded
// worker pool. The output is bit-identical to the classic horizontal
// counting pass retained in classic.go as the differential-testing
// reference.
package apriori

import (
	"fmt"
	"math"
	"sort"
)

// Item is a dense item identifier.
type Item = int32

// Transaction is a sorted, duplicate-free set of items.
type Transaction []Item

// Itemset is a sorted, duplicate-free set of items.
type Itemset []Item

// Contains reports whether the sorted itemset contains item.
func (s Itemset) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// SubsetOf reports whether s ⊆ t for sorted itemsets.
func (s Itemset) SubsetOf(t Transaction) bool {
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j >= len(t) || t[j] != it {
			return false
		}
		j++
	}
	return true
}

// Support pairs an itemset with its absolute transaction count.
type Support struct {
	Items Itemset
	Count int
}

// Rule is an association rule Antecedent → Consequent.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	// Support is the relative support of Antecedent ∪ Consequent.
	Support float64
	// Confidence is support(A ∪ C) / support(A).
	Confidence float64
}

// String renders the rule as "A -> C (sup, conf)".
func (r Rule) String() string {
	return fmt.Sprintf("%v -> %v (sup %.4f, conf %.2f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Config bundles the mining parameters.
type Config struct {
	// MinSupport is the minimum relative support, in (0, 1].
	MinSupport float64
	// MinConfidence is the minimum rule confidence, in (0, 1].
	MinConfidence float64
	// MaxLen caps the itemset size explored (2 yields unary rules).
	MaxLen int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MinSupport <= 0 || c.MinSupport > 1 {
		return fmt.Errorf("apriori: MinSupport %v out of (0,1]", c.MinSupport)
	}
	if c.MinConfidence <= 0 || c.MinConfidence > 1 {
		return fmt.Errorf("apriori: MinConfidence %v out of (0,1]", c.MinConfidence)
	}
	if c.MaxLen < 1 {
		return fmt.Errorf("apriori: MaxLen %d < 1", c.MaxLen)
	}
	return nil
}

// supportEpsilon absorbs the float error of minSupport*len(txns) products
// when computing the integer count threshold. It must stay well below
// 1/len(txns) for any realistic transaction count so it can never admit a
// count that is genuinely under the threshold.
const supportEpsilon = 1e-9

// minCountFor converts a relative support into the integer count
// threshold, with an epsilon guard: at exact-support boundaries the
// product can land a hair above the true integer (0.07 * 100 =
// 7.000000000000001), and a naive ceiling would inflate the threshold by
// one and silently drop qualifying itemsets.
func minCountFor(minSupport float64, n int) int {
	minCount := int(math.Ceil(minSupport*float64(n) - supportEpsilon))
	if minCount < 1 {
		minCount = 1
	}
	return minCount
}

// FrequentItemsets mines all itemsets with relative support >= minSupport
// and size <= maxLen, level-wise with subset pruning over vertical TID
// bitmaps. The result is sorted by size, then lexicographically.
func FrequentItemsets(txns []Transaction, minSupport float64, maxLen int) []Support {
	if len(txns) == 0 || minSupport <= 0 {
		return nil
	}
	minCount := minCountFor(minSupport, len(txns))
	v := newVertical(txns, minCount)

	// L1: the vertical layout keeps only frequent singles, in item order.
	var frequent []Support
	prevSets := make([]Itemset, len(v.items))
	for j := range v.items {
		prevSets[j] = Itemset{Item(j)}
		frequent = append(frequent, Support{Items: Itemset{v.items[j]}, Count: v.counts[j]})
	}

	// Levels k >= 2 work entirely in dense-ID space. Dense IDs are
	// assigned in ascending item order, so lexicographic order is
	// preserved and candidate generation emits sorted levels.
	for k := 2; k <= maxLen && len(prevSets) >= 2; k++ {
		candidates := generateCandidates(prevSets)
		if len(candidates) == 0 {
			break
		}
		counts := v.countCandidates(candidates)
		var level []Itemset
		for i, c := range candidates {
			if counts[i] >= minCount {
				level = append(level, c)
				frequent = append(frequent, Support{Items: v.original(c), Count: counts[i]})
			}
		}
		prevSets = level
	}
	return frequent
}

// generateCandidates joins the (k-1)-itemsets that share their first k-2
// items and prunes candidates having an infrequent (k-1)-subset. prevSets
// must be lexicographically sorted; the output is too: the outer index
// fixes the prefix in ascending order and the inner index appends
// ascending last elements.
func generateCandidates(prevSets []Itemset) []Itemset {
	if len(prevSets) > 0 && len(prevSets[0]) == 1 {
		// k == 2 fast path: every ordered pair of frequent singles joins
		// (the empty prefixes trivially match), and both 1-subsets of a
		// pair are frequent by construction, so subset pruning can never
		// fire. One backing array serves all candidates.
		m := len(prevSets)
		out := make([]Itemset, 0, m*(m-1)/2)
		backing := make([]Item, 0, m*(m-1))
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				backing = append(backing, prevSets[i][0], prevSets[j][0])
				out = append(out, Itemset(backing[len(backing)-2:]))
			}
		}
		return out
	}
	var out []Itemset
	for i := 0; i < len(prevSets); i++ {
		for j := i + 1; j < len(prevSets); j++ {
			a, b := prevSets[i], prevSets[j]
			if !samePrefix(a, b) {
				// prevSets is sorted lexicographically; once prefixes
				// diverge, later j cannot match either.
				break
			}
			last := b[len(b)-1]
			if last <= a[len(a)-1] {
				continue
			}
			cand := make(Itemset, len(a)+1)
			copy(cand, a)
			cand[len(a)] = last
			if hasInfrequentSubset(cand, prevSets) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

func samePrefix(a, b Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasInfrequentSubset checks the Apriori pruning condition: every (k-1)-
// subset of cand must be frequent, i.e. present in the sorted previous
// level.
func hasInfrequentSubset(cand Itemset, prevSets []Itemset) bool {
	sub := make(Itemset, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !containsItemset(prevSets, sub) {
			return true
		}
	}
	return false
}

// containsItemset binary-searches a lexicographically sorted set list.
func containsItemset(sets []Itemset, s Itemset) bool {
	lo := sort.Search(len(sets), func(i int) bool { return !lessItemset(sets[i], s) })
	return lo < len(sets) && equalItemset(sets[lo], s)
}

// supportIndex looks up itemset supports in a FrequentItemsets result,
// exploiting its ordering: sizes are contiguous and each size group is
// lexicographically sorted, so a lookup is one binary search — no string
// keys involved.
type supportIndex struct {
	groups map[int][]Support
}

func newSupportIndex(frequent []Support) supportIndex {
	groups := make(map[int][]Support)
	start := 0
	for i := 1; i <= len(frequent); i++ {
		if i == len(frequent) || len(frequent[i].Items) != len(frequent[start].Items) {
			groups[len(frequent[start].Items)] = frequent[start:i]
			start = i
		}
	}
	return supportIndex{groups: groups}
}

func (x supportIndex) count(s Itemset) (int, bool) {
	g := x.groups[len(s)]
	lo := sort.Search(len(g), func(i int) bool { return !lessItemset(g[i].Items, s) })
	if lo < len(g) && equalItemset(g[lo].Items, s) {
		return g[lo].Count, true
	}
	return 0, false
}

// Mine runs the full pipeline: frequent itemsets, then every rule A → C
// with A ∪ C frequent, A and C a non-empty disjoint partition, and
// confidence >= cfg.MinConfidence. Rules are sorted by descending
// confidence, then support, then antecedent.
func Mine(txns []Transaction, cfg Config) ([]Rule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	frequent := FrequentItemsets(txns, cfg.MinSupport, cfg.MaxLen)
	return rulesFromFrequent(frequent, len(txns), cfg), nil
}

// rulesFromFrequent generates and ranks the rules of a frequent-itemset
// result. Shared by Mine and the classic reference miner so the two can
// differ only in how supports are counted.
func rulesFromFrequent(frequent []Support, nTxns int, cfg Config) []Rule {
	counts := newSupportIndex(frequent)
	n := float64(nTxns)
	var rules []Rule
	for _, f := range frequent {
		if len(f.Items) < 2 {
			continue
		}
		partitions(f.Items, func(ante, cons Itemset) {
			anteCount, ok := counts.count(ante)
			if !ok || anteCount == 0 {
				return
			}
			conf := float64(f.Count) / float64(anteCount)
			if conf+1e-12 < cfg.MinConfidence {
				return
			}
			rules = append(rules, Rule{
				Antecedent: append(Itemset(nil), ante...),
				Consequent: append(Itemset(nil), cons...),
				Support:    float64(f.Count) / n,
				Confidence: conf,
			})
		})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return lessItemset(rules[i].Antecedent, rules[j].Antecedent)
	})
	return rules
}

// partitions visits every split of items into non-empty antecedent and
// consequent.
func partitions(items Itemset, visit func(ante, cons Itemset)) {
	n := len(items)
	var ante, cons Itemset
	for mask := 1; mask < (1<<n)-1; mask++ {
		ante, cons = ante[:0], cons[:0]
		for i, it := range items {
			if mask&(1<<i) != 0 {
				ante = append(ante, it)
			} else {
				cons = append(cons, it)
			}
		}
		visit(ante, cons)
	}
}

func sortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return lessItemset(sets[i], sets[j]) })
}

func lessItemset(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalItemset(a, b Itemset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NormalizeTransaction sorts and deduplicates items in place, returning the
// canonical transaction.
func NormalizeTransaction(items []Item) Transaction {
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	out := items[:0]
	for i, it := range items {
		if i == 0 || it != items[i-1] {
			out = append(out, it)
		}
	}
	return Transaction(out)
}
