package apriori

// The classic horizontal-counting Apriori, retained verbatim (modulo the
// shared candidate generator) as the differential-testing reference for
// the vertical-bitmap fast path in bitmap.go. It is never used on the
// production path; TestBitmapMatchesClassic asserts bit-identical output
// over randomized transaction sets.

// key encodes an itemset as a map key: a 4-byte little-endian length
// prefix followed by each item in fixed-width 4-byte little-endian form.
// Both parts matter for injectivity — a separator-joined or truncating
// encoding lets items whose bytes contain the separator collide two
// distinct itemsets into one key (see TestItemsetKeyAdversarial). The hot
// path no longer uses string keys at all; this survives only for the
// classic reference maps and tests.
func (s Itemset) key() string {
	b := make([]byte, 0, 4+len(s)*4)
	n := len(s)
	b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	for _, it := range s {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// frequentItemsetsClassic is the original O(candidates × transactions)
// level-wise miner: candidates are counted by enumerating each
// transaction's k-subsets against a candidate hash.
func frequentItemsetsClassic(txns []Transaction, minSupport float64, maxLen int) []Support {
	if len(txns) == 0 || minSupport <= 0 {
		return nil
	}
	minCount := minCountFor(minSupport, len(txns))

	// L1.
	singles := make(map[Item]int)
	for _, t := range txns {
		for _, it := range t {
			singles[it]++
		}
	}
	var frequent []Support
	level := make(map[string]int)
	var levelSets []Itemset
	for it, c := range singles {
		if c >= minCount {
			levelSets = append(levelSets, Itemset{it})
			level[Itemset{it}.key()] = c
		}
	}
	sortItemsets(levelSets)
	for _, s := range levelSets {
		frequent = append(frequent, Support{Items: s, Count: level[s.key()]})
	}

	prevSets := levelSets
	for k := 2; k <= maxLen && len(prevSets) >= 2; k++ {
		candidates := generateCandidates(prevSets)
		if len(candidates) == 0 {
			break
		}
		counts := countCandidatesClassic(txns, candidates, k)
		level = make(map[string]int)
		levelSets = levelSets[:0]
		for i, c := range candidates {
			if counts[i] >= minCount {
				level[c.key()] = counts[i]
				levelSets = append(levelSets, c)
			}
		}
		sortItemsets(levelSets)
		for _, s := range levelSets {
			frequent = append(frequent, Support{Items: s, Count: level[s.key()]})
		}
		prevSets = append([]Itemset(nil), levelSets...)
	}
	return frequent
}

// mineClassic is Mine over the classic counting pass; rule generation is
// shared, so any divergence from Mine pins the blame on the itemset
// miners.
func mineClassic(txns []Transaction, cfg Config) ([]Rule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	frequent := frequentItemsetsClassic(txns, cfg.MinSupport, cfg.MaxLen)
	return rulesFromFrequent(frequent, len(txns), cfg), nil
}

// countCandidatesClassic counts candidate occurrences by enumerating each
// transaction's k-subsets against a candidate hash. Infobox-week
// transactions are small, so the enumeration is cheap; k is typically 2.
func countCandidatesClassic(txns []Transaction, candidates []Itemset, k int) []int {
	index := make(map[string]int, len(candidates))
	for i, c := range candidates {
		index[c.key()] = i
	}
	counts := make([]int, len(candidates))
	if k == 2 {
		// Fast path for the common case.
		pair := make(Itemset, 2)
		for _, t := range txns {
			for i := 0; i < len(t); i++ {
				for j := i + 1; j < len(t); j++ {
					pair[0], pair[1] = t[i], t[j]
					if idx, ok := index[pair.key()]; ok {
						counts[idx]++
					}
				}
			}
		}
		return counts
	}
	comb := make(Itemset, k)
	for _, t := range txns {
		if len(t) < k {
			continue
		}
		enumerate(t, comb, 0, 0, func(s Itemset) {
			if idx, ok := index[s.key()]; ok {
				counts[idx]++
			}
		})
	}
	return counts
}

// enumerate visits all |comb|-subsets of t.
func enumerate(t Transaction, comb Itemset, start, depth int, visit func(Itemset)) {
	if depth == len(comb) {
		visit(comb)
		return
	}
	for i := start; i <= len(t)-(len(comb)-depth); i++ {
		comb[depth] = t[i]
		enumerate(t, comb, i+1, depth+1, visit)
	}
}
