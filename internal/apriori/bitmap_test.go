package apriori

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomTxns draws transactions over a universe of sparse, adversarially
// chosen item values: small IDs, values whose little-endian bytes contain
// common separator bytes (0x00, ',', 0xFF), and values near the int32
// extremes.
func randomTxns(rng *rand.Rand, maxTxns, maxUniverse int) []Transaction {
	universe := []Item{
		0, 1, 2, 3, 44, 0x2C, 0x2C2C, 0x2C2C2C, 0x2C0000, 0xFF, 0xFF00,
		0x00FF00FF, 1 << 20, 1<<31 - 1, 1<<31 - 2, 256, 257, 65536,
	}
	if maxUniverse < len(universe) {
		universe = universe[:maxUniverse]
	}
	txns := make([]Transaction, 1+rng.Intn(maxTxns))
	for i := range txns {
		var items []Item
		for _, it := range universe {
			if rng.Intn(3) == 0 {
				items = append(items, it)
			}
		}
		txns[i] = NormalizeTransaction(items)
	}
	return txns
}

// TestBitmapMatchesClassic is the fast path's correctness contract:
// vertical-bitmap mining must be bit-identical to the classic horizontal
// counting pass — same itemsets, same counts, same order — over
// randomized transaction sets, supports, and depth caps.
func TestBitmapMatchesClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 120; iter++ {
		txns := randomTxns(rng, 40, 6+rng.Intn(12))
		minSup := []float64{0.05, 0.1, 0.25, 0.5, 0.9}[rng.Intn(5)]
		maxLen := 1 + rng.Intn(5)
		got := FrequentItemsets(txns, minSup, maxLen)
		want := frequentItemsetsClassic(txns, minSup, maxLen)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: bitmap %v != classic %v (txns=%v minSup=%v maxLen=%d)",
				iter, got, want, txns, minSup, maxLen)
		}
	}
}

// TestMineBitmapMatchesClassic extends the equivalence through rule
// generation: Mine over the bitmap counts must produce rule lists
// reflect.DeepEqual to the classic miner's — identical floats included,
// since both divide the same integer counts.
func TestMineBitmapMatchesClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 80; iter++ {
		txns := randomTxns(rng, 30, 8)
		cfg := Config{
			MinSupport:    []float64{0.1, 0.2, 0.4}[rng.Intn(3)],
			MinConfidence: []float64{0.5, 0.7, 0.9}[rng.Intn(3)],
			MaxLen:        1 + rng.Intn(4),
		}
		got, err := Mine(txns, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mineClassic(txns, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: bitmap rules %v != classic rules %v (txns=%v cfg=%+v)",
				iter, got, want, txns, cfg)
		}
	}
}

// TestItemsetKeyAdversarial locks the injectivity of the classic
// reference's map key. The itemsets below are built from items whose byte
// encodings contain separator-like bytes (0x00, ',' = 0x2C, 0xFF): under
// a separator-joined or length-truncating encoding several of them
// collide into one key; under the length-prefixed fixed-width encoding
// every pair must differ.
func TestItemsetKeyAdversarial(t *testing.T) {
	sets := []Itemset{
		{},
		{0},
		{0, 0x2C},
		{0x2C},
		{0x2C2C},
		{0x2C, 0x2C2C},
		{0x2C, 0x2C2C2C},
		{0x2C2C, 0x2C2C2C},
		{0x2C0000, 0x2C00, 0x2C},
		{0xFF},
		{0xFF, 0xFF00},
		{0xFF00FF},
		{1, 256},
		{257},
		{1, 2, 3},
		{0x010203},
		{0x0102, 0x03},
		{0x01, 0x0203},
	}
	seen := make(map[string]Itemset, len(sets))
	for _, s := range sets {
		k := s.key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("itemsets %v and %v collide on key %q", prev, s, k)
		}
		seen[k] = s
	}
}

// TestAdversarialItemsMine runs the full miner over transactions whose
// items carry the adversarial byte patterns, cross-checked against the
// classic reference — a regression net for any future key or interning
// change.
func TestAdversarialItemsMine(t *testing.T) {
	txns := []Transaction{
		NormalizeTransaction([]Item{0x2C, 0x2C2C, 0x2C2C2C}),
		NormalizeTransaction([]Item{0x2C, 0x2C2C}),
		NormalizeTransaction([]Item{0x2C, 0x2C2C2C, 0xFF00}),
		NormalizeTransaction([]Item{0x2C0000, 0x2C00, 0x2C}),
		NormalizeTransaction([]Item{0x2C, 0x2C2C, 0x2C0000}),
	}
	cfg := Config{MinSupport: 0.2, MinConfidence: 0.5, MaxLen: 3}
	got, err := Mine(txns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mineClassic(txns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adversarial items: bitmap rules %v != classic rules %v", got, want)
	}
	// The three distinct single items 0x2C, 0x2C2C, 0x2C2C2C must be
	// counted separately: 0x2C appears 5 times, 0x2C2C 3 times,
	// 0x2C2C2C 2 times.
	frequent := FrequentItemsets(txns, 0.2, 1)
	wantCounts := map[Item]int{0x2C: 5, 0x2C2C: 3, 0x2C2C2C: 2, 0x2C0000: 2, 0x2C00: 1, 0xFF00: 1}
	for it, wantC := range wantCounts {
		found := false
		for _, f := range frequent {
			if len(f.Items) == 1 && f.Items[0] == it {
				if f.Count != wantC {
					t.Errorf("item %#x: count %d, want %d", it, f.Count, wantC)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("item %#x missing from frequent singles", it)
		}
	}
}
