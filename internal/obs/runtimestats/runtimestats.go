// Package runtimestats publishes the Go runtime's own telemetry into an
// obs.Registry, so the serving-performance picture on /metrics and
// /statusz includes where the *runtime* spends memory and time — heap
// live/idle bytes, GC pause quantiles, the GC's share of CPU, goroutine
// count, and scheduler latency quantiles. Under load these are the
// difference between "the handler is slow" and "the handler is fine but
// GC assists are stealing its cycles".
//
// Everything is read through runtime/metrics in one batched Read call, so
// a sample costs microseconds and is safe at scrape time: the serving
// layer calls Sample before rendering /metrics, and a background Sampler
// (Start/Stop) keeps the gauges fresh between scrapes for push-style
// consumers. The package is dependency-free like the rest of internal/obs.
package runtimestats

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"github.com/wikistale/wikistale/internal/obs"
)

// The runtime/metrics names we sample. Reading them in one metrics.Read
// batch gives a consistent snapshot.
const (
	mGoroutines   = "/sched/goroutines:goroutines"
	mHeapLive     = "/memory/classes/heap/objects:bytes"
	mHeapFree     = "/memory/classes/heap/free:bytes"
	mHeapReleased = "/memory/classes/heap/released:bytes"
	mMemTotal     = "/memory/classes/total:bytes"
	mAllocBytes   = "/gc/heap/allocs:bytes"
	mGCCycles     = "/gc/cycles/total:gc-cycles"
	mGCPauses     = "/gc/pauses:seconds"
	mSchedLat     = "/sched/latencies:seconds"
	mCPUGC        = "/cpu/classes/gc/total:cpu-seconds"
	mCPUTotal     = "/cpu/classes/total:cpu-seconds"
)

// Published metric names (the wikistale_go_* family).
const (
	Goroutines     = "wikistale_go_goroutines"
	HeapLiveBytes  = "wikistale_go_heap_live_bytes"
	HeapIdleBytes  = "wikistale_go_heap_idle_bytes"
	MemTotalBytes  = "wikistale_go_mem_total_bytes"
	AllocBytes     = "wikistale_go_alloc_bytes_total"
	GCCycles       = "wikistale_go_gc_cycles_total"
	GCCPUFraction  = "wikistale_go_gc_cpu_fraction"
	GCPauseSeconds = "wikistale_go_gc_pause_seconds"
	SchedLatency   = "wikistale_go_sched_latency_seconds"
)

// quantiles are the points published for the runtime's cumulative
// latency histograms (GC pauses, scheduler latency), as gauges labeled
// q="0.5" etc. plus q="max".
var quantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
	{"max", 1.0},
}

// Sampler reads runtime/metrics and publishes into a registry. Create
// with New; use Sample for one synchronous read (scrape time) or
// Start/Stop for a background loop. All methods are safe for concurrent
// use; concurrent Samples serialize on an internal mutex.
type Sampler struct {
	reg      *obs.Registry
	interval time.Duration

	mu      sync.Mutex
	samples []metrics.Sample

	// Monotonic baselines for delta-derived series.
	lastAlloc    uint64
	lastCycles   uint64
	lastCPUGC    float64
	lastCPUTotal float64
	primed       bool

	goroutines *obs.Gauge
	heapLive   *obs.Gauge
	heapIdle   *obs.Gauge
	memTotal   *obs.Gauge
	allocBytes *obs.Counter
	gcCycles   *obs.Counter
	gcCPU      *obs.Gauge

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// New returns a sampler publishing into reg (obs.Default when nil).
// interval is the background loop period for Start; Sample works
// regardless.
func New(reg *obs.Registry, interval time.Duration) *Sampler {
	if reg == nil {
		reg = obs.Default
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	reg.SetHelp(Goroutines, "Live goroutines.")
	reg.SetHelp(HeapLiveBytes, "Bytes of live heap objects (occupied by reachable or not-yet-swept allocations).")
	reg.SetHelp(HeapIdleBytes, "Heap bytes held but unused: free spans plus memory released to the OS.")
	reg.SetHelp(MemTotalBytes, "Total bytes of memory mapped by the Go runtime.")
	reg.SetHelp(AllocBytes, "Cumulative bytes allocated on the heap.")
	reg.SetHelp(GCCycles, "Completed GC cycles.")
	reg.SetHelp(GCCPUFraction, "Fraction of available CPU spent on GC between the last two samples (lifetime fraction until the second sample).")
	reg.SetHelp(GCPauseSeconds, "Stop-the-world GC pause quantiles over the process lifetime, labeled q=0.5/0.9/0.99/max.")
	reg.SetHelp(SchedLatency, "Goroutine scheduling latency quantiles (runnable to running) over the process lifetime, labeled q=0.5/0.9/0.99/max.")

	names := []string{
		mGoroutines, mHeapLive, mHeapFree, mHeapReleased, mMemTotal,
		mAllocBytes, mGCCycles, mGCPauses, mSchedLat, mCPUGC, mCPUTotal,
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		samples:  make([]metrics.Sample, len(names)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),

		goroutines: reg.Gauge(Goroutines, nil),
		heapLive:   reg.Gauge(HeapLiveBytes, nil),
		heapIdle:   reg.Gauge(HeapIdleBytes, nil),
		memTotal:   reg.Gauge(MemTotalBytes, nil),
		allocBytes: reg.Counter(AllocBytes, nil),
		gcCycles:   reg.Counter(GCCycles, nil),
		gcCPU:      reg.Gauge(GCCPUFraction, nil),
	}
	for i, n := range names {
		s.samples[i].Name = n
	}
	return s
}

// Sample reads the runtime metrics once and updates every published
// series. Cheap enough to call per scrape.
func (s *Sampler) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	byName := make(map[string]metrics.Value, len(s.samples))
	for _, sm := range s.samples {
		byName[sm.Name] = sm.Value
	}

	if v := byName[mGoroutines]; v.Kind() == metrics.KindUint64 {
		s.goroutines.Set(float64(v.Uint64()))
	}
	if v := byName[mHeapLive]; v.Kind() == metrics.KindUint64 {
		s.heapLive.Set(float64(v.Uint64()))
	}
	var idle uint64
	if v := byName[mHeapFree]; v.Kind() == metrics.KindUint64 {
		idle += v.Uint64()
	}
	if v := byName[mHeapReleased]; v.Kind() == metrics.KindUint64 {
		idle += v.Uint64()
	}
	s.heapIdle.Set(float64(idle))
	if v := byName[mMemTotal]; v.Kind() == metrics.KindUint64 {
		s.memTotal.Set(float64(v.Uint64()))
	}

	// Monotonic runtime totals become counters by adding the delta since
	// the previous sample (the first sample seeds the whole lifetime).
	if v := byName[mAllocBytes]; v.Kind() == metrics.KindUint64 {
		if cur := v.Uint64(); cur >= s.lastAlloc {
			s.allocBytes.Add(cur - s.lastAlloc)
			s.lastAlloc = cur
		}
	}
	if v := byName[mGCCycles]; v.Kind() == metrics.KindUint64 {
		if cur := v.Uint64(); cur >= s.lastCycles {
			s.gcCycles.Add(cur - s.lastCycles)
			s.lastCycles = cur
		}
	}

	// GC CPU fraction: the share of all CPU the GC consumed between this
	// sample and the last. The very first sample has no interval, so it
	// publishes the lifetime fraction instead.
	gc, total := cpuSeconds(byName[mCPUGC]), cpuSeconds(byName[mCPUTotal])
	dgc, dtotal := gc-s.lastCPUGC, total-s.lastCPUTotal
	if !s.primed {
		dgc, dtotal = gc, total
	}
	if dtotal > 0 && dgc >= 0 {
		s.gcCPU.Set(dgc / dtotal)
	}
	s.lastCPUGC, s.lastCPUTotal = gc, total
	s.primed = true

	s.publishQuantiles(GCPauseSeconds, byName[mGCPauses])
	s.publishQuantiles(SchedLatency, byName[mSchedLat])
}

func cpuSeconds(v metrics.Value) float64 {
	if v.Kind() != metrics.KindFloat64 {
		return 0
	}
	f := v.Float64()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// publishQuantiles turns one runtime cumulative histogram into q-labeled
// gauges. The runtime buckets are far finer than anything we would pick,
// so reading quantiles off the cumulative counts loses almost nothing and
// keeps /metrics small.
func (s *Sampler) publishQuantiles(name string, v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	if h == nil {
		return
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return
	}
	for _, q := range quantiles {
		s.reg.Gauge(name, obs.Labels{"q": q.label}).Set(histQuantile(h, q.q))
	}
}

// histQuantile reads quantile q (0..1] from a runtime/metrics histogram,
// returning the upper bound of the bucket the q-th observation falls in
// (a conservative estimate; max returns the highest non-empty bucket's
// bound). Infinite bounds degrade to the nearest finite neighbor.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c > 0 && cum >= rank {
			// Counts[i] covers (Buckets[i], Buckets[i+1]].
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, 0) {
				return hi
			}
			lo := h.Buckets[i]
			if !math.IsInf(lo, 0) {
				return lo
			}
			return 0
		}
	}
	return 0
}

// Start launches the background sampling loop. Start after Stop (or a
// second Start) is a no-op; the sampler is single-shot by design — serving
// processes create one at boot and stop it at shutdown.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		s.Sample()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// multiple times and without a prior Start.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
}
