package runtimestats

import (
	"runtime"
	"runtime/metrics"
	"testing"
	"time"

	"github.com/wikistale/wikistale/internal/obs"
)

// TestSamplePublishesAllSeries proves one Sample call lands every series
// the package promises, with sane values.
func TestSamplePublishesAllSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, time.Second)

	// Make sure at least one GC cycle (and so at least one pause
	// observation) exists before sampling.
	runtime.GC()
	s.Sample()

	fams := reg.JSON()
	for _, name := range []string{
		Goroutines, HeapLiveBytes, HeapIdleBytes, MemTotalBytes,
		AllocBytes, GCCycles, GCCPUFraction, GCPauseSeconds, SchedLatency,
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("series %s missing after Sample", name)
		}
	}

	if v := reg.Gauge(Goroutines, nil).Value(); v < 1 {
		t.Errorf("goroutines = %v, want >= 1", v)
	}
	if v := reg.Gauge(HeapLiveBytes, nil).Value(); v <= 0 {
		t.Errorf("heap live = %v, want > 0", v)
	}
	if v := reg.Gauge(MemTotalBytes, nil).Value(); v <= reg.Gauge(HeapLiveBytes, nil).Value() {
		t.Errorf("mem total %v not above heap live %v", v, reg.Gauge(HeapLiveBytes, nil).Value())
	}
	if v := reg.Counter(GCCycles, nil).Value(); v < 1 {
		t.Errorf("gc cycles = %d, want >= 1 after runtime.GC", v)
	}
	if v := reg.Counter(AllocBytes, nil).Value(); v == 0 {
		t.Errorf("alloc bytes = 0")
	}
	if v := reg.Gauge(GCCPUFraction, nil).Value(); v < 0 || v > 1 {
		t.Errorf("gc cpu fraction = %v, want [0, 1]", v)
	}

	// Quantile gauges exist for every labeled point and are monotone.
	for _, name := range []string{GCPauseSeconds, SchedLatency} {
		fam := fams[name]
		if len(fam.Series) != len(quantiles) && len(fam.Series) != 0 {
			// Sched latency can legitimately be empty on an idle runtime;
			// GC pauses cannot after runtime.GC.
			if name == GCPauseSeconds {
				t.Errorf("%s has %d series, want %d", name, len(fam.Series), len(quantiles))
			}
			continue
		}
		p50 := reg.Gauge(name, obs.Labels{"q": "0.5"}).Value()
		max := reg.Gauge(name, obs.Labels{"q": "max"}).Value()
		if p50 > max {
			t.Errorf("%s p50 %v > max %v", name, p50, max)
		}
	}
}

// TestCounterDeltas proves repeated samples add deltas, not lifetime
// totals, to the counter series.
func TestCounterDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, time.Second)
	s.Sample()
	first := reg.Counter(AllocBytes, nil).Value()

	// Allocate something measurable, then resample.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 16*1024)
	}
	s.Sample()
	second := reg.Counter(AllocBytes, nil).Value()
	if second < first {
		t.Fatalf("alloc counter went backwards: %d -> %d", first, second)
	}
	if second == first {
		t.Fatalf("alloc counter did not grow despite allocations")
	}
	// The counter must track the runtime's own total, not double-count.
	var sm [1]metrics.Sample
	sm[0].Name = "/gc/heap/allocs:bytes"
	metrics.Read(sm[:])
	if got, runtimeTotal := second, sm[0].Value.Uint64(); got > runtimeTotal {
		t.Fatalf("counter %d exceeds runtime lifetime total %d (double-counted deltas)", got, runtimeTotal)
	}
	_ = sink
}

// TestStartStopClean proves the background loop starts, samples, and
// shuts down cleanly (run under -race in CI).
func TestStartStopClean(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, time.Millisecond)
	s.Start()
	s.Start() // second Start is a no-op

	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge(Goroutines, nil).Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if reg.Gauge(Goroutines, nil).Value() < 1 {
		t.Fatalf("background loop never sampled")
	}

	s.Stop()
	s.Stop() // idempotent

	// Concurrent Sample after Stop is still safe (scrape-time path).
	s.Sample()
}

// TestStopWithoutStart must not hang.
func TestStopWithoutStart(t *testing.T) {
	s := New(obs.NewRegistry(), time.Second)
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop without Start hung")
	}
}

// TestHistQuantile pins the quantile arithmetic on a hand-built histogram.
func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		// (0,1] has 5 observations, (1,2] has 4, (2,3] has 1.
		Counts:  []uint64{5, 4, 1},
		Buckets: []float64{0, 1, 2, 3},
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 1},  // 5th of 10 lands in the first bucket
		{0.6, 2},  // 6th lands in the second
		{0.9, 2},  // 9th still in the second
		{0.99, 3}, // 10th in the last
		{1.0, 3},
	}
	for _, c := range cases {
		if got := histQuantile(h, c.q); got != c.want {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
	// Empty histogram.
	if got := histQuantile(&metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
