package obs

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-resolve the series every few iterations: registration
			// must be concurrency-safe, not just the increments.
			c := r.Counter("test_total", Labels{"worker": "shared"})
			for i := 0; i < perWorker; i++ {
				if i%100 == 0 {
					c = r.Counter("test_total", Labels{"worker": "shared"})
				}
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test_total", Labels{"worker": "shared"}).Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", nil)
	g.Set(3.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge after balanced inc/dec = %v, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	bounds, cum := h.Buckets()
	wantCum := []uint64{2, 3, 4} // le=0.1: {0.05, 0.1}; le=1: +0.5; le=10: +2
	for i := range bounds {
		if cum[i] != wantCum[i] {
			t.Errorf("bucket le=%v cumulative = %d, want %d", bounds[i], cum[i], wantCum[i])
		}
	}
	// Cumulative counts must be monotone and end at Count() via +Inf.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts not monotone: %v", cum)
		}
	}
	if cum[len(cum)-1] > h.Count() {
		t.Fatalf("last bound cumulative %d exceeds count %d", cum[len(cum)-1], h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", []float64{1}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-4000) > 1e-6 {
		t.Fatalf("sum = %v, want 4000", h.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("metric_total", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("metric_total", nil)
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.eE+-]+|\+Inf|NaN)$`)

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("requests_total", "Requests served.")
	r.Counter("requests_total", Labels{"route": "/x", "method": "GET"}).Add(7)
	r.Gauge("in_flight", nil).Set(2)
	r.Histogram("latency_seconds", []float64{0.1, 1}, Labels{"route": "/x"}).Observe(0.05)

	text := r.PrometheusText()
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{method="GET",route="/x"} 7`,
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{route="/x",le="0.1"} 1`,
		`latency_seconds_bucket{route="/x",le="+Inf"} 1`,
		`latency_seconds_sum{route="/x"} 0.05`,
		`latency_seconds_count{route="/x"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering lacks %q:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("odd_total", Labels{"v": "a\"b\\c\nd"}).Inc()
	text := r.PrometheusText()
	if !strings.Contains(text, `odd_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", text)
	}
}

func TestJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", Labels{"route": "/x"}).Add(3)
	r.Histogram("latency_seconds", []float64{1}, nil).Observe(0.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]JSONFamily
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	c := decoded["requests_total"]
	if c.Type != "counter" || len(c.Series) != 1 || *c.Series[0].Value != 3 {
		t.Fatalf("counter JSON = %+v", c)
	}
	h := decoded["latency_seconds"]
	if h.Type != "histogram" || *h.Series[0].Count != 1 || h.Series[0].Buckets["1"] != 1 {
		t.Fatalf("histogram JSON = %+v", h)
	}
}

func TestSpanRecordsStageHistogram(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("test/stage")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	h := r.Histogram(StageHistogram, nil, Labels{"stage": "test/stage"})
	if h.Count() != 1 {
		t.Fatalf("stage histogram count = %d, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("stage histogram sum = %v", h.Sum())
	}
}

func TestRenderDuringConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.Counter("churn_total", Labels{"i": string(rune('a' + i%26))}).Inc()
			r.ObserveStage("churn", time.Microsecond)
		}
	}()
	for i := 0; i < 50; i++ {
		_ = r.PrometheusText()
		_ = r.JSON()
	}
	<-done
}

func TestSetHelpBeforeRegistration(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("later_total", "Arrives before the metric.")
	r.Counter("later_total", nil).Inc()
	if !strings.Contains(r.PrometheusText(), "# HELP later_total Arrives before the metric.") {
		t.Fatal("stashed help lost")
	}
}
