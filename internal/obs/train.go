package obs

// Metric names of the training fast path (DESIGN.md §10). The constants
// live here so the producing packages (correlation, core, ingest) and the
// serving layer agree on the spelling; registration happens lazily at the
// first use, help strings eagerly below.
const (
	// PagesSkippedTotal counts pages dropped from the pairwise correlation
	// search by Config.MaxFieldsPerPage, labeled by predictor
	// ("correlation"). Before this counter the quadratic-bound skip was
	// silent, which read as "covered everything" when it didn't.
	PagesSkippedTotal = "wikistale_train_pages_skipped_total"

	// IncrementalRetrainsTotal counts correlation trainings that ran in
	// incremental mode (reusing rules of untouched pages).
	IncrementalRetrainsTotal = "wikistale_train_incremental_retrains_total"

	// IncrementalFullTotal counts trainings that fell back to a full
	// rebuild, labeled by reason ("cold", "forced", "norm_span").
	IncrementalFullTotal = "wikistale_train_incremental_full_rebuilds_total"

	// IncrementalPagesReusedTotal counts pages whose rules were carried
	// over from the previous predictor unchanged.
	IncrementalPagesReusedTotal = "wikistale_train_incremental_pages_reused_total"

	// IncrementalPagesRetrainedTotal counts pages whose pairwise search was
	// actually re-run.
	IncrementalPagesRetrainedTotal = "wikistale_train_incremental_pages_retrained_total"

	// IncrementalDirtyFields is the dirty-field count of the most recent
	// incremental training.
	IncrementalDirtyFields = "wikistale_train_incremental_dirty_fields"
)

func init() {
	Default.SetHelp(PagesSkippedTotal, "Pages dropped from the pairwise correlation search by MaxFieldsPerPage.")
	Default.SetHelp(IncrementalRetrainsTotal, "Correlation trainings that ran incrementally, reusing untouched pages' rules.")
	Default.SetHelp(IncrementalFullTotal, "Correlation trainings that rebuilt every page, by reason.")
	Default.SetHelp(IncrementalPagesReusedTotal, "Pages whose correlation rules were reused from the previous predictor.")
	Default.SetHelp(IncrementalPagesRetrainedTotal, "Pages whose pairwise correlation search was re-run.")
	Default.SetHelp(IncrementalDirtyFields, "Dirty-field count of the most recent incremental training.")
}
