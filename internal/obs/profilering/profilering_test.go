package profilering

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestHeapCaptureAndRetrieval(t *testing.T) {
	r := New(4, 0)
	ok, err := r.TryCapture(KindHeap, "test trip")
	if err != nil || !ok {
		t.Fatalf("TryCapture = %v, %v", ok, err)
	}
	ps := r.Profiles()
	if len(ps) != 1 || ps[0].Kind != KindHeap || ps[0].Reason != "test trip" {
		t.Fatalf("profiles = %+v", ps)
	}
	if ps[0].Bytes == 0 {
		t.Fatalf("empty heap profile")
	}
	if ps[0].Data != nil {
		t.Fatalf("listing leaked profile data")
	}
	p, found := r.Get(ps[0].ID)
	if !found || len(p.Data) != p.Bytes {
		t.Fatalf("Get: found=%v len=%d want %d", found, len(p.Data), p.Bytes)
	}
}

func TestCPUCapture(t *testing.T) {
	r := New(4, 0)
	r.CPUDuration = 50 * time.Millisecond
	ok, err := r.TryCapture(KindCPU, "latency burn")
	if err != nil || !ok {
		t.Fatalf("TryCapture = %v, %v", ok, err)
	}
	ps := r.Profiles()
	if len(ps) != 1 || ps[0].Kind != KindCPU || ps[0].DurationNS != (50*time.Millisecond).Nanoseconds() {
		t.Fatalf("profiles = %+v", ps)
	}
	if ps[0].Bytes == 0 {
		t.Fatalf("empty cpu profile")
	}
}

func TestCooldownAndEviction(t *testing.T) {
	r := New(2, time.Minute)
	now := time.Unix(1_700_000_000, 0)
	r.SetClock(func() time.Time { return now })

	if ok, _ := r.TryCapture(KindHeap, "first"); !ok {
		t.Fatalf("first capture refused")
	}
	// Inside the cooldown: refused, counted.
	if ok, _ := r.TryCapture(KindHeap, "too soon"); ok {
		t.Fatalf("capture inside cooldown accepted")
	}
	if r.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", r.Skipped())
	}

	// Advance past the cooldown twice; the 3rd capture evicts the 1st.
	now = now.Add(2 * time.Minute)
	if ok, _ := r.TryCapture(KindHeap, "second"); !ok {
		t.Fatalf("second capture refused")
	}
	now = now.Add(2 * time.Minute)
	if ok, _ := r.TryCapture(KindHeap, "third"); !ok {
		t.Fatalf("third capture refused")
	}
	ps := r.Profiles()
	if len(ps) != 2 || ps[0].Reason != "third" || ps[1].Reason != "second" {
		t.Fatalf("ring = %+v, want third,second", ps)
	}
	if _, found := r.Get(1); found {
		t.Fatalf("evicted profile still retrievable")
	}
}

func TestConcurrentTryCaptureSingleflight(t *testing.T) {
	r := New(8, 0)
	r.CPUDuration = 50 * time.Millisecond
	var wg sync.WaitGroup
	captured := make([]bool, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok, _ := r.TryCapture(KindCPU, "race")
			captured[i] = ok
		}(i)
	}
	wg.Wait()
	n := 0
	for _, ok := range captured {
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d concurrent captures succeeded, want exactly 1", n)
	}
	if r.Skipped() != 7 {
		t.Fatalf("skipped = %d, want 7", r.Skipped())
	}
}

func TestHandler(t *testing.T) {
	r := New(4, 0)
	if ok, err := r.TryCapture(KindHeap, "handler test"); !ok || err != nil {
		t.Fatalf("capture failed: %v %v", ok, err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Profiles []Profile `json:"profiles"`
		Skipped  uint64    `json:"skipped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(body.Profiles) != 1 || body.Profiles[0].Reason != "handler test" {
		t.Fatalf("index = %+v", body)
	}

	// Download the raw pprof bytes.
	resp2, err := srv.Client().Get(srv.URL + "?id=1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || len(data) != body.Profiles[0].Bytes {
		t.Fatalf("download: code=%d len=%d want %d", resp2.StatusCode, len(data), body.Profiles[0].Bytes)
	}

	// Missing and malformed IDs.
	if resp, _ := srv.Client().Get(srv.URL + "?id=99"); resp.StatusCode != 404 {
		t.Fatalf("missing id = %d, want 404", resp.StatusCode)
	}
	if resp, _ := srv.Client().Get(srv.URL + "?id=soon"); resp.StatusCode != 400 {
		t.Fatalf("bad id = %d, want 400", resp.StatusCode)
	}
}
