// Package profilering captures pprof profiles on demand into a bounded
// in-memory ring, so a burn-rate trip (internal/obs/slo) leaves a CPU or
// heap profile behind even when nobody was watching — the profile of the
// incident, not of the quiet period after it.
//
// Captures are serialized: at most one profile is being taken at any
// moment (Go's CPU profiler is process-global anyway), and a cooldown
// keeps a flapping trigger from turning the process into a profiling
// loop. The ring holds the most recent N profiles with their capture
// reason and is served by Handler: GET lists the captures as JSON,
// ?id=<n> downloads one profile in the standard pprof format, ready for
// `go tool pprof`.
package profilering

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// Kind is the profile type captured.
type Kind string

const (
	KindCPU  Kind = "cpu"
	KindHeap Kind = "heap"
)

// Profile is one captured profile. Data is the raw pprof protobuf.
type Profile struct {
	ID     uint64    `json:"id"`
	Kind   Kind      `json:"kind"`
	Reason string    `json:"reason"`
	Taken  time.Time `json:"taken"`
	// DurationNS is the sampling window for CPU profiles (0 for heap).
	DurationNS int64  `json:"duration_ns,omitempty"`
	Bytes      int    `json:"bytes"`
	Data       []byte `json:"-"`
}

// Ring is a bounded buffer of captured profiles. All methods are safe
// for concurrent use.
type Ring struct {
	capacity int
	cooldown time.Duration
	// CPUDuration is the CPU profile sampling window (default 1s); tests
	// shorten it. Set before the first capture.
	CPUDuration time.Duration

	now func() time.Time

	mu          sync.Mutex
	profiles    []Profile // newest last
	nextID      uint64
	lastCapture time.Time
	capturing   bool
	skipped     uint64
}

// New returns a ring holding the most recent capacity profiles, refusing
// captures closer together than cooldown.
func New(capacity int, cooldown time.Duration) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		capacity:    capacity,
		cooldown:    cooldown,
		CPUDuration: time.Second,
		now:         time.Now,
	}
}

// SetClock injects a clock for tests.
func (r *Ring) SetClock(now func() time.Time) { r.now = now }

// TryCapture captures a profile of the given kind unless a capture is
// already running or the cooldown has not elapsed; it reports whether a
// capture actually happened. CPU captures block for CPUDuration — call
// from a goroutine when latency matters. The error is non-nil only for a
// capture that started and failed.
func (r *Ring) TryCapture(kind Kind, reason string) (bool, error) {
	now := r.now()
	r.mu.Lock()
	if r.capturing || (!r.lastCapture.IsZero() && now.Sub(r.lastCapture) < r.cooldown) {
		r.skipped++
		r.mu.Unlock()
		return false, nil
	}
	r.capturing = true
	r.lastCapture = now
	r.mu.Unlock()

	data, dur, err := r.capture(kind)

	r.mu.Lock()
	r.capturing = false
	if err == nil {
		r.nextID++
		p := Profile{
			ID:         r.nextID,
			Kind:       kind,
			Reason:     reason,
			Taken:      now,
			DurationNS: dur.Nanoseconds(),
			Bytes:      len(data),
			Data:       data,
		}
		r.profiles = append(r.profiles, p)
		if len(r.profiles) > r.capacity {
			r.profiles = r.profiles[len(r.profiles)-r.capacity:]
		}
	}
	r.mu.Unlock()
	if err != nil {
		return false, err
	}
	return true, nil
}

func (r *Ring) capture(kind Kind) ([]byte, time.Duration, error) {
	var buf bytes.Buffer
	switch kind {
	case KindCPU:
		if err := pprof.StartCPUProfile(&buf); err != nil {
			// Another CPU profile is running (e.g. /debug/pprof/profile).
			return nil, 0, fmt.Errorf("cpu profile: %w", err)
		}
		d := r.CPUDuration
		if d <= 0 {
			d = time.Second
		}
		time.Sleep(d)
		pprof.StopCPUProfile()
		return buf.Bytes(), d, nil
	case KindHeap:
		runtime.GC() // fold unreachable objects out of the live-heap picture
		if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
			return nil, 0, fmt.Errorf("heap profile: %w", err)
		}
		return buf.Bytes(), 0, nil
	default:
		return nil, 0, fmt.Errorf("unknown profile kind %q", kind)
	}
}

// Profiles lists the buffered captures, newest first, without data.
func (r *Ring) Profiles() []Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Profile, 0, len(r.profiles))
	for i := len(r.profiles) - 1; i >= 0; i-- {
		p := r.profiles[i]
		p.Data = nil
		out = append(out, p)
	}
	return out
}

// Get returns the full profile for an ID, if still buffered.
func (r *Ring) Get(id uint64) (Profile, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.profiles {
		if p.ID == id {
			return p, true
		}
	}
	return Profile{}, false
}

// Skipped counts TryCapture calls refused by the in-progress guard or
// the cooldown.
func (r *Ring) Skipped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.skipped
}

// Handler serves the ring: GET lists captures as JSON (newest first);
// GET ?id=N downloads that profile's pprof bytes.
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if v := req.URL.Query().Get("id"); v != "" {
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeProfJSON(w, http.StatusBadRequest, map[string]string{"error": "bad id " + strconv.Quote(v)})
				return
			}
			p, ok := r.Get(id)
			if !ok {
				writeProfJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("profile %d not in the ring (evicted or never captured)", id)})
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%s-%d.pprof", p.Kind, p.ID))
			_, _ = w.Write(p.Data)
			return
		}
		r.mu.Lock()
		skipped := r.skipped
		r.mu.Unlock()
		writeProfJSON(w, http.StatusOK, map[string]any{
			"profiles": r.Profiles(),
			"skipped":  skipped,
		})
	})
}

func writeProfJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
