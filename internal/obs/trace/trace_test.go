package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeLinks(t *testing.T) {
	rec := New(4)
	ctx, root := StartIn(rec, context.Background(), "root")
	ctx2, child := Start(ctx, "child")
	_, grand := Start(ctx2, "grandchild")
	grand.SetAttr("k", 42)
	grand.End()
	child.End()
	root.SetAttr("route", "/test")
	root.End()

	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Root != "root" || len(tr.Spans) != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	byName := map[string]SpanData{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Errorf("child parent = %s, want root %s", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Errorf("grandchild parent = %s, want child %s", byName["grandchild"].ParentID, byName["child"].SpanID)
	}
	if byName["root"].ParentID != "" {
		t.Errorf("root has parent %s", byName["root"].ParentID)
	}
	if len(byName["grandchild"].Attrs) != 1 || byName["grandchild"].Attrs[0].Key != "k" {
		t.Errorf("grandchild attrs = %v", byName["grandchild"].Attrs)
	}
	if tr.TraceID == "" || tr.DurationNS < byName["child"].DurationNS {
		t.Errorf("trace id/duration inconsistent: %+v", tr)
	}
}

func TestStartChildWithoutTraceIsNoop(t *testing.T) {
	ctx, s := StartChild(context.Background(), "orphan")
	if s != nil {
		t.Fatalf("StartChild on a bare context returned a span")
	}
	// All methods must be nil-safe.
	s.SetAttr("k", "v")
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" || s.Name() != "" {
		t.Errorf("nil span leaked identifiers")
	}
	if FromContext(ctx) != nil {
		t.Errorf("context gained a span")
	}
}

func TestRingEviction(t *testing.T) {
	rec := New(2)
	for i := 0; i < 5; i++ {
		_, s := StartIn(rec, context.Background(), "t")
		s.SetAttr("i", i)
		s.End()
	}
	if rec.Len() != 2 {
		t.Fatalf("len = %d, want 2", rec.Len())
	}
	if rec.Total() != 5 {
		t.Fatalf("total = %d, want 5", rec.Total())
	}
	traces := rec.Traces()
	// Newest first: attrs i=4 then i=3.
	want := []int{4, 3}
	for j, tr := range traces {
		got := tr.Spans[0].Attrs[0].Value.(int)
		if got != want[j] {
			t.Errorf("trace %d has i=%v, want %d", j, got, want[j])
		}
	}
}

func TestEndIsIdempotent(t *testing.T) {
	rec := New(4)
	ctx, root := StartIn(rec, context.Background(), "root")
	_, child := Start(ctx, "child")
	child.End()
	child.End()
	root.End()
	root.End()
	if rec.Len() != 1 {
		t.Fatalf("len = %d, want 1", rec.Len())
	}
	if n := len(rec.Traces()[0].Spans); n != 2 {
		t.Fatalf("spans = %d, want 2", n)
	}
}

func TestLateChildDropped(t *testing.T) {
	rec := New(4)
	ctx, root := StartIn(rec, context.Background(), "root")
	_, child := Start(ctx, "late")
	root.End()
	child.End() // after the trace froze
	tr := rec.Traces()[0]
	if len(tr.Spans) != 1 || tr.DroppedSpans != 1 {
		t.Fatalf("spans=%d dropped=%d, want 1/1", len(tr.Spans), tr.DroppedSpans)
	}
}

func TestConcurrentChildren(t *testing.T) {
	rec := New(4)
	ctx, root := StartIn(rec, context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := Start(ctx, "worker")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	tr := rec.Traces()[0]
	if len(tr.Spans) != 33 {
		t.Fatalf("spans = %d, want 33", len(tr.Spans))
	}
	for _, s := range tr.Spans {
		if s.Name == "worker" && s.ParentID != root.SpanID() {
			t.Fatalf("worker parent = %s, want %s", s.ParentID, root.SpanID())
		}
	}
}

func TestHandlerJSON(t *testing.T) {
	rec := New(4)
	_, s := StartIn(rec, context.Background(), "req")
	s.End()
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Total  uint64  `json:"total"`
		Traces []Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Total != 1 || len(body.Traces) != 1 || body.Traces[0].Root != "req" {
		t.Fatalf("body = %+v", body)
	}

	// Single-trace lookup and the 404 path.
	resp2, err := srv.Client().Get(srv.URL + "?trace_id=" + body.Traces[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("trace_id lookup = %d", resp2.StatusCode)
	}
	resp3, err := srv.Client().Get(srv.URL + "?trace_id=deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Fatalf("missing trace = %d, want 404", resp3.StatusCode)
	}
}

func TestHandlerFilters(t *testing.T) {
	rec := New(8)
	// Two fast /v1/field traces, one slow /v1/stale trace.
	for i := 0; i < 2; i++ {
		_, s := StartIn(rec, context.Background(), "/v1/field")
		s.End()
	}
	_, slow := StartIn(rec, context.Background(), "/v1/stale")
	time.Sleep(2 * time.Millisecond)
	slow.End()

	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	get := func(query string) (int, tracesResponse) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body tracesResponse
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, body
	}

	// route= isolates one endpoint's traces.
	if code, body := get("?route=/v1/field"); code != 200 || len(body.Traces) != 2 {
		t.Fatalf("route filter: code=%d traces=%d, want 200/2", code, len(body.Traces))
	}
	// min_ns keeps only the slow trace (the fast ones end in < 1 ms).
	if code, body := get("?min_ns=1000000"); code != 200 || len(body.Traces) != 1 || body.Traces[0].Root != "/v1/stale" {
		t.Fatalf("min_ns filter: code=%d body=%+v", code, body)
	}
	// Filters compose: a route with no trace that slow matches nothing.
	if code, body := get("?route=/v1/field&min_ns=1000000000"); code != 200 || len(body.Traces) != 0 {
		t.Fatalf("composed filter: code=%d traces=%d, want 200/0", code, len(body.Traces))
	}
	// Filters apply before limit.
	if code, body := get("?route=/v1/field&limit=1"); code != 200 || len(body.Traces) != 1 || body.Traces[0].Root != "/v1/field" {
		t.Fatalf("filter+limit: code=%d body=%+v", code, body)
	}
	// Total still reports the recorder's lifetime count, not the filtered view.
	if _, body := get("?route=/v1/field"); body.Total != 3 {
		t.Fatalf("total = %d, want 3", body.Total)
	}
	// Malformed min_ns is a 400, not a silent full listing.
	if code, _ := get("?min_ns=soon"); code != 400 {
		t.Fatalf("bad min_ns: code=%d, want 400", code)
	}
}
