// Package trace is the repository's dependency-free request tracing layer:
// context-propagated spans with trace/span/parent IDs, per-span attributes
// and nanosecond timings, collected per trace and published into a bounded
// ring buffer of recent traces (served at /debug/traces by staleserve).
//
// A trace is born when Start (or StartIn) is called on a context that does
// not already carry a span — the HTTP middleware and the ingest retrain
// loop are the two root sites. Child (and stage-timer, see obs.StartSpanCtx)
// calls attach to whatever span the context carries, so one request or one
// retrain produces one span tree. Ending the root span freezes the trace
// and records it; spans ending after that are dropped and counted.
//
// The package deliberately has no exporter, sampler, or wire protocol: it
// answers the operator question "what did this request/retrain actually do,
// and where did the time go" locally, the same way internal/obs answers the
// aggregate version of that question. *Span methods are nil-safe, so call
// sites can trace unconditionally: StartChild on a context without a trace
// returns a nil span whose SetAttr/End are no-ops.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the ring size of the Default recorder: enough recent
// traces to debug a live incident, small enough to never matter for memory.
const DefaultCapacity = 64

// maxSpansPerTrace bounds one trace's span list; a runaway loop creating
// spans must not pin unbounded memory. Excess spans are counted as dropped.
const maxSpansPerTrace = 512

// Default is the process-wide recorder; the HTTP layer serves it at
// /debug/traces and the ingest retrain loop records into it.
var Default = New(DefaultCapacity)

// Attr is one key/value annotation on a span. Values must be
// JSON-marshalable (strings, numbers, bools).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanData is the frozen form of one ended span.
type SpanData struct {
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	// DurationNS is the span's wall-clock duration in nanoseconds.
	DurationNS int64  `json:"duration_ns"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// Trace is one complete span tree, frozen when its root span ended. Spans
// appear in end order; the root is last.
type Trace struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"`
	Start   time.Time `json:"start"`
	// DurationNS is the root span's duration in nanoseconds.
	DurationNS int64      `json:"duration_ns"`
	Spans      []SpanData `json:"spans"`
	// DroppedSpans counts spans lost to the per-trace bound or ended after
	// the root froze the trace.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// traceBuf accumulates a live trace's ended spans until the root ends.
type traceBuf struct {
	rec *Recorder

	mu      sync.Mutex
	spans   []SpanData
	dropped int
	done    bool
}

// Span is one live span. Obtain with Start/StartIn/StartChild; finish with
// End. SetAttr and End must be called from the goroutine that owns the
// span (the one it was started on); other goroutines get their own child
// spans. All methods are nil-safe.
type Span struct {
	buf     *traceBuf
	traceID uint64
	spanID  uint64
	parent  uint64 // 0 for the root
	name    string
	start   time.Time
	attrs   []Attr
	ended   atomic.Bool
}

// idCounter seeds span/trace IDs; mixed through splitmix64 so IDs look
// random without needing an entropy source (uniqueness within the process
// is all tracing requires).
var idCounter atomic.Uint64

func newID() uint64 {
	for {
		x := idCounter.Add(1)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

func formatID(id uint64) string { return fmt.Sprintf("%016x", id) }

type ctxKey struct{}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start begins a span recording into the Default recorder: a child of the
// context's span when one is present, otherwise the root of a new trace.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return StartIn(Default, ctx, name)
}

// StartIn is Start with an explicit recorder for new roots (tests use
// private recorders; child spans always stay in their trace's recorder).
func StartIn(rec *Recorder, ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now(), spanID: newID()}
	if parent := FromContext(ctx); parent != nil {
		s.buf = parent.buf
		s.traceID = parent.traceID
		s.parent = parent.spanID
	} else {
		s.buf = &traceBuf{rec: rec}
		s.traceID = newID()
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// StartChild begins a child span only when ctx already carries a trace;
// otherwise it returns ctx unchanged and a nil (no-op) span. This is the
// call sites' way to participate in tracing without ever creating
// free-floating root traces.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	if FromContext(ctx) == nil {
		return ctx, nil
	}
	return Start(ctx, name)
}

// TraceID returns the 16-hex-digit trace ID, or "" on a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return formatID(s.traceID)
}

// SpanID returns the 16-hex-digit span ID, or "" on a nil span.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return formatID(s.spanID)
}

// Name returns the span name, or "" on a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span. No-op on a nil or ended span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.ended.Load() {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span, appending it to its trace; ending the root span
// freezes the trace and records it. It returns the span's duration and is
// idempotent (and a no-op on nil).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended.Swap(true) {
		return d
	}
	data := SpanData{
		SpanID:     formatID(s.spanID),
		Name:       s.name,
		Start:      s.start,
		DurationNS: d.Nanoseconds(),
		Attrs:      s.attrs,
	}
	if s.parent != 0 {
		data.ParentID = formatID(s.parent)
	}
	b := s.buf
	b.mu.Lock()
	switch {
	case b.done:
		// The root already froze and published this trace; count the
		// straggler on the published copy so /debug/traces shows it.
		b.mu.Unlock()
		if b.rec != nil {
			b.rec.addDropped(s.traceID)
		}
		return d
	case s.parent != 0 && len(b.spans) >= maxSpansPerTrace:
		b.dropped++
		b.mu.Unlock()
		return d
	default:
		b.spans = append(b.spans, data)
	}
	if s.parent != 0 {
		b.mu.Unlock()
		return d
	}
	// Root ended: freeze and publish.
	b.done = true
	t := Trace{
		TraceID:      formatID(s.traceID),
		Root:         s.name,
		Start:        s.start,
		DurationNS:   d.Nanoseconds(),
		Spans:        b.spans,
		DroppedSpans: b.dropped,
	}
	rec := b.rec
	b.mu.Unlock()
	if rec != nil {
		rec.record(t)
	}
	return d
}

// Recorder is a bounded ring buffer of completed traces.
type Recorder struct {
	mu    sync.Mutex
	cap   int
	buf   []Trace
	next  int
	total uint64
}

// New returns a recorder keeping the most recent capacity traces.
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{cap: capacity}
}

func (r *Recorder) record(t Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.cap
}

// addDropped bumps the dropped-span count of a published trace still in
// the buffer (spans that ended after their root froze the trace).
func (r *Recorder) addDropped(traceID uint64) {
	id := formatID(traceID)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buf {
		if r.buf[i].TraceID == id {
			r.buf[i].DroppedSpans++
			return
		}
	}
}

// Traces returns the buffered traces, newest first.
func (r *Recorder) Traces() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, len(r.buf))
	// The ring holds [next, len) older entries then [0, next) newer ones;
	// walk backwards from the newest.
	for i := len(r.buf) - 1; i >= 0; i-- {
		out = append(out, r.buf[(r.next+i)%len(r.buf)])
	}
	return out
}

// Len reports the number of buffered traces.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total reports how many traces were ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
