package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// tracesResponse is the JSON shape of /debug/traces.
type tracesResponse struct {
	// Total counts every trace ever recorded, including evicted ones.
	Total uint64 `json:"total"`
	// Traces lists the buffered traces, newest first.
	Traces []Trace `json:"traces"`
}

// Handler serves the recorder's buffered traces as JSON, newest first.
// ?limit=N truncates the list; ?trace_id=<id> returns just that trace
// (404 when it has been evicted).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := r.Traces()
		if id := req.URL.Query().Get("trace_id"); id != "" {
			for _, t := range traces {
				if t.TraceID == id {
					writeTraceJSON(w, http.StatusOK, t)
					return
				}
			}
			writeTraceJSON(w, http.StatusNotFound,
				map[string]string{"error": "trace " + id + " not in the buffer (evicted or never recorded)"})
			return
		}
		if v := req.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		writeTraceJSON(w, http.StatusOK, tracesResponse{Total: r.Total(), Traces: traces})
	})
}

func writeTraceJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
