package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// tracesResponse is the JSON shape of /debug/traces.
type tracesResponse struct {
	// Total counts every trace ever recorded, including evicted ones.
	Total uint64 `json:"total"`
	// Traces lists the buffered traces, newest first.
	Traces []Trace `json:"traces"`
}

// Handler serves the recorder's buffered traces as JSON, newest first.
// ?limit=N truncates the list; ?trace_id=<id> returns just that trace
// (404 when it has been evicted). ?route=<root> keeps only traces whose
// root span has that name (the HTTP middleware roots request traces at
// the route label, so ?route=/v1/stale isolates one endpoint), and
// ?min_ns=<n> keeps only traces at least that slow — together they are
// the triage loop under load: "show me the slow /v1/stale requests".
// Filters apply before limit.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := r.Traces()
		if id := req.URL.Query().Get("trace_id"); id != "" {
			for _, t := range traces {
				if t.TraceID == id {
					writeTraceJSON(w, http.StatusOK, t)
					return
				}
			}
			writeTraceJSON(w, http.StatusNotFound,
				map[string]string{"error": "trace " + id + " not in the buffer (evicted or never recorded)"})
			return
		}
		route := req.URL.Query().Get("route")
		var minNS int64
		if v := req.URL.Query().Get("min_ns"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				writeTraceJSON(w, http.StatusBadRequest,
					map[string]string{"error": "bad min_ns " + strconv.Quote(v) + ": want a non-negative integer"})
				return
			}
			minNS = n
		}
		if route != "" || minNS > 0 {
			kept := traces[:0]
			for _, t := range traces {
				if route != "" && t.Root != route {
					continue
				}
				if t.DurationNS < minNS {
					continue
				}
				kept = append(kept, t)
			}
			traces = kept
		}
		if v := req.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		writeTraceJSON(w, http.StatusOK, tracesResponse{Total: r.Total(), Traces: traces})
	})
}

func writeTraceJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
