// Package olog is the repository's structured logging layer: log/slog with
// a shared wrapping handler that injects the request/retrain correlation
// fields every log line should carry — the trace and span IDs from
// internal/obs/trace and the model epoch from the context — so one grep by
// trace_id stitches a request's log lines to its /debug/traces entry.
//
// The binaries configure it once at startup (Setup, driven by -log-level
// and -log-format flags) and everything else logs through slog.Default or
// an injected *slog.Logger with plain slog calls; the correlation fields
// appear automatically whenever the ctx-taking variants (InfoContext etc.)
// are used with a traced context.
package olog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"github.com/wikistale/wikistale/internal/obs/trace"
)

type epochKey struct{}

// WithEpoch returns a context whose log lines carry epoch=seq. The serving
// and ingest layers stamp it when they resolve which model epoch a request
// or retrain is acting on.
func WithEpoch(ctx context.Context, seq uint64) context.Context {
	return context.WithValue(ctx, epochKey{}, seq)
}

// EpochFrom returns the epoch stamped by WithEpoch, if any.
func EpochFrom(ctx context.Context) (uint64, bool) {
	seq, ok := ctx.Value(epochKey{}).(uint64)
	return seq, ok
}

// Handler wraps any slog.Handler and appends trace_id, span_id, and epoch
// attributes to records whose context carries them.
type Handler struct {
	inner slog.Handler
}

// Wrap returns a Handler injecting correlation fields in front of inner.
func Wrap(inner slog.Handler) *Handler {
	return &Handler{inner: inner}
}

// Enabled defers to the wrapped handler.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle appends the context's correlation fields and delegates.
func (h *Handler) Handle(ctx context.Context, rec slog.Record) error {
	if s := trace.FromContext(ctx); s != nil {
		rec.AddAttrs(
			slog.String("trace_id", s.TraceID()),
			slog.String("span_id", s.SpanID()),
		)
	}
	if seq, ok := EpochFrom(ctx); ok {
		rec.AddAttrs(slog.Uint64("epoch", seq))
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs wraps the inner handler's WithAttrs so correlation fields keep
// being injected on derived loggers.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &Handler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup wraps the inner handler's WithGroup.
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name)}
}

// ParseLevel maps the -log-level flag values (debug, info, warn, error,
// case-insensitive) to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// New builds a logger writing to w at the given level in the given format
// ("text" or "json"), with the correlation-injecting Handler installed.
func New(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		inner = slog.NewTextHandler(w, opts)
	case "json":
		inner = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(Wrap(inner)), nil
}

// Setup is New plus slog.SetDefault, parsing the level from its flag
// string — the one call each binary makes at startup.
func Setup(w io.Writer, levelFlag, format string) (*slog.Logger, error) {
	level, err := ParseLevel(levelFlag)
	if err != nil {
		return nil, err
	}
	logger, err := New(w, level, format)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}
