package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"github.com/wikistale/wikistale/internal/obs/trace"
)

func TestHandlerInjectsTraceAndEpoch(t *testing.T) {
	var buf bytes.Buffer
	logger, err := New(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.New(4)
	ctx, span := trace.StartIn(rec, context.Background(), "req")
	ctx = WithEpoch(ctx, 7)
	logger.InfoContext(ctx, "served", "status", 200)
	span.End()

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if line["trace_id"] != span.TraceID() {
		t.Errorf("trace_id = %v, want %s", line["trace_id"], span.TraceID())
	}
	if line["span_id"] != span.SpanID() {
		t.Errorf("span_id = %v, want %s", line["span_id"], span.SpanID())
	}
	if line["epoch"] != float64(7) {
		t.Errorf("epoch = %v, want 7", line["epoch"])
	}
	if line["msg"] != "served" || line["status"] != float64(200) {
		t.Errorf("line = %v", line)
	}
}

func TestHandlerPlainContext(t *testing.T) {
	var buf bytes.Buffer
	logger, err := New(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	logger.InfoContext(context.Background(), "plain")
	if strings.Contains(buf.String(), "trace_id") || strings.Contains(buf.String(), "epoch") {
		t.Errorf("untraced line leaked correlation fields: %s", buf.String())
	}
}

func TestHandlerWithAttrsKeepsInjection(t *testing.T) {
	var buf bytes.Buffer
	logger, err := New(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	derived := logger.With("component", "ingest")

	rec := trace.New(4)
	ctx, span := trace.StartIn(rec, context.Background(), "retrain")
	derived.InfoContext(ctx, "swap")
	span.End()

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line["component"] != "ingest" || line["trace_id"] != span.TraceID() {
		t.Errorf("line = %v", line)
	}
}

func TestLevelsAndFormats(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want slog.Level
		ok   bool
	}{
		{"debug", slog.LevelDebug, true},
		{"INFO", slog.LevelInfo, true},
		{"", slog.LevelInfo, true},
		{"warn", slog.LevelWarn, true},
		{"error", slog.LevelError, true},
		{"loud", 0, false},
	} {
		got, err := ParseLevel(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseLevel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := New(&bytes.Buffer{}, slog.LevelInfo, "xml"); err == nil {
		t.Error("format xml accepted")
	}

	var buf bytes.Buffer
	logger, err := New(&buf, slog.LevelWarn, "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hidden")
	logger.Warn("shown")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "shown") {
		t.Errorf("level filtering broken: %s", buf.String())
	}
}
