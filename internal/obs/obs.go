// Package obs is the repository's dependency-free observability layer: a
// process-wide registry of counters, gauges, and fixed-bucket histograms
// that renders both the Prometheus text exposition format and JSON, plus a
// lightweight span API for pipeline stage timings (see span.go). Every
// metric is lock-free on the hot path — registration takes a mutex once,
// updates are atomic — so handlers and training loops can record freely.
//
// Metric names follow the Prometheus conventions: a `wikistale_` prefix,
// `_total` suffix on counters, base units (seconds) in histogram names.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to a metric series. A nil map means the
// unlabeled series. Label maps are copied on registration; callers may
// reuse them.
type Labels map[string]string

// Kind discriminates the three metric types of the registry.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down. The zero value is
// ready to use; all methods are safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with the Prometheus
// `le` (less-or-equal) semantics. Buckets are set at registration and
// immutable afterwards; observations are lock-free.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
	// ex holds the most recent exemplar per bucket (len(bounds)+1, last is
	// the +Inf overflow) — the trace-linked tail-latency breadcrumbs behind
	// ObserveExemplar. Entries stay nil until a traced observation lands.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it, so a
// tail-latency bucket points at a concrete /debug/traces entry.
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.observe(v) }

// ObserveExemplar is Observe plus an exemplar: the observation's bucket
// remembers (value, traceID, now) as its most recent traced sample. An
// empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.observe(v)
	if traceID != "" {
		h.ex[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// observe records the value and returns its bucket index.
func (h *Histogram) observe(v float64) int {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return i
		}
	}
}

// Exemplars returns the per-bucket exemplars keyed by the bucket's upper
// bound ("+Inf" for the overflow bucket); buckets without a traced
// observation are absent.
func (h *Histogram) Exemplars() map[string]Exemplar {
	var out map[string]Exemplar
	for i := range h.ex {
		e := h.ex[i].Load()
		if e == nil {
			continue
		}
		if out == nil {
			out = make(map[string]Exemplar)
		}
		key := "+Inf"
		if i < len(h.bounds) {
			key = formatFloat(h.bounds[i])
		}
		out[key] = *e
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds (without +Inf) and the cumulative
// counts per bound; Count() is the implicit +Inf cumulative count.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	cum := make([]uint64, len(h.bounds))
	var running uint64
	for i := range h.bounds {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return h.bounds, cum
}

// series is one labeled instance inside a family. Exactly one of c/g/h is
// set, matching the family kind.
type series struct {
	labels Labels
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histograms only; fixed by the first registration
	series map[string]*series
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	helpStash map[string]string // help set before the family exists
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry. The training pipeline and the
// staleserve HTTP layer record here, and `GET /metrics` renders it.
var Default = NewRegistry()

// SetHelp attaches a HELP string to a metric name. Creating the metric
// first is not required.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
		return
	}
	// Remember the help for when the family is created.
	if r.helpStash == nil {
		r.helpStash = make(map[string]string)
	}
	r.helpStash[name] = help
}

// Counter returns the counter series for (name, labels), creating family
// and series on first use. It panics when name is already registered with
// a different kind — that is a programming error, not a runtime condition.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	s := r.getOrCreate(name, KindCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	s := r.getOrCreate(name, KindGauge, nil, labels)
	return s.g
}

// Histogram returns the histogram series for (name, labels). The buckets
// of the first registration win; later calls may pass nil.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	s := r.getOrCreate(name, KindHistogram, buckets, labels)
	return s.h
}

func (r *Registry) getOrCreate(name string, kind Kind, buckets []float64, labels Labels) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		if kind == KindHistogram {
			if len(buckets) == 0 {
				buckets = DurationBuckets
			}
			bs := make([]float64, len(buckets))
			copy(bs, buckets)
			sort.Float64s(bs)
			f.bounds = bs
		}
		if help, ok := r.helpStash[name]; ok {
			f.help = help
			delete(r.helpStash, name)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: copyLabels(labels), key: key}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// labelKey serializes labels into a deterministic map key.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\x00')
		b.WriteString(l[k])
		b.WriteByte('\x00')
	}
	return b.String()
}
