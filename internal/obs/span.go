package obs

import (
	"context"
	"time"

	"github.com/wikistale/wikistale/internal/obs/trace"
)

// StageHistogram is the histogram every pipeline stage span records into,
// labeled by stage name. The acceptance surface of the repo's perf work:
// `wikistale_train_stage_seconds{stage="filter/bot_reverts"}` etc.
const StageHistogram = "wikistale_train_stage_seconds"

// DurationBuckets is the default bucketing for second-valued histograms:
// half a millisecond to a minute, roughly logarithmic.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// RequestBuckets is the bucketing for request-latency histograms. The
// serving hot path answers in tens of microseconds, so the low end runs
// 10 µs – 500 µs at roughly 2–2.5× steps: DurationBuckets' 500 µs floor
// put a sub-millisecond p99 entirely inside the first bucket, which made
// the latency histogram useless exactly where serving performance lives.
// The high end still reaches 60 s so a stalled request is visible too.
var RequestBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025,
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

func init() {
	Default.SetHelp(StageHistogram, "Wall-clock seconds per named pipeline stage (filter/* and train/*).")
}

// Span measures one named pipeline stage. Obtain with StartSpan (a plain
// stage timer) or StartSpanCtx (also a child of the context's trace);
// finish with End. A Span must not be ended twice.
type Span struct {
	name  string
	reg   *Registry
	start time.Time
	// ts is the trace child span of the ctx-aware path; nil for plain
	// timers, and nil-safe throughout (trace.Span methods tolerate nil).
	ts *trace.Span
}

// StartSpan starts a stage timer on the Default registry.
//
//	span := obs.StartSpan("train/filter")
//	... work ...
//	elapsed := span.End()
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// StartSpan starts a stage timer on this registry.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{name: name, reg: r, start: time.Now()}
}

// StartSpanCtx starts a stage timer that is additionally a child span of
// the trace carried by ctx, if any — this is how the training and filter
// stage timers become children of a real request or retrain trace instead
// of free-floating timers. Without a trace in ctx it behaves exactly like
// StartSpan (and costs the same), so batch paths pay nothing.
func StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	return Default.StartSpanCtx(ctx, name)
}

// StartSpanCtx starts a ctx-aware stage timer on this registry.
func (r *Registry) StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, reg: r, start: time.Now()}
	ctx, s.ts = trace.StartChild(ctx, name)
	return ctx, s
}

// Name returns the stage name the span was started with.
func (s *Span) Name() string { return s.name }

// End records the elapsed time into StageHistogram and returns it. When
// the span rides a trace, the trace child span ends too and the histogram
// observation carries the trace ID as an exemplar.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.ts.End()
	s.reg.observeStage(s.name, d, s.ts.TraceID())
	return d
}

// ObserveStage records a pre-measured stage duration into StageHistogram
// on the Default registry.
func ObserveStage(name string, d time.Duration) { Default.ObserveStage(name, d) }

// ObserveStage records a pre-measured stage duration into StageHistogram.
func (r *Registry) ObserveStage(name string, d time.Duration) {
	r.observeStage(name, d, "")
}

func (r *Registry) observeStage(name string, d time.Duration, traceID string) {
	h := r.Histogram(StageHistogram, DurationBuckets, Labels{"stage": name})
	if traceID == "" {
		h.Observe(d.Seconds())
		return
	}
	h.ObserveExemplar(d.Seconds(), traceID)
}
