package obs

import "time"

// StageHistogram is the histogram every pipeline stage span records into,
// labeled by stage name. The acceptance surface of the repo's perf work:
// `wikistale_train_stage_seconds{stage="filter/bot_reverts"}` etc.
const StageHistogram = "wikistale_train_stage_seconds"

// DurationBuckets is the default bucketing for second-valued histograms:
// half a millisecond to a minute, roughly logarithmic.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

func init() {
	Default.SetHelp(StageHistogram, "Wall-clock seconds per named pipeline stage (filter/* and train/*).")
}

// Span measures one named pipeline stage. Obtain with StartSpan, finish
// with End; a Span must not be ended twice.
type Span struct {
	name  string
	reg   *Registry
	start time.Time
}

// StartSpan starts a stage timer on the Default registry.
//
//	span := obs.StartSpan("train/filter")
//	... work ...
//	elapsed := span.End()
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// StartSpan starts a stage timer on this registry.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{name: name, reg: r, start: time.Now()}
}

// Name returns the stage name the span was started with.
func (s *Span) Name() string { return s.name }

// End records the elapsed time into StageHistogram and returns it.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.reg.ObserveStage(s.name, d)
	return d
}

// ObserveStage records a pre-measured stage duration into StageHistogram
// on the Default registry.
func ObserveStage(name string, d time.Duration) { Default.ObserveStage(name, d) }

// ObserveStage records a pre-measured stage duration into StageHistogram.
func (r *Registry) ObserveStage(name string, d time.Duration) {
	r.Histogram(StageHistogram, DurationBuckets, Labels{"stage": name}).Observe(d.Seconds())
}
