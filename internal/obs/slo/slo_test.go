package slo

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/wikistale/wikistale/internal/obs"
)

// fakeClock is a hand-advanced clock for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var testObjectives = []Objective{
	{Name: "latency", Target: 0.99, LatencyThreshold: 5 * time.Millisecond},
	{Name: "availability", Target: 0.999},
}

func newTestTracker(policy TripPolicy) (*Tracker, *fakeClock) {
	clk := newFakeClock()
	t := NewWithClock(testObjectives, []time.Duration{10 * time.Second, time.Minute}, policy, clk.Now)
	return t, clk
}

func stat(t *testing.T, rep Report, objective, window string) WindowStat {
	t.Helper()
	for _, or := range rep.Objectives {
		if or.Objective.Name != objective {
			continue
		}
		for _, w := range or.Windows {
			if w.Window == window {
				return w
			}
		}
	}
	t.Fatalf("no stat for %s/%s in %+v", objective, window, rep)
	return WindowStat{}
}

func TestWindowArithmetic(t *testing.T) {
	tr, _ := newTestTracker(TripPolicy{})

	// 90 fast + 10 slow requests in the current second: latency bad
	// fraction 0.10, burn = 0.10 / 0.01 = 10. None are errors.
	for i := 0; i < 90; i++ {
		tr.Record(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		tr.Record(20*time.Millisecond, false)
	}
	rep := tr.Snapshot()
	lat := stat(t, rep, "latency", "10s")
	if lat.Total != 100 || lat.Bad != 10 {
		t.Fatalf("latency 10s = %+v, want total 100 bad 10", lat)
	}
	if math.Abs(lat.BadFraction-0.10) > 1e-12 || math.Abs(lat.BurnRate-10) > 1e-9 {
		t.Fatalf("latency 10s fraction/burn = %v/%v, want 0.10/10", lat.BadFraction, lat.BurnRate)
	}
	avail := stat(t, rep, "availability", "10s")
	if avail.Bad != 0 || avail.BurnRate != 0 {
		t.Fatalf("availability 10s = %+v, want clean", avail)
	}

	// Both windows see the same counts while everything is recent.
	if got := stat(t, rep, "latency", "1m0s"); got.Total != 100 || got.Bad != 10 {
		t.Fatalf("latency 1m = %+v, want total 100 bad 10", got)
	}
}

func TestWindowExpiry(t *testing.T) {
	tr, clk := newTestTracker(TripPolicy{})
	for i := 0; i < 50; i++ {
		tr.Record(time.Hour, false) // all bad for the latency objective
	}

	// 11 seconds later the short window has forgotten them, the long one
	// has not.
	clk.Advance(11 * time.Second)
	rep := tr.Snapshot()
	if got := stat(t, rep, "latency", "10s"); got.Total != 0 {
		t.Fatalf("10s window still has %d events after expiry", got.Total)
	}
	if got := stat(t, rep, "latency", "1m0s"); got.Total != 50 || got.Bad != 50 {
		t.Fatalf("1m window = %+v, want 50/50", got)
	}

	// Past the long window everything is gone, and the ring can be
	// written again without ghosts.
	clk.Advance(time.Minute)
	rep = tr.Snapshot()
	if got := stat(t, rep, "latency", "1m0s"); got.Total != 0 {
		t.Fatalf("1m window = %+v after full expiry, want empty", got)
	}
	tr.Record(time.Millisecond, false)
	if got := stat(t, tr.Snapshot(), "latency", "1m0s"); got.Total != 1 || got.Bad != 0 {
		t.Fatalf("post-expiry record = %+v, want 1/0", got)
	}
}

func TestErrorObjective(t *testing.T) {
	tr, _ := newTestTracker(TripPolicy{})
	// 999 successes and 1 error: exactly at the availability budget.
	for i := 0; i < 999; i++ {
		tr.Record(time.Microsecond, false)
	}
	tr.Record(time.Microsecond, true)
	avail := stat(t, tr.Snapshot(), "availability", "10s")
	if avail.Bad != 1 {
		t.Fatalf("availability bad = %d, want 1", avail.Bad)
	}
	if math.Abs(avail.BurnRate-1.0) > 1e-9 {
		t.Fatalf("availability burn = %v, want 1.0", avail.BurnRate)
	}
	// Errors are also bad under the latency objective (a fast 500 is not
	// a good request).
	lat := stat(t, tr.Snapshot(), "latency", "10s")
	if lat.Bad != 1 {
		t.Fatalf("latency bad = %d, want 1 (errors count)", lat.Bad)
	}
}

func TestTripPolicyEdgeTriggering(t *testing.T) {
	policy := TripPolicy{
		ShortWindow:   10 * time.Second,
		LongWindow:    time.Minute,
		BurnThreshold: 5,
		MinEvents:     20,
	}
	tr, clk := newTestTracker(policy)

	// Below MinEvents: no trip no matter how bad.
	for i := 0; i < 10; i++ {
		tr.Record(time.Second, false)
	}
	if trips := tr.CheckTrips(); len(trips) != 0 {
		t.Fatalf("tripped below MinEvents: %+v", trips)
	}

	// Cross MinEvents with a 100% bad burn: both windows burn at 100x
	// budget, so the latency objective trips (availability stays clean).
	for i := 0; i < 20; i++ {
		tr.Record(time.Second, false)
	}
	trips := tr.CheckTrips()
	if len(trips) != 1 || trips[0].Objective.Name != "latency" {
		t.Fatalf("trips = %+v, want exactly latency", trips)
	}
	if trips[0].ShortBurn < policy.BurnThreshold || trips[0].LongBurn < policy.BurnThreshold {
		t.Fatalf("trip burns %v/%v below threshold", trips[0].ShortBurn, trips[0].LongBurn)
	}

	// Still tripping → edge triggering suppresses a second report.
	tr.Record(time.Second, false)
	if trips := tr.CheckTrips(); len(trips) != 0 {
		t.Fatalf("re-reported an active trip: %+v", trips)
	}
	if !tr.Snapshot().Objectives[0].Tripping {
		t.Fatalf("snapshot lost the active trip state")
	}

	// Recover (short window drains), then a fresh burst trips again.
	clk.Advance(11 * time.Second)
	if trips := tr.CheckTrips(); len(trips) != 0 {
		t.Fatalf("tripped during recovery: %+v", trips)
	}
	clk.Advance(time.Minute) // drain the long window too
	for i := 0; i < 30; i++ {
		tr.Record(time.Second, false)
	}
	if trips := tr.CheckTrips(); len(trips) != 1 {
		t.Fatalf("second incident not reported: %+v", trips)
	}
	if got := tr.Snapshot().TripsTotal; got != 2 {
		t.Fatalf("trips total = %d, want 2", got)
	}
}

func TestShortWindowBurstLongWindowQuiet(t *testing.T) {
	// A burst that is terrible over 10s but diluted over 1m must not trip
	// — that is the whole point of the multi-window rule.
	policy := TripPolicy{ShortWindow: 10 * time.Second, LongWindow: time.Minute, BurnThreshold: 5, MinEvents: 1}
	tr, clk := newTestTracker(policy)

	// 55 seconds of good traffic...
	for s := 0; s < 55; s++ {
		for i := 0; i < 100; i++ {
			tr.Record(time.Millisecond, false)
		}
		clk.Advance(time.Second)
	}
	// ...then one bad second: the short-window burn is 10 (100 bad / 1000
	// total / 0.01 budget), above threshold, but the long-window burn is
	// only ~1.8 (100 / 5600 / 0.01), below it.
	for i := 0; i < 100; i++ {
		tr.Record(time.Second, false)
	}
	rep := tr.Snapshot()
	short := stat(t, rep, "latency", "10s")
	if short.BurnRate < policy.BurnThreshold {
		t.Fatalf("short burn %v unexpectedly below threshold", short.BurnRate)
	}
	if trips := tr.CheckTrips(); len(trips) != 0 {
		t.Fatalf("diluted burst tripped: %+v", trips)
	}
}

func TestPublishGauges(t *testing.T) {
	reg := obs.NewRegistry()
	tr, _ := newTestTracker(TripPolicy{ShortWindow: 10 * time.Second, LongWindow: time.Minute, BurnThreshold: 1, MinEvents: 1})
	for i := 0; i < 10; i++ {
		tr.Record(time.Second, false)
	}
	tr.CheckTrips()
	tr.Publish(reg)

	l := obs.Labels{"objective": "latency", "window": "10s"}
	if v := reg.Gauge(BurnRateGauge, l).Value(); math.Abs(v-100) > 1e-9 {
		t.Fatalf("burn gauge = %v, want 100", v)
	}
	if v := reg.Gauge(BadFractionGauge, l).Value(); math.Abs(v-1) > 1e-12 {
		t.Fatalf("bad fraction gauge = %v, want 1", v)
	}
	if v := reg.Gauge(EventsGauge, l).Value(); v != 10 {
		t.Fatalf("events gauge = %v, want 10", v)
	}
	if v := reg.Counter(TripsTotal, nil).Value(); v != 1 {
		t.Fatalf("trips counter = %d, want 1", v)
	}
	// Publishing twice must not double-count trips.
	tr.Publish(reg)
	if v := reg.Counter(TripsTotal, nil).Value(); v != 1 {
		t.Fatalf("trips counter after republish = %d, want 1", v)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr, _ := newTestTracker(TripPolicy{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(time.Millisecond, i%10 == 0)
			}
		}()
	}
	wg.Wait()
	got := stat(t, tr.Snapshot(), "availability", "1m0s")
	if got.Total != 8000 || got.Bad != 800 {
		t.Fatalf("concurrent counts = %+v, want 8000/800", got)
	}
}
