// Package slo tracks service-level objectives over rolling time windows
// and computes burn rates — the language operators actually alert in.
//
// An Objective classifies every request as good or bad: either by latency
// ("99% of requests complete within 5 ms") or by outcome ("99.9% of
// requests do not 5xx"). The Tracker keeps per-second good/bad counts in a
// fixed ring sized to the longest window, so a Record costs a few
// nanoseconds of bucketed arithmetic and the memory bound is static no
// matter the request rate.
//
// The burn rate of a window is the rate at which the error budget is
// being consumed: badFraction / (1 - target). A burn rate of 1 means the
// budget is being spent exactly as fast as the objective allows; 14.4
// over 5 minutes is the classic "page now" fast burn (it exhausts a
// 30-day budget in ~2 days). The Tracker's trip policy follows the
// multi-window form: it fires only when both a short and a long window
// burn above the threshold — the short window proves the problem is
// happening *now*, the long one proves it is not a blip. staleserve wires
// a tripped policy to triggered profiling, so a latency regression under
// load leaves a pprof behind (see internal/obs/profilering).
package slo

import (
	"fmt"
	"sync"
	"time"

	"github.com/wikistale/wikistale/internal/obs"
)

// Metric names published by Publish.
const (
	BurnRateGauge    = "wikistale_slo_burn_rate"
	BadFractionGauge = "wikistale_slo_bad_fraction"
	EventsGauge      = "wikistale_slo_window_events"
	TripsTotal       = "wikistale_slo_trips_total"
)

// Objective is one service-level objective. Target is the required good
// fraction (e.g. 0.99). When LatencyThreshold > 0 a request is bad if it
// took longer than the threshold; otherwise a request is bad if the
// caller marked it an error (the availability form).
type Objective struct {
	Name             string        `json:"name"`
	Target           float64       `json:"target"`
	LatencyThreshold time.Duration `json:"latency_threshold_ns,omitempty"`
}

// bad classifies one request under this objective.
func (o Objective) bad(latency time.Duration, isError bool) bool {
	if o.LatencyThreshold > 0 {
		return latency > o.LatencyThreshold || isError
	}
	return isError
}

// TripPolicy is the multi-window burn-rate alerting rule. Zero value
// means "never trips".
type TripPolicy struct {
	// ShortWindow and LongWindow must both be windows the tracker was
	// built with.
	ShortWindow time.Duration `json:"short_window_ns"`
	LongWindow  time.Duration `json:"long_window_ns"`
	// BurnThreshold is the burn rate both windows must exceed (>=).
	BurnThreshold float64 `json:"burn_threshold"`
	// MinEvents is the minimum event count in the short window before the
	// policy may trip; it keeps a cold start or a trickle of traffic from
	// paging on three requests.
	MinEvents uint64 `json:"min_events"`
}

// WindowStat is the state of one objective over one window.
type WindowStat struct {
	Window      string  `json:"window"`
	Total       uint64  `json:"total"`
	Bad         uint64  `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction / (1 - Target): 1.0 consumes the error
	// budget exactly at the allowed rate.
	BurnRate float64 `json:"burn_rate"`
}

// ObjectiveReport is the snapshot of one objective across every window.
type ObjectiveReport struct {
	Objective Objective    `json:"objective"`
	Windows   []WindowStat `json:"windows"`
	// Tripping reports whether the trip policy currently holds for this
	// objective.
	Tripping bool `json:"tripping"`
}

// Report is the full tracker snapshot, the JSON body of /debug/slo.
type Report struct {
	Policy     TripPolicy        `json:"policy"`
	Objectives []ObjectiveReport `json:"objectives"`
	// TripsTotal counts CheckTrips calls that found at least one tripping
	// objective.
	TripsTotal uint64 `json:"trips_total"`
}

// cell is one second of per-objective counts.
type cell struct {
	sec    int64 // unix second this cell currently represents
	total  []uint64
	bad    []uint64
	filled bool
}

// Tracker records request outcomes and answers window/burn-rate queries.
// All methods are safe for concurrent use.
type Tracker struct {
	objectives []Objective
	windows    []time.Duration
	policy     TripPolicy
	now        func() time.Time

	mu         sync.Mutex
	cells      []cell
	trips      uint64
	published  uint64          // trips already added to the TripsTotal counter
	lastActive map[string]bool // objective name → tripping at last CheckTrips
}

// New builds a tracker over the given objectives and windows (both must
// be non-empty; windows are truncated to whole seconds, minimum 1s). The
// ring is sized to the longest window.
func New(objectives []Objective, windows []time.Duration, policy TripPolicy) *Tracker {
	return NewWithClock(objectives, windows, policy, time.Now)
}

// NewWithClock is New with an injectable clock for tests.
func NewWithClock(objectives []Objective, windows []time.Duration, policy TripPolicy, now func() time.Time) *Tracker {
	if len(objectives) == 0 {
		panic("slo: no objectives")
	}
	if len(windows) == 0 {
		panic("slo: no windows")
	}
	ws := make([]time.Duration, len(windows))
	var longest time.Duration
	for i, w := range windows {
		if w < time.Second {
			w = time.Second
		}
		ws[i] = w.Truncate(time.Second)
		if ws[i] > longest {
			longest = ws[i]
		}
	}
	t := &Tracker{
		objectives: append([]Objective(nil), objectives...),
		windows:    ws,
		policy:     policy,
		now:        now,
		cells:      make([]cell, int(longest/time.Second)),
		lastActive: make(map[string]bool),
	}
	for i := range t.cells {
		t.cells[i].total = make([]uint64, len(objectives))
		t.cells[i].bad = make([]uint64, len(objectives))
	}
	return t
}

// Windows returns the tracker's windows (a copy).
func (t *Tracker) Windows() []time.Duration {
	return append([]time.Duration(nil), t.windows...)
}

// Objectives returns the tracker's objectives (a copy).
func (t *Tracker) Objectives() []Objective {
	return append([]Objective(nil), t.objectives...)
}

// Record classifies one request under every objective and counts it into
// the current second.
func (t *Tracker) Record(latency time.Duration, isError bool) {
	sec := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cell(sec)
	for i, o := range t.objectives {
		c.total[i]++
		if o.bad(latency, isError) {
			c.bad[i]++
		}
	}
}

// cell returns the ring cell for the given second, resetting it when the
// ring has wrapped past its previous tenant. Callers hold t.mu.
func (t *Tracker) cell(sec int64) *cell {
	c := &t.cells[int(sec%int64(len(t.cells)))]
	if c.sec != sec || !c.filled {
		c.sec = sec
		c.filled = true
		for i := range c.total {
			c.total[i], c.bad[i] = 0, 0
		}
	}
	return c
}

// windowCounts sums (total, bad) for objective i over the window ending
// now. Callers hold t.mu.
func (t *Tracker) windowCounts(i int, w time.Duration, nowSec int64) (total, bad uint64) {
	secs := int64(w / time.Second)
	if secs > int64(len(t.cells)) {
		secs = int64(len(t.cells))
	}
	// The window covers (nowSec-secs, nowSec]: the current (partial)
	// second counts, the cell that would be overwritten next does not.
	for s := nowSec - secs + 1; s <= nowSec; s++ {
		c := &t.cells[int(((s%int64(len(t.cells)))+int64(len(t.cells)))%int64(len(t.cells)))]
		if c.filled && c.sec == s {
			total += c.total[i]
			bad += c.bad[i]
		}
	}
	return total, bad
}

// burn computes the burn rate for counts under an objective.
func burn(o Objective, total, bad uint64) (badFraction, burnRate float64) {
	if total == 0 {
		return 0, 0
	}
	badFraction = float64(bad) / float64(total)
	budget := 1 - o.Target
	if budget <= 0 {
		// A 100% objective has no budget; any badness is an infinite
		// burn. Represent as badFraction / epsilon-free large value.
		if bad > 0 {
			return badFraction, badFraction / 1e-9
		}
		return badFraction, 0
	}
	return badFraction, badFraction / budget
}

// Snapshot returns the full report: every objective over every window,
// plus the current trip state.
func (t *Tracker) Snapshot() Report {
	nowSec := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := Report{Policy: t.policy, TripsTotal: t.trips}
	for i, o := range t.objectives {
		or := ObjectiveReport{Objective: o, Tripping: t.tripping(i, nowSec)}
		for _, w := range t.windows {
			total, bad := t.windowCounts(i, w, nowSec)
			bf, br := burn(o, total, bad)
			or.Windows = append(or.Windows, WindowStat{
				Window:      w.String(),
				Total:       total,
				Bad:         bad,
				BadFraction: bf,
				BurnRate:    br,
			})
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	return rep
}

// tripping evaluates the policy for objective i. Callers hold t.mu.
func (t *Tracker) tripping(i int, nowSec int64) bool {
	p := t.policy
	if p.BurnThreshold <= 0 || p.ShortWindow <= 0 || p.LongWindow <= 0 {
		return false
	}
	sTotal, sBad := t.windowCounts(i, p.ShortWindow, nowSec)
	if sTotal < p.MinEvents {
		return false
	}
	_, sBurn := burn(t.objectives[i], sTotal, sBad)
	if sBurn < p.BurnThreshold {
		return false
	}
	lTotal, lBad := t.windowCounts(i, p.LongWindow, nowSec)
	_, lBurn := burn(t.objectives[i], lTotal, lBad)
	return lBurn >= p.BurnThreshold
}

// Trip describes one objective found tripping by CheckTrips.
type Trip struct {
	Objective Objective
	// ShortBurn and LongBurn are the burn rates that crossed the policy.
	ShortBurn, LongBurn float64
}

// CheckTrips evaluates the trip policy for every objective and returns
// the objectives that just *started* tripping — an objective that was
// already tripping at the previous CheckTrips is not reported again until
// it recovers first (edge triggering, so one sustained incident captures
// one profile, not one per second).
func (t *Tracker) CheckTrips() []Trip {
	nowSec := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	var fired []Trip
	for i, o := range t.objectives {
		active := t.tripping(i, nowSec)
		if active && !t.lastActive[o.Name] {
			sTotal, sBad := t.windowCounts(i, t.policy.ShortWindow, nowSec)
			lTotal, lBad := t.windowCounts(i, t.policy.LongWindow, nowSec)
			_, sBurn := burn(o, sTotal, sBad)
			_, lBurn := burn(o, lTotal, lBad)
			fired = append(fired, Trip{Objective: o, ShortBurn: sBurn, LongBurn: lBurn})
		}
		t.lastActive[o.Name] = active
	}
	t.trips += uint64(len(fired))
	return fired
}

// Publish refreshes the wikistale_slo_* gauges in reg from the current
// state. Call at scrape time, the same pattern as epoch age: gauges set
// only when something happens freeze during quiet periods, which is the
// exact failure SLO gauges exist to expose.
func (t *Tracker) Publish(reg *obs.Registry) {
	reg.SetHelp(BurnRateGauge, "Error-budget burn rate per objective and window (1.0 = spending exactly the allowed budget).")
	reg.SetHelp(BadFractionGauge, "Fraction of requests violating the objective, per window.")
	reg.SetHelp(EventsGauge, "Requests observed in the window.")
	reg.SetHelp(TripsTotal, "Times the multi-window burn-rate policy started tripping.")
	rep := t.Snapshot()
	for _, or := range rep.Objectives {
		for _, w := range or.Windows {
			l := obs.Labels{"objective": or.Objective.Name, "window": w.Window}
			reg.Gauge(BurnRateGauge, l).Set(w.BurnRate)
			reg.Gauge(BadFractionGauge, l).Set(w.BadFraction)
			reg.Gauge(EventsGauge, l).Set(float64(w.Total))
		}
	}
	t.mu.Lock()
	delta := t.trips - t.published
	t.published = t.trips
	t.mu.Unlock()
	reg.Counter(TripsTotal, nil).Add(delta)
}

// Describe renders one objective as a human-readable sentence for
// /statusz: "99% of requests < 5ms" or "99.9% of requests succeed".
func Describe(o Objective) string {
	pct := o.Target * 100
	if o.LatencyThreshold > 0 {
		return fmt.Sprintf("%g%% of requests < %s", pct, o.LatencyThreshold)
	}
	return fmt.Sprintf("%g%% of requests succeed", pct)
}
