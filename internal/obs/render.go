package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE comments followed by
// one line per series, families and series in deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.ordered() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusText renders WritePrometheus into a string.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

func writeSeries(w io.Writer, f famView, s *series) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels, "", ""), s.c.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", ""), formatFloat(s.g.Value()))
		return err
	case KindHistogram:
		bounds, cum := s.h.Buckets()
		for i, b := range bounds {
			le := formatFloat(b)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, "le", le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, "le", "+Inf"), s.h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(s.labels, "", ""), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels, "", ""), s.h.Count())
		return err
	}
	return nil
}

// JSONSeries is the JSON shape of one labeled series. Value is set for
// counters and gauges; Count, Sum, and Buckets for histograms (Buckets
// maps upper bound to cumulative count, excluding +Inf which equals
// Count). Exemplars maps bucket upper bounds to the most recent
// trace-linked observation in that bucket, when any request or stage ran
// under a trace.
type JSONSeries struct {
	Labels    map[string]string   `json:"labels,omitempty"`
	Value     *float64            `json:"value,omitempty"`
	Count     *uint64             `json:"count,omitempty"`
	Sum       *float64            `json:"sum,omitempty"`
	Buckets   map[string]uint64   `json:"buckets,omitempty"`
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// JSONFamily is the JSON shape of one metric family.
type JSONFamily struct {
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []JSONSeries `json:"series"`
}

// JSON returns the registry contents as a name → family map.
func (r *Registry) JSON() map[string]JSONFamily {
	out := make(map[string]JSONFamily)
	for _, f := range r.snapshot() {
		jf := JSONFamily{Type: f.kind.String(), Help: f.help}
		for _, s := range f.ordered() {
			js := JSONSeries{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				v := float64(s.c.Value())
				js.Value = &v
			case KindGauge:
				v := s.g.Value()
				js.Value = &v
			case KindHistogram:
				count, sum := s.h.Count(), s.h.Sum()
				js.Count, js.Sum = &count, &sum
				bounds, cum := s.h.Buckets()
				js.Buckets = make(map[string]uint64, len(bounds))
				for i, b := range bounds {
					js.Buckets[formatFloat(b)] = cum[i]
				}
				js.Exemplars = s.h.Exemplars()
			}
			jf.Series = append(jf.Series, js)
		}
		out[f.name] = jf
	}
	return out
}

// WriteJSON renders the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSON())
}

// famView is a consistent copy of one family taken under the registry
// mutex. The series structs themselves are shared — their values are
// atomics, safe to read while writers keep updating.
type famView struct {
	name   string
	help   string
	kind   Kind
	series []*series
}

func (f famView) ordered() []*series { return f.series }

// snapshot copies every family (name-sorted) and its series (label-key
// sorted) under the registry mutex, so rendering never races with
// concurrent series registration.
func (r *Registry) snapshot() []famView {
	r.mu.Lock()
	views := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		v := famView{name: f.name, help: f.help, kind: f.kind,
			series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			v.series = append(v.series, s)
		}
		sort.Slice(v.series, func(i, j int) bool { return v.series[i].key < v.series[j].key })
		views = append(views, v)
	}
	r.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].name < views[j].name })
	return views
}

// formatLabels renders {k="v",...}, optionally appending one extra pair
// (used for histogram le labels). Returns "" when there are no labels.
func formatLabels(l Labels, extraKey, extraVal string) string {
	if len(l) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
