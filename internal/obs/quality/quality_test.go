package quality

import (
	"bytes"
	"fmt"
	"testing"
)

func TestFamilySlug(t *testing.T) {
	cases := map[string]string{
		"field correlations": "correlation",
		"association rules":  "assoc_rules",
		"mean baseline":      "mean_baseline",
		"threshold baseline": "threshold_baseline",
		"AND-ensemble":       "and_ensemble",
		"OR-ensemble":        "or_ensemble",
		"":                   "other",
		"--":                 "other",
		"  spaced  out  ":    "spaced_out",
	}
	for name, want := range cases {
		if got := FamilySlug(name); got != want {
			t.Errorf("FamilySlug(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestScorerConfirmAndExpire pins the outcome semantics: a change landing
// in [alert day, deadline] confirms; a watermark advancing past the
// deadline expires; per-family tallies follow the alert's attribution.
func TestScorerConfirmAndExpire(t *testing.T) {
	s := New(7)
	s.BeginEpoch(1, 100, []PendingAlert{
		{Page: "A", Property: "p", Families: []string{"correlation"}},
		{Page: "B", Property: "q", Families: []string{"assoc_rules", "correlation"}},
		{Page: "C", Property: "r", Families: []string{"mean_baseline"}},
	})

	// A change for (A, p) inside the horizon: confirmed.
	s.Observe("A", "p", 103)
	// An unrelated event advancing the watermark but not past any deadline.
	s.Observe("X", "y", 105)
	r := s.Snapshot()
	if r.Overall.Confirmed != 1 || r.Overall.Expired != 0 || r.Overall.Pending != 2 {
		t.Fatalf("after confirm: %+v", r.Overall)
	}

	// Watermark jumps past every deadline (100+7=107): B and C expire.
	s.Observe("X", "y", 120)
	r = s.Snapshot()
	if r.Overall.Confirmed != 1 || r.Overall.Expired != 2 || r.Overall.Pending != 0 {
		t.Fatalf("after sweep: %+v", r.Overall)
	}
	if got := r.Overall.Precision; got != 1.0/3 {
		t.Fatalf("precision = %v, want 1/3", got)
	}

	fams := map[string]ScopeReport{}
	for _, f := range r.Families {
		fams[f.Family] = f.ScopeReport
	}
	if f := fams["correlation"]; f.Confirmed != 1 || f.Expired != 1 {
		t.Fatalf("correlation family %+v, want 1 confirmed 1 expired", f)
	}
	if f := fams["assoc_rules"]; f.Confirmed != 0 || f.Expired != 1 {
		t.Fatalf("assoc_rules family %+v", f)
	}
	if f := fams["mean_baseline"]; f.Confirmed != 0 || f.Expired != 1 {
		t.Fatalf("mean_baseline family %+v", f)
	}

	// Recent ring is newest-first and covers all three outcomes.
	if len(r.Recent) != 3 {
		t.Fatalf("recent ring has %d entries, want 3", len(r.Recent))
	}
	if r.Recent[len(r.Recent)-1].Page != "A" || r.Recent[len(r.Recent)-1].Outcome != "confirmed" {
		t.Fatalf("oldest recent entry %+v, want the (A, p) confirmation", r.Recent[len(r.Recent)-1])
	}
}

// TestScorerLateChangeExpires: a change for a pending field arriving past
// its deadline scores expired, not confirmed — the alert was not borne
// out "shortly after", which is the claim being measured.
func TestScorerLateChangeExpires(t *testing.T) {
	s := New(7)
	s.BeginEpoch(1, 100, []PendingAlert{{Page: "A", Property: "p"}})
	s.Observe("A", "p", 108) // deadline is 107
	r := s.Snapshot()
	if r.Overall.Confirmed != 0 || r.Overall.Expired != 1 {
		t.Fatalf("late change: %+v, want expired", r.Overall)
	}
}

// TestScorerReassertedAlertKeepsDeadline: an alert re-asserted by a later
// epoch keeps its original alert day and deadline — the first assertion
// is the prediction being scored.
func TestScorerReassertedAlertKeepsDeadline(t *testing.T) {
	s := New(7)
	s.BeginEpoch(1, 100, []PendingAlert{{Page: "A", Property: "p"}})
	s.BeginEpoch(2, 106, []PendingAlert{{Page: "A", Property: "p"}})
	// Day 110 is within epoch 2's would-be deadline (113) but past epoch
	// 1's (107): the original prediction failed.
	s.Observe("A", "p", 110)
	r := s.Snapshot()
	if r.Overall.Expired != 1 || r.Overall.Confirmed != 0 {
		t.Fatalf("re-asserted alert: %+v, want the original deadline to govern", r.Overall)
	}
	if r.TrackedTotal != 1 {
		t.Fatalf("tracked %d, want 1 (re-assertion is not a new prediction)", r.TrackedTotal)
	}
}

// TestScorerPendingCap: registrations beyond the cap are counted and
// dropped, never grow the map.
func TestScorerPendingCap(t *testing.T) {
	s := New(7)
	s.maxPending = 3
	alerts := make([]PendingAlert, 5)
	for i := range alerts {
		alerts[i] = PendingAlert{Page: fmt.Sprintf("P%d", i), Property: "x"}
	}
	s.BeginEpoch(1, 100, alerts)
	r := s.Snapshot()
	if r.Overall.Pending != 3 || r.Dropped != 2 || r.TrackedTotal != 3 {
		t.Fatalf("cap: pending %d dropped %d tracked %d", r.Overall.Pending, r.Dropped, r.TrackedTotal)
	}
}

// TestScorerStateRoundTrip is the persistence contract: Restore(Marshal)
// followed by Marshal reproduces the exact bytes, and the restored scorer
// behaves identically.
func TestScorerStateRoundTrip(t *testing.T) {
	s := New(7)
	s.BeginEpoch(1, 100, []PendingAlert{
		{Page: "A", Property: "p", Families: []string{"correlation"}},
		{Page: "B", Property: "q", Families: []string{"assoc_rules"}},
		{Page: "C", Property: "r"},
	})
	s.Observe("A", "p", 103) // one confirmed outcome in the ring
	state := s.MarshalBinary()

	restored := New(30) // different configured horizon: config, not state
	if err := restored.Restore(state); err != nil {
		t.Fatal(err)
	}
	if again := restored.MarshalBinary(); !bytes.Equal(state, again) {
		t.Fatalf("restore → marshal not bit-identical:\n%x\n%x", state, again)
	}
	if restored.Horizon() != 30 {
		t.Fatalf("horizon %d overwritten by Restore; it is configuration", restored.Horizon())
	}

	// The restored pending alerts keep their recorded deadlines: (B, q)
	// expires at the old deadline 107, not 100+30.
	restored.Observe("X", "y", 110)
	r := restored.Snapshot()
	if r.Overall.Expired != 2 || r.Overall.Pending != 0 {
		t.Fatalf("restored deadlines not honored: %+v", r.Overall)
	}
}

// TestScorerRestoreRejectsMalformed: truncations and corruptions error
// out and leave the scorer untouched.
func TestScorerRestoreRejectsMalformed(t *testing.T) {
	s := New(7)
	s.BeginEpoch(3, 50, []PendingAlert{{Page: "keep", Property: "me"}})
	good := s.MarshalBinary()

	cases := [][]byte{
		nil,
		[]byte("WQSX"),
		[]byte("WQS1\xff"),       // bad version
		good[:len(good)-1],       // truncated tail
		append(good, 0xff, 0xff), // trailing bytes
	}
	// A absurd count in place of the family count must error, not allocate.
	corrupt := append([]byte(nil), good[:len("WQS1")+2]...)
	corrupt = append(corrupt, 0xff, 0xff, 0xff, 0xff, 0x0f)
	cases = append(cases, corrupt)

	for i, data := range cases {
		if err := s.Restore(data); err == nil {
			t.Errorf("case %d: malformed state accepted", i)
		}
	}
	if !bytes.Equal(s.MarshalBinary(), good) {
		t.Fatal("failed Restore mutated the scorer")
	}
}

// TestScorerSweepDeterministic: the order expired outcomes land in the
// recent ring does not depend on map iteration — two scorers fed the same
// sequence marshal identically.
func TestScorerSweepDeterministic(t *testing.T) {
	build := func() *Scorer {
		s := New(5)
		var alerts []PendingAlert
		for i := 0; i < 20; i++ {
			alerts = append(alerts, PendingAlert{Page: fmt.Sprintf("P%02d", 19-i), Property: "x"})
		}
		s.BeginEpoch(1, 10, alerts)
		s.Observe("Z", "z", 40) // sweeps all 20 at once
		return s
	}
	a, b := build().MarshalBinary(), build().MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("sweep order is nondeterministic")
	}
}
