package quality

import (
	"sort"
	"sync"
)

// Epoch diffing: at swap time the serving layer renders the outgoing and
// incoming epochs' rule sets into RuleSets values (plain string keys —
// this package stays decoupled from the model types) and calls Diff. The
// result feeds wikistale_epoch_diff_* metrics, one structured log line
// per swap, and a bounded last-N ring behind GET /debug/epochdiff — so a
// retrain that silently guts the model (rules collapsing, the alert set
// churning wholesale) is visible before users notice.
//
// Determinism: Diff walks both maps key-by-key and sorts every sample
// list, so identical epoch pairs produce identical EpochDiff values
// regardless of map iteration order.

// diffSampleCap bounds each sample list kept in an EpochDiff — the
// counts are complete, the samples are a peek.
const diffSampleCap = 8

// DefaultShiftEps is the confidence-shift threshold: an association rule
// present in both epochs counts as shifted when its confidence moved by
// more than this.
const DefaultShiftEps = 0.05

// DefaultRingCap is the default /debug/epochdiff ring size.
const DefaultRingCap = 16

// RuleSets is one epoch's diffable surface, rendered by the caller:
// Corr maps a correlation-rule key to its distance, Assoc maps an
// association-rule key to its confidence, and Alerts holds the keys of
// the default-window alert set.
type RuleSets struct {
	Seq    uint64
	AsOf   string
	Corr   map[string]float64
	Assoc  map[string]float64
	Alerts map[string]struct{}
}

// Shift is one association rule whose confidence moved more than the
// epsilon between epochs.
type Shift struct {
	Rule string  `json:"rule"`
	From float64 `json:"from"`
	To   float64 `json:"to"`
}

// EpochDiff is the rendered difference between two consecutive epochs.
type EpochDiff struct {
	FromSeq uint64 `json:"from_seq"`
	ToSeq   uint64 `json:"to_seq"`
	// AsOf is the incoming epoch's data span end.
	AsOf string `json:"asof,omitempty"`

	CorrAdded    int `json:"corr_added"`
	CorrRemoved  int `json:"corr_removed"`
	AssocAdded   int `json:"assoc_added"`
	AssocRemoved int `json:"assoc_removed"`
	AssocShifted int `json:"assoc_shifted"`
	// AlertsEntered / AlertsLeft count fields entering/leaving the
	// default-window alert set.
	AlertsEntered int `json:"alerts_entered"`
	AlertsLeft    int `json:"alerts_left"`

	// Sorted, bounded samples of each change class.
	CorrAddedSample     []string `json:"corr_added_sample,omitempty"`
	CorrRemovedSample   []string `json:"corr_removed_sample,omitempty"`
	AssocAddedSample    []string `json:"assoc_added_sample,omitempty"`
	AssocRemovedSample  []string `json:"assoc_removed_sample,omitempty"`
	AssocShiftedSample  []Shift  `json:"assoc_shifted_sample,omitempty"`
	AlertsEnteredSample []string `json:"alerts_entered_sample,omitempty"`
	AlertsLeftSample    []string `json:"alerts_left_sample,omitempty"`
}

// Total is the number of individual changes the diff found across all
// classes — zero means the swap changed nothing diffable.
func (d EpochDiff) Total() int {
	return d.CorrAdded + d.CorrRemoved + d.AssocAdded + d.AssocRemoved +
		d.AssocShifted + d.AlertsEntered + d.AlertsLeft
}

// sortTrim sorts keys and truncates to the sample cap.
func sortTrim(keys []string) []string {
	sort.Strings(keys)
	if len(keys) > diffSampleCap {
		keys = keys[:diffSampleCap]
	}
	return keys
}

// diffKeys splits prev/next key sets into added and removed lists
// (complete counts are the lengths before trimming — so return counts
// separately).
func diffKeySets[V any](prev, next map[string]V) (added, removed []string) {
	for k := range next {
		if _, ok := prev[k]; !ok {
			added = append(added, k)
		}
	}
	for k := range prev {
		if _, ok := next[k]; !ok {
			removed = append(removed, k)
		}
	}
	return added, removed
}

// Diff renders the difference between two epochs' rule sets. shiftEps <= 0
// selects DefaultShiftEps.
func Diff(prev, next RuleSets, shiftEps float64) EpochDiff {
	if shiftEps <= 0 {
		shiftEps = DefaultShiftEps
	}
	d := EpochDiff{FromSeq: prev.Seq, ToSeq: next.Seq, AsOf: next.AsOf}

	corrAdded, corrRemoved := diffKeySets(prev.Corr, next.Corr)
	d.CorrAdded, d.CorrRemoved = len(corrAdded), len(corrRemoved)
	d.CorrAddedSample = sortTrim(corrAdded)
	d.CorrRemovedSample = sortTrim(corrRemoved)

	assocAdded, assocRemoved := diffKeySets(prev.Assoc, next.Assoc)
	d.AssocAdded, d.AssocRemoved = len(assocAdded), len(assocRemoved)
	d.AssocAddedSample = sortTrim(assocAdded)
	d.AssocRemovedSample = sortTrim(assocRemoved)

	var shifted []Shift
	for k, from := range prev.Assoc {
		if to, ok := next.Assoc[k]; ok {
			delta := to - from
			if delta < 0 {
				delta = -delta
			}
			if delta > shiftEps {
				shifted = append(shifted, Shift{Rule: k, From: from, To: to})
			}
		}
	}
	d.AssocShifted = len(shifted)
	sort.Slice(shifted, func(i, j int) bool { return shifted[i].Rule < shifted[j].Rule })
	if len(shifted) > diffSampleCap {
		shifted = shifted[:diffSampleCap]
	}
	d.AssocShiftedSample = shifted

	entered, left := diffKeySets(prev.Alerts, next.Alerts)
	d.AlertsEntered, d.AlertsLeft = len(entered), len(left)
	d.AlertsEnteredSample = sortTrim(entered)
	d.AlertsLeftSample = sortTrim(left)
	return d
}

// Ring is the bounded last-N diff history behind GET /debug/epochdiff.
// Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	cap   int
	diffs []EpochDiff
}

// NewRing builds a ring keeping the last n diffs (n <= 0 selects
// DefaultRingCap).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingCap
	}
	return &Ring{cap: n}
}

// Push appends one diff, evicting the oldest past the cap.
func (r *Ring) Push(d EpochDiff) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.diffs) >= r.cap {
		copy(r.diffs, r.diffs[1:])
		r.diffs = r.diffs[:len(r.diffs)-1]
	}
	r.diffs = append(r.diffs, d)
}

// Snapshot returns the buffered diffs newest first.
func (r *Ring) Snapshot() []EpochDiff {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EpochDiff, len(r.diffs))
	for i, d := range r.diffs {
		out[len(r.diffs)-1-i] = d
	}
	return out
}

// Len returns the number of buffered diffs.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.diffs)
}
