// Package quality is the model-plane observability layer: it watches
// whether the detector's stale alerts are actually borne out by the live
// feed. The paper's Table-1 precision is a one-shot offline number; a
// continuously retraining system needs the online analogue — of the
// fields we flagged as stale, how many did receive a change shortly
// after?
//
// The Scorer tracks that. On every epoch swap the serving layer snapshots
// the alert set (BeginEpoch); every previously-alerted (page, property)
// pair becomes a pending prediction with a deadline of alert day plus a
// configurable horizon, carrying the detector families whose votes fired
// for it. As live change events arrive (Observe), a pending alert whose
// field changes on or after its alert day and no later than its deadline
// scores *confirmed*; once the event-time watermark passes a pending
// alert's deadline with no such change, it scores *expired*. Confirmed /
// (confirmed + expired) is the rolling online-precision proxy, kept
// overall and per detector family, exported as wikistale_quality_*
// metrics and served as the GET /debug/quality report.
//
// All clocks here are event time (timeline.Day), never wall time: a
// historical replay scores exactly like a live feed, and the state
// machine is deterministic for a given event sequence — which is what
// lets the scorer's state persist in the epoch-store snapshot envelope
// and round-trip bit-identically through a restart.
package quality

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/timeline"
)

// dayString renders a timeline day number as its ISO date — the form the
// report and recent-outcome ring use.
func dayString(d int32) string { return timeline.Day(d).String() }

// DefaultHorizonDays is the scoring horizon when none is configured: an
// alert not followed by a change within this many event-time days of its
// alert day expires.
const DefaultHorizonDays = 14

// DefaultMaxPending bounds the pending-alert map. Registrations beyond
// the cap are counted (wikistale_quality_alerts_dropped_total) and
// dropped — a runaway alert set must not grow serving memory without
// bound.
const DefaultMaxPending = 1 << 16

// recentCap bounds the scored-outcome ring kept for the /debug/quality
// report.
const recentCap = 32

// FamilySlug maps a predictor's display name (core.Detector.Predictors's
// Name values) to the bounded label the per-family metrics use:
// "field correlations" → "correlation", "association rules" →
// "assoc_rules", anything else lowercased with non-alphanumeric runs
// collapsed to one underscore ("mean baseline" → "mean_baseline",
// "AND-ensemble" → "and_ensemble").
func FamilySlug(name string) string {
	switch name {
	case "field correlations":
		return "correlation"
	case "association rules":
		return "assoc_rules"
	}
	var b strings.Builder
	b.Grow(len(name))
	pendingSep := false
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(r - 'A' + 'a')
		default:
			pendingSep = true
		}
	}
	if b.Len() == 0 {
		return "other"
	}
	return b.String()
}

// PendingAlert is one alerted field handed to BeginEpoch: the names the
// live feed will use to address it, plus the detector families whose
// votes fired for it (FamilySlug form).
type PendingAlert struct {
	Page     string
	Property string
	Families []string
}

// pending is one tracked prediction awaiting its outcome.
type pending struct {
	page, prop string
	alertDay   int32 // asOf of the epoch that asserted the alert
	deadline   int32 // alertDay + horizon, inclusive
	epoch      uint64
	families   []string
}

// outcomeCounts tallies scored outcomes for one scope (overall or one
// family).
type outcomeCounts struct {
	Confirmed uint64 `json:"confirmed"`
	Expired   uint64 `json:"expired"`
}

// precision is the online-precision proxy: confirmed / scored. Zero when
// nothing has been scored yet.
func (c outcomeCounts) precision() float64 {
	total := c.Confirmed + c.Expired
	if total == 0 {
		return 0
	}
	return float64(c.Confirmed) / float64(total)
}

// Outcome is one scored alert, kept in the bounded recent ring of the
// report.
type Outcome struct {
	Page     string   `json:"page"`
	Property string   `json:"property"`
	Outcome  string   `json:"outcome"` // "confirmed" or "expired"
	AlertDay string   `json:"alert_day"`
	Day      string   `json:"day"` // confirming change day, or the watermark day that expired it
	Epoch    uint64   `json:"epoch"`
	Families []string `json:"families,omitempty"`
}

// Scorer is the online alert-outcome tracker. Safe for concurrent use:
// swaps register alert sets from the retrain goroutine, the ingest loop
// observes events, and /debug/quality reads reports, all under one
// mutex. Nothing here runs on the request hot path.
type Scorer struct {
	mu         sync.Mutex
	horizon    int32
	maxPending int
	watermark  int32 // newest event day observed; 0 until the first event
	hasMark    bool
	epoch      uint64 // newest epoch registered
	epochAsOf  int32
	pend       map[string]*pending // key: page + "\x00" + property
	overall    outcomeCounts
	families   map[string]*outcomeCounts
	tracked    uint64 // alerts ever registered
	dropped    uint64 // registrations refused by the cap
	recent     []Outcome

	pendingGauge   *obs.Gauge
	trackedTotal   *obs.Counter
	droppedTotal   *obs.Counter
	precisionGauge *obs.Gauge
}

// New constructs a scorer. horizonDays <= 0 selects DefaultHorizonDays.
func New(horizonDays int) *Scorer {
	if horizonDays <= 0 {
		horizonDays = DefaultHorizonDays
	}
	reg := obs.Default
	reg.SetHelp("wikistale_quality_alerts_pending", "Alerted fields awaiting an outcome (confirm-or-expire).")
	reg.SetHelp("wikistale_quality_alerts_tracked_total", "Alerted fields registered for outcome scoring across all epochs.")
	reg.SetHelp("wikistale_quality_alerts_dropped_total", "Alert registrations refused because the pending cap was reached.")
	reg.SetHelp("wikistale_quality_alerts_scored_total", "Alert outcomes scored, by outcome (confirmed = change landed within the horizon, expired = it did not).")
	reg.SetHelp("wikistale_quality_family_scored_total", "Alert outcomes scored, by detector family and outcome.")
	reg.SetHelp("wikistale_quality_online_precision", "Rolling online-precision proxy: confirmed / (confirmed + expired); per-family with the family label.")
	reg.SetHelp("wikistale_quality_horizon_days", "Configured scoring horizon in event-time days.")
	s := &Scorer{
		horizon:        int32(horizonDays),
		maxPending:     DefaultMaxPending,
		pend:           make(map[string]*pending),
		families:       make(map[string]*outcomeCounts),
		pendingGauge:   reg.Gauge("wikistale_quality_alerts_pending", nil),
		trackedTotal:   reg.Counter("wikistale_quality_alerts_tracked_total", nil),
		droppedTotal:   reg.Counter("wikistale_quality_alerts_dropped_total", nil),
		precisionGauge: reg.Gauge("wikistale_quality_online_precision", nil),
	}
	reg.Gauge("wikistale_quality_horizon_days", nil).Set(float64(horizonDays))
	return s
}

// SetHorizon replaces the scoring horizon for alerts registered from now
// on; already-pending alerts keep their deadlines.
func (s *Scorer) SetHorizon(days int) {
	if days <= 0 {
		return
	}
	s.mu.Lock()
	s.horizon = int32(days)
	s.mu.Unlock()
	obs.Default.Gauge("wikistale_quality_horizon_days", nil).Set(float64(days))
}

// Horizon returns the configured scoring horizon in days.
func (s *Scorer) Horizon() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.horizon)
}

func pendKey(page, prop string) string { return page + "\x00" + prop }

// BeginEpoch registers a freshly swapped epoch's alert set: every alert
// not already pending becomes a prediction with deadline asOf + horizon.
// Alerts already pending (re-asserted by the new epoch) keep their
// original alert day and deadline — the first assertion is the
// prediction being scored. asOfDay is the epoch's data span end as a
// timeline.Day int.
func (s *Scorer) BeginEpoch(epochSeq uint64, asOfDay int32, alerts []PendingAlert) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = epochSeq
	s.epochAsOf = asOfDay
	for _, a := range alerts {
		k := pendKey(a.Page, a.Property)
		if _, ok := s.pend[k]; ok {
			continue
		}
		if len(s.pend) >= s.maxPending {
			s.dropped++
			s.droppedTotal.Inc()
			continue
		}
		s.pend[k] = &pending{
			page:     a.Page,
			prop:     a.Property,
			alertDay: asOfDay,
			deadline: asOfDay + s.horizon,
			epoch:    epochSeq,
			families: a.Families,
		}
		s.tracked++
		s.trackedTotal.Inc()
	}
	s.pendingGauge.Set(float64(len(s.pend)))
}

// Observe feeds one live change event: a pending alert for (page,
// property) whose change day falls in [alert day, deadline] scores
// confirmed. Advancing the event-time watermark past pending deadlines
// expires them. Call once per event, in feed order.
func (s *Scorer) Observe(page, property string, day int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pend[pendKey(page, property)]; ok && day >= p.alertDay {
		if day <= p.deadline {
			s.scoreLocked(p, "confirmed", day)
		} else {
			s.scoreLocked(p, "expired", day)
		}
	}
	if !s.hasMark || day > s.watermark {
		s.watermark = day
		s.hasMark = true
		s.sweepLocked()
	}
	s.pendingGauge.Set(float64(len(s.pend)))
}

// sweepLocked expires every pending alert whose deadline the watermark
// has passed. Deterministic order (sorted keys) so the recent ring — and
// therefore the marshaled state — does not depend on map iteration.
func (s *Scorer) sweepLocked() {
	var due []string
	for k, p := range s.pend {
		if s.watermark > p.deadline {
			due = append(due, k)
		}
	}
	sort.Strings(due)
	for _, k := range due {
		s.scoreLocked(s.pend[k], "expired", s.watermark)
	}
}

// scoreLocked finalizes one pending alert's outcome and removes it.
func (s *Scorer) scoreLocked(p *pending, outcome string, day int32) {
	delete(s.pend, pendKey(p.page, p.prop))
	confirmed := outcome == "confirmed"
	if confirmed {
		s.overall.Confirmed++
	} else {
		s.overall.Expired++
	}
	reg := obs.Default
	reg.Counter("wikistale_quality_alerts_scored_total", obs.Labels{"outcome": outcome}).Inc()
	for _, fam := range p.families {
		fc := s.families[fam]
		if fc == nil {
			fc = &outcomeCounts{}
			s.families[fam] = fc
		}
		if confirmed {
			fc.Confirmed++
		} else {
			fc.Expired++
		}
		reg.Counter("wikistale_quality_family_scored_total", obs.Labels{"family": fam, "outcome": outcome}).Inc()
		reg.Gauge("wikistale_quality_online_precision", obs.Labels{"family": fam}).Set(fc.precision())
	}
	s.precisionGauge.Set(s.overall.precision())
	out := Outcome{
		Page:     p.page,
		Property: p.prop,
		Outcome:  outcome,
		AlertDay: dayString(p.alertDay),
		Day:      dayString(day),
		Epoch:    p.epoch,
		Families: p.families,
	}
	if len(s.recent) >= recentCap {
		copy(s.recent, s.recent[1:])
		s.recent = s.recent[:len(s.recent)-1]
	}
	s.recent = append(s.recent, out)
}

// ScopeReport is one scope's scored totals plus the precision proxy.
type ScopeReport struct {
	Pending   int     `json:"pending,omitempty"`
	Confirmed uint64  `json:"confirmed"`
	Expired   uint64  `json:"expired"`
	Precision float64 `json:"precision"`
}

// FamilyReport is one detector family's row in the report.
type FamilyReport struct {
	Family string `json:"family"`
	ScopeReport
}

// Report is the GET /debug/quality payload.
type Report struct {
	HorizonDays int    `json:"horizon_days"`
	Epoch       uint64 `json:"epoch"`
	EpochAsOf   string `json:"epoch_asof,omitempty"`
	// Watermark is the newest event day observed (event time, not wall
	// time); empty before the first event.
	Watermark string `json:"watermark,omitempty"`
	// TrackedTotal counts alerts ever registered; Dropped those refused by
	// the pending cap.
	TrackedTotal uint64         `json:"tracked_total"`
	Dropped      uint64         `json:"dropped,omitempty"`
	Overall      ScopeReport    `json:"overall"`
	Families     []FamilyReport `json:"families,omitempty"`
	Recent       []Outcome      `json:"recent,omitempty"`
}

// Snapshot returns the current report. Families are sorted by slug so
// the payload is deterministic.
func (s *Scorer) Snapshot() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Report{
		HorizonDays:  int(s.horizon),
		Epoch:        s.epoch,
		TrackedTotal: s.tracked,
		Dropped:      s.dropped,
		Overall: ScopeReport{
			Pending:   len(s.pend),
			Confirmed: s.overall.Confirmed,
			Expired:   s.overall.Expired,
			Precision: s.overall.precision(),
		},
	}
	if s.epoch > 0 {
		r.EpochAsOf = dayString(s.epochAsOf)
	}
	if s.hasMark {
		r.Watermark = dayString(s.watermark)
	}
	slugs := make([]string, 0, len(s.families))
	for slug := range s.families {
		slugs = append(slugs, slug)
	}
	sort.Strings(slugs)
	for _, slug := range slugs {
		fc := s.families[slug]
		r.Families = append(r.Families, FamilyReport{
			Family: slug,
			ScopeReport: ScopeReport{
				Confirmed: fc.Confirmed,
				Expired:   fc.Expired,
				Precision: fc.precision(),
			},
		})
	}
	if n := len(s.recent); n > 0 {
		r.Recent = make([]Outcome, n)
		for i, o := range s.recent {
			r.Recent[n-1-i] = o // newest first
		}
	}
	return r
}

// State serialization: the scorer's event-time state machine persists in
// the epoch-store snapshot envelope, so a restart resumes scoring where
// the process left off instead of forgetting every pending prediction.
// The encoding is canonical — maps are walked in sorted order — so
// Restore(MarshalBinary()) followed by MarshalBinary() reproduces the
// exact same bytes (the restart round-trip test's contract). The
// configured horizon is deliberately NOT part of the state: it is
// configuration, and a restart with a new -quality-horizon must apply it
// to new alerts while pending ones keep their recorded deadlines.
const (
	stateMagic   = "WQS1"
	stateVersion = 1
)

func appendU32(buf []byte, v int32) []byte {
	return binary.AppendUvarint(buf, uint64(uint32(v)))
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// MarshalBinary serializes the scorer state canonically.
func (s *Scorer) MarshalBinary() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 0, 256)
	buf = append(buf, stateMagic...)
	buf = append(buf, stateVersion)
	flags := byte(0)
	if s.hasMark {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = appendU32(buf, s.watermark)
	buf = binary.AppendUvarint(buf, s.epoch)
	buf = appendU32(buf, s.epochAsOf)
	buf = binary.AppendUvarint(buf, s.tracked)
	buf = binary.AppendUvarint(buf, s.dropped)
	buf = binary.AppendUvarint(buf, s.overall.Confirmed)
	buf = binary.AppendUvarint(buf, s.overall.Expired)

	slugs := make([]string, 0, len(s.families))
	for slug := range s.families {
		slugs = append(slugs, slug)
	}
	sort.Strings(slugs)
	buf = binary.AppendUvarint(buf, uint64(len(slugs)))
	for _, slug := range slugs {
		fc := s.families[slug]
		buf = appendStr(buf, slug)
		buf = binary.AppendUvarint(buf, fc.Confirmed)
		buf = binary.AppendUvarint(buf, fc.Expired)
	}

	keys := make([]string, 0, len(s.pend))
	for k := range s.pend {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		p := s.pend[k]
		buf = appendStr(buf, p.page)
		buf = appendStr(buf, p.prop)
		buf = appendU32(buf, p.alertDay)
		buf = appendU32(buf, p.deadline)
		buf = binary.AppendUvarint(buf, p.epoch)
		buf = binary.AppendUvarint(buf, uint64(len(p.families)))
		for _, fam := range p.families {
			buf = appendStr(buf, fam)
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(s.recent)))
	for _, o := range s.recent {
		buf = appendStr(buf, o.Page)
		buf = appendStr(buf, o.Property)
		buf = appendStr(buf, o.Outcome)
		buf = appendStr(buf, o.AlertDay)
		buf = appendStr(buf, o.Day)
		buf = binary.AppendUvarint(buf, o.Epoch)
		buf = binary.AppendUvarint(buf, uint64(len(o.Families)))
		for _, fam := range o.Families {
			buf = appendStr(buf, fam)
		}
	}
	return buf
}

// Restore replaces the scorer's state with a MarshalBinary payload.
// Malformed input returns an error and leaves the scorer unchanged.
func (s *Scorer) Restore(data []byte) error {
	if len(data) < len(stateMagic)+2 || string(data[:len(stateMagic)]) != stateMagic {
		return fmt.Errorf("quality: state: bad magic")
	}
	if v := data[len(stateMagic)]; v != stateVersion {
		return fmt.Errorf("quality: state version %d, this build reads %d", v, stateVersion)
	}
	r := &stateReader{data: data, pos: len(stateMagic) + 1}
	flags, err := r.ReadByte()
	if err != nil {
		return err
	}
	watermark, err := r.u32("watermark")
	if err != nil {
		return err
	}
	epoch, err := r.uvarint("epoch")
	if err != nil {
		return err
	}
	epochAsOf, err := r.u32("epoch asof")
	if err != nil {
		return err
	}
	tracked, err := r.uvarint("tracked")
	if err != nil {
		return err
	}
	dropped, err := r.uvarint("dropped")
	if err != nil {
		return err
	}
	confirmed, err := r.uvarint("confirmed")
	if err != nil {
		return err
	}
	expired, err := r.uvarint("expired")
	if err != nil {
		return err
	}
	nfam, err := r.count("families")
	if err != nil {
		return err
	}
	families := make(map[string]*outcomeCounts, nfam)
	for i := 0; i < nfam; i++ {
		slug, err := r.str("family slug")
		if err != nil {
			return err
		}
		c, err := r.uvarint("family confirmed")
		if err != nil {
			return err
		}
		e, err := r.uvarint("family expired")
		if err != nil {
			return err
		}
		families[slug] = &outcomeCounts{Confirmed: c, Expired: e}
	}
	npend, err := r.count("pending")
	if err != nil {
		return err
	}
	pend := make(map[string]*pending, npend)
	for i := 0; i < npend; i++ {
		p := &pending{}
		if p.page, err = r.str("pending page"); err != nil {
			return err
		}
		if p.prop, err = r.str("pending property"); err != nil {
			return err
		}
		if p.alertDay, err = r.u32("pending alert day"); err != nil {
			return err
		}
		if p.deadline, err = r.u32("pending deadline"); err != nil {
			return err
		}
		if p.epoch, err = r.uvarint("pending epoch"); err != nil {
			return err
		}
		nf, err := r.count("pending families")
		if err != nil {
			return err
		}
		for j := 0; j < nf; j++ {
			fam, err := r.str("pending family")
			if err != nil {
				return err
			}
			p.families = append(p.families, fam)
		}
		pend[pendKey(p.page, p.prop)] = p
	}
	nrec, err := r.count("recent")
	if err != nil {
		return err
	}
	var recent []Outcome
	for i := 0; i < nrec; i++ {
		var o Outcome
		if o.Page, err = r.str("recent page"); err != nil {
			return err
		}
		if o.Property, err = r.str("recent property"); err != nil {
			return err
		}
		if o.Outcome, err = r.str("recent outcome"); err != nil {
			return err
		}
		if o.AlertDay, err = r.str("recent alert day"); err != nil {
			return err
		}
		if o.Day, err = r.str("recent day"); err != nil {
			return err
		}
		if o.Epoch, err = r.uvarint("recent epoch"); err != nil {
			return err
		}
		nf, err := r.count("recent families")
		if err != nil {
			return err
		}
		for j := 0; j < nf; j++ {
			fam, err := r.str("recent family")
			if err != nil {
				return err
			}
			o.Families = append(o.Families, fam)
		}
		recent = append(recent, o)
	}
	if r.pos != len(data) {
		return fmt.Errorf("quality: state: %d trailing bytes", len(data)-r.pos)
	}

	s.mu.Lock()
	s.hasMark = flags&1 != 0
	s.watermark = watermark
	s.epoch = epoch
	s.epochAsOf = epochAsOf
	s.tracked = tracked
	s.dropped = dropped
	s.overall = outcomeCounts{Confirmed: confirmed, Expired: expired}
	s.families = families
	s.pend = pend
	s.recent = recent
	s.pendingGauge.Set(float64(len(s.pend)))
	s.precisionGauge.Set(s.overall.precision())
	for slug, fc := range families {
		obs.Default.Gauge("wikistale_quality_online_precision", obs.Labels{"family": slug}).Set(fc.precision())
	}
	s.mu.Unlock()
	return nil
}

// stateReader walks a state payload with bounds errors instead of
// panics (the same discipline as the epoch-store snapshot reader).
type stateReader struct {
	data []byte
	pos  int
}

func (r *stateReader) ReadByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("quality: state: unexpected end of payload")
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *stateReader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("quality: state: %s: truncated", what)
	}
	return v, nil
}

func (r *stateReader) u32(what string) (int32, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > 1<<32-1 {
		return 0, fmt.Errorf("quality: state: %s out of range", what)
	}
	return int32(uint32(v)), nil
}

func (r *stateReader) count(what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.data)-r.pos) {
		return 0, fmt.Errorf("quality: state: %s count %d exceeds payload", what, v)
	}
	return int(v), nil
}

func (r *stateReader) str(what string) (string, error) {
	n, err := r.count(what)
	if err != nil {
		return "", err
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}
