package quality

import (
	"fmt"
	"reflect"
	"testing"
)

func TestDiffCountsAndSamples(t *testing.T) {
	prev := RuleSets{
		Seq:    1,
		Corr:   map[string]float64{"a<->b": 1, "c<->d": 2},
		Assoc:  map[string]float64{"t: x->y": 0.9, "t: x->z": 0.5},
		Alerts: map[string]struct{}{"P1/f": {}, "P2/g": {}},
	}
	next := RuleSets{
		Seq:    2,
		AsOf:   "2024-01-02",
		Corr:   map[string]float64{"c<->d": 2, "e<->f": 3},
		Assoc:  map[string]float64{"t: x->y": 0.8, "t: u->v": 0.7},
		Alerts: map[string]struct{}{"P2/g": {}, "P3/h": {}},
	}
	d := Diff(prev, next, 0.05)
	if d.FromSeq != 1 || d.ToSeq != 2 || d.AsOf != "2024-01-02" {
		t.Fatalf("header %+v", d)
	}
	if d.CorrAdded != 1 || d.CorrRemoved != 1 {
		t.Fatalf("corr: %d added %d removed", d.CorrAdded, d.CorrRemoved)
	}
	if d.AssocAdded != 1 || d.AssocRemoved != 1 || d.AssocShifted != 1 {
		t.Fatalf("assoc: %+v", d)
	}
	if d.AlertsEntered != 1 || d.AlertsLeft != 1 {
		t.Fatalf("alerts: %d entered %d left", d.AlertsEntered, d.AlertsLeft)
	}
	if got := d.AssocShiftedSample; len(got) != 1 || got[0].Rule != "t: x->y" || got[0].From != 0.9 || got[0].To != 0.8 {
		t.Fatalf("shifted sample %+v", got)
	}
	if d.Total() != 7 {
		t.Fatalf("total %d, want 7", d.Total())
	}
	// A shift within epsilon does not count.
	next.Assoc["t: x->y"] = 0.87
	if d := Diff(prev, next, 0.05); d.AssocShifted != 0 {
		t.Fatalf("0.03 move counted as a shift at eps 0.05")
	}
}

// TestDiffDeterministic: identical inputs produce deeply equal diffs
// across runs — no map-iteration order leaks into samples.
func TestDiffDeterministic(t *testing.T) {
	build := func() RuleSets {
		rs := RuleSets{Seq: 2, Corr: map[string]float64{}, Assoc: map[string]float64{}, Alerts: map[string]struct{}{}}
		for i := 0; i < 50; i++ {
			rs.Corr[fmt.Sprintf("c%02d", i)] = float64(i)
			rs.Assoc[fmt.Sprintf("a%02d", i)] = float64(i) / 100
			rs.Alerts[fmt.Sprintf("p%02d/f", i)] = struct{}{}
		}
		return rs
	}
	prev := RuleSets{Seq: 1, Corr: map[string]float64{}, Assoc: map[string]float64{}, Alerts: map[string]struct{}{}}
	a := Diff(prev, build(), 0)
	b := Diff(prev, build(), 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("diff output depends on map iteration order")
	}
	// Counts are complete even though samples are capped.
	if a.CorrAdded != 50 || len(a.CorrAddedSample) != diffSampleCap {
		t.Fatalf("added %d, sample %d", a.CorrAdded, len(a.CorrAddedSample))
	}
	// Samples are sorted.
	for i := 1; i < len(a.CorrAddedSample); i++ {
		if a.CorrAddedSample[i-1] >= a.CorrAddedSample[i] {
			t.Fatalf("sample not sorted: %v", a.CorrAddedSample)
		}
	}
}

func TestRingEvictsOldestNewestFirst(t *testing.T) {
	r := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Push(EpochDiff{ToSeq: i})
	}
	got := r.Snapshot()
	if len(got) != 3 || r.Len() != 3 {
		t.Fatalf("ring holds %d diffs, want 3", len(got))
	}
	for i, want := range []uint64{5, 4, 3} {
		if got[i].ToSeq != want {
			t.Fatalf("snapshot[%d].ToSeq = %d, want %d (newest first)", i, got[i].ToSeq, want)
		}
	}
}
