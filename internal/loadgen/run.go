package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Loop mode names.
const (
	ModeClosed = "closed" // N workers issue requests back-to-back
	ModeOpen   = "open"   // requests arrive on a fixed schedule regardless of completions
)

// Options configures one measured run.
type Options struct {
	// Mode is ModeClosed or ModeOpen.
	Mode string
	// Concurrency is the worker count: the offered concurrency in closed
	// mode, the service-pool size in open mode.
	Concurrency int
	// TargetRPS is the scheduled arrival rate (open mode only).
	TargetRPS float64
	// Duration is the measured phase length.
	Duration time.Duration
	// Warmup runs a closed-loop burn-in first and discards its numbers, so
	// connection setup and server cache fills don't pollute the tail.
	Warmup time.Duration
	// Client is the HTTP client; nil gets a pooled transport sized to
	// Concurrency.
	Client *http.Client
	// Seed varies the per-worker random streams; runs with the same seed
	// and catalog replay the same key sequence.
	Seed int64
}

// Result is one run's measurements.
type Result struct {
	Mode        string
	Concurrency int
	TargetRPS   float64 // 0 in closed mode

	Elapsed  time.Duration
	Requests uint64
	Errors   uint64 // transport failures + non-2xx responses
	// Dropped counts open-loop arrivals abandoned because the dispatch
	// queue was full — nonzero means the server (or pool) could not keep
	// up with TargetRPS even with queueing.
	Dropped uint64
	Routes  map[string]uint64

	// Latency holds every measured request. In open mode latencies run
	// from the *scheduled* arrival time, so queue wait under overload is
	// charged to the server (coordinated-omission correction), not hidden.
	Latency *Hist
}

// RPS returns achieved requests per second.
func (r *Result) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// ErrorRate returns the error fraction in [0, 1].
func (r *Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

func defaultClient(concurrency int) *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency * 2,
			MaxIdleConnsPerHost: concurrency * 2,
			DisableCompression:  true,
		},
	}
}

// Run executes one load run against the workload: warmup, then the
// measured phase in the configured loop mode.
func Run(ctx context.Context, w *Workload, o Options) (*Result, error) {
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
	if o.Mode == ModeOpen && o.TargetRPS <= 0 {
		return nil, fmt.Errorf("open mode needs TargetRPS > 0")
	}
	if o.Mode != ModeOpen && o.Mode != ModeClosed {
		return nil, fmt.Errorf("unknown mode %q", o.Mode)
	}
	client := o.Client
	if client == nil {
		client = defaultClient(o.Concurrency)
	}

	if o.Warmup > 0 {
		warm := &Result{Latency: &Hist{}, Routes: map[string]uint64{}}
		runClosed(ctx, w, o, client, o.Warmup, warm, o.Seed+7777)
	}

	res := &Result{
		Mode:        o.Mode,
		Concurrency: o.Concurrency,
		TargetRPS:   o.TargetRPS,
		Latency:     &Hist{},
		Routes:      map[string]uint64{},
	}
	start := time.Now()
	switch o.Mode {
	case ModeClosed:
		runClosed(ctx, w, o, client, o.Duration, res, o.Seed)
	case ModeOpen:
		runOpen(ctx, w, o, client, res)
	}
	res.Elapsed = time.Since(start)
	if o.Mode == ModeClosed {
		res.TargetRPS = 0
	}
	return res, nil
}

// routeCounter accumulates per-route hit counts without a map lock on the
// hot path: one atomic counter per route, folded into the result at the
// end.
type routeCounter struct {
	names  []string
	counts []atomic.Uint64
}

func newRouteCounter() *routeCounter {
	rc := &routeCounter{names: routeNames}
	rc.counts = make([]atomic.Uint64, len(rc.names))
	return rc
}

func (rc *routeCounter) add(route string) {
	for i, n := range rc.names {
		if n == route {
			rc.counts[i].Add(1)
			return
		}
	}
}

func (rc *routeCounter) fold(into map[string]uint64) {
	for i, n := range rc.names {
		if v := rc.counts[i].Load(); v > 0 {
			into[n] += v
		}
	}
}

// doGet issues one request and fully drains the body so the connection
// returns to the pool. A transport error or a non-2xx status is a failure.
func doGet(client *http.Client, u string) bool {
	resp, err := client.Get(u)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// runClosed drives Concurrency workers back-to-back for d. Each worker's
// latency is pure service time — closed loops measure the server at the
// concurrency the pool offers, and slow responses self-throttle the rate.
func runClosed(ctx context.Context, w *Workload, o Options, client *http.Client, d time.Duration, res *Result, seed int64) {
	deadline := time.Now().Add(d)
	rc := newRouteCounter()
	var wg sync.WaitGroup
	for i := 0; i < o.Concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			p := w.newPicker(seed + int64(worker))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				route, u := p.next()
				start := time.Now()
				ok := doGet(client, u)
				res.Latency.Record(time.Since(start))
				atomic.AddUint64(&res.Requests, 1)
				if !ok {
					atomic.AddUint64(&res.Errors, 1)
				}
				rc.add(route)
			}
		}(i)
	}
	wg.Wait()
	rc.fold(res.Routes)
}

// runOpen schedules arrivals at TargetRPS and hands them to a fixed
// worker pool. Latency is measured from the scheduled arrival, not from
// when a worker got free: if the server falls behind, the queueing delay
// lands in the histogram instead of silently stretching the arrival
// schedule (the coordinated-omission trap closed-loop tools fall into).
func runOpen(ctx context.Context, w *Workload, o Options, client *http.Client, res *Result) {
	interval := time.Duration(float64(time.Second) / o.TargetRPS)
	total := int(o.TargetRPS * o.Duration.Seconds())
	if total < 1 {
		total = 1
	}

	// The dispatch queue absorbs bursts; size it for one second of
	// arrivals (min 64) so sustained overload surfaces as Dropped rather
	// than unbounded memory.
	qcap := int(o.TargetRPS)
	if qcap < 64 {
		qcap = 64
	}
	queue := make(chan time.Time, qcap)

	rc := newRouteCounter()
	var wg sync.WaitGroup
	for i := 0; i < o.Concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			p := w.newPicker(o.Seed + int64(worker))
			for scheduled := range queue {
				route, u := p.next()
				ok := doGet(client, u)
				res.Latency.Record(time.Since(scheduled))
				atomic.AddUint64(&res.Requests, 1)
				if !ok {
					atomic.AddUint64(&res.Errors, 1)
				}
				rc.add(route)
			}
		}(i)
	}

	start := time.Now()
	for i := 0; i < total && ctx.Err() == nil; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		select {
		case queue <- scheduled:
		default:
			atomic.AddUint64(&res.Dropped, 1)
		}
	}
	close(queue)
	wg.Wait()
	rc.fold(res.Routes)
}
