// Package loadgen drives HTTP load at a staleserve instance and measures
// serving latency: a zipf-over-catalog workload model, closed- and
// open-loop arrival processes, and a log-bucketed histogram with enough
// resolution for microsecond-scale quantiles.
package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values below 2^subBits nanoseconds get exact
// unit buckets; above that, every power-of-two octave is split into
// 2^subBits sub-buckets, bounding quantile error at ~3% of the value —
// the same trick HDR histograms use, without the dependency.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = subBuckets + (63-subBits)*subBuckets // exact region + octaves
)

// Hist is a fixed-size concurrent latency histogram. Record is lock-free
// (one atomic add per call plus a CAS loop for the max), so workers share
// one instance without coordination.
type Hist struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading bit, >= subBits
	// The sub-bucket is the subBits bits after the leading bit.
	sub := (v >> (uint(exp) - subBits)) - subBuckets
	idx := (exp-subBits)*subBuckets + subBuckets + int(sub)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketValue returns the representative (midpoint) nanosecond value of a
// bucket.
func bucketValue(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	oct := (idx - subBuckets) / subBuckets // octave above the exact region
	sub := uint64((idx - subBuckets) % subBuckets)
	shift := uint(oct) // lower bound = (subBuckets+sub) << oct
	lower := (subBuckets + sub) << shift
	width := uint64(1) << shift
	return lower + width/2
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded value.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of recorded values.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-th quantile (0 < q <= 1) as a duration. The
// answer is the representative value of the bucket holding the q-th
// observation, so it is within one bucket width (~3%) of exact.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			v := bucketValue(i)
			if m := h.max.Load(); v > m {
				v = m // the top bucket's midpoint can overshoot the true max
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}
