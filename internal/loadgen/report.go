package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// LatencySummary is the quantile digest of one run, in nanoseconds so
// the JSON diffs cleanly against ns_per_op numbers elsewhere in the
// BENCH_* family.
type LatencySummary struct {
	P50  int64 `json:"p50_ns"`
	P90  int64 `json:"p90_ns"`
	P99  int64 `json:"p99_ns"`
	P999 int64 `json:"p999_ns"`
	Max  int64 `json:"max_ns"`
	Mean int64 `json:"mean_ns"`
}

// RunReport is one run's entry under "benchmarks" in BENCH_HTTP.json.
type RunReport struct {
	Mode            string            `json:"mode"`
	Concurrency     int               `json:"concurrency"`
	TargetRPS       float64           `json:"target_rps,omitempty"`
	DurationSeconds float64           `json:"duration_seconds"`
	Requests        uint64            `json:"requests"`
	RPS             float64           `json:"rps"`
	Errors          uint64            `json:"errors"`
	ErrorRate       float64           `json:"error_rate"`
	Dropped         uint64            `json:"dropped,omitempty"`
	Routes          map[string]uint64 `json:"routes"`
	Latency         LatencySummary    `json:"latency"`
}

// Report is the whole BENCH_HTTP.json document — the same envelope as
// BENCH_PR2.json / BENCH_PR4.json (comment, go, date, benchmarks) so the
// trajectory files read alike.
type Report struct {
	Comment    string               `json:"comment"`
	Go         string               `json:"go"`
	Date       string               `json:"date"`
	Target     string               `json:"target"`
	Catalog    int                  `json:"catalog_fields"`
	ZipfS      float64              `json:"zipf_s"`
	Mix        map[string]int       `json:"mix"`
	Benchmarks map[string]RunReport `json:"benchmarks"`
}

// NewReport builds the report envelope.
func NewReport(comment, target string, w *Workload) *Report {
	return &Report{
		Comment:    comment,
		Go:         fmt.Sprintf("%s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH),
		Date:       time.Now().Format("2006-01-02"),
		Target:     target,
		Catalog:    len(w.Fields),
		ZipfS:      w.ZipfS,
		Mix:        w.Mix,
		Benchmarks: map[string]RunReport{},
	}
}

// Name returns the benchmark key for a run: http_closed_c8,
// http_open_500rps.
func Name(r *Result) string {
	if r.Mode == ModeOpen {
		return fmt.Sprintf("http_open_%drps", int(r.TargetRPS))
	}
	return fmt.Sprintf("http_closed_c%d", r.Concurrency)
}

// Add folds one run into the report.
func (rep *Report) Add(r *Result) {
	rep.Benchmarks[Name(r)] = RunReport{
		Mode:            r.Mode,
		Concurrency:     r.Concurrency,
		TargetRPS:       r.TargetRPS,
		DurationSeconds: r.Elapsed.Seconds(),
		Requests:        r.Requests,
		RPS:             r.RPS(),
		Errors:          r.Errors,
		ErrorRate:       r.ErrorRate(),
		Dropped:         r.Dropped,
		Routes:          r.Routes,
		Latency: LatencySummary{
			P50:  r.Latency.Quantile(0.50).Nanoseconds(),
			P90:  r.Latency.Quantile(0.90).Nanoseconds(),
			P99:  r.Latency.Quantile(0.99).Nanoseconds(),
			P999: r.Latency.Quantile(0.999).Nanoseconds(),
			Max:  r.Latency.Max().Nanoseconds(),
			Mean: r.Latency.Mean().Nanoseconds(),
		},
	}
}

// WriteJSON renders the report with stable indentation.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Summarize renders a human-readable table of one run.
func Summarize(w io.Writer, r *Result) {
	fmt.Fprintf(w, "%s: %d requests in %.1fs (%.0f req/s), %d errors (%.2f%%)",
		Name(r), r.Requests, r.Elapsed.Seconds(), r.RPS(), r.Errors, 100*r.ErrorRate())
	if r.Dropped > 0 {
		fmt.Fprintf(w, ", %d dropped arrivals", r.Dropped)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  latency p50 %v  p90 %v  p99 %v  p99.9 %v  max %v\n",
		r.Latency.Quantile(0.5).Round(time.Microsecond),
		r.Latency.Quantile(0.9).Round(time.Microsecond),
		r.Latency.Quantile(0.99).Round(time.Microsecond),
		r.Latency.Quantile(0.999).Round(time.Microsecond),
		r.Latency.Max().Round(time.Microsecond))
	names := make([]string, 0, len(r.Routes))
	for n := range r.Routes {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "  routes:")
	for _, n := range names {
		fmt.Fprintf(w, " %s=%d", n, r.Routes[n])
	}
	fmt.Fprintln(w)
}
