package loadgen

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket —
	// otherwise quantiles drift.
	for i := 0; i < numBuckets; i++ {
		v := bucketValue(i)
		if got := bucketIndex(v); got != i {
			t.Fatalf("bucketIndex(bucketValue(%d)=%d) = %d", i, v, got)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := &Hist{}
	// 1..1000 µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs within the ~3%
	// bucket resolution.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if err := math.Abs(float64(got-c.want)) / float64(c.want); err > 0.05 {
			t.Errorf("q%.2f = %v, want %v ±5%%", c.q, got, c.want)
		}
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v, want 1ms", h.Max())
	}
	// The top quantile is clamped to the true max, not the bucket
	// midpoint above it.
	if q := h.Quantile(1.0); q > h.Max() {
		t.Errorf("q1.0 = %v exceeds max %v", q, h.Max())
	}
}

func TestHistZero(t *testing.T) {
	h := &Hist{}
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must answer zeros")
	}
	h.Record(-time.Second) // negative clock skew clamps to 0
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("field=60, explain=20,stale=15,quality=5")
	if err != nil {
		t.Fatal(err)
	}
	if mix["field"] != 60 || mix["explain"] != 20 || mix["stale"] != 15 || mix["quality"] != 5 {
		t.Fatalf("mix = %v", mix)
	}
	for _, bad := range []string{"", "field", "field=-1", "bogus=10", "field=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestPickerZipfHead(t *testing.T) {
	w := &Workload{
		BaseURL: "http://x",
		Fields:  manyFields(100),
		ZipfS:   1.3,
		Mix:     map[string]int{"field": 1},
	}
	p := w.newPicker(42)
	hits := map[string]int{}
	for i := 0; i < 2000; i++ {
		_, u := p.next()
		hits[u]++
	}
	// The rank-0 field must dominate any mid-tail field.
	head := hits["http://x/v1/field?page=page000&property=prop000"]
	if head < 200 {
		t.Fatalf("zipf head got %d of 2000 hits; distribution not head-heavy: %d distinct", head, len(hits))
	}
}

func TestPickerMixAndRoutes(t *testing.T) {
	w := &Workload{
		BaseURL: "http://x/",
		Fields:  manyFields(5),
		Mix:     map[string]int{"field": 1, "explain": 1, "stale": 1, "quality": 1},
	}
	p := w.newPicker(1)
	seen := map[string]bool{}
	qualityURLs := map[string]bool{}
	for i := 0; i < 300; i++ {
		route, u := p.next()
		seen[route] = true
		switch route {
		case "stale":
			if !strings.HasPrefix(u, "http://x/v1/stale?window=") {
				t.Fatalf("stale url = %s", u)
			}
		case "quality":
			if u != "http://x/debug/quality" && u != "http://x/debug/epochdiff" {
				t.Fatalf("quality url = %s", u)
			}
			qualityURLs[u] = true
		default:
			if !strings.HasPrefix(u, "http://x/v1/"+route+"?page=") {
				t.Fatalf("%s url = %s", route, u)
			}
		}
	}
	if len(qualityURLs) != 2 {
		t.Fatalf("quality route hit %d distinct endpoints, want both debug reports", len(qualityURLs))
	}
	for _, r := range routeNames {
		if !seen[r] {
			t.Fatalf("route %s never picked with equal weights", r)
		}
	}
}

func manyFields(n int) []Field {
	fields := make([]Field, n)
	for i := range fields {
		fields[i] = Field{
			Page:     "page" + pad3(i),
			Property: "prop" + pad3(i),
		}
	}
	return fields
}

func pad3(i int) string {
	s := "00" + strstr(i)
	return s[len(s)-3:]
}

func strstr(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

// testServer answers every /v1/* route and counts requests.
func testServer(t *testing.T, delay time.Duration, failEvery int) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var n atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		if failEvery > 0 && i%uint64(failEvery) == 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

func testWorkload(u string) *Workload {
	return &Workload{
		BaseURL: u,
		Fields:  manyFields(10),
		Mix:     map[string]int{"field": 60, "explain": 20, "stale": 20},
	}
}

func TestClosedLoop(t *testing.T) {
	srv, hits := testServer(t, 0, 0)
	res, err := Run(context.Background(), testWorkload(srv.URL), Options{
		Mode:        ModeClosed,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Requests != hits.Load() {
		t.Fatalf("requests = %d, server saw %d", res.Requests, hits.Load())
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.RPS() <= 0 {
		t.Fatalf("rps = %f", res.RPS())
	}
	if res.Latency.Count() != res.Requests {
		t.Fatalf("latency count %d != requests %d", res.Latency.Count(), res.Requests)
	}
	var routed uint64
	for _, c := range res.Routes {
		routed += c
	}
	if routed != res.Requests {
		t.Fatalf("route counts sum %d != requests %d", routed, res.Requests)
	}
}

func TestOpenLoopHitsTargetRate(t *testing.T) {
	srv, _ := testServer(t, 0, 0)
	res, err := Run(context.Background(), testWorkload(srv.URL), Options{
		Mode:        ModeOpen,
		Concurrency: 4,
		TargetRPS:   200,
		Duration:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 rps for 0.5 s schedules 100 arrivals; a fast server completes
	// all of them with nothing dropped.
	if res.Requests < 90 || res.Requests > 110 {
		t.Fatalf("requests = %d, want ~100", res.Requests)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped = %d on an idle server", res.Dropped)
	}
}

func TestOpenLoopChargesQueueDelay(t *testing.T) {
	// 2 workers × 50 ms service time = 40 rps capacity; scheduling
	// 200 rps must push the measured tail far above the 50 ms service
	// time, because latency runs from the scheduled arrival.
	srv, _ := testServer(t, 50*time.Millisecond, 0)
	res, err := Run(context.Background(), testWorkload(srv.URL), Options{
		Mode:        ModeOpen,
		Concurrency: 2,
		TargetRPS:   200,
		Duration:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p99 := res.Latency.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Fatalf("p99 = %v under 5x overload; queue delay not charged", p99)
	}
}

func TestErrorCounting(t *testing.T) {
	srv, _ := testServer(t, 0, 2) // every 2nd request is a 500
	res, err := Run(context.Background(), testWorkload(srv.URL), Options{
		Mode:        ModeClosed,
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("no errors counted against a failing server")
	}
	if r := res.ErrorRate(); r < 0.3 || r > 0.7 {
		t.Fatalf("error rate = %f, want ~0.5", r)
	}
}

func TestRunValidation(t *testing.T) {
	w := testWorkload("http://localhost:0")
	if _, err := Run(context.Background(), w, Options{Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := Run(context.Background(), w, Options{Mode: ModeOpen}); err == nil {
		t.Fatal("open mode without rps accepted")
	}
}

func TestReportEnvelope(t *testing.T) {
	srv, _ := testServer(t, 0, 0)
	w := testWorkload(srv.URL)
	res, err := Run(context.Background(), w, Options{
		Mode: ModeClosed, Concurrency: 2, Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("test", srv.URL, w)
	rep.Add(res)
	rr, ok := rep.Benchmarks["http_closed_c2"]
	if !ok {
		t.Fatalf("benchmark key missing: %v", rep.Benchmarks)
	}
	if rr.Requests != res.Requests || rr.RPS <= 0 || rr.Latency.P50 <= 0 {
		t.Fatalf("report entry = %+v", rr)
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"benchmarks"`, `"p999_ns"`, `"go"`, `"date"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, buf.String())
		}
	}
}

func TestFetchCatalog(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/catalog" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"total": 2, "fields": [{"page":"A","property":"x"},{"page":"B","property":"y"}]}`))
	}))
	t.Cleanup(srv.Close)
	fields, err := FetchCatalog(srv.Client(), srv.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0].Page != "A" {
		t.Fatalf("fields = %v", fields)
	}
}
