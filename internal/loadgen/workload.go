package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
)

// Field is one servable (page, property) pair from /v1/catalog.
type Field struct {
	Page     string `json:"page"`
	Property string `json:"property"`
}

// Workload models the request population: which fields exist, how
// popularity concentrates (zipf), and how traffic splits across routes.
type Workload struct {
	BaseURL string
	Fields  []Field
	// ZipfS is the zipf skew (> 1). 1.1 is a gentle head-heavy web-like
	// distribution; larger values concentrate traffic on fewer pages.
	ZipfS float64
	// Mix maps route name ("field", "explain", "stale") to an integer
	// weight. Zero-weight and unknown routes never fire.
	Mix map[string]int
}

// routeNames are the routes a workload can exercise, in a fixed order so
// weighted selection is deterministic for a given seed. "quality"
// alternates between the two model-observability debug endpoints.
var routeNames = []string{"field", "explain", "stale", "quality"}

// staleWindows are the window=N day values the stale route cycles
// through — repeated keys exercise the server's alert cache the way a
// dashboard would.
var staleWindows = []int{7, 14, 30}

// FetchCatalog loads the servable keyspace from /v1/catalog.
func FetchCatalog(client *http.Client, baseURL string, limit int) ([]Field, error) {
	u := fmt.Sprintf("%s/v1/catalog?limit=%d", strings.TrimRight(baseURL, "/"), limit)
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	var body struct {
		Total  int     `json:"total"`
		Fields []Field `json:"fields"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding catalog: %w", err)
	}
	if len(body.Fields) == 0 {
		return nil, fmt.Errorf("catalog at %s is empty", u)
	}
	return body.Fields, nil
}

// picker generates request URLs for one worker. Each worker owns its own
// picker (rand.Zipf is not safe for concurrent use).
type picker struct {
	w      *Workload
	rnd    *rand.Rand
	zipf   *rand.Zipf
	routes []string // weight-expanded route table
}

func (w *Workload) newPicker(seed int64) *picker {
	rnd := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if len(w.Fields) > 1 {
		s := w.ZipfS
		if s <= 1 {
			s = 1.1
		}
		zipf = rand.NewZipf(rnd, s, 1, uint64(len(w.Fields)-1))
	}
	var routes []string
	for _, name := range routeNames {
		for i := 0; i < w.Mix[name]; i++ {
			routes = append(routes, name)
		}
	}
	if len(routes) == 0 {
		routes = []string{"field"}
	}
	return &picker{w: w, rnd: rnd, zipf: zipf, routes: routes}
}

// field picks a catalog entry with zipf-distributed popularity.
func (p *picker) field() Field {
	if p.zipf == nil {
		return p.w.Fields[0]
	}
	return p.w.Fields[p.zipf.Uint64()]
}

// next returns the route name and full URL for one request.
func (p *picker) next() (route, u string) {
	base := strings.TrimRight(p.w.BaseURL, "/")
	route = p.routes[p.rnd.Intn(len(p.routes))]
	switch route {
	case "stale":
		window := staleWindows[p.rnd.Intn(len(staleWindows))]
		return route, fmt.Sprintf("%s/v1/stale?window=%d&limit=50", base, window)
	case "quality":
		// Alternate the two observability reports the way a dashboard
		// scraping both panels would.
		if p.rnd.Intn(2) == 0 {
			return route, base + "/debug/quality"
		}
		return route, base + "/debug/epochdiff"
	default: // field, explain
		f := p.field()
		return route, fmt.Sprintf("%s/v1/%s?page=%s&property=%s",
			base, route, url.QueryEscape(f.Page), url.QueryEscape(f.Property))
	}
}

// ParseMix parses a "field=60,stale=20,explain=20" flag value.
func ParseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q: want route=weight", part)
		}
		var weight int
		if _, err := fmt.Sscanf(val, "%d", &weight); err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		if !knownRoute(name) {
			return nil, fmt.Errorf("unknown route %q in mix (have %s)", name, strings.Join(routeNames, ", "))
		}
		mix[name] = weight
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", s)
	}
	return mix, nil
}

func knownRoute(name string) bool {
	for _, r := range routeNames {
		if r == name {
			return true
		}
	}
	return false
}
