package ensemble

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// evenWindows is a batch-capable member predicting exactly the
// even-indexed windows on both paths.
type evenWindows struct{}

func (evenWindows) Name() string { return "even" }
func (evenWindows) Predict(ctx predict.Context) bool {
	return ctx.Window().Index%2 == 0
}
func (evenWindows) PredictWindows(b predict.Batch, out []bool) {
	for i := range out {
		out[i] = i%2 == 0
	}
}

func batchSet(t *testing.T) (*changecube.HistorySet, changecube.FieldKey) {
	t.Helper()
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	f := changecube.FieldKey{Entity: e, Property: changecube.PropertyID(c.Properties.Intern("x"))}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(f, []timeline.Day{2, 9, 23}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return hs, f
}

// TestEnsemblePredictWindowsMatchesScalar mixes batch-capable and
// scalar-only members, including a nested ensemble, and checks the batch
// row of every combination against the per-window scalar path.
func TestEnsemblePredictWindowsMatchesScalar(t *testing.T) {
	hs, f := batchSet(t)
	ws := predict.NewWindowSet(hs, timeline.NewSpan(0, 28), 7, nil)
	b := ws.For(f)
	members := [][]predict.Predictor{
		{},
		{evenWindows{}},
		{constant("t", true), constant("f", false)},
		{evenWindows{}, constant("f", false)},
		{constant("f", false), evenWindows{}, constant("t", true)},
		{And{Members: []predict.Predictor{evenWindows{}, constant("t", true)}}, evenWindows{}},
	}
	for _, ms := range members {
		for _, p := range []predict.Predictor{Or{Members: ms}, And{Members: ms}} {
			batch := make([]bool, b.NumWindows())
			scalar := make([]bool, b.NumWindows())
			p.(predict.BatchPredictor).PredictWindows(b, batch)
			predict.ScalarPredictWindows(p, b, scalar)
			for i := range batch {
				if batch[i] != scalar[i] {
					t.Fatalf("%s with %d members, window %d: batch %v != scalar %v",
						p.Name(), len(ms), i, batch[i], scalar[i])
				}
			}
		}
	}
}

// TestEnsembleBatchReusesOutForStaleValues verifies the contract that out
// may hold stale values from a previous call and must be fully overwritten.
func TestEnsembleBatchReusesOutForStaleValues(t *testing.T) {
	hs, f := batchSet(t)
	ws := predict.NewWindowSet(hs, timeline.NewSpan(0, 28), 7, nil)
	b := ws.For(f)
	out := []bool{true, true, true, true}
	Or{}.PredictWindows(b, out)
	for i, v := range out {
		if v {
			t.Fatalf("empty Or left stale value at %d", i)
		}
	}
	out = []bool{true, true, true, true}
	And{Members: []predict.Predictor{constant("f", false)}}.PredictWindows(b, out)
	for i, v := range out {
		if v {
			t.Fatalf("And left stale value at %d", i)
		}
	}
}
