// Package ensemble combines change predictors by conjunction or
// disjunction (§3.4 of the paper). Because the member predictors are tuned
// to roughly the same precision target, the OR-ensemble boosts recall while
// keeping precision near the members', and the AND-ensemble boosts
// precision at the cost of recall.
package ensemble

import (
	"fmt"
	"strings"

	"github.com/wikistale/wikistale/internal/predict"
)

// Or predicts a change when any member predicts one.
type Or struct {
	Members []predict.Predictor
	// Label overrides the derived name when non-empty.
	Label string
}

var (
	_ predict.Predictor      = Or{}
	_ predict.BatchPredictor = Or{}
)

// Name implements predict.Predictor.
func (o Or) Name() string {
	if o.Label != "" {
		return o.Label
	}
	return "OR(" + memberNames(o.Members) + ")"
}

// Predict implements predict.Predictor.
func (o Or) Predict(ctx predict.Context) bool {
	for _, m := range o.Members {
		if m.Predict(ctx) {
			return true
		}
	}
	return false
}

// PredictWindows implements predict.BatchPredictor by combining member
// rows directly: members with a batch path contribute a whole row at once,
// members without one fall back to per-window scalar prediction.
func (o Or) PredictWindows(b predict.Batch, out []bool) {
	if len(o.Members) == 0 {
		for i := range out {
			out[i] = false
		}
		return
	}
	predict.MemberPredictWindows(o.Members[0], b, out)
	if len(o.Members) == 1 {
		return
	}
	buf := make([]bool, len(out))
	for _, m := range o.Members[1:] {
		predict.MemberPredictWindows(m, b, buf)
		for i, v := range buf {
			if v {
				out[i] = true
			}
		}
	}
}

// And predicts a change only when every member predicts one. An empty And
// never predicts (it has no evidence), unlike the vacuous-truth convention.
type And struct {
	Members []predict.Predictor
	Label   string
}

var (
	_ predict.Predictor      = And{}
	_ predict.BatchPredictor = And{}
)

// Name implements predict.Predictor.
func (a And) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return "AND(" + memberNames(a.Members) + ")"
}

// Predict implements predict.Predictor.
func (a And) Predict(ctx predict.Context) bool {
	if len(a.Members) == 0 {
		return false
	}
	for _, m := range a.Members {
		if !m.Predict(ctx) {
			return false
		}
	}
	return true
}

// PredictWindows implements predict.BatchPredictor; an empty And yields an
// all-false row, matching Predict's no-evidence convention.
func (a And) PredictWindows(b predict.Batch, out []bool) {
	if len(a.Members) == 0 {
		for i := range out {
			out[i] = false
		}
		return
	}
	predict.MemberPredictWindows(a.Members[0], b, out)
	if len(a.Members) == 1 {
		return
	}
	buf := make([]bool, len(out))
	for _, m := range a.Members[1:] {
		predict.MemberPredictWindows(m, b, buf)
		for i, v := range buf {
			if !v {
				out[i] = false
			}
		}
	}
}

// Vote is one member's verdict in an ensemble decision.
type Vote struct {
	Member string `json:"member"`
	Fired  bool   `json:"fired"`
}

// Votes returns every member's verdict for the context, in member order.
// The OR verdict is true iff any vote fired.
func (o Or) Votes(ctx predict.Context) []Vote {
	return memberVotes(o.Members, ctx)
}

// Votes returns every member's verdict for the context, in member order.
// The AND verdict is true iff the member list is non-empty and every vote
// fired.
func (a And) Votes(ctx predict.Context) []Vote {
	return memberVotes(a.Members, ctx)
}

func memberVotes(ms []predict.Predictor, ctx predict.Context) []Vote {
	votes := make([]Vote, len(ms))
	for i, m := range ms {
		votes[i] = Vote{Member: m.Name(), Fired: m.Predict(ctx)}
	}
	return votes
}

func memberNames(ms []predict.Predictor) string {
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return strings.Join(names, ", ")
}

// Paper returns the two ensembles evaluated in the paper over the given
// field-correlation and association-rule predictors, labeled as in
// Table 1.
func Paper(fieldCorr, assocRules predict.Predictor) (and And, or Or) {
	members := []predict.Predictor{fieldCorr, assocRules}
	return And{Members: members, Label: "AND-ensemble"},
		Or{Members: members, Label: "OR-ensemble"}
}

// Validate checks that an ensemble has at least two members — anything
// less is a misconfiguration worth surfacing early.
func Validate(members []predict.Predictor) error {
	if len(members) < 2 {
		return fmt.Errorf("ensemble: need at least 2 members, got %d", len(members))
	}
	return nil
}
