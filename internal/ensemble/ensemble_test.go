package ensemble

import (
	"testing"
	"testing/quick"

	"github.com/wikistale/wikistale/internal/predict"
)

func constant(name string, v bool) predict.Predictor {
	return predict.Func{PredictorName: name, Fn: func(predict.Context) bool { return v }}
}

func TestTruthTables(t *testing.T) {
	cases := []struct {
		a, b    bool
		and, or bool
	}{
		{false, false, false, false},
		{false, true, false, true},
		{true, false, false, true},
		{true, true, true, true},
	}
	var ctx predict.Context
	for _, c := range cases {
		members := []predict.Predictor{constant("a", c.a), constant("b", c.b)}
		if got := (And{Members: members}).Predict(ctx); got != c.and {
			t.Errorf("AND(%v,%v) = %v", c.a, c.b, got)
		}
		if got := (Or{Members: members}).Predict(ctx); got != c.or {
			t.Errorf("OR(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

// TestAlgebra: AND implies each member implies OR, for arbitrary member
// outcome vectors.
func TestAlgebra(t *testing.T) {
	f := func(outcomes []bool) bool {
		if len(outcomes) == 0 {
			return true
		}
		members := make([]predict.Predictor, len(outcomes))
		for i, v := range outcomes {
			members[i] = constant("m", v)
		}
		var ctx predict.Context
		and := And{Members: members}.Predict(ctx)
		or := Or{Members: members}.Predict(ctx)
		for _, v := range outcomes {
			if and && !v {
				return false // AND ⊆ member
			}
			if v && !or {
				return false // member ⊆ OR
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyEnsembles(t *testing.T) {
	var ctx predict.Context
	if (And{}).Predict(ctx) {
		t.Fatal("empty AND predicted")
	}
	if (Or{}).Predict(ctx) {
		t.Fatal("empty OR predicted")
	}
}

func TestNames(t *testing.T) {
	a := And{Members: []predict.Predictor{constant("x", true), constant("y", true)}}
	if a.Name() != "AND(x, y)" {
		t.Fatalf("And name = %q", a.Name())
	}
	o := Or{Members: a.Members, Label: "custom"}
	if o.Name() != "custom" {
		t.Fatalf("label override = %q", o.Name())
	}
}

func TestPaperEnsembles(t *testing.T) {
	fc := constant("field correlations", true)
	ar := constant("association rules", false)
	and, or := Paper(fc, ar)
	if and.Name() != "AND-ensemble" || or.Name() != "OR-ensemble" {
		t.Fatalf("labels: %q %q", and.Name(), or.Name())
	}
	var ctx predict.Context
	if and.Predict(ctx) || !or.Predict(ctx) {
		t.Fatal("paper ensembles miswired")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]predict.Predictor{constant("a", true)}); err == nil {
		t.Fatal("single-member ensemble accepted")
	}
	if err := Validate([]predict.Predictor{constant("a", true), constant("b", true)}); err != nil {
		t.Fatal(err)
	}
}

// TestShortCircuit: OR stops at the first true, AND at the first false.
func TestShortCircuit(t *testing.T) {
	calls := 0
	counting := predict.Func{PredictorName: "count", Fn: func(predict.Context) bool {
		calls++
		return true
	}}
	var ctx predict.Context
	Or{Members: []predict.Predictor{constant("t", true), counting}}.Predict(ctx)
	if calls != 0 {
		t.Fatal("OR did not short-circuit")
	}
	And{Members: []predict.Predictor{constant("f", false), counting}}.Predict(ctx)
	if calls != 0 {
		t.Fatal("AND did not short-circuit")
	}
}
