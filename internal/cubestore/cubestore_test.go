package cubestore

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestOpenEmpty(t *testing.T) {
	s := open(t, t.TempDir())
	if s.Cube().NumChanges() != 0 || s.Cube().NumEntities() != 0 {
		t.Fatal("fresh store not empty")
	}
	if s.Pending() != 0 || s.Segments() != 0 {
		t.Fatal("fresh store has pending data")
	}
}

func stage(t *testing.T, s *Store, n int, seed int64) {
	t.Helper()
	cube := s.Cube()
	rng := rand.New(rand.NewSource(seed))
	e := cube.AddEntityNamed("infobox t", "Page "+string(rune('A'+seed)))
	prop := changecube.PropertyID(cube.Properties.Intern("prop"))
	for i := 0; i < n; i++ {
		s.Append(changecube.Change{
			Time:     rng.Int63n(1 << 30),
			Entity:   e,
			Property: prop,
			Value:    "v",
			Kind:     changecube.Update,
			Bot:      i%5 == 0,
		})
	}
}

func TestCommitAndReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	stage(t, s, 50, 0)
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if s.Pending() != 0 || s.Segments() != 1 {
		t.Fatalf("after commit: pending=%d segments=%d", s.Pending(), s.Segments())
	}
	want := s.Cube().Changes()

	r := open(t, dir)
	got := r.Cube().Changes()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reloaded changes differ: %d vs %d", len(want), len(got))
	}
	if r.Cube().Properties.Len() != s.Cube().Properties.Len() ||
		r.Cube().NumEntities() != s.Cube().NumEntities() {
		t.Fatal("dictionaries or entities lost")
	}
	if err := r.Cube().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleCommitsMultipleSegments(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for day := int64(0); day < 5; day++ {
		stage(t, s, 20, day)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() != 5 {
		t.Fatalf("segments = %d, want 5", s.Segments())
	}
	r := open(t, dir)
	if r.Cube().NumChanges() != 100 {
		t.Fatalf("reloaded changes = %d, want 100", r.Cube().NumChanges())
	}
	if r.Cube().NumEntities() != 5 {
		t.Fatalf("entities = %d, want 5", r.Cube().NumEntities())
	}
}

func TestEmptyCommitWritesNoSegment(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Cube().AddEntityNamed("t", "p") // metadata only
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 0 {
		t.Fatal("empty commit produced a segment")
	}
	r := open(t, dir)
	if r.Cube().NumEntities() != 1 {
		t.Fatal("metadata-only commit lost the entity")
	}
}

func TestUncommittedChangesLostOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	stage(t, s, 10, 0)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Append(changecube.Change{Entity: 0, Property: 0, Time: 999, Kind: changecube.Update})
	// No commit: a crash here loses exactly the pending change.
	r := open(t, dir)
	if r.Cube().NumChanges() != 10 {
		t.Fatalf("reloaded changes = %d, want 10", r.Cube().NumChanges())
	}
}

func TestCorruptedSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	stage(t, s, 30, 0)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupted segment accepted")
	}
}

func TestTruncatedSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	stage(t, s, 30, 0)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestTornDictionaryTailIgnored(t *testing.T) {
	// Data appended after the manifest's committed count (a torn write
	// that never reached Commit's manifest update) must be ignored.
	dir := t.TempDir()
	s := open(t, dir)
	stage(t, s, 5, 0)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "properties.dict"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\"torn-entr") // no trailing newline, invalid JSON
	f.Close()
	r := open(t, dir)
	if r.Cube().Properties.Len() != s.Cube().Properties.Len() {
		t.Fatalf("torn tail changed dictionary size: %d vs %d",
			r.Cube().Properties.Len(), s.Cube().Properties.Len())
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for day := int64(0); day < 4; day++ {
		stage(t, s, 25, day)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Cube().Changes()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 1 {
		t.Fatalf("segments after compact = %d", s.Segments())
	}
	r := open(t, dir)
	if !reflect.DeepEqual(want, r.Cube().Changes()) {
		t.Fatal("compaction changed the data")
	}
	// Old segment files are gone.
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatal("old segment still present")
	}
}

func TestCompactRefusesPending(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	stage(t, s, 5, 0)
	if err := s.Compact(); err == nil {
		t.Fatal("compact with pending changes accepted")
	}
}

func TestManifestGarbageRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("garbage manifest accepted")
	}
}

func TestEncodeDecodeChangesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var want []changecube.Change
	for i := 0; i < 200; i++ {
		want = append(want, changecube.Change{
			Time:     rng.Int63n(1 << 40),
			Entity:   changecube.EntityID(rng.Intn(50)),
			Property: changecube.PropertyID(rng.Intn(10)),
			Value:    string(rune('a' + rng.Intn(26))),
			Kind:     changecube.ChangeKind(rng.Intn(3)),
			Bot:      rng.Intn(4) == 0,
		})
	}
	buf := EncodeChanges(want)
	var got []changecube.Change
	n, err := DecodeChanges(buf, func(ch changecube.Change) error {
		got = append(got, ch)
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeChanges: %v", err)
	}
	if n != len(want) || !reflect.DeepEqual(want, got) {
		t.Fatalf("roundtrip mismatch: n=%d want %d", n, len(want))
	}
	// Deterministic: re-encoding the decoded changes is byte-identical.
	if string(EncodeChanges(got)) != string(buf) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestDecodeChangesRejectsDamage(t *testing.T) {
	buf := EncodeChanges([]changecube.Change{
		{Time: 10, Entity: 1, Property: 2, Value: "abc", Kind: changecube.Update},
		{Time: 20, Entity: 1, Property: 3, Value: "defg", Kind: changecube.Create, Bot: true},
	})
	nop := func(changecube.Change) error { return nil }
	if _, err := DecodeChanges([]byte("XXXX"), nop); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeChanges(buf[:2], nop); err == nil {
		t.Fatal("short payload accepted")
	}
	// Every truncation of the body must error, never panic or succeed.
	for cut := len(segmentMagic); cut < len(buf); cut++ {
		if _, err := DecodeChanges(buf[:cut], nop); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// An inflated count with no bytes behind it is rejected up front.
	inflated := append([]byte(segmentMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	if _, err := DecodeChanges(inflated, nop); err == nil {
		t.Fatal("inflated count accepted")
	}
}

func TestRandomBatchesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	rng := rand.New(rand.NewSource(42))
	cube := s.Cube()
	for i := 0; i < 6; i++ {
		cube.Properties.Intern(string(rune('a' + i)))
	}
	for batch := 0; batch < 8; batch++ {
		e := cube.AddEntityNamed("t", string(rune('A'+batch)))
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			s.Append(changecube.Change{
				Time:     rng.Int63n(1 << 40),
				Entity:   e,
				Property: changecube.PropertyID(rng.Intn(6)),
				Value:    string(rune('x' + rng.Intn(3))),
				Kind:     changecube.ChangeKind(rng.Intn(3)),
			})
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		// Reopen after every batch and compare.
		r := open(t, dir)
		if !reflect.DeepEqual(s.Cube().Changes(), r.Cube().Changes()) {
			t.Fatalf("batch %d: reload mismatch", batch)
		}
	}
}
