// Package cubestore persists a change cube across process restarts as an
// append-only collection of segments — the storage layer for the paper's
// operational requirement that the system be updated regularly: each
// day's parsed changes are committed as one small segment, and startup
// replays the segments into the in-memory cube the detector trains on.
//
// On-disk layout:
//
//	dir/
//	  MANIFEST            JSON: dictionaries' committed sizes, entity
//	                      count, ordered segment list with checksums
//	  properties.dict     one interned string per line (JSON-escaped)
//	  templates.dict
//	  pages.dict
//	  entities.tbl        one "templateID pageID" row per entity
//	  seg-000001.chg      change records (varint-encoded, CRC-32 guarded)
//	  ...
//
// Everything is append-only; the manifest is replaced atomically
// (write-temp + rename), so a crash between writes leaves either the old
// or the new state, never a torn one. Data written after the manifest's
// counts (a torn dictionary line, a half-written segment) is ignored on
// load; a segment whose checksum disagrees with the manifest fails the
// open with a descriptive error.
package cubestore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/wikistale/wikistale/internal/changecube"
)

// manifest is the durable root of the store.
type manifest struct {
	Version    int           `json:"version"`
	Properties int           `json:"properties"`
	Templates  int           `json:"templates"`
	Pages      int           `json:"pages"`
	Entities   int           `json:"entities"`
	Segments   []segmentMeta `json:"segments"`
}

type segmentMeta struct {
	Name    string `json:"name"`
	Changes int    `json:"changes"`
	CRC32   uint32 `json:"crc32"`
}

// Store is an open cube store. It owns an in-memory cube replayed from
// disk; new changes enter through Append and become durable on Commit.
// A Store is not safe for concurrent use.
type Store struct {
	dir  string
	cube *changecube.Cube
	man  manifest

	pending []changecube.Change
}

// Open loads (or initializes) a store in dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cubestore: %w", err)
	}
	s := &Store{dir: dir, cube: changecube.New()}
	data, err := os.ReadFile(s.path("MANIFEST"))
	if os.IsNotExist(err) {
		s.man = manifest{Version: 1}
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cubestore: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &s.man); err != nil {
		return nil, fmt.Errorf("cubestore: parsing manifest: %w", err)
	}
	if s.man.Version != 1 {
		return nil, fmt.Errorf("cubestore: unsupported version %d", s.man.Version)
	}
	if err := s.loadDict("properties.dict", s.man.Properties, s.cube.Properties); err != nil {
		return nil, err
	}
	if err := s.loadDict("templates.dict", s.man.Templates, s.cube.Templates); err != nil {
		return nil, err
	}
	if err := s.loadDict("pages.dict", s.man.Pages, s.cube.Pages); err != nil {
		return nil, err
	}
	if err := s.loadEntities(); err != nil {
		return nil, err
	}
	for _, seg := range s.man.Segments {
		if err := s.loadSegment(seg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Cube returns the store's in-memory cube. Callers may register entities
// and intern names directly on it (those structures are append-only and
// Commit persists them); changes, however, must go through Append so the
// store can track the uncommitted suffix.
func (s *Store) Cube() *changecube.Cube { return s.cube }

// Pending returns the number of appended-but-uncommitted changes.
func (s *Store) Pending() int { return len(s.pending) }

// Append stages changes into the cube. They are lost on crash until
// Commit succeeds.
func (s *Store) Append(changes ...changecube.Change) {
	for _, ch := range changes {
		s.cube.Add(ch) // validates entity/property references
		s.pending = append(s.pending, ch)
	}
}

// Commit makes everything staged durable: dictionary and entity suffixes
// are appended, pending changes become a new segment, and the manifest is
// atomically replaced. On success the pending buffer is empty.
func (s *Store) Commit() error {
	next := s.man
	if err := s.appendDict("properties.dict", s.cube.Properties, &next.Properties); err != nil {
		return err
	}
	if err := s.appendDict("templates.dict", s.cube.Templates, &next.Templates); err != nil {
		return err
	}
	if err := s.appendDict("pages.dict", s.cube.Pages, &next.Pages); err != nil {
		return err
	}
	if err := s.appendEntities(&next); err != nil {
		return err
	}
	if len(s.pending) > 0 {
		seg, err := s.writeSegment(len(next.Segments)+1, s.pending)
		if err != nil {
			return err
		}
		next.Segments = append(next.Segments, seg)
	}
	if err := s.writeManifest(next); err != nil {
		return err
	}
	s.man = next
	s.pending = s.pending[:0]
	return nil
}

// Segments returns the number of committed segments.
func (s *Store) Segments() int { return len(s.man.Segments) }

// Compact rewrites all committed segments as one. Pending changes must be
// committed first.
func (s *Store) Compact() error {
	if len(s.pending) > 0 {
		return fmt.Errorf("cubestore: commit pending changes before compacting")
	}
	if len(s.man.Segments) <= 1 {
		return nil
	}
	// The cube holds every committed change; rewrite them in cube order.
	all := s.cube.Changes()
	seg, err := s.writeSegment(len(s.man.Segments)+1, all)
	if err != nil {
		return err
	}
	next := s.man
	old := next.Segments
	next.Segments = []segmentMeta{seg}
	if err := s.writeManifest(next); err != nil {
		return err
	}
	s.man = next
	for _, o := range old {
		// Best effort: stale segments are unreferenced either way.
		os.Remove(s.path(o.Name))
	}
	return nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// --- dictionaries ---

func (s *Store) loadDict(name string, count int, dict *changecube.Dict) error {
	if count == 0 {
		return nil
	}
	f, err := os.Open(s.path(name))
	if err != nil {
		return fmt.Errorf("cubestore: %s: %w", name, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	// The manifest knows the final size; one reservation instead of a
	// doubling cascade while a paper-scale page dictionary streams in.
	dict.Grow(count)
	for i := 0; i < count; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return fmt.Errorf("cubestore: %s: %w", name, err)
			}
			return fmt.Errorf("cubestore: %s has %d entries, manifest says %d", name, i, count)
		}
		var entry string
		if err := json.Unmarshal(sc.Bytes(), &entry); err != nil {
			return fmt.Errorf("cubestore: %s line %d: %w", name, i+1, err)
		}
		if id := dict.Intern(entry); int(id) != i {
			return fmt.Errorf("cubestore: %s line %d: duplicate entry %q", name, i+1, entry)
		}
	}
	return nil
}

func (s *Store) appendDict(name string, dict *changecube.Dict, committed *int) error {
	names := dict.Names()
	if len(names) == *committed {
		return nil
	}
	f, err := os.OpenFile(s.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cubestore: %s: %w", name, err)
	}
	w := bufio.NewWriter(f)
	for _, entry := range names[*committed:] {
		line, err := json.Marshal(entry)
		if err != nil {
			f.Close()
			return fmt.Errorf("cubestore: %s: %w", name, err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	*committed = len(names)
	return nil
}

// --- entities ---

func (s *Store) loadEntities() error {
	if s.man.Entities == 0 {
		return nil
	}
	f, err := os.Open(s.path("entities.tbl"))
	if err != nil {
		return fmt.Errorf("cubestore: entities: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for i := 0; i < s.man.Entities; i++ {
		var template, page int32
		if _, err := fmt.Fscanf(r, "%d %d\n", &template, &page); err != nil {
			return fmt.Errorf("cubestore: entities row %d: %w", i+1, err)
		}
		s.cube.AddEntity(changecube.TemplateID(template), changecube.PageID(page))
	}
	return nil
}

func (s *Store) appendEntities(next *manifest) error {
	n := s.cube.NumEntities()
	if n == next.Entities {
		return nil
	}
	f, err := os.OpenFile(s.path("entities.tbl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cubestore: entities: %w", err)
	}
	w := bufio.NewWriter(f)
	for i := next.Entities; i < n; i++ {
		info := s.cube.Entity(changecube.EntityID(i))
		fmt.Fprintf(w, "%d %d\n", info.Template, info.Page)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	next.Entities = n
	return nil
}

// --- segments ---

const segmentMagic = "WCS1"

func segmentName(n int) string { return fmt.Sprintf("seg-%06d.chg", n) }

// EncodeChanges serializes changes in the segment wire format: a "WCS1"
// magic, a uvarint count, then per change a varint time delta, uvarint
// entity and property IDs, a kind byte with the bot flag in bit 7, and a
// length-prefixed value. The encoding is deterministic for a given input
// order — callers that need byte-identical output across processes must
// pass changes in a canonical order. The epoch store reuses this as its
// cube payload.
func EncodeChanges(changes []changecube.Change) []byte {
	var buf []byte
	buf = append(buf, segmentMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(changes)))
	prev := int64(0)
	for _, ch := range changes {
		buf, prev = appendChange(buf, ch, prev)
	}
	return buf
}

// EncodeCubeChanges is EncodeChanges streamed straight off a cube's packed
// storage in canonical order (the cube is sorted first) — byte-identical
// to EncodeChanges(cube.Changes()) without materializing the change list,
// which at paper scale would transiently double the corpus footprint.
func EncodeCubeChanges(cube *changecube.Cube) []byte {
	cube.Sort()
	var buf []byte
	buf = append(buf, segmentMagic...)
	buf = binary.AppendUvarint(buf, uint64(cube.NumChanges()))
	prev := int64(0)
	cube.EachChange(func(_ int, ch changecube.Change) bool {
		buf, prev = appendChange(buf, ch, prev)
		return true
	})
	return buf
}

func appendChange(buf []byte, ch changecube.Change, prev int64) ([]byte, int64) {
	buf = binary.AppendVarint(buf, ch.Time-prev)
	buf = binary.AppendUvarint(buf, uint64(ch.Entity))
	buf = binary.AppendUvarint(buf, uint64(ch.Property))
	kind := byte(ch.Kind)
	if ch.Bot {
		kind |= 0x80
	}
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(ch.Value)))
	buf = append(buf, ch.Value...)
	return buf, ch.Time
}

// DecodeChanges parses an EncodeChanges payload, passing each change to
// apply in encoded order and returning the record count. It never panics
// on malformed input: structural damage surfaces as an error, and apply
// is responsible for validating IDs against its own dictionaries before
// inserting into a cube (changecube.Cube.Add panics on unknown refs).
func DecodeChanges(data []byte, apply func(changecube.Change) error) (int, error) {
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		return 0, fmt.Errorf("cubestore: changes payload: bad magic")
	}
	r := &sliceReader{data: data[len(segmentMagic):]}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("cubestore: changes payload: %w", err)
	}
	if count > uint64(len(r.data)) {
		// Each change needs at least one byte; reject inflated counts
		// before apply sees them.
		return 0, fmt.Errorf("cubestore: changes payload: count %d exceeds payload size", count)
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		dt, err := binary.ReadVarint(r)
		if err != nil {
			return 0, fmt.Errorf("cubestore: change %d: %w", i, err)
		}
		prev += dt
		entity, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("cubestore: change %d: %w", i, err)
		}
		prop, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("cubestore: change %d: %w", i, err)
		}
		kind, err := r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("cubestore: change %d: %w", i, err)
		}
		vlen, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("cubestore: change %d: %w", i, err)
		}
		value, err := r.take(int(vlen))
		if err != nil {
			return 0, fmt.Errorf("cubestore: change %d: %w", i, err)
		}
		ch := changecube.Change{
			Time:     prev,
			Entity:   changecube.EntityID(entity),
			Property: changecube.PropertyID(prop),
			Value:    value,
			Kind:     changecube.ChangeKind(kind &^ 0x80),
			Bot:      kind&0x80 != 0,
		}
		if err := apply(ch); err != nil {
			return 0, fmt.Errorf("cubestore: change %d: %w", i, err)
		}
	}
	return int(count), nil
}

func (s *Store) writeSegment(number int, changes []changecube.Change) (segmentMeta, error) {
	name := segmentName(number)
	buf := EncodeChanges(changes)
	crc := crc32.ChecksumIEEE(buf)
	tmp := s.path(name + ".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return segmentMeta{}, fmt.Errorf("cubestore: segment %s: %w", name, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return segmentMeta{}, fmt.Errorf("cubestore: segment %s: %w", name, err)
	}
	// A power failure after the manifest references this segment must not
	// lose its bytes: sync the file before the rename and the directory
	// after, so the entry itself is durable too.
	if err := f.Sync(); err != nil {
		f.Close()
		return segmentMeta{}, fmt.Errorf("cubestore: segment %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return segmentMeta{}, fmt.Errorf("cubestore: segment %s: %w", name, err)
	}
	if err := os.Rename(tmp, s.path(name)); err != nil {
		return segmentMeta{}, fmt.Errorf("cubestore: segment %s: %w", name, err)
	}
	if err := SyncDir(s.dir); err != nil {
		return segmentMeta{}, fmt.Errorf("cubestore: segment %s: %w", name, err)
	}
	return segmentMeta{Name: name, Changes: len(changes), CRC32: crc}, nil
}

func (s *Store) loadSegment(meta segmentMeta) error {
	data, err := os.ReadFile(s.path(meta.Name))
	if err != nil {
		return fmt.Errorf("cubestore: segment %s: %w", meta.Name, err)
	}
	if crc := crc32.ChecksumIEEE(data); crc != meta.CRC32 {
		return fmt.Errorf("cubestore: segment %s: checksum %08x, manifest says %08x (corrupted?)",
			meta.Name, crc, meta.CRC32)
	}
	n, err := DecodeChanges(data, func(ch changecube.Change) error {
		s.cube.Add(ch) // refs were valid when written; CRC above vouches for them
		return nil
	})
	if err != nil {
		return fmt.Errorf("cubestore: segment %s: %w", meta.Name, err)
	}
	if n != meta.Changes {
		return fmt.Errorf("cubestore: segment %s: %d changes, manifest says %d",
			meta.Name, n, meta.Changes)
	}
	return nil
}

// SyncDir fsyncs a directory so renames and newly created names in it
// survive a power failure. Shared with the epoch store.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) writeManifest(m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.path("MANIFEST.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cubestore: manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path("MANIFEST")); err != nil {
		return err
	}
	return SyncDir(s.dir)
}

// sliceReader is a minimal io.ByteReader over a byte slice with bounds
// errors instead of panics.
type sliceReader struct {
	data []byte
	pos  int
}

func (r *sliceReader) ReadByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *sliceReader) take(n int) (string, error) {
	if r.pos+n > len(r.data) {
		return "", io.ErrUnexpectedEOF
	}
	v := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return v, nil
}
