package cubestore

import (
	"bytes"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/dataset"
)

// TestCloneEncodeBitIdentity: under the chunked columnar log, a clone
// must encode to the exact bytes of its original, and appending to the
// clone — including into the copy-on-write tail chunk the two cubes
// share at clone time — must not disturb the original's encoding. The
// corpus is large enough to span multiple log chunks, so both the
// shared-chunk and owned-chunk paths are exercised.
func TestCloneEncodeBitIdentity(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	cube.Sort()
	want := EncodeCubeChanges(cube)

	clone := cube.Clone()
	if got := EncodeCubeChanges(clone); !bytes.Equal(want, got) {
		t.Fatalf("clone encodes to %d bytes, original to %d — not bit-identical", len(got), len(want))
	}

	// Mutate the clone well past one chunk so the tail chunk is rewritten.
	e := clone.AddEntityNamed("clone-only-template", "Clone Only Page")
	p := changecube.PropertyID(clone.Properties.Intern("clone_only_prop"))
	last := clone.TimeAt(clone.NumChanges() - 1)
	for i := 0; i < 40000; i++ {
		clone.Add(changecube.Change{
			Time: last + int64(i) + 1, Entity: e, Property: p,
			Value: "x", Kind: changecube.Update,
		})
	}
	if got := EncodeCubeChanges(cube); !bytes.Equal(want, got) {
		t.Fatal("original's encoding changed after mutating the clone")
	}
	if err := cube.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}
	if clone.NumChanges() != cube.NumChanges()+40000 {
		t.Fatalf("clone holds %d changes, want %d", clone.NumChanges(), cube.NumChanges()+40000)
	}
}
