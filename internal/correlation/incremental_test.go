package correlation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/timeline"
)

// randomHistorySet builds a cube with nPages pages of up to maxFields
// fields each, change days drawn from [0, dayRange).
func randomHistorySet(t *testing.T, rng *rand.Rand, nPages, maxFields, dayRange int) *changecube.HistorySet {
	t.Helper()
	c := changecube.New()
	var histories []changecube.History
	for p := 0; p < nPages; p++ {
		e := c.AddEntityNamed("infobox test", fmt.Sprintf("Page %d", p))
		nf := 1 + rng.Intn(maxFields)
		for f := 0; f < nf; f++ {
			prop := changecube.PropertyID(c.Properties.Intern(fmt.Sprintf("prop%d", f)))
			set := map[timeline.Day]bool{}
			for n := rng.Intn(12); n > 0; n-- {
				set[timeline.Day(rng.Intn(dayRange))] = true
			}
			var days []timeline.Day
			for d := range set {
				days = append(days, d)
			}
			if len(days) == 0 {
				continue
			}
			sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
			histories = append(histories, changecube.NewHistory(
				changecube.FieldKey{Entity: e, Property: prop}, days))
		}
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

// referenceTrain is the pre-optimization training loop: a full quadratic
// pairwise search per page through the public DistanceTolerant entry
// point, with no inverted-index pruning and no day-slice hoisting.
func referenceTrain(t *testing.T, hs *changecube.HistorySet, span timeline.Span, cfg Config) *Predictor {
	t.Helper()
	histories := hs.Histories()
	var rules []Rule
	for _, idxs := range hs.ByPage() {
		var elig []int
		for _, i := range idxs {
			if histories[i].CountIn(span) >= cfg.MinSpanChanges {
				elig = append(elig, i)
			}
		}
		if cfg.MaxFieldsPerPage > 0 && len(elig) > cfg.MaxFieldsPerPage {
			continue
		}
		for x := 0; x < len(elig); x++ {
			for y := x + 1; y < len(elig); y++ {
				a, b := histories[elig[x]], histories[elig[y]]
				d := DistanceTolerant(a, b, span, cfg.Norm, cfg.ToleranceDays)
				if d < cfg.Theta {
					rules = append(rules, Rule{A: a.Field, B: b.Field, Distance: d})
				}
			}
		}
	}
	return FromRules(rules)
}

// TestPrunedSearchMatchesFullPairwise is the fast path's correctness
// contract: the inverted-index candidate search (and the NormLength full
// path over hoisted slices) must produce rule sets reflect.DeepEqual —
// identical floats included — to the naive quadratic reference, across
// random histories, both norms, tolerances, thetas, and eligibility and
// page-size bounds.
func TestPrunedSearchMatchesFullPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 60; iter++ {
		hs := randomHistorySet(t, rng, 1+rng.Intn(6), 8, 60)
		span := timeline.NewSpan(timeline.Day(rng.Intn(10)), timeline.Day(30+rng.Intn(40)))
		cfg := Config{
			Theta:            []float64{0.1, 0.3, 0.5, 1.0}[rng.Intn(4)],
			Norm:             []Norm{NormOverlap, NormOverlap, NormLength}[rng.Intn(3)],
			ToleranceDays:    rng.Intn(3),
			MinSpanChanges:   rng.Intn(4),
			MaxFieldsPerPage: []int{0, 0, 3}[rng.Intn(3)],
		}
		got, err := Train(hs, span, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceTrain(t, hs, span, cfg)
		if !reflect.DeepEqual(got.Rules(), want.Rules()) {
			t.Fatalf("iter %d: fast %v != reference %v (cfg %+v span %v)",
				iter, got.Rules(), want.Rules(), cfg, span)
		}
	}
}

func counterValue(name string, labels obs.Labels) uint64 {
	return obs.Default.Counter(name, labels).Value()
}

// TestSkippedPagesCounter: pages dropped by MaxFieldsPerPage must be
// visible in wikistale_train_pages_skipped_total, not silently vanish.
func TestSkippedPagesCounter(t *testing.T) {
	hs, _ := corpus(t)
	labels := obs.Labels{"predictor": "correlation"}
	before := counterValue(obs.PagesSkippedTotal, labels)
	if _, err := Train(hs, timeline.NewSpan(0, 2000), Config{Theta: 0.1, MaxFieldsPerPage: 2}); err != nil {
		t.Fatal(err)
	}
	// corpus has one 4-field page (skipped) and one 1-field page (kept).
	if got := counterValue(obs.PagesSkippedTotal, labels) - before; got != 1 {
		t.Fatalf("pages_skipped_total delta = %d, want 1", got)
	}
	before = counterValue(obs.PagesSkippedTotal, labels)
	if _, err := Train(hs, timeline.NewSpan(0, 2000), Default()); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(obs.PagesSkippedTotal, labels) - before; got != 0 {
		t.Fatalf("unbounded train moved pages_skipped_total by %d", got)
	}
}

// mutateHistories applies a random day-append delta to a few fields and
// returns the updated set plus the dirty-field map a live ingester would
// accumulate.
func mutateHistories(t *testing.T, rng *rand.Rand, hs *changecube.HistorySet, dayRange int) (*changecube.HistorySet, map[changecube.FieldKey]bool) {
	t.Helper()
	histories := hs.Histories()
	updates := make(map[changecube.FieldKey][]timeline.Day)
	dirty := make(map[changecube.FieldKey]bool)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		h := histories[rng.Intn(len(histories))]
		d := timeline.Day(rng.Intn(dayRange))
		updates[h.Field] = append(updates[h.Field], d)
		dirty[h.Field] = true
	}
	next, err := hs.MergeDays(updates)
	if err != nil {
		t.Fatal(err)
	}
	return next, dirty
}

// TestIncrementalMatchesColdRetrain drives a sequence of deltas through
// TrainIncremental and asserts, at every step, bit-identical rules to a
// cold Train over the same snapshot — including steps where the training
// span advances, which can dirty pages whose fields were never touched.
func TestIncrementalMatchesColdRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, norm := range []Norm{NormOverlap, NormLength} {
		cfg := Config{Theta: 0.3, Norm: norm, MinSpanChanges: 2}
		hs := randomHistorySet(t, rng, 8, 6, 50)
		span := timeline.NewSpan(0, 40)
		prevP, stats, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Full || stats.FullReason != "cold" {
			t.Fatalf("first train stats = %+v, want cold full rebuild", stats)
		}
		prev := Previous{Predictor: prevP, Span: span}
		reusedTotal := 0
		for step := 0; step < 12; step++ {
			next, dirty := mutateHistories(t, rng, hs, 70)
			hs = next
			if step%3 == 2 {
				span = timeline.NewSpan(span.Start, span.End+5) // live span advance
			}
			inc, stats, err := TrainIncremental(hs, span, cfg, prev, dirty, false)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Train(hs, span, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inc.Rules(), cold.Rules()) {
				t.Fatalf("norm %v step %d: incremental %v != cold %v (stats %+v)",
					norm, step, inc.Rules(), cold.Rules(), stats)
			}
			if norm != NormOverlap && span != prev.Span {
				if !stats.Full || stats.FullReason != "norm_span" {
					t.Fatalf("norm %v step %d: span moved but stats = %+v", norm, step, stats)
				}
			} else if stats.Full {
				t.Fatalf("norm %v step %d: unexpected full rebuild %+v", norm, step, stats)
			} else if stats.PagesReused+stats.PagesRetrained != stats.PagesTotal {
				t.Fatalf("page accounting off: %+v", stats)
			}
			reusedTotal += stats.PagesReused
			prev = Previous{Predictor: inc, Span: span}
		}
		if reusedTotal == 0 {
			t.Fatalf("norm %v: incremental retraining never reused a page", norm)
		}
	}
}

// TestIncrementalForcedFullRebuild: the escape hatch re-searches every
// page and still produces identical rules.
func TestIncrementalForcedFullRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	cfg := Config{Theta: 0.4, Norm: NormOverlap, MinSpanChanges: 1}
	hs := randomHistorySet(t, rng, 6, 5, 40)
	span := timeline.NewSpan(0, 40)
	p1, _, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	next, dirty := mutateHistories(t, rng, hs, 40)
	forced, stats, err := TrainIncremental(next, span, cfg, Previous{Predictor: p1, Span: span}, dirty, true)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full || stats.FullReason != "forced" || stats.PagesReused != 0 {
		t.Fatalf("forced rebuild stats = %+v", stats)
	}
	cold, err := Train(next, span, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forced.Rules(), cold.Rules()) {
		t.Fatalf("forced rebuild diverged: %v != %v", forced.Rules(), cold.Rules())
	}
}

// TestIncrementalMetrics: the wikistale_train_incremental_* family must
// reflect what the trainer did.
func TestIncrementalMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	cfg := Config{Theta: 0.3, Norm: NormOverlap, MinSpanChanges: 1}
	hs := randomHistorySet(t, rng, 10, 4, 30)
	span := timeline.NewSpan(0, 30)

	coldBefore := counterValue(obs.IncrementalFullTotal, obs.Labels{"reason": "cold"})
	p1, _, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if d := counterValue(obs.IncrementalFullTotal, obs.Labels{"reason": "cold"}) - coldBefore; d != 1 {
		t.Fatalf("cold full_rebuilds delta = %d, want 1", d)
	}

	next, dirty := mutateHistories(t, rng, hs, 30)
	incBefore := counterValue(obs.IncrementalRetrainsTotal, nil)
	reusedBefore := counterValue(obs.IncrementalPagesReusedTotal, nil)
	_, stats, err := TrainIncremental(next, span, cfg, Previous{Predictor: p1, Span: span}, dirty, false)
	if err != nil {
		t.Fatal(err)
	}
	if d := counterValue(obs.IncrementalRetrainsTotal, nil) - incBefore; d != 1 {
		t.Fatalf("incremental_retrains delta = %d, want 1", d)
	}
	if d := counterValue(obs.IncrementalPagesReusedTotal, nil) - reusedBefore; d != uint64(stats.PagesReused) {
		t.Fatalf("pages_reused delta = %d, want %d", d, stats.PagesReused)
	}
	if stats.PagesReused == 0 {
		t.Fatalf("10-page set with ≤3 dirty fields reused nothing: %+v", stats)
	}
	if g := obs.Default.Gauge(obs.IncrementalDirtyFields, nil).Value(); g != float64(len(dirty)) {
		t.Fatalf("dirty_fields gauge = %v, want %d", g, len(dirty))
	}
}
