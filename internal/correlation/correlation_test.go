package correlation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func hist(days ...timeline.Day) changecube.History {
	return changecube.NewHistory(changecube.FieldKey{}, days)
}

func TestDistanceEndpoints(t *testing.T) {
	span := timeline.NewSpan(0, 100)
	identical := hist(1, 5, 9)
	disjoint := hist(2, 6, 10)
	if d := Distance(identical, identical, span, NormOverlap); d != 0 {
		t.Fatalf("identical distance = %v, want 0", d)
	}
	if d := Distance(identical, disjoint, span, NormOverlap); d != 1 {
		t.Fatalf("disjoint distance = %v, want 1", d)
	}
}

func TestDistancePartialOverlap(t *testing.T) {
	span := timeline.NewSpan(0, 100)
	a := hist(1, 2, 3, 4)
	b := hist(3, 4, 5, 6)
	// Symmetric difference {1,2,5,6} = 4, total mass 8 -> 0.5.
	if d := Distance(a, b, span, NormOverlap); d != 0.5 {
		t.Fatalf("distance = %v, want 0.5", d)
	}
	// Length norm: 4 / 100.
	if d := Distance(a, b, span, NormLength); d != 0.04 {
		t.Fatalf("length-normalized distance = %v, want 0.04", d)
	}
}

func TestDistanceRestrictedToSpan(t *testing.T) {
	// Days outside the training span are invisible.
	a := hist(1, 2, 50)
	b := hist(1, 2, 60)
	if d := Distance(a, b, timeline.NewSpan(0, 10), NormOverlap); d != 0 {
		t.Fatalf("distance = %v, want 0 within span [0,10)", d)
	}
}

func TestDistanceEmptySpanAndHistories(t *testing.T) {
	if d := Distance(hist(), hist(), timeline.NewSpan(0, 10), NormOverlap); d != 1 {
		t.Fatalf("no-evidence distance = %v, want 1", d)
	}
	if d := Distance(hist(1), hist(1), timeline.Span{}, NormLength); d != 1 {
		t.Fatalf("zero-length span distance = %v, want 1", d)
	}
}

// TestDistanceMetricProperties checks range, symmetry and identity on
// random histories.
func TestDistanceMetricProperties(t *testing.T) {
	mk := func(raw []uint8) changecube.History {
		set := map[timeline.Day]bool{}
		for _, r := range raw {
			set[timeline.Day(r%100)] = true
		}
		days := make([]timeline.Day, 0, len(set))
		for d := range set {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		return changecube.NewHistory(changecube.FieldKey{}, days)
	}
	span := timeline.NewSpan(0, 100)
	f := func(ra, rb []uint8) bool {
		a, b := mk(ra), mk(rb)
		for _, norm := range []Norm{NormOverlap, NormLength} {
			dab := Distance(a, b, span, norm)
			dba := Distance(b, a, span, norm)
			if dab != dba {
				return false
			}
			if dab < 0 || dab > 1 {
				return false
			}
		}
		if a.Len() > 0 && Distance(a, a, span, NormOverlap) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// corpus builds a page with a perfectly correlated pair (home/away colors),
// a noisy pair, and an unrelated field, plus a second page whose field
// changes on the same days as the colors (must NOT correlate across pages).
func corpus(t *testing.T) (*changecube.HistorySet, map[string]changecube.FieldKey) {
	t.Helper()
	c := changecube.New()
	club := c.AddEntityNamed("infobox club", "FC Example")
	other := c.AddEntityNamed("infobox club", "FC Other")
	prop := func(name string) changecube.PropertyID {
		return changecube.PropertyID(c.Properties.Intern(name))
	}
	fields := map[string]changecube.FieldKey{
		"home":    {Entity: club, Property: prop("home_colors")},
		"away":    {Entity: club, Property: prop("away_colors")},
		"noisy":   {Entity: club, Property: prop("stadium")},
		"random":  {Entity: club, Property: prop("manager")},
		"foreign": {Entity: other, Property: prop("home_colors")},
	}
	colorDays := []timeline.Day{10, 375, 740, 1105, 1470}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(fields["home"], colorDays),
		changecube.NewHistory(fields["away"], colorDays),
		// noisy shares 4 of 5 days with home: sym diff 2, mass 10 -> 0.2.
		changecube.NewHistory(fields["noisy"], []timeline.Day{10, 375, 740, 1105, 1500}),
		changecube.NewHistory(fields["random"], []timeline.Day{3, 100, 200, 300, 400}),
		changecube.NewHistory(fields["foreign"], colorDays),
	})
	if err != nil {
		t.Fatal(err)
	}
	return hs, fields
}

func TestTrainFindsSamePageRulesOnly(t *testing.T) {
	hs, fields := corpus(t)
	span := timeline.NewSpan(0, 2000)
	p, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Covers(fields["home"]) || !p.Covers(fields["away"]) {
		t.Fatal("perfect pair not discovered")
	}
	if got := p.Partners(fields["home"]); len(got) != 1 || got[0] != fields["away"] {
		t.Fatalf("home partners = %v", got)
	}
	if p.Covers(fields["foreign"]) {
		t.Fatal("cross-page correlation discovered")
	}
	if p.Covers(fields["noisy"]) {
		t.Fatal("noisy pair (distance 0.2) passed θ=0.1")
	}
	if p.NumRules() != 1 {
		t.Fatalf("rules = %v", p.Rules())
	}
}

func TestTrainLooserThetaAdmitsNoisyPair(t *testing.T) {
	hs, fields := corpus(t)
	span := timeline.NewSpan(0, 2000)
	p, err := Train(hs, span, Config{Theta: 0.25, Norm: NormOverlap})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Covers(fields["noisy"]) {
		t.Fatal("noisy pair should pass θ=0.25")
	}
	// random shares no days with the colors: distance 1, never a rule.
	if p.Covers(fields["random"]) {
		partners := p.Partners(fields["random"])
		t.Fatalf("random field correlated with %v", partners)
	}
}

func TestTrainRejectsBadTheta(t *testing.T) {
	hs, _ := corpus(t)
	for _, theta := range []float64{0, -0.5, 1.5} {
		if _, err := Train(hs, timeline.NewSpan(0, 10), Config{Theta: theta}); err == nil {
			t.Errorf("theta %v accepted", theta)
		}
	}
}

func TestMaxFieldsPerPageSkipsLargePages(t *testing.T) {
	hs, fields := corpus(t)
	p, err := Train(hs, timeline.NewSpan(0, 2000), Config{Theta: 0.1, MaxFieldsPerPage: 2})
	if err != nil {
		t.Fatal(err)
	}
	// FC Example has 4 fields > 2, so no rules survive from it.
	if p.Covers(fields["home"]) {
		t.Fatal("large page not skipped")
	}
}

func TestPredictFiresOnPartnerChange(t *testing.T) {
	hs, fields := corpus(t)
	span := timeline.NewSpan(0, 2000)
	p, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	// Window containing away's change at day 740. Target home: the partner
	// changed -> prediction fires.
	w := timeline.Window{Span: timeline.NewSpan(738, 745)}
	ctx := predict.NewContext(hs, fields["home"], w)
	if !p.Predict(ctx) {
		t.Fatal("prediction missed partner change")
	}
	if got := p.Explain(ctx); len(got) != 1 || got[0] != fields["away"] {
		t.Fatalf("Explain = %v", got)
	}
	// Quiet window: no partner change, no prediction.
	wq := timeline.Window{Span: timeline.NewSpan(100, 107)}
	if p.Predict(predict.NewContext(hs, fields["home"], wq)) {
		t.Fatal("prediction fired in quiet window")
	}
	// Uncovered field never predicts.
	if p.Predict(predict.NewContext(hs, fields["random"], w)) {
		t.Fatal("uncovered field predicted")
	}
}

func TestPredictDoesNotSeeTargetOwnChange(t *testing.T) {
	// Both fields change at day 740; for target home the partner (away) is
	// the evidence, not home's own hidden change — and for a field whose
	// only evidence is itself, no prediction may fire.
	hs, fields := corpus(t)
	p, err := Train(hs, timeline.NewSpan(0, 2000), Default())
	if err != nil {
		t.Fatal(err)
	}
	w := timeline.Window{Span: timeline.NewSpan(738, 745)}
	ctx := predict.NewContext(hs, fields["away"], w)
	if !p.Predict(ctx) {
		t.Fatal("away should be predicted via home")
	}
}

// TestRulesSymmetricCoverage: every rule covers both of its fields.
func TestRulesSymmetricCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := changecube.New()
	e := c.AddEntityNamed("t", "page")
	var hsHist []changecube.History
	for i := 0; i < 12; i++ {
		prop := changecube.PropertyID(c.Properties.Intern(propName(i)))
		days := map[timeline.Day]bool{}
		for rng.Intn(10) > 0 && len(days) < 15 {
			days[timeline.Day(rng.Intn(200))] = true
		}
		if len(days) == 0 {
			days[timeline.Day(rng.Intn(200))] = true
		}
		var list []timeline.Day
		for d := range days {
			list = append(list, d)
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		hsHist = append(hsHist, changecube.NewHistory(
			changecube.FieldKey{Entity: e, Property: prop}, list))
	}
	hs, err := changecube.NewHistorySet(c, hsHist)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(hs, timeline.NewSpan(0, 200), Config{Theta: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Rules() {
		if !p.Covers(r.A) || !p.Covers(r.B) {
			t.Fatalf("rule %v does not cover both fields", r)
		}
		if r.Distance >= 0.4 {
			t.Fatalf("rule %v exceeds theta", r)
		}
		if r.A == r.B {
			t.Fatalf("self-rule %v", r)
		}
	}
}

func propName(i int) string { return string(rune('a' + i)) }

func TestNormString(t *testing.T) {
	if NormOverlap.String() != "overlap" || NormLength.String() != "length" {
		t.Fatal("norm names wrong")
	}
	if Norm(9).String() == "" {
		t.Fatal("unknown norm name empty")
	}
}

func TestName(t *testing.T) {
	p := &Predictor{}
	if p.Name() != "field correlations" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestDistanceTolerant(t *testing.T) {
	span := timeline.NewSpan(0, 100)
	a := hist(10, 20, 30)
	b := hist(11, 22, 30)
	// Same-day: only day 30 matches -> sym diff 4 of mass 6.
	if d := Distance(a, b, span, NormOverlap); d != 4.0/6.0 {
		t.Fatalf("same-day distance = %v", d)
	}
	// ±1 day: 10~11 and 30 match -> sym diff 2 of 6.
	if d := DistanceTolerant(a, b, span, NormOverlap, 1); d != 2.0/6.0 {
		t.Fatalf("tolerance-1 distance = %v", d)
	}
	// ±2 days: all three match -> 0.
	if d := DistanceTolerant(a, b, span, NormOverlap, 2); d != 0 {
		t.Fatalf("tolerance-2 distance = %v", d)
	}
}

func TestMatchCountGreedyIsMaximal(t *testing.T) {
	// a=10 could greedily grab b=12 and starve a=13; the two-pointer
	// approach must still find the maximum matching of size 2.
	a := []timeline.Day{10, 13}
	b := []timeline.Day{12, 14}
	if got := matchCount(a, b, 2); got != 2 {
		t.Fatalf("matchCount = %d, want 2", got)
	}
	if got := matchCount(a, b, 0); got != 0 {
		t.Fatalf("matchCount tol=0 = %d, want 0", got)
	}
}

func TestMatchCountAgainstIntersection(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		mk := func(raw []uint8) []timeline.Day {
			set := map[timeline.Day]bool{}
			for _, r := range raw {
				set[timeline.Day(r)] = true
			}
			var days []timeline.Day
			for d := range set {
				days = append(days, d)
			}
			sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
			return days
		}
		a, b := mk(ra), mk(rb)
		// tol=0 must equal exact intersection size.
		inter := 0
		j := 0
		for _, d := range a {
			for j < len(b) && b[j] < d {
				j++
			}
			if j < len(b) && b[j] == d {
				inter++
			}
		}
		return matchCount(a, b, 0) == inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRejectsNegativeTolerance(t *testing.T) {
	hs, _ := corpus(t)
	cfg := Default()
	cfg.ToleranceDays = -1
	if _, err := Train(hs, timeline.NewSpan(0, 10), cfg); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestToleranceDiscoverDelayedPair(t *testing.T) {
	// Two fields that always change one day apart: invisible at same-day
	// matching, perfectly correlated at ±1.
	c := changecube.New()
	e := c.AddEntityNamed("t", "page")
	pa := changecube.PropertyID(c.Properties.Intern("a"))
	pb := changecube.PropertyID(c.Properties.Intern("b"))
	fa := changecube.FieldKey{Entity: e, Property: pa}
	fb := changecube.FieldKey{Entity: e, Property: pb}
	hs, err := changecube.NewHistorySet(c, []changecube.History{
		changecube.NewHistory(fa, []timeline.Day{10, 110, 210, 310, 410}),
		changecube.NewHistory(fb, []timeline.Day{11, 111, 211, 311, 411}),
	})
	if err != nil {
		t.Fatal(err)
	}
	span := timeline.NewSpan(0, 500)
	sameDay, err := Train(hs, span, Default())
	if err != nil {
		t.Fatal(err)
	}
	if sameDay.Covers(fa) {
		t.Fatal("delayed pair discovered at same-day matching")
	}
	cfg := Default()
	cfg.ToleranceDays = 1
	tolerant, err := Train(hs, span, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tolerant.Covers(fa) || !tolerant.Covers(fb) {
		t.Fatal("delayed pair missed at tolerance 1")
	}
}
