package correlation

// Incremental retraining (DESIGN.md §10.3): the live ingestion path calls
// Train after every batch, but a batch touches a tiny fraction of the
// pages. Correlation rules are strictly page-local — a rule relates two
// fields of one page and depends only on their in-span change days (and,
// under NormLength, the span length) — so pages whose fields and in-span
// day sets are unchanged since the previous training must reproduce their
// previous rules bit for bit. TrainIncremental reuses those and re-runs
// the pairwise search only on dirty pages.

import (
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Previous carries the outcome of the last successful training: the
// predictor whose rules may be reused and the training span it was
// computed over.
type Previous struct {
	Predictor *Predictor
	Span      timeline.Span
}

// IncrementalStats reports what TrainIncremental actually did. The page
// counters satisfy PagesReused + PagesRetrained == PagesTotal (skipped
// pages count as retrained: their emptiness was re-established).
type IncrementalStats struct {
	// Full is true when every page was searched; FullReason then says why:
	// "cold" (no previous predictor), "forced" (caller demanded it), or
	// "norm_span" (span moved under a length-normalized distance, which
	// rescales every pair).
	Full       bool
	FullReason string
	// DirtyFields is the size of the caller's dirty-field set.
	DirtyFields int
	// PagesTotal, PagesReused, PagesRetrained count pages in the history
	// set; PagesSkipped counts the subset of retrained pages dropped by
	// MaxFieldsPerPage.
	PagesTotal     int
	PagesReused    int
	PagesRetrained int
	PagesSkipped   int
}

// TrainIncremental is Train with rule reuse. dirty lists the fields whose
// change histories may differ from the previous training; prev is the last
// successful training over the same configuration (reusing rules across
// configs is unsound and not detected). forceFull re-searches every page —
// the periodic escape hatch against bookkeeping drift.
//
// A page is retrained when it contains a dirty field, or — if the span
// moved — any field whose in-span day set differs between the two spans.
// All other pages provably yield identical rules (identical floats
// included: the distance is a function of the in-span day values alone
// under NormOverlap) and are carried over from prev. Under NormLength a
// span change rescales every distance, so it forces a full rebuild.
// The result is bit-identical to Train over the same inputs.
func TrainIncremental(hs *changecube.HistorySet, span timeline.Span, cfg Config,
	prev Previous, dirty map[changecube.FieldKey]bool, forceFull bool) (*Predictor, IncrementalStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, IncrementalStats{}, err
	}
	stats := IncrementalStats{DirtyFields: len(dirty)}
	reason := ""
	switch {
	case forceFull:
		reason = "forced"
	case prev.Predictor == nil:
		reason = "cold"
	case cfg.Norm != NormOverlap && span != prev.Span:
		reason = "norm_span"
	}
	if reason != "" {
		res := searchPages(hs, span, cfg, nil, nil)
		stats.Full, stats.FullReason = true, reason
		stats.PagesTotal = res.pagesTotal
		stats.PagesRetrained = res.pagesSearched
		stats.PagesSkipped = res.pagesSkipped
		recordIncremental(stats)
		return newPredictor(res.rules), stats, nil
	}

	cube := hs.Cube()
	dirtyPages := make(map[changecube.PageID]bool, len(dirty))
	for f := range dirty {
		dirtyPages[cube.Page(f.Entity)] = true
	}
	if span != prev.Span {
		// The live span advances with every batch, which can move a
		// field's day set even when the field itself was untouched. Days
		// are strictly increasing, so two in-span slices are identical iff
		// they agree on length and first value.
		for _, h := range hs.Histories() {
			page := cube.Page(h.Field.Entity)
			if dirtyPages[page] {
				continue
			}
			if !sameDays(h.In(prev.Span), h.In(span)) {
				dirtyPages[page] = true
			}
		}
	}

	prevByPage := make(map[changecube.PageID][]Rule)
	for _, r := range prev.Predictor.rules {
		page := cube.Page(r.A.Entity)
		prevByPage[page] = append(prevByPage[page], r)
	}

	res := searchPages(hs, span, cfg, func(p changecube.PageID) bool { return dirtyPages[p] }, prevByPage)
	stats.PagesTotal = res.pagesTotal
	stats.PagesReused = res.pagesReused
	stats.PagesRetrained = res.pagesSearched
	stats.PagesSkipped = res.pagesSkipped
	recordIncremental(stats)
	return newPredictor(res.rules), stats, nil
}

// sameDays reports whether two strictly increasing day slices are equal.
// Both are contiguous windows into the same underlying history, so equal
// length plus equal first element implies equality.
func sameDays(a, b []timeline.Day) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || a[0] == b[0]
}

// recordIncremental publishes the wikistale_train_incremental_* metrics.
func recordIncremental(s IncrementalStats) {
	if s.Full {
		obs.Default.Counter(obs.IncrementalFullTotal, obs.Labels{"reason": s.FullReason}).Inc()
	} else {
		obs.Default.Counter(obs.IncrementalRetrainsTotal, nil).Inc()
	}
	obs.Default.Counter(obs.IncrementalPagesReusedTotal, nil).Add(uint64(s.PagesReused))
	obs.Default.Counter(obs.IncrementalPagesRetrainedTotal, nil).Add(uint64(s.PagesRetrained))
	obs.Default.Gauge(obs.IncrementalDirtyFields, nil).Set(float64(s.DirtyFields))
}
