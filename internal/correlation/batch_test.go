package correlation

import (
	"testing"

	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func TestPredictWindowsMatchesScalar(t *testing.T) {
	hs, _ := corpus(t)
	p, err := Train(hs, timeline.NewSpan(0, 2000), Config{Theta: 0.25, MinSpanChanges: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRules() == 0 {
		t.Fatal("no rules trained; equivalence check would be vacuous")
	}
	split := timeline.NewSpan(0, 1470)
	for _, size := range []int{7, 365} {
		ws := predict.NewWindowSet(hs, split, size, nil)
		for _, h := range hs.Histories() {
			b := ws.For(h.Field)
			batch := make([]bool, b.NumWindows())
			scalar := make([]bool, b.NumWindows())
			p.PredictWindows(b, batch)
			predict.ScalarPredictWindows(p, b, scalar)
			for i := range batch {
				if batch[i] != scalar[i] {
					t.Fatalf("size %d field %v window %d: batch %v != scalar %v",
						size, h.Field, i, batch[i], scalar[i])
				}
			}
		}
	}
}
