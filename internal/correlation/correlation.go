// Package correlation implements the paper's field-correlation predictor
// (§3.2): two fields of the same page are correlated when the normalized
// Manhattan distance between their daily change vectors falls below an
// error threshold θ. A field covered by at least one correlation rule is
// predicted to change in a window whenever a correlated partner changed in
// that window.
//
// Training is the fast path described in DESIGN.md §10: per-field day
// slices are hoisted out of the pair loop, and under the overlap norm the
// quadratic pairwise search is pruned with a day→field inverted index —
// two fields sharing no change day (within the tolerance) have distance
// exactly 1 and can never clear θ ∈ (0, 1], so only co-changing pairs are
// visited. Pages run on a bounded worker pool; incremental retraining
// (incremental.go) additionally reuses untouched pages' rules.
package correlation

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Norm selects the distance normalization (see DESIGN.md §3.1).
type Norm int

const (
	// NormOverlap normalizes the Manhattan distance by the total change
	// mass Σ(aᵢ+bᵢ), realizing the paper's stated endpoints: 0 for fields
	// that always change together, 1 for fields with no overlapping
	// changes. This is the default.
	NormOverlap Norm = iota
	// NormLength normalizes by the vector length k (the number of training
	// days) — the paper's literal wording, kept for the ablation study.
	NormLength
)

// String names the normalization.
func (n Norm) String() string {
	switch n {
	case NormOverlap:
		return "overlap"
	case NormLength:
		return "length"
	default:
		return fmt.Sprintf("Norm(%d)", int(n))
	}
}

// Config tunes training.
type Config struct {
	// Theta is the error threshold θ: pairs with distance < Theta become a
	// correlation rule. The paper's grid search selects 0.1.
	Theta float64
	// Norm selects the distance normalization.
	Norm Norm
	// MaxFieldsPerPage skips pages with more fields than this to bound the
	// quadratic pairwise search (0 means no bound). The paper bounds the
	// search by restricting it to single pages; a handful of generated
	// list-like pages can still be large. Skipped pages are counted in the
	// wikistale_train_pages_skipped_total metric and logged per training
	// run.
	MaxFieldsPerPage int
	// ToleranceDays loosens the co-change matching: two changes count as
	// simultaneous when at most this many days apart. The paper reports
	// trying such delayed-update periods and finding that same-day (0)
	// worked best; the knob is kept for that ablation.
	ToleranceDays int
	// MinSpanChanges excludes fields with fewer change days inside the
	// training span from the pairwise search. This is the paper's §5.1
	// eligibility rule applied per timeframe ("all datasets contain all
	// fields that have at least five changes within their timeframe"):
	// a field born days before the training cutoff has a one- or
	// two-entry change vector, and on a property-rich page such vectors
	// collide into spurious zero-distance rules.
	MinSpanChanges int
}

// Default returns the paper's configuration (θ = 0.1, five changes within
// the training timeframe).
func Default() Config {
	return Config{Theta: 0.1, Norm: NormOverlap, MinSpanChanges: 5}
}

// validate checks the training configuration.
func (c Config) validate() error {
	if c.Theta <= 0 || c.Theta > 1 {
		return fmt.Errorf("correlation: Theta %v out of (0,1]", c.Theta)
	}
	if c.ToleranceDays < 0 {
		return fmt.Errorf("correlation: negative ToleranceDays %d", c.ToleranceDays)
	}
	if c.MinSpanChanges < 0 {
		return fmt.Errorf("correlation: negative MinSpanChanges %d", c.MinSpanChanges)
	}
	return nil
}

// Rule is a symmetric field-correlation rule A ∼ B.
type Rule struct {
	A, B     changecube.FieldKey
	Distance float64
}

// Predictor holds the learned correlation rules.
type Predictor struct {
	rules []Rule
	// partners indexes each field's rules from that field's point of view,
	// keeping the learned distance so the explain path can report how far
	// below θ a fired rule was.
	partners map[changecube.FieldKey][]partnerRule
}

// partnerRule is one correlation rule seen from one of its two fields.
type partnerRule struct {
	field    changecube.FieldKey
	distance float64
}

var (
	_ predict.Predictor      = (*Predictor)(nil)
	_ predict.BatchPredictor = (*Predictor)(nil)
)

// Distance computes the normalized Manhattan distance between two change
// histories over the training span. Change vectors are binary per day
// (the filter pipeline leaves at most one change per field-day), so the
// Manhattan distance equals the size of the symmetric difference of the
// day sets.
func Distance(a, b changecube.History, span timeline.Span, norm Norm) float64 {
	return DistanceTolerant(a, b, span, norm, 0)
}

// DistanceTolerant is Distance with delayed-update slack: change days at
// most tolDays apart count as co-changes. tolDays = 0 is the paper's
// same-day matching.
func DistanceTolerant(a, b changecube.History, span timeline.Span, norm Norm, tolDays int) float64 {
	return distanceDays(a.In(span), b.In(span), span.Len(), norm, tolDays)
}

// distanceDays is the distance over already-sliced in-span day lists, so
// the training loop can hoist the History.In binary searches out of the
// pair loop.
func distanceDays(da, db []timeline.Day, spanLen int, norm Norm, tolDays int) float64 {
	matched := matchCount(da, db, timeline.Day(tolDays))
	sym := len(da) + len(db) - 2*matched
	switch norm {
	case NormOverlap:
		total := len(da) + len(db)
		if total == 0 {
			// Two fields with no changes in the span carry no evidence;
			// treat them as uncorrelated.
			return 1
		}
		return float64(sym) / float64(total)
	case NormLength:
		if spanLen == 0 {
			return 1
		}
		return float64(sym) / float64(spanLen)
	default:
		panic(fmt.Sprintf("correlation: unknown norm %d", norm))
	}
}

// matchCount greedily pairs days of a and b that are at most tol apart.
// Both inputs are strictly increasing; on a line the greedy two-pointer
// matching is maximal.
func matchCount(a, b []timeline.Day, tol timeline.Day) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d <= tol {
			n++
			i++
			j++
			continue
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return n
}

// Train discovers correlation rules between fields of the same page, using
// the change days inside span. The returned predictor is immutable.
func Train(hs *changecube.HistorySet, span timeline.Span, cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := searchPages(hs, span, cfg, nil, nil)
	return newPredictor(res.rules), nil
}

// searchResult is the outcome of one page sweep.
type searchResult struct {
	rules         []Rule
	pagesTotal    int
	pagesReused   int
	pagesSearched int
	pagesSkipped  int
}

// searchPages runs the per-page pairwise search on a bounded worker pool
// (the same pull-from-a-channel shape as core's grid runner, so page-size
// skew cannot idle workers). When dirty is non-nil, pages it reports clean
// take their rules from prevByPage instead of being searched — the
// incremental path; callers guarantee the reuse is sound. Results land in
// page order, so the output is deterministic regardless of scheduling.
func searchPages(hs *changecube.HistorySet, span timeline.Span, cfg Config,
	dirty func(changecube.PageID) bool, prevByPage map[changecube.PageID][]Rule) searchResult {
	histories := hs.Histories()
	byPage := hs.ByPage()
	pages := make([]changecube.PageID, 0, len(byPage))
	for page := range byPage {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	tspan := obs.StartSpan("train/correlation_search")
	perPage := make([][]Rule, len(pages))
	var skipped atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pages) {
		workers = len(pages)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s pageScratch
			for i := range next {
				rules, skip := pageRules(&s, histories, byPage[pages[i]], span, cfg)
				if skip {
					skipped.Add(1)
				}
				perPage[i] = rules
			}
		}()
	}
	res := searchResult{pagesTotal: len(pages)}
	for i, page := range pages {
		if dirty != nil && !dirty(page) {
			perPage[i] = prevByPage[page]
			res.pagesReused++
			continue
		}
		res.pagesSearched++
		next <- i
	}
	close(next)
	wg.Wait()
	tspan.End()

	res.pagesSkipped = int(skipped.Load())
	if res.pagesSkipped > 0 {
		obs.Default.Counter(obs.PagesSkippedTotal, obs.Labels{"predictor": "correlation"}).
			Add(uint64(res.pagesSkipped))
		log.Printf("correlation: skipped %d of %d pages exceeding MaxFieldsPerPage=%d; their fields get no rules",
			res.pagesSkipped, len(pages), cfg.MaxFieldsPerPage)
	}
	n := 0
	for _, rules := range perPage {
		n += len(rules)
	}
	if n == 0 {
		return res
	}
	res.rules = make([]Rule, 0, n)
	for _, rules := range perPage {
		res.rules = append(res.rules, rules...)
	}
	return res
}

// maxDenseSpanDays bounds the span length for which the inverted index
// uses a span-indexed array (one slice header per day, reused across a
// worker's pages). Realistic training spans are a few thousand days;
// anything beyond the bound is synthetic and takes the plain quadratic
// search, which is always correct.
const maxDenseSpanDays = 1 << 18

// pageScratch is a worker's reusable search state: the span-indexed
// day→field buckets, the per-field co-change counters and the eligibility
// slices all survive from page to page, so the steady-state search
// allocates only the rule slices it returns.
type pageScratch struct {
	buckets  [][]int32 // day (relative to span.Start) → eligible fields changed that day
	usedDays []int32   // indices of non-empty buckets, for O(used) reset
	fields   []changecube.FieldKey
	days     [][]timeline.Day
	cnt      []int32 // co-change count per field for the current x (tol == 0)
	touched  []int32 // fields with cnt > 0, in first-co-change order
	stamp    []int64 // generation stamps marking visited pairs (tol > 0)
	gen      int64
}

// pageRules runs the pairwise search for one page, reporting whether the
// page was skipped by the MaxFieldsPerPage bound. Day slices are computed
// once per field; under the overlap norm only pairs sharing at least one
// change day (within the tolerance) are visited — any other pair has
// distance exactly 1 ≥ θ and cannot become a rule. With same-day matching
// (the default) the matched-day count of a candidate pair is exactly its
// co-change count, so distances fall out of the bucket sweep itself and no
// per-pair day merge runs at all.
func pageRules(s *pageScratch, histories []changecube.History, pageIndices []int, span timeline.Span, cfg Config) ([]Rule, bool) {
	// Per-timeframe eligibility: only fields with enough in-span changes
	// participate. The day slices are the hoisted History.In results.
	fields, days := s.fields[:0], s.days[:0]
	for _, i := range pageIndices {
		d := histories[i].In(span)
		if len(d) >= cfg.MinSpanChanges {
			fields = append(fields, histories[i].Field)
			days = append(days, d)
		}
	}
	s.fields, s.days = fields, days
	if cfg.MaxFieldsPerPage > 0 && len(fields) > cfg.MaxFieldsPerPage {
		return nil, true
	}
	var rules []Rule
	emit := func(x, y int) {
		d := distanceDays(days[x], days[y], span.Len(), cfg.Norm, cfg.ToleranceDays)
		if d < cfg.Theta {
			rules = append(rules, Rule{A: fields[x], B: fields[y], Distance: d})
		}
	}
	if cfg.Norm != NormOverlap || span.Len() > maxDenseSpanDays {
		// NormLength admits rules between disjoint (even changeless) pairs,
		// so the co-change prune is unsound there; fall back to the full
		// quadratic search over the hoisted slices.
		for x := 0; x < len(fields); x++ {
			for y := x + 1; y < len(fields); y++ {
				emit(x, y)
			}
		}
		return rules, false
	}
	// Overlap norm: distance < θ ≤ 1 requires at least one matched day
	// pair, so candidate pairs are exactly those sharing a change day
	// within ToleranceDays. Invert days into a day→fields index and visit
	// only co-changing pairs.
	if len(s.buckets) < span.Len() {
		s.buckets = make([][]int32, span.Len())
	}
	if len(s.cnt) < len(fields) {
		s.cnt = make([]int32, len(fields))
		s.stamp = make([]int64, len(fields))
	}
	for x, dx := range days {
		for _, d := range dx {
			rel := int(d - span.Start)
			if len(s.buckets[rel]) == 0 {
				s.usedDays = append(s.usedDays, int32(rel))
			}
			s.buckets[rel] = append(s.buckets[rel], int32(x))
		}
	}
	if cfg.ToleranceDays == 0 {
		// Same-day matching: day sets are duplicate-free, so the maximal
		// matching between two fields is their day-set intersection, whose
		// size is the number of buckets holding both — counted directly
		// while sweeping x's buckets. The distance then needs no day merge:
		// |sym diff| = lx + ly − 2·matched over total mass lx + ly.
		for x := range fields {
			lx := len(days[x])
			touched := s.touched[:0]
			for _, d := range days[x] {
				for _, y := range s.buckets[int(d-span.Start)] {
					if int(y) <= x {
						continue
					}
					if s.cnt[y] == 0 {
						touched = append(touched, y)
					}
					s.cnt[y]++
				}
			}
			for _, y := range touched {
				matched := int(s.cnt[y])
				s.cnt[y] = 0
				total := lx + len(days[y])
				if d := float64(total-2*matched) / float64(total); d < cfg.Theta {
					rules = append(rules, Rule{A: fields[x], B: fields[y], Distance: d})
				}
			}
			s.touched = touched
		}
	} else {
		// Delayed-update matching: a shared bucket within ±tol only proves
		// the pair is a candidate (greedy matching decides the real count),
		// so visit each candidate pair once — stamped with a generation
		// counter that survives across pages — and compute its distance.
		tol := timeline.Day(cfg.ToleranceDays)
		for x := range fields {
			s.gen++
			for _, d := range days[x] {
				for off := -tol; off <= tol; off++ {
					rel := int(d+off) - int(span.Start)
					if rel < 0 || rel >= span.Len() {
						continue
					}
					for _, y := range s.buckets[rel] {
						if int(y) <= x || s.stamp[y] == s.gen {
							continue
						}
						s.stamp[y] = s.gen
						emit(x, int(y))
					}
				}
			}
		}
	}
	for _, rel := range s.usedDays {
		s.buckets[rel] = s.buckets[rel][:0]
	}
	s.usedDays = s.usedDays[:0]
	return rules, false
}

// newPredictor sorts rules and builds the partner index — the shared tail
// of Train, TrainIncremental and FromRules, so all three produce identical
// predictors from identical rule sets.
func newPredictor(rules []Rule) *Predictor {
	tspan := obs.StartSpan("train/correlation_index")
	defer tspan.End()
	p := &Predictor{
		rules:    rules,
		partners: make(map[changecube.FieldKey][]partnerRule, len(rules)),
	}
	sort.Slice(p.rules, func(i, j int) bool {
		if p.rules[i].A != p.rules[j].A {
			return fieldLess(p.rules[i].A, p.rules[j].A)
		}
		return fieldLess(p.rules[i].B, p.rules[j].B)
	})
	for _, r := range p.rules {
		p.partners[r.A] = append(p.partners[r.A], partnerRule{field: r.B, distance: r.Distance})
		p.partners[r.B] = append(p.partners[r.B], partnerRule{field: r.A, distance: r.Distance})
	}
	return p
}

func fieldLess(a, b changecube.FieldKey) bool {
	if a.Entity != b.Entity {
		return a.Entity < b.Entity
	}
	return a.Property < b.Property
}

// Name implements predict.Predictor.
func (p *Predictor) Name() string { return "field correlations" }

// Rules returns the learned rules, sorted by field.
func (p *Predictor) Rules() []Rule { return p.rules }

// NumRules returns the number of correlation rules.
func (p *Predictor) NumRules() int { return len(p.rules) }

// Partners returns the fields correlated with f.
func (p *Predictor) Partners(f changecube.FieldKey) []changecube.FieldKey {
	prs := p.partners[f]
	if len(prs) == 0 {
		return nil
	}
	out := make([]changecube.FieldKey, len(prs))
	for i, pr := range prs {
		out[i] = pr.field
	}
	return out
}

// Covers reports whether f participates in at least one rule.
func (p *Predictor) Covers(f changecube.FieldKey) bool {
	return len(p.partners[f]) > 0
}

// Predict implements predict.Predictor: the target should have changed in
// the window if any correlated partner changed in it.
func (p *Predictor) Predict(ctx predict.Context) bool {
	for _, pr := range p.partners[ctx.Target()] {
		if ctx.FieldChangedIn(pr.field, ctx.Window().Span) {
			return true
		}
	}
	return false
}

// PredictWindows implements predict.BatchPredictor: out[i] is true when
// any correlated partner changed in window i. Each partner costs one
// cached row lookup instead of one binary search per window.
func (p *Predictor) PredictWindows(b predict.Batch, out []bool) {
	for i := range out {
		out[i] = false
	}
	for _, pr := range p.partners[b.Target()] {
		for i, changed := range b.FieldChanged(pr.field) {
			if changed {
				out[i] = true
			}
		}
	}
}

// Explain returns the partners that changed in the window — the paper's
// inherent explanation for a positive prediction. It returns nil when the
// prediction is negative.
func (p *Predictor) Explain(ctx predict.Context) []changecube.FieldKey {
	var changed []changecube.FieldKey
	for _, pr := range p.partners[ctx.Target()] {
		if ctx.FieldChangedIn(pr.field, ctx.Window().Span) {
			changed = append(changed, pr.field)
		}
	}
	return changed
}

// FiredRule is one correlation rule that fired for a prediction: the
// partner that changed in the window, with the learned distance it cleared
// θ by.
type FiredRule struct {
	Partner  changecube.FieldKey
	Distance float64
}

// ExplainRules is Explain with the rule evidence attached: every partner
// that changed in the window together with its learned distance. Its
// non-emptiness is exactly Predict's verdict.
func (p *Predictor) ExplainRules(ctx predict.Context) []FiredRule {
	var fired []FiredRule
	for _, pr := range p.partners[ctx.Target()] {
		if ctx.FieldChangedIn(pr.field, ctx.Window().Span) {
			fired = append(fired, FiredRule{Partner: pr.field, Distance: pr.distance})
		}
	}
	return fired
}

// FromRules reconstructs a predictor from previously learned rules — the
// deserialization path for model persistence. Rules are re-sorted so the
// result is identical to the original training output.
func FromRules(rules []Rule) *Predictor {
	return newPredictor(append([]Rule(nil), rules...))
}
