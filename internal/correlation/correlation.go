// Package correlation implements the paper's field-correlation predictor
// (§3.2): two fields of the same page are correlated when the normalized
// Manhattan distance between their daily change vectors falls below an
// error threshold θ. A field covered by at least one correlation rule is
// predicted to change in a window whenever a correlated partner changed in
// that window.
package correlation

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Norm selects the distance normalization (see DESIGN.md §3.1).
type Norm int

const (
	// NormOverlap normalizes the Manhattan distance by the total change
	// mass Σ(aᵢ+bᵢ), realizing the paper's stated endpoints: 0 for fields
	// that always change together, 1 for fields with no overlapping
	// changes. This is the default.
	NormOverlap Norm = iota
	// NormLength normalizes by the vector length k (the number of training
	// days) — the paper's literal wording, kept for the ablation study.
	NormLength
)

// String names the normalization.
func (n Norm) String() string {
	switch n {
	case NormOverlap:
		return "overlap"
	case NormLength:
		return "length"
	default:
		return fmt.Sprintf("Norm(%d)", int(n))
	}
}

// Config tunes training.
type Config struct {
	// Theta is the error threshold θ: pairs with distance < Theta become a
	// correlation rule. The paper's grid search selects 0.1.
	Theta float64
	// Norm selects the distance normalization.
	Norm Norm
	// MaxFieldsPerPage skips pages with more fields than this to bound the
	// quadratic pairwise search (0 means no bound). The paper bounds the
	// search by restricting it to single pages; a handful of generated
	// list-like pages can still be large.
	MaxFieldsPerPage int
	// ToleranceDays loosens the co-change matching: two changes count as
	// simultaneous when at most this many days apart. The paper reports
	// trying such delayed-update periods and finding that same-day (0)
	// worked best; the knob is kept for that ablation.
	ToleranceDays int
	// MinSpanChanges excludes fields with fewer change days inside the
	// training span from the pairwise search. This is the paper's §5.1
	// eligibility rule applied per timeframe ("all datasets contain all
	// fields that have at least five changes within their timeframe"):
	// a field born days before the training cutoff has a one- or
	// two-entry change vector, and on a property-rich page such vectors
	// collide into spurious zero-distance rules.
	MinSpanChanges int
}

// Default returns the paper's configuration (θ = 0.1, five changes within
// the training timeframe).
func Default() Config {
	return Config{Theta: 0.1, Norm: NormOverlap, MinSpanChanges: 5}
}

// Rule is a symmetric field-correlation rule A ∼ B.
type Rule struct {
	A, B     changecube.FieldKey
	Distance float64
}

// Predictor holds the learned correlation rules.
type Predictor struct {
	rules    []Rule
	partners map[changecube.FieldKey][]changecube.FieldKey
}

var (
	_ predict.Predictor      = (*Predictor)(nil)
	_ predict.BatchPredictor = (*Predictor)(nil)
)

// Distance computes the normalized Manhattan distance between two change
// histories over the training span. Change vectors are binary per day
// (the filter pipeline leaves at most one change per field-day), so the
// Manhattan distance equals the size of the symmetric difference of the
// day sets.
func Distance(a, b changecube.History, span timeline.Span, norm Norm) float64 {
	return DistanceTolerant(a, b, span, norm, 0)
}

// DistanceTolerant is Distance with delayed-update slack: change days at
// most tolDays apart count as co-changes. tolDays = 0 is the paper's
// same-day matching.
func DistanceTolerant(a, b changecube.History, span timeline.Span, norm Norm, tolDays int) float64 {
	da, db := a.In(span), b.In(span)
	matched := matchCount(da, db, timeline.Day(tolDays))
	sym := len(da) + len(db) - 2*matched
	switch norm {
	case NormOverlap:
		total := len(da) + len(db)
		if total == 0 {
			// Two fields with no changes in the span carry no evidence;
			// treat them as uncorrelated.
			return 1
		}
		return float64(sym) / float64(total)
	case NormLength:
		k := span.Len()
		if k == 0 {
			return 1
		}
		return float64(sym) / float64(k)
	default:
		panic(fmt.Sprintf("correlation: unknown norm %d", norm))
	}
}

// matchCount greedily pairs days of a and b that are at most tol apart.
// Both inputs are strictly increasing; on a line the greedy two-pointer
// matching is maximal.
func matchCount(a, b []timeline.Day, tol timeline.Day) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d <= tol {
			n++
			i++
			j++
			continue
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return n
}

// Train discovers correlation rules between fields of the same page, using
// the change days inside span. The returned predictor is immutable.
func Train(hs *changecube.HistorySet, span timeline.Span, cfg Config) (*Predictor, error) {
	if cfg.Theta <= 0 || cfg.Theta > 1 {
		return nil, fmt.Errorf("correlation: Theta %v out of (0,1]", cfg.Theta)
	}
	if cfg.ToleranceDays < 0 {
		return nil, fmt.Errorf("correlation: negative ToleranceDays %d", cfg.ToleranceDays)
	}
	if cfg.MinSpanChanges < 0 {
		return nil, fmt.Errorf("correlation: negative MinSpanChanges %d", cfg.MinSpanChanges)
	}
	histories := hs.Histories()
	byPage := hs.ByPage()
	pages := make([]changecube.PageID, 0, len(byPage))
	for page := range byPage {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	// The pairwise search is embarrassingly parallel across pages; rules
	// are merged and sorted afterwards, so the result is deterministic
	// regardless of scheduling.
	tspan := obs.StartSpan("train/correlation_search")
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pages) {
		workers = len(pages)
	}
	if workers < 1 {
		workers = 1
	}
	ruleChunks := make([][]Rule, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(pages) / workers
		hi := (w + 1) * len(pages) / workers
		wg.Add(1)
		go func(out *[]Rule, pages []changecube.PageID) {
			defer wg.Done()
			for _, page := range pages {
				*out = append(*out, pageRules(histories, byPage[page], span, cfg)...)
			}
		}(&ruleChunks[w], pages[lo:hi])
	}
	wg.Wait()
	tspan.End()

	tspan = obs.StartSpan("train/correlation_index")
	defer tspan.End()
	p := &Predictor{partners: make(map[changecube.FieldKey][]changecube.FieldKey)}
	for _, chunk := range ruleChunks {
		p.rules = append(p.rules, chunk...)
	}
	sort.Slice(p.rules, func(i, j int) bool {
		if p.rules[i].A != p.rules[j].A {
			return fieldLess(p.rules[i].A, p.rules[j].A)
		}
		return fieldLess(p.rules[i].B, p.rules[j].B)
	})
	for _, r := range p.rules {
		p.partners[r.A] = append(p.partners[r.A], r.B)
		p.partners[r.B] = append(p.partners[r.B], r.A)
	}
	return p, nil
}

// pageRules runs the quadratic pairwise search for one page.
func pageRules(histories []changecube.History, pageIndices []int, span timeline.Span, cfg Config) []Rule {
	// Per-timeframe eligibility: only fields with enough in-span changes
	// participate.
	indices := pageIndices[:0:0]
	for _, i := range pageIndices {
		if histories[i].CountIn(span) >= cfg.MinSpanChanges {
			indices = append(indices, i)
		}
	}
	if cfg.MaxFieldsPerPage > 0 && len(indices) > cfg.MaxFieldsPerPage {
		return nil
	}
	var rules []Rule
	for x := 0; x < len(indices); x++ {
		for y := x + 1; y < len(indices); y++ {
			a, b := histories[indices[x]], histories[indices[y]]
			d := DistanceTolerant(a, b, span, cfg.Norm, cfg.ToleranceDays)
			if d < cfg.Theta {
				rules = append(rules, Rule{A: a.Field, B: b.Field, Distance: d})
			}
		}
	}
	return rules
}

func fieldLess(a, b changecube.FieldKey) bool {
	if a.Entity != b.Entity {
		return a.Entity < b.Entity
	}
	return a.Property < b.Property
}

// Name implements predict.Predictor.
func (p *Predictor) Name() string { return "field correlations" }

// Rules returns the learned rules, sorted by field.
func (p *Predictor) Rules() []Rule { return p.rules }

// NumRules returns the number of correlation rules.
func (p *Predictor) NumRules() int { return len(p.rules) }

// Partners returns the fields correlated with f.
func (p *Predictor) Partners(f changecube.FieldKey) []changecube.FieldKey {
	return p.partners[f]
}

// Covers reports whether f participates in at least one rule.
func (p *Predictor) Covers(f changecube.FieldKey) bool {
	return len(p.partners[f]) > 0
}

// Predict implements predict.Predictor: the target should have changed in
// the window if any correlated partner changed in it.
func (p *Predictor) Predict(ctx predict.Context) bool {
	for _, partner := range p.partners[ctx.Target()] {
		if ctx.FieldChangedIn(partner, ctx.Window().Span) {
			return true
		}
	}
	return false
}

// PredictWindows implements predict.BatchPredictor: out[i] is true when
// any correlated partner changed in window i. Each partner costs one
// cached row lookup instead of one binary search per window.
func (p *Predictor) PredictWindows(b predict.Batch, out []bool) {
	for i := range out {
		out[i] = false
	}
	for _, partner := range p.partners[b.Target()] {
		for i, changed := range b.FieldChanged(partner) {
			if changed {
				out[i] = true
			}
		}
	}
}

// Explain returns the partners that changed in the window — the paper's
// inherent explanation for a positive prediction. It returns nil when the
// prediction is negative.
func (p *Predictor) Explain(ctx predict.Context) []changecube.FieldKey {
	var changed []changecube.FieldKey
	for _, partner := range p.partners[ctx.Target()] {
		if ctx.FieldChangedIn(partner, ctx.Window().Span) {
			changed = append(changed, partner)
		}
	}
	return changed
}

// FromRules reconstructs a predictor from previously learned rules — the
// deserialization path for model persistence. Rules are re-sorted so the
// result is identical to the original training output.
func FromRules(rules []Rule) *Predictor {
	p := &Predictor{
		rules:    append([]Rule(nil), rules...),
		partners: make(map[changecube.FieldKey][]changecube.FieldKey, len(rules)),
	}
	sort.Slice(p.rules, func(i, j int) bool {
		if p.rules[i].A != p.rules[j].A {
			return fieldLess(p.rules[i].A, p.rules[j].A)
		}
		return fieldLess(p.rules[i].B, p.rules[j].B)
	})
	for _, r := range p.rules {
		p.partners[r.A] = append(p.partners[r.A], r.B)
		p.partners[r.B] = append(p.partners[r.B], r.A)
	}
	return p
}
