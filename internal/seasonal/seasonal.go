// Package seasonal implements the predictor the paper's §6 proposes as
// future work: capturing fields that change at the same time every year —
// league kick-offs, award ceremonies, annual reports — which the same-day
// correlation and weekly association rules cannot see when no related
// field changes alongside them.
//
// Training extracts per-field anchors: days-of-year around which the field
// changed in enough distinct years. A prediction fires when the window
// covers an anchor (within tolerance). Like the paper's predictors, the
// model is rule-shaped and self-explaining: the anchor is the explanation.
package seasonal

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// yearDays approximates the calendar year. The generator's annual
// processes use the same arithmetic; on real data the ±tolerance absorbs
// leap-day drift over the horizon a detector is retrained at (the paper
// recommends retraining at least yearly).
const yearDays = 365

// Config tunes training.
type Config struct {
	// MinYears is the minimum number of distinct years in which the field
	// must have changed near an anchor.
	MinYears int
	// RecurrenceFraction is the minimum share of the field's observed
	// years that must hit the anchor. Between them, MinYears and this
	// fraction play the role of the other predictors' precision guards.
	RecurrenceFraction float64
	// ToleranceDays is the slack around an anchor, in days.
	ToleranceDays int
	// MinWindowDays disables predictions for windows shorter than this.
	// A yearly rhythm pins a change to within a few days, not to a day —
	// exactly the paper's argument that rarely-changing properties should
	// be predicted at weekly or monthly granularity.
	MinWindowDays int
	// MaxDormancyDays requires the field to have changed at least once
	// within this many days before the window; a page that fell out of
	// maintenance keeps its anchors but no longer follows them.
	MaxDormancyDays int
}

// Default returns a conservative configuration tuned, like the paper's
// predictors, for precision over recall: monthly-or-coarser windows only,
// and a liveness guard of about 1.5 years (the previous season must have
// happened).
func Default() Config {
	return Config{
		MinYears:           3,
		RecurrenceFraction: 0.7,
		ToleranceDays:      5,
		MinWindowDays:      30,
		MaxDormancyDays:    550,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MinYears < 2 {
		return fmt.Errorf("seasonal: MinYears %d < 2 (one year is not a season)", c.MinYears)
	}
	if c.RecurrenceFraction <= 0 || c.RecurrenceFraction > 1 {
		return fmt.Errorf("seasonal: RecurrenceFraction %v out of (0,1]", c.RecurrenceFraction)
	}
	if c.ToleranceDays < 0 || c.ToleranceDays >= yearDays/4 {
		return fmt.Errorf("seasonal: ToleranceDays %d out of [0, %d)", c.ToleranceDays, yearDays/4)
	}
	if c.MinWindowDays < 1 {
		return fmt.Errorf("seasonal: MinWindowDays %d < 1", c.MinWindowDays)
	}
	if c.MaxDormancyDays < yearDays {
		return fmt.Errorf("seasonal: MaxDormancyDays %d < one year (the previous season could never qualify)", c.MaxDormancyDays)
	}
	return nil
}

// Anchor is one learned yearly recurrence.
type Anchor struct {
	// DayOfYear is the anchor position in [0, 365).
	DayOfYear int
	// Years is how many distinct years hit the anchor during training.
	Years int
}

// Predictor holds the learned per-field anchors.
type Predictor struct {
	anchors     map[changecube.FieldKey][]Anchor // sorted by DayOfYear
	tol         int
	minWindow   int
	maxDormancy timeline.Day
}

var _ predict.Predictor = (*Predictor)(nil)

// Train learns yearly anchors from the change days inside span.
func Train(hs *changecube.HistorySet, span timeline.Span, cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		anchors:     make(map[changecube.FieldKey][]Anchor),
		tol:         cfg.ToleranceDays,
		minWindow:   cfg.MinWindowDays,
		maxDormancy: timeline.Day(cfg.MaxDormancyDays),
	}
	for _, h := range hs.Histories() {
		days := h.In(span)
		if len(days) < cfg.MinYears {
			continue
		}
		anchors := extractAnchors(days, cfg)
		if len(anchors) > 0 {
			p.anchors[h.Field] = anchors
		}
	}
	return p, nil
}

// extractAnchors clusters the field's change days by day-of-year and keeps
// clusters recurring in enough years.
func extractAnchors(days []timeline.Day, cfg Config) []Anchor {
	yearsObserved := int(days[len(days)-1]-days[0])/yearDays + 1
	need := cfg.MinYears
	if frac := int(cfg.RecurrenceFraction*float64(yearsObserved) + 0.999999); frac > need {
		need = frac
	}
	if yearsObserved < cfg.MinYears {
		return nil
	}

	type obs struct {
		doy  int
		year int
	}
	observations := make([]obs, len(days))
	for i, d := range days {
		doy := int(d) % yearDays
		if doy < 0 {
			doy += yearDays
		}
		observations[i] = obs{doy: doy, year: int(d) / yearDays}
	}
	sort.Slice(observations, func(i, j int) bool { return observations[i].doy < observations[j].doy })

	// Greedy clustering along day-of-year; the circle seam is handled by
	// checking whether the first and last clusters wrap into each other.
	var clusters [][]obs
	for _, o := range observations {
		if n := len(clusters); n > 0 {
			last := clusters[n-1]
			if o.doy-last[len(last)-1].doy <= cfg.ToleranceDays {
				clusters[n-1] = append(last, o)
				continue
			}
		}
		clusters = append(clusters, []obs{o})
	}
	if len(clusters) > 1 {
		first, last := clusters[0], clusters[len(clusters)-1]
		if first[0].doy+yearDays-last[len(last)-1].doy <= cfg.ToleranceDays {
			clusters[0] = append(last, first...)
			clusters = clusters[:len(clusters)-1]
		}
	}

	var anchors []Anchor
	for _, cluster := range clusters {
		years := map[int]bool{}
		for _, o := range cluster {
			years[o.year] = true
		}
		if len(years) < need {
			continue
		}
		anchors = append(anchors, Anchor{
			DayOfYear: cluster[len(cluster)/2].doy,
			Years:     len(years),
		})
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].DayOfYear < anchors[j].DayOfYear })
	return anchors
}

// Name implements predict.Predictor.
func (p *Predictor) Name() string { return "seasonal" }

// Anchors returns the learned anchors for a field.
func (p *Predictor) Anchors(f changecube.FieldKey) []Anchor { return p.anchors[f] }

// Covers reports whether the field has at least one anchor.
func (p *Predictor) Covers(f changecube.FieldKey) bool { return len(p.anchors[f]) > 0 }

// NumCovered returns the number of fields with anchors.
func (p *Predictor) NumCovered() int { return len(p.anchors) }

// Predict implements predict.Predictor: the field should have changed if
// the window covers one of its anchors, the window is coarse enough for a
// yearly rhythm to pin a change, and the field still followed its rhythm
// recently (it changed within MaxDormancyDays before the window).
func (p *Predictor) Predict(ctx predict.Context) bool {
	return p.Explain(ctx) != nil
}

// Explain returns the anchor justifying a positive prediction, or nil.
func (p *Predictor) Explain(ctx predict.Context) *Anchor {
	anchors := p.anchors[ctx.Target()]
	if len(anchors) == 0 {
		return nil
	}
	w := ctx.Window()
	if w.Size() < p.minWindow {
		return nil
	}
	days := ctx.TargetDays()
	if len(days) == 0 || days[len(days)-1] < w.Start-p.maxDormancy {
		return nil // the page fell out of maintenance
	}
	return p.match(anchors, w.Span)
}

// match returns the first anchor whose day-of-year falls inside the span.
func (p *Predictor) match(anchors []Anchor, span timeline.Span) *Anchor {
	if len(anchors) == 0 || span.Len() <= 0 {
		return nil
	}
	if span.Len() >= yearDays {
		return &anchors[0] // a yearly window always covers every anchor
	}
	lo := int(span.Start) % yearDays
	if lo < 0 {
		lo += yearDays
	}
	length := span.Len()
	for i := range anchors {
		d := anchors[i].DayOfYear - lo
		if d < 0 {
			d += yearDays
		}
		if d < length {
			return &anchors[i]
		}
	}
	return nil
}

// FieldAnchors pairs a field with its learned anchors, the serializable
// unit of the model.
type FieldAnchors struct {
	Field   changecube.FieldKey
	Anchors []Anchor
}

// Export returns the learned anchors in field order plus the prediction
// parameters, for model persistence.
func (p *Predictor) Export() (anchors []FieldAnchors, toleranceDays, minWindowDays, maxDormancyDays int) {
	for field, a := range p.anchors {
		anchors = append(anchors, FieldAnchors{Field: field, Anchors: a})
	}
	sort.Slice(anchors, func(i, j int) bool {
		a, b := anchors[i].Field, anchors[j].Field
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		return a.Property < b.Property
	})
	return anchors, p.tol, p.minWindow, int(p.maxDormancy)
}

// FromAnchors reconstructs a predictor from exported anchors — the
// deserialization path for model persistence.
func FromAnchors(anchors []FieldAnchors, toleranceDays, minWindowDays, maxDormancyDays int) *Predictor {
	p := &Predictor{
		anchors:     make(map[changecube.FieldKey][]Anchor, len(anchors)),
		tol:         toleranceDays,
		minWindow:   minWindowDays,
		maxDormancy: timeline.Day(maxDormancyDays),
	}
	for _, fa := range anchors {
		p.anchors[fa.Field] = append([]Anchor(nil), fa.Anchors...)
	}
	return p
}
