package seasonal

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// randomSeasonalSet builds nFields fields, most with a yearly rhythm
// (base day-of-year ± jitter across several years) plus noise, some pure
// noise — enough structure that Train finds anchors to reuse.
func randomSeasonalSet(t *testing.T, rng *rand.Rand, nFields, years int) *changecube.HistorySet {
	t.Helper()
	c := changecube.New()
	var histories []changecube.History
	for i := 0; i < nFields; i++ {
		e := c.AddEntityNamed("infobox season", fmt.Sprintf("Page %d", i))
		prop := changecube.PropertyID(c.Properties.Intern("prop"))
		set := map[timeline.Day]bool{}
		if i%4 != 3 { // three in four fields carry a yearly rhythm
			base := rng.Intn(330)
			for y := 0; y < years; y++ {
				set[timeline.Day(y*365+base+rng.Intn(7)-3)] = true
			}
		}
		for n := rng.Intn(6); n > 0; n-- {
			set[timeline.Day(rng.Intn(years*365))] = true
		}
		if len(set) == 0 {
			continue
		}
		var days []timeline.Day
		for d := range set {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		histories = append(histories, changecube.NewHistory(
			changecube.FieldKey{Entity: e, Property: prop}, days))
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

func mutateSet(t *testing.T, rng *rand.Rand, hs *changecube.HistorySet, dayRange int) (*changecube.HistorySet, map[changecube.FieldKey]bool) {
	t.Helper()
	histories := hs.Histories()
	updates := make(map[changecube.FieldKey][]timeline.Day)
	dirty := make(map[changecube.FieldKey]bool)
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		h := histories[rng.Intn(len(histories))]
		updates[h.Field] = append(updates[h.Field], timeline.Day(rng.Intn(dayRange)))
		dirty[h.Field] = true
	}
	next, err := hs.MergeDays(updates)
	if err != nil {
		t.Fatal(err)
	}
	return next, dirty
}

// TestIncrementalMatchesColdRetrain: after every delta the incremental
// predictor must be DeepEqual — anchors, tolerances, everything — to a
// cold Train over the same snapshot.
func TestIncrementalMatchesColdRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cfg := Default()
	hs := randomSeasonalSet(t, rng, 30, 5)
	span := timeline.NewSpan(0, 5*365)

	prevP, stats, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full || stats.FullReason != "cold" {
		t.Fatalf("first train stats = %+v, want cold full rebuild", stats)
	}
	prev := Previous{Predictor: prevP, Span: span}
	anchorsSeen := 0
	for step := 0; step < 12; step++ {
		next, dirty := mutateSet(t, rng, hs, 5*365)
		hs = next
		inc, stats, err := TrainIncremental(hs, span, cfg, prev, dirty, false)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Train(hs, span, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, cold) {
			t.Fatalf("step %d: incremental predictor != cold predictor (stats %+v)", step, stats)
		}
		if stats.Full {
			t.Fatalf("step %d: unexpected full rebuild %+v", step, stats)
		}
		if stats.FieldsRecomputed == 0 {
			t.Fatalf("step %d: dirty fields but nothing recomputed", step)
		}
		anchorsSeen += len(inc.anchors)
		prev = Previous{Predictor: inc, Span: span}
	}
	if anchorsSeen == 0 {
		t.Fatal("corpus never produced an anchor; the equivalence was vacuous")
	}
}

// TestIncrementalSpanAndForceFallbacks: a moved span or the escape hatch
// must rebuild everything and still match a cold Train.
func TestIncrementalSpanAndForceFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	cfg := Default()
	hs := randomSeasonalSet(t, rng, 20, 4)
	span := timeline.NewSpan(0, 4*365)
	p1, _, err := TrainIncremental(hs, span, cfg, Previous{}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	next, dirty := mutateSet(t, rng, hs, 4*365)
	prev := Previous{Predictor: p1, Span: span}

	for _, tc := range []struct {
		name   string
		span   timeline.Span
		force  bool
		reason string
	}{
		{name: "span", span: timeline.NewSpan(0, 4*365+30), reason: "span"},
		{name: "forced", span: span, force: true, reason: "forced"},
	} {
		inc, stats, err := TrainIncremental(next, tc.span, cfg, prev, dirty, tc.force)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Full || stats.FullReason != tc.reason {
			t.Fatalf("%s: stats = %+v, want full rebuild with reason %q", tc.name, stats, tc.reason)
		}
		cold, err := Train(next, tc.span, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, cold) {
			t.Fatalf("%s: full-fallback predictor diverged from cold train", tc.name)
		}
	}
}
