package seasonal

// Incremental retraining: anchors are strictly field-local — a field's
// anchors are a function of its own in-span change days and the config,
// nothing else — so an unchanged field reproduces its previous anchors
// bit for bit. TrainIncremental copies the previous anchor map and
// re-extracts only the dirty fields. A moved span shifts every field's
// in-span window at once, so it falls back to a full rebuild (the live
// span rolls at most once per data day; every retrain in between reuses).

import (
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Previous carries the last successful training and its span.
type Previous struct {
	Predictor *Predictor
	Span      timeline.Span
}

// IncrementalStats reports what TrainIncremental actually did.
type IncrementalStats struct {
	// Full is true when every field was re-extracted; FullReason is
	// "cold", "forced", or "span".
	Full       bool
	FullReason string
	// FieldsRecomputed counts the dirty fields re-extracted on the
	// incremental path.
	FieldsRecomputed int
}

// TrainIncremental is Train with per-field anchor reuse. dirty lists the
// fields whose change histories may differ from the previous training
// (vanished fields included — the caller must report them); prev must
// come from the same configuration. The result is bit-identical to Train
// over the same inputs.
func TrainIncremental(hs *changecube.HistorySet, span timeline.Span, cfg Config,
	prev Previous, dirty map[changecube.FieldKey]bool, forceFull bool) (*Predictor, IncrementalStats, error) {
	reason := ""
	switch {
	case forceFull:
		reason = "forced"
	case prev.Predictor == nil:
		reason = "cold"
	case span != prev.Span:
		reason = "span"
	}
	if reason != "" {
		p, err := Train(hs, span, cfg)
		if err != nil {
			return nil, IncrementalStats{}, err
		}
		return p, IncrementalStats{Full: true, FullReason: reason}, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, IncrementalStats{}, err
	}

	p := &Predictor{
		anchors:     make(map[changecube.FieldKey][]Anchor, len(prev.Predictor.anchors)),
		tol:         cfg.ToleranceDays,
		minWindow:   cfg.MinWindowDays,
		maxDormancy: timeline.Day(cfg.MaxDormancyDays),
	}
	for f, a := range prev.Predictor.anchors {
		if !dirty[f] {
			p.anchors[f] = a
		}
	}
	stats := IncrementalStats{}
	for f := range dirty {
		h, ok := hs.Get(f)
		if !ok {
			continue // vanished field: its stale entry was already dropped
		}
		stats.FieldsRecomputed++
		days := h.In(span)
		if len(days) < cfg.MinYears {
			continue
		}
		if anchors := extractAnchors(days, cfg); len(anchors) > 0 {
			p.anchors[f] = anchors
		}
	}
	return p, stats, nil
}
