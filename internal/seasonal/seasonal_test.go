package seasonal

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// buildSet wires arbitrary histories into a HistorySet on one entity.
func buildSet(t *testing.T, fieldDays ...[]timeline.Day) (*changecube.HistorySet, []changecube.FieldKey) {
	t.Helper()
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	var histories []changecube.History
	var keys []changecube.FieldKey
	for i, days := range fieldDays {
		prop := changecube.PropertyID(c.Properties.Intern(propName(i)))
		k := changecube.FieldKey{Entity: e, Property: prop}
		keys = append(keys, k)
		histories = append(histories, changecube.NewHistory(k, days))
	}
	hs, err := changecube.NewHistorySet(c, histories)
	if err != nil {
		t.Fatal(err)
	}
	return hs, keys
}

func propName(i int) string { return string(rune('a' + i)) }

// yearly returns change days at dayOfYear+jitter for the given years.
func yearly(dayOfYear int, jitters ...int) []timeline.Day {
	var days []timeline.Day
	for year, j := range jitters {
		days = append(days, timeline.Day(year*365+dayOfYear+j))
	}
	return days
}

func TestTrainFindsYearlyAnchor(t *testing.T) {
	// Changes around day-of-year 100 in 6 consecutive years, jitter ±3.
	hs, keys := buildSet(t, yearly(100, 0, 2, -3, 1, 0, -1))
	p, err := Train(hs, timeline.NewSpan(0, 6*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	anchors := p.Anchors(keys[0])
	if len(anchors) != 1 {
		t.Fatalf("anchors = %v, want one", anchors)
	}
	if a := anchors[0]; a.DayOfYear < 97 || a.DayOfYear > 103 || a.Years != 6 {
		t.Fatalf("anchor = %+v", a)
	}
}

func TestTrainRejectsIrregularField(t *testing.T) {
	// Six changes scattered with no yearly rhythm.
	hs, keys := buildSet(t, []timeline.Day{10, 150, 380, 700, 1200, 1800})
	p, err := Train(hs, timeline.NewSpan(0, 6*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.Covers(keys[0]) {
		t.Fatalf("irregular field got anchors: %v", p.Anchors(keys[0]))
	}
}

func TestTrainRequiresEnoughYears(t *testing.T) {
	// Only two years of history: below MinYears=3.
	hs, keys := buildSet(t, yearly(50, 0, 1))
	p, err := Train(hs, timeline.NewSpan(0, 3*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.Covers(keys[0]) {
		t.Fatal("two-year field got an anchor")
	}
}

func TestTrainRecurrenceFraction(t *testing.T) {
	// Ten observed years but only 4 hit the anchor: 40% < 70%.
	days := append(yearly(200, 0, 1, -1, 2), timeline.Day(9*365+10))
	hs, keys := buildSet(t, days)
	p, err := Train(hs, timeline.NewSpan(0, 10*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.Covers(keys[0]) {
		t.Fatal("sporadic field got an anchor")
	}
}

func TestWrapAroundAnchor(t *testing.T) {
	// New-Year's-Eve field: changes at day-of-year 363..1 across years.
	days := []timeline.Day{
		363,         // year 0, doy 363
		365 + 364,   // year 1, doy 364
		2*365 + 0,   // year 2 start, doy 0
		3*365 + 1,   // year 3, doy 1
		4*365 + 364, // year 4
		5*365 + 0,   // year 5
	}
	hs, keys := buildSet(t, days)
	p, err := Train(hs, timeline.NewSpan(0, 6*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	anchors := p.Anchors(keys[0])
	if len(anchors) != 1 {
		t.Fatalf("wrap-around anchors = %v, want one", anchors)
	}
	// Prediction across the seam: a window covering the year boundary.
	w := timeline.Window{Span: timeline.NewSpan(6*365-15, 6*365+15)}
	if !p.Predict(predict.NewContext(hs, keys[0], w)) {
		t.Fatal("seam window missed the wrap-around anchor")
	}
}

func TestPredictWindows(t *testing.T) {
	hs, keys := buildSet(t, yearly(100, 0, 1, -1, 0, 2, 0))
	p, err := Train(hs, timeline.NewSpan(0, 6*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(start, end timeline.Day) predict.Context {
		return predict.NewContext(hs, keys[0], timeline.Window{Span: timeline.NewSpan(start, end)})
	}
	year6 := timeline.Day(6 * 365)
	// Monthly window covering the next year's anchor.
	if !p.Predict(mk(year6+90, year6+120)) {
		t.Fatal("monthly window on the anchor not predicted")
	}
	// Monthly window away from the anchor.
	if p.Predict(mk(year6+180, year6+210)) {
		t.Fatal("off-season month predicted")
	}
	// Daily window on the anchor day: below MinWindowDays, no prediction —
	// a yearly rhythm cannot pin a change to a day.
	if p.Predict(mk(year6+100, year6+101)) {
		t.Fatal("daily prediction despite MinWindowDays")
	}
	// Yearly window always covers a seasonal field's anchor.
	if !p.Predict(mk(year6, year6+365)) {
		t.Fatal("yearly window missed the anchor")
	}
}

func TestPredictRespectsDormancy(t *testing.T) {
	// Six seasonal years, then the page dies: predicting three years later
	// must stay silent even though the window covers the anchor.
	hs, keys := buildSet(t, yearly(100, 0, 1, -1, 0, 2, 0))
	p, err := Train(hs, timeline.NewSpan(0, 6*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	year9 := timeline.Day(9 * 365)
	w := timeline.Window{Span: timeline.NewSpan(year9+90, year9+120)}
	if p.Predict(predict.NewContext(hs, keys[0], w)) {
		t.Fatal("dormant field predicted")
	}
}

func TestExplainReturnsAnchor(t *testing.T) {
	hs, keys := buildSet(t, yearly(100, 0, 1, -1, 0))
	p, err := Train(hs, timeline.NewSpan(0, 4*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	w := timeline.Window{Span: timeline.NewSpan(4*365+85, 4*365+115)}
	a := p.Explain(predict.NewContext(hs, keys[0], w))
	if a == nil || a.DayOfYear < 97 || a.DayOfYear > 103 {
		t.Fatalf("Explain = %+v", a)
	}
	off := timeline.Window{Span: timeline.NewSpan(4*365+200, 4*365+230)}
	if p.Explain(predict.NewContext(hs, keys[0], off)) != nil {
		t.Fatal("Explain fired off-season")
	}
}

func TestMultipleAnchors(t *testing.T) {
	// Spring and autumn events every year.
	var days []timeline.Day
	for year := 0; year < 5; year++ {
		days = append(days, timeline.Day(year*365+90), timeline.Day(year*365+270))
	}
	hs, keys := buildSet(t, days)
	p, err := Train(hs, timeline.NewSpan(0, 5*365), Default())
	if err != nil {
		t.Fatal(err)
	}
	anchors := p.Anchors(keys[0])
	if len(anchors) != 2 {
		t.Fatalf("anchors = %v, want two", anchors)
	}
	if anchors[0].DayOfYear != 90 || anchors[1].DayOfYear != 270 {
		t.Fatalf("anchor positions = %v", anchors)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		cfg := Default()
		f(&cfg)
		return cfg
	}
	bad := []Config{
		mutate(func(c *Config) { c.MinYears = 1 }),
		mutate(func(c *Config) { c.RecurrenceFraction = 0 }),
		mutate(func(c *Config) { c.RecurrenceFraction = 1.5 }),
		mutate(func(c *Config) { c.ToleranceDays = -1 }),
		mutate(func(c *Config) { c.ToleranceDays = 120 }),
		mutate(func(c *Config) { c.MinWindowDays = 0 }),
		mutate(func(c *Config) { c.MaxDormancyDays = 100 }),
	}
	hs, _ := buildSet(t, yearly(10, 0, 0, 0))
	for i, cfg := range bad {
		if _, err := Train(hs, timeline.NewSpan(0, 1000), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestName(t *testing.T) {
	if (&Predictor{}).Name() != "seasonal" {
		t.Fatal("name wrong")
	}
}
