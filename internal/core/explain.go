package core

import (
	"context"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs/trace"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// CorrelationEvidence is one fired field-correlation rule, resolved to
// names: the correlated partner changed in the window, and the learned
// distance cleared the training threshold θ.
type CorrelationEvidence struct {
	PartnerPage     string  `json:"partner_page"`
	PartnerProperty string  `json:"partner_property"`
	Distance        float64 `json:"distance"`
	Theta           float64 `json:"theta"`
}

// RuleEvidence is one fired association rule, resolved to names: within
// the template, the antecedent property changed in the window and the rule
// demands the consequent (the explained field) change too.
type RuleEvidence struct {
	Template   string  `json:"template"`
	Antecedent string  `json:"antecedent"`
	Consequent string  `json:"consequent"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	// ValidationPrecision is the rule's precision on the training holdout
	// (-1 when the holdout never fired it); ValidationFires how often it
	// fired there.
	ValidationPrecision float64 `json:"validation_precision"`
	ValidationFires     int     `json:"validation_fires"`
}

// Vote is one predictor's verdict on the explained (field, window).
type Vote struct {
	Predictor string `json:"predictor"`
	Fired     bool   `json:"fired"`
}

// Explanation is the full audit record for one (field, window) prediction:
// the evidence DetectStale would act on, plus every predictor's vote. The
// invariant the explain tests pin down: Stale is true exactly when
// DetectStale(asOf, window) would report the field.
type Explanation struct {
	// Field and Window identify the prediction; the serving layer resolves
	// them to names for the HTTP response.
	Field  changecube.FieldKey `json:"-"`
	Window timeline.Window     `json:"-"`
	// ChangedInWindow reports whether the field actually changed in the
	// window — in which case it is healthy regardless of the evidence.
	ChangedInWindow bool `json:"changed_in_window"`
	// Stale is the DetectStale verdict: evidence fired and no change came.
	Stale bool `json:"stale"`
	// Correlations and Rules are the fired evidence (empty when nothing
	// demands a change).
	Correlations []CorrelationEvidence `json:"correlations,omitempty"`
	Rules        []RuleEvidence        `json:"rules,omitempty"`
	// Votes lists every Table-1 predictor's verdict, including the
	// ensembles, in Predictors() order.
	Votes []Vote `json:"votes"`
	// Summary is the human-readable evidence line, identical to the
	// StaleAlert.Explanation DetectStale emits for this field when stale.
	Summary string `json:"summary,omitempty"`
}

// Explain audits one (field, window) prediction: which correlation and
// association rules fired, how every predictor voted, and whether the
// field counts as stale. The verdict mirrors DetectStale exactly — for any
// field DetectStale(asOf, windowSize) reports, Explain returns Stale=true
// with non-empty evidence, and for any field it does not, Stale=false.
func (d *Detector) Explain(field changecube.FieldKey, asOf timeline.Day, windowSize int) Explanation {
	w := timeline.Window{Span: timeline.NewSpan(asOf-timeline.Day(windowSize), asOf)}
	ex := Explanation{Field: field, Window: w}
	if windowSize <= 0 {
		return ex
	}
	if h, ok := d.histories.Get(field); ok {
		ex.ChangedInWindow = h.ChangedIn(w.Span)
	}

	ctx := predict.NewContext(d.histories, field, w)
	cube := d.histories.Cube()
	var partners []changecube.FieldKey
	for _, fr := range d.fieldCorr.ExplainRules(ctx) {
		partners = append(partners, fr.Partner)
		ex.Correlations = append(ex.Correlations, CorrelationEvidence{
			PartnerPage:     cube.Pages.Name(int32(cube.Page(fr.Partner.Entity))),
			PartnerProperty: cube.Properties.Name(int32(fr.Partner.Property)),
			Distance:        fr.Distance,
			Theta:           d.cfg.Correlation.Theta,
		})
	}
	var antes []changecube.PropertyID
	for _, r := range d.assocRules.ExplainRules(ctx) {
		antes = append(antes, r.Antecedent)
		ex.Rules = append(ex.Rules, RuleEvidence{
			Template:            cube.Templates.Name(int32(r.Template)),
			Antecedent:          cube.Properties.Name(int32(r.Antecedent)),
			Consequent:          cube.Properties.Name(int32(r.Consequent)),
			Support:             r.Support,
			Confidence:          r.Confidence,
			ValidationPrecision: r.ValidationPrecision,
			ValidationFires:     r.Fires,
		})
	}
	for _, p := range d.Predictors() {
		ex.Votes = append(ex.Votes, Vote{Predictor: p.Name(), Fired: p.Predict(ctx)})
	}

	ex.Stale = !ex.ChangedInWindow && (len(ex.Correlations) > 0 || len(ex.Rules) > 0)
	if len(partners) > 0 {
		ex.Summary = d.explainCorrelation(partners)
	}
	if len(antes) > 0 {
		if ex.Summary != "" {
			ex.Summary += "; "
		}
		ex.Summary += d.explainRule(field, antes)
	}
	return ex
}

// Votes returns every Table-1 predictor's verdict on (field, window)
// without resolving evidence to names — the cheap subset of Explain the
// quality scorer uses to attribute each alert to the detector families
// whose votes fired for it. Identical to Explain's Votes list: same
// predictors, same order, same verdicts.
func (d *Detector) Votes(field changecube.FieldKey, asOf timeline.Day, windowSize int) []Vote {
	if windowSize <= 0 {
		return nil
	}
	w := timeline.Window{Span: timeline.NewSpan(asOf-timeline.Day(windowSize), asOf)}
	ctx := predict.NewContext(d.histories, field, w)
	votes := make([]Vote, 0, 6)
	for _, p := range d.Predictors() {
		votes = append(votes, Vote{Predictor: p.Name(), Fired: p.Predict(ctx)})
	}
	return votes
}

// ExplainCtx is Explain wrapped in a trace child span, so /v1/explain
// requests show the audit as one timed node of their trace.
func (d *Detector) ExplainCtx(ctx context.Context, field changecube.FieldKey, asOf timeline.Day, windowSize int) Explanation {
	_, span := trace.StartChild(ctx, "explain")
	span.SetAttr("asof", asOf.String())
	span.SetAttr("window_days", windowSize)
	ex := d.Explain(field, asOf, windowSize)
	span.SetAttr("stale", ex.Stale)
	span.End()
	return ex
}
