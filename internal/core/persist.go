package core

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/wikistale/wikistale/internal/assocrules"
	"github.com/wikistale/wikistale/internal/baseline"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/ensemble"
	"github.com/wikistale/wikistale/internal/familycorr"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/seasonal"
)

// modelVersion is bumped on any incompatible change to the model file.
const modelVersion = 1

// modelFile is the JSON shape of a trained model: every learned rule set,
// but no observation data — the histories live in the change cube (or the
// cubestore) and are supplied again at load time. The paper's 6-hour
// training run thus happens once; services restart from the file.
type modelFile struct {
	Version int    `json:"version"`
	Splits  Splits `json:"splits"`

	CorrelationRules []correlation.Rule `json:"correlation_rules"`
	AssociationRules []assocrules.Rule  `json:"association_rules"`

	SeasonalAnchors     []seasonal.FieldAnchors `json:"seasonal_anchors"`
	SeasonalTolerance   int                     `json:"seasonal_tolerance_days"`
	SeasonalMinWindow   int                     `json:"seasonal_min_window_days"`
	SeasonalMaxDormancy int                     `json:"seasonal_max_dormancy_days"`

	FamilyRules []familycorr.Rule `json:"family_rules"`

	ThresholdSets []baseline.SizeFields `json:"threshold_sets"`
}

// exportModel assembles the serializable view of the trained model.
func (d *Detector) exportModel() modelFile {
	anchors, tol, minWin, maxDorm := d.seasonalP.Export()
	return modelFile{
		Version:             modelVersion,
		Splits:              d.splits,
		CorrelationRules:    d.fieldCorr.Rules(),
		AssociationRules:    d.assocRules.Rules(),
		SeasonalAnchors:     anchors,
		SeasonalTolerance:   tol,
		SeasonalMinWindow:   minWin,
		SeasonalMaxDormancy: maxDorm,
		FamilyRules:         d.familyCorr.Rules(),
		ThresholdSets:       d.threshBase.Export(),
	}
}

// SaveModel writes the trained model as JSON.
func (d *Detector) SaveModel(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d.exportModel())
}

// MarshalModel returns the trained model in the compact form of the same
// shape SaveModel writes — the epoch store's model payload. The encoding
// is deterministic for a given detector (encoding/json writes struct
// fields in declaration order), so identical detectors marshal to
// identical bytes.
func (d *Detector) MarshalModel() ([]byte, error) {
	return json.Marshal(d.exportModel())
}

// LoadModel reconstructs a detector from a saved model plus the filtered
// observation data the predictions run against. The data may be newer than
// the model (the daily-ingest scenario); the model's rules apply
// unchanged, as they do between the paper's yearly retrainings.
func LoadModel(hs *changecube.HistorySet, stats filter.Stats, cfg Config, r io.Reader) (*Detector, error) {
	var m modelFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	return loadModelFile(hs, stats, cfg, m)
}

// LoadModelBytes is LoadModel over an in-memory payload, the inverse of
// MarshalModel.
func LoadModelBytes(hs *changecube.HistorySet, stats filter.Stats, cfg Config, data []byte) (*Detector, error) {
	var m modelFile
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	return loadModelFile(hs, stats, cfg, m)
}

func loadModelFile(hs *changecube.HistorySet, stats filter.Stats, cfg Config, m modelFile) (*Detector, error) {
	if m.Version != modelVersion {
		return nil, fmt.Errorf("core: model version %d, this build reads %d", m.Version, modelVersion)
	}
	if hs.Len() == 0 {
		return nil, fmt.Errorf("core: no observation data")
	}
	cube := hs.Cube()
	for _, rule := range m.CorrelationRules {
		for _, f := range []changecube.FieldKey{rule.A, rule.B} {
			if int(f.Entity) >= cube.NumEntities() || f.Entity < 0 {
				return nil, fmt.Errorf("core: model references unknown entity %d (stale model for this cube?)", f.Entity)
			}
		}
	}
	d := &Detector{
		cfg:         cfg,
		histories:   hs,
		splits:      m.Splits,
		filterStats: stats,
		fieldCorr:   correlation.FromRules(m.CorrelationRules),
		assocRules:  assocrules.FromRules(m.AssociationRules),
		seasonalP: seasonal.FromAnchors(m.SeasonalAnchors,
			m.SeasonalTolerance, m.SeasonalMinWindow, m.SeasonalMaxDormancy),
		familyCorr: familycorr.FromRules(m.FamilyRules),
		threshBase: baseline.ThresholdFromSets(m.ThresholdSets),
	}
	d.report.Filter = stats
	d.andEns, d.orEns = ensemble.Paper(d.fieldCorr, d.assocRules)
	d.extOrEns = ensemble.Or{
		Members: []predict.Predictor{d.fieldCorr, d.assocRules, d.seasonalP, d.familyCorr},
		Label:   "extended OR-ensemble",
	}
	return d, nil
}
