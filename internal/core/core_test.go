package core

import (
	"strings"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

// trainSmall generates the test corpus and trains a detector once per test
// binary; the corpus and training are deterministic.
var trained struct {
	det   *Detector
	truth *dataset.Truth
}

func detector(t *testing.T) (*Detector, *dataset.Truth) {
	t.Helper()
	if trained.det != nil {
		return trained.det, trained.truth
	}
	cube, truth, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	det, err := Train(cube, DefaultConfig())
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	trained.det = det
	trained.truth = truth
	return det, truth
}

func TestComputeSplits(t *testing.T) {
	span := timeline.NewSpan(0, 365*5)
	s, err := ComputeSplits(span, 365, 365)
	if err != nil {
		t.Fatal(err)
	}
	if s.Test.Len() != 365 || s.Validation.Len() != 365 {
		t.Fatalf("splits = %+v", s)
	}
	if s.Test.End != span.End || s.Validation.End != s.Test.Start || s.Train.End != s.Validation.Start {
		t.Fatalf("splits not contiguous: %+v", s)
	}
	if s.TrainVal.Start != s.Train.Start || s.TrainVal.End != s.Validation.End {
		t.Fatalf("TrainVal wrong: %+v", s)
	}
}

func TestComputeSplitsTooShort(t *testing.T) {
	if _, err := ComputeSplits(timeline.NewSpan(0, 900), 365, 365); err == nil {
		t.Fatal("short span accepted")
	}
	if _, err := ComputeSplits(timeline.NewSpan(0, 10000), 0, 365); err == nil {
		t.Fatal("zero validation accepted")
	}
}

func TestTrainProducesAllPredictors(t *testing.T) {
	det, _ := detector(t)
	ps := det.Predictors()
	if len(ps) != 6 {
		t.Fatalf("predictors = %d, want 6", len(ps))
	}
	wantOrder := []string{
		"mean baseline", "threshold baseline", "field correlations",
		"association rules", "AND-ensemble", "OR-ensemble",
	}
	for i, p := range ps {
		if p.Name() != wantOrder[i] {
			t.Fatalf("predictor %d = %q, want %q", i, p.Name(), wantOrder[i])
		}
	}
	if det.FieldCorrelations().NumRules() == 0 {
		t.Fatal("no correlation rules learned")
	}
	if det.AssociationRules().NumRules() == 0 {
		t.Fatal("no association rules learned")
	}
	if det.FilterStats().Survival() <= 0 {
		t.Fatal("no filter stats recorded")
	}
}

// TestTableOneShape asserts the qualitative result of the paper's Table 1
// on the synthetic corpus: both our predictors beat the 85% precision
// target on weekly windows with non-trivial recall, the baselines fail it,
// and the ensembles bracket the members.
func TestTableOneShape(t *testing.T) {
	det, _ := detector(t)
	report, err := det.EvaluateTest(eval.Options{Sizes: []int{7}})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) eval.Counts { return report.BySize[name][7] }

	corr, assoc := get("field correlations"), get("association rules")
	and, or := get("AND-ensemble"), get("OR-ensemble")
	mean, thresh := get("mean baseline"), get("threshold baseline")

	for name, c := range map[string]eval.Counts{
		"field correlations": corr, "association rules": assoc, "OR-ensemble": or,
	} {
		if c.Precision() < 0.85 {
			t.Errorf("%s precision %.3f below the 85%% target", name, c.Precision())
		}
		if c.Recall() <= 0 {
			t.Errorf("%s has zero recall", name)
		}
	}
	if mean.Precision() >= 0.85 {
		t.Errorf("mean baseline precision %.3f unexpectedly meets the target", mean.Precision())
	}
	// The OR-ensemble must have the highest recall of all predictors that
	// meet the precision target.
	if or.Recall() < corr.Recall() || or.Recall() < assoc.Recall() {
		t.Errorf("OR recall %.3f below members (%.3f, %.3f)", or.Recall(), corr.Recall(), assoc.Recall())
	}
	if and.Recall() > corr.Recall() || and.Recall() > assoc.Recall() {
		t.Errorf("AND recall %.3f above members (%.3f, %.3f)", and.Recall(), corr.Recall(), assoc.Recall())
	}
	// AND predictions are exactly the intersection; OR the union.
	if and.Predictions() > corr.Predictions() || and.Predictions() > assoc.Predictions() {
		t.Error("AND predicted more than a member")
	}
	if or.Predictions() < corr.Predictions() || or.Predictions() < assoc.Predictions() {
		t.Error("OR predicted less than a member")
	}
	if or.Predictions() > corr.Predictions()+assoc.Predictions() {
		t.Error("OR predicted more than the sum of members")
	}
	_ = thresh // threshold baseline can land anywhere below ~90 on tiny corpora
}

// TestEnsembleCountsConsistent: |OR| + |AND| = |A| + |B| holds exactly for
// union and intersection.
func TestEnsembleCountsConsistent(t *testing.T) {
	det, _ := detector(t)
	report, err := det.EvaluateTest(eval.Options{Sizes: []int{30}})
	if err != nil {
		t.Fatal(err)
	}
	corr := report.BySize["field correlations"][30].Predictions()
	assoc := report.BySize["association rules"][30].Predictions()
	and := report.BySize["AND-ensemble"][30].Predictions()
	or := report.BySize["OR-ensemble"][30].Predictions()
	if or+and != corr+assoc {
		t.Fatalf("inclusion-exclusion violated: OR %d + AND %d != %d + %d", or, and, corr, assoc)
	}
}

func TestDetectStaleFindsCaseStudy(t *testing.T) {
	det, truth := detector(t)
	cs := truth.CaseStudy
	if len(cs.MissedDays) == 0 {
		t.Fatal("no case study planted")
	}
	found := false
	var explanation string
	for _, missed := range cs.MissedDays {
		// Ask for staleness two days after the missed match day with a
		// narrow window, so the previous (correct) goals update is outside.
		alerts := det.DetectStale(missed+2, 3)
		for _, a := range alerts {
			if a.Field == cs.TotalGoals {
				found = true
				explanation = a.Explanation
			}
		}
	}
	if !found {
		t.Fatal("the Handball-Bundesliga missed goals updates were not flagged")
	}
	if !strings.Contains(explanation, "matches") || !strings.Contains(explanation, "total_goals") {
		t.Errorf("explanation lacks the rule: %q", explanation)
	}
}

func TestDetectStaleSkipsHealthyFields(t *testing.T) {
	det, truth := detector(t)
	cs := truth.CaseStudy
	// Pick a day where total_goals WAS updated (a non-missed match day):
	// the field must not be alerted.
	hs := det.Histories()
	h, ok := hs.Get(cs.TotalGoals)
	if !ok {
		t.Fatal("case study field not in filtered data")
	}
	updated := h.Days()[h.Len()/2]
	for _, a := range det.DetectStale(updated+1, 3) {
		if a.Field == cs.TotalGoals {
			t.Fatalf("healthy field flagged stale: %+v", a)
		}
	}
}

func TestDetectStaleZeroWindow(t *testing.T) {
	det, _ := detector(t)
	if got := det.DetectStale(1000, 0); got != nil {
		t.Fatal("zero window produced alerts")
	}
}

func TestGridSearchTheta(t *testing.T) {
	det, _ := detector(t)
	hs, splits := det.Histories(), det.Splits()
	thetas := []float64{0.01, 0.05, 0.1, 0.15}
	results, err := GridSearchTheta(hs, splits, thetas, det.cfg.Correlation, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(thetas) {
		t.Fatalf("results = %d", len(results))
	}
	// Rule count must be nondecreasing in theta (larger threshold admits
	// every pair a smaller one does).
	for i := 1; i < len(results); i++ {
		if results[i].NumRules < results[i-1].NumRules {
			t.Fatalf("rule count not monotone: %+v", results)
		}
	}
	if best, ok := BestTheta(results, 0.85); ok {
		if best.Counts.Precision() < 0.85 {
			t.Fatalf("BestTheta returned sub-target point: %+v", best)
		}
	}
	if _, ok := BestTheta(results, 1.01); ok {
		t.Fatal("impossible precision target satisfied")
	}
}

func TestGridSearchApriori(t *testing.T) {
	det, _ := detector(t)
	hs, splits := det.Histories(), det.Splits()
	results, err := GridSearchApriori(hs, splits,
		[]float64{0.0025, 0.01}, []float64{0.6, 0.8}, []float64{0.1},
		det.cfg.AssocRules, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	// Stricter support/confidence cannot increase the rule count.
	byKey := map[[2]float64]AprioriResult{}
	for _, r := range results {
		byKey[[2]float64{r.MinSupport, r.MinConfidence}] = r
	}
	if byKey[[2]float64{0.01, 0.8}].NumRules > byKey[[2]float64{0.0025, 0.6}].NumRules {
		t.Fatalf("monotonicity violated: %+v", results)
	}
	if _, ok := BestApriori(results, 1.01); ok {
		t.Fatal("impossible precision target satisfied")
	}
}

func TestGridSearchValidation(t *testing.T) {
	det, _ := detector(t)
	if _, err := GridSearchTheta(det.Histories(), det.Splits(), nil, det.cfg.Correlation, 7); err == nil {
		t.Fatal("empty theta grid accepted")
	}
	if _, err := GridSearchApriori(det.Histories(), det.Splits(), nil, []float64{0.6}, []float64{0.1}, det.cfg.AssocRules, 7); err == nil {
		t.Fatal("empty apriori grid accepted")
	}
}

func TestTrainFailsOnEmptyCube(t *testing.T) {
	if _, err := Train(changecube.New(), DefaultConfig()); err == nil {
		t.Fatal("empty cube accepted")
	}
}

func TestExtendedEnsemble(t *testing.T) {
	det, _ := detector(t)
	if det.Seasonal() == nil {
		t.Fatal("seasonal predictor not trained")
	}
	ext := det.ExtendedOrEnsemble()
	if ext.Name() != "extended OR-ensemble" {
		t.Fatalf("name = %q", ext.Name())
	}
	report, err := det.Evaluate(det.Splits().Test,
		[]predict.Predictor{det.OrEnsemble(), ext, det.Seasonal()},
		eval.Options{Sizes: []int{30}})
	if err != nil {
		t.Fatal(err)
	}
	or := report.BySize["OR-ensemble"][30]
	extc := report.BySize["extended OR-ensemble"][30]
	seas := report.BySize["seasonal"][30]
	// The extension is a superset: recall can only grow.
	if extc.Recall() < or.Recall() {
		t.Errorf("extended recall %.3f below OR %.3f", extc.Recall(), or.Recall())
	}
	if extc.Predictions() < or.Predictions() || extc.Predictions() < seas.Predictions() {
		t.Error("extended ensemble predicted less than a member")
	}
	// The seasonal predictor must stay silent at daily granularity.
	daily, err := det.Evaluate(det.Splits().Test,
		[]predict.Predictor{det.Seasonal()}, eval.Options{Sizes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if daily.BySize["seasonal"][1].Predictions() != 0 {
		t.Error("seasonal predictor fired on daily windows")
	}
}
