package core

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/wikistale/wikistale/internal/assocrules"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/predict"
)

// ThetaResult is one grid point of the correlation-threshold search
// (§5.2): the predictor is trained on the training split and scored on the
// validation split.
type ThetaResult struct {
	Theta    float64
	NumRules int
	Counts   eval.Counts
}

// gridWorkers bounds the worker pool for a grid of n points.
func gridWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runGrid evaluates n independent grid points on a bounded worker pool.
// Results land at their point's index, so the output order is the grid
// order regardless of scheduling; the first error (by index) wins.
func runGrid(n int, point func(i int) error) error {
	workers := gridWorkers(n)
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = point(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// GridSearchTheta sweeps the correlation error threshold θ, evaluating
// each candidate on the validation year at the given window size (the
// paper tunes on daily windows). The base config supplies the remaining
// correlation settings. Grid points run concurrently on a bounded worker
// pool; the ground-truth window rows of the validation split are
// precomputed once and shared read-only across all points.
func GridSearchTheta(hs *changecube.HistorySet, splits Splits, thetas []float64,
	base correlation.Config, windowSize int) ([]ThetaResult, error) {
	if len(thetas) == 0 {
		return nil, fmt.Errorf("core: empty theta grid")
	}
	span := obs.StartSpan("grid/theta")
	defer span.End()
	rows := predict.PrecomputeRows(hs, splits.Validation, []int{windowSize})
	results := make([]ThetaResult, len(thetas))
	err := runGrid(len(thetas), func(i int) error {
		cfg := base
		cfg.Theta = thetas[i]
		p, err := correlation.Train(hs, splits.Train, cfg)
		if err != nil {
			return fmt.Errorf("core: theta %v: %w", thetas[i], err)
		}
		// Workers: 1 — the pool already saturates the machine across
		// points; nesting evaluation parallelism only adds contention.
		report, err := eval.Evaluate(hs, splits.Validation, []predict.Predictor{p},
			eval.Options{Sizes: []int{windowSize}, Workers: 1, Rows: rows})
		if err != nil {
			return fmt.Errorf("core: theta %v: %w", thetas[i], err)
		}
		results[i] = ThetaResult{
			Theta:    thetas[i],
			NumRules: p.NumRules(),
			Counts:   report.BySize[p.Name()][windowSize],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// BestTheta returns the grid point with the highest recall among those
// meeting the target precision, mirroring the paper's selection rule. The
// boolean is false when no point qualifies.
func BestTheta(results []ThetaResult, targetPrecision float64) (ThetaResult, bool) {
	best := ThetaResult{}
	found := false
	for _, r := range results {
		if r.Counts.Precision() < targetPrecision {
			continue
		}
		if !found || r.Counts.Recall() > best.Counts.Recall() {
			best = r
			found = true
		}
	}
	return best, found
}

// AprioriResult is one grid point of the association-rule search (§5.2).
type AprioriResult struct {
	MinSupport         float64
	MinConfidence      float64
	ValidationFraction float64
	NumRules           int
	Counts             eval.Counts
}

// GridSearchApriori sweeps min-support, min-confidence and the size of the
// rule-validation slice, scoring each combination on the validation year.
// Like GridSearchTheta it runs the grid points on a bounded worker pool
// and shares the precomputed ground-truth window rows across points.
func GridSearchApriori(hs *changecube.HistorySet, splits Splits,
	supports, confidences, valFractions []float64,
	base assocrules.Config, windowSize int) ([]AprioriResult, error) {
	if len(supports) == 0 || len(confidences) == 0 || len(valFractions) == 0 {
		return nil, fmt.Errorf("core: empty apriori grid")
	}
	span := obs.StartSpan("grid/apriori")
	defer span.End()
	type gridPoint struct{ sup, conf, vf float64 }
	var points []gridPoint
	for _, sup := range supports {
		for _, conf := range confidences {
			for _, vf := range valFractions {
				points = append(points, gridPoint{sup: sup, conf: conf, vf: vf})
			}
		}
	}
	rows := predict.PrecomputeRows(hs, splits.Validation, []int{windowSize})
	// The transaction grouping depends only on the span and the period, so
	// one Prepare feeds every grid point.
	pre, err := assocrules.Prepare(hs, splits.Train, base.PeriodDays)
	if err != nil {
		return nil, fmt.Errorf("core: apriori grid: %w", err)
	}
	results := make([]AprioriResult, len(points))
	err = runGrid(len(points), func(i int) error {
		pt := points[i]
		cfg := base
		cfg.MinSupport = pt.sup
		cfg.MinConfidence = pt.conf
		cfg.ValidationFraction = pt.vf
		p, err := assocrules.TrainPrepared(pre, cfg)
		if err != nil {
			return fmt.Errorf("core: apriori grid (%v,%v,%v): %w", pt.sup, pt.conf, pt.vf, err)
		}
		report, err := eval.Evaluate(hs, splits.Validation, []predict.Predictor{p},
			eval.Options{Sizes: []int{windowSize}, Workers: 1, Rows: rows})
		if err != nil {
			return err
		}
		results[i] = AprioriResult{
			MinSupport:         pt.sup,
			MinConfidence:      pt.conf,
			ValidationFraction: pt.vf,
			NumRules:           p.NumRules(),
			Counts:             report.BySize[p.Name()][windowSize],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// BestApriori returns the grid point with the highest recall among those
// meeting the target precision.
func BestApriori(results []AprioriResult, targetPrecision float64) (AprioriResult, bool) {
	best := AprioriResult{}
	found := false
	for _, r := range results {
		if r.Counts.Precision() < targetPrecision {
			continue
		}
		if !found || r.Counts.Recall() > best.Counts.Recall() {
			best = r
			found = true
		}
	}
	return best, found
}
