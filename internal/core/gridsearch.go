package core

import (
	"fmt"

	"github.com/wikistale/wikistale/internal/assocrules"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/predict"
)

// ThetaResult is one grid point of the correlation-threshold search
// (§5.2): the predictor is trained on the training split and scored on the
// validation split.
type ThetaResult struct {
	Theta    float64
	NumRules int
	Counts   eval.Counts
}

// GridSearchTheta sweeps the correlation error threshold θ, evaluating
// each candidate on the validation year at the given window size (the
// paper tunes on daily windows). The base config supplies the remaining
// correlation settings.
func GridSearchTheta(hs *changecube.HistorySet, splits Splits, thetas []float64,
	base correlation.Config, windowSize int) ([]ThetaResult, error) {
	if len(thetas) == 0 {
		return nil, fmt.Errorf("core: empty theta grid")
	}
	results := make([]ThetaResult, 0, len(thetas))
	for _, theta := range thetas {
		cfg := base
		cfg.Theta = theta
		p, err := correlation.Train(hs, splits.Train, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: theta %v: %w", theta, err)
		}
		report, err := eval.Evaluate(hs, splits.Validation, []predict.Predictor{p},
			eval.Options{Sizes: []int{windowSize}})
		if err != nil {
			return nil, fmt.Errorf("core: theta %v: %w", theta, err)
		}
		results = append(results, ThetaResult{
			Theta:    theta,
			NumRules: p.NumRules(),
			Counts:   report.BySize[p.Name()][windowSize],
		})
	}
	return results, nil
}

// BestTheta returns the grid point with the highest recall among those
// meeting the target precision, mirroring the paper's selection rule. The
// boolean is false when no point qualifies.
func BestTheta(results []ThetaResult, targetPrecision float64) (ThetaResult, bool) {
	best := ThetaResult{}
	found := false
	for _, r := range results {
		if r.Counts.Precision() < targetPrecision {
			continue
		}
		if !found || r.Counts.Recall() > best.Counts.Recall() {
			best = r
			found = true
		}
	}
	return best, found
}

// AprioriResult is one grid point of the association-rule search (§5.2).
type AprioriResult struct {
	MinSupport         float64
	MinConfidence      float64
	ValidationFraction float64
	NumRules           int
	Counts             eval.Counts
}

// GridSearchApriori sweeps min-support, min-confidence and the size of the
// rule-validation slice, scoring each combination on the validation year.
func GridSearchApriori(hs *changecube.HistorySet, splits Splits,
	supports, confidences, valFractions []float64,
	base assocrules.Config, windowSize int) ([]AprioriResult, error) {
	if len(supports) == 0 || len(confidences) == 0 || len(valFractions) == 0 {
		return nil, fmt.Errorf("core: empty apriori grid")
	}
	var results []AprioriResult
	for _, sup := range supports {
		for _, conf := range confidences {
			for _, vf := range valFractions {
				cfg := base
				cfg.MinSupport = sup
				cfg.MinConfidence = conf
				cfg.ValidationFraction = vf
				p, err := assocrules.Train(hs, splits.Train, cfg)
				if err != nil {
					return nil, fmt.Errorf("core: apriori grid (%v,%v,%v): %w", sup, conf, vf, err)
				}
				report, err := eval.Evaluate(hs, splits.Validation, []predict.Predictor{p},
					eval.Options{Sizes: []int{windowSize}})
				if err != nil {
					return nil, err
				}
				results = append(results, AprioriResult{
					MinSupport:         sup,
					MinConfidence:      conf,
					ValidationFraction: vf,
					NumRules:           p.NumRules(),
					Counts:             report.BySize[p.Name()][windowSize],
				})
			}
		}
	}
	return results, nil
}

// BestApriori returns the grid point with the highest recall among those
// meeting the target precision.
func BestApriori(results []AprioriResult, targetPrecision float64) (AprioriResult, bool) {
	best := AprioriResult{}
	found := false
	for _, r := range results {
		if r.Counts.Precision() < targetPrecision {
			continue
		}
		if !found || r.Counts.Recall() > best.Counts.Recall() {
			best = r
			found = true
		}
	}
	return best, found
}
