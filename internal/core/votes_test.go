package core

import (
	"reflect"
	"testing"
)

// TestVotesMatchExplain pins the vote-attribution shortcut quality
// scoring uses: Detector.Votes must return exactly the vote list Explain
// computes — same predictors, same order, same verdicts — without the
// evidence resolution.
func TestVotesMatchExplain(t *testing.T) {
	det, _ := detector(t)
	asOf := det.Histories().Span().End

	for _, window := range []int{7, 30} {
		alerts := det.DetectStale(asOf, window)
		checked := 0
		for _, a := range alerts {
			if checked >= 10 {
				break
			}
			checked++
			got := det.Votes(a.Field, asOf, window)
			want := det.Explain(a.Field, asOf, window).Votes
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("window %d, field %v: Votes %+v != Explain votes %+v", window, a.Field, got, want)
			}
		}
		// An unflagged field agrees too.
		for _, h := range det.Histories().Histories() {
			flagged := false
			for _, a := range alerts {
				if a.Field == h.Field {
					flagged = true
					break
				}
			}
			if flagged {
				continue
			}
			got := det.Votes(h.Field, asOf, window)
			want := det.Explain(h.Field, asOf, window).Votes
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("window %d, unflagged field %v: Votes %+v != Explain votes %+v", window, h.Field, got, want)
			}
			break
		}
	}
	if got := det.Votes(det.Histories().Histories()[0].Field, asOf, 0); got != nil {
		t.Fatalf("window 0: votes %+v, want nil", got)
	}
}
