package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/eval"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	det, _ := detector(t)
	var buf bytes.Buffer
	if err := det.SaveModel(&buf); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	loaded, err := LoadModel(det.Histories(), det.FilterStats(), det.cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if loaded.FieldCorrelations().NumRules() != det.FieldCorrelations().NumRules() {
		t.Fatalf("correlation rules %d != %d",
			loaded.FieldCorrelations().NumRules(), det.FieldCorrelations().NumRules())
	}
	if loaded.AssociationRules().NumRules() != det.AssociationRules().NumRules() {
		t.Fatal("association rules differ")
	}
	if loaded.Seasonal().NumCovered() != det.Seasonal().NumCovered() {
		t.Fatal("seasonal anchors differ")
	}
	if loaded.FamilyCorrelations().NumRules() != det.FamilyCorrelations().NumRules() {
		t.Fatal("family rules differ")
	}
	if loaded.Splits() != det.Splits() {
		t.Fatal("splits differ")
	}
}

// TestLoadedModelPredictsIdentically is the real contract: the loaded
// detector must produce byte-for-byte the same evaluation as the trained
// one.
func TestLoadedModelPredictsIdentically(t *testing.T) {
	det, _ := detector(t)
	var buf bytes.Buffer
	if err := det.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(det.Histories(), det.FilterStats(), det.cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	opts := eval.Options{Sizes: []int{7, 30}}
	want, err := det.EvaluateTest(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.EvaluateTest(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range want.Predictors {
		for _, size := range []int{7, 30} {
			if want.BySize[name][size] != got.BySize[name][size] {
				t.Fatalf("%s at %dd: %+v != %+v", name, size,
					want.BySize[name][size], got.BySize[name][size])
			}
		}
	}
	// DetectStale agrees too.
	asOf := det.Histories().Span().End
	a := det.DetectStale(asOf, 7)
	b := loaded.DetectStale(asOf, 7)
	if len(a) != len(b) {
		t.Fatalf("alerts %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Field != b[i].Field || a[i].Explanation != b[i].Explanation {
			t.Fatalf("alert %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMarshalModelBytesRoundTrip(t *testing.T) {
	det, _ := detector(t)
	data, err := det.MarshalModel()
	if err != nil {
		t.Fatalf("MarshalModel: %v", err)
	}
	loaded, err := LoadModelBytes(det.Histories(), det.FilterStats(), det.cfg, data)
	if err != nil {
		t.Fatalf("LoadModelBytes: %v", err)
	}
	// Marshal is deterministic: the reloaded detector re-marshals to the
	// same bytes — the property the epoch store's bit-identity rests on.
	again, err := loaded.MarshalModel()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-marshaled model differs from original bytes")
	}
	asOf := det.Histories().Span().End
	a, b := det.DetectStale(asOf, 7), loaded.DetectStale(asOf, 7)
	if len(a) != len(b) {
		t.Fatalf("alerts %d != %d", len(a), len(b))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("alerts differ: %+v vs %+v", a, b)
	}
	if _, err := LoadModelBytes(det.Histories(), det.FilterStats(), det.cfg,
		[]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadedModelSupportsIngest(t *testing.T) {
	det, truth := detector(t)
	var buf bytes.Buffer
	if err := det.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(det.Histories(), det.FilterStats(), det.cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cs := truth.CaseStudy
	end := loaded.Histories().Span().End
	batch := []changecube.Change{{
		Time:     (end + 2).Unix(),
		Entity:   cs.Matches.Entity,
		Property: cs.Matches.Property,
		Value:    "999",
		Kind:     changecube.Update,
	}}
	if err := loaded.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range loaded.DetectStale(end+3, 3) {
		if a.Field == cs.TotalGoals {
			found = true
		}
	}
	if !found {
		t.Fatal("ingest into a loaded model did not drive detection")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	det, _ := detector(t)
	if _, err := LoadModel(det.Histories(), det.FilterStats(), det.cfg,
		strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadModel(det.Histories(), det.FilterStats(), det.cfg,
		strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	// A model whose rules reference entities this cube does not have.
	if _, err := LoadModel(det.Histories(), det.FilterStats(), det.cfg, strings.NewReader(
		`{"version":1,"correlation_rules":[{"A":{"Entity":99999999,"Property":0},"B":{"Entity":0,"Property":0},"Distance":0}]}`)); err == nil {
		t.Fatal("model for a different cube accepted")
	}
}
