package core

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
)

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// TestExplainMatchesDetectStale pins the audit-path invariant: Explain's
// verdict, evidence, and summary agree with DetectStale for every flagged
// field, Explain reports not-stale for unflagged fields, and every
// predictor's vote (the four Table-1 predictors plus both ensembles)
// matches a direct Predict call.
func TestExplainMatchesDetectStale(t *testing.T) {
	det, _ := detector(t)
	asOf := det.Histories().Span().End

	totalAlerts := 0
	for _, window := range []int{7, 30, 365} {
		alerts := det.DetectStale(asOf, window)
		totalAlerts += len(alerts)
		flagged := make(map[changecube.FieldKey]bool, len(alerts))
		for _, a := range alerts {
			flagged[a.Field] = true
		}

		for _, a := range alerts {
			ex := det.Explain(a.Field, asOf, window)
			if !ex.Stale {
				t.Fatalf("window %d: DetectStale flagged %v but Explain says not stale", window, a.Field)
			}
			if ex.ChangedInWindow {
				t.Fatalf("window %d: flagged field %v explained as changed in window", window, a.Field)
			}
			if len(ex.Correlations) == 0 && len(ex.Rules) == 0 {
				t.Fatalf("window %d: flagged field %v has an empty explanation", window, a.Field)
			}
			if ex.Summary != a.Explanation {
				t.Fatalf("window %d: field %v summary %q != alert explanation %q",
					window, a.Field, ex.Summary, a.Explanation)
			}
			if got, want := len(ex.Correlations) > 0, containsStr(a.Sources, det.fieldCorr.Name()); got != want {
				t.Fatalf("window %d: field %v correlation evidence=%v but sources=%v",
					window, a.Field, got, a.Sources)
			}
			if got, want := len(ex.Rules) > 0, containsStr(a.Sources, det.assocRules.Name()); got != want {
				t.Fatalf("window %d: field %v rule evidence=%v but sources=%v",
					window, a.Field, got, a.Sources)
			}
			checkVotes(t, det, a.Field, asOf, window, ex)
		}

		// Unflagged fields must explain as not stale: either they changed
		// in the window or no evidence fired.
		checked := 0
		for _, h := range det.Histories().Histories() {
			if flagged[h.Field] {
				continue
			}
			ex := det.Explain(h.Field, asOf, window)
			if ex.Stale {
				t.Fatalf("window %d: Explain says %v is stale but DetectStale did not flag it",
					window, h.Field)
			}
			if !ex.ChangedInWindow && (len(ex.Correlations) > 0 || len(ex.Rules) > 0) {
				t.Fatalf("window %d: unflagged unchanged field %v has fired evidence", window, h.Field)
			}
			if checked++; checked >= 250 {
				break
			}
		}
	}
	if totalAlerts == 0 {
		t.Fatal("no stale alerts across any window; the consistency check never exercised evidence")
	}
}

// checkVotes asserts the Votes slice mirrors Predictors() order and each
// predictor's actual verdict on the same (field, window) context.
func checkVotes(t *testing.T, det *Detector, field changecube.FieldKey, asOf timeline.Day, window int, ex Explanation) {
	t.Helper()
	w := timeline.Window{Span: timeline.NewSpan(asOf-timeline.Day(window), asOf)}
	ctx := predict.NewContext(det.Histories(), field, w)
	preds := det.Predictors()
	if len(ex.Votes) != len(preds) {
		t.Fatalf("field %v: %d votes, want %d", field, len(ex.Votes), len(preds))
	}
	for i, p := range preds {
		if ex.Votes[i].Predictor != p.Name() {
			t.Fatalf("field %v vote %d: predictor %q, want %q", field, i, ex.Votes[i].Predictor, p.Name())
		}
		if ex.Votes[i].Fired != p.Predict(ctx) {
			t.Fatalf("field %v: vote for %q = %v disagrees with Predict", field, p.Name(), ex.Votes[i].Fired)
		}
	}
}
