package core

import (
	"fmt"
	"sort"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Ingest folds a batch of freshly observed raw changes — today's parsed
// revisions — into the detector's observation data without retraining.
// The paper's deployment demands exactly this split: predictions must run
// for all of Wikipedia every day, while model retraining happens on a
// yearly cadence (§5.3.3 recommends retraining at least once per year;
// see Retrain).
//
// The batch passes through the same per-field noise stages as training
// data (bot-revert removal, day dedup, creation/deletion removal); the
// corpus-level five-change rule is an eligibility decision left to
// training. Changes must reference entities and properties registered in
// the detector's cube — register new infoboxes with the cube's AddEntity
// first; template-level rules apply to them immediately.
//
// Bot reverts are only detected within one batch; feed whole days (the
// natural unit after day-dedup) to keep that window intact.
func (d *Detector) Ingest(batch []changecube.Change) error {
	if len(batch) == 0 {
		return nil
	}
	cube := d.histories.Cube()
	byField := make(map[changecube.FieldKey][]changecube.Change)
	for i, ch := range batch {
		if int(ch.Entity) >= cube.NumEntities() || ch.Entity < 0 {
			return fmt.Errorf("core: ingest change %d references unknown entity %d", i, ch.Entity)
		}
		if int(ch.Property) >= cube.Properties.Len() || ch.Property < 0 {
			return fmt.Errorf("core: ingest change %d references unknown property %d", i, ch.Property)
		}
		key := changecube.FieldKey{Entity: ch.Entity, Property: ch.Property}
		byField[key] = append(byField[key], ch)
	}
	dayUpdates := make(map[changecube.FieldKey][]timeline.Day, len(byField))
	for key, chs := range byField {
		sort.SliceStable(chs, func(i, j int) bool { return chs[i].Time < chs[j].Time })
		if days := filter.FieldDays(chs, d.cfg.Filter); len(days) > 0 {
			dayUpdates[key] = days
		}
	}
	if len(dayUpdates) == 0 {
		return nil
	}
	hs, err := d.histories.MergeDays(dayUpdates)
	if err != nil {
		return fmt.Errorf("core: ingest: %w", err)
	}
	d.histories = hs
	return nil
}

// Retrain rebuilds every model from the detector's current (possibly
// ingested-into) histories, recomputing the time-axis splits from the new
// data end. It returns a fresh detector; the receiver stays valid.
func (d *Detector) Retrain() (*Detector, error) {
	return TrainFiltered(d.histories, d.filterStats, d.cfg)
}
