package core

import (
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// freshDetector trains a private detector (the shared one must not be
// mutated by ingestion tests).
func freshDetector(t *testing.T) *Detector {
	t.Helper()
	det, _ := detector(t)
	d2, err := det.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	return d2
}

func TestIngestExtendsObservations(t *testing.T) {
	d := freshDetector(t)
	truth := trained.truth
	cs := truth.CaseStudy
	end := d.Histories().Span().End

	// New match day after the data end: matches is updated, goals is not.
	batch := []changecube.Change{{
		Time:     (end + 3).Unix(),
		Entity:   cs.Matches.Entity,
		Property: cs.Matches.Property,
		Value:    "300",
		Kind:     changecube.Update,
	}}
	if err := d.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	h, ok := d.Histories().Get(cs.Matches)
	if last, _ := h.Last(); !ok || last != end+3 {
		t.Fatalf("ingested day missing: %v", h.Days()[h.Len()-5:])
	}
	// The stale scan at the new horizon must flag total_goals via the
	// template rule, using the just-ingested evidence.
	found := false
	for _, a := range d.DetectStale(end+4, 3) {
		if a.Field == cs.TotalGoals {
			found = true
		}
	}
	if !found {
		t.Fatal("ingested change did not drive a stale alert")
	}
}

func TestIngestNewEntityUsesTemplateRules(t *testing.T) {
	d := freshDetector(t)
	cube := d.Histories().Cube()
	truth := trained.truth
	cs := truth.CaseStudy
	end := d.Histories().Span().End

	// A brand-new season page appears after training: template rules must
	// cover it the moment its first changes are ingested.
	fresh := cube.AddEntityNamed("infobox football league season", "2019-20 Handball-Bundesliga")
	batch := []changecube.Change{
		{Time: (end + 1).Unix(), Entity: fresh, Property: cs.Matches.Property, Value: "9", Kind: changecube.Update},
		{Time: (end + 5).Unix(), Entity: fresh, Property: cs.Matches.Property, Value: "18", Kind: changecube.Update},
	}
	if err := d.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range d.DetectStale(end+6, 3) {
		if a.Field.Entity == fresh && a.Field.Property == cs.TotalGoals.Property {
			found = true
		}
	}
	if !found {
		t.Fatal("template rule did not fire on freshly ingested entity")
	}
}

func TestIngestAppliesNoiseFilter(t *testing.T) {
	d := freshDetector(t)
	truth := trained.truth
	cs := truth.CaseStudy
	end := d.Histories().Span().End
	before, _ := d.Histories().Get(cs.Matches)
	nBefore := before.Len()

	ts := (end + 2).Unix()
	batch := []changecube.Change{
		// An intra-day burst: three edits, one representative day.
		{Time: ts, Entity: cs.Matches.Entity, Property: cs.Matches.Property, Value: "a", Kind: changecube.Update},
		{Time: ts + 60, Entity: cs.Matches.Entity, Property: cs.Matches.Property, Value: "b", Kind: changecube.Update},
		{Time: ts + 120, Entity: cs.Matches.Entity, Property: cs.Matches.Property, Value: "a", Kind: changecube.Update},
		// A deletion: must not become a change day.
		{Time: ts + 86400, Entity: cs.Matches.Entity, Property: cs.Matches.Property, Kind: changecube.Delete},
	}
	if err := d.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	after, _ := d.Histories().Get(cs.Matches)
	if after.Len() != nBefore+1 {
		t.Fatalf("days %d -> %d, want exactly one new day", nBefore, after.Len())
	}
}

func TestIngestRejectsUnknownReferences(t *testing.T) {
	d := freshDetector(t)
	if err := d.Ingest([]changecube.Change{{Entity: 1 << 30, Property: 0, Kind: changecube.Update}}); err == nil {
		t.Fatal("unknown entity accepted")
	}
	if err := d.Ingest([]changecube.Change{{Entity: 0, Property: 1 << 30, Kind: changecube.Update}}); err == nil {
		t.Fatal("unknown property accepted")
	}
}

func TestIngestEmptyBatch(t *testing.T) {
	d := freshDetector(t)
	before := d.Histories()
	if err := d.Ingest(nil); err != nil {
		t.Fatal(err)
	}
	if d.Histories() != before {
		t.Fatal("empty batch replaced the history set")
	}
}

func TestRetrainAdvancesSplits(t *testing.T) {
	d := freshDetector(t)
	truth := trained.truth
	cs := truth.CaseStudy
	end := d.Histories().Span().End

	// Ingest ninety days of fresh weekly changes, then retrain: the test
	// split must now end at the new horizon.
	var batch []changecube.Change
	for day := end + 1; day < end+90; day += 7 {
		batch = append(batch, changecube.Change{
			Time:     day.Unix(),
			Entity:   cs.Matches.Entity,
			Property: cs.Matches.Property,
			Value:    "x",
			Kind:     changecube.Update,
		})
	}
	if err := d.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	d2, err := d.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Splits().Test.End <= d.Splits().Test.End {
		t.Fatalf("retrain did not advance splits: %v vs %v", d2.Splits().Test, d.Splits().Test)
	}
	if d2.AssociationRules().NumRules() == 0 {
		t.Fatal("retrain lost the rules")
	}
}

func TestMergeDaysPreservesInvariants(t *testing.T) {
	d := freshDetector(t)
	hs := d.Histories()
	h := hs.Histories()[0]
	days := h.Days()
	updates := map[changecube.FieldKey][]timeline.Day{
		h.Field: {days[0], days[0] + 1, days[len(days)-1] + 10},
	}
	merged, err := hs.MergeDays(updates)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := merged.Get(h.Field)
	if err := got.Validate(); err != nil {
		t.Fatalf("merged history invalid: %v", err)
	}
	if got.Len() > h.Len()+2 || got.Len() < h.Len()+1 {
		t.Fatalf("merged length %d from %d + 3 updates (1 duplicate)", got.Len(), h.Len())
	}
	// The original set is untouched.
	orig, _ := hs.Get(h.Field)
	if orig.Len() != h.Len() {
		t.Fatal("MergeDays mutated the receiver")
	}
}
