// Package core is the paper's contribution (1): a framework for predicting
// out-of-date data in Wikipedia infoboxes at multiple time granularities.
// It wires the substrate packages together — noise filtering, the two
// change predictors, the baselines and the ensembles — behind a single
// Detector type, and exposes the deployment-facing operation the paper
// motivates: marking fields whose expected change did not happen.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/wikistale/wikistale/internal/assocrules"
	"github.com/wikistale/wikistale/internal/baseline"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/correlation"
	"github.com/wikistale/wikistale/internal/ensemble"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/familycorr"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/obs/trace"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/seasonal"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Config assembles every tunable of the pipeline. DefaultConfig reproduces
// the paper's deployed configuration.
type Config struct {
	Filter      filter.Config
	Correlation correlation.Config
	AssocRules  assocrules.Config
	// Seasonal configures the extension predictor the paper's §6 proposes
	// as future work; it is trained alongside the paper's predictors but
	// participates only in the extended ensemble.
	Seasonal seasonal.Config
	// FamilyCorr configures the second §6 extension: correlations pooled
	// across the yearly pages of annual events.
	FamilyCorr familycorr.Config
	// ThresholdFraction is the threshold baseline's window-share cut
	// (0.85, the paper's precision target).
	ThresholdFraction float64
	// ValidationDays and TestDays are the spans of the last two splits of
	// the time axis (365 days each in the paper).
	ValidationDays int
	TestDays       int
}

// DefaultConfig returns the paper's configuration: θ = 0.1, Apriori with
// 0.25 % support / 60 % confidence / 10 % validation slice / 90 % rule
// precision, the 5-change filter, and year-long validation and test sets.
func DefaultConfig() Config {
	return Config{
		Filter:            filter.Default(),
		Correlation:       correlation.Default(),
		AssocRules:        assocrules.Default(),
		Seasonal:          seasonal.Default(),
		FamilyCorr:        familycorr.Default(),
		ThresholdFraction: 0.85,
		ValidationDays:    365,
		TestDays:          365,
	}
}

// Splits is the time-axis partition of §5.1.
type Splits struct {
	// Train covers everything before the validation set.
	Train timeline.Span
	// Validation is the year before the test set.
	Validation timeline.Span
	// Test is the final year.
	Test timeline.Span
	// TrainVal is Train ∪ Validation, the span final models are trained
	// on.
	TrainVal timeline.Span
}

// ComputeSplits partitions a data span. It fails when the span cannot hold
// the validation and test sets plus at least one year of training data.
func ComputeSplits(span timeline.Span, validationDays, testDays int) (Splits, error) {
	if validationDays <= 0 || testDays <= 0 {
		return Splits{}, fmt.Errorf("core: non-positive split sizes %d/%d", validationDays, testDays)
	}
	minTrain := 365
	if span.Len() < validationDays+testDays+minTrain {
		return Splits{}, fmt.Errorf("core: span %v too short for %d+%d day splits plus training data",
			span, validationDays, testDays)
	}
	testStart := span.End - timeline.Day(testDays)
	valStart := testStart - timeline.Day(validationDays)
	return Splits{
		Train:      timeline.NewSpan(span.Start, valStart),
		Validation: timeline.NewSpan(valStart, testStart),
		Test:       timeline.NewSpan(testStart, span.End),
		TrainVal:   timeline.NewSpan(span.Start, testStart),
	}, nil
}

// Detector is the trained stale-data detection system.
type Detector struct {
	cfg       Config
	histories *changecube.HistorySet
	splits    Splits

	fieldCorr  *correlation.Predictor
	assocRules *assocrules.Predictor
	seasonalP  *seasonal.Predictor
	familyCorr *familycorr.Predictor
	meanBase   baseline.Mean
	threshBase *baseline.Threshold
	andEns     ensemble.And
	orEns      ensemble.Or
	extOrEns   ensemble.Or

	filterStats filter.Stats
	report      TrainReport
	corrInc     correlation.IncrementalStats
	assocInc    assocrules.IncrementalStats
	seasonInc   seasonal.IncrementalStats
	familyInc   familycorr.IncrementalStats
	threshInc   baseline.ThresholdIncrementalStats
}

// StageTiming is one named step of the training pipeline and its
// wall-clock duration.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// TrainReport is the timing breakdown of one Train/TrainFiltered call.
// The same durations are recorded into the default obs registry as the
// wikistale_train_stage_seconds histogram, so a serving process exposes
// them on /metrics; the report is the human-readable view for the CLIs'
// -v/-timing flags.
type TrainReport struct {
	// Filter is the noise-funnel report, including per-stage durations.
	Filter filter.Stats
	// Stages lists the model-training steps in execution order.
	Stages []StageTiming
	// Total is the end-to-end wall-clock time of the call.
	Total time.Duration
}

func (r *TrainReport) add(name string, d time.Duration) {
	r.Stages = append(r.Stages, StageTiming{Name: name, Duration: d})
}

// String renders the report as an aligned two-column table, filter
// stages first.
func (r TrainReport) String() string {
	var b strings.Builder
	b.WriteString("stage timings:\n")
	for _, st := range r.Filter.Stages {
		fmt.Fprintf(&b, "  %-28s %v\n", "filter/"+st.Name, st.Duration.Round(time.Microsecond))
	}
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "  %-28s %v\n", st.Name, st.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "  %-28s %v\n", "total", r.Total.Round(time.Microsecond))
	return b.String()
}

// Train runs the full pipeline on a raw change cube: noise filtering,
// time-axis splitting, and final-model training on train+validation (the
// paper's protocol after hyper-parameters are fixed; use the GridSearch
// functions for the tuning step).
func Train(cube *changecube.Cube, cfg Config) (*Detector, error) {
	return TrainCtx(context.Background(), cube, cfg)
}

// TrainCtx is Train with trace propagation: when ctx carries a trace (a
// live retrain trigger), the filter and per-model stage timers become its
// child spans, so /debug/traces shows where a retrain's time went.
func TrainCtx(ctx context.Context, cube *changecube.Cube, cfg Config) (*Detector, error) {
	fctx, span := obs.StartSpanCtx(ctx, "train/filter")
	hs, stats, err := filter.ApplyCtx(fctx, cube, cfg.Filter)
	if err != nil {
		return nil, fmt.Errorf("core: filtering: %w", err)
	}
	filterDur := span.End()
	d, err := TrainFilteredHintedCtx(ctx, hs, stats, cfg, TrainHints{})
	if err != nil {
		return nil, err
	}
	d.report.Stages = append([]StageTiming{{Name: "train/filter", Duration: filterDur}}, d.report.Stages...)
	d.report.Total += filterDur
	return d, nil
}

// TrainFiltered is Train for data that already passed the filter pipeline.
func TrainFiltered(hs *changecube.HistorySet, stats filter.Stats, cfg Config) (*Detector, error) {
	return TrainFilteredHinted(hs, stats, cfg, TrainHints{})
}

// TrainHints carries optional incremental-retraining context into
// TrainFilteredHinted. The zero value means a plain batch training run.
type TrainHints struct {
	// Incremental opts into rule reuse for every model stage that supports
	// it: correlation (per-page), association rules (per-template),
	// seasonal anchors and the threshold baseline (per-field), and family
	// correlations (per-family). Each stage independently falls back to a
	// full rebuild when its locality assumption breaks (typically a moved
	// span); the wikistale_train_incremental_* metrics are only recorded on
	// this path.
	Incremental bool
	// Prev is the detector from the last successful training over the same
	// configuration; its per-stage models may be reused for pages,
	// templates, fields, and families that are untouched. Nil forces a cold
	// (full) build.
	Prev *Detector
	// DirtyFields lists the fields whose change histories may differ from
	// Prev's training input — typically the live ingester's staged fields
	// since the previous retrain.
	DirtyFields map[changecube.FieldKey]bool
	// ForceFull re-searches every page even when Prev is usable — the
	// periodic escape hatch against bookkeeping drift.
	ForceFull bool
}

// TrainFilteredHinted is TrainFiltered with incremental-retraining hints;
// the result is bit-identical to TrainFiltered on the same inputs, hints
// only shortcut the work (see correlation.TrainIncremental).
func TrainFilteredHinted(hs *changecube.HistorySet, stats filter.Stats, cfg Config, hints TrainHints) (*Detector, error) {
	return TrainFilteredHintedCtx(context.Background(), hs, stats, cfg, hints)
}

// TrainFilteredHintedCtx is TrainFilteredHinted with trace propagation for
// the per-model stage timers.
func TrainFilteredHintedCtx(ctx context.Context, hs *changecube.HistorySet, stats filter.Stats, cfg Config, hints TrainHints) (*Detector, error) {
	if hs.Len() == 0 {
		return nil, fmt.Errorf("core: no fields survive filtering")
	}
	splits, err := ComputeSplits(hs.Span(), cfg.ValidationDays, cfg.TestDays)
	if err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg, histories: hs, splits: splits, filterStats: stats}
	d.report.Filter = stats
	start := time.Now()

	_, span := obs.StartSpanCtx(ctx, "train/correlation")
	if hints.Incremental {
		var prev correlation.Previous
		if hints.Prev != nil {
			prev = correlation.Previous{Predictor: hints.Prev.fieldCorr, Span: hints.Prev.splits.TrainVal}
		}
		d.fieldCorr, d.corrInc, err = correlation.TrainIncremental(
			hs, splits.TrainVal, cfg.Correlation, prev, hints.DirtyFields, hints.ForceFull)
	} else {
		d.fieldCorr, err = correlation.Train(hs, splits.TrainVal, cfg.Correlation)
	}
	if err != nil {
		return nil, fmt.Errorf("core: field correlations: %w", err)
	}
	d.report.add("train/correlation", span.End())

	_, span = obs.StartSpanCtx(ctx, "train/assocrules")
	if hints.Incremental {
		var prev assocrules.Previous
		if hints.Prev != nil {
			prev = assocrules.Previous{Predictor: hints.Prev.assocRules, Span: hints.Prev.splits.TrainVal}
		}
		d.assocRules, d.assocInc, err = assocrules.TrainIncremental(
			hs, splits.TrainVal, cfg.AssocRules, prev, hints.DirtyFields, hints.ForceFull)
	} else {
		d.assocRules, err = assocrules.Train(hs, splits.TrainVal, cfg.AssocRules)
	}
	if err != nil {
		return nil, fmt.Errorf("core: association rules: %w", err)
	}
	d.report.add("train/assocrules", span.End())

	_, span = obs.StartSpanCtx(ctx, "train/seasonal")
	if hints.Incremental {
		var prev seasonal.Previous
		if hints.Prev != nil {
			prev = seasonal.Previous{Predictor: hints.Prev.seasonalP, Span: hints.Prev.splits.TrainVal}
		}
		d.seasonalP, d.seasonInc, err = seasonal.TrainIncremental(
			hs, splits.TrainVal, cfg.Seasonal, prev, hints.DirtyFields, hints.ForceFull)
	} else {
		d.seasonalP, err = seasonal.Train(hs, splits.TrainVal, cfg.Seasonal)
	}
	if err != nil {
		return nil, fmt.Errorf("core: seasonal: %w", err)
	}
	d.report.add("train/seasonal", span.End())

	_, span = obs.StartSpanCtx(ctx, "train/familycorr")
	if hints.Incremental {
		var prev familycorr.Previous
		if hints.Prev != nil {
			prev = familycorr.Previous{
				Predictor: hints.Prev.familyCorr,
				Span:      hints.Prev.splits.TrainVal,
				Entities:  hints.Prev.histories.Cube().NumEntities(),
			}
		}
		d.familyCorr, d.familyInc, err = familycorr.TrainIncremental(
			hs, splits.TrainVal, cfg.FamilyCorr, prev, hints.DirtyFields, hints.ForceFull)
	} else {
		d.familyCorr, err = familycorr.Train(hs, splits.TrainVal, cfg.FamilyCorr)
	}
	if err != nil {
		return nil, fmt.Errorf("core: family correlations: %w", err)
	}
	d.report.add("train/familycorr", span.End())

	_, span = obs.StartSpanCtx(ctx, "train/threshold")
	if hints.Incremental {
		var prev baseline.ThresholdPrevious
		if hints.Prev != nil {
			prev = baseline.ThresholdPrevious{Predictor: hints.Prev.threshBase, ValSpan: hints.Prev.splits.Validation}
		}
		d.threshBase, d.threshInc, err = baseline.TrainThresholdIncremental(
			hs, splits.Validation, timeline.StandardSizes, cfg.ThresholdFraction, prev, hints.DirtyFields, hints.ForceFull)
	} else {
		d.threshBase, err = baseline.TrainThreshold(hs, splits.Validation, timeline.StandardSizes, cfg.ThresholdFraction)
	}
	if err != nil {
		return nil, fmt.Errorf("core: threshold baseline: %w", err)
	}
	d.report.add("train/threshold", span.End())

	_, span = obs.StartSpanCtx(ctx, "train/ensembles")
	d.andEns, d.orEns = ensemble.Paper(d.fieldCorr, d.assocRules)
	d.extOrEns = ensemble.Or{
		Members: []predict.Predictor{d.fieldCorr, d.assocRules, d.seasonalP, d.familyCorr},
		Label:   "extended OR-ensemble",
	}
	d.report.add("train/ensembles", span.End())

	d.report.Total = time.Since(start)
	return d, nil
}

// Histories returns the filtered dataset backing the detector.
func (d *Detector) Histories() *changecube.HistorySet { return d.histories }

// Splits returns the time-axis partition.
func (d *Detector) Splits() Splits { return d.splits }

// FilterStats returns the noise-funnel statistics of Train.
func (d *Detector) FilterStats() filter.Stats { return d.filterStats }

// TrainReport returns the stage-timing breakdown of the Train call that
// built this detector. Detectors restored via LoadModel carry an empty
// report apart from the filter stats.
func (d *Detector) TrainReport() TrainReport { return d.report }

// CorrelationRetrain reports what the correlation trainer did for this
// detector — full rebuild or incremental reuse, and the page accounting.
// Only meaningful for detectors built via TrainFilteredHinted with
// Incremental set; otherwise it is the zero value.
func (d *Detector) CorrelationRetrain() correlation.IncrementalStats { return d.corrInc }

// AssocRetrain, SeasonalRetrain, FamilyRetrain, and ThresholdRetrain are
// CorrelationRetrain's counterparts for the other incrementally trained
// stages: what each trainer reused versus rebuilt, and why a full rebuild
// happened when it did. Zero values outside the Incremental path.
func (d *Detector) AssocRetrain() assocrules.IncrementalStats { return d.assocInc }

// SeasonalRetrain reports the seasonal stage's incremental accounting.
func (d *Detector) SeasonalRetrain() seasonal.IncrementalStats { return d.seasonInc }

// FamilyRetrain reports the family-correlation stage's incremental
// accounting.
func (d *Detector) FamilyRetrain() familycorr.IncrementalStats { return d.familyInc }

// ThresholdRetrain reports the threshold baseline's incremental accounting.
func (d *Detector) ThresholdRetrain() baseline.ThresholdIncrementalStats { return d.threshInc }

// FieldCorrelations returns the trained field-correlation predictor.
func (d *Detector) FieldCorrelations() *correlation.Predictor { return d.fieldCorr }

// AssociationRules returns the trained association-rule predictor.
func (d *Detector) AssociationRules() *assocrules.Predictor { return d.assocRules }

// Seasonal returns the §6 extension predictor (yearly recurrence anchors).
func (d *Detector) Seasonal() *seasonal.Predictor { return d.seasonalP }

// FamilyCorrelations returns the §6 extension predictor pooling histories
// across the yearly pages of annual events.
func (d *Detector) FamilyCorrelations() *familycorr.Predictor { return d.familyCorr }

// OrEnsemble returns the paper's best predictor: the disjunction of field
// correlations and association rules.
func (d *Detector) OrEnsemble() predict.Predictor { return d.orEns }

// ExtendedOrEnsemble returns the future-work ensemble: the paper's
// OR-ensemble widened with the seasonal predictor.
func (d *Detector) ExtendedOrEnsemble() predict.Predictor { return d.extOrEns }

// AndEnsemble returns the precision-maximizing conjunction.
func (d *Detector) AndEnsemble() predict.Predictor { return d.andEns }

// Predictors returns all six predictors in the row order of Table 1: mean
// baseline, threshold baseline, field correlations, association rules,
// AND-ensemble, OR-ensemble.
func (d *Detector) Predictors() []predict.Predictor {
	return []predict.Predictor{
		d.meanBase,
		d.threshBase,
		d.fieldCorr,
		d.assocRules,
		d.andEns,
		d.orEns,
	}
}

// EvaluateTest runs the Table-1 evaluation on the held-out test year.
func (d *Detector) EvaluateTest(opts eval.Options) (*eval.Report, error) {
	return eval.Evaluate(d.histories, d.splits.Test, d.Predictors(), opts)
}

// Evaluate runs the evaluation protocol on an arbitrary split.
func (d *Detector) Evaluate(split timeline.Span, predictors []predict.Predictor, opts eval.Options) (*eval.Report, error) {
	return eval.Evaluate(d.histories, split, predictors, opts)
}

// StaleAlert is one deployment finding: a field that should have changed
// within the window but did not — a candidate for the paper's "this value
// might be out of date" marker (Figure 1).
type StaleAlert struct {
	Field changecube.FieldKey
	// Window is the span in which the change was expected.
	Window timeline.Window
	// Sources names the predictors that fired.
	Sources []string
	// Explanation is the human-readable evidence (which related field or
	// rule demanded the change).
	Explanation string
}

// DetectStaleCtx is DetectStale wrapped in a trace child span, so a
// request trace shows the detector scan as one timed node with its window
// and alert count attached. Without a trace in ctx it costs nothing extra.
func (d *Detector) DetectStaleCtx(ctx context.Context, asOf timeline.Day, windowSize int) []StaleAlert {
	_, span := trace.StartChild(ctx, "detect_stale")
	span.SetAttr("asof", asOf.String())
	span.SetAttr("window_days", windowSize)
	alerts := d.DetectStale(asOf, windowSize)
	span.SetAttr("alerts", len(alerts))
	span.End()
	return alerts
}

// DetectStale runs the OR-ensemble over the window [asOf-windowSize, asOf)
// and returns the fields predicted to change that did not — the system's
// production output. Fields that did change are healthy and not reported.
// Beyond the fields with recorded histories, rule consequents that have
// never changed at all are also checked: association rules work for such
// fields too (the paper notes they need no history for the predicted
// field), which is how a freshly created infobox gets coverage from day
// one.
func (d *Detector) DetectStale(asOf timeline.Day, windowSize int) []StaleAlert {
	if windowSize <= 0 {
		return nil
	}
	w := timeline.Window{Span: timeline.NewSpan(asOf-timeline.Day(windowSize), asOf)}
	var alerts []StaleAlert
	scan := func(field changecube.FieldKey) {
		ctx := predict.NewContext(d.histories, field, w)
		var sources []string
		explanation := ""
		if partners := d.fieldCorr.Explain(ctx); len(partners) > 0 {
			sources = append(sources, d.fieldCorr.Name())
			explanation = d.explainCorrelation(partners)
		}
		if antes := d.assocRules.Explain(ctx); len(antes) > 0 {
			sources = append(sources, d.assocRules.Name())
			if explanation != "" {
				explanation += "; "
			}
			explanation += d.explainRule(field, antes)
		}
		if len(sources) == 0 {
			return
		}
		alerts = append(alerts, StaleAlert{
			Field:       field,
			Window:      w,
			Sources:     sources,
			Explanation: explanation,
		})
	}
	for _, h := range d.histories.Histories() {
		if h.ChangedIn(w.Span) {
			continue // the field was updated; nothing is stale
		}
		scan(h.Field)
	}
	// History-less rule consequents on entities we observe.
	for _, field := range d.HistorylessConsequents() {
		scan(field)
	}
	sort.Slice(alerts, func(i, j int) bool {
		a, b := alerts[i].Field, alerts[j].Field
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		return a.Property < b.Property
	})
	return alerts
}

// HistorylessConsequents returns every field an association rule covers on
// an observed entity but for which no filtered history exists — the fields
// only rule coverage can speak for. The list is deduplicated (rules may
// share a consequent) and sorted by (entity, property), so both DetectStale
// and a serving index built from it are deterministic across restarts:
// when two entities on one page can claim the same (page, property) pair,
// the lowest entity consistently wins any first-wins tie-break downstream.
func (d *Detector) HistorylessConsequents() []changecube.FieldKey {
	consequents := make(map[changecube.TemplateID][]changecube.PropertyID)
	for _, r := range d.assocRules.Rules() {
		consequents[r.Template] = append(consequents[r.Template], r.Consequent)
	}
	cube := d.histories.Cube()
	seen := make(map[changecube.FieldKey]bool)
	var fields []changecube.FieldKey
	// Histories() is sorted by (entity, property), so walking it visits
	// entities in ascending order — no map iteration anywhere on this path.
	prev := changecube.EntityID(-1)
	for _, h := range d.histories.Histories() {
		entity := h.Field.Entity
		if entity == prev {
			continue
		}
		prev = entity
		for _, prop := range consequents[cube.Template(entity)] {
			field := changecube.FieldKey{Entity: entity, Property: prop}
			if seen[field] {
				continue // two rules may share a consequent
			}
			seen[field] = true
			if _, known := d.histories.Get(field); known {
				continue // already covered by the recorded histories
			}
			fields = append(fields, field)
		}
	}
	sort.Slice(fields, func(i, j int) bool {
		if fields[i].Entity != fields[j].Entity {
			return fields[i].Entity < fields[j].Entity
		}
		return fields[i].Property < fields[j].Property
	})
	return fields
}

func (d *Detector) explainCorrelation(partners []changecube.FieldKey) string {
	cube := d.histories.Cube()
	name := cube.Properties.Name(int32(partners[0].Property))
	if len(partners) == 1 {
		return fmt.Sprintf("correlated field %q changed", name)
	}
	return fmt.Sprintf("correlated field %q and %d more changed", name, len(partners)-1)
}

func (d *Detector) explainRule(field changecube.FieldKey, antes []changecube.PropertyID) string {
	cube := d.histories.Cube()
	template := cube.Templates.Name(int32(cube.Template(field.Entity)))
	ante := cube.Properties.Name(int32(antes[0]))
	cons := cube.Properties.Name(int32(field.Property))
	return fmt.Sprintf("rule %s -> %s of template %q fired", ante, cons, template)
}
