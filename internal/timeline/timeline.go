// Package timeline provides the calendar primitives used throughout the
// stale-data detection pipeline: days as compact integers, half-open day
// spans, and tumbling prediction windows at the granularities evaluated in
// the paper (1, 7, 30 and 365 days).
package timeline

import (
	"fmt"
	"time"
)

// Day is a calendar day encoded as the number of days since the Unix epoch
// (1970-01-01 UTC). All change timestamps are reduced to Day resolution by
// the filter pipeline, matching the paper's day-level deduplication.
type Day int32

const secondsPerDay = 24 * 60 * 60

// DayOf returns the Day containing t, interpreted in UTC.
func DayOf(t time.Time) Day {
	secs := t.Unix()
	if secs < 0 && secs%secondsPerDay != 0 {
		// Floor division for pre-epoch instants.
		return Day(secs/secondsPerDay - 1)
	}
	return Day(secs / secondsPerDay)
}

// DayOfUnix returns the Day containing the Unix timestamp secs.
func DayOfUnix(secs int64) Day {
	if secs < 0 && secs%secondsPerDay != 0 {
		return Day(secs/secondsPerDay - 1)
	}
	return Day(secs / secondsPerDay)
}

// Date returns the Day for the given UTC calendar date.
func Date(year int, month time.Month, day int) Day {
	return DayOf(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time returns the instant at midnight UTC starting day d.
func (d Day) Time() time.Time {
	return time.Unix(int64(d)*secondsPerDay, 0).UTC()
}

// Unix returns the Unix timestamp of midnight UTC starting day d.
func (d Day) Unix() int64 { return int64(d) * secondsPerDay }

// String formats the day as an ISO date.
func (d Day) String() string { return d.Time().Format("2006-01-02") }

// Span is a half-open day interval [Start, End).
type Span struct {
	Start Day
	End   Day
}

// NewSpan returns the span [start, end). It panics if end < start; an empty
// span (end == start) is allowed.
func NewSpan(start, end Day) Span {
	if end < start {
		panic(fmt.Sprintf("timeline: invalid span [%d, %d)", start, end))
	}
	return Span{Start: start, End: end}
}

// Len returns the number of days in the span.
func (s Span) Len() int { return int(s.End - s.Start) }

// Contains reports whether d lies inside the half-open span.
func (s Span) Contains(d Day) bool { return d >= s.Start && d < s.End }

// Overlaps reports whether the two half-open spans share at least one day.
func (s Span) Overlaps(o Span) bool { return s.Start < o.End && o.Start < s.End }

// Intersect returns the overlap of the two spans; empty spans are returned
// as a zero-length span anchored at the later start.
func (s Span) Intersect(o Span) Span {
	start := s.Start
	if o.Start > start {
		start = o.Start
	}
	end := s.End
	if o.End < end {
		end = o.End
	}
	if end < start {
		end = start
	}
	return Span{Start: start, End: end}
}

// String formats the span as "[start, end)".
func (s Span) String() string {
	return fmt.Sprintf("[%s, %s)", s.Start, s.End)
}

// Window is a tumbling prediction window: a span plus its ordinal position
// in the sequence of windows tiling an evaluation split.
type Window struct {
	Span
	// Index is the zero-based position of the window within its split
	// (e.g. week number for 7-day windows).
	Index int
}

// Size returns the window length in days.
func (w Window) Size() int { return w.Len() }

// StandardSizes are the window sizes (in days) evaluated in the paper:
// daily, weekly, monthly and yearly granularities.
var StandardSizes = []int{1, 7, 30, 365}

// Tumbling tiles span with consecutive windows of the given size, starting
// at span.Start. Windows that would exceed span.End are discarded, exactly
// as the paper discards the final incomplete 7- and 30-day windows of its
// 365-day evaluation sets. size must be positive.
func Tumbling(span Span, size int) []Window {
	if size <= 0 {
		panic(fmt.Sprintf("timeline: invalid window size %d", size))
	}
	n := span.Len() / size
	windows := make([]Window, 0, n)
	for i := 0; i < n; i++ {
		start := span.Start + Day(i*size)
		windows = append(windows, Window{
			Span:  Span{Start: start, End: start + Day(size)},
			Index: i,
		})
	}
	return windows
}

// WindowsPerYear returns how many complete windows of the given size fit in
// a 365-day split — the paper's 365×1d + 52×7d + 12×30d + 1×365d = 430
// predictions per field.
func WindowsPerYear(size int) int { return 365 / size }
