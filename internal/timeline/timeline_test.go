package timeline

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDayOfEpoch(t *testing.T) {
	if d := DayOf(time.Unix(0, 0)); d != 0 {
		t.Fatalf("epoch day = %d, want 0", d)
	}
	if d := DayOf(time.Unix(secondsPerDay-1, 0)); d != 0 {
		t.Fatalf("end of epoch day = %d, want 0", d)
	}
	if d := DayOf(time.Unix(secondsPerDay, 0)); d != 1 {
		t.Fatalf("day after epoch = %d, want 1", d)
	}
}

func TestDayOfPreEpoch(t *testing.T) {
	if d := DayOf(time.Unix(-1, 0)); d != -1 {
		t.Fatalf("one second before epoch: day = %d, want -1", d)
	}
	if d := DayOf(time.Unix(-secondsPerDay, 0)); d != -1 {
		t.Fatalf("exactly one day before epoch: day = %d, want -1", d)
	}
	if d := DayOf(time.Unix(-secondsPerDay-1, 0)); d != -2 {
		t.Fatalf("one day and a second before epoch: day = %d, want -2", d)
	}
}

func TestDateRoundTrip(t *testing.T) {
	cases := []struct {
		y int
		m time.Month
		d int
	}{
		{1970, time.January, 1},
		{2003, time.January, 4},   // dataset start in the paper
		{2004, time.June, 5},      // training-set start
		{2018, time.September, 1}, // test-set start
		{2019, time.September, 2}, // dataset end
		{2000, time.February, 29}, // leap day
	}
	for _, c := range cases {
		day := Date(c.y, c.m, c.d)
		back := day.Time()
		if back.Year() != c.y || back.Month() != c.m || back.Day() != c.d {
			t.Errorf("Date(%d,%v,%d) -> %v, round trip mismatch", c.y, c.m, c.d, back)
		}
	}
}

func TestDayString(t *testing.T) {
	if s := Date(2018, time.September, 1).String(); s != "2018-09-01" {
		t.Fatalf("String() = %q, want 2018-09-01", s)
	}
}

func TestDayOfUnixMatchesDayOf(t *testing.T) {
	f := func(secs int64) bool {
		secs %= 1 << 40 // keep within time.Unix's comfortable range
		return DayOfUnix(secs) == DayOf(time.Unix(secs, 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanBasics(t *testing.T) {
	s := NewSpan(10, 20)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if !s.Contains(10) || s.Contains(20) || !s.Contains(19) || s.Contains(9) {
		t.Fatal("Contains is not half-open [10,20)")
	}
}

func TestNewSpanPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpan(5, 3) did not panic")
		}
	}()
	NewSpan(5, 3)
}

func TestSpanIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Span
	}{
		{NewSpan(0, 10), NewSpan(5, 15), NewSpan(5, 10)},
		{NewSpan(0, 10), NewSpan(10, 20), Span{Start: 10, End: 10}},
		{NewSpan(0, 5), NewSpan(7, 9), Span{Start: 7, End: 7}},
		{NewSpan(3, 8), NewSpan(0, 20), NewSpan(3, 8)},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got.Len() < 0 {
			t.Errorf("negative intersection length for %v ∩ %v", c.a, c.b)
		}
	}
}

func TestSpanOverlapsSymmetric(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := Span{Start: Day(min16(a0, a1)), End: Day(max16(a0, a1))}
		b := Span{Start: Day(min16(b0, b1)), End: Day(max16(b0, b1))}
		return a.Overlaps(b) == b.Overlaps(a) &&
			a.Overlaps(b) == (a.Intersect(b).Len() > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}

func TestTumblingPaperCounts(t *testing.T) {
	// A 365-day evaluation split must yield the paper's window counts:
	// 365 one-day, 52 seven-day, 12 thirty-day and 1 yearly window.
	split := NewSpan(Date(2018, time.September, 1), Date(2018, time.September, 1)+365)
	want := map[int]int{1: 365, 7: 52, 30: 12, 365: 1}
	total := 0
	for _, size := range StandardSizes {
		ws := Tumbling(split, size)
		if len(ws) != want[size] {
			t.Errorf("size %d: got %d windows, want %d", size, len(ws), want[size])
		}
		total += len(ws)
	}
	if total != 430 {
		t.Errorf("total predictions per field = %d, want 430", total)
	}
}

func TestTumblingTilesExactly(t *testing.T) {
	f := func(start int16, lenRaw, sizeRaw uint8) bool {
		length := int(lenRaw)
		size := int(sizeRaw%60) + 1
		span := Span{Start: Day(start), End: Day(int(start) + length)}
		ws := Tumbling(span, size)
		if len(ws) != length/size {
			return false
		}
		for i, w := range ws {
			if w.Index != i || w.Size() != size {
				return false
			}
			if w.Start != span.Start+Day(i*size) {
				return false
			}
			if w.End > span.End {
				return false // window exceeding the split must be discarded
			}
		}
		// Consecutive windows must tile without gaps.
		for i := 1; i < len(ws); i++ {
			if ws[i].Start != ws[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTumblingPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Tumbling with size 0 did not panic")
		}
	}()
	Tumbling(NewSpan(0, 10), 0)
}

func TestWindowsPerYear(t *testing.T) {
	want := map[int]int{1: 365, 7: 52, 30: 12, 365: 1}
	for size, n := range want {
		if got := WindowsPerYear(size); got != n {
			t.Errorf("WindowsPerYear(%d) = %d, want %d", size, got, n)
		}
	}
}
