package filter

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
)

// TestApplyFieldMatchesApply: summing every field's FieldFunnel over a
// random cube must reproduce the batch pipeline's per-stage counts and
// histories exactly — this is the contract live ingestion's incremental
// refiltering is built on.
func TestApplyFieldMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cube := changecube.New()
	props := make([]changecube.PropertyID, 6)
	for i := range props {
		props[i] = changecube.PropertyID(cube.Properties.Intern(string(rune('a' + i))))
	}
	for e := 0; e < 8; e++ {
		ent := cube.AddEntityNamed("tmpl", string(rune('A'+e)))
		for _, p := range props[:1+rng.Intn(len(props))] {
			n := rng.Intn(12)
			for i := 0; i < n; i++ {
				kind := changecube.Update
				switch rng.Intn(10) {
				case 0:
					kind = changecube.Create
				case 1:
					kind = changecube.Delete
				}
				cube.Add(changecube.Change{
					Time:     int64(rng.Intn(400)) * day,
					Entity:   ent,
					Property: p,
					Value:    string(rune('0' + rng.Intn(3))),
					Kind:     kind,
					Bot:      rng.Intn(5) == 0,
				})
			}
		}
	}
	cfg := Config{MinChanges: 3, BotRevertHorizonDays: 2}

	hs, stats, err := Apply(cube, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var raw, afterBots, afterDedup, afterCD, afterMin int
	var histories []changecube.History
	for key, chs := range cube.FieldChanges() {
		f := ApplyField(chs, cfg)
		raw += f.Raw
		afterBots += f.AfterBotReverts
		afterDedup += f.AfterDayDedup
		afterCD += len(f.Days)
		if len(f.Days) >= cfg.MinChanges {
			afterMin += len(f.Days)
			histories = append(histories, changecube.NewHistory(key, f.Days))
		}
	}
	got := [][2]int{{raw, afterBots}, {afterBots, afterDedup}, {afterDedup, afterCD}, {afterCD, afterMin}}
	for i, st := range stats.Stages {
		if got[i][0] != st.In || got[i][1] != st.Out {
			t.Fatalf("stage %q: summed funnels say %d->%d, Apply says %d->%d",
				st.Name, got[i][0], got[i][1], st.In, st.Out)
		}
	}
	perField, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(perField.Histories(), hs.Histories()) {
		t.Fatal("per-field histories differ from Apply's")
	}
}

// TestFieldDaysIsApplyFieldDays: the legacy helper stays a pure view.
func TestFieldDaysIsApplyFieldDays(t *testing.T) {
	cube := fieldCube(upd(0, "a"), upd(day, "b"), upd(3*day, "c"))
	for _, chs := range cube.FieldChanges() {
		cfg := Default()
		if !reflect.DeepEqual(FieldDays(chs, cfg), ApplyField(chs, cfg).Days) {
			t.Fatal("FieldDays diverges from ApplyField().Days")
		}
	}
}
