// Package filter implements the noise-removal pipeline of the paper's §4.
// Four stages are applied to every change history: (1) drop edits that were
// directly reverted by bots, (2) reduce the time dimension to day
// resolution, replacing each field-day's changes by one representative
// change (the mode of the day's values, most recent value on ties),
// (3) drop creations and deletions, and (4) drop fields with fewer than
// five remaining changes. On the paper's corpus the funnel retains 9.2 % of
// the raw 283 M changes; the pipeline reports the same per-stage statistics
// for any input.
package filter

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Config tunes the pipeline. The zero value is not valid; use Default.
type Config struct {
	// MinChanges is the minimum number of day-level changes a field must
	// retain to survive stage 4. The paper uses 5.
	MinChanges int
	// BotRevertHorizonDays is how many days after an edit a bot revert may
	// follow for the pair to be considered a direct revert.
	BotRevertHorizonDays int
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{MinChanges: 5, BotRevertHorizonDays: 2}
}

// StageStats records the change counts entering and leaving one stage.
type StageStats struct {
	Name string
	In   int
	Out  int
	// Duration is the stage's wall-clock time in the Apply call that
	// produced these stats; zero for stats from other sources.
	Duration time.Duration
}

// Removed returns the fraction of incoming changes the stage removed.
func (s StageStats) Removed() float64 {
	if s.In == 0 {
		return 0
	}
	return float64(s.In-s.Out) / float64(s.In)
}

// Stats is the full funnel report.
type Stats struct {
	Stages []StageStats
}

// Survival returns the fraction of raw changes that survived the whole
// pipeline (the paper reports 9.2 %).
func (s Stats) Survival() float64 {
	if len(s.Stages) == 0 || s.Stages[0].In == 0 {
		return 0
	}
	return float64(s.Stages[len(s.Stages)-1].Out) / float64(s.Stages[0].In)
}

// String renders the funnel like the paper's §4 narrative, with the
// per-stage wall-clock time when the stats carry one.
func (s Stats) String() string {
	out := ""
	for _, st := range s.Stages {
		out += fmt.Sprintf("%-18s %9d -> %9d  (-%6.3f%%)", st.Name, st.In, st.Out, 100*st.Removed())
		if st.Duration > 0 {
			out += fmt.Sprintf("  %v", st.Duration.Round(time.Microsecond))
		}
		out += "\n"
	}
	out += fmt.Sprintf("%-18s %6.2f%% of raw changes remain\n", "survival", 100*s.Survival())
	return out
}

// record appends one stage to the funnel and mirrors it into the default
// obs registry: the duration lands in wikistale_train_stage_seconds
// (stage label "filter/<slug>") and the change counts in the
// wikistale_filter_stage_{in,out}_total counters.
func (s *Stats) record(name string, span *obs.Span, in, out int) {
	d := span.End()
	s.Stages = append(s.Stages, StageStats{Name: name, In: in, Out: out, Duration: d})
	labels := obs.Labels{"stage": span.Name()}
	obs.Default.Counter("wikistale_filter_stage_in_total", labels).Add(uint64(in))
	obs.Default.Counter("wikistale_filter_stage_out_total", labels).Add(uint64(out))
}

// FieldFunnel is the per-field view of the §4 funnel: the surviving change
// days of one field plus the change count after each per-field stage. The
// live-ingestion staging cube keeps one of these per touched field and
// re-derives it on append, so the aggregate of all FieldFunnels always
// equals what a batch Apply over the same changes would report.
type FieldFunnel struct {
	// Raw is the number of raw changes that entered the funnel.
	Raw int
	// AfterBotReverts counts changes surviving stage 1.
	AfterBotReverts int
	// AfterDayDedup counts day-representatives surviving stage 2.
	AfterDayDedup int
	// Days are the update days surviving stage 3 (creation/deletion
	// removal), strictly increasing. len(Days) is the stage-3 output; the
	// corpus-level MinChanges gate (stage 4) is applied by the caller.
	Days []timeline.Day
}

// ApplyField runs the per-field stages of the pipeline — bot-revert
// removal, day-level dedup, creation/deletion removal — over one field's
// chronological change list. The corpus-level minimum-change rule (stage 4)
// is deliberately not applied: it is an eligibility decision, not a
// per-batch one, which is what lets live ingestion reuse this entry point
// incrementally. The returned Days slice is freshly allocated.
func ApplyField(chs []changecube.Change, cfg Config) FieldFunnel {
	f := FieldFunnel{Raw: len(chs)}
	kept := dropBotReverts(chs, cfg.BotRevertHorizonDays)
	f.AfterBotReverts = len(kept)
	reps := DayRepresentatives(kept)
	f.AfterDayDedup = len(reps)
	for _, rep := range reps {
		if rep.Kind == changecube.Update {
			f.Days = append(f.Days, rep.Day)
		}
	}
	return f
}

// FieldDays is ApplyField reduced to the surviving change days.
func FieldDays(chs []changecube.Change, cfg Config) []timeline.Day {
	return ApplyField(chs, cfg).Days
}

// Apply runs the pipeline over cube and returns the surviving day-level
// histories plus the funnel statistics.
func Apply(cube *changecube.Cube, cfg Config) (*changecube.HistorySet, Stats, error) {
	return ApplyCtx(context.Background(), cube, cfg)
}

// ApplyCtx is Apply with trace propagation: when ctx carries a trace (a
// retrain trigger, typically), the four stage timers become child spans of
// it in addition to their usual histogram observations.
func ApplyCtx(ctx context.Context, cube *changecube.Cube, cfg Config) (*changecube.HistorySet, Stats, error) {
	if cfg.MinChanges < 1 {
		return nil, Stats{}, fmt.Errorf("filter: MinChanges must be >= 1, got %d", cfg.MinChanges)
	}
	if cfg.BotRevertHorizonDays < 0 {
		return nil, Stats{}, fmt.Errorf("filter: negative BotRevertHorizonDays")
	}
	var stats Stats

	fields := cube.FieldChanges()
	total := cube.NumChanges()

	// Stage 1: bot reverts.
	_, span := obs.StartSpanCtx(ctx, "filter/bot_reverts")
	afterBots := 0
	botFiltered := make(map[changecube.FieldKey][]changecube.Change, len(fields))
	for k, chs := range fields {
		kept := dropBotReverts(chs, cfg.BotRevertHorizonDays)
		botFiltered[k] = kept
		afterBots += len(kept)
	}
	stats.record("bot reverts", span, total, afterBots)

	// Stage 2: day-level dedup via mode.
	_, span = obs.StartSpanCtx(ctx, "filter/day_dedup")
	afterDedup := 0
	dayChanges := make(map[changecube.FieldKey][]DayRepresentative, len(fields))
	for k, chs := range botFiltered {
		dc := DayRepresentatives(chs)
		dayChanges[k] = dc
		afterDedup += len(dc)
	}
	stats.record("day dedup", span, afterBots, afterDedup)

	// Stage 3: drop creations and deletions.
	_, span = obs.StartSpanCtx(ctx, "filter/create_delete")
	afterCD := 0
	updatesOnly := make(map[changecube.FieldKey][]timeline.Day, len(fields))
	for k, dc := range dayChanges {
		var days []timeline.Day
		for _, d := range dc {
			if d.Kind == changecube.Update {
				days = append(days, d.Day)
			}
		}
		if len(days) > 0 {
			updatesOnly[k] = days
			afterCD += len(days)
		}
	}
	stats.record("create/delete", span, afterDedup, afterCD)

	// Stage 4: minimum change count per field.
	_, span = obs.StartSpanCtx(ctx, "filter/min_changes")
	afterMin := 0
	var histories []changecube.History
	for k, days := range updatesOnly {
		if len(days) < cfg.MinChanges {
			continue
		}
		histories = append(histories, changecube.NewHistory(k, days))
		afterMin += len(days)
	}
	stats.record("min changes", span, afterCD, afterMin)

	hs, err := changecube.NewHistorySet(cube, histories)
	if err != nil {
		return nil, stats, fmt.Errorf("filter: %w", err)
	}
	return hs, stats, nil
}

// dropBotReverts removes pairs (edit, bot revert) where a bot change
// restores the value preceding the edit within the horizon. chs must be the
// chronological change list of a single field.
func dropBotReverts(chs []changecube.Change, horizonDays int) []changecube.Change {
	if len(chs) < 3 {
		return chs
	}
	horizon := int64(horizonDays) * 24 * 60 * 60
	drop := make([]bool, len(chs))
	for i := 1; i+1 < len(chs); i++ {
		if drop[i] || drop[i+1] {
			continue
		}
		revert := chs[i+1]
		if !revert.Bot || revert.Kind != changecube.Update || chs[i].Kind != changecube.Update {
			continue
		}
		if revert.Value != chs[i-1].Value {
			continue
		}
		if revert.Time-chs[i].Time > horizon {
			continue
		}
		drop[i] = true
		drop[i+1] = true
	}
	kept := chs[:0:0]
	for i, ch := range chs {
		if !drop[i] {
			kept = append(kept, ch)
		}
	}
	return kept
}

// DayRepresentative is the single change a field-day is reduced to.
type DayRepresentative struct {
	Day   timeline.Day
	Value string
	Kind  changecube.ChangeKind
}

// DayRepresentatives reduces a field's chronological change list to one
// representative change per day: the mode of the day's values, breaking
// ties towards the most recent value. The representative kind is Create if
// the day contains the field's first-ever change and it is a Create,
// Delete if the day's final change is a Delete, and Update otherwise.
func DayRepresentatives(chs []changecube.Change) []DayRepresentative {
	var out []DayRepresentative
	i := 0
	first := true
	for i < len(chs) {
		day := chs[i].Day()
		j := i
		for j < len(chs) && chs[j].Day() == day {
			j++
		}
		group := chs[i:j]
		kind := changecube.Update
		if group[len(group)-1].Kind == changecube.Delete {
			kind = changecube.Delete
		} else if first && group[0].Kind == changecube.Create {
			kind = changecube.Create
		}
		out = append(out, DayRepresentative{Day: day, Value: modeValue(group), Kind: kind})
		first = false
		i = j
	}
	return out
}

// modeValue returns the most frequent value within a day's change group;
// ties go to the value occurring most recently, per the paper.
func modeValue(group []changecube.Change) string {
	if len(group) == 1 {
		return group[0].Value
	}
	counts := make(map[string]int, len(group))
	lastSeen := make(map[string]int, len(group))
	for i, ch := range group {
		counts[ch.Value]++
		lastSeen[ch.Value] = i
	}
	values := make([]string, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Slice(values, func(a, b int) bool {
		if counts[values[a]] != counts[values[b]] {
			return counts[values[a]] > counts[values[b]]
		}
		return lastSeen[values[a]] > lastSeen[values[b]]
	})
	return values[0]
}
