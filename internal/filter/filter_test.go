package filter

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

const day = int64(24 * 60 * 60)

// fieldCube builds a cube with a single entity/property and the given
// changes applied to it.
func fieldCube(chs ...changecube.Change) *changecube.Cube {
	c := changecube.New()
	e := c.AddEntityNamed("infobox test", "Page")
	p := changecube.PropertyID(c.Properties.Intern("prop"))
	for _, ch := range chs {
		ch.Entity = e
		ch.Property = p
		c.Add(ch)
	}
	return c
}

func upd(t int64, v string) changecube.Change {
	return changecube.Change{Time: t, Value: v, Kind: changecube.Update}
}

func TestDropBotReverts(t *testing.T) {
	chs := []changecube.Change{
		upd(0, "good"),
		upd(10, "VANDAL"),
		{Time: 20, Value: "good", Kind: changecube.Update, Bot: true},
		upd(30, "newer"),
	}
	kept := dropBotReverts(chs, 2)
	if len(kept) != 2 || kept[0].Value != "good" || kept[1].Value != "newer" {
		t.Fatalf("kept = %+v", kept)
	}
}

func TestBotRevertOutsideHorizonKept(t *testing.T) {
	chs := []changecube.Change{
		upd(0, "good"),
		upd(10, "VANDAL"),
		{Time: 10 + 3*day, Value: "good", Kind: changecube.Update, Bot: true},
	}
	kept := dropBotReverts(chs, 2)
	if len(kept) != 3 {
		t.Fatalf("late bot revert removed: %+v", kept)
	}
}

func TestBotEditThatIsNotARevertKept(t *testing.T) {
	chs := []changecube.Change{
		upd(0, "a"),
		upd(10, "b"),
		{Time: 20, Value: "c", Kind: changecube.Update, Bot: true},
	}
	if kept := dropBotReverts(chs, 2); len(kept) != 3 {
		t.Fatalf("bot edit with new value removed: %+v", kept)
	}
}

func TestDayRepresentativesMode(t *testing.T) {
	chs := []changecube.Change{
		upd(0, "x"), upd(100, "y"), upd(200, "x"), // day 0: mode x
		upd(day, "a"), upd(day+1, "b"), // day 1: tie, most recent wins -> b
	}
	reps := DayRepresentatives(chs)
	if len(reps) != 2 {
		t.Fatalf("reps = %+v", reps)
	}
	if reps[0].Value != "x" || reps[0].Day != 0 {
		t.Fatalf("day 0 rep = %+v", reps[0])
	}
	if reps[1].Value != "b" || reps[1].Day != 1 {
		t.Fatalf("day 1 rep = %+v (tie must go to most recent)", reps[1])
	}
}

func TestDayRepresentativeKinds(t *testing.T) {
	chs := []changecube.Change{
		{Time: 0, Value: "v", Kind: changecube.Create},
		upd(100, "w"),
		upd(day, "x"),
		{Time: 2 * day, Kind: changecube.Delete},
	}
	reps := DayRepresentatives(chs)
	if len(reps) != 3 {
		t.Fatalf("reps = %+v", reps)
	}
	if reps[0].Kind != changecube.Create {
		t.Fatalf("first day should be Create: %+v", reps[0])
	}
	if reps[1].Kind != changecube.Update {
		t.Fatalf("second day should be Update: %+v", reps[1])
	}
	if reps[2].Kind != changecube.Delete {
		t.Fatalf("third day should be Delete: %+v", reps[2])
	}
}

func TestApplyFullPipeline(t *testing.T) {
	// A field with: a create, 6 real update days, a vandalism/bot-revert
	// pair, an intra-day burst, and a delete.
	var chs []changecube.Change
	chs = append(chs, changecube.Change{Time: 0, Value: "v0", Kind: changecube.Create})
	for i := 1; i <= 6; i++ {
		chs = append(chs, upd(int64(i)*day, "v"+strings.Repeat("i", i)))
	}
	// Same-day burst on day 7: three edits, mode v7.
	chs = append(chs, upd(7*day, "v7"), upd(7*day+100, "typo"), upd(7*day+200, "v7"))
	// Vandalism on day 8 reverted by a bot within the horizon.
	chs = append(chs, upd(8*day, "VANDAL"))
	chs = append(chs, changecube.Change{Time: 8*day + 50, Value: "v7", Kind: changecube.Update, Bot: true})
	chs = append(chs, changecube.Change{Time: 9 * day, Kind: changecube.Delete})

	cube := fieldCube(chs...)
	hs, stats, err := Apply(cube, Default())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if hs.Len() != 1 {
		t.Fatalf("fields = %d, want 1", hs.Len())
	}
	h := hs.Histories()[0]
	// Surviving days: 1..6 (updates) and 7 (burst); create day 0,
	// vandalism day 8 and delete day 9 are gone.
	want := []timeline.Day{1, 2, 3, 4, 5, 6, 7}
	days := h.Days()
	if len(days) != len(want) {
		t.Fatalf("days = %v, want %v", days, want)
	}
	for i := range want {
		if days[i] != want[i] {
			t.Fatalf("days = %v, want %v", days, want)
		}
	}
	if len(stats.Stages) != 4 {
		t.Fatalf("stages = %+v", stats.Stages)
	}
	if stats.Stages[0].In != len(chs) {
		t.Fatalf("stage 1 in = %d, want %d", stats.Stages[0].In, len(chs))
	}
	if got := stats.Stages[len(stats.Stages)-1].Out; got != 7 {
		t.Fatalf("final out = %d, want 7", got)
	}
	if s := stats.Survival(); s <= 0 || s >= 1 {
		t.Fatalf("survival = %v", s)
	}
	if !strings.Contains(stats.String(), "survival") {
		t.Fatal("String() lacks survival line")
	}
}

func TestApplyMinChangesDropsSparseFields(t *testing.T) {
	c := changecube.New()
	e1 := c.AddEntityNamed("t", "p1")
	e2 := c.AddEntityNamed("t", "p2")
	busy := changecube.PropertyID(c.Properties.Intern("busy"))
	static := changecube.PropertyID(c.Properties.Intern("birth_date"))
	for i := 0; i < 6; i++ {
		c.Add(changecube.Change{Time: int64(i) * day, Entity: e1, Property: busy, Value: "v", Kind: changecube.Update})
	}
	for i := 0; i < 2; i++ {
		c.Add(changecube.Change{Time: int64(i) * day, Entity: e2, Property: static, Value: "v", Kind: changecube.Update})
	}
	hs, _, err := Apply(c, Default())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Len() != 1 {
		t.Fatalf("fields = %d, want 1 (static field dropped)", hs.Len())
	}
	if hs.Histories()[0].Field.Entity != e1 {
		t.Fatal("wrong field survived")
	}
}

func TestApplyRejectsBadConfig(t *testing.T) {
	c := changecube.New()
	if _, _, err := Apply(c, Config{MinChanges: 0}); err == nil {
		t.Fatal("MinChanges 0 accepted")
	}
	if _, _, err := Apply(c, Config{MinChanges: 5, BotRevertHorizonDays: -1}); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestApplyEmptyCube(t *testing.T) {
	hs, stats, err := Apply(changecube.New(), Default())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Len() != 0 || stats.Survival() != 0 {
		t.Fatalf("empty cube: len=%d survival=%v", hs.Len(), stats.Survival())
	}
}

// TestApplyIdempotentOnCleanData: data that is already one update per day
// with >= MinChanges changes passes through unchanged.
func TestApplyIdempotentOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := changecube.New()
	e := c.AddEntityNamed("t", "p")
	prop := changecube.PropertyID(c.Properties.Intern("x"))
	days := rng.Perm(50)[:10]
	uniq := map[int]bool{}
	for _, d := range days {
		uniq[d] = true
	}
	n := 0
	for d := range uniq {
		c.Add(changecube.Change{Time: int64(d) * day, Entity: e, Property: prop,
			Value: "v", Kind: changecube.Update})
		n++
	}
	hs, stats, err := Apply(c, Default())
	if err != nil {
		t.Fatal(err)
	}
	if hs.TotalChanges() != n {
		t.Fatalf("clean data altered: %d -> %d", n, hs.TotalChanges())
	}
	for _, st := range stats.Stages {
		if st.In != st.Out {
			t.Fatalf("stage %s removed clean changes: %+v", st.Name, st)
		}
	}
}

func TestModeValueSingleton(t *testing.T) {
	if v := modeValue([]changecube.Change{upd(0, "only")}); v != "only" {
		t.Fatalf("modeValue singleton = %q", v)
	}
}
