package ingest

import (
	"fmt"
	"sync"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/timeline"
)

// entityKey is the stream-side identity of an infobox: page + template +
// ordinal among the page's boxes of that template. It is stable across
// replay order, unlike the dense EntityID the cube assigns on first sight.
type entityKey struct {
	page     changecube.PageID
	template changecube.TemplateID
	ordinal  int
}

// pageTemplate keys the next-free-ordinal table.
type pageTemplate struct {
	page     changecube.PageID
	template changecube.TemplateID
}

// fieldBuf is the per-field staging state: the raw chronological change
// list plus the cached result of the per-field filter stages over it.
// Changes are held as indexes into the staging cube's packed log (4 bytes
// per change instead of a 40-byte struct plus value string), which is only
// sound because the staging cube is never sorted — append-order indexes
// stay stable for its whole life.
type fieldBuf struct {
	raw    []uint32
	funnel filter.FieldFunnel
}

// Staging is the mutable ingestion buffer: a change cube that grows as
// events arrive, with the §4 per-field noise stages (bot-revert removal,
// day dedup, creation/deletion removal) re-applied incrementally to every
// touched field and the corpus-level MinChanges gate re-checked on append.
// Snapshot freezes the current state into an immutable HistorySet over a
// cloned cube, which is what the background retrainer feeds to
// core.TrainFiltered.
//
// All methods are safe for concurrent use; Append and Snapshot serialize
// on one mutex, so appends pause only for the O(changes) cube clone, never
// for a retrain.
type Staging struct {
	mu  sync.Mutex
	cfg filter.Config

	cube    *changecube.Cube
	entIdx  map[entityKey]changecube.EntityID
	ordinal map[pageTemplate]int // next free ordinal per (page, template)
	fields  map[changecube.FieldKey]*fieldBuf

	// scratch is the reusable materialization buffer refilter runs the
	// funnel over — one allocation amortized across every refilter instead
	// of a resident []Change per field.
	scratch []changecube.Change

	// Aggregate funnel counters, maintained by per-field delta so they
	// always match what a batch filter.Apply over the same changes reports.
	raw, afterBots, afterDedup, afterCD, afterMin int
	eligible                                      int // fields clearing MinChanges
	appended                                      uint64

	// dirty accumulates the fields touched by Append since the last
	// successful SnapshotDelta — the input to incremental retraining.
	// Warm-start corpus fields are NOT dirty: the first training over them
	// is a cold build anyway.
	dirty map[changecube.FieldKey]bool

	// cursor is the feed position after the newest applied batch (set by
	// AppendAt); snapCP freezes cursor + entity ordinals at the moment of
	// the last successful snapshot, so the epoch store persists a
	// checkpoint that matches the snapshot cube exactly even while appends
	// keep racing ahead.
	cursor SourcePosition
	snapCP Checkpoint
}

// NewStaging returns an empty staging buffer (a cold start).
func NewStaging(cfg filter.Config) (*Staging, error) {
	if cfg.MinChanges < 1 {
		return nil, fmt.Errorf("ingest: MinChanges must be >= 1, got %d", cfg.MinChanges)
	}
	if cfg.BotRevertHorizonDays < 0 {
		return nil, fmt.Errorf("ingest: negative BotRevertHorizonDays")
	}
	return &Staging{
		cfg:     cfg,
		cube:    changecube.New(),
		entIdx:  make(map[entityKey]changecube.EntityID),
		ordinal: make(map[pageTemplate]int),
		fields:  make(map[changecube.FieldKey]*fieldBuf),
		dirty:   make(map[changecube.FieldKey]bool),
	}, nil
}

// NewStagingFromCube returns a staging buffer warm-started from an
// existing corpus cube: every recorded change is staged as if it had just
// streamed in. The cube is cloned — the caller's copy is never mutated, so
// a detector trained on it can keep serving while the staging copy grows.
func NewStagingFromCube(cube *changecube.Cube, cfg filter.Config) (*Staging, error) {
	return NewStagingFromCubeAt(cube, cfg, nil, SourcePosition{})
}

// NewStagingFromCubeAt is NewStagingFromCube restoring a checkpointed
// state: ordinals, when non-nil, gives each entity's infobox ordinal
// (indexed by EntityID, as Staging.SnapshotCheckpoint captured it) instead
// of assuming first-seen ordinals are sequential, and pos primes the
// source cursor so a snapshot taken before any new batch arrives carries
// the restored checkpoint forward.
func NewStagingFromCubeAt(cube *changecube.Cube, cfg filter.Config, ordinals []int, pos SourcePosition) (*Staging, error) {
	st, err := NewStaging(cfg)
	if err != nil {
		return nil, err
	}
	if ordinals != nil && len(ordinals) != cube.NumEntities() {
		return nil, fmt.Errorf("ingest: %d ordinals for %d entities", len(ordinals), cube.NumEntities())
	}
	st.cube = cube.Clone()
	st.cursor = pos
	for e := 0; e < st.cube.NumEntities(); e++ {
		id := changecube.EntityID(e)
		info := st.cube.Entity(id)
		pt := pageTemplate{info.Page, info.Template}
		ord := st.ordinal[pt]
		if ordinals != nil {
			ord = ordinals[e]
		}
		st.entIdx[entityKey{info.Page, info.Template, ord}] = id
		if ord >= st.ordinal[pt] {
			st.ordinal[pt] = ord + 1
		}
	}
	// Sort once so within-field index order is chronological, then record
	// per-field log indexes in a single pass. This is the staging cube's
	// only sort ever: every index taken below stays valid afterwards.
	st.cube.Sort()
	st.cube.EachChange(func(i int, ch changecube.Change) bool {
		key := changecube.FieldKey{Entity: ch.Entity, Property: ch.Property}
		buf, ok := st.fields[key]
		if !ok {
			buf = &fieldBuf{}
			st.fields[key] = buf
		}
		buf.raw = append(buf.raw, uint32(i))
		return true
	})
	for _, buf := range st.fields {
		st.refilter(buf)
	}
	// The buffer's state corresponds to pos exactly, so that is its
	// snapshot checkpoint until the first real snapshot supersedes it.
	st.snapCP = Checkpoint{Pos: pos, Ordinals: st.ordinalsLocked()}
	return st, nil
}

// Append stages a batch of events: names are interned, unseen infoboxes
// registered, and every touched field's filter funnel recomputed. It
// returns the number of distinct fields the batch touched. An invalid
// event fails the whole batch with nothing staged.
func (st *Staging) Append(events []Event) (touched int, err error) {
	return st.appendAt(events, nil)
}

// AppendAt is Append plus a cursor update: pos is the feed position after
// this batch, recorded under the same mutex as the data so a concurrent
// Snapshot never pairs a cube with a cursor from a different instant —
// the atomicity the no-double-apply guarantee of resume rests on.
func (st *Staging) AppendAt(events []Event, pos SourcePosition) (touched int, err error) {
	return st.appendAt(events, &pos)
}

func (st *Staging) appendAt(events []Event, pos *SourcePosition) (touched int, err error) {
	for i, ev := range events {
		if err := ev.Validate(); err != nil {
			return 0, fmt.Errorf("ingest: event %d: %w", i, err)
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	dirty := make(map[changecube.FieldKey]*fieldBuf)
	for _, ev := range events {
		key := st.stage(ev)
		dirty[key] = st.fields[key]
		st.dirty[key] = true
	}
	for _, buf := range dirty {
		st.refilter(buf)
	}
	st.appended += uint64(len(events))
	if pos != nil {
		st.cursor = *pos
	}
	return len(dirty), nil
}

// stage interns one event into the cube and its field buffer. Caller holds
// the mutex.
func (st *Staging) stage(ev Event) changecube.FieldKey {
	templateID := changecube.TemplateID(st.cube.Templates.Intern(ev.Template))
	pageID := changecube.PageID(st.cube.Pages.Intern(ev.Page))
	propID := changecube.PropertyID(st.cube.Properties.Intern(ev.Property))
	ek := entityKey{pageID, templateID, ev.Infobox}
	entity, ok := st.entIdx[ek]
	if !ok {
		entity = st.cube.AddEntity(templateID, pageID)
		st.entIdx[ek] = entity
		pt := pageTemplate{pageID, templateID}
		if ev.Infobox >= st.ordinal[pt] {
			st.ordinal[pt] = ev.Infobox + 1
		}
	}
	ch := changecube.Change{
		Time:     ev.Time,
		Entity:   entity,
		Property: propID,
		Value:    ev.Value,
		Kind:     ev.Kind,
		Bot:      ev.Bot,
	}
	idx := uint32(st.cube.NumChanges()) // Add appends, so this is its index
	st.cube.Add(ch)
	fk := changecube.FieldKey{Entity: entity, Property: propID}
	buf, ok := st.fields[fk]
	if !ok {
		buf = &fieldBuf{}
		st.fields[fk] = buf
	}
	// Insert preserving chronological order; equal timestamps keep arrival
	// order, matching the cube's canonical stable sort within a field.
	i := len(buf.raw)
	for i > 0 && st.cube.TimeAt(int(buf.raw[i-1])) > ch.Time {
		i--
	}
	buf.raw = append(buf.raw, 0)
	copy(buf.raw[i+1:], buf.raw[i:])
	buf.raw[i] = idx
	return fk
}

// refilter recomputes one field's funnel and folds the delta into the
// aggregate counters. Caller holds the mutex. The funnel's Days slice is
// freshly allocated on every recompute, so slices handed out by earlier
// Snapshots stay valid.
func (st *Staging) refilter(buf *fieldBuf) {
	old := buf.funnel
	oldEligible := len(old.Days) >= st.cfg.MinChanges
	st.scratch = st.scratch[:0]
	for _, idx := range buf.raw {
		st.scratch = append(st.scratch, st.cube.ChangeAt(int(idx)))
	}
	// ApplyField never retains its input (it reslices fresh and allocates
	// Days anew), so the scratch buffer is safe to reuse next call.
	buf.funnel = filter.ApplyField(st.scratch, st.cfg)
	newEligible := len(buf.funnel.Days) >= st.cfg.MinChanges

	st.raw += buf.funnel.Raw - old.Raw
	st.afterBots += buf.funnel.AfterBotReverts - old.AfterBotReverts
	st.afterDedup += buf.funnel.AfterDayDedup - old.AfterDayDedup
	st.afterCD += len(buf.funnel.Days) - len(old.Days)
	if oldEligible {
		st.afterMin -= len(old.Days)
		st.eligible--
	}
	if newEligible {
		st.afterMin += len(buf.funnel.Days)
		st.eligible++
	}
}

// Snapshot freezes the staging state: a deep clone of the cube plus the
// HistorySet of every field currently clearing the MinChanges gate, with
// funnel statistics identical (up to stage durations) to what a batch
// filter.Apply over the same changes would report. The result is immutable
// and safe to train on while appends continue.
func (st *Staging) Snapshot() (*changecube.HistorySet, filter.Stats, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapshotLocked()
}

// SnapshotDelta is Snapshot plus the dirty-field set: the fields touched
// by Append since the last successful SnapshotDelta, handed over
// atomically with the snapshot that reflects them — the contract
// incremental retraining needs. On error the dirty set stays staged for
// the next attempt. Plain Snapshot leaves the dirty set untouched.
func (st *Staging) SnapshotDelta() (*changecube.HistorySet, filter.Stats, map[changecube.FieldKey]bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	hs, stats, err := st.snapshotLocked()
	if err != nil {
		return nil, stats, nil, err
	}
	dirty := st.dirty
	st.dirty = make(map[changecube.FieldKey]bool)
	return hs, stats, dirty, nil
}

// snapshotLocked builds the frozen HistorySet. Caller holds the mutex.
func (st *Staging) snapshotLocked() (*changecube.HistorySet, filter.Stats, error) {
	clone := st.cube.Clone()
	histories := make([]changecube.History, 0, st.eligible)
	for key, buf := range st.fields {
		if len(buf.funnel.Days) >= st.cfg.MinChanges {
			histories = append(histories, changecube.NewHistory(key, buf.funnel.Days))
		}
	}
	stats := filter.Stats{Stages: []filter.StageStats{
		{Name: "bot reverts", In: st.raw, Out: st.afterBots},
		{Name: "day dedup", In: st.afterBots, Out: st.afterDedup},
		{Name: "create/delete", In: st.afterDedup, Out: st.afterCD},
		{Name: "min changes", In: st.afterCD, Out: st.afterMin},
	}}
	if len(histories) == 0 {
		return nil, stats, fmt.Errorf("ingest: no fields clear the %d-change gate yet", st.cfg.MinChanges)
	}
	hs, err := changecube.NewHistorySet(clone, histories)
	if err != nil {
		return nil, stats, fmt.Errorf("ingest: snapshot: %w", err)
	}
	st.snapCP = Checkpoint{Pos: st.cursor, Ordinals: st.ordinalsLocked()}
	return hs, stats, nil
}

// ordinalsLocked reverses entIdx into a per-entity ordinal table. Caller
// holds the mutex.
func (st *Staging) ordinalsLocked() []int {
	ords := make([]int, st.cube.NumEntities())
	for key, id := range st.entIdx {
		ords[id] = key.ordinal
	}
	return ords
}

// SnapshotCheckpoint returns the feed checkpoint of the most recent
// successful Snapshot/SnapshotDelta: the cursor and entity ordinals as of
// the instant the snapshot cube was cloned. The manager reads it after a
// retrain to persist an epoch whose source checkpoint matches the epoch's
// cube exactly.
func (st *Staging) SnapshotCheckpoint() Checkpoint {
	st.mu.Lock()
	defer st.mu.Unlock()
	cp := st.snapCP
	cp.Ordinals = append([]int(nil), cp.Ordinals...)
	return cp
}

// StagingStats is the point-in-time summary surfaced on /v1/ingest/stats.
type StagingStats struct {
	// Events is the total number of events appended.
	Events uint64 `json:"events"`
	// Changes is the number of raw staged changes (warm-start corpus
	// included).
	Changes int `json:"changes"`
	// Fields is the number of distinct fields seen.
	Fields int `json:"fields"`
	// EligibleFields counts fields currently clearing the MinChanges gate.
	EligibleFields int `json:"eligible_fields"`
	// DirtyFields counts fields touched since the last successful
	// SnapshotDelta — the pending input of the next incremental retrain.
	DirtyFields int `json:"dirty_fields"`
	// FilteredChanges is the day-level change count over eligible fields —
	// the training-set size of the next retrain.
	FilteredChanges int `json:"filtered_changes"`
	// SpanStart/SpanEnd delimit the staged data (ISO dates; empty when no
	// changes are staged).
	SpanStart string `json:"span_start,omitempty"`
	SpanEnd   string `json:"span_end,omitempty"`
}

// Dims reports the corpus dimensions — entities and distinct
// properties — in one mutex acquisition. The drift watch reads it
// before and after an append to turn a batch into new-entity /
// new-property deltas.
func (st *Staging) Dims() (entities, properties int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cube.NumEntities(), st.cube.Properties.Len()
}

// DirtyCount reports the number of fields touched since the last
// successful SnapshotDelta (backs the wikistale_staging_dirty_fields
// gauge).
func (st *Staging) DirtyCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.dirty)
}

// Stats returns the current staging summary.
func (st *Staging) Stats() StagingStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := StagingStats{
		Events:          st.appended,
		Changes:         st.cube.NumChanges(),
		Fields:          len(st.fields),
		EligibleFields:  st.eligible,
		FilteredChanges: st.afterMin,
		DirtyFields:     len(st.dirty),
	}
	if span := st.span(); span.Len() > 0 {
		s.SpanStart = span.Start.String()
		s.SpanEnd = span.End.String()
	}
	return s
}

// span is the day span over all filtered days. Caller holds the mutex.
func (st *Staging) span() timeline.Span {
	var first, last timeline.Day
	seen := false
	for _, buf := range st.fields {
		if len(buf.funnel.Days) == 0 {
			continue
		}
		f, l := buf.funnel.Days[0], buf.funnel.Days[len(buf.funnel.Days)-1]
		if !seen || f < first {
			first = f
		}
		if !seen || l > last {
			last = l
		}
		seen = true
	}
	if !seen {
		return timeline.Span{}
	}
	return timeline.Span{Start: first, End: last + 1}
}
