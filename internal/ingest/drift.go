package ingest

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/wikistale/wikistale/internal/obs"
)

// DriftWatch is the feed drift monitor: per-batch counters and EWMAs for
// event-time lag, out-of-order arrivals, new-entity and new-property
// rates, and per-property value novelty and placeholder rates, with
// threshold-crossing drift flags. The detector assumes the feed looks
// like its training corpus; a replayed dump, a vandalism wave of
// placeholder values, or a schema rollout introducing new properties all
// violate that silently — the drift watch makes each visible on
// /metrics and /statusz before model quality decays.
//
// All EWMAs are batch-weighted: one Batch() observation folds the
// batch's rate into the running average with DriftAlpha, so the numbers
// track "the last ~1/alpha batches" regardless of batch size skew. Safe
// for concurrent use, though the manager calls it from its single
// consume goroutine.
type DriftWatch struct {
	mu sync.Mutex

	lagEWMA         float64 // seconds, event-time age of newest event at apply time
	outOfOrderEWMA  float64 // fraction of events arriving with Time < running max
	newEntityEWMA   float64 // new entities per event
	newPropEWMA     float64 // new properties per event
	noveltyEWMA     float64 // fraction of events with a value unseen for their property
	placeholderEWMA float64 // fraction of events carrying a placeholder value

	batches     uint64
	lastTime    int64 // running max event time across batches (out-of-order baseline)
	hasTime     bool
	flags       map[string]bool // drift kind -> currently over threshold
	transitions uint64

	// Bounded per-property distinct-value tracking: values map holds up to
	// maxTrackedProps properties, each remembering up to maxValuesPerProp
	// distinct values. A full value set stops admitting (novelty saturates
	// low, never high), a full property table stops tracking new
	// properties — bounded memory beats exact novelty for a monitor.
	values map[string]map[string]struct{}

	gauges           map[string]*obs.Gauge
	flagGauges       map[string]*obs.Gauge
	transitionsTotal map[string]*obs.Counter
}

// DriftAlpha is the EWMA smoothing factor: each batch contributes ~20%,
// so the averages track roughly the last five batches.
const DriftAlpha = 0.2

// Bounds for the per-property value tracker.
const (
	maxTrackedProps  = 2048
	maxValuesPerProp = 128
)

// driftThresholds maps each drift kind to the EWMA level that raises its
// flag. Deliberately coarse — the flags are "look here", not alerts.
var driftThresholds = map[string]float64{
	"lag":           600, // seconds: feed running >10 min behind event time
	"out_of_order":  0.2,
	"new_entity":    0.5, // half the batch introducing unseen entities
	"new_property":  0.1,
	"value_novelty": 0.9,
	"placeholder":   0.2,
}

// placeholderValues is the lowercase set of values that signal "no real
// data": the Bang staleness pipeline's placeholder awareness, applied to
// the feed. Kept small and unambiguous.
var placeholderValues = map[string]struct{}{
	"":        {},
	"tbd":     {},
	"tba":     {},
	"n/a":     {},
	"na":      {},
	"none":    {},
	"null":    {},
	"unknown": {},
	"pending": {},
	"?":       {},
	"-":       {},
	"--":      {},
}

// isPlaceholder reports whether a value is a known placeholder
// (case-insensitive, surrounding space ignored).
func isPlaceholder(v string) bool {
	if len(v) > 16 {
		return false
	}
	_, ok := placeholderValues[strings.ToLower(strings.TrimSpace(v))]
	return ok
}

// NewDriftWatch registers the drift metrics and returns a watch.
func NewDriftWatch() *DriftWatch {
	reg := obs.Default
	reg.SetHelp("wikistale_ingest_lag_ewma_seconds", "Batch-weighted EWMA of event-time lag at batch apply (seconds).")
	reg.SetHelp("wikistale_ingest_out_of_order_ewma", "EWMA fraction of events arriving with an event time older than the newest already applied.")
	reg.SetHelp("wikistale_ingest_new_entity_ewma", "EWMA rate of previously unseen entities per ingested event.")
	reg.SetHelp("wikistale_ingest_new_property_ewma", "EWMA rate of previously unseen properties per ingested event.")
	reg.SetHelp("wikistale_ingest_value_novelty_ewma", "EWMA fraction of events carrying a value not seen before for their property (bounded tracker).")
	reg.SetHelp("wikistale_ingest_placeholder_ewma", "EWMA fraction of events carrying a placeholder value (tbd, n/a, unknown, ...).")
	reg.SetHelp("wikistale_ingest_drift_flag", "1 when the kind's EWMA is over its drift threshold, else 0.")
	reg.SetHelp("wikistale_ingest_drift_transitions_total", "Times the kind's drift flag flipped on.")
	w := &DriftWatch{
		flags:  make(map[string]bool, len(driftThresholds)),
		values: make(map[string]map[string]struct{}),
		gauges: map[string]*obs.Gauge{
			"lag":           reg.Gauge("wikistale_ingest_lag_ewma_seconds", nil),
			"out_of_order":  reg.Gauge("wikistale_ingest_out_of_order_ewma", nil),
			"new_entity":    reg.Gauge("wikistale_ingest_new_entity_ewma", nil),
			"new_property":  reg.Gauge("wikistale_ingest_new_property_ewma", nil),
			"value_novelty": reg.Gauge("wikistale_ingest_value_novelty_ewma", nil),
			"placeholder":   reg.Gauge("wikistale_ingest_placeholder_ewma", nil),
		},
		flagGauges:       make(map[string]*obs.Gauge, len(driftThresholds)),
		transitionsTotal: make(map[string]*obs.Counter, len(driftThresholds)),
	}
	for kind := range driftThresholds {
		w.flagGauges[kind] = reg.Gauge("wikistale_ingest_drift_flag", obs.Labels{"kind": kind})
		w.transitionsTotal[kind] = reg.Counter("wikistale_ingest_drift_transitions_total", obs.Labels{"kind": kind})
	}
	return w
}

// Batch folds one applied batch into the watch. newEntities/newProps are
// the staging dimension deltas the batch caused; now is the wall clock
// at apply time (injectable for tests).
func (w *DriftWatch) Batch(events []Event, newEntities, newProps int, now time.Time) {
	if len(events) == 0 {
		return
	}
	n := float64(len(events))

	w.mu.Lock()
	defer w.mu.Unlock()

	var newest int64
	outOfOrder := 0
	novel := 0
	placeholders := 0
	for _, ev := range events {
		if ev.Time > newest {
			newest = ev.Time
		}
		if w.hasTime && ev.Time < w.lastTime {
			outOfOrder++
		}
		if isPlaceholder(ev.Value) {
			placeholders++
		}
		if w.noteValueLocked(ev.Property, ev.Value) {
			novel++
		}
	}
	if newest > w.lastTime {
		w.lastTime = newest
	}
	w.hasTime = true

	lag := now.Sub(time.Unix(newest, 0)).Seconds()
	if lag < 0 {
		lag = 0
	}
	w.batches++
	alpha := DriftAlpha
	if w.batches == 1 {
		alpha = 1 // seed the EWMAs with the first batch instead of decaying from zero
	}
	fold := func(ewma *float64, sample float64) {
		*ewma += alpha * (sample - *ewma)
	}
	fold(&w.lagEWMA, lag)
	fold(&w.outOfOrderEWMA, float64(outOfOrder)/n)
	fold(&w.newEntityEWMA, float64(newEntities)/n)
	fold(&w.newPropEWMA, float64(newProps)/n)
	fold(&w.noveltyEWMA, float64(novel)/n)
	fold(&w.placeholderEWMA, float64(placeholders)/n)

	for kind, val := range map[string]float64{
		"lag":           w.lagEWMA,
		"out_of_order":  w.outOfOrderEWMA,
		"new_entity":    w.newEntityEWMA,
		"new_property":  w.newPropEWMA,
		"value_novelty": w.noveltyEWMA,
		"placeholder":   w.placeholderEWMA,
	} {
		w.gauges[kind].Set(val)
		over := val > driftThresholds[kind]
		if over != w.flags[kind] {
			w.flags[kind] = over
			if over {
				w.transitions++
				w.transitionsTotal[kind].Inc()
				w.flagGauges[kind].Set(1)
			} else {
				w.flagGauges[kind].Set(0)
			}
		}
	}
}

// noteValueLocked records a (property, value) sighting and reports
// whether the value is novel for the property. Caller holds the mutex.
func (w *DriftWatch) noteValueLocked(prop, value string) bool {
	vals, ok := w.values[prop]
	if !ok {
		if len(w.values) >= maxTrackedProps {
			return false // untracked property: report not-novel, never not-bounded
		}
		vals = make(map[string]struct{}, 4)
		w.values[prop] = vals
	}
	if _, seen := vals[value]; seen {
		return false
	}
	if len(vals) >= maxValuesPerProp {
		return false // saturated: stop admitting, novelty reads low not high
	}
	vals[value] = struct{}{}
	return true
}

// DriftStats is the point-in-time drift summary carried inside
// Manager.Stats (and therefore /v1/ingest/stats and /statusz).
type DriftStats struct {
	LagEWMASeconds   float64 `json:"lag_ewma_seconds"`
	OutOfOrderEWMA   float64 `json:"out_of_order_ewma"`
	NewEntityEWMA    float64 `json:"new_entity_ewma"`
	NewPropertyEWMA  float64 `json:"new_property_ewma"`
	ValueNoveltyEWMA float64 `json:"value_novelty_ewma"`
	PlaceholderEWMA  float64 `json:"placeholder_ewma"`
	// Flags lists the drift kinds currently over threshold, sorted.
	Flags []string `json:"flags,omitempty"`
	// FlagTransitions counts how often any flag flipped on.
	FlagTransitions uint64 `json:"flag_transitions,omitempty"`
	// TrackedProperties is the bounded value-tracker occupancy.
	TrackedProperties int `json:"tracked_properties"`
}

// Stats returns the current drift summary.
func (w *DriftWatch) Stats() DriftStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := DriftStats{
		LagEWMASeconds:    w.lagEWMA,
		OutOfOrderEWMA:    w.outOfOrderEWMA,
		NewEntityEWMA:     w.newEntityEWMA,
		NewPropertyEWMA:   w.newPropEWMA,
		ValueNoveltyEWMA:  w.noveltyEWMA,
		PlaceholderEWMA:   w.placeholderEWMA,
		FlagTransitions:   w.transitions,
		TrackedProperties: len(w.values),
	}
	for kind, on := range w.flags {
		if on {
			s.Flags = append(s.Flags, kind)
		}
	}
	sort.Strings(s.Flags)
	return s
}
