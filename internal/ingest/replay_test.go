package ingest

import (
	"context"
	"errors"
	"io"
	"testing"

	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/timeline"
)

// TestStreamReplaysWholeCorpus: the replay must deliver every change,
// batched strictly by calendar day, in chronological order.
func TestStreamReplaysWholeCorpus(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(cube)
	total := 0
	lastDay := timeline.Day(-1 << 30)
	for {
		batch, err := s.Next(context.Background())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			t.Fatal("empty batch")
		}
		day := timeline.DayOfUnix(batch[0].Time)
		if day <= lastDay {
			t.Fatalf("batch day %v not after previous %v", day, lastDay)
		}
		for _, ev := range batch {
			if timeline.DayOfUnix(ev.Time) != day {
				t.Fatalf("batch mixes days %v and %v", day, timeline.DayOfUnix(ev.Time))
			}
			if err := ev.Validate(); err != nil {
				t.Fatalf("replayed event invalid: %v", err)
			}
		}
		lastDay = day
		total += len(batch)
	}
	if total != cube.NumChanges() {
		t.Fatalf("replayed %d events, corpus has %d changes", total, cube.NumChanges())
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d after EOF", s.Remaining())
	}
}

// TestCubeEventsOrdinals: entities sharing a (page, template) pair must
// get distinct infobox ordinals so the staging side can tell them apart.
func TestCubeEventsOrdinals(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	type box struct {
		page, template string
		ordinal        int
	}
	seen := make(map[box]bool)
	boxes := 0
	for _, ev := range CubeEvents(cube) {
		b := box{ev.Page, ev.Template, ev.Infobox}
		if !seen[b] {
			seen[b] = true
			boxes++
		}
	}
	if boxes != cube.NumEntities() {
		t.Fatalf("events describe %d distinct infoboxes, cube has %d entities",
			boxes, cube.NumEntities())
	}
}
