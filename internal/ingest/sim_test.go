package ingest

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/cubestore"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/filter"
)

// TestSimSourceStagingMatchesGenerate is the end-to-end bit-identity
// claim behind the scale path: streaming the generator through the live
// staging buffer reconstructs the exact cube batch generation builds —
// same interned IDs, same bytes — without the producer ever holding one.
func TestSimSourceStagingMatchesGenerate(t *testing.T) {
	cfg := dataset.Small()
	cube, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cubestore.EncodeCubeChanges(cube)

	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	src := NewSimSource(cfg)
	defer src.Stop()
	ctx := context.Background()
	for {
		batch, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendAt(batch, src.Position()); err != nil {
			t.Fatal(err)
		}
	}

	hs, _, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got := cubestore.EncodeCubeChanges(hs.Cube())
	if !bytes.Equal(want, got) {
		t.Fatalf("staged corpus differs from batch corpus: %d vs %d encoded bytes", len(got), len(want))
	}
}

// TestSimSourceSeek: a fresh source sought to a mid-stream checkpoint
// resumes with exactly the batches the original source had not yet
// delivered.
func TestSimSourceSeek(t *testing.T) {
	cfg := dataset.Small()
	cfg.NumTemplates = 3
	ctx := context.Background()

	first := NewSimSource(cfg)
	defer first.Stop()
	var before [][]Event
	for i := 0; i < 25; i++ {
		b, err := first.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, b)
	}
	cp := first.Position()
	if cp.Kind != "sim" || cp.Batch != 25 {
		t.Fatalf("position = %+v", cp)
	}
	wantNext, err := first.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewSimSource(cfg)
	defer resumed.Stop()
	if err := resumed.Seek(cp); err != nil {
		t.Fatal(err)
	}
	if got := resumed.Position(); got != cp {
		t.Fatalf("position after seek = %+v, want %+v", got, cp)
	}
	gotNext, err := resumed.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantNext, gotNext) {
		t.Fatal("resumed stream delivers different events than the original continuation")
	}
	if err := resumed.Seek(cp); err == nil {
		t.Fatal("seek accepted after streaming started")
	}
	if err := NewSimSource(cfg).Seek(SourcePosition{Kind: "jsonl"}); err == nil {
		t.Fatal("foreign position kind accepted")
	}
}

// TestSimSourceEOFSticky: the source keeps returning io.EOF after the
// corpus ends, and the corpus it delivered is complete.
func TestSimSourceEOFSticky(t *testing.T) {
	cfg := dataset.Small()
	cfg.NumTemplates = 2
	cfg.StubsPerEntity = 1
	src := NewSimSource(cfg)
	ctx := context.Background()
	total := 0
	for {
		b, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(b)
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("second EOF poll: %v", err)
	}
	want := 0
	if err := dataset.Stream(cfg, func(evs []dataset.Event) error { want += len(evs); return nil }); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("delivered %d events, generator emits %d", total, want)
	}
}

// TestSimSourceInvalidConfigSurfaces: config validation errors arrive
// through Next, not a panic in the producer goroutine.
func TestSimSourceInvalidConfigSurfaces(t *testing.T) {
	cfg := dataset.Small()
	cfg.BurstRate = 2.0
	src := NewSimSource(cfg)
	if _, err := src.Next(context.Background()); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want the validation error", err)
	}
}
