package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/obs/trace"
)

// batchBuckets sizes the batch-size histogram (events per source batch).
var batchBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Config tunes the manager's retrain loop.
type Config struct {
	// Train is the detector configuration every retrain uses.
	Train core.Config
	// RetrainInterval retrains at most this often on wall-clock time while
	// new changes are pending (0 disables the time trigger).
	RetrainInterval time.Duration
	// RetrainChanges triggers a retrain once this many events accumulated
	// since the last one (0 disables the count trigger).
	RetrainChanges int
	// Incremental reuses the previous detector's correlation rules for
	// pages untouched since the last successful retrain (bit-identical to
	// a cold retrain; see correlation.TrainIncremental).
	Incremental bool
	// FullRebuildEvery forces a full page search after this many
	// consecutive incremental retrains — the escape hatch against
	// bookkeeping drift (0 never forces one).
	FullRebuildEvery int
}

// DefaultConfig retrains every 15 seconds or 5000 changes, whichever comes
// first, incrementally with a forced full rebuild every 32 retrains, with
// the paper's training configuration.
func DefaultConfig() Config {
	return Config{
		Train:            core.DefaultConfig(),
		RetrainInterval:  15 * time.Second,
		RetrainChanges:   5000,
		Incremental:      true,
		FullRebuildEvery: 32,
	}
}

// recentRetrainCap bounds the retrain history kept in Stats — enough for
// /statusz to show the last few minutes of a busy loop.
const recentRetrainCap = 16

// RetrainRecord is one background retrain attempt, kept in a bounded
// history for /v1/ingest/stats and /statusz.
type RetrainRecord struct {
	Time    string  `json:"time"`
	Trigger string  `json:"trigger"` // "interval", "count", or "flush"
	Seconds float64 `json:"seconds"`
	// Mode is "incremental" or "full" on success, empty on failure.
	Mode           string `json:"mode,omitempty"`
	PagesReused    int    `json:"pages_reused,omitempty"`
	PagesRetrained int    `json:"pages_retrained,omitempty"`
	Error          string `json:"error,omitempty"`
	// TraceID links the attempt to its trace in /debug/traces while the
	// trace is still buffered.
	TraceID string `json:"trace_id,omitempty"`
}

// Stats is the manager's point-in-time summary, served on
// /v1/ingest/stats.
type Stats struct {
	Staging StagingStats `json:"staging"`
	// Batches is the number of source batches consumed.
	Batches uint64 `json:"batches"`
	// LastBatchEvents is the size of the most recent batch.
	LastBatchEvents int `json:"last_batch_events"`
	// LastEventTime is the timestamp of the newest event seen (RFC 3339).
	LastEventTime string `json:"last_event_time,omitempty"`
	// FeedLagSeconds is the wall-clock age of the newest event — large on
	// historical replays, near zero on a live feed.
	FeedLagSeconds float64 `json:"feed_lag_seconds"`
	// PendingChanges counts events appended since the last retrain began.
	PendingChanges uint64 `json:"pending_changes"`
	// Retrains and RetrainErrors count background training runs.
	Retrains      uint64 `json:"retrains"`
	RetrainErrors uint64 `json:"retrain_errors"`
	// Swaps counts detectors handed to the swap callback.
	Swaps uint64 `json:"swaps"`
	// LastRetrainSeconds is the duration of the last successful retrain.
	LastRetrainSeconds float64 `json:"last_retrain_seconds,omitempty"`
	// RetrainsIncremental and RetrainsFull break successful retrains down
	// by correlation-training mode (only populated when Config.Incremental
	// is set; full counts cold starts and forced rebuilds).
	RetrainsIncremental uint64 `json:"retrains_incremental,omitempty"`
	RetrainsFull        uint64 `json:"retrains_full,omitempty"`
	// LastRetrainPagesReused / LastRetrainPagesRetrained is the page
	// accounting of the most recent successful retrain.
	LastRetrainPagesReused    int `json:"last_retrain_pages_reused,omitempty"`
	LastRetrainPagesRetrained int `json:"last_retrain_pages_retrained,omitempty"`
	// LastError is the most recent retrain failure ("span too short" until
	// a cold start has accumulated enough history).
	LastError string `json:"last_error,omitempty"`
	// SourceDone reports that the feed ended (io.EOF); the serving layer
	// stays up on the final model.
	SourceDone bool `json:"source_done"`
	// Drift is the feed drift watch summary (EWMAs + raised flags).
	Drift DriftStats `json:"drift"`
	// RecentRetrains is the bounded history of retrain attempts, newest
	// first.
	RecentRetrains []RetrainRecord `json:"recent_retrains,omitempty"`
}

// Manager runs the online loop: consume batches from a Source into a
// Staging buffer, retrain in the background when the time or change-count
// trigger fires, and hand every fresh detector to the swap callback.
// Appends never wait for training: retrains run on a snapshot in a
// separate goroutine, one at a time.
type Manager struct {
	src  Source
	pos  Positioned // src, when it can report positions; nil otherwise
	st   *Staging
	cfg  Config
	swap func(*core.Detector)

	// postSwap, when set, runs after every successful swap with the fresh
	// detector and the staging checkpoint matching its training snapshot —
	// the epoch store's persistence hook. It runs on the retrain goroutine
	// (never the consume loop), so a slow disk stalls snapshots, not
	// ingestion.
	postSwap func(ctx context.Context, det *core.Detector, cp Checkpoint)

	// eventObserver, when set, sees every applied batch after it is staged
	// — the quality scorer's live-outcome feed. It runs on the consume
	// goroutine, so it must be fast and must never block on the serving
	// layer.
	eventObserver func(events []Event)

	// drift is the feed drift watch; always non-nil.
	drift *DriftWatch

	pending   atomic.Uint64 // events since the last retrain started
	retrainMu sync.Mutex    // held for the duration of one retrain
	wg        sync.WaitGroup

	// Incremental-retraining state, guarded by retrainMu: the last
	// successfully trained detector (rule-reuse source), the dirty fields
	// consumed from staging but not yet folded into a successful retrain
	// (a failed retrain must not lose them), and the count of incremental
	// retrains since the last full rebuild.
	lastGood   *core.Detector
	dirtyCarry map[changecube.FieldKey]bool
	sinceFull  int

	mu    sync.Mutex
	stats Stats

	logger *slog.Logger

	eventsTotal    *obs.Counter
	batchesTotal   *obs.Counter
	batchSize      *obs.Histogram
	feedLag        *obs.Gauge
	stagedChanges  *obs.Gauge
	dirtyFields    *obs.Gauge
	retrainSeconds *obs.Histogram
	retrainsTotal  *obs.Counter
	retrainErrors  *obs.Counter
}

// NewManager wires a source and staging buffer to a swap callback. The
// callback receives every freshly trained detector; it must be safe to
// call from a background goroutine (staleserve's epoch swap is).
func NewManager(src Source, st *Staging, swap func(*core.Detector), cfg Config) *Manager {
	reg := obs.Default
	reg.SetHelp("wikistale_ingest_events_total", "Change events consumed from the live feed.")
	reg.SetHelp("wikistale_ingest_batches_total", "Source batches consumed from the live feed.")
	reg.SetHelp("wikistale_ingest_batch_events", "Events per consumed source batch.")
	reg.SetHelp("wikistale_ingest_lag_seconds", "Wall-clock age of the newest ingested event (now minus newest applied event time).")
	reg.SetHelp("wikistale_ingest_staged_changes", "Raw changes in the staging cube.")
	reg.SetHelp("wikistale_staging_dirty_fields", "Fields touched since the last successful snapshot — pending input of the next incremental retrain.")
	reg.SetHelp("wikistale_ingest_retrain_seconds", "Background retrain duration (snapshot + train).")
	reg.SetHelp("wikistale_ingest_retrains_total", "Background retrains that produced a detector.")
	reg.SetHelp("wikistale_ingest_retrain_errors_total", "Background retrains that failed.")
	positioned, _ := src.(Positioned)
	return &Manager{
		src:            src,
		pos:            positioned,
		st:             st,
		cfg:            cfg,
		swap:           swap,
		drift:          NewDriftWatch(),
		logger:         slog.Default(),
		eventsTotal:    reg.Counter("wikistale_ingest_events_total", nil),
		batchesTotal:   reg.Counter("wikistale_ingest_batches_total", nil),
		batchSize:      reg.Histogram("wikistale_ingest_batch_events", batchBuckets, nil),
		feedLag:        reg.Gauge("wikistale_ingest_lag_seconds", nil),
		stagedChanges:  reg.Gauge("wikistale_ingest_staged_changes", nil),
		dirtyFields:    reg.Gauge("wikistale_staging_dirty_fields", nil),
		retrainSeconds: reg.Histogram("wikistale_ingest_retrain_seconds", obs.DurationBuckets, nil),
		retrainsTotal:  reg.Counter("wikistale_ingest_retrains_total", nil),
		retrainErrors:  reg.Counter("wikistale_ingest_retrain_errors_total", nil),
	}
}

// SetLogger replaces the structured logger (default: slog.Default() at
// construction).
func (m *Manager) SetLogger(l *slog.Logger) {
	if l != nil {
		m.logger = l
	}
}

// SetPostSwap installs the post-swap hook. Call before Run.
func (m *Manager) SetPostSwap(fn func(ctx context.Context, det *core.Detector, cp Checkpoint)) {
	m.postSwap = fn
}

// SetEventObserver installs the applied-batch observer (the quality
// scorer's live feed). Call before Run; it runs on the consume
// goroutine after each batch is staged.
func (m *Manager) SetEventObserver(fn func(events []Event)) {
	m.eventObserver = fn
}

// Drift returns the feed drift watch (for tests and direct inspection;
// its summary also rides in Stats).
func (m *Manager) Drift() *DriftWatch { return m.drift }

// Stats returns the manager's current summary.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	if n := len(m.stats.RecentRetrains); n > 0 {
		// Copy newest-first so callers never alias the mutable ring.
		s.RecentRetrains = make([]RetrainRecord, n)
		for i, r := range m.stats.RecentRetrains {
			s.RecentRetrains[n-1-i] = r
		}
	}
	s.Staging = m.st.Stats()
	s.PendingChanges = m.pending.Load()
	s.Drift = m.drift.Stats()
	if s.LastEventTime != "" {
		if t, err := time.Parse(time.RFC3339, s.LastEventTime); err == nil {
			s.FeedLagSeconds = time.Since(t).Seconds()
		}
	}
	return s
}

// FeedLag returns the wall-clock age in seconds of the newest event the
// manager has applied — the data-freshness number the serving layer puts
// next to its SLO burn rates (staleserve.SetLagSource). Recomputed from
// the newest event time so it keeps growing while the feed is silent;
// zero before any event has arrived.
func (m *Manager) FeedLag() float64 {
	m.mu.Lock()
	last := m.stats.LastEventTime
	m.mu.Unlock()
	if last == "" {
		return 0
	}
	t, err := time.Parse(time.RFC3339, last)
	if err != nil {
		return 0
	}
	return time.Since(t).Seconds()
}

// Run consumes the feed until it ends (io.EOF, returning nil after one
// final flush retrain) or ctx is cancelled (returning ctx.Err after
// waiting for any in-flight retrain). A time trigger runs alongside so a
// trickling feed still retrains on schedule.
func (m *Manager) Run(ctx context.Context) error {
	defer m.wg.Wait()
	if m.cfg.RetrainInterval > 0 {
		tickCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			ticker := time.NewTicker(m.cfg.RetrainInterval)
			defer ticker.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-ticker.C:
					if m.pending.Load() > 0 {
						m.tryRetrain("interval")
					}
				}
			}
		}()
	}
	for {
		events, err := m.src.Next(ctx)
		if len(events) > 0 {
			if aerr := m.consume(events); aerr != nil {
				return aerr
			}
		}
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			m.mu.Lock()
			m.stats.SourceDone = true
			m.mu.Unlock()
			// Final flush: fold everything still pending into one last
			// detector before reporting the feed done.
			if m.pending.Load() > 0 {
				m.retrain("flush")
			}
			return nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return ctx.Err()
		default:
			return fmt.Errorf("ingest: source: %w", err)
		}
		if n := m.cfg.RetrainChanges; n > 0 && m.pending.Load() >= uint64(n) {
			m.tryRetrain("count")
		}
	}
}

// consume appends one batch and updates metrics and stats. The source
// position after the batch is recorded with it (same staging mutex), so
// any snapshot pairs the data with the cursor that produced it.
func (m *Manager) consume(events []Event) error {
	entBefore, propBefore := m.st.Dims()
	var touched int
	var err error
	if m.pos != nil {
		touched, err = m.st.AppendAt(events, m.pos.Position())
	} else {
		touched, err = m.st.Append(events)
	}
	if err != nil {
		return err
	}
	entAfter, propAfter := m.st.Dims()
	m.drift.Batch(events, entAfter-entBefore, propAfter-propBefore, time.Now())
	m.pending.Add(uint64(len(events)))
	m.eventsTotal.Add(uint64(len(events)))
	m.batchesTotal.Inc()
	m.batchSize.Observe(float64(len(events)))
	newest := events[0].Time
	for _, ev := range events[1:] {
		if ev.Time > newest {
			newest = ev.Time
		}
	}
	lag := time.Since(time.Unix(newest, 0)).Seconds()
	m.feedLag.Set(lag)
	m.stagedChanges.Set(float64(m.st.Stats().Changes))
	m.dirtyFields.Set(float64(m.st.DirtyCount()))
	m.mu.Lock()
	m.stats.Batches++
	m.stats.LastBatchEvents = len(events)
	m.stats.LastEventTime = time.Unix(newest, 0).UTC().Format(time.RFC3339)
	m.mu.Unlock()
	m.logger.Debug("batch applied",
		"events", len(events), "fields_touched", touched,
		"pending", m.pending.Load(), "lag_seconds", lag)
	if m.eventObserver != nil {
		m.eventObserver(events)
	}
	return nil
}

// tryRetrain starts a background retrain unless one is already running —
// the triggers re-fire, so a skipped attempt is never lost.
func (m *Manager) tryRetrain(trigger string) {
	if !m.retrainMu.TryLock() {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.retrainMu.Unlock()
		m.retrainLocked(trigger)
	}()
}

// retrain runs one synchronous retrain (used for the EOF flush).
func (m *Manager) retrain(trigger string) {
	m.retrainMu.Lock()
	defer m.retrainMu.Unlock()
	m.retrainLocked(trigger)
}

// retrainLocked snapshots, trains, and swaps under a fresh root trace, so
// /debug/traces shows the trigger and the filter/train stage breakdown of
// every retrain. Caller holds retrainMu.
func (m *Manager) retrainLocked(trigger string) {
	m.pending.Store(0)
	ctx, root := trace.StartIn(trace.Default, context.Background(), "retrain")
	root.SetAttr("trigger", trigger)
	start := time.Now()
	det, err := m.train(ctx)
	elapsed := time.Since(start)
	m.dirtyFields.Set(float64(m.st.DirtyCount()))
	rec := RetrainRecord{
		Time:    start.UTC().Format(time.RFC3339),
		Trigger: trigger,
		Seconds: elapsed.Seconds(),
		TraceID: root.TraceID(),
	}
	if err != nil {
		root.SetAttr("error", err.Error())
		root.End()
		rec.Error = err.Error()
		m.retrainErrors.Inc()
		m.mu.Lock()
		m.stats.RetrainErrors++
		m.stats.LastError = err.Error()
		m.pushRetrainLocked(rec)
		m.mu.Unlock()
		m.logger.LogAttrs(ctx, slog.LevelWarn, "retrain failed",
			slog.String("trigger", trigger),
			slog.Duration("elapsed", elapsed),
			slog.String("error", err.Error()))
		return
	}
	rec.Mode = "full"
	if m.cfg.Incremental {
		inc := det.CorrelationRetrain()
		if !inc.Full {
			rec.Mode = "incremental"
		}
		rec.PagesReused = inc.PagesReused
		rec.PagesRetrained = inc.PagesRetrained
	}
	root.SetAttr("mode", rec.Mode)
	root.End()
	m.retrainSeconds.Observe(elapsed.Seconds())
	m.retrainsTotal.Inc()
	m.mu.Lock()
	m.stats.Retrains++
	m.stats.LastRetrainSeconds = elapsed.Seconds()
	m.stats.LastError = ""
	if m.cfg.Incremental {
		if rec.Mode == "full" {
			m.stats.RetrainsFull++
		} else {
			m.stats.RetrainsIncremental++
		}
		m.stats.LastRetrainPagesReused = rec.PagesReused
		m.stats.LastRetrainPagesRetrained = rec.PagesRetrained
	}
	m.pushRetrainLocked(rec)
	m.mu.Unlock()
	m.logger.LogAttrs(ctx, slog.LevelInfo, "retrain done",
		slog.String("trigger", trigger),
		slog.Duration("elapsed", elapsed),
		slog.String("mode", rec.Mode),
		slog.Int("pages_reused", rec.PagesReused),
		slog.Int("pages_retrained", rec.PagesRetrained))
	if m.swap != nil {
		m.swap(det)
		m.mu.Lock()
		m.stats.Swaps++
		m.mu.Unlock()
		m.logger.LogAttrs(ctx, slog.LevelDebug, "detector handed to swap",
			slog.String("trigger", trigger))
	}
	if m.postSwap != nil {
		// SnapshotCheckpoint still reflects this retrain's snapshot:
		// retrainMu serializes retrains, and appends only move the live
		// cursor, not the snapshot capture.
		m.postSwap(ctx, det, m.st.SnapshotCheckpoint())
	}
}

// pushRetrainLocked appends one attempt to the bounded history (oldest
// evicted first). Caller holds m.mu.
func (m *Manager) pushRetrainLocked(r RetrainRecord) {
	rr := m.stats.RecentRetrains
	if len(rr) >= recentRetrainCap {
		copy(rr, rr[1:])
		rr = rr[:len(rr)-1]
	}
	m.stats.RecentRetrains = append(rr, r)
}

// train builds a detector from the current staging snapshot. In
// incremental mode it threads the dirty-field delta and the last good
// detector into the trainer; dirty fields consumed from staging are
// carried across failed attempts so no delta is ever lost. Caller holds
// retrainMu.
func (m *Manager) train(ctx context.Context) (*core.Detector, error) {
	ctx, span := obs.StartSpanCtx(ctx, "ingest/retrain")
	defer span.End()
	if !m.cfg.Incremental {
		hs, stats, err := m.st.Snapshot()
		if err != nil {
			return nil, err
		}
		return core.TrainFilteredHintedCtx(ctx, hs, stats, m.cfg.Train, core.TrainHints{})
	}
	hs, stats, dirty, err := m.st.SnapshotDelta()
	if err != nil {
		return nil, err
	}
	if m.dirtyCarry == nil {
		m.dirtyCarry = make(map[changecube.FieldKey]bool, len(dirty))
	}
	for f := range dirty {
		m.dirtyCarry[f] = true
	}
	forceFull := m.cfg.FullRebuildEvery > 0 && m.sinceFull >= m.cfg.FullRebuildEvery
	det, err := core.TrainFilteredHintedCtx(ctx, hs, stats, m.cfg.Train, core.TrainHints{
		Incremental: true,
		Prev:        m.lastGood,
		DirtyFields: m.dirtyCarry,
		ForceFull:   forceFull,
	})
	if err != nil {
		return nil, err
	}
	m.lastGood = det
	m.dirtyCarry = nil
	if det.CorrelationRetrain().Full {
		m.sinceFull = 0
	} else {
		m.sinceFull++
	}
	return det, nil
}
