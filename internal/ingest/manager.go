package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/obs"
)

// batchBuckets sizes the batch-size histogram (events per source batch).
var batchBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Config tunes the manager's retrain loop.
type Config struct {
	// Train is the detector configuration every retrain uses.
	Train core.Config
	// RetrainInterval retrains at most this often on wall-clock time while
	// new changes are pending (0 disables the time trigger).
	RetrainInterval time.Duration
	// RetrainChanges triggers a retrain once this many events accumulated
	// since the last one (0 disables the count trigger).
	RetrainChanges int
	// Incremental reuses the previous detector's correlation rules for
	// pages untouched since the last successful retrain (bit-identical to
	// a cold retrain; see correlation.TrainIncremental).
	Incremental bool
	// FullRebuildEvery forces a full page search after this many
	// consecutive incremental retrains — the escape hatch against
	// bookkeeping drift (0 never forces one).
	FullRebuildEvery int
}

// DefaultConfig retrains every 15 seconds or 5000 changes, whichever comes
// first, incrementally with a forced full rebuild every 32 retrains, with
// the paper's training configuration.
func DefaultConfig() Config {
	return Config{
		Train:            core.DefaultConfig(),
		RetrainInterval:  15 * time.Second,
		RetrainChanges:   5000,
		Incremental:      true,
		FullRebuildEvery: 32,
	}
}

// Stats is the manager's point-in-time summary, served on
// /v1/ingest/stats.
type Stats struct {
	Staging StagingStats `json:"staging"`
	// Batches is the number of source batches consumed.
	Batches uint64 `json:"batches"`
	// LastBatchEvents is the size of the most recent batch.
	LastBatchEvents int `json:"last_batch_events"`
	// LastEventTime is the timestamp of the newest event seen (RFC 3339).
	LastEventTime string `json:"last_event_time,omitempty"`
	// FeedLagSeconds is the wall-clock age of the newest event — large on
	// historical replays, near zero on a live feed.
	FeedLagSeconds float64 `json:"feed_lag_seconds"`
	// PendingChanges counts events appended since the last retrain began.
	PendingChanges uint64 `json:"pending_changes"`
	// Retrains and RetrainErrors count background training runs.
	Retrains      uint64 `json:"retrains"`
	RetrainErrors uint64 `json:"retrain_errors"`
	// Swaps counts detectors handed to the swap callback.
	Swaps uint64 `json:"swaps"`
	// LastRetrainSeconds is the duration of the last successful retrain.
	LastRetrainSeconds float64 `json:"last_retrain_seconds,omitempty"`
	// RetrainsIncremental and RetrainsFull break successful retrains down
	// by correlation-training mode (only populated when Config.Incremental
	// is set; full counts cold starts and forced rebuilds).
	RetrainsIncremental uint64 `json:"retrains_incremental,omitempty"`
	RetrainsFull        uint64 `json:"retrains_full,omitempty"`
	// LastRetrainPagesReused / LastRetrainPagesRetrained is the page
	// accounting of the most recent successful retrain.
	LastRetrainPagesReused    int `json:"last_retrain_pages_reused,omitempty"`
	LastRetrainPagesRetrained int `json:"last_retrain_pages_retrained,omitempty"`
	// LastError is the most recent retrain failure ("span too short" until
	// a cold start has accumulated enough history).
	LastError string `json:"last_error,omitempty"`
	// SourceDone reports that the feed ended (io.EOF); the serving layer
	// stays up on the final model.
	SourceDone bool `json:"source_done"`
}

// Manager runs the online loop: consume batches from a Source into a
// Staging buffer, retrain in the background when the time or change-count
// trigger fires, and hand every fresh detector to the swap callback.
// Appends never wait for training: retrains run on a snapshot in a
// separate goroutine, one at a time.
type Manager struct {
	src  Source
	st   *Staging
	cfg  Config
	swap func(*core.Detector)

	pending   atomic.Uint64 // events since the last retrain started
	retrainMu sync.Mutex    // held for the duration of one retrain
	wg        sync.WaitGroup

	// Incremental-retraining state, guarded by retrainMu: the last
	// successfully trained detector (rule-reuse source), the dirty fields
	// consumed from staging but not yet folded into a successful retrain
	// (a failed retrain must not lose them), and the count of incremental
	// retrains since the last full rebuild.
	lastGood   *core.Detector
	dirtyCarry map[changecube.FieldKey]bool
	sinceFull  int

	mu    sync.Mutex
	stats Stats

	eventsTotal    *obs.Counter
	batchesTotal   *obs.Counter
	batchSize      *obs.Histogram
	feedLag        *obs.Gauge
	stagedChanges  *obs.Gauge
	retrainSeconds *obs.Histogram
	retrainsTotal  *obs.Counter
	retrainErrors  *obs.Counter
}

// NewManager wires a source and staging buffer to a swap callback. The
// callback receives every freshly trained detector; it must be safe to
// call from a background goroutine (staleserve's epoch swap is).
func NewManager(src Source, st *Staging, swap func(*core.Detector), cfg Config) *Manager {
	reg := obs.Default
	reg.SetHelp("wikistale_ingest_events_total", "Change events consumed from the live feed.")
	reg.SetHelp("wikistale_ingest_batches_total", "Source batches consumed from the live feed.")
	reg.SetHelp("wikistale_ingest_batch_events", "Events per consumed source batch.")
	reg.SetHelp("wikistale_ingest_feed_lag_seconds", "Wall-clock age of the newest ingested event.")
	reg.SetHelp("wikistale_ingest_staged_changes", "Raw changes in the staging cube.")
	reg.SetHelp("wikistale_ingest_retrain_seconds", "Background retrain duration (snapshot + train).")
	reg.SetHelp("wikistale_ingest_retrains_total", "Background retrains that produced a detector.")
	reg.SetHelp("wikistale_ingest_retrain_errors_total", "Background retrains that failed.")
	return &Manager{
		src:            src,
		st:             st,
		cfg:            cfg,
		swap:           swap,
		eventsTotal:    reg.Counter("wikistale_ingest_events_total", nil),
		batchesTotal:   reg.Counter("wikistale_ingest_batches_total", nil),
		batchSize:      reg.Histogram("wikistale_ingest_batch_events", batchBuckets, nil),
		feedLag:        reg.Gauge("wikistale_ingest_feed_lag_seconds", nil),
		stagedChanges:  reg.Gauge("wikistale_ingest_staged_changes", nil),
		retrainSeconds: reg.Histogram("wikistale_ingest_retrain_seconds", obs.DurationBuckets, nil),
		retrainsTotal:  reg.Counter("wikistale_ingest_retrains_total", nil),
		retrainErrors:  reg.Counter("wikistale_ingest_retrain_errors_total", nil),
	}
}

// Stats returns the manager's current summary.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Staging = m.st.Stats()
	s.PendingChanges = m.pending.Load()
	if s.LastEventTime != "" {
		if t, err := time.Parse(time.RFC3339, s.LastEventTime); err == nil {
			s.FeedLagSeconds = time.Since(t).Seconds()
		}
	}
	return s
}

// Run consumes the feed until it ends (io.EOF, returning nil after one
// final flush retrain) or ctx is cancelled (returning ctx.Err after
// waiting for any in-flight retrain). A time trigger runs alongside so a
// trickling feed still retrains on schedule.
func (m *Manager) Run(ctx context.Context) error {
	defer m.wg.Wait()
	if m.cfg.RetrainInterval > 0 {
		tickCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			ticker := time.NewTicker(m.cfg.RetrainInterval)
			defer ticker.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-ticker.C:
					if m.pending.Load() > 0 {
						m.tryRetrain()
					}
				}
			}
		}()
	}
	for {
		events, err := m.src.Next(ctx)
		if len(events) > 0 {
			if aerr := m.consume(events); aerr != nil {
				return aerr
			}
		}
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			m.mu.Lock()
			m.stats.SourceDone = true
			m.mu.Unlock()
			// Final flush: fold everything still pending into one last
			// detector before reporting the feed done.
			if m.pending.Load() > 0 {
				m.retrain()
			}
			return nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return ctx.Err()
		default:
			return fmt.Errorf("ingest: source: %w", err)
		}
		if n := m.cfg.RetrainChanges; n > 0 && m.pending.Load() >= uint64(n) {
			m.tryRetrain()
		}
	}
}

// consume appends one batch and updates metrics and stats.
func (m *Manager) consume(events []Event) error {
	if _, err := m.st.Append(events); err != nil {
		return err
	}
	m.pending.Add(uint64(len(events)))
	m.eventsTotal.Add(uint64(len(events)))
	m.batchesTotal.Inc()
	m.batchSize.Observe(float64(len(events)))
	newest := events[0].Time
	for _, ev := range events[1:] {
		if ev.Time > newest {
			newest = ev.Time
		}
	}
	lag := time.Since(time.Unix(newest, 0)).Seconds()
	m.feedLag.Set(lag)
	m.stagedChanges.Set(float64(m.st.Stats().Changes))
	m.mu.Lock()
	m.stats.Batches++
	m.stats.LastBatchEvents = len(events)
	m.stats.LastEventTime = time.Unix(newest, 0).UTC().Format(time.RFC3339)
	m.mu.Unlock()
	return nil
}

// tryRetrain starts a background retrain unless one is already running —
// the triggers re-fire, so a skipped attempt is never lost.
func (m *Manager) tryRetrain() {
	if !m.retrainMu.TryLock() {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.retrainMu.Unlock()
		m.retrainLocked()
	}()
}

// retrain runs one synchronous retrain (used for the EOF flush).
func (m *Manager) retrain() {
	m.retrainMu.Lock()
	defer m.retrainMu.Unlock()
	m.retrainLocked()
}

// retrainLocked snapshots, trains, and swaps. Caller holds retrainMu.
func (m *Manager) retrainLocked() {
	m.pending.Store(0)
	start := time.Now()
	det, err := m.train()
	elapsed := time.Since(start)
	if err != nil {
		m.retrainErrors.Inc()
		m.mu.Lock()
		m.stats.RetrainErrors++
		m.stats.LastError = err.Error()
		m.mu.Unlock()
		return
	}
	m.retrainSeconds.Observe(elapsed.Seconds())
	m.retrainsTotal.Inc()
	m.mu.Lock()
	m.stats.Retrains++
	m.stats.LastRetrainSeconds = elapsed.Seconds()
	m.stats.LastError = ""
	if m.cfg.Incremental {
		inc := det.CorrelationRetrain()
		if inc.Full {
			m.stats.RetrainsFull++
		} else {
			m.stats.RetrainsIncremental++
		}
		m.stats.LastRetrainPagesReused = inc.PagesReused
		m.stats.LastRetrainPagesRetrained = inc.PagesRetrained
	}
	m.mu.Unlock()
	if m.swap != nil {
		m.swap(det)
		m.mu.Lock()
		m.stats.Swaps++
		m.mu.Unlock()
	}
}

// train builds a detector from the current staging snapshot. In
// incremental mode it threads the dirty-field delta and the last good
// detector into the trainer; dirty fields consumed from staging are
// carried across failed attempts so no delta is ever lost. Caller holds
// retrainMu.
func (m *Manager) train() (*core.Detector, error) {
	span := obs.StartSpan("ingest/retrain")
	defer span.End()
	if !m.cfg.Incremental {
		hs, stats, err := m.st.Snapshot()
		if err != nil {
			return nil, err
		}
		return core.TrainFiltered(hs, stats, m.cfg.Train)
	}
	hs, stats, dirty, err := m.st.SnapshotDelta()
	if err != nil {
		return nil, err
	}
	if m.dirtyCarry == nil {
		m.dirtyCarry = make(map[changecube.FieldKey]bool, len(dirty))
	}
	for f := range dirty {
		m.dirtyCarry[f] = true
	}
	forceFull := m.cfg.FullRebuildEvery > 0 && m.sinceFull >= m.cfg.FullRebuildEvery
	det, err := core.TrainFilteredHinted(hs, stats, m.cfg.Train, core.TrainHints{
		Incremental: true,
		Prev:        m.lastGood,
		DirtyFields: m.dirtyCarry,
		ForceFull:   forceFull,
	})
	if err != nil {
		return nil, err
	}
	m.lastGood = det
	m.dirtyCarry = nil
	if det.CorrelationRetrain().Full {
		m.sinceFull = 0
	} else {
		m.sinceFull++
	}
	return det, nil
}
