package ingest

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/filter"
)

// drain consumes a source to EOF, returning every event.
func drain(t *testing.T, src Source) []Event {
	t.Helper()
	var out []Event
	for {
		batch, err := src.Next(context.Background())
		out = append(out, batch...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestJSONLPositionResume: resuming from the position after any batch must
// deliver exactly the events the original source had left — no event lost,
// none double-delivered.
func TestJSONLPositionResume(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	feed := buf.Bytes()

	src := NewJSONLSource(bytes.NewReader(feed))
	src.SetBatchSize(1)
	if pos := src.Position(); !pos.IsZero() && pos.Offset != 0 {
		t.Fatalf("fresh source at offset %d", pos.Offset)
	}
	delivered := 0
	for {
		batch, err := src.Next(context.Background())
		delivered += len(batch)
		pos := src.Position()
		resumed, rerr := ResumeJSONL(bytes.NewReader(feed), pos)
		if rerr != nil {
			t.Fatalf("resume after %d events (pos %+v): %v", delivered, pos, rerr)
		}
		resumed.SetBatchSize(1)
		rest := drain(t, resumed)
		if want := events[delivered:]; !reflect.DeepEqual(rest, append([]Event(nil), want...)) {
			t.Fatalf("resume after %d events delivered %d remaining, want %d",
				delivered, len(rest), len(want))
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if delivered != len(events) {
		t.Fatalf("original source delivered %d of %d", delivered, len(events))
	}
}

// TestJSONLResumeRejectsRewrittenFeed: a feed whose checkpointed tail line
// changed (rewrite) or vanished (truncation) must fail the resume loudly.
func TestJSONLResumeRejectsRewrittenFeed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	feed := buf.Bytes()
	src := NewJSONLSource(bytes.NewReader(feed))
	src.SetBatchSize(2)
	if _, err := src.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	pos := src.Position()

	// Tail byte flipped: checksum mismatch.
	bad := append([]byte(nil), feed...)
	bad[pos.Offset-2] ^= 0x01
	if _, err := ResumeJSONL(bytes.NewReader(bad), pos); err == nil {
		t.Fatal("rewritten tail accepted")
	}
	// Feed shorter than the checkpoint.
	if _, err := ResumeJSONL(bytes.NewReader(feed[:pos.Offset-1]), pos); err == nil {
		t.Fatal("truncated feed accepted")
	}
	// Wrong position kind.
	if _, err := ResumeJSONL(bytes.NewReader(feed), SourcePosition{Kind: "stream", Batch: 1}); err == nil {
		t.Fatal("stream position accepted by jsonl resume")
	}
	// The untouched feed still resumes.
	if _, err := ResumeJSONL(bytes.NewReader(feed), pos); err != nil {
		t.Fatalf("clean resume failed: %v", err)
	}
}

// TestStreamSeek: the sim replay resumes at a batch index.
func TestStreamSeek(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	all := drain(t, NewStream(cube))

	src := NewStream(cube)
	consumed := 0
	for i := 0; i < 3; i++ {
		batch, err := src.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		consumed += len(batch)
	}
	pos := src.Position()
	if pos.Kind != "stream" || pos.Batch != 3 {
		t.Fatalf("position %+v, want stream batch 3", pos)
	}

	resumed := NewStream(cube)
	if err := resumed.Seek(pos); err != nil {
		t.Fatal(err)
	}
	rest := drain(t, resumed)
	if len(rest)+consumed != len(all) {
		t.Fatalf("resumed stream delivered %d events, want %d", len(rest), len(all)-consumed)
	}
	if !reflect.DeepEqual(rest, all[consumed:]) {
		t.Fatal("resumed stream events differ from the uninterrupted tail")
	}
	if err := resumed.Seek(SourcePosition{Kind: "stream", Batch: 1 << 20}); err == nil {
		t.Fatal("out-of-range seek accepted")
	}
	if err := resumed.Seek(SourcePosition{Kind: "jsonl"}); err == nil {
		t.Fatal("jsonl position accepted by stream seek")
	}
}

// TestStagingCheckpointAtomicity: the checkpoint captured by a snapshot
// must reflect the cursor of the batches in the snapshot, not batches
// appended afterwards.
func TestStagingCheckpointAtomicity(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	src := NewStream(cube)
	ctx := context.Background()
	// Consume until enough history accumulated for a snapshot.
	n := 0
	for {
		events, err := src.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendAt(events, src.Position()); err != nil {
			t.Fatal(err)
		}
		n++
		if _, _, err := st.Snapshot(); err == nil {
			break
		}
		if src.Remaining() == 0 {
			t.Fatal("stream exhausted before any snapshot succeeded")
		}
	}
	want := st.SnapshotCheckpoint()
	if want.Pos.Batch != n {
		t.Fatalf("checkpoint batch %d, want %d", want.Pos.Batch, n)
	}
	// More appends move the live cursor but not the captured checkpoint.
	events, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendAt(events, src.Position()); err != nil {
		t.Fatal(err)
	}
	if got := st.SnapshotCheckpoint(); got.Pos.Batch != n {
		t.Fatalf("checkpoint moved to batch %d without a snapshot", got.Pos.Batch)
	}
	if _, _, err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := st.SnapshotCheckpoint(); got.Pos.Batch != n+1 {
		t.Fatalf("checkpoint batch %d after second snapshot, want %d", got.Pos.Batch, n+1)
	}
}

// TestStagingRestoreOrdinals: restoring with explicit ordinals must map
// follow-up events onto the same entities as the original run, even when
// infobox ordinals did not first appear in increasing order.
func TestStagingRestoreOrdinals(t *testing.T) {
	mk := func(infobox int, time int64, value string) Event {
		return Event{Time: time, Page: "P", Template: "T", Infobox: infobox,
			Property: "prop", Value: value, Kind: changecube.Update}
	}
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Ordinal 1 first, then 0: entity 0 is box 1, entity 1 is box 0.
	if _, err := st.Append([]Event{mk(1, 100, "a"), mk(0, 200, "b")}); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	ords := st.ordinalsLocked()
	snap := st.cube.Clone()
	st.mu.Unlock()
	if !reflect.DeepEqual(ords, []int{1, 0}) {
		t.Fatalf("ordinals %v, want [1 0]", ords)
	}

	next := mk(1, 300, "c") // belongs to entity 0 in the original numbering
	if _, err := st.Append([]Event{next}); err != nil {
		t.Fatal(err)
	}

	restored, err := NewStagingFromCubeAt(snap, filter.Default(), ords, SourcePosition{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Append([]Event{next}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.cube.FieldChanges(), restored.cube.FieldChanges()) {
		t.Fatal("restored staging diverged from the uninterrupted one")
	}
	// The sequential assumption would have crossed the entities.
	wrong, err := NewStagingFromCubeAt(snap, filter.Default(), nil, SourcePosition{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrong.Append([]Event{next}); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(st.cube.FieldChanges(), wrong.cube.FieldChanges()) {
		t.Fatal("sequential-ordinal restore unexpectedly matched; test corpus too weak")
	}
}
