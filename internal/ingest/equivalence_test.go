package ingest

import (
	"context"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/timeline"
)

// TestStreamBatchEquivalence is the subsystem's core guarantee: a corpus
// streamed through the online path — day-batched feed, incremental
// staging filter, snapshot, TrainFiltered — must yield a detector whose
// DetectStale output is bit-identical to batch core.Train over the same
// cube, at every probed horizon.
func TestStreamBatchEquivalence(t *testing.T) {
	cube, truth, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()

	st, err := NewStaging(cfg.Filter)
	if err != nil {
		t.Fatal(err)
	}
	rec := &swapRecorder{}
	m := NewManager(NewStream(cube), st, rec.swap, Config{Train: cfg})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	streamed := rec.last()
	if streamed == nil {
		t.Fatal("stream produced no detector")
	}

	// The batch reference trains over the staging cube itself (identical
	// entity numbering by construction); its change content equals the
	// original corpus, only reassembled from events.
	batch, err := core.Train(streamed.Histories().Cube(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Histories().Len() != batch.Histories().Len() {
		t.Fatalf("field count: streamed %d, batch %d",
			streamed.Histories().Len(), batch.Histories().Len())
	}
	if !reflect.DeepEqual(streamed.Histories().Histories(), batch.Histories().Histories()) {
		t.Fatal("filtered histories differ between stream and batch")
	}

	end := streamed.Histories().Span().End
	probes := []struct {
		asOf   timeline.Day
		window int
	}{
		{end, 7},
		{end, 30},
		{end - 100, 7},
		{truth.CaseStudy.MissedDays[0] + 2, 3},
	}
	for _, p := range probes {
		got := streamed.DetectStale(p.asOf, p.window)
		want := batch.DetectStale(p.asOf, p.window)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("DetectStale(%v, %d): streamed %d alerts, batch %d; outputs differ",
				p.asOf, p.window, len(got), len(want))
		}
	}
}
