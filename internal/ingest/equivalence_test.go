package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/timeline"
)

// TestStreamBatchEquivalence is the subsystem's core guarantee: a corpus
// streamed through the online path — day-batched feed, incremental
// staging filter, snapshot, TrainFiltered — must yield a detector whose
// DetectStale output is bit-identical to batch core.Train over the same
// cube, at every probed horizon. The incremental subtest runs the same
// contract through the rule-reuse retraining path.
func TestStreamBatchEquivalence(t *testing.T) {
	for _, inc := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", inc), func(t *testing.T) {
			cube, truth, err := dataset.Generate(dataset.Small())
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig()

			st, err := NewStaging(cfg.Filter)
			if err != nil {
				t.Fatal(err)
			}
			rec := &swapRecorder{}
			m := NewManager(NewStream(cube), st, rec.swap, Config{Train: cfg, Incremental: inc, FullRebuildEvery: 32})
			if err := m.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			streamed := rec.last()
			if streamed == nil {
				t.Fatal("stream produced no detector")
			}

			// The batch reference trains over the staging cube itself (identical
			// entity numbering by construction); its change content equals the
			// original corpus, only reassembled from events.
			batch, err := core.Train(streamed.Histories().Cube(), cfg)
			if err != nil {
				t.Fatal(err)
			}

			if streamed.Histories().Len() != batch.Histories().Len() {
				t.Fatalf("field count: streamed %d, batch %d",
					streamed.Histories().Len(), batch.Histories().Len())
			}
			if !reflect.DeepEqual(streamed.Histories().Histories(), batch.Histories().Histories()) {
				t.Fatal("filtered histories differ between stream and batch")
			}
			if !reflect.DeepEqual(streamed.FieldCorrelations().Rules(), batch.FieldCorrelations().Rules()) {
				t.Fatal("correlation rules differ between stream and batch")
			}

			end := streamed.Histories().Span().End
			probes := []struct {
				asOf   timeline.Day
				window int
			}{
				{end, 7},
				{end, 30},
				{end - 100, 7},
				{truth.CaseStudy.MissedDays[0] + 2, 3},
			}
			for _, p := range probes {
				got := streamed.DetectStale(p.asOf, p.window)
				want := batch.DetectStale(p.asOf, p.window)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("DetectStale(%v, %d): streamed %d alerts, batch %d; outputs differ",
						p.asOf, p.window, len(got), len(want))
				}
			}

			// Resume contract: interrupt the feed halfway, "restart" from
			// the mid-run snapshot + checkpoint, and replay only the tail.
			// The resumed run must land on the same final state as the
			// uninterrupted one — same change count (nothing lost, nothing
			// double-applied) and bit-identical detection.
			mid, midCP := interruptedRun(t, cube, Config{Train: cfg, Incremental: inc, FullRebuildEvery: 32})
			stR, err := NewStagingFromCubeAt(mid.Histories().Cube(), cfg.Filter, midCP.Ordinals, midCP.Pos)
			if err != nil {
				t.Fatal(err)
			}
			srcR := NewStream(cube)
			if err := srcR.Seek(midCP.Pos); err != nil {
				t.Fatal(err)
			}
			recR := &swapRecorder{}
			mR := NewManager(srcR, stR, recR.swap, Config{Train: cfg, Incremental: inc, FullRebuildEvery: 32})
			if err := mR.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			resumed := recR.last()
			if resumed == nil {
				t.Fatal("resumed run produced no detector")
			}
			if got, want := resumed.Histories().Cube().NumChanges(), streamed.Histories().Cube().NumChanges(); got != want {
				t.Fatalf("resumed run holds %d changes, uninterrupted %d (events lost or double-applied)", got, want)
			}
			if !reflect.DeepEqual(resumed.Histories().Histories(), streamed.Histories().Histories()) {
				t.Fatal("filtered histories differ between resumed and uninterrupted runs")
			}
			for _, p := range probes {
				if !reflect.DeepEqual(resumed.DetectStale(p.asOf, p.window), streamed.DetectStale(p.asOf, p.window)) {
					t.Fatalf("DetectStale(%v, %d) differs between resumed and uninterrupted runs", p.asOf, p.window)
				}
			}
		})
	}
}

// interruptedRun streams half the corpus, retrains, and returns the
// mid-run detector with the checkpoint captured by its training snapshot —
// the state a crash-and-restore hands a fresh process.
func interruptedRun(t *testing.T, cube *changecube.Cube, cfg Config) (*core.Detector, Checkpoint) {
	t.Helper()
	st, err := NewStaging(cfg.Train.Filter)
	if err != nil {
		t.Fatal(err)
	}
	rec := &swapRecorder{}
	m := NewManager(nil, st, rec.swap, cfg)
	src := NewStream(cube)
	half := src.Remaining() / 2
	ctx := context.Background()
	for i := 0; i < half; i++ {
		events, err := src.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendAt(events, src.Position()); err != nil {
			t.Fatal(err)
		}
	}
	m.retrain("count")
	det := rec.last()
	if det == nil {
		t.Fatalf("mid-run retrain at batch %d produced no detector: %s", half, m.Stats().LastError)
	}
	return det, st.SnapshotCheckpoint()
}

// TestIncrementalRetrainEquivalence drives two managers over the identical
// batch sequence with retrains forced at the same points — one cold, one
// incremental — and asserts bit-identical correlation rules and DetectStale
// output after every successful retrain. Early retrains fail on both sides
// ("span too short") until enough history streamed in, which exercises the
// dirty-carry-across-failures path; later ones must reuse pages.
func TestIncrementalRetrainEquivalence(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()

	newSide := func(inc Config) (*Staging, *swapRecorder, *Manager) {
		st, err := NewStaging(cfg.Filter)
		if err != nil {
			t.Fatal(err)
		}
		rec := &swapRecorder{}
		return st, rec, NewManager(nil, st, rec.swap, inc)
	}
	stCold, recCold, mCold := newSide(Config{Train: cfg})
	stInc, recInc, mInc := newSide(Config{Train: cfg, Incremental: true, FullRebuildEvery: 5})

	compare := func(step int) {
		t.Helper()
		if recCold.count() != recInc.count() {
			t.Fatalf("step %d: cold side swapped %d detectors, incremental side %d",
				step, recCold.count(), recInc.count())
		}
		cold, inc := recCold.last(), recInc.last()
		if cold == nil {
			return // neither side has trained successfully yet
		}
		if !reflect.DeepEqual(cold.FieldCorrelations().Rules(), inc.FieldCorrelations().Rules()) {
			t.Fatalf("step %d: correlation rules diverged (incremental stats %+v)",
				step, inc.CorrelationRetrain())
		}
		if !reflect.DeepEqual(cold.AssociationRules().Rules(), inc.AssociationRules().Rules()) {
			t.Fatalf("step %d: association rules diverged (incremental stats %+v)",
				step, inc.AssocRetrain())
		}
		if !reflect.DeepEqual(cold.Seasonal(), inc.Seasonal()) {
			t.Fatalf("step %d: seasonal predictors diverged (incremental stats %+v)",
				step, inc.SeasonalRetrain())
		}
		if !reflect.DeepEqual(cold.FamilyCorrelations().Rules(), inc.FamilyCorrelations().Rules()) {
			t.Fatalf("step %d: family rules diverged (incremental stats %+v)",
				step, inc.FamilyRetrain())
		}
		end := cold.Histories().Span().End
		for _, window := range []int{7, 30} {
			if !reflect.DeepEqual(cold.DetectStale(end, window), inc.DetectStale(end, window)) {
				t.Fatalf("step %d: DetectStale(%v, %d) diverged", step, end, window)
			}
		}
	}

	src := NewStream(cube)
	ctx := context.Background()
	batches, step, reusedRetrains := 0, 0, 0
	for {
		events, srcErr := src.Next(ctx)
		if len(events) > 0 {
			if _, err := stCold.Append(events); err != nil {
				t.Fatal(err)
			}
			if _, err := stInc.Append(events); err != nil {
				t.Fatal(err)
			}
			batches++
			if batches%150 == 0 {
				step++
				mCold.retrain("count")
				mInc.retrain("count")
				compare(step)
				if s := mInc.Stats(); s.LastRetrainPagesReused > 0 {
					reusedRetrains++
				}
			}
		}
		if errors.Is(srcErr, io.EOF) {
			break
		}
		if srcErr != nil {
			t.Fatal(srcErr)
		}
	}
	step++
	mCold.retrain("count")
	mInc.retrain("count")
	compare(step)

	s := mInc.Stats()
	if s.RetrainsIncremental == 0 {
		t.Fatalf("no retrain ran incrementally: %+v", s)
	}
	if s.RetrainsFull == 0 {
		t.Fatalf("neither the cold start nor the FullRebuildEvery=5 hatch forced a full rebuild: %+v", s)
	}
	if reusedRetrains == 0 {
		t.Fatal("incremental retrains never reused a page's rules")
	}
}
