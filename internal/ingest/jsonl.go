package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// DefaultBatchSize is the maximum number of events a JSONLSource returns
// per Next call.
const DefaultBatchSize = 256

// JSONLSource reads events from a JSON-lines stream — the replay format
// for real dumps. One event per line; blank lines are skipped; a malformed
// line is a hard error (a dump replay should never silently drop data).
//
// With Follow enabled the source tails the stream like `tail -f`: on
// reaching the end it polls for more data instead of reporting io.EOF, and
// a trailing partial line (a write in progress) is held back until its
// newline arrives.
type JSONLSource struct {
	r       *bufio.Reader
	batch   int
	follow  bool
	poll    time.Duration
	pending []byte // partial final line held back in follow mode
	line    int
}

// NewJSONLSource returns a source over r with the default batch size.
func NewJSONLSource(r io.Reader) *JSONLSource {
	return &JSONLSource{r: bufio.NewReader(r), batch: DefaultBatchSize}
}

// SetBatchSize caps the number of events per Next call (minimum 1).
func (s *JSONLSource) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	s.batch = n
}

// Follow switches the source to tail mode, polling every interval for new
// data instead of ending at io.EOF.
func (s *JSONLSource) Follow(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	s.follow = true
	s.poll = interval
}

// Next returns the next batch of events. It returns io.EOF when the stream
// is exhausted (never in follow mode, unless ctx ends first).
func (s *JSONLSource) Next(ctx context.Context) ([]Event, error) {
	var out []Event
	for len(out) < s.batch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk, err := s.r.ReadBytes('\n')
		if len(chunk) > 0 {
			s.pending = append(s.pending, chunk...)
		}
		complete := len(s.pending) > 0 && s.pending[len(s.pending)-1] == '\n'
		if complete || (err == io.EOF && !s.follow && len(s.pending) > 0) {
			line := s.pending
			s.pending = nil
			s.line++
			ev, perr := parseEventLine(line)
			if perr != nil {
				if !errors.Is(perr, errBlankLine) {
					return nil, fmt.Errorf("ingest: line %d: %w", s.line, perr)
				}
			} else {
				out = append(out, ev)
			}
		}
		if err == nil {
			continue
		}
		if err != io.EOF {
			return out, err
		}
		// io.EOF: the underlying stream has no more data right now.
		if !s.follow {
			if len(out) > 0 {
				return out, nil
			}
			return nil, io.EOF
		}
		if len(out) > 0 {
			return out, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.poll):
		}
	}
	return out, nil
}

var errBlankLine = errors.New("blank line")

func parseEventLine(line []byte) (Event, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return Event{}, errBlankLine
	}
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, err
	}
	if err := ev.Validate(); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// WriteEvents encodes events as JSON lines — the format JSONLSource reads.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := ev.Validate(); err != nil {
			return err
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
